//! Stochastic Lanczos quadrature (SLQ) estimators for `trace(f(A))`.
//!
//! For a Hermitian operator `A` and a function `f`, the trace of `f(A)` is
//! estimated by averaging Gauss quadratures: each Rademacher probe `z`
//! seeds an `m`-step Lanczos run whose tridiagonal eigendecomposition
//! yields nodes `theta_j` (Ritz values) and weights `w_j^2` (squared first
//! components of the tridiagonal eigenvectors), giving the per-probe
//! estimate `n * sum_j w_j^2 f(theta_j)`.  With `f = ln` this is the
//! log-determinant estimator of Ubaru, Chen & Saad, the cross-check the
//! GP layer runs against the factorization's product-form determinant.
//!
//! Determinism contract: probes are drawn sequentially from one seeded
//! generator and averaged in probe order, so a fixed
//! [`SlqConfig`] replays bitwise-identically at any thread count.
//!
//! Indefiniteness detection: the determinant-sign guard in the GP layer
//! only catches an *odd* number of negative eigenvalues.  [`slq_log_det`]
//! inspects every quadrature node and reports
//! [`HodlrError::NotPositiveDefinite`] as soon as any probe surfaces a
//! non-positive Ritz value, which catches even-count indefiniteness the
//! sign test is blind to.  The smallest node ever seen is reported as
//! [`SlqEstimate::min_ritz`].

use hodlr_la::blas::{axpy_slice, dot_conj};
use hodlr_la::evd::steqr;
use hodlr_la::norms::norm2;
use hodlr_la::{DenseMatrix, HodlrError, RealScalar, Scalar};
use hodlr_solver::LinearOperator;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for the stochastic Lanczos quadrature estimators.
#[derive(Clone, Debug)]
pub struct SlqConfig {
    /// Number of Rademacher probe vectors (variance shrinks like `1/probes`).
    pub probes: usize,
    /// Lanczos steps per probe (quadrature nodes; spectral accuracy in
    /// `steps` for analytic `f`).
    pub steps: usize,
    /// Seed for the probe stream.
    pub seed: u64,
}

impl Default for SlqConfig {
    fn default() -> Self {
        Self {
            probes: 16,
            steps: 64,
            seed: 0x51c9_ad00,
        }
    }
}

/// The result of an SLQ run: the estimate plus the evidence needed to
/// judge it.
#[derive(Clone, Debug)]
pub struct SlqEstimate {
    /// The trace estimate (mean over probes).
    pub value: f64,
    /// Sample standard error of the mean (`0` when `probes < 2`).
    pub stderr: f64,
    /// Probes actually used.
    pub probes: usize,
    /// Lanczos steps requested per probe.
    pub steps: usize,
    /// Smallest quadrature node seen across all probes — a free estimate
    /// of the smallest eigenvalue's neighbourhood, and the indefiniteness
    /// indicator (`<= 0` means the operator is not positive definite).
    pub min_ritz: f64,
}

/// One probe's Gauss quadrature: `(node, weight^2)` pairs.
type Quadrature = Vec<(f64, f64)>;

fn validate(cfg: &SlqConfig) -> Result<(), HodlrError> {
    if cfg.probes == 0 {
        return Err(HodlrError::config(
            "slq: probe count must be positive (0 probes estimate nothing)",
        ));
    }
    if cfg.steps == 0 {
        return Err(HodlrError::config(
            "slq: Lanczos step count must be positive",
        ));
    }
    Ok(())
}

/// Run the `m`-step Lanczos recurrence from the (normalized) probe and
/// return the Gauss quadrature rule it induces.  Full two-pass
/// reorthogonalization keeps the nodes honest; a happy breakdown
/// truncates the rule (the quadrature is then exact on the invariant
/// subspace found) rather than restarting, which would corrupt the
/// probe's measure.
fn probe_quadrature<T: Scalar, A: LinearOperator<T> + ?Sized>(
    op: &A,
    probe: &[T],
    steps: usize,
) -> Result<Quadrature, HodlrError> {
    let n = op.dim();
    if n == 0 {
        return Ok(Vec::new());
    }
    let m_max = steps.min(n);
    let mut basis: Vec<Vec<T>> = Vec::with_capacity(m_max);
    let mut alphas: Vec<T::Real> = Vec::with_capacity(m_max);
    let mut betas: Vec<T::Real> = Vec::with_capacity(m_max.saturating_sub(1));

    let nrm = norm2(probe);
    let inv = T::Real::one() / nrm;
    let mut v: Vec<T> = probe.iter().map(|x| x.scale(inv)).collect();
    let mut w = vec![T::zero(); n];
    let mut scale = T::Real::zero();
    for j in 0..m_max {
        basis.push(v.clone());
        op.apply(&v, &mut w);
        let alpha = dot_conj(&v, &w).real();
        alphas.push(alpha);
        scale = scale.max_real(alpha.abs_real());
        for _pass in 0..2 {
            for q in &basis {
                let c = dot_conj(q, &w);
                axpy_slice(-c, q, &mut w);
            }
        }
        if j + 1 == m_max {
            break;
        }
        let beta = norm2(&w);
        scale = scale.max_real(beta);
        if beta.to_f64() <= (n as f64) * T::Real::EPSILON.to_f64() * scale.to_f64().max(1.0) {
            break; // happy breakdown: truncated rule is exact here
        }
        betas.push(beta);
        let inv = T::Real::one() / beta;
        v = w.iter().map(|x| x.scale(inv)).collect();
    }

    let m = alphas.len();
    let mut d = alphas;
    let mut e = betas;
    let mut z = DenseMatrix::<T::Real>::identity(m);
    steqr::<T::Real>(&mut d, &mut e, Some(&mut z))?;
    Ok((0..m)
        .map(|j| {
            let w0 = z[(0, j)].to_f64();
            (d[j].to_f64(), w0 * w0)
        })
        .collect())
}

/// Draw one Rademacher probe (`+1/-1` entries, real even for complex `T`,
/// so `E[z z^H] = I` and `||z||^2 = n`).
fn rademacher<T: Scalar>(rng: &mut StdRng, n: usize) -> Vec<T> {
    (0..n)
        .map(|_| {
            if rng.gen_range(0..2u32) == 0 {
                T::one()
            } else {
                -T::one()
            }
        })
        .collect()
}

/// All probes' quadratures, in probe order.
fn slq_quadratures<T: Scalar, A: LinearOperator<T> + ?Sized>(
    op: &A,
    cfg: &SlqConfig,
) -> Result<Vec<Quadrature>, HodlrError> {
    validate(cfg)?;
    let n = op.dim();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut rules = Vec::with_capacity(cfg.probes);
    for _ in 0..cfg.probes {
        let z = rademacher::<T>(&mut rng, n);
        rules.push(probe_quadrature(op, &z, cfg.steps)?);
    }
    Ok(rules)
}

fn summarize(
    n: usize,
    cfg: &SlqConfig,
    rules: &[Quadrature],
    f: impl Fn(f64) -> f64,
) -> SlqEstimate {
    let mut min_ritz = f64::INFINITY;
    let estimates: Vec<f64> = rules
        .iter()
        .map(|rule| {
            let mut acc = 0.0;
            for &(node, weight2) in rule {
                min_ritz = min_ritz.min(node);
                acc += weight2 * f(node);
            }
            (n as f64) * acc
        })
        .collect();
    let p = estimates.len();
    let mean = estimates.iter().sum::<f64>() / p as f64;
    let stderr = if p >= 2 {
        let var = estimates
            .iter()
            .map(|x| (x - mean) * (x - mean))
            .sum::<f64>()
            / ((p - 1) as f64);
        (var / p as f64).sqrt()
    } else {
        0.0
    };
    SlqEstimate {
        value: mean,
        stderr,
        probes: p,
        steps: cfg.steps,
        min_ritz: if min_ritz.is_finite() { min_ritz } else { 0.0 },
    }
}

/// Estimate `trace(f(A))` for a Hermitian operator by stochastic Lanczos
/// quadrature.
///
/// # Errors
/// [`HodlrError::InvalidConfig`] when `probes == 0` or `steps == 0`;
/// [`HodlrError::NonConvergence`] if the tridiagonal eigensolver inside a
/// probe fails (pathological, bounded iteration count).
pub fn slq_trace<T: Scalar, A: LinearOperator<T> + ?Sized>(
    op: &A,
    f: impl Fn(f64) -> f64,
    cfg: &SlqConfig,
) -> Result<SlqEstimate, HodlrError> {
    let rules = slq_quadratures(op, cfg)?;
    Ok(summarize(op.dim(), cfg, &rules, f))
}

/// Estimate `log det A = trace(ln A)` for a Hermitian positive definite
/// operator, refusing to produce a number when the spectrum is not
/// positive.
///
/// Because every quadrature node is inspected, this catches operators
/// with an *even* number of negative eigenvalues — the case where the
/// product-form determinant of a factorization still has positive sign
/// and the GP layer's sign guard cannot object.
///
/// # Errors
/// Everything [`slq_trace`] raises, plus
/// [`HodlrError::NotPositiveDefinite`] when any probe surfaces a
/// quadrature node `<= 0`.
pub fn slq_log_det<T: Scalar, A: LinearOperator<T> + ?Sized>(
    op: &A,
    cfg: &SlqConfig,
) -> Result<SlqEstimate, HodlrError> {
    let rules = slq_quadratures::<T, A>(op, cfg)?;
    for (p, rule) in rules.iter().enumerate() {
        if let Some(&(node, _)) = rule.iter().find(|&&(node, _)| node <= 0.0) {
            return Err(HodlrError::NotPositiveDefinite {
                context: format!(
                    "SLQ log-determinant operand (probe {p} surfaced Ritz value {node:.6e} <= 0; \
                     an even number of negative eigenvalues evades the determinant-sign guard, \
                     but not this check)"
                ),
            });
        }
    }
    Ok(summarize(op.dim(), cfg, &rules, f64::ln))
}
