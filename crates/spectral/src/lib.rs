//! # hodlr-spectral — spectral subsystem
//!
//! Partial-spectrum and spectral-sum estimation on top of the workspace's
//! [`LinearOperator`](hodlr_solver::LinearOperator) abstraction:
//!
//! * [`lanczos_report`] / [`lanczos_eigs`] — partial-spectrum Lanczos with
//!   full reorthogonalization.  Over the HODLR façade's forward matvec the
//!   extreme eigenpairs of an `n x n` kernel matrix cost `O(k n log n)`
//!   instead of the dense `O(n^3)`.
//! * [`shift_invert_report`] / [`shift_invert_eigs`] — interior
//!   eigenvalues near a shift `sigma`, iterating on a factorization's
//!   solve as the operator `(A - sigma I)^{-1}`.
//! * [`slq_trace`] / [`slq_log_det`] — stochastic Lanczos quadrature for
//!   `trace(f(A))` and `log det A` with seeded, bitwise-replayable
//!   Rademacher probes.  `slq_log_det` doubles as an indefiniteness
//!   detector: it inspects every quadrature node and refuses operators
//!   whose spectrum dips non-positive, catching the even-negative-
//!   eigenvalue case the determinant-sign guard cannot see.
//!
//! The dense kernels backing everything (blocked Householder
//! tridiagonalization + implicit-shift QL, Golub-Kahan bidiagonalization +
//! bidiagonal QR SVD) live in `hodlr-la` ([`hodlr_la::symmetric_evd`],
//! [`hodlr_la::golub_kahan_svd`]); this crate supplies the operator and
//! estimator layers.
//!
//! Determinism: every routine here is a sequential reduction seeded from
//! its config, so results are bitwise identical at 1, 2 or 8 threads and
//! across the serial and batched solve backends (the operators themselves
//! honour the workspace determinism contract).

pub mod lanczos;
pub mod slq;

pub use lanczos::{
    hermitian_norm1_est, lanczos_eigs, lanczos_report, shift_invert_eigs, shift_invert_report,
    LanczosConfig, PartialEigen, SpectrumTarget,
};
pub use slq::{slq_log_det, slq_trace, SlqConfig, SlqEstimate};

#[cfg(test)]
mod tests {
    use super::*;
    use hodlr_la::random::gaussian_matrix;
    use hodlr_la::{symmetric_evd, Complex64, DenseMatrix, HodlrError, Scalar};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A dense random Hermitian matrix with a known (EVD-computed) spectrum.
    fn hermitian<T: Scalar>(n: usize, seed: u64) -> DenseMatrix<T> {
        let mut rng = StdRng::seed_from_u64(seed);
        let g: DenseMatrix<T> = gaussian_matrix(&mut rng, n, n);
        let gt = g.conj_transpose();
        let mut a = g.matmul(&gt); // Hermitian PSD
        for i in 0..n {
            a[(i, i)] += T::from_f64(0.5); // safely positive definite
        }
        a
    }

    #[test]
    fn lanczos_matches_dense_evd_largest_and_smallest() {
        let n = 60;
        let a = hermitian::<f64>(n, 7);
        let evd = symmetric_evd(&a).unwrap();
        // Full subspace: Lanczos is then exact and the 1e-10 default
        // tolerance is comfortably reachable on a dense spectrum.
        let cfg = LanczosConfig {
            subspace: n,
            ..LanczosConfig::default()
        };

        let top = lanczos_eigs(&a, 3, SpectrumTarget::Largest, &cfg).unwrap();
        for (i, &lam) in top.values.iter().enumerate() {
            let exact = evd.values[n - 1 - i];
            assert!(
                (lam - exact).abs() <= 1e-8 * exact.abs().max(1.0),
                "largest[{i}]: {lam} vs {exact}"
            );
        }
        assert!(top.converged);
        assert!(top.residuals.iter().all(|&r| r <= cfg.tol));

        let bottom = lanczos_eigs(&a, 3, SpectrumTarget::Smallest, &cfg).unwrap();
        for (i, &lam) in bottom.values.iter().enumerate() {
            let exact = evd.values[i];
            assert!(
                (lam - exact).abs() <= 1e-8 * exact.abs().max(1.0),
                "smallest[{i}]: {lam} vs {exact}"
            );
        }
    }

    #[test]
    fn lanczos_complex_hermitian() {
        let n = 48;
        let a = hermitian::<Complex64>(n, 11);
        let evd = symmetric_evd(&a).unwrap();
        let top = lanczos_eigs(&a, 2, SpectrumTarget::Largest, &LanczosConfig::default()).unwrap();
        assert!((top.values[0] - evd.values[n - 1]).abs() <= 1e-8 * evd.values[n - 1]);
        assert!((top.values[1] - evd.values[n - 2]).abs() <= 1e-8 * evd.values[n - 1]);
    }

    #[test]
    fn lanczos_ritz_vectors_are_orthonormal_eigenvectors() {
        let n = 50;
        let a = hermitian::<f64>(n, 3);
        let cfg = LanczosConfig {
            subspace: n,
            ..LanczosConfig::default()
        };
        let got = lanczos_eigs(&a, 4, SpectrumTarget::Largest, &cfg).unwrap();
        for i in 0..4 {
            for j in 0..4 {
                let d = hodlr_la::blas::dot_conj(got.vectors.col(i), got.vectors.col(j));
                let want = if i == j { 1.0 } else { 0.0 };
                assert!((d - want).abs() < 1e-9, "V^H V [{i},{j}] = {d}");
            }
        }
    }

    #[test]
    fn lanczos_is_bitwise_reproducible() {
        let a = hermitian::<f64>(40, 5);
        let cfg = LanczosConfig::default();
        let r1 = lanczos_report(&a, 3, SpectrumTarget::Largest, &cfg).unwrap();
        let r2 = lanczos_report(&a, 3, SpectrumTarget::Largest, &cfg).unwrap();
        assert_eq!(
            r1.values.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            r2.values.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
        assert_eq!(
            r1.vectors
                .data()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
            r2.vectors
                .data()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn lanczos_handles_invariant_subspaces() {
        // Identity-like operator with two distinct eigenvalues: Krylov
        // spaces are 2-dimensional, so a 32-dim subspace request forces
        // repeated happy-breakdown restarts.
        let n = 24;
        let a = DenseMatrix::<f64>::from_fn(n, n, |i, j| {
            if i != j {
                0.0
            } else if i < 4 {
                5.0
            } else {
                1.0
            }
        });
        let got = lanczos_eigs(&a, 5, SpectrumTarget::Largest, &LanczosConfig::default()).unwrap();
        assert!((got.values[0] - 5.0).abs() < 1e-10);
        assert!((got.values[3] - 5.0).abs() < 1e-10);
        assert!((got.values[4] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn lanczos_typed_errors() {
        let a = hermitian::<f64>(10, 1);
        let cfg = LanczosConfig::default();
        for bad_k in [0usize, 11] {
            let err = lanczos_report(&a, bad_k, SpectrumTarget::Largest, &cfg).unwrap_err();
            assert!(
                matches!(err, HodlrError::InvalidConfig { .. }),
                "k={bad_k}: {err}"
            );
        }
        let bad_tol = LanczosConfig {
            tol: -1.0,
            ..cfg.clone()
        };
        assert!(matches!(
            lanczos_report(&a, 2, SpectrumTarget::Largest, &bad_tol),
            Err(HodlrError::InvalidConfig { .. })
        ));
        let tiny_subspace = LanczosConfig { subspace: 1, ..cfg };
        assert!(matches!(
            lanczos_report(&a, 4, SpectrumTarget::Largest, &tiny_subspace),
            Err(HodlrError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn lanczos_nonconvergence_reports_iteration_count() {
        // A 3-dimensional Krylov space cannot resolve 3 eigenpairs of a
        // dense-spectrum matrix to 1e-10.
        let a = hermitian::<f64>(40, 9);
        let cfg = LanczosConfig {
            subspace: 3,
            tol: 1e-12,
            ..LanczosConfig::default()
        };
        match lanczos_eigs(&a, 3, SpectrumTarget::Largest, &cfg) {
            Err(HodlrError::NonConvergence {
                iterations,
                relative_residual,
                context,
            }) => {
                assert_eq!(iterations, 3);
                assert!(relative_residual > 1e-12);
                assert!(context.contains("lanczos"), "context: {context}");
            }
            other => panic!("expected NonConvergence, got {other:?}"),
        }
    }

    #[test]
    fn shift_invert_finds_interior_eigenvalues() {
        // Diagonal matrix: interior eigenvalues are known exactly, and the
        // inverse operator is easy to build densely.
        let n = 30;
        let diag: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let a = DenseMatrix::<f64>::from_fn(n, n, |i, j| if i == j { diag[i] } else { 0.0 });
        let sigma = 10.3;
        let inv =
            DenseMatrix::<f64>::from_fn(
                n,
                n,
                |i, j| {
                    if i == j {
                        1.0 / (diag[i] - sigma)
                    } else {
                        0.0
                    }
                },
            );
        let got = shift_invert_eigs(&a, &inv, sigma, 3, &LanczosConfig::default()).unwrap();
        // Nearest to 10.3 are 10, 11, 10 first.
        assert!((got.values[0] - 10.0).abs() < 1e-8);
        assert!((got.values[1] - 11.0).abs() < 1e-8);
        assert!((got.values[2] - 9.0).abs() < 1e-8);
        assert!(got.converged);
    }

    #[test]
    fn shift_invert_rejects_mismatched_operators() {
        let a = hermitian::<f64>(10, 1);
        let inv = hermitian::<f64>(12, 2);
        assert!(matches!(
            shift_invert_report(&a, &inv, 0.0, 2, &LanczosConfig::default()),
            Err(HodlrError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn slq_log_det_matches_dense_evd() {
        let n = 64;
        let a = hermitian::<f64>(n, 21);
        let evd = symmetric_evd(&a).unwrap();
        let exact: f64 = evd.values.iter().map(|&v| v.ln()).sum();
        let cfg = SlqConfig {
            probes: 32,
            steps: 48,
            seed: 17,
        };
        let est = slq_log_det(&a, &cfg).unwrap();
        assert_eq!(est.probes, 32);
        assert!(est.min_ritz > 0.0);
        assert!(est.stderr > 0.0);
        let err = (est.value - exact).abs();
        assert!(
            err <= 4.0 * est.stderr + 1e-6 * exact.abs(),
            "SLQ {} vs exact {exact}, stderr {}",
            est.value,
            est.stderr
        );
    }

    #[test]
    fn slq_trace_of_identity_function_is_trace() {
        // f(x) = x makes each probe's estimate z^T A z / ||z||^2 * n, whose
        // quadrature is exact for any step count >= 1.
        let n = 32;
        let a = hermitian::<f64>(n, 4);
        let exact: f64 = (0..n).map(|i| a[(i, i)]).sum();
        let est = slq_trace(
            &a,
            |x| x,
            &SlqConfig {
                probes: 64,
                steps: 8,
                seed: 9,
            },
        )
        .unwrap();
        assert!(
            (est.value - exact).abs() <= 4.0 * est.stderr + 1e-8 * exact.abs(),
            "trace est {} vs {exact} (stderr {})",
            est.value,
            est.stderr
        );
    }

    #[test]
    fn slq_detects_even_count_indefiniteness() {
        // Two negative eigenvalues: the determinant sign stays positive, so
        // the product-form sign guard passes — SLQ must still object.
        let n = 16;
        let a = DenseMatrix::<f64>::from_fn(n, n, |i, j| {
            if i != j {
                0.0
            } else if i < 2 {
                -1.0
            } else {
                2.0
            }
        });
        let sign: f64 = (0..n).map(|i| a[(i, i)].signum()).product();
        assert!(sign > 0.0, "even negative count keeps the sign positive");
        let err = slq_log_det(&a, &SlqConfig::default()).unwrap_err();
        assert!(
            matches!(err, HodlrError::NotPositiveDefinite { .. }),
            "{err}"
        );
    }

    #[test]
    fn slq_is_bitwise_reproducible() {
        let a = hermitian::<f64>(40, 31);
        let cfg = SlqConfig {
            probes: 8,
            steps: 16,
            seed: 5,
        };
        let e1 = slq_log_det(&a, &cfg).unwrap();
        let e2 = slq_log_det(&a, &cfg).unwrap();
        assert_eq!(e1.value.to_bits(), e2.value.to_bits());
        assert_eq!(e1.stderr.to_bits(), e2.stderr.to_bits());
        assert_eq!(e1.min_ritz.to_bits(), e2.min_ritz.to_bits());
    }

    #[test]
    fn slq_typed_errors() {
        let a = hermitian::<f64>(8, 2);
        for cfg in [
            SlqConfig {
                probes: 0,
                ..SlqConfig::default()
            },
            SlqConfig {
                steps: 0,
                ..SlqConfig::default()
            },
        ] {
            assert!(matches!(
                slq_log_det(&a, &cfg),
                Err(HodlrError::InvalidConfig { .. })
            ));
        }
    }

    #[test]
    fn hermitian_norm_est_bounds_the_true_norm() {
        let a = hermitian::<f64>(24, 13);
        let exact: f64 = (0..24)
            .map(|j| a.col(j).iter().map(|x| x.abs()).sum::<f64>())
            .fold(0.0, f64::max);
        let est = hermitian_norm1_est(&a);
        assert!(est <= exact * (1.0 + 1e-12));
        assert!(est >= exact / 3.0);
    }
}
