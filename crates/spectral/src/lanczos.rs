//! Partial-spectrum Lanczos with full reorthogonalization.
//!
//! The iteration runs over any [`LinearOperator`] — a dense matrix, the
//! HODLR façade's forward matvec (eigenvalues at `O(k n log n)` cost), or a
//! factorization's solve (shift-invert, reaching interior eigenvalues).
//! The operator is assumed Hermitian; the Ritz values of the real
//! symmetric tridiagonal projection are therefore real.
//!
//! Determinism contract: the start vector is drawn from a seeded
//! generator, the two-pass classical Gram-Schmidt reorthogonalization
//! visits basis vectors in a fixed index order, and every reduction is a
//! sequential loop, so for a fixed seed the eigenpairs are bitwise
//! identical at any thread count (the underlying matvec honours the same
//! contract).

use hodlr_la::blas::{axpy_slice, dot_conj, gemm, Op};
use hodlr_la::evd::steqr;
use hodlr_la::norms::norm2;
use hodlr_la::random::gaussian_scalar;
use hodlr_la::{one_norm_est, DenseMatrix, HodlrError, RealScalar, Scalar};
use hodlr_solver::LinearOperator;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Which end of the spectrum a Lanczos run should resolve.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpectrumTarget {
    /// The `k` algebraically largest eigenvalues (returned descending).
    Largest,
    /// The `k` algebraically smallest eigenvalues (returned ascending).
    Smallest,
}

/// Configuration for the Lanczos eigensolvers.
#[derive(Clone, Debug)]
pub struct LanczosConfig {
    /// Krylov subspace dimension; `0` picks `min(n, max(2k + 16, 32))`.
    pub subspace: usize,
    /// Relative residual target `||A x - lambda x|| / ||A||_1-est`.
    pub tol: f64,
    /// Seed for the start vector (and any breakdown restarts).
    pub seed: u64,
}

impl Default for LanczosConfig {
    fn default() -> Self {
        Self {
            subspace: 0,
            tol: 1e-10,
            seed: 0x5eed_1a2c,
        }
    }
}

/// A partial eigendecomposition: `k` Ritz pairs plus convergence evidence.
#[derive(Clone, Debug)]
pub struct PartialEigen<T: Scalar> {
    /// Ritz values (descending for [`SpectrumTarget::Largest`], ascending
    /// for [`SpectrumTarget::Smallest`]; shift-invert orders by distance
    /// to the shift).
    pub values: Vec<T::Real>,
    /// Ritz vectors (`n x k`, orthonormal columns), matching `values`.
    pub vectors: DenseMatrix<T>,
    /// Exact relative residuals `||A x_i - lambda_i x_i|| / ||A||_1-est`,
    /// recomputed against the forward operator for every returned pair.
    pub residuals: Vec<f64>,
    /// Krylov basis dimension actually built.
    pub iterations: usize,
    /// `true` when every residual is at or below the configured tolerance.
    pub converged: bool,
    /// The Hager/Higham 1-norm estimate used to normalize residuals.
    pub operator_norm: f64,
}

/// Hager/Higham 1-norm estimate for a Hermitian operator (the adjoint
/// apply is the forward apply, which is what makes the estimator usable
/// behind the [`LinearOperator`] trait without an adjoint method).
pub fn hermitian_norm1_est<T: Scalar, A: LinearOperator<T> + ?Sized>(op: &A) -> f64 {
    let n = op.dim();
    if n == 0 {
        return 0.0;
    }
    let mut buf = vec![T::zero(); n];
    let mut apply = |x: &mut [T]| -> Result<(), HodlrError> {
        op.apply(x, &mut buf);
        x.copy_from_slice(&buf);
        Ok(())
    };
    let mut buf2 = vec![T::zero(); n];
    let mut apply_adjoint = |x: &mut [T]| -> Result<(), HodlrError> {
        op.apply(x, &mut buf2);
        x.copy_from_slice(&buf2);
        Ok(())
    };
    one_norm_est(n, &mut apply, &mut apply_adjoint).expect("infallible apply")
}

/// The raw Lanczos recurrence: basis vectors plus tridiagonal entries.
struct LanczosBasis<T: Scalar> {
    vectors: Vec<Vec<T>>,
    alphas: Vec<T::Real>,
    betas: Vec<T::Real>,
}

/// Run `m` Lanczos steps with two-pass classical Gram-Schmidt full
/// reorthogonalization (fixed index order, deterministic).  Happy
/// breakdowns record a zero coupling and restart from a fresh seeded
/// vector so invariant subspaces do not stall the iteration.
fn lanczos_basis<T: Scalar, A: LinearOperator<T> + ?Sized>(
    op: &A,
    m: usize,
    seed: u64,
    restart_on_breakdown: bool,
) -> LanczosBasis<T> {
    let n = op.dim();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut vectors: Vec<Vec<T>> = Vec::with_capacity(m);
    let mut alphas: Vec<T::Real> = Vec::with_capacity(m);
    let mut betas: Vec<T::Real> = Vec::with_capacity(m.saturating_sub(1));

    let draw = |rng: &mut StdRng| -> Vec<T> { (0..n).map(|_| gaussian_scalar(rng)).collect() };
    let mut v = draw(&mut rng);
    let nrm = norm2(&v);
    if nrm == T::Real::zero() {
        return LanczosBasis {
            vectors,
            alphas,
            betas,
        };
    }
    let inv = T::Real::one() / nrm;
    for x in v.iter_mut() {
        *x = x.scale(inv);
    }

    let mut w = vec![T::zero(); n];
    let mut scale = T::Real::zero();
    for j in 0..m {
        vectors.push(v.clone());
        op.apply(&v, &mut w);
        let alpha = dot_conj(&v, &w).real();
        alphas.push(alpha);
        scale = scale.max_real(alpha.abs_real());
        // Two-pass CGS against the whole basis (subsumes the three-term
        // recurrence and keeps the basis orthonormal to roundoff).
        for _pass in 0..2 {
            for q in &vectors {
                let c = dot_conj(q, &w);
                axpy_slice(-c, q, &mut w);
            }
        }
        if j + 1 == m {
            break;
        }
        let beta = norm2(&w);
        scale = scale.max_real(beta);
        let breakdown =
            beta.to_f64() <= (n as f64) * T::Real::EPSILON.to_f64() * scale.to_f64().max(1.0);
        if breakdown {
            if !restart_on_breakdown {
                break;
            }
            // Invariant subspace found: couple in a fresh direction with a
            // zero off-diagonal (the tridiagonal splits into blocks).
            betas.push(T::Real::zero());
            let mut fresh = draw(&mut rng);
            for _pass in 0..2 {
                for q in &vectors {
                    let c = dot_conj(q, &fresh);
                    axpy_slice(-c, q, &mut fresh);
                }
            }
            let fresh_nrm = norm2(&fresh);
            if fresh_nrm.to_f64() <= (n as f64) * T::Real::EPSILON.to_f64() {
                betas.pop();
                break; // whole space exhausted
            }
            let inv = T::Real::one() / fresh_nrm;
            for x in fresh.iter_mut() {
                *x = x.scale(inv);
            }
            v = fresh;
        } else {
            betas.push(beta);
            let inv = T::Real::one() / beta;
            v = w.iter().map(|x| x.scale(inv)).collect();
        }
    }
    LanczosBasis {
        vectors,
        alphas,
        betas,
    }
}

fn validate(n: usize, k: usize, cfg: &LanczosConfig) -> Result<usize, HodlrError> {
    if k == 0 {
        return Err(HodlrError::config(
            "lanczos: requested eigenpair count k must be positive",
        ));
    }
    if k > n {
        return Err(HodlrError::config(format!(
            "lanczos: requested k = {k} eigenpairs from an n = {n} dimensional operator"
        )));
    }
    if !(cfg.tol > 0.0 && cfg.tol.is_finite()) {
        return Err(HodlrError::config(format!(
            "lanczos: tolerance must be positive and finite, got {:e}",
            cfg.tol
        )));
    }
    let m = if cfg.subspace == 0 {
        (2 * k + 16).max(32).min(n)
    } else {
        cfg.subspace.min(n)
    };
    if m < k {
        return Err(HodlrError::config(format!(
            "lanczos: subspace dimension {m} is smaller than the requested k = {k}"
        )));
    }
    Ok(m)
}

/// Which tridiagonal eigenvalues a run keeps.  Forward Lanczos wants an
/// algebraic end of the spectrum; shift-invert wants the largest
/// *magnitudes* of the inverse operator, since `theta = 1/(lambda -
/// sigma)` is signed and the eigenvalues of `A` nearest `sigma` can sit
/// on either side of it.
enum RitzSelect {
    Smallest,
    Largest,
    LargestMagnitude,
}

impl From<SpectrumTarget> for RitzSelect {
    fn from(t: SpectrumTarget) -> Self {
        match t {
            SpectrumTarget::Smallest => RitzSelect::Smallest,
            SpectrumTarget::Largest => RitzSelect::Largest,
        }
    }
}

/// Assemble Ritz pairs for the selected end of the spectrum and measure
/// their exact residuals against `residual_op`.
#[allow(clippy::too_many_arguments)]
fn ritz_pairs<T: Scalar, A: LinearOperator<T> + ?Sized>(
    basis: &LanczosBasis<T>,
    residual_op: &A,
    map_value: impl Fn(T::Real) -> T::Real,
    k: usize,
    select: RitzSelect,
    tol: f64,
    operator_norm: f64,
) -> Result<PartialEigen<T>, HodlrError> {
    let m = basis.alphas.len();
    let n = residual_op.dim();
    let mut d = basis.alphas.clone();
    let mut e = basis.betas.clone();
    let mut z = DenseMatrix::<T::Real>::identity(m);
    steqr::<T::Real>(&mut d, &mut e, Some(&mut z))?;

    let k = k.min(m);
    let selected: Vec<usize> = match select {
        RitzSelect::Smallest => (0..k).collect(),
        RitzSelect::Largest => (m - k..m).rev().collect(),
        RitzSelect::LargestMagnitude => {
            let mut idx: Vec<usize> = (0..m).collect();
            idx.sort_by(|&a, &b| {
                d[b].abs_real()
                    .partial_cmp(&d[a].abs_real())
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.cmp(&b))
            });
            idx.truncate(k);
            idx
        }
    };

    // Ritz vectors X = B * S with S the selected tridiagonal eigenvectors.
    let bmat = DenseMatrix::from_fn(n, m, |i, j| basis.vectors[j][i]);
    let smat = DenseMatrix::from_fn(m, k, |i, j| T::from_real(z[(i, selected[j])]));
    let mut x = DenseMatrix::<T>::zeros(n, k);
    gemm(
        T::one(),
        bmat.as_ref(),
        Op::None,
        smat.as_ref(),
        Op::None,
        T::zero(),
        x.as_mut(),
    );

    let values: Vec<T::Real> = selected.iter().map(|&i| map_value(d[i])).collect();
    let denom = operator_norm.max(f64::MIN_POSITIVE);
    let mut residuals = Vec::with_capacity(k);
    let mut ax = vec![T::zero(); n];
    for (j, &lambda) in values.iter().enumerate() {
        let xj = x.col(j);
        residual_op.apply(xj, &mut ax);
        for (r, &xv) in ax.iter_mut().zip(xj) {
            *r -= xv.scale(lambda);
        }
        residuals.push(norm2(&ax).to_f64() / denom);
    }
    let converged = residuals.iter().all(|&r| r.is_finite() && r <= tol);
    Ok(PartialEigen {
        values,
        vectors: x,
        residuals,
        iterations: m,
        converged,
        operator_norm,
    })
}

/// Run Lanczos and return the `k` extreme Ritz pairs with their residuals,
/// whether or not they converged (the report says which).
///
/// # Errors
/// [`HodlrError::InvalidConfig`] for `k == 0`, `k > n`, a non-positive
/// tolerance, or a user-chosen subspace smaller than `k`.
pub fn lanczos_report<T: Scalar, A: LinearOperator<T> + ?Sized>(
    op: &A,
    k: usize,
    target: SpectrumTarget,
    cfg: &LanczosConfig,
) -> Result<PartialEigen<T>, HodlrError> {
    let n = op.dim();
    let m = validate(n, k, cfg)?;
    let basis = lanczos_basis(op, m, cfg.seed, true);
    let norm = hermitian_norm1_est(op);
    ritz_pairs(&basis, op, |v| v, k, target.into(), cfg.tol, norm)
}

/// Strict variant of [`lanczos_report`]: non-convergence is a typed error.
///
/// # Errors
/// Everything [`lanczos_report`] returns, plus
/// [`HodlrError::NonConvergence`] carrying the Krylov dimension actually
/// built and the worst relative residual.
pub fn lanczos_eigs<T: Scalar, A: LinearOperator<T> + ?Sized>(
    op: &A,
    k: usize,
    target: SpectrumTarget,
    cfg: &LanczosConfig,
) -> Result<PartialEigen<T>, HodlrError> {
    let report = lanczos_report(op, k, target, cfg)?;
    require_converged(report, cfg.tol, "lanczos partial eigensolver")
}

/// Shift-invert Lanczos: iterate on `inv` (an operator applying
/// `(A - sigma I)^{-1}`, typically a `Factorization`'s solve) and map Ritz
/// values `theta -> sigma + 1/theta`, which resolves the eigenvalues of
/// `A` nearest `sigma`.  Residuals are recomputed against the *forward*
/// operator `op`, so the report's convergence verdict is about `A`, not
/// about the inverse iteration.  Pairs are ordered by distance to the
/// shift, nearest first.
///
/// # Errors
/// See [`lanczos_report`].
pub fn shift_invert_report<T: Scalar, A, B>(
    op: &A,
    inv: &B,
    sigma: T::Real,
    k: usize,
    cfg: &LanczosConfig,
) -> Result<PartialEigen<T>, HodlrError>
where
    A: LinearOperator<T> + ?Sized,
    B: LinearOperator<T> + ?Sized,
{
    let n = op.dim();
    HodlrError::check_dims("shift-invert forward vs inverse operator", n, inv.dim())?;
    let m = validate(n, k, cfg)?;
    let basis = lanczos_basis(inv, m, cfg.seed, true);
    let norm = hermitian_norm1_est(op);
    // Largest |theta| of the inverse operator are the eigenvalues of A
    // nearest sigma; theta -> sigma + 1/theta undoes the spectral map.
    ritz_pairs(
        &basis,
        op,
        |theta| sigma + T::Real::one() / theta,
        k,
        RitzSelect::LargestMagnitude,
        cfg.tol,
        norm,
    )
}

/// Strict variant of [`shift_invert_report`].
///
/// # Errors
/// See [`lanczos_eigs`].
pub fn shift_invert_eigs<T: Scalar, A, B>(
    op: &A,
    inv: &B,
    sigma: T::Real,
    k: usize,
    cfg: &LanczosConfig,
) -> Result<PartialEigen<T>, HodlrError>
where
    A: LinearOperator<T> + ?Sized,
    B: LinearOperator<T> + ?Sized,
{
    let report = shift_invert_report(op, inv, sigma, k, cfg)?;
    require_converged(report, cfg.tol, "shift-invert lanczos eigensolver")
}

fn require_converged<T: Scalar>(
    report: PartialEigen<T>,
    tol: f64,
    what: &str,
) -> Result<PartialEigen<T>, HodlrError> {
    if report.converged {
        return Ok(report);
    }
    let worst = report.residuals.iter().copied().fold(0.0f64, f64::max);
    let unconverged = report
        .residuals
        .iter()
        .filter(|&&r| !(r.is_finite() && r <= tol))
        .count();
    Err(HodlrError::NonConvergence {
        iterations: report.iterations,
        relative_residual: worst,
        context: format!(
            "{what}: {unconverged} of {} Ritz pairs above tolerance {tol:.3e} after a \
             {}-dimensional Krylov basis",
            report.residuals.len(),
            report.iterations
        ),
    })
}
