//! Criterion micro-benchmark backing Fig. 5: batched factorization across
//! two problem sizes so the scaling trend is visible in the report.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hodlr_batch::Device;
use hodlr_bench::rpy_hodlr;
use hodlr_core::GpuSolver;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_scaling");
    group.sample_size(10);
    for n in [3 * 256usize, 3 * 512] {
        let matrix = rpy_hodlr(n, 1e-10);
        group.bench_with_input(
            BenchmarkId::new("batched_factorize", n),
            &matrix,
            |bch, m| {
                bch.iter(|| {
                    let device = Device::new();
                    let mut gpu = GpuSolver::new(&device, m);
                    gpu.factorize().unwrap();
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
