//! Criterion micro-benchmark backing Table III: factorization and solve of
//! a scaled-down RPY kernel matrix.

use criterion::{criterion_group, criterion_main, Criterion};
use hodlr_batch::Device;
use hodlr_bench::rpy_hodlr;
use hodlr_core::GpuSolver;

fn bench(c: &mut Criterion) {
    let matrix = rpy_hodlr(3 * 256, 1e-10);
    let b = vec![1.0; matrix.n()];
    let mut group = c.benchmark_group("table3_rpy");
    group.sample_size(10);
    group.bench_function("serial_factorize", |bch| {
        bch.iter(|| matrix.factorize_serial().unwrap())
    });
    let factor = matrix.factorize_serial().unwrap();
    group.bench_function("serial_solve", |bch| bch.iter(|| factor.solve(&b)));
    group.bench_function("batched_factorize", |bch| {
        bch.iter(|| {
            let device = Device::new();
            let mut gpu = GpuSolver::new(&device, &matrix);
            gpu.factorize().unwrap();
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
