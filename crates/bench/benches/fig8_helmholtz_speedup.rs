//! Criterion micro-benchmark backing Fig. 8: batched vs block-sparse solve
//! on the Helmholtz workload.

use criterion::{criterion_group, criterion_main, Criterion};
use hodlr_batch::Device;
use hodlr_bench::helmholtz_hodlr;
use hodlr_bench::workloads::resolved_kappa;
use hodlr_core::GpuSolver;
use hodlr_la::Complex64;
use hodlr_sparse::ExtendedSystem;

fn bench(c: &mut Criterion) {
    let n = 1024;
    let (_bie, matrix) = helmholtz_hodlr(n, resolved_kappa(n), 1e-6);
    let b = vec![Complex64::new(1.0, 0.0); n];
    let mut group = c.benchmark_group("fig8_helmholtz_speedup");
    group.sample_size(10);

    let device = Device::new();
    let mut gpu = GpuSolver::new(&device, &matrix);
    gpu.factorize().unwrap();
    group.bench_function("batched_solve", |bch| bch.iter(|| gpu.solve(&b)));

    let block_sparse = ExtendedSystem::new(&matrix).factorize(true).unwrap();
    group.bench_function("block_sparse_solve", |bch| {
        bch.iter(|| block_sparse.solve(&b))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
