//! Criterion micro-benchmarks of the virtual device's batched kernels
//! themselves (the building blocks of Algorithms 3-4).

use criterion::{criterion_group, criterion_main, Criterion};
use hodlr_batch::{gemm_strided_batched, getrf_strided_batched, Device, DeviceBuffer, Stream};
use hodlr_la::Op;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("batched_kernels");
    group.sample_size(20);
    let device = Device::new();
    let batch = 64;
    let m = 64;
    let a = DeviceBuffer::<f64>::from_host(&device, &vec![0.5; m * m * batch]);
    let b = DeviceBuffer::<f64>::from_host(&device, &vec![0.25; m * m * batch]);
    group.bench_function("gemm_strided_batched_64x64x64_batch64", |bch| {
        bch.iter(|| {
            let mut c_buf = DeviceBuffer::<f64>::zeros(&device, m * m * batch);
            gemm_strided_batched(
                &device,
                Stream::default(),
                Op::None,
                Op::None,
                m,
                m,
                m,
                1.0,
                &a,
                m,
                m * m,
                &b,
                m,
                m * m,
                0.0,
                &mut c_buf,
                m,
                m * m,
                batch,
            );
        })
    });
    group.bench_function("getrf_strided_batched_64_batch64", |bch| {
        bch.iter(|| {
            let mut work = DeviceBuffer::<f64>::from_host(&device, &diag_dominant_host(m, batch));
            getrf_strided_batched(&device, Stream::default(), m, &mut work, m, m * m, batch)
                .unwrap()
        })
    });
    group.finish();
}

fn diag_dominant_host(m: usize, batch: usize) -> Vec<f64> {
    let mut host = vec![0.1; m * m * batch];
    for k in 0..batch {
        for i in 0..m {
            host[k * m * m + i * m + i] = m as f64;
        }
    }
    host
}

criterion_group!(benches, bench);
criterion_main!(benches);
