//! Criterion micro-benchmark backing Table IV: the Laplace BIE workload.

use criterion::{criterion_group, criterion_main, Criterion};
use hodlr_bench::laplace_hodlr;
use hodlr_sparse::ExtendedSystem;

fn bench(c: &mut Criterion) {
    let (_bie, matrix) = laplace_hodlr(1024, 1e-10);
    let b = vec![1.0; matrix.n()];
    let mut group = c.benchmark_group("table4_laplace");
    group.sample_size(10);
    group.bench_function("serial_factorize", |bch| {
        bch.iter(|| matrix.factorize_serial().unwrap())
    });
    let factor = matrix.factorize_serial().unwrap();
    group.bench_function("serial_solve", |bch| bch.iter(|| factor.solve(&b)));
    group.bench_function("block_sparse_factorize", |bch| {
        bch.iter(|| ExtendedSystem::new(&matrix).factorize(true).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
