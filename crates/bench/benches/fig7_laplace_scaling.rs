//! Criterion micro-benchmark backing Fig. 7: Laplace-BIE solve scaling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hodlr_bench::laplace_hodlr;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_laplace_scaling");
    group.sample_size(10);
    for n in [512usize, 1024] {
        let (_bie, matrix) = laplace_hodlr(n, 1e-8);
        let factor = matrix.factorize_serial().unwrap();
        let b = vec![1.0; n];
        group.bench_with_input(BenchmarkId::new("serial_solve", n), &factor, |bch, f| {
            bch.iter(|| f.solve(&b))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
