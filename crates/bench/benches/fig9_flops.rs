//! Criterion micro-benchmark backing Fig. 9: the flop-heavy batched
//! factorization kernel sequence, whose metered flop count divided by the
//! measured time gives the GFlop/s series.

use criterion::{criterion_group, criterion_main, Criterion};
use hodlr_batch::Device;
use hodlr_bench::kernel_hodlr;
use hodlr_core::GpuSolver;

fn bench(c: &mut Criterion) {
    let matrix = kernel_hodlr(2048, 1e-10);
    let mut group = c.benchmark_group("fig9_flops");
    group.sample_size(10);
    group.bench_function("batched_factorize_2048", |bch| {
        bch.iter(|| {
            let device = Device::new();
            let mut gpu = GpuSolver::new(&device, &matrix);
            gpu.factorize().unwrap();
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
