//! Criterion micro-benchmark backing Table V: the Helmholtz BIE workload
//! (complex arithmetic).

use criterion::{criterion_group, criterion_main, Criterion};
use hodlr_batch::Device;
use hodlr_bench::helmholtz_hodlr;
use hodlr_bench::workloads::resolved_kappa;
use hodlr_core::GpuSolver;
use hodlr_la::Complex64;

fn bench(c: &mut Criterion) {
    let n = 1024;
    let (_bie, matrix) = helmholtz_hodlr(n, resolved_kappa(n), 1e-6);
    let b = vec![Complex64::new(1.0, 0.5); matrix.n()];
    let mut group = c.benchmark_group("table5_helmholtz");
    group.sample_size(10);
    group.bench_function("serial_factorize", |bch| {
        bch.iter(|| matrix.factorize_serial().unwrap())
    });
    group.bench_function("batched_factorize_and_solve", |bch| {
        bch.iter(|| {
            let device = Device::new();
            let mut gpu = GpuSolver::new(&device, &matrix);
            gpu.factorize().unwrap();
            gpu.solve(&b)
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
