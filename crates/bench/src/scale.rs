//! The scale-out family: streaming, memory-budgeted assembly at
//! `n >= 10^5` over 2-D / 3-D geometries, written to `BENCH_scale.json`.
//!
//! Every row builds one HODLR operator *from its entry source* under an
//! explicit memory budget (the build fails, typed, if the metered live
//! footprint would exceed it), factorizes it, solves one right-hand side
//! and reports wall clocks together with the **measured** peak build
//! footprint from the allocation meter — the number the streaming
//! assembly pipeline exists to bound.  Workloads:
//!
//! * `laplace-surface` — the regularized single-layer operator of
//!   [`hodlr_bie::surface`] over the unit circle (2-D) or the Fibonacci
//!   sphere (3-D), clouds deliberately shuffled so the d-dimensional
//!   partitioner does the spatial ordering;
//! * `helmholtz-surface` — its complex oscillatory variant at a resolved
//!   wavenumber;
//! * `gp-se` — a squared-exponential GP covariance (with nugget) over
//!   uniform points in `[0, 1]^d`, reordered by the same partitioner.
//!
//! Rows come in two storage precisions: `f64` (working) and
//! `f32-storage` ([`FactorPrecision::CompactLower`] — the operator is
//! assembled straight into `f32` through the demoting source view, so the
//! `f64` matrix never exists, and solves recover working accuracy by
//! iterative refinement).  The `f32-storage` twin of a row must hold
//! strictly fewer bytes; CI checks that from the JSON.
//!
//! Accuracy is `relres`, the relative residual of the solved system
//! against the operator's own matvec (meaningful at any size); rows with
//! `n <= dense_check_cap` additionally compare the HODLR matvec against
//! the dense source on a fixed vector (`compress_err`) — above the cap no
//! dense oracle is ever formed.

use crate::workloads::LEAF_SIZE;
use hodlr::{FactorPrecision, Factorize, Hodlr, Solve, SolveScalar};
use hodlr_bie::{
    circle_cloud, fibonacci_sphere_cloud, surface_resolved_kappa, HelmholtzSurfaceSource,
    LaplaceSurfaceSource,
};
use hodlr_compress::{CompressionMethod, MatrixEntrySource};
use hodlr_gp::spatial_points;
use hodlr_la::{HodlrError, RealScalar};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// One row of the scale table.
#[derive(Clone, Debug)]
pub struct ScaleRow {
    /// Workload label (`laplace-surface`, `helmholtz-surface`, `gp-se`).
    pub workload: String,
    /// Spatial dimension of the point cloud (2 or 3).
    pub dim: usize,
    /// Matrix size.
    pub n: usize,
    /// Storage precision: `f64` (working) or `f32-storage` (compact).
    pub precision: String,
    /// The memory budget the build ran under, in bytes.
    pub budget_bytes: u64,
    /// Wall-clock seconds of the streaming build.
    pub t_build: f64,
    /// Wall-clock seconds of the factorization.
    pub t_factor: f64,
    /// Wall-clock seconds of one right-hand-side solve.
    pub t_solve: f64,
    /// Measured peak bytes live during the build (allocation meter).
    pub peak_bytes: u64,
    /// Bytes held by the finished HODLR representation.
    pub storage_bytes: u64,
    /// Largest off-diagonal block rank.
    pub max_rank: usize,
    /// Relative residual of the solve against the operator's matvec.
    pub relres: f64,
    /// HODLR-vs-dense matvec error (rows with `n <= dense_check_cap`
    /// only; no dense oracle is formed above the cap).
    pub compress_err: Option<f64>,
    /// Rayon pool size of the run.
    pub threads: usize,
}

/// Sweep configuration of the `scale` binary.
#[derive(Clone, Debug)]
pub struct ScaleBenchConfig {
    /// `(dim, n)` cells of the Laplace surface workload, run at both
    /// storage precisions.
    pub laplace_cells: Vec<(usize, usize)>,
    /// `(dim, n)` cells of the Helmholtz surface workload (`f64` only).
    pub helmholtz_cells: Vec<(usize, usize)>,
    /// `(dim, n)` cells of the GP covariance workload (`f64` only).
    pub gp_cells: Vec<(usize, usize)>,
    /// Compression tolerance.
    pub tol: f64,
    /// Memory budget every build runs under, in bytes.
    pub budget_bytes: u64,
    /// Compare against the dense source up to this size — never above.
    pub dense_check_cap: usize,
}

impl ScaleBenchConfig {
    /// The seconds-scale CI sweep (`--smoke`).
    pub fn smoke() -> Self {
        ScaleBenchConfig {
            laplace_cells: vec![(2, 1024), (3, 2048)],
            helmholtz_cells: vec![(3, 1024)],
            gp_cells: vec![(2, 1024)],
            tol: 1e-6,
            budget_bytes: 512 << 20,
            dense_check_cap: 2048,
        }
    }

    /// The scale-out sweep with the `n >= 10^5` acceptance row.
    pub fn full() -> Self {
        ScaleBenchConfig {
            laplace_cells: vec![(2, 1 << 17), (3, 1 << 14)],
            helmholtz_cells: vec![(3, 1 << 13)],
            gp_cells: vec![(2, 1 << 16), (3, 1 << 17)],
            tol: 1e-6,
            // The 2-D Laplace cell at n = 2^17 peaks at ~7.6 GB during
            // the flattened-base copy (the build transiently holds the
            // per-node factors and the flattened bases at once, ~2x the
            // resident storage); 12 GiB leaves that cell real headroom
            // while still being a meaningful ceiling the meter must
            // prove it stayed under.
            budget_bytes: 12 << 30,
            dense_check_cap: 1 << 13,
        }
    }
}

/// Everything `run_case` needs from a workload, independent of scalar
/// type.
struct CaseResult {
    t_build: f64,
    t_factor: f64,
    t_solve: f64,
    peak_bytes: u64,
    storage_bytes: u64,
    max_rank: usize,
    relres: f64,
    compress_err: Option<f64>,
}

/// Build / factorize / solve one operator and measure everything.
fn run_case<T: SolveScalar>(
    build: impl FnOnce() -> Result<Hodlr<T>, HodlrError>,
    source: &dyn MatrixEntrySource<T>,
    dense_check: bool,
) -> Result<CaseResult, HodlrError> {
    let start = Instant::now();
    let hodlr = build()?;
    let t_build = start.elapsed().as_secs_f64();

    let start = Instant::now();
    let factorization = hodlr.factorize()?;
    let t_factor = start.elapsed().as_secs_f64();

    let n = hodlr.n();
    let b: Vec<T> = (0..n)
        .map(|i| T::from_f64((i as f64 * 0.37).sin() + 1.5))
        .collect();
    let start = Instant::now();
    let x = factorization.solve(&b)?;
    let t_solve = start.elapsed().as_secs_f64();
    let relres = hodlr.relative_residual(&x, &b).to_f64();

    // The HODLR-vs-source check never materializes the dense matrix above
    // the cap; at small sizes it compares matvecs entry-source-exactly.
    let compress_err = if dense_check {
        let dense = source.to_dense();
        let probe: Vec<T> = (0..n)
            .map(|i| T::from_f64(((i as f64) * 0.61).cos()))
            .collect();
        let exact = dense.matvec(&probe);
        let approx = hodlr.matvec(&probe);
        let mut diff = 0.0f64;
        let mut norm = 0.0f64;
        for (e, a) in exact.iter().zip(&approx) {
            diff += (*e - *a).abs_sqr().to_f64();
            norm += e.abs_sqr().to_f64();
        }
        Some((diff / norm.max(f64::MIN_POSITIVE)).sqrt())
    } else {
        None
    };

    Ok(CaseResult {
        t_build,
        t_factor,
        t_solve,
        peak_bytes: hodlr.build_peak_bytes(),
        storage_bytes: hodlr.storage_bytes(),
        max_rank: hodlr.max_rank(),
        relres,
        compress_err,
    })
}

fn row_from(
    workload: &str,
    dim: usize,
    n: usize,
    precision: &str,
    config: &ScaleBenchConfig,
    result: CaseResult,
) -> ScaleRow {
    ScaleRow {
        workload: workload.to_string(),
        dim,
        n,
        precision: precision.to_string(),
        budget_bytes: config.budget_bytes,
        t_build: result.t_build,
        t_factor: result.t_factor,
        t_solve: result.t_solve,
        peak_bytes: result.peak_bytes,
        storage_bytes: result.storage_bytes,
        max_rank: result.max_rank,
        relres: result.relres,
        compress_err: result.compress_err,
        threads: rayon::current_num_threads(),
    }
}

fn surface_cloud(dim: usize, n: usize) -> hodlr_tree::PointCloud {
    if dim == 2 {
        circle_cloud(n)
    } else {
        fibonacci_sphere_cloud(n)
    }
}

/// The Laplace surface cell at one storage precision.
fn laplace_row(
    dim: usize,
    n: usize,
    precision: FactorPrecision,
    config: &ScaleBenchConfig,
) -> Result<ScaleRow, HodlrError> {
    let source = LaplaceSurfaceSource::new(&surface_cloud(dim, n), LEAF_SIZE)?;
    let tree = source.tree().clone();
    let result = run_case(
        || {
            Hodlr::builder()
                .source(&source)
                .tree(tree)
                .tolerance(config.tol)
                .method(CompressionMethod::AcaRook)
                .memory_budget(config.budget_bytes)
                .factor_precision(precision)
                .build()
        },
        &source,
        n <= config.dense_check_cap,
    )?;
    let label = match precision {
        FactorPrecision::Working => "f64",
        FactorPrecision::CompactLower => "f32-storage",
    };
    Ok(row_from("laplace-surface", dim, n, label, config, result))
}

/// The Helmholtz surface cell (complex, working precision).
fn helmholtz_row(dim: usize, n: usize, config: &ScaleBenchConfig) -> Result<ScaleRow, HodlrError> {
    let kappa = surface_resolved_kappa(n, dim);
    let source = HelmholtzSurfaceSource::new(&surface_cloud(dim, n), LEAF_SIZE, kappa)?;
    let tree = source.tree().clone();
    let result = run_case(
        || {
            Hodlr::builder()
                .source(&source)
                .tree(tree)
                .tolerance(config.tol)
                .method(CompressionMethod::AcaRook)
                .memory_budget(config.budget_bytes)
                .build()
        },
        &source,
        n <= config.dense_check_cap,
    )?;
    Ok(row_from("helmholtz-surface", dim, n, "f64", config, result))
}

/// The GP covariance cell: squared-exponential kernel with nugget over
/// uniform points in `[0, 1]^dim`, spatially reordered.
fn gp_row(dim: usize, n: usize, config: &ScaleBenchConfig) -> Result<ScaleRow, HodlrError> {
    let mut rng = StdRng::seed_from_u64(0x5ca1e + ((dim as u64) << 32) + n as u64);
    let part = spatial_points(&mut rng, n, dim, LEAF_SIZE);
    let kernel = hodlr_gp::SquaredExponential {
        variance: 1.0,
        // Length scale tied to the mean spacing so ranks stay bounded as
        // the cloud refines (a fixed scale over a fixed domain makes the
        // matrix numerically low-rank globally, which measures nothing).
        // The 8x multiplier balances two opposing pressures: interface
        // ranks grow like (cluster diameter / length scale)^(d-1), so a
        // tighter scale inflates every off-diagonal rank, while a wider
        // scale inflates the top eigenvalue and with it the compression
        // noise the nugget has to dominate.
        length_scale: 8.0 * (1.0 / (n as f64)).powf(1.0 / dim as f64),
    };
    // The nugget has to dominate the compression noise for the factorized
    // solve to stay tight: truncating off-diagonal blocks at `tol`
    // relative to their norm perturbs the operator by ~`tol * lambda_max`
    // (hundreds of times `tol` at n ~ 1e5), and a nugget below that
    // perturbation leaves the compressed covariance near-singular.  A 10%
    // noise floor is also the realistic regime for spatial regression at
    // this scale.
    let source = hodlr_gp::covariance_source(&kernel, &part.points, 1e-2);
    let result = run_case(
        || {
            Hodlr::builder()
                .source(&source)
                .tree(part.tree.clone())
                .tolerance(config.tol)
                .method(CompressionMethod::AcaRook)
                .memory_budget(config.budget_bytes)
                .build()
        },
        &source,
        n <= config.dense_check_cap,
    )?;
    Ok(row_from("gp-se", dim, n, "f64", config, result))
}

/// Run the sweep: every Laplace cell at both storage precisions, then the
/// Helmholtz and GP cells.
///
/// # Errors
/// The first build / factorization / budget error aborts the sweep (a
/// budget violation is a real failure of the streaming pipeline, not a
/// row to skip).
pub fn run_scale_bench(config: &ScaleBenchConfig) -> Result<Vec<ScaleRow>, HodlrError> {
    let mut rows = Vec::new();
    for &(dim, n) in &config.laplace_cells {
        rows.push(laplace_row(dim, n, FactorPrecision::Working, config)?);
        rows.push(laplace_row(dim, n, FactorPrecision::CompactLower, config)?);
    }
    for &(dim, n) in &config.helmholtz_cells {
        rows.push(helmholtz_row(dim, n, config)?);
    }
    for &(dim, n) in &config.gp_cells {
        rows.push(gp_row(dim, n, config)?);
    }
    Ok(rows)
}

/// Print rows in the aligned table layout of the other harnesses.
pub fn print_scale_table(title: &str, rows: &[ScaleRow]) {
    println!("== {title}");
    println!(
        "{:<18} {:>3} {:>8} {:<12} {:>11} {:>11} {:>10} {:>10} {:>10} {:>5} {:>11} {:>12}",
        "workload",
        "dim",
        "N",
        "precision",
        "t_build[s]",
        "t_factor[s]",
        "peak[MiB]",
        "store[MiB]",
        "t_solve[s]",
        "rank",
        "relres",
        "compress_err"
    );
    for row in rows {
        println!(
            "{:<18} {:>3} {:>8} {:<12} {:>11.3} {:>11.3} {:>10.1} {:>10.1} {:>10.4} {:>5} {:>11.3e} {:>12}",
            row.workload,
            row.dim,
            row.n,
            row.precision,
            row.t_build,
            row.t_factor,
            row.peak_bytes as f64 / (1 << 20) as f64,
            row.storage_bytes as f64 / (1 << 20) as f64,
            row.t_solve,
            row.max_rank,
            row.relres,
            row.compress_err
                .map_or("-".to_string(), |e| format!("{e:.3e}")),
        );
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_sweep_meters_budgets_and_stays_accurate() {
        let config = ScaleBenchConfig {
            laplace_cells: vec![(2, 512), (3, 512)],
            helmholtz_cells: vec![(3, 384)],
            gp_cells: vec![(2, 384)],
            tol: 1e-6,
            budget_bytes: 256 << 20,
            dense_check_cap: 512,
        };
        let rows = run_scale_bench(&config).expect("smoke sweep");
        // 2 Laplace cells x 2 precisions + 1 Helmholtz + 1 GP.
        assert_eq!(rows.len(), 6);
        for row in &rows {
            assert!(row.peak_bytes > 0, "{}: unmetered build", row.workload);
            assert!(
                row.peak_bytes <= row.budget_bytes,
                "{}: peak over budget",
                row.workload
            );
            assert!(
                row.relres.is_finite() && row.relres < 1e-7,
                "{} {}: relres {}",
                row.workload,
                row.precision,
                row.relres
            );
            let err = row.compress_err.expect("all smoke rows under the cap");
            assert!(err < 1e-4, "{}: compress_err {err}", row.workload);
        }
        // The compact twin stores strictly fewer bytes than its f64 row.
        for pair in rows.chunks(2).take(2) {
            assert_eq!(pair[0].precision, "f64");
            assert_eq!(pair[1].precision, "f32-storage");
            assert!(
                pair[1].storage_bytes < pair[0].storage_bytes,
                "compact twin not smaller: {} vs {}",
                pair[1].storage_bytes,
                pair[0].storage_bytes
            );
        }
        print_scale_table("smoke", &rows);
    }
}
