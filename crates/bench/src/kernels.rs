//! Dense-kernel microbenchmarks: gemm / LU / QR GFLOP/s by size, scalar
//! type and thread count, plus the blocked-vs-reference speedup and the
//! bitwise-determinism check across pool sizes.
//!
//! The `kernels` binary turns these rows into `BENCH_kernels.json`, the perf
//! trajectory every kernel-touching PR is measured against: the headline
//! number is single-thread f64 `gemm` throughput at `1024^3` relative to the
//! retained naive reference kernel
//! ([`hodlr_la::blas::gemm_reference`]).

use hodlr_la::blas::{gemm_flops, gemm_reference};
use hodlr_la::lu::getrf_in_place;
use hodlr_la::qr::thin_qr;
use hodlr_la::random::random_matrix;
use hodlr_la::{gemm, Complex64, DenseMatrix, Op, Scalar};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// One measured kernel configuration.
#[derive(Clone, Debug)]
pub struct KernelRow {
    /// Kernel name: `gemm`, `gemm_reference`, `getrf`, `thin_qr`.
    pub kernel: String,
    /// Scalar type: `f64` or `c64`.
    pub scalar: String,
    /// Rows of `C` / order of the factorized matrix.
    pub m: usize,
    /// Columns of `C`.
    pub n: usize,
    /// Inner dimension.
    pub k: usize,
    /// Pool size the row was measured with.
    pub threads: usize,
    /// Best-of-reps wall time in seconds.
    pub time_s: f64,
    /// Achieved GFLOP/s (real-flop convention: complex multiply-add = 4x).
    pub gflops: f64,
    /// Speedup against the naive reference kernel at the same size (one
    /// thread), when the reference was measured.
    pub speedup_vs_reference: Option<f64>,
    /// `Some(true)` when this row's output was bitwise identical to the
    /// 1-thread run of the same problem.
    pub bitwise_vs_1thread: Option<bool>,
}

/// Real-flop multiplier (complex multiply-add = 4 real multiply-adds).
fn flop_factor<T: Scalar>() -> f64 {
    if T::IS_COMPLEX {
        4.0
    } else {
        1.0
    }
}

fn scalar_name<T: Scalar>() -> &'static str {
    if T::IS_COMPLEX {
        "c64"
    } else {
        "f64"
    }
}

/// Best-of-`reps` wall time of `f`.
fn best_of(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

fn pool(threads: usize) -> rayon::ThreadPool {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("bench pool")
}

/// Time one gemm (`C = A * B`) at `m x n x k`; returns `(time, C data)`.
fn time_gemm<T: Scalar>(
    m: usize,
    n: usize,
    k: usize,
    reps: usize,
    reference: bool,
) -> (f64, Vec<T>) {
    let mut rng = StdRng::seed_from_u64((m * 31 + n * 7 + k) as u64);
    let a: DenseMatrix<T> = random_matrix(&mut rng, m, k);
    let b: DenseMatrix<T> = random_matrix(&mut rng, k, n);
    let mut c = DenseMatrix::<T>::zeros(m, n);
    let t = best_of(reps, || {
        if reference {
            gemm_reference(
                T::one(),
                a.as_ref(),
                Op::None,
                b.as_ref(),
                Op::None,
                T::zero(),
                c.as_mut(),
            );
        } else {
            gemm(
                T::one(),
                a.as_ref(),
                Op::None,
                b.as_ref(),
                Op::None,
                T::zero(),
                c.as_mut(),
            );
        }
    });
    (t, c.into_data())
}

/// Time one in-place LU at order `n`; returns `(time, packed factors)`.
fn time_getrf<T: Scalar>(n: usize, reps: usize) -> (f64, Vec<T>) {
    let mut rng = StdRng::seed_from_u64(n as u64 ^ 0x5eed);
    let a: DenseMatrix<T> = random_matrix(&mut rng, n, n);
    let mut out = Vec::new();
    let t = best_of(reps, || {
        let mut lu = a.clone();
        getrf_in_place(lu.as_mut()).expect("bench matrix is nonsingular");
        out = lu.into_data();
    });
    (t, out)
}

/// Time one thin QR at `m x n`; returns `(time, Q data)`.
fn time_qr<T: Scalar>(m: usize, n: usize, reps: usize) -> (f64, Vec<T>) {
    let mut rng = StdRng::seed_from_u64((m * 13 + n) as u64);
    let a: DenseMatrix<T> = random_matrix(&mut rng, m, n);
    let mut out = Vec::new();
    let t = best_of(reps, || {
        let (q, _r) = thin_qr(&a);
        out = q.into_data();
    });
    (t, out)
}

/// Flop counts of the factorizations (real multiply-add = 2 flops).
fn getrf_flops(n: usize) -> f64 {
    2.0 * (n as f64).powi(3) / 3.0
}

fn qr_flops(m: usize, n: usize) -> f64 {
    // Householder thin QR + explicit thin-Q formation: ~4mn^2 - 4n^3/3.
    4.0 * m as f64 * (n as f64) * (n as f64) - 4.0 * (n as f64).powi(3) / 3.0
}

/// The sweep configuration of the `kernels` binary.
#[derive(Clone, Debug)]
pub struct KernelBenchConfig {
    /// GEMM cube sizes (`m = n = k`).
    pub gemm_sizes: Vec<usize>,
    /// Cube sizes at which the naive reference kernel is also timed.
    pub reference_sizes: Vec<usize>,
    /// LU orders.
    pub lu_sizes: Vec<usize>,
    /// QR shapes `(m, n)`.
    pub qr_sizes: Vec<(usize, usize)>,
    /// Thread counts to sweep (the first is the baseline for bitwise
    /// comparisons and must be 1).
    pub threads: Vec<usize>,
    /// Timing repetitions (best-of).
    pub reps: usize,
}

impl KernelBenchConfig {
    /// The committed-trajectory sweep: includes the headline
    /// 1024^3 f64 gemm-vs-reference measurement.
    pub fn full() -> Self {
        KernelBenchConfig {
            gemm_sizes: vec![256, 512, 1024],
            reference_sizes: vec![256, 512, 1024],
            lu_sizes: vec![256, 512, 1024],
            qr_sizes: vec![(512, 256), (1024, 512)],
            threads: vec![1, 2, 8],
            reps: 2,
        }
    }

    /// A seconds-scale smoke sweep for CI: tiny sizes, same code paths
    /// (every size still crosses the blocked thresholds).
    pub fn smoke() -> Self {
        KernelBenchConfig {
            gemm_sizes: vec![160],
            reference_sizes: vec![160],
            lu_sizes: vec![160],
            qr_sizes: vec![(128, 100)],
            threads: vec![1, 2],
            reps: 1,
        }
    }
}

/// Run one scalar type's sweep, appending to `rows`.
fn sweep_scalar<T: Scalar>(config: &KernelBenchConfig, rows: &mut Vec<KernelRow>) {
    let scalar = scalar_name::<T>().to_string();
    let ff = flop_factor::<T>();

    // GEMM: reference baseline (1 thread), then the blocked kernel over the
    // thread sweep with bitwise comparison against its own 1-thread output.
    for &s in &config.gemm_sizes {
        let reference_t = if config.reference_sizes.contains(&s) {
            let (t, _) = pool(1).install(|| time_gemm::<T>(s, s, s, config.reps, true));
            let flops = ff * gemm_flops(s, s, s) as f64;
            rows.push(KernelRow {
                kernel: "gemm_reference".into(),
                scalar: scalar.clone(),
                m: s,
                n: s,
                k: s,
                threads: 1,
                time_s: t,
                gflops: flops / t / 1e9,
                speedup_vs_reference: None,
                bitwise_vs_1thread: None,
            });
            Some(t)
        } else {
            None
        };

        let mut base_out: Option<Vec<T>> = None;
        for &nt in &config.threads {
            let (t, out) = pool(nt).install(|| time_gemm::<T>(s, s, s, config.reps, false));
            let bitwise = base_out.as_ref().map(|b| bitwise_eq(b, &out));
            if base_out.is_none() {
                base_out = Some(out);
            }
            let flops = ff * gemm_flops(s, s, s) as f64;
            rows.push(KernelRow {
                kernel: "gemm".into(),
                scalar: scalar.clone(),
                m: s,
                n: s,
                k: s,
                threads: nt,
                time_s: t,
                gflops: flops / t / 1e9,
                speedup_vs_reference: if nt == 1 {
                    reference_t.map(|rt| rt / t)
                } else {
                    None
                },
                bitwise_vs_1thread: bitwise,
            });
        }
    }

    // LU over the thread sweep (the trailing gemm updates parallelize).
    for &s in &config.lu_sizes {
        let mut base_out: Option<Vec<T>> = None;
        for &nt in &config.threads {
            let (t, out) = pool(nt).install(|| time_getrf::<T>(s, config.reps));
            let bitwise = base_out.as_ref().map(|b| bitwise_eq(b, &out));
            if base_out.is_none() {
                base_out = Some(out);
            }
            rows.push(KernelRow {
                kernel: "getrf".into(),
                scalar: scalar.clone(),
                m: s,
                n: s,
                k: s,
                threads: nt,
                time_s: t,
                gflops: ff * getrf_flops(s) / t / 1e9,
                speedup_vs_reference: None,
                bitwise_vs_1thread: bitwise,
            });
        }
    }

    // QR at 1 thread and the largest thread count.
    for &(m, n) in &config.qr_sizes {
        let mut base_out: Option<Vec<T>> = None;
        for &nt in &config.threads {
            let (t, out) = pool(nt).install(|| time_qr::<T>(m, n, config.reps));
            let bitwise = base_out.as_ref().map(|b| bitwise_eq(b, &out));
            if base_out.is_none() {
                base_out = Some(out);
            }
            rows.push(KernelRow {
                kernel: "thin_qr".into(),
                scalar: scalar.clone(),
                m,
                n,
                k: n,
                threads: nt,
                time_s: t,
                gflops: ff * qr_flops(m, n) / t / 1e9,
                speedup_vs_reference: None,
                bitwise_vs_1thread: bitwise,
            });
        }
    }
}

/// Bitwise equality of two result buffers.
fn bitwise_eq<T: Scalar>(a: &[T], b: &[T]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x == y)
}

/// Run the configured sweep over f64 and Complex64.
pub fn run_kernel_bench(config: &KernelBenchConfig) -> Vec<KernelRow> {
    assert_eq!(
        config.threads.first(),
        Some(&1),
        "thread sweep must start at 1 (bitwise baseline)"
    );
    let mut rows = Vec::new();
    sweep_scalar::<f64>(config, &mut rows);
    sweep_scalar::<Complex64>(config, &mut rows);
    rows
}

/// Print the rows as an aligned table.
pub fn print_kernel_table(rows: &[KernelRow]) {
    println!(
        "{:<16} {:>6} {:>6} {:>6} {:>6} {:>8} {:>12} {:>10} {:>9} {:>8}",
        "kernel", "scalar", "m", "n", "k", "threads", "time [s]", "GFLOP/s", "speedup", "bitwise"
    );
    for r in rows {
        println!(
            "{:<16} {:>6} {:>6} {:>6} {:>6} {:>8} {:>12.4e} {:>10.3} {:>9} {:>8}",
            r.kernel,
            r.scalar,
            r.m,
            r.n,
            r.k,
            r.threads,
            r.time_s,
            r.gflops,
            r.speedup_vs_reference
                .map(|s| format!("{s:.2}x"))
                .unwrap_or_else(|| "-".into()),
            r.bitwise_vs_1thread
                .map(|b| if b { "yes" } else { "NO" }.to_string())
                .unwrap_or_else(|| "-".into()),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_sweep_produces_consistent_rows() {
        let mut config = KernelBenchConfig::smoke();
        // Keep the unit test fast: one small gemm + LU + QR per scalar.
        config.gemm_sizes = vec![96];
        config.reference_sizes = vec![96];
        config.lu_sizes = vec![96];
        config.qr_sizes = vec![(64, 48)];
        config.threads = vec![1, 2];
        let rows = run_kernel_bench(&config);
        assert!(rows.iter().any(|r| r.kernel == "gemm" && r.scalar == "f64"));
        assert!(rows.iter().any(|r| r.kernel == "gemm_reference"));
        assert!(rows
            .iter()
            .any(|r| r.kernel == "getrf" && r.scalar == "c64"));
        assert!(rows.iter().any(|r| r.kernel == "thin_qr"));
        // Every multi-thread row must report a bitwise verdict, and it must
        // be "identical".
        for r in &rows {
            assert!(r.time_s > 0.0);
            assert!(r.gflops.is_finite());
            if r.threads > 1 {
                assert_eq!(
                    r.bitwise_vs_1thread,
                    Some(true),
                    "{} {}x{}x{} at {} threads not bitwise-identical",
                    r.kernel,
                    r.m,
                    r.n,
                    r.k,
                    r.threads
                );
            }
        }
    }
}
