//! # hodlr-bench — harnesses that regenerate the paper's tables and figures
//!
//! One binary per table/figure of the evaluation section:
//!
//! | Binary | Paper artefact | Workload |
//! |---|---|---|
//! | `table3` | Table III | RPY kernel matrices (Section IV-A) |
//! | `fig5` | Fig. 5 | scaling of the Table III runs (CSV series) |
//! | `table4` | Table IV (a)/(b) | Laplace exterior BIE (Section IV-B) |
//! | `fig7` | Fig. 7 | scaling of the Table IV runs (CSV series) |
//! | `table5` | Table V (a)/(b) | Helmholtz exterior BIE (Section IV-C) |
//! | `fig8` | Fig. 8 | speedups of the Table V runs |
//! | `fig9` | Fig. 9 | GFlop/s of factorization and solve |
//! | `ranks` | Appendix | per-level off-diagonal rank profiles |
//! | `iterative` | Table V(b) extension | preconditioned GMRES/BiCGStab/mixed-precision over all three workloads |
//! | `kernels` | (infrastructure) | gemm/LU/QR GFLOP/s by size, scalar and thread count vs the naive reference kernel |
//! | `gp` | Section III-E(a) application | GP log-marginal likelihood (solve + product-form `log_det`) by kernel family, backend and tolerance, vs the dense Cholesky oracle |
//! | `spectral` | (spectral subsystem) | dense EVD/SVD kernel accuracy, HODLR-accelerated Lanczos eigenpairs and the SLQ log-determinant vs the product form, with 1/2/8-thread bitwise-determinism verdicts |
//!
//! Every binary accepts `--full` to run the paper's original problem sizes
//! (hours on a laptop; the defaults are scaled down so a full sweep finishes
//! in minutes) and `--sizes 4096,8192,...` to override the sweep explicitly.
//! All harnesses print the same row layout as the corresponding table —
//! `N`, factorization time `t_f`, solve time `t_s`, memory `mem`, relative
//! residual `relres` per solver — so paper-vs-measured comparisons (recorded
//! in EXPERIMENTS.md) are line-by-line.
//!
//! The wall-clock columns are measured on the virtual batched-BLAS device of
//! `hodlr-batch`; absolute numbers therefore reflect CPU execution, while
//! the *shape* — scaling slopes, memory footprints, residuals, who wins and
//! where the crossovers are among the CPU solvers — is what reproduces the
//! paper (see DESIGN.md for the substitution argument).
//!
//! Every row records the rayon pool size in a `threads` column (set
//! `HODLR_NUM_THREADS` to sweep it), and every binary additionally emits a
//! machine-readable `BENCH_<name>.json` (see [`json`]; override the path
//! with `HODLR_BENCH_JSON`) so successive PRs accumulate a comparable perf
//! trajectory.  The `kernels` binary (`--smoke` for the CI-sized sweep) is
//! the dense-kernel trajectory: gemm/LU/QR GFLOP/s, blocked-vs-reference
//! speedup, and bitwise-determinism verdicts across 1/2/8-thread pools.

pub mod gp;
pub mod harness;
pub mod iterative;
pub mod json;
pub mod kernels;
pub mod scale;
pub mod serve;
pub mod spectral;
pub mod workloads;

pub use gp::{print_gp_table, run_gp_bench, GpBenchConfig, GpRow};
pub use harness::{measure_solvers, print_csv, print_table, MeasureConfig, SolverRow};
pub use iterative::{
    measure_block_direct, measure_iterative, print_iterative_table, IterativeConfig, IterativeRow,
};
pub use json::{
    gp_rows_to_json, iterative_rows_to_json, kernel_rows_to_json, scale_rows_to_json,
    serve_rows_to_json, solver_rows_to_json, spectral_rows_to_json, write_gp_json,
    write_iterative_json, write_kernel_json, write_scale_json, write_serve_json, write_solver_json,
    write_spectral_json,
};
pub use kernels::{print_kernel_table, run_kernel_bench, KernelBenchConfig, KernelRow};
pub use scale::{print_scale_table, run_scale_bench, ScaleBenchConfig, ScaleRow};
pub use serve::{print_serve_table, run_serve_bench, ServeBenchConfig, ServeRow};
pub use spectral::{print_spectral_table, run_spectral_bench, SpectralBenchConfig, SpectralRow};
pub use workloads::{
    helmholtz_hodlr, kernel_hodlr, laplace_hodlr, parse_args, rpy_hodlr, SweepArgs,
};
