//! The Gaussian-process scenario family: log-marginal likelihood via
//! HODLR `solve` + `log_det` across kernel families, backends and
//! compression tolerances, validated against the dense Cholesky oracle
//! where that is affordable.
//!
//! This is the workload the product-form determinant of Section III-E (a)
//! exists for: one factorization yields both `y^T K^{-1} y` and `log|K|`
//! in `O(N log^2 N)`, on the serial backend or the batched device (the
//! `log_det` of the two agrees bitwise).  Every row reports the
//! factorization, log-det and full-likelihood wall-clock times plus
//! launch/flop metering: real device counters for the batched backend,
//! the analytic Theorem 2–4 flop model for the serial one — so no row
//! ever carries a zero flop count.

use hodlr::Backend;
use hodlr_core::ComplexityReport;
use hodlr_gp::{
    covariance_source, dense_log_likelihood, regular_grid_1d, GpConfig, GpModel, KernelFamily,
};
use std::time::Instant;

/// One row of the GP likelihood table.
#[derive(Clone, Debug)]
pub struct GpRow {
    /// Kernel family label (`squared-exponential`, `matern-3/2`, ...).
    pub kernel: String,
    /// Backend label (`serial`, `batched`).
    pub backend: String,
    /// Number of observations `n`.
    pub n: usize,
    /// Compression tolerance of the covariance approximation.
    pub tol: f64,
    /// Wall-clock seconds compressing the covariance into HODLR form.
    pub t_build: f64,
    /// Wall-clock seconds factorizing (`t_factor`).
    pub t_factor: f64,
    /// Wall-clock seconds for the product-form `log_det` (`t_logdet`).
    pub t_logdet: f64,
    /// Wall-clock seconds scoring one observation vector (one solve +
    /// assembly against the precomputed determinant term).
    pub t_loglik: f64,
    /// The evaluated log-marginal likelihood.
    pub log_likelihood: f64,
    /// `|loglik_hodlr - loglik_dense_cholesky|`, when the dense oracle was
    /// affordable at this size.
    pub loglik_err_vs_dense: Option<f64>,
    /// Device kernel launches metered across factorize + likelihood
    /// (0 on the serial backend, which launches nothing).
    pub launches: u64,
    /// Flops: device-metered for the batched backend, the analytic
    /// factorization + solve model for the serial one.  Non-zero for every
    /// row.
    pub flops: u64,
    /// Rayon pool size the row was measured with.
    pub threads: usize,
}

/// Sweep configuration of the `gp` binary.
#[derive(Clone, Debug)]
pub struct GpBenchConfig {
    /// Observation counts to sweep.
    pub sizes: Vec<usize>,
    /// Compression tolerances to sweep.
    pub tols: Vec<f64>,
    /// Run the dense `O(n^3)` Cholesky oracle up to this size.
    pub dense_oracle_cap: usize,
}

impl GpBenchConfig {
    /// The seconds-scale CI sweep (`--smoke`).
    pub fn smoke() -> Self {
        GpBenchConfig {
            sizes: vec![256],
            tols: vec![1e-6, 1e-10],
            dense_oracle_cap: 512,
        }
    }

    /// The default laptop-scale sweep.
    pub fn full() -> Self {
        GpBenchConfig {
            sizes: vec![1 << 10, 1 << 12, 1 << 14],
            tols: vec![1e-6, 1e-10],
            dense_oracle_cap: 1 << 11,
        }
    }
}

/// The kernel families every sweep visits.
pub const GP_BENCH_FAMILIES: [KernelFamily; 5] = [
    KernelFamily::SquaredExponential,
    KernelFamily::MaternHalf,
    KernelFamily::MaternThreeHalves,
    KernelFamily::MaternFiveHalves,
    KernelFamily::RationalQuadratic { alpha: 2.0 },
];

/// Deterministic synthetic observations: a two-scale smooth signal.
fn bench_observations(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| {
            let x = 4.0 * i as f64 / (n - 1).max(1) as f64;
            (2.0 * x).sin() + 0.3 * (7.0 * x).cos()
        })
        .collect()
}

/// Run the sweep: `n x kernel x backend x tolerance`.
pub fn run_gp_bench(config: &GpBenchConfig) -> Vec<GpRow> {
    let threads = rayon::current_num_threads();
    let noise = 1e-2;
    let mut rows = Vec::new();
    for &n in &config.sizes {
        let points = regular_grid_1d(n, 0.0, 4.0);
        let y = bench_observations(n);
        for family in GP_BENCH_FAMILIES {
            let kernel = family.kernel(1.0, 0.5);
            // The dense oracle depends only on (kernel, n): evaluate it
            // once and compare every (backend, tol) row against it.
            let oracle = if n <= config.dense_oracle_cap {
                let source = covariance_source(&kernel, &points, noise);
                let dense = hodlr_compress::MatrixEntrySource::to_dense(&source);
                Some(dense_log_likelihood(&dense, &y).expect("oracle covariance is SPD"))
            } else {
                None
            };
            for &tol in &config.tols {
                // Compression is backend-independent: build once per
                // (kernel, tol) and hand the same compressed covariance
                // to the batched backend via `with_backend`.
                let gp_config = GpConfig {
                    backend: Backend::Serial,
                    tolerance: tol,
                    ..GpConfig::default()
                };
                let start = Instant::now();
                let base = GpModel::build(&kernel, &points, noise, &gp_config)
                    .expect("GP covariance construction");
                let t_compress = start.elapsed().as_secs_f64();
                for backend in [Backend::Serial, Backend::Batched] {
                    let (model, t_build) = match backend {
                        Backend::Serial => (None, t_compress),
                        Backend::Batched => {
                            let start = Instant::now();
                            let m = base.with_backend(backend).expect("backend rewrap");
                            (Some(m), t_compress + start.elapsed().as_secs_f64())
                        }
                    };
                    let model = model.as_ref().unwrap_or(&base);

                    // The metered window is exactly one likelihood
                    // evaluation: factorize, one determinant term, one
                    // solve — nothing is evaluated twice for timing.
                    let device = model.hodlr().device();
                    let before = device.counters();
                    let start = Instant::now();
                    let factorization = model.factorize().expect("GP covariance is SPD");
                    let t_factor = start.elapsed().as_secs_f64();

                    let start = Instant::now();
                    let log_det = model
                        .log_det_term(&factorization)
                        .expect("covariance is SPD");
                    let t_logdet = start.elapsed().as_secs_f64();

                    let start = Instant::now();
                    let ll = model
                        .log_likelihood_terms(&factorization, log_det, &y)
                        .expect("GP likelihood");
                    let t_loglik = start.elapsed().as_secs_f64();
                    let metered = device.counters().since(&before);

                    let flops = match backend {
                        Backend::Batched => metered.flops,
                        // The serial backend launches nothing on the
                        // device; report the analytic Theorem 2-4 model
                        // (one factorization + one solve's worth).
                        Backend::Serial => {
                            let report = ComplexityReport::for_matrix(model.hodlr().matrix());
                            report.factorization_flops + report.solve_flops
                        }
                    };
                    rows.push(GpRow {
                        kernel: family.name().to_string(),
                        backend: match backend {
                            Backend::Serial => "serial".to_string(),
                            Backend::Batched => "batched".to_string(),
                        },
                        n,
                        tol,
                        t_build,
                        t_factor,
                        t_logdet,
                        t_loglik,
                        log_likelihood: ll.value,
                        loglik_err_vs_dense: oracle.as_ref().map(|o| (ll.value - o.value).abs()),
                        launches: metered.kernel_launches,
                        flops,
                        threads,
                    });
                }
            }
        }
    }
    rows
}

/// Print rows in the aligned table layout of the other harnesses.
pub fn print_gp_table(title: &str, rows: &[GpRow]) {
    println!("== {title}");
    println!(
        "{:<22} {:<8} {:<8} {:<10} {:>12} {:>12} {:>12} {:>16} {:>14} {:>10}",
        "kernel",
        "N",
        "backend",
        "tol",
        "t_f [s]",
        "t_logdet [s]",
        "t_loglik [s]",
        "loglik",
        "err vs dense",
        "launches"
    );
    for row in rows {
        println!(
            "{:<22} {:<8} {:<8} {:<10.1e} {:>12.4e} {:>12.4e} {:>12.4e} {:>16.6} {:>14} {:>10}",
            row.kernel,
            row.n,
            row.backend,
            row.tol,
            row.t_factor,
            row.t_logdet,
            row.t_loglik,
            row.log_likelihood,
            row.loglik_err_vs_dense
                .map_or("-".to_string(), |e| format!("{e:.3e}")),
            row.launches
        );
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_sweep_produces_metered_accurate_rows() {
        let config = GpBenchConfig {
            sizes: vec![192],
            tols: vec![1e-10],
            dense_oracle_cap: 256,
        };
        let rows = run_gp_bench(&config);
        // 5 kernels x 2 backends x 1 tolerance.
        assert_eq!(rows.len(), 10);
        for row in &rows {
            assert!(row.flops > 0, "{} {}: zero flops", row.kernel, row.backend);
            assert!(row.log_likelihood.is_finite());
            let err = row.loglik_err_vs_dense.expect("oracle runs at n=192");
            assert!(err < 1e-6, "{} {}: err {err}", row.kernel, row.backend);
            if row.backend == "batched" {
                assert!(row.launches > 0);
            }
        }
        // Serial and batched likelihoods agree far below the oracle error.
        for pair in rows.chunks(2) {
            assert!((pair[0].log_likelihood - pair[1].log_likelihood).abs() < 1e-8);
        }
        print_gp_table("smoke", &rows);
    }
}
