//! The Gaussian-process scenario family: log-marginal likelihood via
//! HODLR `solve` + `log_det` across kernel families, backends, compression
//! tolerances **and factorization paths** (LU vs the SPD Cholesky fast
//! path), plus a posterior-sampling scenario, validated against the dense
//! Cholesky oracle where that is affordable.
//!
//! This is the workload the product-form determinant of Section III-E (a)
//! exists for: one factorization yields both `y^T K^{-1} y` and `log|K|`
//! in `O(N log^2 N)`, on the serial backend or the batched device (the
//! `log_det` of the two agrees bitwise).  The SPD rows factorize the same
//! covariance through the symmetric path (`path: "spd"`) and land at
//! measurably lower flop and byte counts than their LU twins; the
//! `path: "sampling"` rows exercise the `K = L L^T` payoff — Matheron
//! pathwise posterior draws plus predictive variance.  Every row reports
//! wall-clock times plus launch/flop metering: real device counters for
//! the batched backend, the analytic Theorem 2–4 (and its symmetric
//! variant) flop model for the serial one — so no row ever carries a zero
//! flop count.

use hodlr::{Backend, Solve, Symmetry};
use hodlr_core::ComplexityReport;
use hodlr_gp::{
    covariance_source, dense_log_likelihood, regular_grid_1d, GpConfig, GpModel, GpPosterior,
    KernelFamily, StationaryKernel,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// One row of the GP likelihood table.
#[derive(Clone, Debug)]
pub struct GpRow {
    /// Kernel family label (`squared-exponential`, `matern-3/2`, ...).
    pub kernel: String,
    /// Backend label (`serial`, `batched`).
    pub backend: String,
    /// Factorization path: `lu` (general), `spd` (Cholesky fast path) or
    /// `sampling` (posterior draws + predictive variance on the SPD path).
    pub path: String,
    /// Number of observations `n`.
    pub n: usize,
    /// Compression tolerance of the covariance approximation.
    pub tol: f64,
    /// Wall-clock seconds compressing the covariance into HODLR form (for
    /// `sampling` rows: including the dense joint-prior Cholesky).
    pub t_build: f64,
    /// Wall-clock seconds factorizing (`t_factor`).
    pub t_factor: f64,
    /// Wall-clock seconds for the product-form `log_det` (for `sampling`
    /// rows: the blocked predictive-variance solve).
    pub t_logdet: f64,
    /// Wall-clock seconds scoring one observation vector (for `sampling`
    /// rows: drawing the posterior sample block).
    pub t_loglik: f64,
    /// The evaluated log-marginal likelihood.
    pub log_likelihood: f64,
    /// `|loglik_hodlr - loglik_dense_cholesky|` (for `sampling` rows: the
    /// max predictive-variance error against the dense posterior), when
    /// the dense oracle was affordable at this size.
    pub loglik_err_vs_dense: Option<f64>,
    /// Device kernel launches metered across factorize + likelihood
    /// (0 on the serial backend, which launches nothing).
    pub launches: u64,
    /// Flops: device-metered for the batched backend, the analytic
    /// factorization + solve model for the serial one.  Non-zero for every
    /// row.
    pub flops: u64,
    /// Bytes held by the factorization (the SPD path stores triangular
    /// factors and shares sibling bases, so its rows undercut LU's).
    pub factor_bytes: u64,
    /// Rayon pool size the row was measured with.
    pub threads: usize,
}

/// Sweep configuration of the `gp` binary.
#[derive(Clone, Debug)]
pub struct GpBenchConfig {
    /// Observation counts to sweep.
    pub sizes: Vec<usize>,
    /// Compression tolerances to sweep.
    pub tols: Vec<f64>,
    /// Run the dense `O(n^3)` Cholesky oracle up to this size.
    pub dense_oracle_cap: usize,
    /// Run the posterior-sampling scenario up to this size (its joint
    /// prior needs a dense `O((n+m)^3)` Cholesky).
    pub sampling_cap: usize,
    /// Posterior draws per sampling row.
    pub sampling_draws: usize,
}

impl GpBenchConfig {
    /// The seconds-scale CI sweep (`--smoke`).
    pub fn smoke() -> Self {
        GpBenchConfig {
            sizes: vec![256],
            tols: vec![1e-6, 1e-10],
            dense_oracle_cap: 512,
            sampling_cap: 512,
            sampling_draws: 64,
        }
    }

    /// The default laptop-scale sweep.
    pub fn full() -> Self {
        GpBenchConfig {
            sizes: vec![1 << 10, 1 << 12, 1 << 14],
            tols: vec![1e-6, 1e-10],
            dense_oracle_cap: 1 << 11,
            sampling_cap: 1 << 11,
            sampling_draws: 256,
        }
    }
}

/// The kernel families every sweep visits.
pub const GP_BENCH_FAMILIES: [KernelFamily; 5] = [
    KernelFamily::SquaredExponential,
    KernelFamily::MaternHalf,
    KernelFamily::MaternThreeHalves,
    KernelFamily::MaternFiveHalves,
    KernelFamily::RationalQuadratic { alpha: 2.0 },
];

/// Deterministic synthetic observations: a two-scale smooth signal.
fn bench_observations(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| {
            let x = 4.0 * i as f64 / (n - 1).max(1) as f64;
            (2.0 * x).sin() + 0.3 * (7.0 * x).cos()
        })
        .collect()
}

fn backend_label(backend: Backend) -> &'static str {
    match backend {
        Backend::Serial => "serial",
        Backend::Batched => "batched",
    }
}

/// Analytic serial flop model for one factorization + `rhs_cols` solve
/// columns on the given path.
fn serial_flops(model: &GpModel, symmetry: Symmetry, rhs_cols: u64) -> u64 {
    let report = ComplexityReport::for_matrix(
        model
            .hodlr()
            .matrix()
            .expect("benchmark models are built in working precision"),
    );
    let factor = match symmetry {
        Symmetry::General => report.factorization_flops,
        _ => report.model.symmetric_factorization_flops(),
    };
    factor + report.solve_flops * rhs_cols
}

/// Run the sweep: `n x kernel x path x backend x tolerance`, plus one
/// posterior-sampling row per backend at sizes within `sampling_cap`.
pub fn run_gp_bench(config: &GpBenchConfig) -> Vec<GpRow> {
    let threads = rayon::current_num_threads();
    let noise = 1e-2;
    let mut rows = Vec::new();
    for &n in &config.sizes {
        let points = regular_grid_1d(n, 0.0, 4.0);
        let y = bench_observations(n);
        for family in GP_BENCH_FAMILIES {
            let kernel = family.kernel(1.0, 0.5);
            // The dense oracle depends only on (kernel, n): evaluate it
            // once and compare every (path, backend, tol) row against it.
            let oracle = if n <= config.dense_oracle_cap {
                let source = covariance_source(&kernel, &points, noise);
                let dense = hodlr_compress::MatrixEntrySource::to_dense(&source);
                Some(dense_log_likelihood(&dense, &y).expect("oracle covariance is SPD"))
            } else {
                None
            };
            for &tol in &config.tols {
                for symmetry in [Symmetry::General, Symmetry::PositiveDefinite] {
                    let path = match symmetry {
                        Symmetry::General => "lu",
                        _ => "spd",
                    };
                    // Compression is backend-independent: build once per
                    // (kernel, tol, path) and hand the same compressed
                    // covariance to the batched backend via `with_backend`.
                    let gp_config = GpConfig {
                        backend: Backend::Serial,
                        tolerance: tol,
                        symmetry,
                        ..GpConfig::default()
                    };
                    let start = Instant::now();
                    let base = GpModel::build(&kernel, &points, noise, &gp_config)
                        .expect("GP covariance construction");
                    let t_compress = start.elapsed().as_secs_f64();
                    for backend in [Backend::Serial, Backend::Batched] {
                        let (model, t_build) = match backend {
                            Backend::Serial => (None, t_compress),
                            Backend::Batched => {
                                let start = Instant::now();
                                let m = base.with_backend(backend).expect("backend rewrap");
                                (Some(m), t_compress + start.elapsed().as_secs_f64())
                            }
                        };
                        let model = model.as_ref().unwrap_or(&base);

                        // The metered window is exactly one likelihood
                        // evaluation: factorize, one determinant term, one
                        // solve — nothing is evaluated twice for timing.
                        let device = model.hodlr().device();
                        let before = device.counters();
                        let start = Instant::now();
                        let factorization = model.factorize().expect("GP covariance is SPD");
                        let t_factor = start.elapsed().as_secs_f64();

                        let start = Instant::now();
                        let log_det = model
                            .log_det_term(&factorization)
                            .expect("covariance is SPD");
                        let t_logdet = start.elapsed().as_secs_f64();

                        let start = Instant::now();
                        let ll = model
                            .log_likelihood_terms(&factorization, log_det, &y)
                            .expect("GP likelihood");
                        let t_loglik = start.elapsed().as_secs_f64();
                        let metered = device.counters().since(&before);

                        let flops = match backend {
                            Backend::Batched => metered.flops,
                            // The serial backend launches nothing on the
                            // device; report the analytic Theorem 2-4
                            // model (or its symmetric-path variant).
                            Backend::Serial => serial_flops(model, symmetry, 1),
                        };
                        rows.push(GpRow {
                            kernel: family.name().to_string(),
                            backend: backend_label(backend).to_string(),
                            path: path.to_string(),
                            n,
                            tol,
                            t_build,
                            t_factor,
                            t_logdet,
                            t_loglik,
                            log_likelihood: ll.value,
                            loglik_err_vs_dense: oracle
                                .as_ref()
                                .map(|o| (ll.value - o.value).abs()),
                            launches: metered.kernel_launches,
                            flops,
                            factor_bytes: factorization.factor_bytes(),
                            threads,
                        });
                    }
                }
            }
        }
        if n <= config.sampling_cap {
            rows.extend(run_sampling_rows(config, n, &points, &y, noise, threads));
        }
    }
    rows
}

/// The posterior-sampling scenario: predictive variance + Matheron draws
/// through the SPD fast path, one row per backend.
fn run_sampling_rows(
    config: &GpBenchConfig,
    n: usize,
    points: &hodlr_tree::PointCloud,
    y: &[f64],
    noise: f64,
    threads: usize,
) -> Vec<GpRow> {
    let family = KernelFamily::SquaredExponential;
    let kernel = family.kernel(1.0, 0.5);
    let tol = *config.tols.last().expect("at least one tolerance");
    let test = regular_grid_1d(16, 0.1, 3.9);
    let m = test.len();
    // Dense posterior-variance oracle at oracle-affordable sizes.
    let oracle_var = if n <= config.dense_oracle_cap {
        let k =
            hodlr_compress::MatrixEntrySource::to_dense(&covariance_source(&kernel, points, noise));
        let factor = hodlr_la::SymmetricFactor::new(&k, hodlr_la::SymmetricPolicy::Strict)
            .expect("oracle covariance is SPD");
        let cross = hodlr_la::DenseMatrix::from_fn(n, m, |i, j| {
            let d = (points.point(i)[0] - test.point(j)[0]).abs();
            kernel.eval(d)
        });
        let w = factor.solve_matrix(&cross);
        Some(
            (0..m)
                .map(|j| {
                    let explained: f64 =
                        cross.col(j).iter().zip(w.col(j)).map(|(a, b)| a * b).sum();
                    kernel.variance() - explained
                })
                .collect::<Vec<f64>>(),
        )
    } else {
        None
    };
    let mut rows = Vec::new();
    for backend in [Backend::Serial, Backend::Batched] {
        let gp_config = GpConfig {
            backend,
            tolerance: tol,
            symmetry: Symmetry::PositiveDefinite,
            ..GpConfig::default()
        };
        let start = Instant::now();
        let posterior = GpPosterior::new(&kernel, points, &test, noise, &gp_config)
            .expect("posterior construction");
        let t_build = start.elapsed().as_secs_f64();

        let device = posterior.model().hodlr().device();
        let before = device.counters();
        let start = Instant::now();
        let factorization = posterior.factorize().expect("GP covariance is SPD");
        let t_factor = start.elapsed().as_secs_f64();

        let start = Instant::now();
        let variance = posterior.variance(&factorization).expect("variance solve");
        let t_variance = start.elapsed().as_secs_f64();

        let mut rng = StdRng::seed_from_u64(0x5eed + n as u64);
        let start = Instant::now();
        let draws = posterior
            .draws(&factorization, y, &mut rng, config.sampling_draws)
            .expect("posterior draws");
        let t_draws = start.elapsed().as_secs_f64();
        let metered = device.counters().since(&before);

        // A finite summary statistic for the shared `log_likelihood`
        // column: the mean drawn value across test points and draws.
        let mean_draw = draws.data().iter().sum::<f64>() / (draws.rows() * draws.cols()) as f64;
        let var_err = oracle_var.as_ref().map(|exact| {
            variance
                .iter()
                .zip(exact)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f64, f64::max)
        });
        let flops = match backend {
            Backend::Batched => metered.flops,
            Backend::Serial => serial_flops(
                posterior.model(),
                Symmetry::PositiveDefinite,
                (m + config.sampling_draws) as u64,
            ),
        };
        rows.push(GpRow {
            kernel: family.name().to_string(),
            backend: backend_label(backend).to_string(),
            path: "sampling".to_string(),
            n,
            tol,
            t_build,
            t_factor,
            t_logdet: t_variance,
            t_loglik: t_draws,
            log_likelihood: mean_draw,
            loglik_err_vs_dense: var_err,
            launches: metered.kernel_launches,
            flops,
            factor_bytes: factorization.factor_bytes(),
            threads,
        });
    }
    rows
}

/// Print rows in the aligned table layout of the other harnesses.
pub fn print_gp_table(title: &str, rows: &[GpRow]) {
    println!("== {title}");
    println!(
        "{:<22} {:<8} {:<8} {:<9} {:<10} {:>12} {:>12} {:>12} {:>16} {:>14} {:>10}",
        "kernel",
        "N",
        "backend",
        "path",
        "tol",
        "t_f [s]",
        "t_logdet [s]",
        "t_loglik [s]",
        "loglik",
        "err vs dense",
        "launches"
    );
    for row in rows {
        println!(
            "{:<22} {:<8} {:<8} {:<9} {:<10.1e} {:>12.4e} {:>12.4e} {:>12.4e} {:>16.6} {:>14} {:>10}",
            row.kernel,
            row.n,
            row.backend,
            row.path,
            row.tol,
            row.t_factor,
            row.t_logdet,
            row.t_loglik,
            row.log_likelihood,
            row.loglik_err_vs_dense
                .map_or("-".to_string(), |e| format!("{e:.3e}")),
            row.launches
        );
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_sweep_produces_metered_accurate_rows() {
        let config = GpBenchConfig {
            sizes: vec![192],
            tols: vec![1e-10],
            dense_oracle_cap: 256,
            sampling_cap: 256,
            sampling_draws: 32,
        };
        let rows = run_gp_bench(&config);
        // 5 kernels x 2 paths x 2 backends x 1 tolerance + 2 sampling rows.
        assert_eq!(rows.len(), 22);
        for row in &rows {
            assert!(row.flops > 0, "{} {}: zero flops", row.kernel, row.backend);
            assert!(row.factor_bytes > 0);
            assert!(row.log_likelihood.is_finite());
            let err = row.loglik_err_vs_dense.expect("oracle runs at n=192");
            assert!(
                err < 1e-6,
                "{} {} {}: err {err}",
                row.kernel,
                row.backend,
                row.path
            );
            if row.backend == "batched" {
                assert!(row.launches > 0);
            }
        }
        // The SPD path beats LU on flops for every matching (kernel,
        // backend) pair — metered counters on the batched backend, the
        // analytic model on the serial one.  Factorization bytes shrink
        // strictly on the serial path (triangular factors, shared bases);
        // the batched device working set matches LU's (in-place batch
        // kernels keep full square buffers) and must never exceed it.
        let lu: Vec<&GpRow> = rows.iter().filter(|r| r.path == "lu").collect();
        let spd: Vec<&GpRow> = rows.iter().filter(|r| r.path == "spd").collect();
        assert_eq!(lu.len(), spd.len());
        for (l, s) in lu.iter().zip(&spd) {
            assert_eq!((&l.kernel, &l.backend), (&s.kernel, &s.backend));
            assert!(
                s.flops < l.flops,
                "{}/{}: {} !< {}",
                s.kernel,
                s.backend,
                s.flops,
                l.flops
            );
            if s.backend == "serial" {
                assert!(s.factor_bytes < l.factor_bytes);
            } else {
                assert!(s.factor_bytes <= l.factor_bytes);
            }
            // Same likelihood through either factorization path.
            assert!((l.log_likelihood - s.log_likelihood).abs() < 1e-8);
        }
        assert_eq!(rows.iter().filter(|r| r.path == "sampling").count(), 2);
        print_gp_table("smoke", &rows);
    }
}
