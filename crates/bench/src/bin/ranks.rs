//! Appendix: per-level off-diagonal ranks of the HODLR approximations, from
//! level 1 (the coarsest split) down to the leaf level.

use hodlr_bench::workloads::resolved_kappa;
use hodlr_bench::{helmholtz_hodlr, laplace_hodlr, rpy_hodlr};

fn print_profile(label: &str, profile: &[usize]) {
    let formatted: Vec<String> = profile.iter().map(|r| r.to_string()).collect();
    println!(
        "{label} ({} tree levels):\n  {}",
        profile.len(),
        formatted.join(" ")
    );
}

fn main() {
    let args = hodlr_bench::parse_args(&[1 << 12], &[1 << 19]);
    let n = args.sizes[0];

    let rpy = rpy_hodlr(n, 1e-12);
    print_profile(
        "RPY kernel, tol 1e-12 (cf. Table III appendix entry)",
        &rpy.rank_profile(),
    );

    let (_bie, lap_hi) = laplace_hodlr(n, 1e-12);
    print_profile(
        "Laplace BIE, tol 1e-12 (cf. Table IVa appendix entry)",
        &lap_hi.rank_profile(),
    );

    let (_bie, lap_lo) = laplace_hodlr(n, 1e-4);
    print_profile(
        "Laplace BIE, tol 1e-4 (cf. Table IVb appendix entry)",
        &lap_lo.rank_profile(),
    );

    let kappa = if args.full { 100.0 } else { resolved_kappa(n) };
    let (_bie, helm_hi) = helmholtz_hodlr(n, kappa, 1e-10);
    print_profile(
        "Helmholtz BIE, high accuracy (cf. Table Va appendix entry)",
        &helm_hi.rank_profile(),
    );

    let (_bie, helm_lo) = helmholtz_hodlr(n, kappa, 1e-4);
    print_profile(
        "Helmholtz BIE, low accuracy (cf. Table Vb appendix entry)",
        &helm_lo.rank_profile(),
    );
}
