//! Table V: Helmholtz combined-field BIE (Eq. 24), high-accuracy fast
//! direct solver (a) and low-accuracy preconditioner (b).

use hodlr_bench::workloads::resolved_kappa;
use hodlr_bench::{
    helmholtz_hodlr, measure_solvers, print_table, write_solver_json, MeasureConfig, SolverRow,
};

fn main() {
    let args = hodlr_bench::parse_args(
        &[1 << 10, 1 << 11, 1 << 12],
        &[1 << 15, 1 << 16, 1 << 17, 1 << 18, 1 << 19, 1 << 20],
    );
    let mut all_rows: Vec<SolverRow> = Vec::new();
    for (label, tol) in [
        ("(a) high accuracy, tol 1e-10", 1e-10),
        ("(b) low accuracy, tol 1e-4", 1e-4),
    ] {
        for &n in &args.sizes {
            let kappa = if args.full { 100.0 } else { resolved_kappa(n) };
            let (_bie, matrix) = helmholtz_hodlr(n, kappa, tol);
            let config = MeasureConfig {
                serial_hodlr: true,
                hodlrlib: false,
                block_sparse_seq: n <= args.baseline_cap,
                block_sparse_par: n <= args.baseline_cap,
                gpu_hodlr: true,
                dense: false,
            };
            let rows = measure_solvers(&format!("helmholtz/tol={tol:.0e}"), &matrix, &config);
            print_table(
                &format!("Table V {label}, kappa = eta = {kappa:.1}, N = {n}"),
                &rows,
            );
            all_rows.extend(rows);
        }
    }
    write_solver_json("table5", &all_rows);
}
