//! Multi-tenant serving trajectory: the `warm` / `cold` / `coalesce`
//! scenarios of the deterministic mixed GP/BIE load generator (throughput,
//! p50/p99 latency, cache hit-rate, evictions, launches-per-request,
//! bitwise-replay verdict), written to `BENCH_serve.json`.
//!
//! Usage: `serve [--smoke]` — `--smoke` runs the seconds-scale CI sweep.
//! Exits non-zero if any scenario fails a request, fails to reproduce
//! bitwise on replay, or misses its headline target (warm hit-rate > 0.5,
//! coalesced launches-per-request < 1).

use hodlr_bench::{print_serve_table, run_serve_bench, write_serve_json, ServeBenchConfig};

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let config = if smoke {
        ServeBenchConfig::smoke()
    } else {
        ServeBenchConfig::full()
    };
    let rows = run_serve_bench(&config);
    print_serve_table(
        "Multi-tenant serving (factorization cache + coalescing)",
        &rows,
    );
    write_serve_json("serve", &rows);

    let mut broken = false;
    for row in &rows {
        if row.failed > 0 {
            eprintln!("FAILED REQUESTS: {} had {}", row.scenario, row.failed);
            broken = true;
        }
        if !row.deterministic {
            eprintln!("NON-DETERMINISTIC REPLAY: {}", row.scenario);
            broken = true;
        }
        if row.throughput_rps <= 0.0 || row.throughput_rps.is_nan() {
            eprintln!("ZERO THROUGHPUT: {}", row.scenario);
            broken = true;
        }
        if row.scenario == "warm" && row.hit_rate <= 0.5 {
            eprintln!("COLD WARM CACHE: hit rate {:.3}", row.hit_rate);
            broken = true;
        }
        if row.scenario == "coalesce" && row.launches_per_request >= 1.0 {
            eprintln!(
                "UNAMORTIZED LAUNCHES: {:.3} per request",
                row.launches_per_request
            );
            broken = true;
        }
        if row.scenario == "cold" && row.evictions == 0 {
            eprintln!("NO EVICTIONS: cold scenario never churned the cache");
            broken = true;
        }
    }
    if broken {
        std::process::exit(1);
    }
}
