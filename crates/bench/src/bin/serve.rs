//! Multi-tenant serving trajectory: the `warm` / `cold` / `coalesce` /
//! `chaos` scenarios of the deterministic mixed GP/BIE load generator
//! (throughput, p50/p99 latency, cache hit-rate, evictions,
//! launches-per-request, ladder recoveries, breaker trips,
//! bitwise-replay verdict), written to `BENCH_serve.json`.
//!
//! Usage: `serve [--smoke]` — `--smoke` runs the seconds-scale CI sweep.
//! Exits non-zero if any fault-free scenario fails a request, any
//! scenario fails to reproduce bitwise on replay or loses a request, or a
//! scenario misses its headline target (warm hit-rate > 0.5, coalesced
//! launches-per-request < 1, chaos recoveries > 0 under the fixed fault
//! seed).

use hodlr_bench::{print_serve_table, run_serve_bench, write_serve_json, ServeBenchConfig};

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let config = if smoke {
        ServeBenchConfig::smoke()
    } else {
        ServeBenchConfig::full()
    };
    let rows = run_serve_bench(&config);
    print_serve_table(
        "Multi-tenant serving (factorization cache + coalescing)",
        &rows,
    );
    write_serve_json("serve", &rows);

    let mut broken = false;
    for row in &rows {
        // Chaos injects faults on purpose: its cursed tenant *must* fail,
        // so only fault-free scenarios are held to zero failures.
        if row.scenario != "chaos" && row.failed > 0 {
            eprintln!("FAILED REQUESTS: {} had {}", row.scenario, row.failed);
            broken = true;
        }
        if !row.deterministic {
            eprintln!("NON-DETERMINISTIC REPLAY: {}", row.scenario);
            broken = true;
        }
        if row.unaccounted > 0 {
            eprintln!(
                "LOST REQUESTS: {} had {} unaccounted",
                row.scenario, row.unaccounted
            );
            broken = true;
        }
        if row.throughput_rps <= 0.0 || row.throughput_rps.is_nan() {
            eprintln!("ZERO THROUGHPUT: {}", row.scenario);
            broken = true;
        }
        if row.scenario == "warm" && row.hit_rate <= 0.5 {
            eprintln!("COLD WARM CACHE: hit rate {:.3}", row.hit_rate);
            broken = true;
        }
        if row.scenario == "coalesce" && row.launches_per_request >= 1.0 {
            eprintln!(
                "UNAMORTIZED LAUNCHES: {:.3} per request",
                row.launches_per_request
            );
            broken = true;
        }
        if row.scenario == "cold" && row.evictions == 0 {
            eprintln!("NO EVICTIONS: cold scenario never churned the cache");
            broken = true;
        }
        if row.scenario == "chaos" {
            if row.recovered_requests == 0 {
                eprintln!("NO RECOVERIES: chaos ladder never rescued a request");
                broken = true;
            }
            if row.breaker_trips == 0 {
                eprintln!("NO BREAKER TRIPS: cursed tenant never tripped the breaker");
                broken = true;
            }
        }
    }
    if broken {
        std::process::exit(1);
    }
}
