//! Table IV: Laplace exterior BIE (Eq. 21), high-accuracy (a) and
//! low-accuracy (b) solvers, four-solver comparison.

use hodlr_bench::{
    laplace_hodlr, measure_solvers, print_table, write_solver_json, MeasureConfig, SolverRow,
};

fn main() {
    let args = hodlr_bench::parse_args(
        &[1 << 11, 1 << 12, 1 << 13],
        &[1 << 18, 1 << 19, 1 << 20, 1 << 21, 1 << 22],
    );
    let mut all_rows: Vec<SolverRow> = Vec::new();
    for (label, tol) in [
        ("(a) high accuracy, tol 1e-12", 1e-12),
        ("(b) low accuracy, tol 1e-4", 1e-4),
    ] {
        for &n in &args.sizes {
            let (_bie, matrix) = laplace_hodlr(n, tol);
            let config = MeasureConfig {
                serial_hodlr: true,
                hodlrlib: false,
                block_sparse_seq: n <= args.baseline_cap,
                block_sparse_par: n <= args.baseline_cap,
                gpu_hodlr: true,
                dense: false,
            };
            let rows = measure_solvers(&format!("laplace/tol={tol:.0e}"), &matrix, &config);
            print_table(&format!("Table IV {label}, N = {n}"), &rows);
            all_rows.extend(rows);
        }
    }
    write_solver_json("table4", &all_rows);
}
