//! The iterative-solve scenario family (the Table V(b) "robust
//! preconditioner" use case, extended to all three workloads): iteration
//! counts and time-per-RHS for preconditioned GMRES, BiCGStab and
//! mixed-precision refinement at several HODLR preconditioner tolerances,
//! against the blocked direct solve as the baseline.

use hodlr_bench::iterative::{
    measure_block_direct, measure_iterative, print_iterative_table, IterativeConfig,
    DEFAULT_PRECOND_TOLS,
};
use hodlr_bench::workloads::resolved_kappa;
use hodlr_bench::{helmholtz_hodlr, laplace_hodlr, rpy_hodlr, write_iterative_json};

fn main() {
    let args = hodlr_bench::parse_args(&[1 << 10], &[1 << 13]);
    let n = args.sizes[0];
    let config = IterativeConfig::default();
    let mut all_rows = Vec::new();

    // Laplace exterior BIE.
    let (_bie, exact) = laplace_hodlr(n, 1e-10);
    let mut rows = vec![measure_block_direct("laplace", &exact, config.nrhs)];
    for &ptol in &DEFAULT_PRECOND_TOLS {
        let (_bie, rough) = laplace_hodlr(n, ptol);
        rows.extend(measure_iterative("laplace", &exact, &rough, ptol, &config));
    }
    print_iterative_table(&format!("Iterative solves, Laplace BIE, N = {n}"), &rows);
    all_rows.extend(rows);

    // Helmholtz combined-field BIE (complex arithmetic).
    let kappa = resolved_kappa(n);
    let (_bie, exact) = helmholtz_hodlr(n, kappa, 1e-10);
    let mut rows = vec![measure_block_direct("helmholtz", &exact, config.nrhs)];
    for &ptol in &DEFAULT_PRECOND_TOLS {
        let (_bie, rough) = helmholtz_hodlr(n, kappa, ptol);
        rows.extend(measure_iterative(
            "helmholtz",
            &exact,
            &rough,
            ptol,
            &config,
        ));
    }
    print_iterative_table(
        &format!("Iterative solves, Helmholtz BIE, N = {n}, kappa = {kappa:.1}"),
        &rows,
    );
    all_rows.extend(rows);

    // RPY kernel matrix.
    let exact = rpy_hodlr(n, 1e-10);
    let rpy_n = exact.n();
    let mut rows = vec![measure_block_direct("rpy", &exact, config.nrhs)];
    for &ptol in &DEFAULT_PRECOND_TOLS {
        let rough = rpy_hodlr(n, ptol);
        rows.extend(measure_iterative("rpy", &exact, &rough, ptol, &config));
    }
    print_iterative_table(&format!("Iterative solves, RPY kernel, N = {rpy_n}"), &rows);
    all_rows.extend(rows);

    // Machine-readable perf trajectory for cross-PR comparison; the
    // output path resolves through the shared helper like every bench bin.
    write_iterative_json("iterative", &all_rows);
}
