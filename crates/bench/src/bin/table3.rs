//! Table III: RPY kernel matrices — HODLRlib-style CPU solver vs the
//! batched (GPU-style) solver, plus the serial flattened solver.

use hodlr_bench::{
    measure_solvers, print_table, rpy_hodlr, write_solver_json, MeasureConfig, SolverRow,
};

fn main() {
    let args = hodlr_bench::parse_args(
        &[3 * 1024, 3 * 2048, 3 * 4096],
        &[1 << 17, 1 << 18, 1 << 19, 1 << 20, 1 << 21],
    );
    let mut all_rows: Vec<SolverRow> = Vec::new();
    for &n in &args.sizes {
        let matrix = rpy_hodlr(n, 1e-12);
        let config = MeasureConfig {
            serial_hodlr: true,
            hodlrlib: n <= args.baseline_cap,
            block_sparse_seq: false,
            block_sparse_par: false,
            gpu_hodlr: true,
            dense: false,
        };
        let rows = measure_solvers("rpy/tol=1e-12", &matrix, &config);
        print_table(
            &format!("Table III (RPY kernel, tol 1e-12), N = {}", matrix.n()),
            &rows,
        );
        all_rows.extend(rows);
    }
    // Speedup summary (the paper reports 20-27x factorization, 51-128x solve
    // for GPU vs HODLRlib; on the virtual device both run on the same CPU,
    // so the ratio reflects data-structure overhead only).
    for &n in &args.sizes {
        let lib = all_rows
            .iter()
            .find(|r| r.n == n / 3 * 3 && r.solver.starts_with("HODLRlib"));
        let gpu = all_rows
            .iter()
            .find(|r| r.n == n / 3 * 3 && r.solver.starts_with("GPU"));
        if let (Some(lib), Some(gpu)) = (lib, gpu) {
            println!(
                "N = {:>9}: factorization speedup {:.2}x, solve speedup {:.2}x (GPU-style vs HODLRlib-style)",
                lib.n,
                lib.t_factor / gpu.t_factor,
                lib.t_solve / gpu.t_solve
            );
        }
    }
    write_solver_json("table3", &all_rows);
}
