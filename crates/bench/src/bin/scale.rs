//! Scale-out trajectory: streaming, memory-budgeted HODLR assembly over
//! 2-D / 3-D surface and GP workloads, both storage precisions, written
//! to `BENCH_scale.json`.
//!
//! Usage: `scale [--smoke]` — `--smoke` runs the seconds-scale CI sweep;
//! the default sweep includes the `n >= 10^5` acceptance row.  Exits
//! non-zero if any build fails (a budget violation is a failure of the
//! streaming pipeline), any row carries an unmetered build
//! (`peak_bytes == 0`), a peak over the stated budget, a non-finite or
//! loose solve residual, or an `f32-storage` row that does not hold
//! strictly fewer bytes than its `f64` twin.

use hodlr_bench::{print_scale_table, run_scale_bench, write_scale_json, ScaleBenchConfig};

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let config = if smoke {
        ScaleBenchConfig::smoke()
    } else {
        ScaleBenchConfig::full()
    };
    let rows = match run_scale_bench(&config) {
        Ok(rows) => rows,
        Err(e) => {
            eprintln!("SCALE SWEEP FAILED: {e}");
            std::process::exit(1);
        }
    };
    print_scale_table(
        "Scale-out (streaming memory-budgeted assembly, 2-D/3-D)",
        &rows,
    );
    write_scale_json("scale", &rows);

    let mut broken = false;
    for row in &rows {
        if row.peak_bytes == 0 {
            eprintln!(
                "UNMETERED BUILD: {} dim={} n={} {}",
                row.workload, row.dim, row.n, row.precision
            );
            broken = true;
        }
        if row.peak_bytes > row.budget_bytes {
            eprintln!(
                "PEAK OVER BUDGET: {} dim={} n={} {}: {} > {}",
                row.workload, row.dim, row.n, row.precision, row.peak_bytes, row.budget_bytes
            );
            broken = true;
        }
        if !(row.relres.is_finite() && row.relres < 1e-7) {
            eprintln!(
                "LOOSE SOLVE: {} dim={} n={} {}: relres {:.3e}",
                row.workload, row.dim, row.n, row.precision, row.relres
            );
            broken = true;
        }
        if let Some(err) = row.compress_err {
            if !(err.is_finite() && err < 1e-4) {
                eprintln!(
                    "COMPRESSION DRIFT: {} dim={} n={} {}: {err:.3e}",
                    row.workload, row.dim, row.n, row.precision
                );
                broken = true;
            }
        }
    }
    // Every f32-storage row must store strictly fewer bytes than the f64
    // row of the same workload cell.
    for compact in rows.iter().filter(|r| r.precision == "f32-storage") {
        match rows.iter().find(|r| {
            r.precision == "f64"
                && r.workload == compact.workload
                && r.dim == compact.dim
                && r.n == compact.n
        }) {
            Some(full) if compact.storage_bytes < full.storage_bytes => {}
            Some(full) => {
                eprintln!(
                    "COMPACT NOT SMALLER: {} dim={} n={}: {} vs {}",
                    compact.workload,
                    compact.dim,
                    compact.n,
                    compact.storage_bytes,
                    full.storage_bytes
                );
                broken = true;
            }
            None => {
                eprintln!(
                    "COMPACT ROW WITHOUT F64 TWIN: {} dim={} n={}",
                    compact.workload, compact.dim, compact.n
                );
                broken = true;
            }
        }
    }
    if broken {
        std::process::exit(1);
    }
}
