//! Fig. 7: scaling of the Table IV solvers (CSV series + fitted exponents).

use hodlr_bench::harness::fitted_exponent;
use hodlr_bench::{
    laplace_hodlr, measure_solvers, print_csv, write_solver_json, MeasureConfig, SolverRow,
};

fn main() {
    let args = hodlr_bench::parse_args(
        &[1 << 10, 1 << 11, 1 << 12, 1 << 13],
        &[1 << 18, 1 << 19, 1 << 20, 1 << 21, 1 << 22],
    );
    let mut all_rows: Vec<SolverRow> = Vec::new();
    for (label, tol) in [("high accuracy", 1e-12), ("low accuracy", 1e-4)] {
        let mut rows: Vec<SolverRow> = Vec::new();
        for &n in &args.sizes {
            let (_bie, matrix) = laplace_hodlr(n, tol);
            let config = MeasureConfig {
                serial_hodlr: false,
                hodlrlib: false,
                block_sparse_seq: n <= args.baseline_cap,
                block_sparse_par: n <= args.baseline_cap,
                gpu_hodlr: true,
                dense: false,
            };
            rows.extend(measure_solvers(
                &format!("laplace/tol={tol:.0e}"),
                &matrix,
                &config,
            ));
        }
        print_csv(&format!("Fig. 7 series, Laplace BIE, {label}"), &rows);
        for solver in [
            "Serial Block-Sparse Solver",
            "Parallel Block-Sparse Solver",
            "GPU HODLR Solver",
        ] {
            let factor: Vec<(usize, f64)> = rows
                .iter()
                .filter(|r| r.solver == solver)
                .map(|r| (r.n, r.t_factor))
                .collect();
            if factor.len() >= 2 {
                println!(
                    "{label} / {solver}: factorization ~ N^{:.2}",
                    fitted_exponent(&factor)
                );
            }
        }
        println!();
        all_rows.extend(rows);
    }
    write_solver_json("fig7", &all_rows);
}
