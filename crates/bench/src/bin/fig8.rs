//! Fig. 8: speedup of the GPU-style solver over the parallel block-sparse
//! solver on the Helmholtz workload.

use hodlr_bench::workloads::resolved_kappa;
use hodlr_bench::{
    helmholtz_hodlr, measure_solvers, print_csv, write_solver_json, MeasureConfig, SolverRow,
};

fn main() {
    let args = hodlr_bench::parse_args(
        &[1 << 10, 1 << 11, 1 << 12],
        &[1 << 15, 1 << 16, 1 << 17, 1 << 18, 1 << 19],
    );
    let mut all_rows: Vec<SolverRow> = Vec::new();
    for (label, tol) in [("high accuracy", 1e-10), ("low accuracy", 1e-4)] {
        let mut rows: Vec<SolverRow> = Vec::new();
        for &n in &args.sizes {
            let kappa = if args.full { 100.0 } else { resolved_kappa(n) };
            let (_bie, matrix) = helmholtz_hodlr(n, kappa, tol);
            let config = MeasureConfig {
                serial_hodlr: false,
                hodlrlib: false,
                block_sparse_seq: false,
                block_sparse_par: n <= args.baseline_cap,
                gpu_hodlr: true,
                dense: false,
            };
            rows.extend(measure_solvers(
                &format!("helmholtz/tol={tol:.0e}"),
                &matrix,
                &config,
            ));
        }
        print_csv(&format!("Fig. 8 series, Helmholtz BIE, {label}"), &rows);
        for &n in &args.sizes {
            let bs = rows
                .iter()
                .find(|r| r.n == n && r.solver.starts_with("Parallel Block"));
            let gpu = rows
                .iter()
                .find(|r| r.n == n && r.solver.starts_with("GPU"));
            if let (Some(bs), Some(gpu)) = (bs, gpu) {
                println!(
                    "{label}, N = {n}: factorization speedup {:.2}x, solve speedup {:.2}x",
                    bs.t_factor / gpu.t_factor,
                    bs.t_solve / gpu.t_solve
                );
            }
        }
        println!();
        all_rows.extend(rows);
    }
    write_solver_json("fig8", &all_rows);
}
