//! Gaussian-process log-likelihood trajectory: `n x kernel x path x
//! backend x tolerance` rows (factorization / log-det / likelihood times,
//! likelihood error against the dense Cholesky oracle, launch/flop
//! metering, factorization bytes) plus the posterior-sampling scenario,
//! written to `BENCH_gp.json`.
//!
//! Usage: `gp [--smoke]` — `--smoke` runs the seconds-scale CI sweep.
//! Exits non-zero if any row carries a non-finite likelihood, a zero flop
//! count, an oracle error out of proportion to its compression tolerance
//! at the oracle-checked sizes, or an SPD-path row that fails to undercut
//! its LU twin on flops or factorization bytes.

use hodlr_bench::{print_gp_table, run_gp_bench, write_gp_json, GpBenchConfig};

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let config = if smoke {
        GpBenchConfig::smoke()
    } else {
        GpBenchConfig::full()
    };
    let rows = run_gp_bench(&config);
    print_gp_table(
        "GP log-marginal likelihood (solve + product-form log_det)",
        &rows,
    );
    write_gp_json("gp", &rows);

    let mut broken = false;
    for row in &rows {
        if !row.log_likelihood.is_finite() {
            eprintln!(
                "NON-FINITE LIKELIHOOD: {} {} n={}",
                row.kernel, row.backend, row.n
            );
            broken = true;
        }
        if row.flops == 0 {
            eprintln!("ZERO FLOPS: {} {} n={}", row.kernel, row.backend, row.n);
            broken = true;
        }
        if let Some(err) = row.loglik_err_vs_dense {
            // The likelihood inherits the compression error; gate at a
            // comfortable multiple of tol * n.
            if err > (row.tol * row.n as f64 * 100.0).max(1e-8) {
                eprintln!(
                    "ORACLE MISMATCH: {} {} {} n={} err={err:.3e}",
                    row.kernel, row.backend, row.path, row.n
                );
                broken = true;
            }
        }
    }
    // The Cholesky fast path must undercut its LU twin on flops for every
    // (kernel, backend, n, tol) cell and never cost more factorization
    // bytes (the serial path stores triangular factors and shared bases;
    // the batched device working set matches LU's in-place square
    // buffers) — this is the paper-level claim the SPD rows exist to
    // demonstrate.
    for lu in rows.iter().filter(|r| r.path == "lu") {
        let twin = rows.iter().find(|r| {
            r.path == "spd"
                && r.kernel == lu.kernel
                && r.backend == lu.backend
                && r.n == lu.n
                && r.tol == lu.tol
        });
        match twin {
            None => {
                eprintln!(
                    "MISSING SPD TWIN: {} {} n={} tol={}",
                    lu.kernel, lu.backend, lu.n, lu.tol
                );
                broken = true;
            }
            Some(spd) if spd.flops >= lu.flops || spd.factor_bytes > lu.factor_bytes => {
                eprintln!(
                    "SPD PATH NOT CHEAPER: {} {} n={}: flops {} vs {}, bytes {} vs {}",
                    spd.kernel,
                    spd.backend,
                    spd.n,
                    spd.flops,
                    lu.flops,
                    spd.factor_bytes,
                    lu.factor_bytes
                );
                broken = true;
            }
            Some(_) => {}
        }
    }
    if rows.iter().filter(|r| r.path == "sampling").count() == 0 {
        eprintln!("NO SAMPLING ROWS");
        broken = true;
    }
    if broken {
        std::process::exit(1);
    }
}
