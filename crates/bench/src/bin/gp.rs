//! Gaussian-process log-likelihood trajectory: `n x kernel x backend x
//! tolerance` rows (factorization / log-det / likelihood times, likelihood
//! error against the dense Cholesky oracle, launch/flop metering), written
//! to `BENCH_gp.json`.
//!
//! Usage: `gp [--smoke]` — `--smoke` runs the seconds-scale CI sweep.
//! Exits non-zero if any row carries a non-finite likelihood, a zero flop
//! count, or an oracle error out of proportion to its compression
//! tolerance at the oracle-checked sizes.

use hodlr_bench::{print_gp_table, run_gp_bench, write_gp_json, GpBenchConfig};

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let config = if smoke {
        GpBenchConfig::smoke()
    } else {
        GpBenchConfig::full()
    };
    let rows = run_gp_bench(&config);
    print_gp_table(
        "GP log-marginal likelihood (solve + product-form log_det)",
        &rows,
    );
    write_gp_json("gp", &rows);

    let mut broken = false;
    for row in &rows {
        if !row.log_likelihood.is_finite() {
            eprintln!(
                "NON-FINITE LIKELIHOOD: {} {} n={}",
                row.kernel, row.backend, row.n
            );
            broken = true;
        }
        if row.flops == 0 {
            eprintln!("ZERO FLOPS: {} {} n={}", row.kernel, row.backend, row.n);
            broken = true;
        }
        if let Some(err) = row.loglik_err_vs_dense {
            // The likelihood inherits the compression error; gate at a
            // comfortable multiple of tol * n.
            if err > (row.tol * row.n as f64 * 100.0).max(1e-8) {
                eprintln!(
                    "ORACLE MISMATCH: {} {} n={} err={err:.3e}",
                    row.kernel, row.backend, row.n
                );
                broken = true;
            }
        }
    }
    if broken {
        std::process::exit(1);
    }
}
