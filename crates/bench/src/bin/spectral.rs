//! Spectral-subsystem trajectory: dense EVD/SVD kernel accuracy,
//! HODLR-accelerated Lanczos eigenpairs (largest and shift-invert
//! smallest of a GP covariance, serial and batched backends) and the SLQ
//! log-determinant against the product-form route, written to
//! `BENCH_spectral.json`.
//!
//! Usage: `spectral [--smoke]` — `--smoke` runs the seconds-scale CI
//! sweep.  Exits non-zero if any row carries a non-finite residual, a
//! residual above its gate (for SLQ: three reported standard errors plus
//! a small relative floor), a failed 1/2/8-thread bitwise-determinism
//! verdict, or an SLQ row with zero probes / steps / a non-finite
//! standard error.

use hodlr_bench::{
    print_spectral_table, run_spectral_bench, write_spectral_json, SpectralBenchConfig,
};

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let config = if smoke {
        SpectralBenchConfig::smoke()
    } else {
        SpectralBenchConfig::full()
    };
    let rows = run_spectral_bench(&config);
    print_spectral_table(
        "Spectral subsystem (dense EVD/SVD, Lanczos eigenpairs, SLQ log-det)",
        &rows,
    );
    write_spectral_json("spectral", &rows);

    let mut broken = false;
    for row in &rows {
        if !(row.residual.is_finite() && row.residual <= row.tolerance) {
            eprintln!(
                "RESIDUAL OVER GATE: {} {} n={}: {:.3e} vs {:.3e}",
                row.scenario, row.backend, row.n, row.residual, row.tolerance
            );
            broken = true;
        }
        if !row.deterministic {
            eprintln!(
                "NOT BITWISE-DETERMINISTIC ACROSS POOLS: {} {} n={}",
                row.scenario, row.backend, row.n
            );
            broken = true;
        }
        if row.scenario == "slq-logdet" {
            if row.probes == 0 || row.steps == 0 {
                eprintln!("ZERO SLQ WORK: {} n={}", row.backend, row.n);
                broken = true;
            }
            match row.slq_stderr {
                Some(e) if e.is_finite() => {}
                _ => {
                    eprintln!("MISSING SLQ STDERR: {} n={}", row.backend, row.n);
                    broken = true;
                }
            }
        }
    }
    let slq_rows = rows.iter().filter(|r| r.scenario == "slq-logdet").count();
    if slq_rows == 0 {
        eprintln!("NO SLQ ROWS");
        broken = true;
    }
    if broken {
        std::process::exit(1);
    }
}
