//! Fig. 9: achieved GFlop/s of the factorization and the solve as a
//! function of N (metered flops on the virtual device for the GPU-style
//! solver, analytic Theorem-3/4 counts for the others).

use hodlr_bench::workloads::resolved_kappa;
use hodlr_bench::{helmholtz_hodlr, measure_solvers, write_solver_json, MeasureConfig, SolverRow};

fn main() {
    let args = hodlr_bench::parse_args(
        &[1 << 10, 1 << 11, 1 << 12],
        &[1 << 15, 1 << 16, 1 << 17, 1 << 18, 1 << 19],
    );
    let mut all_rows: Vec<SolverRow> = Vec::new();
    println!("# Fig. 9: GFlop/s for the Helmholtz workload (high accuracy)");
    println!("solver,N,factor_gflops,solve_gflops");
    for &n in &args.sizes {
        let kappa = if args.full { 100.0 } else { resolved_kappa(n) };
        let (_bie, matrix) = helmholtz_hodlr(n, kappa, 1e-10);
        let config = MeasureConfig {
            serial_hodlr: true,
            hodlrlib: false,
            block_sparse_seq: false,
            block_sparse_par: false,
            gpu_hodlr: true,
            dense: false,
        };
        for row in measure_solvers("helmholtz/tol=1e-10", &matrix, &config) {
            println!(
                "{},{},{:.3},{:.3}",
                row.solver,
                row.n,
                row.factor_gflops.unwrap_or(f64::NAN),
                row.solve_gflops.unwrap_or(f64::NAN)
            );
            all_rows.push(row);
        }
    }
    write_solver_json("fig9", &all_rows);
}
