//! Dense-kernel perf trajectory: gemm / LU / QR GFLOP/s by size, scalar
//! type and thread count, written to `BENCH_kernels.json`.
//!
//! The headline row is single-thread f64 `gemm` at 1024^3 against the
//! retained naive reference kernel; the thread sweep doubles as a
//! bitwise-determinism check (any `bitwise: NO` row exits non-zero).
//!
//! Usage: `kernels [--smoke]` — `--smoke` runs the seconds-scale CI sweep.

use hodlr_bench::{print_kernel_table, run_kernel_bench, write_kernel_json, KernelBenchConfig};

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let config = if smoke {
        KernelBenchConfig::smoke()
    } else {
        KernelBenchConfig::full()
    };
    let rows = run_kernel_bench(&config);
    print_kernel_table(&rows);

    // Headline summary: blocked vs reference f64 gemm at the largest size.
    if let Some(best) = rows
        .iter()
        .filter(|r| r.kernel == "gemm" && r.scalar == "f64" && r.speedup_vs_reference.is_some())
        .max_by_key(|r| r.m)
    {
        println!(
            "headline: f64 gemm {}^3 single-thread {:.2}x vs naive reference ({:.2} GFLOP/s)",
            best.m,
            best.speedup_vs_reference.unwrap(),
            best.gflops
        );
    }

    write_kernel_json("kernels", &rows);

    let broken: Vec<_> = rows
        .iter()
        .filter(|r| r.bitwise_vs_1thread == Some(false))
        .collect();
    if !broken.is_empty() {
        for r in &broken {
            eprintln!(
                "DETERMINISM VIOLATION: {} {} {}x{}x{} differs at {} threads",
                r.kernel, r.scalar, r.m, r.n, r.k, r.threads
            );
        }
        std::process::exit(1);
    }
}
