//! Fig. 5: factorization and solve time vs N for the Table III workload,
//! as CSV series plus fitted scaling exponents against the paper's
//! O(N log^2 N) and O(N) guide lines.

use hodlr_bench::harness::fitted_exponent;
use hodlr_bench::{
    measure_solvers, print_csv, rpy_hodlr, write_solver_json, MeasureConfig, SolverRow,
};

fn main() {
    let args = hodlr_bench::parse_args(
        &[3 * 512, 3 * 1024, 3 * 2048, 3 * 4096],
        &[1 << 17, 1 << 18, 1 << 19, 1 << 20, 1 << 21],
    );
    let mut rows: Vec<SolverRow> = Vec::new();
    for &n in &args.sizes {
        let matrix = rpy_hodlr(n, 1e-12);
        let config = MeasureConfig {
            serial_hodlr: true,
            hodlrlib: n <= args.baseline_cap,
            block_sparse_seq: false,
            block_sparse_par: false,
            gpu_hodlr: true,
            dense: false,
        };
        rows.extend(measure_solvers("rpy/tol=1e-12", &matrix, &config));
    }
    print_csv("Fig. 5 series (RPY kernel)", &rows);
    for solver in [
        "Serial HODLR Solver",
        "HODLRlib-style Solver",
        "GPU HODLR Solver",
    ] {
        let factor: Vec<(usize, f64)> = rows
            .iter()
            .filter(|r| r.solver == solver)
            .map(|r| (r.n, r.t_factor))
            .collect();
        let solve: Vec<(usize, f64)> = rows
            .iter()
            .filter(|r| r.solver == solver)
            .map(|r| (r.n, r.t_solve))
            .collect();
        if factor.len() >= 2 {
            println!(
                "{solver}: factorization ~ N^{:.2} (paper guide: N log^2 N), solve ~ N^{:.2} (paper guide: N)",
                fitted_exponent(&factor),
                fitted_exponent(&solve)
            );
        }
    }
    write_solver_json("fig5", &rows);
}
