//! The serving scenario family: a deterministic multi-tenant load
//! generator over [`SolveService`].
//!
//! Four scenarios probe the serve-layer mechanisms:
//!
//! * `warm` — a small mixed GP/BIE tenant set under steady traffic; the
//!   factorization cache must absorb it (hit-rate > 0.5 after warmup).
//! * `cold` — more tenants than the cache budget admits, cycling; probes
//!   LRU + memory-budget eviction under churn.
//! * `coalesce` — one batched tenant under bursts larger than one blocked
//!   solve's launch count; request coalescing must push
//!   launches-per-request below 1.
//! * `chaos` — the same scripted traffic with seeded fault plans armed at
//!   both layers (device launch poison, cache flushes, drain stalls, one
//!   tenant that only solves at a tighter tolerance, one that never
//!   recovers); probes the degradation ladder, the self-verification gate
//!   and the circuit breaker under adversarial scheduling.
//!
//! Everything is seeded and scripted: the tenant schedule, the right-hand
//! sides, the drain boundaries **and every injected fault** are pure
//! functions of the request index (and, for `chaos`, of the fixed fault
//! seed), and each scenario runs **twice** to assert the solve results are
//! bitwise reproducible (the `deterministic` column; for `chaos` the
//! folded stream includes a tag for every typed error, so the failure
//! schedule itself must replay bitwise).  Only wall-clock derived metrics
//! (throughput, latency) vary between runs.

use hodlr::{Backend, Hodlr, TreePolicy};
use hodlr_batch::FaultPlan;
use hodlr_gp::{covariance_source, regular_grid_1d, Matern, SquaredExponential};
use hodlr_la::HodlrError;
use hodlr_serve::{
    CacheConfig, CacheKey, DegradeConfig, ServeConfig, ServeError, ServeFaultPlan, SolveService,
};
use std::time::Instant;

use crate::workloads::laplace_hodlr;

/// One row of the serving table: one scenario, aggregated over its whole
/// request stream.
#[derive(Clone, Debug)]
pub struct ServeRow {
    /// Scenario label (`warm`, `cold`, `coalesce`).
    pub scenario: String,
    /// Registered tenants.
    pub tenants: usize,
    /// Requests driven through the service.
    pub requests: usize,
    /// Matrix size of every tenant operator.
    pub n: usize,
    /// Requests submitted between drain cycles (the burst size).
    pub burst: usize,
    /// Drain cycles run.
    pub drains: u64,
    /// Completed requests per wall-clock second, cache warmup included.
    pub throughput_rps: f64,
    /// Median submit-to-result latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile submit-to-result latency, milliseconds.
    pub p99_ms: f64,
    /// Factorization-cache hit rate over the whole stream.
    pub hit_rate: f64,
    /// Cache evictions over the whole stream.
    pub evictions: u64,
    /// Batched-kernel launches divided by completed requests (the
    /// coalescing figure of merit; 0 for purely serial traffic).
    pub launches_per_request: f64,
    /// Requests that resolved to an error.
    pub failed: u64,
    /// Requests that first failed verification (or hit an injected fault)
    /// and were then brought back to a *verified* solution by the
    /// degradation ladder.
    pub recovered_requests: u64,
    /// Ladder rungs attempted across the whole stream.
    pub retries: u64,
    /// Requests answered by a degraded rung (tighter rebuild, iterative
    /// refinement or GMRES fallback) rather than the nominal direct solve.
    pub degraded_solves: u64,
    /// Circuit-breaker trips across the whole stream.
    pub breaker_trips: u64,
    /// Requests that neither produced a result nor a typed error — must be
    /// zero in every scenario (the accounting invariant).
    pub unaccounted: u64,
    /// Seed of the injected fault schedule (0 = faults disabled).
    pub fault_seed: u64,
    /// Whether a second, identically scripted run reproduced every solve
    /// result bitwise.
    pub deterministic: bool,
    /// Order-sensitive fold of all solution vectors (for eyeballing
    /// cross-PR drift; the bitwise check is `deterministic`).
    pub checksum: f64,
}

/// Sweep configuration of the `serve` binary.
#[derive(Clone, Debug)]
pub struct ServeBenchConfig {
    /// Matrix size per tenant.
    pub n: usize,
    /// Requests per scenario.
    pub requests: usize,
    /// Requests per drain cycle (floor; `coalesce` raises it above the
    /// per-solve launch count automatically).
    pub burst: usize,
}

impl ServeBenchConfig {
    /// The seconds-scale CI sweep (`--smoke`).
    pub fn smoke() -> Self {
        ServeBenchConfig {
            n: 192,
            requests: 48,
            burst: 6,
        }
    }

    /// The default laptop-scale sweep.
    pub fn full() -> Self {
        ServeBenchConfig {
            n: 512,
            requests: 240,
            burst: 12,
        }
    }
}

/// The tenant archetypes of the mixed workload.
#[derive(Copy, Clone, Debug)]
enum TenantKind {
    /// Gaussian-process covariance, Matérn-3/2 on a regular grid.
    GpMatern,
    /// Gaussian-process covariance, squared-exponential on a regular grid.
    GpSquaredExponential,
    /// Laplace exterior boundary-integral operator on the star contour.
    Bie,
}

const KINDS: [TenantKind; 3] = [
    TenantKind::GpMatern,
    TenantKind::GpSquaredExponential,
    TenantKind::Bie,
];

/// The cache key tenant `t` registers under (also used by the `chaos`
/// driver to find a tenant's resident entry and poison its device).
fn tenant_cache_key(t: usize, n: usize, backend: Backend) -> CacheKey {
    let kind = KINDS[t % KINDS.len()];
    CacheKey::new(
        format!("tenant-{t}/{kind:?}/n={n}"),
        &TreePolicy::LeafSize(64),
        1e-8,
        backend,
        hodlr::Precision::Full,
    )
}

/// Register `count` tenants cycling through the archetypes; tenant `t`
/// gets a slightly different operator (length scale / noise shift) so
/// distinct tenants genuinely factorize distinct matrices.
fn register_tenants(service: &SolveService<f64>, count: usize, n: usize, backend: Backend) {
    for t in 0..count {
        let kind = KINDS[t % KINDS.len()];
        let name = format!("tenant-{t}");
        let tol = 1e-8;
        let key = tenant_cache_key(t, n, backend);
        let build = move || -> Result<Hodlr<f64>, HodlrError> {
            match kind {
                TenantKind::GpMatern => {
                    let points = regular_grid_1d(n, 0.0, 1.0);
                    let kernel = Matern::three_halves(1.0, 0.2 + 0.05 * (t % 3) as f64);
                    let source = covariance_source(&kernel, &points, 1e-2);
                    Hodlr::builder()
                        .source(&source)
                        .leaf_size(64)
                        .tolerance(tol)
                        .backend(backend)
                        .build()
                }
                TenantKind::GpSquaredExponential => {
                    let points = regular_grid_1d(n, 0.0, 1.0);
                    let kernel = SquaredExponential {
                        variance: 1.0,
                        length_scale: 0.15 + 0.05 * (t % 3) as f64,
                    };
                    let source = covariance_source(&kernel, &points, 1e-2);
                    Hodlr::builder()
                        .source(&source)
                        .leaf_size(64)
                        .tolerance(tol)
                        .backend(backend)
                        .build()
                }
                TenantKind::Bie => {
                    let (_, matrix) = laplace_hodlr(n, tol);
                    Hodlr::builder().matrix(matrix).backend(backend).build()
                }
            }
        };
        service.register_tenant(name, key, build);
    }
}

/// The scripted right-hand side of request `r`: a pure function of the
/// request index, shared by both determinism runs.
fn scripted_rhs(n: usize, r: usize) -> Vec<f64> {
    (0..n)
        .map(|i| ((i * 7 + r * 13 + 1) as f64 * 0.01).sin())
        .collect()
}

/// The scripted tenant of request `r` (multiplicative-congruential hop, so
/// neighbours in a burst mix tenants).
fn scripted_tenant(tenants: usize, r: usize) -> String {
    format!("tenant-{}", (r * 2654435761) % tenants.max(1))
}

/// Outcome of one scripted pass: metrics plus the bitwise-foldable result
/// stream.
struct PassOutcome {
    latencies_ms: Vec<f64>,
    elapsed_s: f64,
    result_bits: Vec<u64>,
    failed: u64,
}

/// Drive `requests` scripted requests through `service` in bursts,
/// draining at each burst boundary.
fn drive(
    service: &SolveService<f64>,
    tenants: usize,
    n: usize,
    requests: usize,
    burst: usize,
) -> PassOutcome {
    let mut latencies_ms = Vec::with_capacity(requests);
    let mut result_bits = Vec::new();
    let mut failed = 0u64;
    let started = Instant::now();
    let mut r = 0;
    while r < requests {
        let burst_end = (r + burst).min(requests);
        let mut in_flight = Vec::with_capacity(burst_end - r);
        for req in r..burst_end {
            let tenant = scripted_tenant(tenants, req);
            let submitted = Instant::now();
            match service.submit(&tenant, scripted_rhs(n, req)) {
                Ok(ticket) => in_flight.push((submitted, ticket)),
                Err(_) => failed += 1,
            }
        }
        service.drain();
        for (submitted, ticket) in in_flight {
            match ticket.try_take().expect("drain fulfills every ticket") {
                Ok(x) => {
                    latencies_ms.push(submitted.elapsed().as_secs_f64() * 1e3);
                    result_bits.extend(x.iter().map(|v| v.to_bits()));
                }
                Err(_) => failed += 1,
            }
        }
        r = burst_end;
    }
    PassOutcome {
        latencies_ms,
        elapsed_s: started.elapsed().as_secs_f64(),
        result_bits,
        failed,
    }
}

/// Percentile over a copy of `values` (nearest-rank); 0 when empty.
fn percentile(values: &[f64], p: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let rank = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank]
}

/// Order-sensitive fold of the result stream into one telltale float.
fn checksum(bits: &[u64]) -> f64 {
    let mut acc = 0u64;
    for &b in bits {
        acc = acc.rotate_left(7) ^ b;
    }
    (acc >> 11) as f64 / (1u64 << 53) as f64
}

/// One scenario: build the service, run the scripted stream twice, and
/// report metrics from the first pass plus the cross-pass bitwise verdict.
fn run_scenario(
    name: &str,
    tenants: usize,
    cache: CacheConfig,
    backend: Backend,
    config: &ServeBenchConfig,
    burst: usize,
) -> ServeRow {
    let make_service = || {
        let service = SolveService::<f64>::new(ServeConfig {
            cache,
            queue_capacity: config.requests.max(16),
            degrade: DegradeConfig::default(),
        });
        register_tenants(&service, tenants, config.n, backend);
        service
    };

    let service = make_service();
    let pass = drive(&service, tenants, config.n, config.requests, burst);
    let replay = drive(&make_service(), tenants, config.n, config.requests, burst);

    let cache_stats = service.cache_stats();
    let stats = service.stats();
    ServeRow {
        scenario: name.to_string(),
        tenants,
        requests: config.requests,
        n: config.n,
        burst,
        drains: stats.drains,
        throughput_rps: config.requests as f64 / pass.elapsed_s,
        p50_ms: percentile(&pass.latencies_ms, 50.0),
        p99_ms: percentile(&pass.latencies_ms, 99.0),
        hit_rate: cache_stats.hit_rate(),
        evictions: cache_stats.evictions,
        launches_per_request: stats.launches_per_request(),
        // `drive` already counts both submit rejections and tickets that
        // drained to an error, so `pass.failed` is the complete per-request
        // failure count; adding `stats.failed` (the drain-side view of the
        // same errors) would double-count.
        failed: pass.failed,
        recovered_requests: stats.recovered,
        retries: stats.ladder_retries,
        degraded_solves: stats.degraded,
        breaker_trips: stats.breaker_trips,
        unaccounted: (config.requests as u64)
            .saturating_sub(pass.latencies_ms.len() as u64 + pass.failed),
        fault_seed: 0,
        deterministic: pass.result_bits == replay.result_bits,
        checksum: checksum(&pass.result_bits),
    }
}

/// The fixed fault seed of the `chaos` scenario: every injected device
/// fault derives from it, so the whole failure schedule replays bitwise.
pub const CHAOS_FAULT_SEED: u64 = 0xC4A0_5EED;

/// Fold a typed serve error into the determinism stream.  Each variant
/// gets a distinct tag, and variants carrying deterministic evidence
/// (residuals, breaker state, offending index) mix it in, so a replay
/// must reproduce not just the successes but the exact failure schedule.
fn error_tag(e: &ServeError) -> u64 {
    match e {
        ServeError::Solver(_) => 0xE1,
        ServeError::QueueFull { capacity } => 0xE2 ^ ((*capacity as u64) << 8),
        ServeError::Evicted { .. } => 0xE3,
        ServeError::Timeout { .. } => 0xE4,
        ServeError::InvalidRhs { index } => 0xE5 ^ ((*index as u64) << 8),
        ServeError::BuilderPanic { .. } => 0xE6,
        ServeError::CircuitOpen {
            failures,
            until_drain,
        } => 0xE7 ^ ((*failures as u64) << 8) ^ (until_drain << 40),
        ServeError::SuspectSolution { residual, .. } => 0xE8 ^ residual.to_bits(),
    }
}

/// Register the chaos tenant set: two healthy batched GP tenants (the
/// seeded device faults target these), one tenant whose nominal build is
/// poisoned but whose tighter rebuild is clean (every request must recover
/// at the ladder's tighten rung), and one tenant that never solves (the
/// ladder exhausts and the breaker must trip).
fn register_chaos_tenants(service: &SolveService<f64>, n: usize) {
    register_tenants(service, 2, n, Backend::Batched);

    // tenant-2: flaky at nominal tolerance.  The builder arms a blanket
    // poison plan on the device for the nominal (scale == 1.0) build, so
    // the factorization itself is NaN; at the tighten rung's scale the
    // device stays clean and the solve verifies.
    let flaky_key = CacheKey::new(
        format!("tenant-2/FlakyGp/n={n}"),
        &TreePolicy::LeafSize(64),
        1e-8,
        Backend::Batched,
        hodlr::Precision::Full,
    );
    service.register_tenant_scaled("tenant-2", flaky_key, move |scale| {
        let points = regular_grid_1d(n, 0.0, 1.0);
        let kernel = Matern::three_halves(1.0, 0.3);
        let source = covariance_source(&kernel, &points, 1e-2);
        let hodlr = Hodlr::builder()
            .source(&source)
            .leaf_size(64)
            .tolerance(1e-8 * scale)
            .backend(Backend::Batched)
            .build()?;
        if scale == 1.0 {
            hodlr
                .device()
                .arm_faults(FaultPlan::new().poison_range(1, 4096));
        }
        Ok(hodlr)
    });

    // tenant-3: cursed.  Every build (nominal and rebuilt) is poisoned and
    // the tenant is unscaled, so the tighten rung does not apply: the
    // ladder exhausts, requests surface `SuspectSolution`, and the circuit
    // breaker must trip.
    let cursed_key = CacheKey::new(
        format!("tenant-3/Cursed/n={n}"),
        &TreePolicy::LeafSize(64),
        1e-8,
        Backend::Batched,
        hodlr::Precision::Full,
    );
    service.register_tenant("tenant-3", cursed_key, move || {
        let points = regular_grid_1d(n, 0.0, 1.0);
        let kernel = SquaredExponential {
            variance: 1.0,
            length_scale: 0.25,
        };
        let source = covariance_source(&kernel, &points, 1e-2);
        let hodlr = Hodlr::builder()
            .source(&source)
            .leaf_size(64)
            .tolerance(1e-8)
            .backend(Backend::Batched)
            .build()?;
        hodlr
            .device()
            .arm_faults(FaultPlan::new().poison_range(1, 4096));
        Ok(hodlr)
    });
}

/// Drive the chaos stream: the same scripted submit/drain cadence as
/// [`drive`], with seeded device-fault plans re-armed on the healthy
/// tenants' resident entries every third burst.  Errors are folded into
/// the determinism stream via [`error_tag`], and every request must
/// resolve (the returned outcome's `failed` plus its latency count must
/// account for the full stream).
fn drive_chaos(
    service: &SolveService<f64>,
    tenants: usize,
    n: usize,
    requests: usize,
    burst: usize,
    fault_seed: u64,
) -> PassOutcome {
    let mut latencies_ms = Vec::with_capacity(requests);
    let mut result_bits = Vec::new();
    let mut failed = 0u64;
    let started = Instant::now();
    let mut r = 0;
    let mut burst_index = 0u64;
    while r < requests {
        // Every third burst, poison a couple of upcoming launches on one
        // healthy tenant's resident device (alternating tenants).  Launch
        // ordinals restart at arming, so the schedule is a pure function
        // of the burst index and the fault seed.
        if burst_index.is_multiple_of(3) {
            let target = (burst_index / 3) as usize % 2;
            if let Some(entry) = service
                .cache()
                .get(&tenant_cache_key(target, n, Backend::Batched))
            {
                let device = entry.hodlr().device();
                device.disarm_faults();
                device.arm_faults(FaultPlan::seeded(fault_seed ^ burst_index, 48, 3));
            }
        }
        let burst_end = (r + burst).min(requests);
        let mut in_flight = Vec::with_capacity(burst_end - r);
        for req in r..burst_end {
            let tenant = scripted_tenant(tenants, req);
            let submitted = Instant::now();
            match service.submit(&tenant, scripted_rhs(n, req)) {
                Ok(ticket) => in_flight.push((submitted, ticket)),
                Err(e) => {
                    failed += 1;
                    result_bits.push(error_tag(&e));
                }
            }
        }
        service.drain();
        for (submitted, ticket) in in_flight {
            match ticket.try_take().expect("drain fulfills every ticket") {
                Ok(x) => {
                    latencies_ms.push(submitted.elapsed().as_secs_f64() * 1e3);
                    result_bits.extend(x.iter().map(|v| v.to_bits()));
                }
                Err(e) => {
                    failed += 1;
                    result_bits.push(error_tag(&e));
                }
            }
        }
        r = burst_end;
        burst_index += 1;
    }
    PassOutcome {
        latencies_ms,
        elapsed_s: started.elapsed().as_secs_f64(),
        result_bits,
        failed,
    }
}

/// The `chaos` scenario: scripted traffic over the chaos tenant set with
/// fault plans armed at both layers, run twice for the bitwise verdict.
fn run_chaos_scenario(config: &ServeBenchConfig) -> ServeRow {
    let tenants = 4;
    let make_service = || {
        let service = SolveService::<f64>::new(ServeConfig {
            cache: CacheConfig {
                max_entries: 32,
                memory_budget_bytes: 4 << 30,
            },
            queue_capacity: config.requests.max(16),
            degrade: DegradeConfig::default(),
        });
        register_chaos_tenants(&service, config.n);
        // Serve-layer chaos: flush the cache ahead of drains 2 and 5 (warm
        // entries vanish under in-flight requests) and stall drain 3.
        service.arm_faults(
            ServeFaultPlan::new()
                .evict_before_drain(2)
                .evict_before_drain(5)
                .stall_drain(3, 200),
        );
        service
    };

    let service = make_service();
    let pass = drive_chaos(
        &service,
        tenants,
        config.n,
        config.requests,
        config.burst,
        CHAOS_FAULT_SEED,
    );
    let replay = drive_chaos(
        &make_service(),
        tenants,
        config.n,
        config.requests,
        config.burst,
        CHAOS_FAULT_SEED,
    );

    let cache_stats = service.cache_stats();
    let stats = service.stats();
    ServeRow {
        scenario: "chaos".to_string(),
        tenants,
        requests: config.requests,
        n: config.n,
        burst: config.burst,
        drains: stats.drains,
        throughput_rps: config.requests as f64 / pass.elapsed_s,
        p50_ms: percentile(&pass.latencies_ms, 50.0),
        p99_ms: percentile(&pass.latencies_ms, 99.0),
        hit_rate: cache_stats.hit_rate(),
        evictions: cache_stats.evictions,
        launches_per_request: stats.launches_per_request(),
        failed: pass.failed,
        recovered_requests: stats.recovered,
        retries: stats.ladder_retries,
        degraded_solves: stats.degraded,
        breaker_trips: stats.breaker_trips,
        unaccounted: (config.requests as u64)
            .saturating_sub(pass.latencies_ms.len() as u64 + pass.failed),
        fault_seed: CHAOS_FAULT_SEED,
        deterministic: pass.result_bits == replay.result_bits,
        checksum: checksum(&pass.result_bits),
    }
}

/// Launches of one uncoalesced request against the first tenant, used to
/// size the `coalesce` burst above the per-solve launch count.
fn solo_launch_count(config: &ServeBenchConfig) -> u64 {
    let service = SolveService::<f64>::new(ServeConfig::default());
    register_tenants(&service, 1, config.n, Backend::Batched);
    service
        .solve_now("tenant-0", &scripted_rhs(config.n, 0))
        .expect("coalesce probe tenant solves");
    service.stats().launches
}

/// Run the four serving scenarios.
pub fn run_serve_bench(config: &ServeBenchConfig) -> Vec<ServeRow> {
    let roomy = CacheConfig {
        max_entries: 32,
        memory_budget_bytes: 4 << 30,
    };
    // Steady mixed traffic over a cache that fits every tenant.
    let warm = run_scenario("warm", 3, roomy, Backend::Batched, config, config.burst);

    // More tenants than the cache admits: a two-entry cache under a
    // six-tenant rotation must evict continuously.
    let tight = CacheConfig {
        max_entries: 2,
        memory_budget_bytes: 4 << 30,
    };
    let cold = run_scenario("cold", 6, tight, Backend::Batched, config, config.burst);

    // Single hot tenant, bursts sized well above one blocked solve's
    // launch bill: launches-per-request must drop below 1.
    let burst = (2 * solo_launch_count(config) as usize).max(config.burst);
    let coalesce = run_scenario("coalesce", 1, roomy, Backend::Batched, config, burst);

    // Seeded faults at both layers: the ladder, verification gate and
    // breaker must keep every request accounted and replay bitwise.
    let chaos = run_chaos_scenario(config);

    vec![warm, cold, coalesce, chaos]
}

/// Print the rows as an aligned table.
pub fn print_serve_table(title: &str, rows: &[ServeRow]) {
    println!("\n== {title} ==");
    println!(
        "{:<10} {:>7} {:>8} {:>6} {:>6} {:>12} {:>9} {:>9} {:>9} {:>10} {:>14} {:>7} {:>9} {:>7} {:>8} {:>6} {:>6}",
        "scenario",
        "tenants",
        "requests",
        "n",
        "burst",
        "thruput_rps",
        "p50_ms",
        "p99_ms",
        "hit_rate",
        "evictions",
        "launches/req",
        "failed",
        "recovered",
        "retries",
        "degraded",
        "trips",
        "determ"
    );
    for row in rows {
        println!(
            "{:<10} {:>7} {:>8} {:>6} {:>6} {:>12.1} {:>9.3} {:>9.3} {:>9.3} {:>10} {:>14.3} {:>7} {:>9} {:>7} {:>8} {:>6} {:>6}",
            row.scenario,
            row.tenants,
            row.requests,
            row.n,
            row.burst,
            row.throughput_rps,
            row.p50_ms,
            row.p99_ms,
            row.hit_rate,
            row.evictions,
            row.launches_per_request,
            row.failed,
            row.recovered_requests,
            row.retries,
            row.degraded_solves,
            row.breaker_trips,
            row.deterministic
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_sweep_hits_the_acceptance_targets() {
        let rows = run_serve_bench(&ServeBenchConfig {
            n: 160,
            requests: 24,
            burst: 6,
        });
        assert_eq!(rows.len(), 4);
        let by_name = |name: &str| rows.iter().find(|r| r.scenario == name).unwrap();

        let warm = by_name("warm");
        assert!(warm.hit_rate > 0.5, "warm hit rate {:.3}", warm.hit_rate);
        assert_eq!(warm.failed, 0);

        let cold = by_name("cold");
        assert!(cold.evictions > 0, "cold run must churn the cache");

        let coalesce = by_name("coalesce");
        assert!(
            coalesce.launches_per_request < 1.0,
            "coalescing must amortize launches, got {:.3}",
            coalesce.launches_per_request
        );

        // The faults-off scenarios must not exercise the ladder at all.
        for name in ["warm", "cold", "coalesce"] {
            let row = by_name(name);
            assert_eq!(row.fault_seed, 0, "{name}: faults must be disabled");
            assert_eq!(row.retries, 0, "{name}: ladder must stay cold");
        }

        let chaos = by_name("chaos");
        assert_eq!(chaos.fault_seed, CHAOS_FAULT_SEED);
        assert!(
            chaos.recovered_requests > 0,
            "chaos must recover faulted requests via the ladder"
        );
        assert!(
            chaos.degraded_solves > 0,
            "the flaky tenant must be answered by a degraded rung"
        );
        assert!(chaos.retries > 0, "chaos must attempt ladder rungs");
        assert!(
            chaos.breaker_trips > 0,
            "the cursed tenant must trip the breaker"
        );
        assert!(
            chaos.failed > 0,
            "the cursed tenant's requests must surface typed errors"
        );

        for row in &rows {
            assert!(row.deterministic, "{}: replay diverged", row.scenario);
            assert!(row.throughput_rps > 0.0);
            assert!(row.p99_ms >= row.p50_ms);
            assert_eq!(row.unaccounted, 0, "{}: lost requests", row.scenario);
        }
    }

    #[test]
    fn scripted_schedule_is_a_pure_function() {
        assert_eq!(scripted_rhs(8, 3), scripted_rhs(8, 3));
        assert_eq!(scripted_tenant(6, 5), scripted_tenant(6, 5));
        let hit_all: std::collections::HashSet<String> =
            (0..32).map(|r| scripted_tenant(3, r)).collect();
        assert_eq!(hit_all.len(), 3, "schedule must visit every tenant");
    }
}
