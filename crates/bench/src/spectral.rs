//! The spectral scenario family: dense EVD/SVD kernel accuracy,
//! HODLR-accelerated Lanczos (largest and shift-invert smallest
//! eigenpairs of a GP covariance) and the SLQ log-determinant against the
//! product-form route, with bitwise-determinism verdicts across 1/2/8
//! thread pools, written to `BENCH_spectral.json`.
//!
//! Each row's `residual` is the scenario's natural relative error —
//! eigenpair residual `max_j ||A v_j - lambda_j v_j|| / ||A||` joined with
//! the basis orthogonality defect for the decompositions, the worst Ritz
//! residual for the Lanczos scenarios, and `|slq - product|` for the SLQ
//! row — and `tolerance` is the gate the `spectral` binary enforces on it
//! (for SLQ: three reported standard errors plus a small relative floor,
//! so the stochastic route must agree with the `O(N log^2 N)` product
//! form within its own error bars).  `t_dense_s` carries the dense-oracle
//! wall clock (full `symmetric_evd` for the Lanczos rows, the
//! factorization + product-form determinant for SLQ) where affordable, so
//! the JSON trajectory records when the matvec-side estimators start
//! undercutting the direct routes.

use hodlr::{Backend, Symmetry};
use hodlr_gp::{regular_grid_1d, GpConfig, GpModel, KernelFamily};
use hodlr_la::{symmetric_evd, DenseMatrix};
use hodlr_spectral::{
    lanczos_report, shift_invert_report, slq_log_det, LanczosConfig, PartialEigen, SlqConfig,
    SpectrumTarget,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// One row of the spectral table.
#[derive(Clone, Debug)]
pub struct SpectralRow {
    /// Scenario label (`evd-dense`, `svd-dense`, `lanczos-largest`,
    /// `shift-invert-smallest`, `slq-logdet`).
    pub scenario: String,
    /// Backend label: `dense` for the dense-kernel scenarios, `serial` /
    /// `batched` for the operator-backed ones.
    pub backend: String,
    /// Matrix / operator dimension.
    pub n: usize,
    /// Eigenpairs requested (the full `n` for the dense decompositions,
    /// `0` for SLQ which returns no pairs).
    pub k: usize,
    /// SLQ probe vectors (0 for non-SLQ rows).
    pub probes: usize,
    /// SLQ Lanczos steps per probe (0 for non-SLQ rows).
    pub steps: usize,
    /// Scenario residual (see module docs).
    pub residual: f64,
    /// The gate the `spectral` binary enforces on `residual`.
    pub tolerance: f64,
    /// Reported SLQ standard error (SLQ rows only).
    pub slq_stderr: Option<f64>,
    /// Wall-clock seconds of the scenario's estimator route.
    pub t_s: f64,
    /// Wall-clock seconds of the dense / direct oracle, where affordable.
    pub t_dense_s: Option<f64>,
    /// `true` when 1-, 2- and 8-thread pools produced bitwise-identical
    /// values, vectors and error bars.
    pub deterministic: bool,
    /// Rayon pool size the timed run was measured with.
    pub threads: usize,
}

/// Sweep configuration of the `spectral` binary.
#[derive(Clone, Debug)]
pub struct SpectralBenchConfig {
    /// Order of the dense EVD / SVD kernel scenarios.
    pub dense_n: usize,
    /// GP covariance sizes for the operator-backed scenarios.
    pub operator_sizes: Vec<usize>,
    /// Run the dense `symmetric_evd` oracle up to this operator size.
    pub dense_oracle_cap: usize,
    /// Eigenpairs requested from the Lanczos scenarios.
    pub k: usize,
    /// SLQ probe vectors.
    pub probes: usize,
    /// SLQ Lanczos steps per probe.
    pub steps: usize,
}

impl SpectralBenchConfig {
    /// The seconds-scale CI sweep (`--smoke`).
    pub fn smoke() -> Self {
        SpectralBenchConfig {
            dense_n: 96,
            operator_sizes: vec![512],
            dense_oracle_cap: 512,
            k: 6,
            probes: 8,
            steps: 48,
        }
    }

    /// The default laptop-scale sweep; includes the `n = 2048` SLQ row
    /// the acceptance criteria pin.
    pub fn full() -> Self {
        SpectralBenchConfig {
            dense_n: 256,
            operator_sizes: vec![1 << 10, 1 << 11],
            dense_oracle_cap: 1 << 10,
            k: 6,
            probes: 24,
            steps: 128,
        }
    }
}

fn pool(threads: usize) -> rayon::ThreadPool {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("bench pool")
}

/// `true` when the signature is bitwise-identical in 1-, 2- and 8-thread
/// pools (the README's determinism contract, applied to the spectral
/// subsystem end to end: construction, factorization, Lanczos, SLQ).
fn bitwise_across_pools(signature: impl Fn() -> Vec<u64> + Sync) -> bool {
    let sigs: Vec<Vec<u64>> = [1usize, 2, 8]
        .iter()
        .map(|&t| pool(t).install(&signature))
        .collect();
    sigs.windows(2).all(|w| w[0] == w[1])
}

fn bits_of(values: &[f64]) -> impl Iterator<Item = u64> + '_ {
    values.iter().map(|v| v.to_bits())
}

fn eigen_signature(report: &PartialEigen<f64>) -> Vec<u64> {
    bits_of(&report.values)
        .chain(bits_of(report.vectors.data()))
        .collect()
}

/// The deterministic Hermitian test matrix `G G^H + I` of the dense
/// scenarios.
fn hermitian_matrix(n: usize) -> DenseMatrix<f64> {
    let mut rng = StdRng::seed_from_u64(0x05be_c7a1 + n as u64);
    let g: DenseMatrix<f64> = hodlr_la::random::gaussian_matrix(&mut rng, n, n);
    let mut a = g.matmul(&g.conj_transpose());
    for i in 0..n {
        a[(i, i)] += 1.0;
    }
    a
}

/// `max_ij |Q^H Q - I|` — orthogonality defect of a (square or thin)
/// basis.
fn orthogonality_defect(q: &DenseMatrix<f64>) -> f64 {
    let g = q.conj_transpose().matmul(q);
    let mut worst = 0.0f64;
    for j in 0..g.cols() {
        for i in 0..g.rows() {
            let target = if i == j { 1.0 } else { 0.0 };
            worst = worst.max((g[(i, j)] - target).abs());
        }
    }
    worst
}

/// `max_ij |A - B|` scaled by `scale`.
fn max_abs_diff(a: &DenseMatrix<f64>, b: &DenseMatrix<f64>, scale: f64) -> f64 {
    a.data()
        .iter()
        .zip(b.data())
        .map(|(x, y)| (x - y).abs())
        .fold(0.0f64, f64::max)
        / scale
}

fn evd_dense_row(n: usize, threads: usize) -> SpectralRow {
    let a = hermitian_matrix(n);
    let start = Instant::now();
    let evd = symmetric_evd(&a).expect("dense EVD");
    let t_s = start.elapsed().as_secs_f64();
    let scale = evd
        .values
        .iter()
        .fold(0.0f64, |m, &v| m.max(v.abs()))
        .max(f64::MIN_POSITIVE);
    let residual =
        max_abs_diff(&evd.reconstruct(), &a, scale).max(orthogonality_defect(&evd.vectors));
    let deterministic = bitwise_across_pools(|| {
        let evd = symmetric_evd(&hermitian_matrix(n)).expect("dense EVD");
        bits_of(&evd.values)
            .chain(bits_of(evd.vectors.data()))
            .collect()
    });
    SpectralRow {
        scenario: "evd-dense".to_string(),
        backend: "dense".to_string(),
        n,
        k: n,
        probes: 0,
        steps: 0,
        residual,
        tolerance: 1e-11 * n as f64,
        slq_stderr: None,
        t_s,
        t_dense_s: None,
        deterministic,
        threads,
    }
}

fn svd_dense_row(n: usize, threads: usize) -> SpectralRow {
    let mut rng = StdRng::seed_from_u64(0x57d_b0b + n as u64);
    let a: DenseMatrix<f64> = hodlr_la::random::gaussian_matrix(&mut rng, n, n);
    let start = Instant::now();
    let svd = hodlr_la::golub_kahan_svd(&a).expect("dense SVD");
    let t_s = start.elapsed().as_secs_f64();
    let scale = svd
        .sigma
        .first()
        .copied()
        .unwrap_or(1.0)
        .max(f64::MIN_POSITIVE);
    let residual = max_abs_diff(&svd.reconstruct(), &a, scale)
        .max(orthogonality_defect(&svd.u))
        .max(orthogonality_defect(&svd.v));
    let deterministic = bitwise_across_pools(|| {
        let mut rng = StdRng::seed_from_u64(0x57d_b0b + n as u64);
        let a: DenseMatrix<f64> = hodlr_la::random::gaussian_matrix(&mut rng, n, n);
        let svd = hodlr_la::golub_kahan_svd(&a).expect("dense SVD");
        bits_of(&svd.sigma)
            .chain(bits_of(svd.u.data()))
            .chain(bits_of(svd.v.data()))
            .collect()
    });
    SpectralRow {
        scenario: "svd-dense".to_string(),
        backend: "dense".to_string(),
        n,
        k: n,
        probes: 0,
        steps: 0,
        residual,
        tolerance: 1e-11 * n as f64,
        slq_stderr: None,
        t_s,
        t_dense_s: None,
        deterministic,
        threads,
    }
}

fn backend_label(backend: Backend) -> &'static str {
    match backend {
        Backend::Serial => "serial",
        Backend::Batched => "batched",
    }
}

/// The GP covariance every operator-backed scenario runs on: squared
/// exponential over a regular grid with a `1e-2` nugget, compressed at
/// `1e-10` on the SPD path.
fn covariance_model(n: usize, backend: Backend) -> GpModel {
    let points = regular_grid_1d(n, 0.0, 4.0);
    let kernel = KernelFamily::SquaredExponential.kernel(1.0, 0.5);
    let config = GpConfig {
        backend,
        tolerance: 1e-10,
        symmetry: Symmetry::PositiveDefinite,
        ..GpConfig::default()
    };
    GpModel::build(&kernel, &points, 1e-2, &config).expect("GP covariance construction")
}

fn lanczos_cfg(k: usize) -> LanczosConfig {
    LanczosConfig {
        // The SE spectrum decays fast, but the smallest eigenvalues
        // cluster at the nugget; a roomier basis keeps both scenarios'
        // residuals tight.
        subspace: (4 * k + 32).min(256),
        ..LanczosConfig::default()
    }
}

/// The three operator-backed rows for one `(n, backend)` cell; the model
/// is built (and factorized) once per cell and once more per pool size
/// for the determinism verdicts.
fn operator_rows(config: &SpectralBenchConfig, n: usize, backend: Backend) -> Vec<SpectralRow> {
    let threads = rayon::current_num_threads();
    let k = config.k;
    let lcfg = lanczos_cfg(k);
    let scfg = SlqConfig {
        probes: config.probes,
        steps: config.steps,
        seed: 0x51c9_ad00,
    };

    let model = covariance_model(n, backend);
    let start = Instant::now();
    let largest =
        lanczos_report(model.hodlr(), k, SpectrumTarget::Largest, &lcfg).expect("Lanczos largest");
    let t_largest = start.elapsed().as_secs_f64();

    let start = Instant::now();
    let factorization = model.factorize().expect("SPD factorization");
    let smallest = shift_invert_report(model.hodlr(), &factorization, 0.0, k, &lcfg)
        .expect("shift-invert smallest");
    let t_smallest = start.elapsed().as_secs_f64();

    let start = Instant::now();
    let slq = slq_log_det(model.hodlr(), &scfg).expect("SLQ log-determinant");
    let t_slq = start.elapsed().as_secs_f64();

    let start = Instant::now();
    let product = model
        .log_det_term(&factorization)
        .expect("product-form log-determinant");
    let t_product = start.elapsed().as_secs_f64();

    // Dense EVD oracle: eigenvalue agreement (relative to the largest)
    // and the direct-route wall clock the Lanczos rows are measured
    // against.
    let oracle = if n <= config.dense_oracle_cap {
        let dense = model
            .hodlr()
            .matrix()
            .expect("benchmark models are built in working precision")
            .to_dense();
        let start = Instant::now();
        let evd = symmetric_evd(&dense).expect("dense oracle EVD");
        Some((evd, start.elapsed().as_secs_f64()))
    } else {
        None
    };
    let scale = largest.values[0].max(f64::MIN_POSITIVE);
    let largest_residual = oracle
        .as_ref()
        .map(|(evd, _)| {
            largest
                .values
                .iter()
                .enumerate()
                .map(|(i, &v)| (v - evd.values[n - 1 - i]).abs() / scale)
                .fold(0.0f64, f64::max)
        })
        .unwrap_or(0.0)
        .max(worst_residual(&largest));
    let smallest_residual = oracle
        .as_ref()
        .map(|(evd, _)| {
            smallest
                .values
                .iter()
                .enumerate()
                .map(|(i, &v)| (v - evd.values[i]).abs() / scale)
                .fold(0.0f64, f64::max)
        })
        .unwrap_or(0.0)
        .max(worst_residual(&smallest));
    let t_oracle = oracle.as_ref().map(|(_, t)| *t);

    // One determinism verdict per cell: the full pipeline — build,
    // factorize, both Lanczos scenarios, SLQ — re-run inside each pool,
    // all outputs folded into one signature.
    let deterministic = bitwise_across_pools(|| {
        let model = covariance_model(n, backend);
        let largest = lanczos_report(model.hodlr(), k, SpectrumTarget::Largest, &lcfg)
            .expect("Lanczos largest");
        let factorization = model.factorize().expect("SPD factorization");
        let smallest = shift_invert_report(model.hodlr(), &factorization, 0.0, k, &lcfg)
            .expect("shift-invert smallest");
        let slq = slq_log_det(model.hodlr(), &scfg).expect("SLQ log-determinant");
        let mut sig = eigen_signature(&largest);
        sig.extend(eigen_signature(&smallest));
        sig.push(slq.value.to_bits());
        sig.push(slq.stderr.to_bits());
        sig.push(slq.min_ritz.to_bits());
        sig
    });

    let backend = backend_label(backend).to_string();
    vec![
        SpectralRow {
            scenario: "lanczos-largest".to_string(),
            backend: backend.clone(),
            n,
            k,
            probes: 0,
            steps: 0,
            residual: largest_residual,
            tolerance: 1e-8,
            slq_stderr: None,
            t_s: t_largest,
            t_dense_s: t_oracle,
            deterministic,
            threads,
        },
        SpectralRow {
            scenario: "shift-invert-smallest".to_string(),
            backend: backend.clone(),
            n,
            k,
            probes: 0,
            steps: 0,
            residual: smallest_residual,
            tolerance: 1e-6,
            slq_stderr: None,
            t_s: t_smallest,
            t_dense_s: t_oracle,
            deterministic,
            threads,
        },
        SpectralRow {
            scenario: "slq-logdet".to_string(),
            backend,
            n,
            k: 0,
            probes: scfg.probes,
            steps: scfg.steps,
            residual: (slq.value - product).abs(),
            // Agreement within the reported stochastic error (plus a
            // relative floor for the near-zero-variance case).
            tolerance: 3.0 * slq.stderr + 1e-6 * product.abs().max(1.0),
            slq_stderr: Some(slq.stderr),
            t_s: t_slq,
            t_dense_s: Some(t_product),
            deterministic,
            threads,
        },
    ]
}

fn worst_residual(report: &PartialEigen<f64>) -> f64 {
    report.residuals.iter().copied().fold(0.0f64, f64::max)
}

/// Run the sweep: the two dense-kernel rows plus
/// `operator_sizes x {serial, batched} x 3` operator-backed rows.
pub fn run_spectral_bench(config: &SpectralBenchConfig) -> Vec<SpectralRow> {
    let threads = rayon::current_num_threads();
    let mut rows = vec![
        evd_dense_row(config.dense_n, threads),
        svd_dense_row(config.dense_n, threads),
    ];
    for &n in &config.operator_sizes {
        for backend in [Backend::Serial, Backend::Batched] {
            rows.extend(operator_rows(config, n, backend));
        }
    }
    rows
}

/// Print rows in the aligned table layout of the other harnesses.
pub fn print_spectral_table(title: &str, rows: &[SpectralRow]) {
    println!("== {title}");
    println!(
        "{:<22} {:<8} {:<8} {:>4} {:>7} {:>6} {:>12} {:>12} {:>12} {:>12} {:>12} {:>6}",
        "scenario",
        "backend",
        "N",
        "k",
        "probes",
        "steps",
        "residual",
        "tolerance",
        "t [s]",
        "t_dense [s]",
        "stderr",
        "det"
    );
    for row in rows {
        println!(
            "{:<22} {:<8} {:<8} {:>4} {:>7} {:>6} {:>12.4e} {:>12.4e} {:>12.4e} {:>12} {:>12} {:>6}",
            row.scenario,
            row.backend,
            row.n,
            row.k,
            row.probes,
            row.steps,
            row.residual,
            row.tolerance,
            row.t_s,
            row.t_dense_s
                .map_or("-".to_string(), |t| format!("{t:.4e}")),
            row.slq_stderr
                .map_or("-".to_string(), |e| format!("{e:.3e}")),
            row.deterministic
        );
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_sweep_is_accurate_and_deterministic() {
        let config = SpectralBenchConfig {
            dense_n: 48,
            operator_sizes: vec![192],
            dense_oracle_cap: 256,
            k: 4,
            probes: 6,
            steps: 40,
        };
        let rows = run_spectral_bench(&config);
        // 2 dense rows + 1 size x 2 backends x 3 scenarios.
        assert_eq!(rows.len(), 8);
        for row in &rows {
            assert!(
                row.residual.is_finite() && row.residual <= row.tolerance,
                "{} {}: residual {} vs tolerance {}",
                row.scenario,
                row.backend,
                row.residual,
                row.tolerance
            );
            assert!(row.deterministic, "{} {}", row.scenario, row.backend);
            if row.scenario == "slq-logdet" {
                assert!(row.probes > 0 && row.steps > 0);
                assert!(row.slq_stderr.expect("SLQ rows carry stderr").is_finite());
            }
        }
        // Serial and batched backends agree bitwise per scenario on what
        // they measure (the determinism flag already certifies each is
        // pool-size-invariant; this certifies backend invariance of the
        // Lanczos values via the shared oracle gate).
        print_spectral_table("smoke", &rows);
    }
}
