//! Workload generators: the three problem families of the evaluation.

use hodlr::Hodlr;
use hodlr_bie::{HelmholtzExteriorBie, LaplaceExteriorBie, StarContour};
use hodlr_compress::{CompressionMethod, MatrixEntrySource};
use hodlr_core::HodlrMatrix;
use hodlr_kernels::{GaussianKernel, RpyKernel, RpyMatrixSource, ScalarKernelSource};
use hodlr_la::{Complex64, Scalar};
#[allow(unused_imports)]
use hodlr_tree::PointCloud;
use hodlr_tree::{partition_points, uniform_cube_points, ClusterTree};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Leaf (diagonal block) size used throughout, matching the paper's 64.
pub const LEAF_SIZE: usize = 64;

/// Command-line arguments shared by all harness binaries.
#[derive(Clone, Debug)]
pub struct SweepArgs {
    /// Problem sizes to sweep.
    pub sizes: Vec<usize>,
    /// Whether the paper's original sizes were requested (`--full`).
    pub full: bool,
    /// Skip the slowest solvers (dense and HODLRlib-style) above this size.
    pub baseline_cap: usize,
}

/// Parse `--full`, `--sizes a,b,c` and `--baseline-cap K` from `args`,
/// falling back to `default_sizes` (or `full_sizes` with `--full`).
pub fn parse_args(default_sizes: &[usize], full_sizes: &[usize]) -> SweepArgs {
    let args: Vec<String> = std::env::args().collect();
    let full = args.iter().any(|a| a == "--full");
    let mut sizes: Vec<usize> = if full {
        full_sizes.to_vec()
    } else {
        default_sizes.to_vec()
    };
    let mut baseline_cap = 1 << 14;
    let mut iter = args.iter().peekable();
    while let Some(a) = iter.next() {
        if a == "--sizes" {
            if let Some(list) = iter.peek() {
                sizes = list
                    .split(',')
                    .filter_map(|s| s.trim().parse::<usize>().ok())
                    .collect();
            }
        }
        if a == "--baseline-cap" {
            if let Some(v) = iter.peek() {
                if let Ok(v) = v.parse::<usize>() {
                    baseline_cap = v;
                }
            }
        }
    }
    SweepArgs {
        sizes,
        full,
        baseline_cap,
    }
}

/// Build the Table III workload: the RPY kernel matrix over `n / 3`
/// particles uniformly distributed in `[-1, 1]^3`, spatially ordered, and
/// compressed at `tol` (the paper uses `1e-12`).
///
/// Returns the HODLR approximation; `n` is rounded down to a multiple of 3.
pub fn rpy_hodlr(n: usize, tol: f64) -> HodlrMatrix<f64> {
    let particles = (n / 3).max(2);
    let mut rng = StdRng::seed_from_u64(0x5eed + particles as u64);
    // Particles drawn uniformly from the interval [-1, 1] (embedded in 3-D),
    // the distribution of the HODLRlib benchmark the paper compares against;
    // it is what gives the near-constant per-level ranks of the appendix.
    let coords: Vec<f64> = (0..particles)
        .flat_map(|_| {
            let x: f64 = rand::Rng::gen_range(&mut rng, -1.0..1.0);
            [x, 0.0, 0.0]
        })
        .collect();
    let cloud = hodlr_tree::PointCloud::new(3, coords);
    let part = partition_points(&cloud, (LEAF_SIZE / 3).max(2)).expect("non-empty cloud");
    // Particle radius a = r_min / 2, estimated on a subsample for large
    // clouds (exact minimum distance is quadratic in the cloud size).
    let sample = if particles > 2000 {
        let coords: Vec<f64> = (0..2000 * 3)
            .map(|i| part.points.point(i / 3)[i % 3])
            .collect();
        hodlr_tree::PointCloud::new(3, coords)
    } else {
        part.points.clone()
    };
    let kernel = RpyKernel::paper_benchmark(sample.min_distance());
    let source = RpyMatrixSource::new(kernel, &part.points);
    // The matrix size is 3 * particles; build a tree over it that keeps the
    // three components of one particle in the same leaf.
    let matrix_size = 3 * particles;
    let tree = ClusterTree::with_leaf_size(matrix_size, LEAF_SIZE);
    Hodlr::builder()
        .source(&source)
        .tree(tree)
        .tolerance(tol)
        .method(CompressionMethod::AcaRook)
        .build()
        .expect("RPY workload construction")
        .into_matrix()
        .expect("benchmark workloads build in working precision")
}

/// Build a scalar Gaussian kernel matrix workload (used by the quickstart
/// example and the micro-benchmarks): `n` points in `[-1, 1]^3`, unit
/// length-scale, diagonal shift 1.
pub fn kernel_hodlr(n: usize, tol: f64) -> HodlrMatrix<f64> {
    let mut rng = StdRng::seed_from_u64(0xabcd + n as u64);
    let cloud = uniform_cube_points(&mut rng, n, 3);
    let part = partition_points(&cloud, LEAF_SIZE).expect("non-empty cloud");
    let source =
        ScalarKernelSource::with_shift(GaussianKernel { length_scale: 1.0 }, &part.points, 1.0);
    Hodlr::builder()
        .source(&source)
        .tree(part.tree.clone())
        .tolerance(tol)
        .method(CompressionMethod::AcaRook)
        .build()
        .expect("Gaussian kernel workload construction")
        .into_matrix()
        .expect("benchmark workloads build in working precision")
}

/// Build the Table IV workload: the Laplace exterior BIE (Eq. 21) on the
/// star contour, discretized with the trapezoidal rule on `n` nodes and
/// compressed at `tol` (`1e-12` for Table IV(a), `1e-4` for Table IV(b)).
pub fn laplace_hodlr(n: usize, tol: f64) -> (LaplaceExteriorBie<StarContour>, HodlrMatrix<f64>) {
    let bie = LaplaceExteriorBie::new(StarContour::paper_contour(), n);
    let matrix = Hodlr::builder()
        .source(&bie)
        .leaf_size(LEAF_SIZE)
        .tolerance(tol)
        .method(CompressionMethod::AcaRook)
        .build()
        .expect("Laplace BIE workload construction")
        .into_matrix()
        .expect("benchmark workloads build in working precision");
    (bie, matrix)
}

/// Build the Table V workload: the Helmholtz combined-field BIE (Eq. 24)
/// with `eta = kappa`, discretized with the 6th-order Kapur–Rokhlin rule on
/// `n` nodes and compressed at `tol`.
///
/// The paper uses `kappa = 100`; at the scaled-down default sizes the
/// wavenumber is reduced proportionally so the boundary stays resolved
/// (about 10 points per wavelength), which preserves the qualitative
/// behaviour (higher ranks than Laplace, complex arithmetic).
pub fn helmholtz_hodlr(
    n: usize,
    kappa: f64,
    tol: f64,
) -> (HelmholtzExteriorBie<StarContour>, HodlrMatrix<Complex64>) {
    let bie = HelmholtzExteriorBie::with_paper_parameters(StarContour::paper_contour(), n, kappa);
    let matrix = Hodlr::builder()
        .source(&bie)
        .leaf_size(LEAF_SIZE)
        .tolerance(tol)
        .method(CompressionMethod::AcaRook)
        .build()
        .expect("Helmholtz BIE workload construction")
        .into_matrix()
        .expect("benchmark workloads build in working precision");
    (bie, matrix)
}

/// A wavenumber that keeps roughly ten discretization points per wavelength
/// on the paper's contour (perimeter about 11) for a given `n`; capped at
/// the paper's `kappa = 100`.
pub fn resolved_kappa(n: usize) -> f64 {
    let perimeter = 11.0;
    let kappa = 2.0 * std::f64::consts::PI * n as f64 / (10.0 * perimeter);
    kappa.min(100.0)
}

/// Reference dense matrix of a workload, for residual checks at small sizes.
pub fn dense_reference<T: Scalar, S: MatrixEntrySource<T> + ?Sized>(
    source: &S,
) -> hodlr_la::DenseMatrix<T> {
    source.to_dense()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rpy_workload_builds_and_is_accurate() {
        let matrix = rpy_hodlr(3 * 256, 1e-8);
        assert_eq!(matrix.n(), 3 * 256);
        assert!(matrix.max_rank() > 0);
        // Spot-check the solve pipeline end to end.
        let f = matrix.factorize_serial().unwrap();
        let b = vec![1.0; matrix.n()];
        let x = f.solve(&b);
        assert!(matrix.relative_residual(&x, &b) < 1e-6);
    }

    #[test]
    fn laplace_workload_builds_and_is_accurate() {
        let (_bie, matrix) = laplace_hodlr(512, 1e-10);
        assert_eq!(matrix.n(), 512);
        let f = matrix.factorize_serial().unwrap();
        let b: Vec<f64> = (0..512).map(|i| (i as f64 * 0.01).sin()).collect();
        let x = f.solve(&b);
        assert!(matrix.relative_residual(&x, &b) < 1e-8);
    }

    #[test]
    fn helmholtz_workload_builds_and_is_accurate() {
        let kappa = resolved_kappa(512);
        let (_bie, matrix) = helmholtz_hodlr(512, kappa, 1e-8);
        assert_eq!(matrix.n(), 512);
        let f = matrix.factorize_serial().unwrap();
        let b: Vec<Complex64> = (0..512)
            .map(|i| Complex64::new((i as f64 * 0.02).cos(), (i as f64 * 0.03).sin()))
            .collect();
        let x = f.solve(&b);
        assert!(matrix.relative_residual(&x, &b) < 1e-6);
    }

    #[test]
    fn parse_args_defaults() {
        let args = parse_args(&[1024, 2048], &[1 << 17]);
        assert_eq!(args.sizes, vec![1024, 2048]);
        assert!(!args.full);
    }

    #[test]
    fn resolved_kappa_is_capped() {
        assert!(resolved_kappa(1 << 20) <= 100.0);
        assert!(resolved_kappa(512) > 1.0);
    }
}
