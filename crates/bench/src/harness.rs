//! Timing harness shared by every table/figure binary.

use hodlr_baselines::{DenseLuSolver, HodlrlibStyleSolver};
use hodlr_batch::Device;
use hodlr_core::{ComplexityReport, GpuSolver, HodlrMatrix};
use hodlr_la::{RealScalar, Scalar};
use hodlr_sparse::ExtendedSystem;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// What to measure for one problem size.
#[derive(Copy, Clone, Debug)]
pub struct MeasureConfig {
    /// Run the serial flattened HODLR solver (Algorithms 1–2).
    pub serial_hodlr: bool,
    /// Run the HODLRlib-style recursive solver.
    pub hodlrlib: bool,
    /// Run the sequential block-sparse solver.
    pub block_sparse_seq: bool,
    /// Run the parallel block-sparse solver.
    pub block_sparse_par: bool,
    /// Run the GPU-style batched solver on the virtual device.
    pub gpu_hodlr: bool,
    /// Run the dense LU baseline (only sensible at small sizes).
    pub dense: bool,
}

impl Default for MeasureConfig {
    fn default() -> Self {
        MeasureConfig {
            serial_hodlr: true,
            hodlrlib: false,
            block_sparse_seq: true,
            block_sparse_par: true,
            gpu_hodlr: true,
            dense: false,
        }
    }
}

/// One row of a paper-style table: a solver's timings, memory and residual
/// at one problem size.
#[derive(Clone, Debug)]
pub struct SolverRow {
    /// Workload label distinguishing row sets that share a problem size —
    /// the problem family plus whatever the binary sweeps besides `n`
    /// (e.g. `"laplace/tol=1e-12"` vs `"laplace/tol=1e-4"` in the Table IV
    /// output, which previously emitted two indistinguishable row sets).
    pub workload: String,
    /// Solver label, e.g. `"GPU HODLR Solver"`.
    pub solver: String,
    /// Problem size `N`.
    pub n: usize,
    /// Factorization time in seconds (`t_f`).
    pub t_factor: f64,
    /// Solve time for one right-hand side in seconds (`t_s`).
    pub t_solve: f64,
    /// Memory of the factorization in GiB (`mem`).
    pub mem_gib: f64,
    /// Relative residual of the computed solution (`relres`).
    pub relres: f64,
    /// Flops per second achieved during factorization, when metered.
    pub factor_gflops: Option<f64>,
    /// Flops per second achieved during the solve, when metered.
    pub solve_gflops: Option<f64>,
    /// Rayon pool size (participating threads) the row was measured with.
    pub threads: usize,
}

/// Measure every requested solver on one HODLR matrix; the right-hand side
/// is random (as in the paper) and the residual is evaluated with the HODLR
/// matrix-vector product.
pub fn measure_solvers<T: Scalar>(
    workload: &str,
    matrix: &HodlrMatrix<T>,
    config: &MeasureConfig,
) -> Vec<SolverRow> {
    let n = matrix.n();
    let threads = rayon::current_num_threads();
    let mut rng = StdRng::seed_from_u64(n as u64 ^ 0x9e3779b9);
    let b: Vec<T> = hodlr_la::random::random_vector(&mut rng, n);
    let mut rows = Vec::new();
    let report = ComplexityReport::for_matrix(matrix);

    if config.serial_hodlr {
        let start = Instant::now();
        let factor = matrix.factorize_serial().expect("serial factorization");
        let t_factor = start.elapsed().as_secs_f64();
        let start = Instant::now();
        let x = factor.solve(&b);
        let t_solve = start.elapsed().as_secs_f64();
        rows.push(SolverRow {
            workload: workload.into(),
            solver: "Serial HODLR Solver".into(),
            n,
            t_factor,
            t_solve,
            mem_gib: factor.memory_gib(),
            relres: matrix.relative_residual(&x, &b).to_f64(),
            factor_gflops: Some(report.factorization_flops as f64 / t_factor / 1e9),
            solve_gflops: Some(report.solve_flops as f64 / t_solve / 1e9),
            threads,
        });
    }

    if config.hodlrlib {
        let start = Instant::now();
        let factor = HodlrlibStyleSolver::factorize(matrix).expect("hodlrlib factorization");
        let t_factor = start.elapsed().as_secs_f64();
        let start = Instant::now();
        let x = factor.solve(&b);
        let t_solve = start.elapsed().as_secs_f64();
        rows.push(SolverRow {
            workload: workload.into(),
            solver: "HODLRlib-style Solver".into(),
            n,
            t_factor,
            t_solve,
            mem_gib: (factor.storage_entries() * std::mem::size_of::<T>()) as f64
                / (1u64 << 30) as f64,
            relres: matrix.relative_residual(&x, &b).to_f64(),
            factor_gflops: Some(report.factorization_flops as f64 / t_factor / 1e9),
            solve_gflops: Some(report.solve_flops as f64 / t_solve / 1e9),
            threads,
        });
    }

    for (label, parallel, enabled) in [
        ("Serial Block-Sparse Solver", false, config.block_sparse_seq),
        (
            "Parallel Block-Sparse Solver",
            true,
            config.block_sparse_par,
        ),
    ] {
        if !enabled {
            continue;
        }
        let start = Instant::now();
        let ext = ExtendedSystem::new(matrix);
        let factor = ext.factorize(parallel).expect("block-sparse factorization");
        let t_factor = start.elapsed().as_secs_f64();
        let start = Instant::now();
        let x = factor.solve(&b);
        let t_solve = start.elapsed().as_secs_f64();
        rows.push(SolverRow {
            workload: workload.into(),
            solver: label.into(),
            n,
            t_factor,
            t_solve,
            mem_gib: factor.memory_gib(),
            relres: matrix.relative_residual(&x, &b).to_f64(),
            factor_gflops: None,
            solve_gflops: None,
            threads,
        });
    }

    if config.gpu_hodlr {
        let device = Device::new();
        let mut gpu = GpuSolver::new(&device, matrix);
        let before_factor = device.counters();
        let start = Instant::now();
        gpu.factorize().expect("batched factorization");
        let t_factor = start.elapsed().as_secs_f64();
        let factor_flops = device.counters().since(&before_factor).flops;
        let before_solve = device.counters();
        let start = Instant::now();
        let x = gpu.solve(&b).expect("batched solve");
        let t_solve = start.elapsed().as_secs_f64();
        let solve_flops = device.counters().since(&before_solve).flops;
        rows.push(SolverRow {
            workload: workload.into(),
            solver: "GPU HODLR Solver".into(),
            n,
            t_factor,
            t_solve,
            mem_gib: matrix.memory_gib(),
            relres: matrix.relative_residual(&x, &b).to_f64(),
            factor_gflops: Some(factor_flops as f64 / t_factor / 1e9),
            solve_gflops: Some(solve_flops as f64 / t_solve / 1e9),
            threads,
        });
    }

    if config.dense {
        let dense = matrix.to_dense();
        let start = Instant::now();
        let solver = DenseLuSolver::new(&dense).expect("dense factorization");
        let t_factor = start.elapsed().as_secs_f64();
        let start = Instant::now();
        let x = solver.solve(&b);
        let t_solve = start.elapsed().as_secs_f64();
        rows.push(SolverRow {
            workload: workload.into(),
            solver: "Dense LU".into(),
            n,
            t_factor,
            t_solve,
            mem_gib: (solver.storage_entries() * std::mem::size_of::<T>()) as f64
                / (1u64 << 30) as f64,
            relres: matrix.relative_residual(&x, &b).to_f64(),
            factor_gflops: Some(solver.factorization_flops() as f64 / t_factor / 1e9),
            solve_gflops: None,
            threads,
        });
    }

    rows
}

/// Print rows in the paper's table layout, grouped by problem size.
pub fn print_table(title: &str, rows: &[SolverRow]) {
    println!("== {title}");
    println!(
        "{:<22} {:<10} {:<28} {:>8} {:>12} {:>12} {:>10} {:>12}",
        "workload", "N", "solver", "threads", "t_f [s]", "t_s [s]", "mem [GiB]", "relres"
    );
    for row in rows {
        println!(
            "{:<22} {:<10} {:<28} {:>8} {:>12.4e} {:>12.4e} {:>10.4} {:>12.3e}",
            row.workload,
            row.n,
            row.solver,
            row.threads,
            row.t_factor,
            row.t_solve,
            row.mem_gib,
            row.relres
        );
    }
    println!();
}

/// Print rows as a CSV series (one line per row), the format the figure
/// harnesses emit so the scaling plots can be regenerated.
pub fn print_csv(title: &str, rows: &[SolverRow]) {
    println!("# {title}");
    println!(
        "workload,solver,N,threads,t_factor,t_solve,mem_gib,relres,factor_gflops,solve_gflops"
    );
    for row in rows {
        println!(
            "{},{},{},{},{:.6e},{:.6e},{:.6e},{:.3e},{},{}",
            row.workload,
            row.solver,
            row.n,
            row.threads,
            row.t_factor,
            row.t_solve,
            row.mem_gib,
            row.relres,
            row.factor_gflops
                .map_or(String::new(), |v| format!("{v:.3}")),
            row.solve_gflops
                .map_or(String::new(), |v| format!("{v:.3}")),
        );
    }
    println!();
}

/// Least-squares slope of `log(time)` against `log(N)`, printed by the
/// figure harnesses next to the `O(N log^2 N)` / `O(N)` guide lines of the
/// paper.
pub fn fitted_exponent(points: &[(usize, f64)]) -> f64 {
    let pts: Vec<(f64, f64)> = points
        .iter()
        .filter(|&&(_, t)| t > 0.0)
        .map(|&(n, t)| ((n as f64).ln(), t.ln()))
        .collect();
    if pts.len() < 2 {
        return f64::NAN;
    }
    let n = pts.len() as f64;
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::kernel_hodlr;

    #[test]
    fn measure_all_solvers_on_a_small_problem() {
        let matrix = kernel_hodlr(512, 1e-8);
        let config = MeasureConfig {
            serial_hodlr: true,
            hodlrlib: true,
            block_sparse_seq: true,
            block_sparse_par: true,
            gpu_hodlr: true,
            dense: true,
        };
        let rows = measure_solvers("gaussian-kernel", &matrix, &config);
        assert_eq!(rows.len(), 6);
        for row in &rows {
            assert!(row.relres < 1e-6, "{}: relres {}", row.solver, row.relres);
            assert!(row.t_factor > 0.0 && row.t_solve >= 0.0);
            assert!(row.mem_gib > 0.0);
            assert_eq!(row.workload, "gaussian-kernel");
        }
        print_table("smoke", &rows);
        print_csv("smoke", &rows);
    }

    #[test]
    fn fitted_exponent_recovers_a_power_law() {
        let pts: Vec<(usize, f64)> = (10..15).map(|k| (1 << k, (1 << k) as f64 * 3.0)).collect();
        let slope = fitted_exponent(&pts);
        assert!((slope - 1.0).abs() < 1e-12);
        let quad: Vec<(usize, f64)> = (10..15)
            .map(|k| (1 << k, ((1 << k) as f64).powi(2)))
            .collect();
        assert!((fitted_exponent(&quad) - 2.0).abs() < 1e-12);
    }
}
