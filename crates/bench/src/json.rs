//! Machine-readable bench output: a tiny hand-rolled JSON emitter (no
//! serde in the offline container) for every bench family.
//!
//! Each bench binary writes a `BENCH_<name>.json` next to its table output
//! so successive PRs accumulate a perf trajectory that tooling can diff:
//!
//! * the `iterative` binary emits [`IterativeRow`]s (workload, method,
//!   problem size, thread count, wall-clock times, device-metered
//!   launch/flop totals — every method row carries real metering,
//!   including the mixed-refine rows);
//! * the fig/table binaries emit [`SolverRow`]s (**workload** — the
//!   problem family plus whatever the binary sweeps besides `n`, so row
//!   sets sharing a size stay distinguishable —, solver, size, threads,
//!   factor/solve times, memory, residual, metered GFLOP/s);
//! * the `kernels` binary emits [`KernelRow`]s (kernel, scalar type, dims,
//!   threads, GFLOP/s, blocked-vs-reference speedup, bitwise-determinism
//!   verdict);
//! * the `gp` binary emits [`GpRow`]s (kernel family, backend, size,
//!   compression tolerance, factor/log-det/log-likelihood times, the
//!   likelihood value, its error against the dense Cholesky oracle, and
//!   launch/flop metering).
//!
//! * the `scale` binary emits [`ScaleRow`](crate::scale::ScaleRow)s
//!   (workload, dimension, size, storage precision, the budget the build
//!   ran under, build/factor/solve wall clocks, the **measured** peak
//!   build bytes from the allocation meter, stored bytes, max rank, the
//!   solve residual and the small-`n` dense-matvec check);
//!
//! * the `serve` binary emits [`ServeRow`]s (scenario, tenant mix,
//!   throughput, p50/p99 latency, cache hit-rate, launches-per-request,
//!   and a determinism checksum);
//! * the `spectral` binary emits [`SpectralRow`]s (scenario, backend,
//!   size, requested pairs / probe counts, the scenario residual and its
//!   gate, the SLQ standard error, estimator-vs-dense-oracle wall clocks
//!   and the 1/2/8-thread bitwise-determinism verdict).
//!
//! Every bench family resolves its output path through the one shared
//! helper, [`bench_json_path`]: `HODLR_BENCH_JSON` overrides the default
//! `BENCH_<name>.json` in the working directory, identically for every
//! binary.

use crate::gp::GpRow;
use crate::harness::SolverRow;
use crate::iterative::IterativeRow;
use crate::kernels::KernelRow;
use crate::serve::ServeRow;
use crate::spectral::SpectralRow;
use std::io::Write;
use std::path::PathBuf;

/// Escape a string for inclusion in a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Format a float as JSON (finite values only; NaN/inf become `null`,
/// which plain JSON cannot represent).
fn number(v: f64) -> String {
    if v.is_finite() {
        format!("{v:e}")
    } else {
        "null".to_string()
    }
}

/// Render the iterative rows as a JSON array (pretty-printed, one object
/// per row, stable key order).
pub fn iterative_rows_to_json(rows: &[IterativeRow]) -> String {
    let mut out = String::from("[\n");
    for (i, row) in rows.iter().enumerate() {
        let scenario = format!("{}/{}", row.workload, row.method);
        out.push_str("  {");
        out.push_str(&format!("\"scenario\": \"{}\", ", escape(&scenario)));
        out.push_str(&format!("\"workload\": \"{}\", ", escape(&row.workload)));
        out.push_str(&format!("\"method\": \"{}\", ", escape(&row.method)));
        out.push_str(&format!("\"n\": {}, ", row.n));
        out.push_str(&format!("\"threads\": {}, ", row.threads));
        out.push_str(&format!("\"precond_tol\": {}, ", number(row.precond_tol)));
        out.push_str(&format!("\"iterations\": {}, ", row.iterations));
        out.push_str(&format!("\"relres\": {}, ", number(row.relres)));
        out.push_str(&format!("\"t_factor_s\": {}, ", number(row.t_factor)));
        out.push_str(&format!("\"t_per_rhs_s\": {}, ", number(row.t_per_rhs)));
        out.push_str(&format!("\"launches\": {}, ", row.launches));
        out.push_str(&format!("\"flops\": {}, ", row.flops));
        out.push_str(&format!("\"converged\": {}", row.converged));
        out.push('}');
        if i + 1 < rows.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

/// Write iterative rows to the family's JSON path (see
/// [`bench_json_path`]).
pub fn write_iterative_json(name: &str, rows: &[IterativeRow]) {
    write_bench_json(name, &iterative_rows_to_json(rows), rows.len());
}

/// An optional float as JSON (`null` when absent or non-finite).
fn opt_number(v: Option<f64>) -> String {
    match v {
        Some(v) => number(v),
        None => "null".to_string(),
    }
}

/// Render solver-table rows (the fig/table binaries) as a JSON array.
pub fn solver_rows_to_json(rows: &[SolverRow]) -> String {
    let mut out = String::from("[\n");
    for (i, row) in rows.iter().enumerate() {
        out.push_str("  {");
        out.push_str(&format!("\"workload\": \"{}\", ", escape(&row.workload)));
        out.push_str(&format!("\"solver\": \"{}\", ", escape(&row.solver)));
        out.push_str(&format!("\"n\": {}, ", row.n));
        out.push_str(&format!("\"threads\": {}, ", row.threads));
        out.push_str(&format!("\"t_factor_s\": {}, ", number(row.t_factor)));
        out.push_str(&format!("\"t_solve_s\": {}, ", number(row.t_solve)));
        out.push_str(&format!("\"mem_gib\": {}, ", number(row.mem_gib)));
        out.push_str(&format!("\"relres\": {}, ", number(row.relres)));
        out.push_str(&format!(
            "\"factor_gflops\": {}, ",
            opt_number(row.factor_gflops)
        ));
        out.push_str(&format!(
            "\"solve_gflops\": {}",
            opt_number(row.solve_gflops)
        ));
        out.push('}');
        if i + 1 < rows.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

/// Resolve the output path for a bench family: `HODLR_BENCH_JSON` wins,
/// otherwise `BENCH_<name>.json` in the working directory.
pub fn bench_json_path(name: &str) -> PathBuf {
    std::env::var_os("HODLR_BENCH_JSON")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from(format!("BENCH_{name}.json")))
}

/// Write rendered JSON to the family's path, reporting the outcome on
/// stdout/stderr (bench bins must not fail the run on an unwritable path).
fn write_bench_json(name: &str, rendered: &str, row_count: usize) {
    let path = bench_json_path(name);
    match std::fs::File::create(&path).and_then(|mut f| f.write_all(rendered.as_bytes())) {
        Ok(()) => println!("wrote {row_count} rows to {}", path.display()),
        Err(e) => eprintln!("failed to write {}: {e}", path.display()),
    }
}

/// Write fig/table solver rows to the family's JSON path.
pub fn write_solver_json(name: &str, rows: &[SolverRow]) {
    write_bench_json(name, &solver_rows_to_json(rows), rows.len());
}

/// Render kernel-bench rows as a JSON array.
pub fn kernel_rows_to_json(rows: &[KernelRow]) -> String {
    let mut out = String::from("[\n");
    for (i, row) in rows.iter().enumerate() {
        out.push_str("  {");
        out.push_str(&format!("\"kernel\": \"{}\", ", escape(&row.kernel)));
        out.push_str(&format!("\"scalar\": \"{}\", ", escape(&row.scalar)));
        out.push_str(&format!("\"m\": {}, ", row.m));
        out.push_str(&format!("\"n\": {}, ", row.n));
        out.push_str(&format!("\"k\": {}, ", row.k));
        out.push_str(&format!("\"threads\": {}, ", row.threads));
        out.push_str(&format!("\"time_s\": {}, ", number(row.time_s)));
        out.push_str(&format!("\"gflops\": {}, ", number(row.gflops)));
        out.push_str(&format!(
            "\"speedup_vs_reference\": {}, ",
            opt_number(row.speedup_vs_reference)
        ));
        out.push_str(&format!(
            "\"bitwise_vs_1thread\": {}",
            match row.bitwise_vs_1thread {
                Some(b) => b.to_string(),
                None => "null".to_string(),
            }
        ));
        out.push('}');
        if i + 1 < rows.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

/// Write kernel rows to the family's JSON path (see [`bench_json_path`]).
pub fn write_kernel_json(name: &str, rows: &[KernelRow]) {
    write_bench_json(name, &kernel_rows_to_json(rows), rows.len());
}

/// Render GP log-likelihood rows (the `gp` binary) as a JSON array.
pub fn gp_rows_to_json(rows: &[GpRow]) -> String {
    let mut out = String::from("[\n");
    for (i, row) in rows.iter().enumerate() {
        out.push_str("  {");
        out.push_str(&format!("\"kernel\": \"{}\", ", escape(&row.kernel)));
        out.push_str(&format!("\"backend\": \"{}\", ", escape(&row.backend)));
        out.push_str(&format!("\"path\": \"{}\", ", escape(&row.path)));
        out.push_str(&format!("\"n\": {}, ", row.n));
        out.push_str(&format!("\"threads\": {}, ", row.threads));
        out.push_str(&format!("\"tol\": {}, ", number(row.tol)));
        out.push_str(&format!("\"t_build_s\": {}, ", number(row.t_build)));
        out.push_str(&format!("\"t_factor_s\": {}, ", number(row.t_factor)));
        out.push_str(&format!("\"t_logdet_s\": {}, ", number(row.t_logdet)));
        out.push_str(&format!("\"t_loglik_s\": {}, ", number(row.t_loglik)));
        out.push_str(&format!(
            "\"log_likelihood\": {}, ",
            number(row.log_likelihood)
        ));
        out.push_str(&format!(
            "\"loglik_err_vs_dense\": {}, ",
            opt_number(row.loglik_err_vs_dense)
        ));
        out.push_str(&format!("\"launches\": {}, ", row.launches));
        out.push_str(&format!("\"flops\": {}, ", row.flops));
        out.push_str(&format!("\"factor_bytes\": {}", row.factor_bytes));
        out.push('}');
        if i + 1 < rows.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

/// Write GP rows to the family's JSON path (see [`bench_json_path`]).
pub fn write_gp_json(name: &str, rows: &[GpRow]) {
    write_bench_json(name, &gp_rows_to_json(rows), rows.len());
}

/// Render spectral rows (the `spectral` binary) as a JSON array.
pub fn spectral_rows_to_json(rows: &[SpectralRow]) -> String {
    let mut out = String::from("[\n");
    for (i, row) in rows.iter().enumerate() {
        out.push_str("  {");
        out.push_str(&format!("\"scenario\": \"{}\", ", escape(&row.scenario)));
        out.push_str(&format!("\"backend\": \"{}\", ", escape(&row.backend)));
        out.push_str(&format!("\"n\": {}, ", row.n));
        out.push_str(&format!("\"k\": {}, ", row.k));
        out.push_str(&format!("\"probes\": {}, ", row.probes));
        out.push_str(&format!("\"steps\": {}, ", row.steps));
        out.push_str(&format!("\"threads\": {}, ", row.threads));
        out.push_str(&format!("\"residual\": {}, ", number(row.residual)));
        out.push_str(&format!("\"tolerance\": {}, ", number(row.tolerance)));
        out.push_str(&format!("\"slq_stderr\": {}, ", opt_number(row.slq_stderr)));
        out.push_str(&format!("\"t_s\": {}, ", number(row.t_s)));
        out.push_str(&format!("\"t_dense_s\": {}, ", opt_number(row.t_dense_s)));
        out.push_str(&format!("\"deterministic\": {}", row.deterministic));
        out.push('}');
        if i + 1 < rows.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

/// Write spectral rows to the family's JSON path (see [`bench_json_path`]).
pub fn write_spectral_json(name: &str, rows: &[SpectralRow]) {
    write_bench_json(name, &spectral_rows_to_json(rows), rows.len());
}

/// Render scale rows (the `scale` binary) as a JSON array.
pub fn scale_rows_to_json(rows: &[crate::scale::ScaleRow]) -> String {
    let mut out = String::from("[\n");
    for (i, row) in rows.iter().enumerate() {
        out.push_str("  {");
        out.push_str(&format!("\"workload\": \"{}\", ", escape(&row.workload)));
        out.push_str(&format!("\"dim\": {}, ", row.dim));
        out.push_str(&format!("\"n\": {}, ", row.n));
        out.push_str(&format!("\"precision\": \"{}\", ", escape(&row.precision)));
        out.push_str(&format!("\"budget_bytes\": {}, ", row.budget_bytes));
        out.push_str(&format!("\"t_build_s\": {}, ", number(row.t_build)));
        out.push_str(&format!("\"t_factor_s\": {}, ", number(row.t_factor)));
        out.push_str(&format!("\"t_solve_s\": {}, ", number(row.t_solve)));
        out.push_str(&format!("\"peak_bytes\": {}, ", row.peak_bytes));
        out.push_str(&format!("\"storage_bytes\": {}, ", row.storage_bytes));
        out.push_str(&format!("\"max_rank\": {}, ", row.max_rank));
        out.push_str(&format!("\"relres\": {}, ", number(row.relres)));
        out.push_str(&format!(
            "\"compress_err\": {}, ",
            opt_number(row.compress_err)
        ));
        out.push_str(&format!("\"threads\": {}", row.threads));
        out.push('}');
        if i + 1 < rows.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

/// Write scale rows to the family's JSON path (see [`bench_json_path`]).
pub fn write_scale_json(name: &str, rows: &[crate::scale::ScaleRow]) {
    write_bench_json(name, &scale_rows_to_json(rows), rows.len());
}

/// Render serving rows (the `serve` binary) as a JSON array.
pub fn serve_rows_to_json(rows: &[ServeRow]) -> String {
    let mut out = String::from("[\n");
    for (i, row) in rows.iter().enumerate() {
        out.push_str("  {");
        out.push_str(&format!("\"scenario\": \"{}\", ", escape(&row.scenario)));
        out.push_str(&format!("\"tenants\": {}, ", row.tenants));
        out.push_str(&format!("\"requests\": {}, ", row.requests));
        out.push_str(&format!("\"n\": {}, ", row.n));
        out.push_str(&format!("\"burst\": {}, ", row.burst));
        out.push_str(&format!("\"drains\": {}, ", row.drains));
        out.push_str(&format!(
            "\"throughput_rps\": {}, ",
            number(row.throughput_rps)
        ));
        out.push_str(&format!("\"p50_ms\": {}, ", number(row.p50_ms)));
        out.push_str(&format!("\"p99_ms\": {}, ", number(row.p99_ms)));
        out.push_str(&format!("\"hit_rate\": {}, ", number(row.hit_rate)));
        out.push_str(&format!("\"evictions\": {}, ", row.evictions));
        out.push_str(&format!(
            "\"launches_per_request\": {}, ",
            number(row.launches_per_request)
        ));
        out.push_str(&format!("\"failed\": {}, ", row.failed));
        out.push_str(&format!(
            "\"recovered_requests\": {}, ",
            row.recovered_requests
        ));
        out.push_str(&format!("\"retries\": {}, ", row.retries));
        out.push_str(&format!("\"degraded_solves\": {}, ", row.degraded_solves));
        out.push_str(&format!("\"breaker_trips\": {}, ", row.breaker_trips));
        out.push_str(&format!("\"unaccounted\": {}, ", row.unaccounted));
        out.push_str(&format!("\"fault_seed\": {}, ", row.fault_seed));
        out.push_str(&format!("\"deterministic\": {}, ", row.deterministic));
        out.push_str(&format!("\"checksum\": {}", number(row.checksum)));
        out.push('}');
        if i + 1 < rows.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

/// Write serving rows to the family's JSON path (see [`bench_json_path`]).
pub fn write_serve_json(name: &str, rows: &[ServeRow]) {
    write_bench_json(name, &serve_rows_to_json(rows), rows.len());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_row() -> IterativeRow {
        IterativeRow {
            workload: "laplace".into(),
            n: 1024,
            precond_tol: 1e-4,
            method: "gmres".into(),
            iterations: 7,
            relres: 3.2e-9,
            t_factor: 0.5,
            t_per_rhs: 0.0125,
            converged: true,
            threads: 8,
            launches: 42,
            flops: 1_000_000,
        }
    }

    #[test]
    fn rows_render_with_every_required_field() {
        let json = iterative_rows_to_json(&[sample_row()]);
        for key in [
            "\"scenario\": \"laplace/gmres\"",
            "\"n\": 1024",
            "\"threads\": 8",
            "\"launches\": 42",
            "\"flops\": 1000000",
            "\"converged\": true",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert!(json.starts_with("[\n"));
        assert!(json.ends_with("]\n"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn multiple_rows_are_comma_separated() {
        let json = iterative_rows_to_json(&[sample_row(), sample_row()]);
        assert_eq!(json.matches("},").count(), 1);
    }

    #[test]
    fn solver_rows_render_required_fields() {
        let row = SolverRow {
            workload: "laplace/tol=1e-12".into(),
            solver: "GPU HODLR Solver".into(),
            n: 4096,
            t_factor: 1.25,
            t_solve: 0.03,
            mem_gib: 0.5,
            relres: 2e-11,
            factor_gflops: Some(3.5),
            solve_gflops: None,
            threads: 2,
        };
        let json = solver_rows_to_json(&[row]);
        for key in [
            "\"workload\": \"laplace/tol=1e-12\"",
            "\"solver\": \"GPU HODLR Solver\"",
            "\"n\": 4096",
            "\"threads\": 2",
            "\"solve_gflops\": null",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn gp_rows_render_required_fields() {
        let row = GpRow {
            kernel: "matern-3/2".into(),
            backend: "batched".into(),
            path: "spd".into(),
            n: 512,
            tol: 1e-10,
            t_build: 0.2,
            t_factor: 0.05,
            t_logdet: 0.001,
            t_loglik: 0.01,
            log_likelihood: -312.5,
            loglik_err_vs_dense: Some(3e-10),
            launches: 17,
            flops: 123456,
            factor_bytes: 7890,
            threads: 1,
        };
        let json = gp_rows_to_json(&[row]);
        for key in [
            "\"kernel\": \"matern-3/2\"",
            "\"backend\": \"batched\"",
            "\"path\": \"spd\"",
            "\"n\": 512",
            "\"t_logdet_s\": 1e-3",
            "\"loglik_err_vs_dense\": 3e-10",
            "\"launches\": 17",
            "\"flops\": 123456",
            "\"factor_bytes\": 7890",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn kernel_rows_render_required_fields() {
        let row = KernelRow {
            kernel: "gemm".into(),
            scalar: "f64".into(),
            m: 1024,
            n: 1024,
            k: 1024,
            threads: 8,
            time_s: 0.25,
            gflops: 8.6,
            speedup_vs_reference: Some(5.0),
            bitwise_vs_1thread: Some(true),
        };
        let json = kernel_rows_to_json(&[row]);
        for key in [
            "\"kernel\": \"gemm\"",
            "\"scalar\": \"f64\"",
            "\"m\": 1024",
            "\"threads\": 8",
            "\"speedup_vs_reference\": 5e0",
            "\"bitwise_vs_1thread\": true",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn spectral_rows_render_required_fields() {
        let row = SpectralRow {
            scenario: "slq-logdet".into(),
            backend: "batched".into(),
            n: 2048,
            k: 0,
            probes: 24,
            steps: 128,
            residual: 0.5,
            tolerance: 1.5,
            slq_stderr: Some(0.5),
            t_s: 0.25,
            t_dense_s: Some(1e-3),
            deterministic: true,
            threads: 8,
        };
        let json = spectral_rows_to_json(&[row]);
        for key in [
            "\"scenario\": \"slq-logdet\"",
            "\"backend\": \"batched\"",
            "\"n\": 2048",
            "\"k\": 0",
            "\"probes\": 24",
            "\"steps\": 128",
            "\"threads\": 8",
            "\"residual\": 5e-1",
            "\"tolerance\": 1.5e0",
            "\"slq_stderr\": 5e-1",
            "\"t_dense_s\": 1e-3",
            "\"deterministic\": true",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn scale_rows_render_required_fields() {
        let row = crate::scale::ScaleRow {
            workload: "laplace-surface".into(),
            dim: 3,
            n: 131072,
            precision: "f32-storage".into(),
            budget_bytes: 6 << 30,
            t_build: 120.5,
            t_factor: 80.25,
            t_solve: 0.75,
            peak_bytes: 1_500_000_000,
            storage_bytes: 900_000_000,
            max_rank: 41,
            relres: 2.5e-9,
            compress_err: None,
            threads: 8,
        };
        let json = scale_rows_to_json(&[row]);
        for key in [
            "\"workload\": \"laplace-surface\"",
            "\"dim\": 3",
            "\"n\": 131072",
            "\"precision\": \"f32-storage\"",
            "\"budget_bytes\": 6442450944",
            "\"peak_bytes\": 1500000000",
            "\"storage_bytes\": 900000000",
            "\"max_rank\": 41",
            "\"relres\": 2.5e-9",
            "\"compress_err\": null",
            "\"threads\": 8",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn serve_rows_render_required_fields() {
        let row = ServeRow {
            scenario: "coalesce".into(),
            tenants: 1,
            requests: 48,
            n: 192,
            burst: 24,
            drains: 2,
            throughput_rps: 850.0,
            p50_ms: 1.2,
            p99_ms: 4.5,
            hit_rate: 0.96,
            evictions: 0,
            launches_per_request: 0.4,
            failed: 0,
            recovered_requests: 3,
            retries: 5,
            degraded_solves: 2,
            breaker_trips: 1,
            unaccounted: 0,
            fault_seed: 0xC4A0_5EED,
            deterministic: true,
            checksum: 0.125,
        };
        let json = serve_rows_to_json(&[row]);
        for key in [
            "\"scenario\": \"coalesce\"",
            "\"requests\": 48",
            "\"burst\": 24",
            "\"throughput_rps\": 8.5e2",
            "\"hit_rate\": 9.6e-1",
            "\"launches_per_request\": 4e-1",
            "\"recovered_requests\": 3",
            "\"retries\": 5",
            "\"degraded_solves\": 2",
            "\"breaker_trips\": 1",
            "\"unaccounted\": 0",
            "\"fault_seed\": 3298844397",
            "\"deterministic\": true",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn strings_are_escaped_and_non_finite_numbers_become_null() {
        let mut row = sample_row();
        row.workload = "we\"ird\\label".into();
        row.relres = f64::NAN;
        let json = iterative_rows_to_json(&[row]);
        assert!(json.contains("we\\\"ird\\\\label"));
        assert!(json.contains("\"relres\": null"));
    }
}
