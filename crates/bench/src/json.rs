//! Machine-readable bench output: a tiny hand-rolled JSON emitter (no
//! serde in the offline container) for the iterative scenario family.
//!
//! The `iterative` binary writes `BENCH_iterative.json` next to its table
//! output so successive PRs accumulate a perf trajectory that tooling can
//! diff: each element records the scenario, problem size, thread count,
//! wall-clock times, and the device-metered launch/flop totals.

use crate::iterative::IterativeRow;
use std::io::Write;
use std::path::Path;

/// Escape a string for inclusion in a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Format a float as JSON (finite values only; NaN/inf become `null`,
/// which plain JSON cannot represent).
fn number(v: f64) -> String {
    if v.is_finite() {
        format!("{v:e}")
    } else {
        "null".to_string()
    }
}

/// Render the iterative rows as a JSON array (pretty-printed, one object
/// per row, stable key order).
pub fn iterative_rows_to_json(rows: &[IterativeRow]) -> String {
    let mut out = String::from("[\n");
    for (i, row) in rows.iter().enumerate() {
        let scenario = format!("{}/{}", row.workload, row.method);
        out.push_str("  {");
        out.push_str(&format!("\"scenario\": \"{}\", ", escape(&scenario)));
        out.push_str(&format!("\"workload\": \"{}\", ", escape(&row.workload)));
        out.push_str(&format!("\"method\": \"{}\", ", escape(&row.method)));
        out.push_str(&format!("\"n\": {}, ", row.n));
        out.push_str(&format!("\"threads\": {}, ", row.threads));
        out.push_str(&format!("\"precond_tol\": {}, ", number(row.precond_tol)));
        out.push_str(&format!("\"iterations\": {}, ", row.iterations));
        out.push_str(&format!("\"relres\": {}, ", number(row.relres)));
        out.push_str(&format!("\"t_factor_s\": {}, ", number(row.t_factor)));
        out.push_str(&format!("\"t_per_rhs_s\": {}, ", number(row.t_per_rhs)));
        out.push_str(&format!("\"launches\": {}, ", row.launches));
        out.push_str(&format!("\"flops\": {}, ", row.flops));
        out.push_str(&format!("\"converged\": {}", row.converged));
        out.push('}');
        if i + 1 < rows.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

/// Write the rows as JSON to `path` (the `iterative` binary points this at
/// `BENCH_iterative.json`, overridable via `HODLR_BENCH_JSON`).
pub fn write_iterative_json(path: &Path, rows: &[IterativeRow]) -> std::io::Result<()> {
    let mut file = std::fs::File::create(path)?;
    file.write_all(iterative_rows_to_json(rows).as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_row() -> IterativeRow {
        IterativeRow {
            workload: "laplace".into(),
            n: 1024,
            precond_tol: 1e-4,
            method: "gmres".into(),
            iterations: 7,
            relres: 3.2e-9,
            t_factor: 0.5,
            t_per_rhs: 0.0125,
            converged: true,
            threads: 8,
            launches: 42,
            flops: 1_000_000,
        }
    }

    #[test]
    fn rows_render_with_every_required_field() {
        let json = iterative_rows_to_json(&[sample_row()]);
        for key in [
            "\"scenario\": \"laplace/gmres\"",
            "\"n\": 1024",
            "\"threads\": 8",
            "\"launches\": 42",
            "\"flops\": 1000000",
            "\"converged\": true",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert!(json.starts_with("[\n"));
        assert!(json.ends_with("]\n"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn multiple_rows_are_comma_separated() {
        let json = iterative_rows_to_json(&[sample_row(), sample_row()]);
        assert_eq!(json.matches("},").count(), 1);
    }

    #[test]
    fn strings_are_escaped_and_non_finite_numbers_become_null() {
        let mut row = sample_row();
        row.workload = "we\"ird\\label".into();
        row.relres = f64::NAN;
        let json = iterative_rows_to_json(&[row]);
        assert!(json.contains("we\\\"ird\\\\label"));
        assert!(json.contains("\"relres\": null"));
    }
}
