//! The iterative-solve scenario family: preconditioned Krylov methods over
//! the paper's three workloads (Laplace BIE, Helmholtz BIE, RPY kernel
//! matrices), sweeping the preconditioner tolerance.
//!
//! This regenerates the *robust preconditioner* use case of Table V(b): a
//! loose HODLR factorization on the batched device whose one-time cost is
//! amortized across many right-hand sides, with iteration-count and
//! time-per-RHS columns per (workload, tolerance, method).  The Krylov
//! rows solve each right-hand side independently (one Krylov space per
//! RHS); the `direct-block` baseline is the path that batches all
//! right-hand sides through one [`GpuSolver::solve_block`] sweep.

use hodlr_batch::Device;
use hodlr_core::{GpuSolver, HodlrMatrix};
use hodlr_la::{RealScalar, Scalar};
use hodlr_solver::{
    iterative_refinement, BiCgStab, DemoteScalar, Gmres, GpuPreconditioner,
    MixedPrecisionGpuPreconditioner, RefinementOptions,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// One row of the iterative-solve table.
#[derive(Clone, Debug)]
pub struct IterativeRow {
    /// Workload label (`laplace`, `helmholtz`, `rpy`).
    pub workload: String,
    /// Problem size `N`.
    pub n: usize,
    /// Compression tolerance of the HODLR preconditioner.
    pub precond_tol: f64,
    /// Method label (`gmres`, `bicgstab`, `mixed-refine`).
    pub method: String,
    /// Krylov/refinement iterations for the first right-hand side.
    pub iterations: usize,
    /// Final relative residual for the first right-hand side.
    pub relres: f64,
    /// Wall-clock seconds spent factorizing the preconditioner.
    pub t_factor: f64,
    /// Wall-clock seconds per right-hand side across the batch.
    pub t_per_rhs: f64,
    /// Whether the requested tolerance was reached.
    pub converged: bool,
    /// Rayon pool size (participating threads) the row was measured with.
    pub threads: usize,
    /// Batched-kernel launches metered on the [`Device`] during the solve
    /// phase.  Every method row is device-metered: the Krylov rows through
    /// their batched preconditioner, the mixed-refine row through its
    /// lower-precision batched factorization, the direct row through
    /// [`GpuSolver::solve_block`].
    pub launches: u64,
    /// Flops metered on the [`Device`] during the solve phase (non-zero
    /// for every method row).
    pub flops: u64,
}

/// The default preconditioner-tolerance sweep of the `iterative` binary.
pub const DEFAULT_PRECOND_TOLS: [f64; 3] = [1e-2, 1e-4, 1e-6];

/// Configuration of one scenario run (one workload at one preconditioner
/// tolerance; the tolerance sweep itself is the caller's loop).
#[derive(Clone, Debug)]
pub struct IterativeConfig {
    /// Right-hand sides per timing batch.
    pub nrhs: usize,
    /// Relative-residual target of the Krylov methods.
    pub tol: f64,
    /// Iteration cap.
    pub max_iters: usize,
    /// Also run the mixed-precision factorize-low/refine-high row.
    pub mixed_precision: bool,
}

impl Default for IterativeConfig {
    fn default() -> Self {
        IterativeConfig {
            nrhs: 4,
            tol: 1e-8,
            max_iters: 200,
            mixed_precision: true,
        }
    }
}

/// The timing batch of right-hand sides for a size-`n` workload.  Shared
/// by [`measure_iterative`] and [`measure_block_direct`] so every row of a
/// table solves exactly the same systems.
fn bench_rhs<T: Scalar>(n: usize, nrhs: usize) -> Vec<Vec<T>> {
    let mut rng = StdRng::seed_from_u64(n as u64 ^ 0x17e2a71);
    (0..nrhs)
        .map(|_| hodlr_la::random::random_vector(&mut rng, n))
        .collect()
}

/// Measure GMRES, BiCGStab and (optionally) mixed-precision refinement on
/// one workload: `exact` is the tightly compressed operator, `rough` the
/// loose preconditioner approximation built at `precond_tol`.
pub fn measure_iterative<T: DemoteScalar>(
    workload: &str,
    exact: &HodlrMatrix<T>,
    rough: &HodlrMatrix<T>,
    precond_tol: f64,
    config: &IterativeConfig,
) -> Vec<IterativeRow> {
    let n = exact.n();
    let threads = rayon::current_num_threads();
    let rhs = bench_rhs::<T>(n, config.nrhs);
    let mut rows = Vec::new();

    let device = Device::new();
    let start = Instant::now();
    let precond =
        GpuPreconditioner::from_matrix(&device, rough).expect("preconditioner factorization");
    let t_factor = start.elapsed().as_secs_f64();

    let gmres = Gmres::new().tol(config.tol).max_iters(config.max_iters);
    let before = device.counters();
    let start = Instant::now();
    let outs: Vec<_> = rhs
        .iter()
        .map(|b| {
            gmres
                .solve_preconditioned(exact, &precond, b)
                .expect("gmres dimensions agree by construction")
        })
        .collect();
    let t_gmres = start.elapsed().as_secs_f64() / config.nrhs as f64;
    let metered = device.counters().since(&before);
    rows.push(IterativeRow {
        workload: workload.into(),
        n,
        precond_tol,
        method: "gmres".into(),
        iterations: outs[0].iterations,
        relres: outs[0].relative_residual,
        t_factor,
        t_per_rhs: t_gmres,
        converged: outs.iter().all(|o| o.converged),
        threads,
        launches: metered.kernel_launches,
        flops: metered.flops,
    });

    let bicgstab = BiCgStab::new().tol(config.tol).max_iters(config.max_iters);
    let before = device.counters();
    let start = Instant::now();
    let outs: Vec<_> = rhs
        .iter()
        .map(|b| {
            bicgstab
                .solve_preconditioned(exact, &precond, b)
                .expect("bicgstab dimensions agree by construction")
        })
        .collect();
    let t_bicg = start.elapsed().as_secs_f64() / config.nrhs as f64;
    let metered = device.counters().since(&before);
    rows.push(IterativeRow {
        workload: workload.into(),
        n,
        precond_tol,
        method: "bicgstab".into(),
        iterations: outs[0].iterations,
        relres: outs[0].relative_residual,
        t_factor,
        t_per_rhs: t_bicg,
        converged: outs.iter().all(|o| o.converged),
        threads,
        launches: metered.kernel_launches,
        flops: metered.flops,
    });

    if config.mixed_precision {
        // The lower-precision factorization runs on the same virtual
        // device as the Krylov preconditioners (the regime of the paper's
        // single-precision GPU runs), so every refinement sweep's
        // lower-precision solve is a metered launch sequence and the
        // mixed-refine row carries the same real launch/flop accounting
        // as the other method rows.
        let start = Instant::now();
        let mixed = MixedPrecisionGpuPreconditioner::<T>::factorize(&device, rough)
            .expect("mixed-precision factorization");
        let t_factor_mixed = start.elapsed().as_secs_f64();
        let opts = RefinementOptions {
            tol: config.tol,
            max_iters: config.max_iters,
        };
        let before = device.counters();
        let start = Instant::now();
        let outs: Vec<_> = rhs
            .iter()
            .map(|b| {
                iterative_refinement(exact, &mixed, b, opts)
                    .expect("refinement dimensions agree by construction")
            })
            .collect();
        let t_mixed = start.elapsed().as_secs_f64() / config.nrhs as f64;
        let metered = device.counters().since(&before);
        rows.push(IterativeRow {
            workload: workload.into(),
            n,
            precond_tol,
            method: "mixed-refine".into(),
            iterations: outs[0].iterations,
            relres: outs[0].relative_residual,
            t_factor: t_factor_mixed,
            t_per_rhs: t_mixed,
            converged: outs.iter().all(|o| o.converged),
            threads,
            launches: metered.kernel_launches,
            flops: metered.flops,
        });
    }

    rows
}

/// Time-per-RHS of the blocked direct path ([`GpuSolver::solve_block`])
/// through a tight factorization, the row the Krylov rows are compared
/// against.
pub fn measure_block_direct<T: Scalar>(
    workload: &str,
    exact: &HodlrMatrix<T>,
    nrhs: usize,
) -> IterativeRow {
    let n = exact.n();
    let threads = rayon::current_num_threads();
    let rhs = bench_rhs::<T>(n, nrhs);
    let device = Device::new();
    let start = Instant::now();
    let mut solver = GpuSolver::new(&device, exact);
    solver.factorize().expect("direct factorization");
    let t_factor = start.elapsed().as_secs_f64();
    let before = device.counters();
    let start = Instant::now();
    let xs = solver.solve_block(&rhs).expect("direct block solve");
    let t_per_rhs = start.elapsed().as_secs_f64() / nrhs as f64;
    let metered = device.counters().since(&before);
    let relres = exact.relative_residual(&xs[0], &rhs[0]).to_f64();
    IterativeRow {
        workload: workload.into(),
        n,
        precond_tol: 0.0,
        method: "direct-block".into(),
        iterations: 1,
        relres,
        t_factor,
        t_per_rhs,
        converged: true,
        threads,
        launches: metered.kernel_launches,
        flops: metered.flops,
    }
}

/// Print rows in the same aligned layout as the paper-table harnesses.
pub fn print_iterative_table(title: &str, rows: &[IterativeRow]) {
    println!("== {title}");
    println!(
        "{:<12} {:<8} {:<8} {:<12} {:<14} {:>6} {:>12} {:>12} {:>12} {:>10} {:>6}",
        "workload",
        "N",
        "threads",
        "precond_tol",
        "method",
        "iters",
        "relres",
        "t_f [s]",
        "t/rhs [s]",
        "launches",
        "conv"
    );
    for row in rows {
        println!(
            "{:<12} {:<8} {:<8} {:<12.1e} {:<14} {:>6} {:>12.3e} {:>12.4e} {:>12.4e} {:>10} {:>6}",
            row.workload,
            row.n,
            row.threads,
            row.precond_tol,
            row.method,
            row.iterations,
            row.relres,
            row.t_factor,
            row.t_per_rhs,
            row.launches,
            if row.converged { "yes" } else { "no" }
        );
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::laplace_hodlr;

    #[test]
    fn laplace_scenario_produces_converged_rows() {
        let (_bie, exact) = laplace_hodlr(512, 1e-10);
        let (_bie, rough) = laplace_hodlr(512, 1e-3);
        let config = IterativeConfig {
            nrhs: 2,
            tol: 1e-8,
            max_iters: 100,
            mixed_precision: true,
        };
        let rows = measure_iterative("laplace", &exact, &rough, 1e-3, &config);
        assert_eq!(rows.len(), 3);
        for row in &rows {
            assert!(row.converged, "{}: relres {}", row.method, row.relres);
            assert!(row.iterations >= 1);
        }
        let direct = measure_block_direct("laplace", &exact, 2);
        assert!(direct.relres < 1e-6);
        print_iterative_table("smoke", &rows);
    }

    /// Regression lock: mixed-refine rows used to report `launches: 0,
    /// flops: 0` because the lower-precision refinement ran unmetered on
    /// the host.  Every method row must carry real device metering.
    #[test]
    fn every_method_row_is_device_metered() {
        let (_bie, exact) = laplace_hodlr(512, 1e-10);
        let (_bie, rough) = laplace_hodlr(512, 1e-2);
        let config = IterativeConfig {
            nrhs: 2,
            tol: 1e-8,
            max_iters: 100,
            mixed_precision: true,
        };
        let mut rows = measure_iterative("laplace", &exact, &rough, 1e-2, &config);
        rows.push(measure_block_direct("laplace", &exact, 2));
        for row in &rows {
            assert!(row.launches > 0, "{}: zero launches", row.method);
            assert!(row.flops > 0, "{}: zero flops", row.method);
        }
        assert!(rows.iter().any(|r| r.method == "mixed-refine"));
    }
}
