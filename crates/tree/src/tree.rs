//! The [`ClusterTree`] data structure.

use std::ops::Range;

/// Identifier of a tree node.
///
/// Nodes are numbered in heap order starting at 1 for the root, exactly as
/// in Fig. 1 of the paper: the children of node `i` are `2i` and `2i + 1`,
/// the nodes at level `l` are `2^l ..= 2^{l+1} - 1`.
pub type NodeId = usize;

/// A complete binary cluster tree over the index set `0..n`.
///
/// Every node owns a non-empty consecutive range of indices; the ranges of a
/// pair of siblings partition the range of their parent (Definition 1).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClusterTree {
    /// Number of indices (matrix size `N`).
    n: usize,
    /// Number of levels below the root (`L`); leaves live at level `L`.
    levels: usize,
    /// `ranges[id - 1]` is the index range owned by node `id` (heap order).
    ranges: Vec<Range<usize>>,
}

impl ClusterTree {
    /// Build a tree over `0..n` with `levels` levels below the root by
    /// splitting every range as evenly as possible.
    ///
    /// # Panics
    /// Panics if `n < 2^levels` (a leaf would be empty).
    pub fn uniform(n: usize, levels: usize) -> Self {
        assert!(n > 0, "cluster tree over an empty index set");
        assert!(
            n >= (1usize << levels),
            "cannot build {levels} levels over {n} indices: a leaf would be empty"
        );
        let num_nodes = (1usize << (levels + 1)) - 1;
        let mut ranges = vec![0..0; num_nodes];
        ranges[0] = 0..n;
        for id in 1..=num_nodes {
            let range = ranges[id - 1].clone();
            let left = 2 * id;
            let right = 2 * id + 1;
            if right <= num_nodes {
                let mid = range.start + range.len().div_ceil(2);
                ranges[left - 1] = range.start..mid;
                ranges[right - 1] = mid..range.end;
            }
        }
        ClusterTree { n, levels, ranges }
    }

    /// Build a tree over `0..n` choosing the deepest number of levels such
    /// that every leaf holds at least `min_leaf_size` indices (and at least
    /// one level if possible).  This mirrors the paper's practice of fixing
    /// a small leaf size (64 in Table III) and letting `L = O(log N)` grow
    /// with the problem.
    pub fn with_leaf_size(n: usize, min_leaf_size: usize) -> Self {
        let min_leaf = min_leaf_size.max(1);
        let mut levels = 0usize;
        while n >> (levels + 1) >= min_leaf && (1usize << (levels + 1)) <= n {
            levels += 1;
        }
        Self::uniform(n, levels)
    }

    /// Build a tree from explicit per-node ranges (used by
    /// [`partition_points`](crate::partition_points)); `ranges` must be in
    /// heap order and satisfy the cluster-tree invariants.
    pub(crate) fn from_ranges(n: usize, levels: usize, ranges: Vec<Range<usize>>) -> Self {
        let tree = ClusterTree { n, levels, ranges };
        debug_assert!(tree.check_invariants().is_ok());
        tree
    }

    /// Matrix size `N` covered by the tree.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of levels `L` below the root; leaves live at level `L`.
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// Total number of nodes, `2^{L+1} - 1`.
    pub fn num_nodes(&self) -> usize {
        self.ranges.len()
    }

    /// Number of leaves, `2^L`.
    pub fn num_leaves(&self) -> usize {
        1usize << self.levels
    }

    /// The root node id (always 1).
    pub fn root(&self) -> NodeId {
        1
    }

    /// The level of a node (root is level 0, leaves are level `L`).
    pub fn level_of(&self, id: NodeId) -> usize {
        debug_assert!(id >= 1 && id <= self.num_nodes());
        usize::BITS as usize - 1 - id.leading_zeros() as usize
    }

    /// `true` when the node has no children.
    pub fn is_leaf(&self, id: NodeId) -> bool {
        2 * id > self.num_nodes()
    }

    /// The children `(left, right)` of a node, if it has any.
    pub fn children(&self, id: NodeId) -> Option<(NodeId, NodeId)> {
        if self.is_leaf(id) {
            None
        } else {
            Some((2 * id, 2 * id + 1))
        }
    }

    /// The parent of a node (`None` for the root).
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        if id == 1 {
            None
        } else {
            Some(id / 2)
        }
    }

    /// The sibling of a node (`None` for the root).
    pub fn sibling(&self, id: NodeId) -> Option<NodeId> {
        if id == 1 {
            None
        } else {
            Some(id ^ 1)
        }
    }

    /// The consecutive index range owned by a node.
    pub fn range(&self, id: NodeId) -> Range<usize> {
        self.ranges[id - 1].clone()
    }

    /// Number of indices owned by a node.
    pub fn node_size(&self, id: NodeId) -> usize {
        self.ranges[id - 1].len()
    }

    /// Iterator over the node ids at level `l`, in left-to-right order.
    pub fn level_nodes(&self, l: usize) -> impl Iterator<Item = NodeId> + '_ {
        debug_assert!(l <= self.levels);
        (1usize << l)..(1usize << (l + 1))
    }

    /// Iterator over the leaf node ids, left to right.
    pub fn leaves(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.level_nodes(self.levels)
    }

    /// Iterator over all non-leaf node ids, in breadth-first (top-down)
    /// order.  These are the nodes that own a `K` coefficient matrix in the
    /// factorization (Eq. 11).
    pub fn internal_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        1..(1usize << self.levels)
    }

    /// Largest leaf size in the tree.
    pub fn max_leaf_size(&self) -> usize {
        self.leaves()
            .map(|id| self.node_size(id))
            .max()
            .unwrap_or(0)
    }

    /// Verify all cluster-tree invariants (Definition 1); used by tests and
    /// debug assertions.
    ///
    /// # Errors
    /// Returns a human-readable description of the first violated invariant.
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.num_nodes() != (1usize << (self.levels + 1)) - 1 {
            return Err(format!(
                "node count {} does not match a complete tree with {} levels",
                self.num_nodes(),
                self.levels
            ));
        }
        if self.range(self.root()) != (0..self.n) {
            return Err("root does not own the full index set".into());
        }
        for id in 1..=self.num_nodes() {
            if self.range(id).is_empty() {
                return Err(format!("node {id} owns an empty range"));
            }
            if let Some((l, r)) = self.children(id) {
                let range = self.range(id);
                let left = self.range(l);
                let right = self.range(r);
                if left.start != range.start || left.end != right.start || right.end != range.end {
                    return Err(format!(
                        "children of node {id} do not partition its range: {range:?} vs {left:?} + {right:?}"
                    ));
                }
            }
        }
        for l in 0..=self.levels {
            let total: usize = self.level_nodes(l).map(|id| self.node_size(id)).sum();
            if total != self.n {
                return Err(format!("level {l} does not cover the index set"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_example_figure_1() {
        // Fig. 1: N = 400, two levels, I_4 = 0..100 (1-based 1:100), etc.
        let tree = ClusterTree::uniform(400, 2);
        assert_eq!(tree.num_nodes(), 7);
        assert_eq!(tree.num_leaves(), 4);
        assert_eq!(tree.range(1), 0..400);
        assert_eq!(tree.range(2), 0..200);
        assert_eq!(tree.range(3), 200..400);
        assert_eq!(tree.range(4), 0..100);
        assert_eq!(tree.range(5), 100..200);
        assert_eq!(tree.range(7), 300..400);
        assert_eq!(tree.children(2), Some((4, 5)));
        assert_eq!(tree.parent(5), Some(2));
        assert_eq!(tree.sibling(4), Some(5));
        assert_eq!(tree.sibling(7), Some(6));
        assert!(tree.is_leaf(4));
        assert!(!tree.is_leaf(2));
        tree.check_invariants().unwrap();
    }

    #[test]
    fn levels_and_node_levels() {
        let tree = ClusterTree::uniform(64, 3);
        assert_eq!(tree.levels(), 3);
        assert_eq!(tree.level_of(1), 0);
        assert_eq!(tree.level_of(2), 1);
        assert_eq!(tree.level_of(3), 1);
        assert_eq!(tree.level_of(4), 2);
        assert_eq!(tree.level_of(8), 3);
        assert_eq!(tree.level_of(15), 3);
        assert_eq!(tree.level_nodes(2).collect::<Vec<_>>(), vec![4, 5, 6, 7]);
        assert_eq!(tree.leaves().count(), 8);
        assert_eq!(tree.internal_nodes().collect::<Vec<_>>().len(), 7);
    }

    #[test]
    fn uneven_sizes_stay_balanced() {
        let tree = ClusterTree::uniform(10, 3);
        tree.check_invariants().unwrap();
        // 10 indices over 8 leaves: every leaf holds 1 or 2 indices.
        for leaf in tree.leaves() {
            let s = tree.node_size(leaf);
            assert!(s == 1 || s == 2, "leaf size {s}");
        }
    }

    #[test]
    fn with_leaf_size_respects_minimum() {
        let tree = ClusterTree::with_leaf_size(1000, 64);
        assert!(tree.leaves().all(|id| tree.node_size(id) >= 64));
        // One more level would push some leaf below 64.
        assert!(1000 >> (tree.levels() + 1) < 64);
        tree.check_invariants().unwrap();
    }

    #[test]
    fn with_leaf_size_small_n_gives_single_node() {
        let tree = ClusterTree::with_leaf_size(50, 64);
        assert_eq!(tree.levels(), 0);
        assert_eq!(tree.num_nodes(), 1);
        assert!(tree.is_leaf(tree.root()));
    }

    #[test]
    #[should_panic(expected = "leaf would be empty")]
    fn too_many_levels_panics() {
        let _ = ClusterTree::uniform(4, 3);
    }

    #[test]
    fn root_has_no_parent_or_sibling() {
        let tree = ClusterTree::uniform(16, 2);
        assert_eq!(tree.parent(1), None);
        assert_eq!(tree.sibling(1), None);
    }

    proptest! {
        #[test]
        fn invariants_hold_for_random_shapes(n in 1usize..5000, levels in 0usize..8) {
            prop_assume!(n >= (1usize << levels));
            let tree = ClusterTree::uniform(n, levels);
            prop_assert!(tree.check_invariants().is_ok());
        }

        #[test]
        fn sibling_ranges_are_disjoint_and_adjacent(n in 2usize..3000, levels in 1usize..7) {
            prop_assume!(n >= (1usize << levels));
            let tree = ClusterTree::uniform(n, levels);
            for id in 2..=tree.num_nodes() {
                let sib = tree.sibling(id).unwrap();
                let (a, b) = if id < sib { (id, sib) } else { (sib, id) };
                prop_assert_eq!(tree.range(a).end, tree.range(b).start);
            }
        }

        #[test]
        fn leaf_sizes_differ_by_at_most_one(n in 1usize..4096, levels in 0usize..8) {
            prop_assume!(n >= (1usize << levels));
            let tree = ClusterTree::uniform(n, levels);
            let sizes: Vec<usize> = tree.leaves().map(|id| tree.node_size(id)).collect();
            let min = *sizes.iter().min().unwrap();
            let max = *sizes.iter().max().unwrap();
            prop_assert!(max - min <= 1);
        }
    }
}
