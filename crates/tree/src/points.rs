//! Point clouds and geometry-aware cluster trees.
//!
//! Kernel matrices and discretized boundary integral operators are HODLR
//! because *spatially separated* clusters of points interact through a
//! numerically low-rank block.  To expose that structure the points must be
//! ordered so that every tree node owns a geometrically compact, consecutive
//! chunk; [`partition_points`] produces exactly that ordering by recursive
//! coordinate bisection (a k-d tree built top-down, always splitting at the
//! median of the widest coordinate).

use crate::tree::ClusterTree;
use hodlr_la::HodlrError;
use std::ops::Range;

/// A set of `len` points in `dim` dimensions, stored point-major
/// (`coords[i * dim + d]` is coordinate `d` of point `i`).
#[derive(Clone, Debug, PartialEq)]
pub struct PointCloud {
    dim: usize,
    coords: Vec<f64>,
}

impl PointCloud {
    /// Build a cloud from point-major coordinates.
    ///
    /// # Panics
    /// Panics if `coords.len()` is not a multiple of `dim` or `dim == 0`.
    pub fn new(dim: usize, coords: Vec<f64>) -> Self {
        assert!(dim > 0, "points must have at least one coordinate");
        assert_eq!(
            coords.len() % dim,
            0,
            "coordinate buffer length must be a multiple of dim"
        );
        PointCloud { dim, coords }
    }

    /// Build a cloud from a slice of fixed-dimension points.
    pub fn from_points<const D: usize>(points: &[[f64; D]]) -> Self {
        let mut coords = Vec::with_capacity(points.len() * D);
        for p in points {
            coords.extend_from_slice(p);
        }
        PointCloud::new(D, coords)
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.coords.len() / self.dim
    }

    /// `true` when the cloud holds no points.
    pub fn is_empty(&self) -> bool {
        self.coords.is_empty()
    }

    /// Spatial dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Coordinates of point `i`.
    pub fn point(&self, i: usize) -> &[f64] {
        &self.coords[i * self.dim..(i + 1) * self.dim]
    }

    /// Euclidean distance between points `i` and `j`.
    pub fn distance(&self, i: usize, j: usize) -> f64 {
        self.point(i)
            .iter()
            .zip(self.point(j))
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt()
    }

    /// Minimum pairwise distance (used by the RPY benchmark, where the
    /// particle radius is set to half the minimum distance).
    ///
    /// Computed by a sorted-axis sweep: points are ordered along the widest
    /// coordinate and each inner scan stops as soon as the separation along
    /// that single axis already reaches the best distance seen — for
    /// spatially spread clouds this visits `O(k)` neighbours per point
    /// instead of all `n`.  The answer is the minimum of exactly the same
    /// pairwise distances as the plain double loop, so it is bitwise
    /// identical to it.
    pub fn min_distance(&self) -> f64 {
        let n = self.len();
        if n < 2 {
            return f64::INFINITY;
        }
        if !self.coords.iter().all(|c| c.is_finite()) {
            // Non-finite coordinates break the sortedness argument of the
            // sweep; fall back to the exhaustive scan.
            return self.min_distance_exhaustive();
        }
        let idx_all: Vec<usize> = (0..n).collect();
        let (lo, hi) = self.bounding_box(&idx_all);
        let axis = (0..self.dim)
            .max_by(|&a, &b| {
                (hi[a] - lo[a])
                    .partial_cmp(&(hi[b] - lo[b]))
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .unwrap_or(0);
        let mut order = idx_all;
        order.sort_by(|&a, &b| {
            self.point(a)[axis]
                .partial_cmp(&self.point(b)[axis])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut best = f64::INFINITY;
        for i in 0..n {
            let xi = self.point(order[i])[axis];
            for &oj in &order[(i + 1)..] {
                let dx = self.point(oj)[axis] - xi;
                // Along the sorted axis dx only grows with j, and the full
                // distance is at least |dx|: nothing further right can
                // still beat `best`.
                if dx * dx >= best * best {
                    break;
                }
                let d = self.distance(order[i], oj);
                if d < best {
                    best = d;
                }
            }
        }
        best
    }

    /// The plain `O(n^2)` double loop behind [`PointCloud::min_distance`];
    /// kept as the fallback for non-finite coordinates and as the test
    /// oracle for the sweep.
    fn min_distance_exhaustive(&self) -> f64 {
        let n = self.len();
        let mut best = f64::INFINITY;
        for i in 0..n {
            for j in (i + 1)..n {
                let d = self.distance(i, j);
                if d < best {
                    best = d;
                }
            }
        }
        best
    }

    /// Reorder the points by `perm` (`perm[new] = old`), returning a new
    /// cloud.
    ///
    /// # Errors
    /// [`HodlrError::InvalidConfig`] when `perm` does not have one entry
    /// per point or names a point index out of range.
    pub fn permuted(&self, perm: &[usize]) -> Result<PointCloud, HodlrError> {
        if perm.len() != self.len() {
            return Err(HodlrError::config(format!(
                "permutation has {} entries for a cloud of {} points",
                perm.len(),
                self.len()
            )));
        }
        let mut coords = Vec::with_capacity(self.coords.len());
        for &old in perm {
            if old >= self.len() {
                return Err(HodlrError::config(format!(
                    "permutation names point {old} of a cloud of {} points",
                    self.len()
                )));
            }
            coords.extend_from_slice(self.point(old));
        }
        Ok(PointCloud::new(self.dim, coords))
    }

    /// Bounding-box extents `(min, max)` per coordinate of a subset of
    /// points.
    fn bounding_box(&self, idx: &[usize]) -> (Vec<f64>, Vec<f64>) {
        let mut lo = vec![f64::INFINITY; self.dim];
        let mut hi = vec![f64::NEG_INFINITY; self.dim];
        for &i in idx {
            for d in 0..self.dim {
                let x = self.point(i)[d];
                if x < lo[d] {
                    lo[d] = x;
                }
                if x > hi[d] {
                    hi[d] = x;
                }
            }
        }
        (lo, hi)
    }
}

/// Result of [`partition_points`]: the cluster tree plus the permutation
/// that maps tree ordering back to the caller's original point indices.
#[derive(Clone, Debug)]
pub struct PointPartition {
    /// The geometry-aware cluster tree.
    pub tree: ClusterTree,
    /// `perm[new_index] = original_index`: position `new_index` in the tree
    /// ordering holds the caller's point `original_index`.
    pub perm: Vec<usize>,
    /// The points reordered into tree order (row `i` of the matrix
    /// corresponds to `points.point(i)`).
    pub points: PointCloud,
}

/// Build a cluster tree over a point cloud by recursive coordinate
/// bisection with `levels` levels chosen so that every leaf holds at least
/// `min_leaf_size` points.
///
/// # Errors
/// [`HodlrError::InvalidConfig`] for an empty point cloud.
pub fn partition_points(
    cloud: &PointCloud,
    min_leaf_size: usize,
) -> Result<PointPartition, HodlrError> {
    let n = cloud.len();
    if n == 0 {
        return Err(HodlrError::config("cannot partition an empty point cloud"));
    }
    let min_leaf = min_leaf_size.max(1);
    let mut levels = 0usize;
    while n >> (levels + 1) >= min_leaf && (1usize << (levels + 1)) <= n {
        levels += 1;
    }

    let num_nodes = (1usize << (levels + 1)) - 1;
    let mut ranges: Vec<Range<usize>> = vec![0..0; num_nodes];
    let mut perm: Vec<usize> = (0..n).collect();
    ranges[0] = 0..n;

    // Breadth-first split: for every internal node sort its slice of the
    // permutation along the widest coordinate and cut at the median.
    for id in 1..=num_nodes {
        let range = ranges[id - 1].clone();
        if 2 * id + 1 > num_nodes {
            continue;
        }
        let slice = &mut perm[range.clone()];
        let (lo, hi) = cloud.bounding_box(slice);
        let split_dim = (0..cloud.dim())
            .max_by(|&a, &b| {
                (hi[a] - lo[a])
                    .partial_cmp(&(hi[b] - lo[b]))
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .unwrap_or(0);
        let mid_local = range.len().div_ceil(2);
        slice.select_nth_unstable_by(
            mid_local.saturating_sub(1).min(range.len() - 1),
            |&a, &b| {
                cloud.point(a)[split_dim]
                    .partial_cmp(&cloud.point(b)[split_dim])
                    .unwrap_or(std::cmp::Ordering::Equal)
            },
        );
        // `select_nth_unstable_by` leaves everything <= pivot on the left,
        // which is all we need for a median split.
        let mid = range.start + mid_local;
        ranges[2 * id - 1] = range.start..mid;
        ranges[2 * id] = mid..range.end;
    }

    let tree = ClusterTree::from_ranges(n, levels, ranges);
    let points = cloud.permuted(&perm)?;
    Ok(PointPartition { tree, perm, points })
}

/// Generate `n` points distributed uniformly in the cube `[-1, 1]^dim`
/// (the point distribution of the paper's kernel-matrix benchmark,
/// Section IV-A).
pub fn uniform_cube_points<R: rand::Rng + ?Sized>(rng: &mut R, n: usize, dim: usize) -> PointCloud {
    let coords = (0..n * dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
    PointCloud::new(dim, coords)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn point_cloud_accessors() {
        let cloud = PointCloud::from_points(&[[0.0, 0.0], [3.0, 4.0], [1.0, 1.0]]);
        assert_eq!(cloud.len(), 3);
        assert_eq!(cloud.dim(), 2);
        assert_eq!(cloud.point(1), &[3.0, 4.0]);
        assert!((cloud.distance(0, 1) - 5.0).abs() < 1e-15);
        assert!((cloud.min_distance() - 2.0_f64.sqrt()).abs() < 1e-15);
    }

    #[test]
    fn permuted_reorders_points() {
        let cloud = PointCloud::from_points(&[[1.0], [2.0], [3.0]]);
        let p = cloud.permuted(&[2, 0, 1]).unwrap();
        assert_eq!(p.point(0), &[3.0]);
        assert_eq!(p.point(1), &[1.0]);
        assert_eq!(p.point(2), &[2.0]);
    }

    #[test]
    fn partition_produces_valid_tree_and_permutation() {
        let mut rng = StdRng::seed_from_u64(42);
        let cloud = uniform_cube_points(&mut rng, 500, 3);
        let part = partition_points(&cloud, 32).unwrap();
        part.tree.check_invariants().unwrap();
        assert!(part.tree.leaves().all(|id| part.tree.node_size(id) >= 32));
        // perm is a permutation of 0..n.
        let mut sorted = part.perm.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..500).collect::<Vec<_>>());
        // The reordered cloud holds the same points.
        for (new, &old) in part.perm.iter().enumerate() {
            assert_eq!(part.points.point(new), cloud.point(old));
        }
    }

    #[test]
    fn partition_separates_two_clusters() {
        // Two well separated blobs on the x axis: the level-1 split must
        // isolate them (all of one blob left, all of the other right).
        let mut pts = Vec::new();
        for i in 0..40 {
            pts.push([-10.0 + 0.01 * i as f64, 0.0]);
        }
        for i in 0..40 {
            pts.push([10.0 + 0.01 * i as f64, 0.0]);
        }
        let cloud = PointCloud::from_points(&pts);
        let part = partition_points(&cloud, 10).unwrap();
        let left = part.tree.range(2);
        let originals: Vec<usize> = left.map(|i| part.perm[i]).collect();
        assert!(originals.iter().all(|&o| o < 40) || originals.iter().all(|&o| o >= 40));
    }

    #[test]
    fn single_point_cloud() {
        let cloud = PointCloud::from_points(&[[0.5, 0.5]]);
        let part = partition_points(&cloud, 16).unwrap();
        assert_eq!(part.tree.levels(), 0);
        assert_eq!(part.perm, vec![0]);
    }

    #[test]
    #[should_panic(expected = "multiple of dim")]
    fn mismatched_coordinate_buffer_panics() {
        let _ = PointCloud::new(3, vec![1.0, 2.0]);
    }

    #[test]
    fn invalid_permutations_are_typed_errors() {
        let cloud = PointCloud::from_points(&[[1.0], [2.0], [3.0]]);
        assert!(matches!(
            cloud.permuted(&[0, 1]),
            Err(HodlrError::InvalidConfig { .. })
        ));
        assert!(matches!(
            cloud.permuted(&[0, 1, 7]),
            Err(HodlrError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn empty_cloud_partition_is_a_typed_error() {
        let empty = PointCloud::new(2, vec![]);
        assert!(matches!(
            partition_points(&empty, 8),
            Err(HodlrError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn partition_balances_leaves_in_2d_and_3d() {
        for dim in [2usize, 3] {
            let mut rng = StdRng::seed_from_u64(7 + dim as u64);
            let cloud = uniform_cube_points(&mut rng, 1000, dim);
            let part = partition_points(&cloud, 32).unwrap();
            assert!(part.tree.levels() >= 3, "dim {dim}: tree too shallow");
            let sizes: Vec<usize> = part
                .tree
                .leaves()
                .map(|id| part.tree.node_size(id))
                .collect();
            let (min, max) = (*sizes.iter().min().unwrap(), *sizes.iter().max().unwrap());
            // Median splits keep every leaf within one point of its
            // sibling, so globally leaves differ by at most the number of
            // levels.
            assert!(
                max - min <= part.tree.levels(),
                "dim {dim}: leaf sizes {min}..{max}"
            );
        }
    }

    #[test]
    fn duplicate_coordinates_still_split_on_the_widest_axis() {
        // All points share x; the spread lives on y.  The split must pick
        // y (the widest axis) and still produce a balanced partition.
        let pts: Vec<[f64; 2]> = (0..64).map(|i| [5.0, i as f64]).collect();
        let cloud = PointCloud::from_points(&pts);
        let part = partition_points(&cloud, 16).unwrap();
        assert!(part.tree.levels() >= 1);
        let left: Vec<usize> = part.tree.range(2).map(|i| part.perm[i]).collect();
        let right: Vec<usize> = part.tree.range(3).map(|i| part.perm[i]).collect();
        // The split separates low-y from high-y points.
        let left_max = left.iter().map(|&o| pts[o][1]).fold(f64::MIN, f64::max);
        let right_min = right.iter().map(|&o| pts[o][1]).fold(f64::MAX, f64::min);
        assert!(left_max <= right_min);
        // A fully degenerate cloud (every point identical) still
        // partitions without panicking.
        let same = PointCloud::from_points(&[[1.0, 2.0]; 50]);
        let part = partition_points(&same, 8).unwrap();
        part.tree.check_invariants().unwrap();
    }

    #[test]
    fn min_distance_handles_non_finite_coordinates() {
        let cloud = PointCloud::from_points(&[[0.0, 0.0], [f64::NAN, 1.0], [0.0, 3.0]]);
        // The sweep falls back to the exhaustive scan; the finite pair
        // still wins.
        assert_eq!(cloud.min_distance(), 3.0);
        let single = PointCloud::from_points(&[[1.0]]);
        assert_eq!(single.min_distance(), f64::INFINITY);
    }

    proptest! {
        #[test]
        fn partition_is_always_a_permutation(n in 1usize..400, dim in 1usize..4, leaf in 1usize..64) {
            let mut rng = StdRng::seed_from_u64(n as u64 * 31 + dim as u64);
            let cloud = uniform_cube_points(&mut rng, n, dim);
            let part = partition_points(&cloud, leaf).unwrap();
            let mut sorted = part.perm.clone();
            sorted.sort_unstable();
            prop_assert_eq!(sorted, (0..n).collect::<Vec<_>>());
            prop_assert!(part.tree.check_invariants().is_ok());
        }

        #[test]
        fn min_distance_sweep_is_bitwise_exhaustive(n in 2usize..200, dim in 1usize..4) {
            let mut rng = StdRng::seed_from_u64(n as u64 * 131 + dim as u64);
            let cloud = uniform_cube_points(&mut rng, n, dim);
            // The sweep minimizes over the same multiset of distances as
            // the double loop, so the answers are bitwise identical.
            prop_assert_eq!(
                cloud.min_distance().to_bits(),
                cloud.min_distance_exhaustive().to_bits()
            );
        }

        #[test]
        fn leaves_are_geometrically_tighter_than_root(n in 64usize..300) {
            let mut rng = StdRng::seed_from_u64(n as u64);
            let cloud = uniform_cube_points(&mut rng, n, 2);
            let part = partition_points(&cloud, 8).unwrap();
            prop_assume!(part.tree.levels() >= 1);
            // Diameter of each level-1 cluster along the split axis is at
            // most the root diameter (sanity of the bisection).
            let idx_all: Vec<usize> = (0..n).collect();
            let (root_lo, root_hi) = part.points.bounding_box(&idx_all);
            let root_width: f64 = (0..2).map(|d| root_hi[d] - root_lo[d]).fold(0.0, f64::max);
            for node in part.tree.level_nodes(1) {
                let idx: Vec<usize> = part.tree.range(node).collect();
                let (l, h) = part.points.bounding_box(&idx);
                let w: f64 = (0..2).map(|d| h[d] - l[d]).fold(0.0, f64::max);
                prop_assert!(w <= root_width + 1e-12);
            }
        }
    }
}
