//! # hodlr-tree — cluster trees
//!
//! A *cluster tree* (Definition 1 of the paper) is a complete binary tree
//! over a consecutive index set `{0, 1, ..., N-1}`: level `l` has `2^l`
//! nodes, every node owns a non-empty consecutive index range, and the two
//! children of a node partition their parent's range.  The tree dictates the
//! tessellation of a HODLR matrix into leaf diagonal blocks and sibling
//! off-diagonal blocks (Fig. 2).
//!
//! Two constructions are provided:
//!
//! * [`ClusterTree::uniform`] — split the index range evenly, the right
//!   choice when the matrix indices have no geometry attached (or the
//!   points are already sorted);
//! * [`partition_points`] — recursive coordinate bisection of a point cloud
//!   (a k-d-tree style ordering); it returns the permutation that reorders
//!   the points so that every tree node owns a consecutive range, which is
//!   what makes kernel matrices HODLR-compressible in the first place.

pub mod points;
pub mod tree;

pub use points::{partition_points, uniform_cube_points, PointCloud, PointPartition};
pub use tree::{ClusterTree, NodeId};
