//! # hodlr-baselines — reference solvers the paper compares against
//!
//! * [`DenseLuSolver`] — the classical `O(N^3)` dense LU direct solver; the
//!   baseline every fast method is ultimately measured against and the
//!   comparison that motivates hierarchical low-rank formats in the first
//!   place (Section I-A).
//! * [`HodlrlibStyleSolver`] — a recursive HODLR factorization in the style
//!   of the HODLRlib library the paper benchmarks in Table III: per-node
//!   storage of the `Y = A_node^{-1} U_node` bases and of the coupling
//!   matrices, with parallelism only *across* nodes of the same tree level
//!   (HODLRlib uses an OpenMP `parallel for`; here rayon).  There is no
//!   batching and no flattened data structure — precisely the overheads the
//!   paper's contribution removes.

pub mod dense;
pub mod hodlrlib;

pub use dense::DenseLuSolver;
pub use hodlrlib::{HodlrlibFactorization, HodlrlibStyleSolver};
