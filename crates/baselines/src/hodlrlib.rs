//! A HODLRlib-style recursive factorization with per-node storage and
//! level-only parallelism.
//!
//! HODLRlib (the CPU library the paper benchmarks against in Table III)
//! implements the recursive factorization of Section III-A directly: every
//! tree node owns its `Y = A_node^{-1} U_node` basis and the LU factors of
//! its coupling matrix `K`, and the two `for`-loops over nodes of a level
//! are parallelised with OpenMP.  There is no flattened `Ubig`/`Ybig`
//! structure and no batching of the small dense operations — which is
//! exactly the difference the paper's data structure addresses.  Here the
//! per-level node loops use rayon, and the recursive solves fork with
//! `rayon::join`, reproducing that parallelisation strategy.

use hodlr_core::HodlrMatrix;
use hodlr_la::lu::SingularError;
use hodlr_la::{gemm, DenseMatrix, LuFactor, Op, Scalar};
use hodlr_tree::{ClusterTree, NodeId};
use rayon::prelude::*;

/// Marker type exposing the constructors; see [`HodlrlibFactorization`].
pub struct HodlrlibStyleSolver;

impl HodlrlibStyleSolver {
    /// Factorize a HODLR matrix in the HODLRlib style.
    ///
    /// # Errors
    /// Returns an error if a leaf diagonal block or a coupling matrix is
    /// singular.
    pub fn factorize<T: Scalar>(
        matrix: &HodlrMatrix<T>,
    ) -> Result<HodlrlibFactorization<T>, SingularError> {
        HodlrlibFactorization::new(matrix)
    }
}

/// Per-node factorization data of the recursive algorithm.
pub struct HodlrlibFactorization<T: Scalar> {
    tree: ClusterTree,
    /// LU factors of the leaf diagonal blocks, in leaf order.
    leaf_lu: Vec<LuFactor<T>>,
    /// `Y_alpha = A_alpha^{-1} U_alpha` for every non-root node.
    node_y: Vec<Option<DenseMatrix<T>>>,
    /// Right bases `V_alpha`, copied per node.
    node_v: Vec<Option<DenseMatrix<T>>>,
    /// LU factors of the coupling matrix `K_gamma` for every internal node.
    node_k: Vec<Option<LuFactor<T>>>,
}

impl<T: Scalar> HodlrlibFactorization<T> {
    fn new(matrix: &HodlrMatrix<T>) -> Result<Self, SingularError> {
        let tree = matrix.tree().clone();
        let num_nodes = tree.num_nodes();

        // Leaf LU factorizations, one parallel task per leaf.
        let leaf_ids: Vec<NodeId> = tree.leaves().collect();
        let leaf_lu: Result<Vec<LuFactor<T>>, SingularError> = leaf_ids
            .par_iter()
            .enumerate()
            .map(|(leaf_idx, _)| LuFactor::new(matrix.diag_block(leaf_idx)))
            .collect();
        let leaf_lu = leaf_lu?;

        // Copy the per-node bases out of the flattened storage.
        let mut node_v: Vec<Option<DenseMatrix<T>>> = vec![None; num_nodes + 1];
        let mut node_u: Vec<Option<DenseMatrix<T>>> = vec![None; num_nodes + 1];
        for level in 1..=tree.levels() {
            for node in tree.level_nodes(level) {
                node_u[node] = Some(matrix.u_block(node).to_owned());
                node_v[node] = Some(matrix.v_block(node).to_owned());
            }
        }

        let mut fact = HodlrlibFactorization {
            tree,
            leaf_lu,
            node_y: vec![None; num_nodes + 1],
            node_v,
            node_k: vec![None; num_nodes + 1],
        };
        let levels = fact.tree.levels();
        if levels == 0 {
            // A single dense block: nothing beyond the leaf factorization.
            return Ok(fact);
        }

        // Leaf level first: Y_leaf = D_leaf^{-1} U_leaf, one parallel task
        // per leaf (HODLRlib's leaf-level parallel for).
        let leaf_ys: Vec<(NodeId, DenseMatrix<T>)> = leaf_ids
            .par_iter()
            .enumerate()
            .map(|(leaf_idx, &leaf)| {
                let u = node_u[leaf].as_ref().expect("leaf basis");
                (leaf, fact.leaf_lu[leaf_idx].solve_matrix(u))
            })
            .collect();
        for (leaf, y) in leaf_ys {
            fact.node_y[leaf] = Some(y);
        }

        // Bottom-up sweep over the internal levels: once the subtrees of a
        // level are factorized, every node of the level builds its K and
        // (unless it is the root) its Y, independently of its peers.
        for level in (0..levels).rev() {
            let nodes: Vec<NodeId> = fact.tree.level_nodes(level).collect();
            let k_results: Result<Vec<(NodeId, LuFactor<T>)>, SingularError> = nodes
                .par_iter()
                .map(|&gamma| {
                    let k = fact.build_coupling(gamma);
                    LuFactor::from_matrix(k).map(|lu| (gamma, lu))
                })
                .collect();
            for (gamma, lu) in k_results? {
                fact.node_k[gamma] = Some(lu);
            }

            if level >= 1 {
                let y_results: Vec<(NodeId, DenseMatrix<T>)> = nodes
                    .par_iter()
                    .map(|&node| {
                        let u = node_u[node].as_ref().expect("non-root node has a basis");
                        (node, fact.apply_inverse(node, u))
                    })
                    .collect();
                for (node, y) in y_results {
                    fact.node_y[node] = Some(y);
                }
            }
        }
        Ok(fact)
    }

    /// `K_gamma = [[V_a^* Y_a, I], [I, V_b^* Y_b]]` from the children's
    /// already-computed `Y` bases.
    fn build_coupling(&self, gamma: NodeId) -> DenseMatrix<T> {
        let (alpha, beta) = self.tree.children(gamma).expect("internal node");
        let y_a = self.node_y[alpha]
            .as_ref()
            .expect("child Y computed")
            .clone();
        let y_b = self.node_y[beta]
            .as_ref()
            .expect("child Y computed")
            .clone();
        let v_a = self.node_v[alpha].as_ref().expect("basis");
        let v_b = self.node_v[beta].as_ref().expect("basis");
        let w = y_a.cols();
        let mut k = DenseMatrix::<T>::zeros(2 * w, 2 * w);
        {
            let mut tl = k.block_mut(0, 0, w, w);
            gemm(
                T::one(),
                v_a.as_ref(),
                Op::ConjTrans,
                y_a.as_ref(),
                Op::None,
                T::zero(),
                tl.reborrow(),
            );
        }
        {
            let mut br = k.block_mut(w, w, w, w);
            gemm(
                T::one(),
                v_b.as_ref(),
                Op::ConjTrans,
                y_b.as_ref(),
                Op::None,
                T::zero(),
                br.reborrow(),
            );
        }
        for i in 0..w {
            k[(i, w + i)] = T::one();
            k[(w + i, i)] = T::one();
        }
        k
    }

    /// Apply `A_node^{-1}` to a dense right-hand side using the recursive
    /// factorization of the subtree under `node` (Eq. 8), forking the two
    /// child solves with `rayon::join`.
    fn apply_inverse(&self, node: NodeId, rhs: &DenseMatrix<T>) -> DenseMatrix<T> {
        if self.tree.is_leaf(node) {
            let leaf_idx = node - (1usize << self.tree.levels());
            return self.leaf_lu[leaf_idx].solve_matrix(rhs);
        }
        let (alpha, beta) = self.tree.children(node).expect("internal node");
        let ra = self.tree.range(alpha);
        let na = ra.len();
        let nrhs = rhs.cols();
        let rhs_a = rhs.sub_matrix(0, 0, na, nrhs);
        let rhs_b = rhs.sub_matrix(na, 0, rhs.rows() - na, nrhs);

        let (z_a, z_b) = rayon::join(
            || self.apply_inverse(alpha, &rhs_a),
            || self.apply_inverse(beta, &rhs_b),
        );

        let y_a = self.node_y[alpha]
            .as_ref()
            .expect("child Y computed")
            .clone();
        let y_b = self.node_y[beta]
            .as_ref()
            .expect("child Y computed")
            .clone();
        let v_a = self.node_v[alpha].as_ref().expect("basis");
        let v_b = self.node_v[beta].as_ref().expect("basis");
        let w = y_a.cols();
        if w == 0 {
            return z_a.vcat(&z_b);
        }

        // w = K^{-1} [V_a^* z_a; V_b^* z_b].
        let mut small_rhs = DenseMatrix::<T>::zeros(2 * w, nrhs);
        {
            let mut top = small_rhs.block_mut(0, 0, w, nrhs);
            gemm(
                T::one(),
                v_a.as_ref(),
                Op::ConjTrans,
                z_a.as_ref(),
                Op::None,
                T::zero(),
                top.reborrow(),
            );
        }
        {
            let mut bottom = small_rhs.block_mut(w, 0, w, nrhs);
            gemm(
                T::one(),
                v_b.as_ref(),
                Op::ConjTrans,
                z_b.as_ref(),
                Op::None,
                T::zero(),
                bottom.reborrow(),
            );
        }
        let k_lu = self.node_k[node]
            .as_ref()
            .expect("internal node has K factors");
        k_lu.solve_in_place(small_rhs.as_mut());

        // x = z - Y w.
        let w_a = small_rhs.sub_matrix(0, 0, w, nrhs);
        let w_b = small_rhs.sub_matrix(w, 0, w, nrhs);
        let mut x_a = z_a;
        let mut corr = DenseMatrix::<T>::zeros(x_a.rows(), nrhs);
        gemm(
            T::one(),
            y_a.as_ref(),
            Op::None,
            w_a.as_ref(),
            Op::None,
            T::zero(),
            corr.as_mut(),
        );
        x_a.axpy(-T::one(), &corr);
        let mut x_b = z_b;
        let mut corr_b = DenseMatrix::<T>::zeros(x_b.rows(), nrhs);
        gemm(
            T::one(),
            y_b.as_ref(),
            Op::None,
            w_b.as_ref(),
            Op::None,
            T::zero(),
            corr_b.as_mut(),
        );
        x_b.axpy(-T::one(), &corr_b);
        x_a.vcat(&x_b)
    }

    /// Solve `A x = b` using the stored recursive factorization.
    pub fn solve(&self, b: &[T]) -> Vec<T> {
        let b_mat = DenseMatrix::from_col_major(b.len(), 1, b.to_vec());
        self.solve_matrix(&b_mat).into_data()
    }

    /// Solve for several right-hand sides.
    pub fn solve_matrix(&self, b: &DenseMatrix<T>) -> DenseMatrix<T> {
        assert_eq!(
            b.rows(),
            self.tree.n(),
            "right-hand side has the wrong row count"
        );
        self.apply_inverse(self.tree.root(), b)
    }

    /// Stored entries: leaf LU factors, per-node Y and V bases, K factors.
    pub fn storage_entries(&self) -> usize {
        let leaves: usize = self.leaf_lu.iter().map(|f| f.order() * f.order()).sum();
        let ys: usize = self
            .node_y
            .iter()
            .flatten()
            .map(|y| y.rows() * y.cols())
            .sum();
        let vs: usize = self
            .node_v
            .iter()
            .flatten()
            .map(|v| v.rows() * v.cols())
            .sum();
        let ks: usize = self
            .node_k
            .iter()
            .flatten()
            .map(|k| k.order() * k.order())
            .sum();
        leaves + ys + vs + ks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hodlr_core::matrix::random_hodlr;
    use hodlr_la::lu::solve_dense;
    use hodlr_la::{Complex64, RealScalar};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn check<T: Scalar>(n: usize, levels: usize, rank: usize, seed: u64, tol: f64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let m: HodlrMatrix<T> = random_hodlr(&mut rng, n, levels, rank);
        let f = HodlrlibStyleSolver::factorize(&m).expect("invertible");
        let b: Vec<T> = hodlr_la::random::random_vector(&mut rng, n);
        let x = f.solve(&b);
        let x_ref = solve_dense(&m.to_dense(), &b).unwrap();
        for (a, r) in x.iter().zip(x_ref.iter()) {
            assert!((*a - *r).abs().to_f64() < tol, "{a:?} vs {r:?}");
        }
    }

    #[test]
    fn matches_dense_solve() {
        check::<f64>(64, 3, 3, 21, 1e-9);
        check::<f64>(96, 2, 4, 22, 1e-9);
        check::<Complex64>(48, 2, 2, 23, 1e-9);
    }

    #[test]
    fn agrees_with_the_flattened_serial_factorization() {
        let mut rng = StdRng::seed_from_u64(24);
        let m: HodlrMatrix<f64> = random_hodlr(&mut rng, 80, 3, 2);
        let b: Vec<f64> = hodlr_la::random::random_vector(&mut rng, 80);
        let x_lib = HodlrlibStyleSolver::factorize(&m).unwrap().solve(&b);
        let x_flat = m.factorize_serial().unwrap().solve(&b);
        for (a, r) in x_lib.iter().zip(x_flat.iter()) {
            assert!((a - r).abs() < 1e-10);
        }
    }

    #[test]
    fn multiple_right_hand_sides() {
        let mut rng = StdRng::seed_from_u64(25);
        let m: HodlrMatrix<f64> = random_hodlr(&mut rng, 64, 2, 3);
        let f = HodlrlibStyleSolver::factorize(&m).unwrap();
        let b = hodlr_la::random::random_matrix(&mut rng, 64, 4);
        let x = f.solve_matrix(&b);
        let residual = m.matmat(&x).sub(&b).norm_max();
        assert!(residual < 1e-9);
    }

    #[test]
    fn storage_is_comparable_to_the_flattened_format() {
        let mut rng = StdRng::seed_from_u64(26);
        let m: HodlrMatrix<f64> = random_hodlr(&mut rng, 256, 4, 3);
        let f = HodlrlibStyleSolver::factorize(&m).unwrap();
        let ratio = f.storage_entries() as f64 / m.storage_entries() as f64;
        assert!(ratio > 0.5 && ratio < 2.0, "ratio {ratio}");
    }

    #[test]
    fn singular_leaf_is_reported() {
        let mut rng = StdRng::seed_from_u64(27);
        let m: HodlrMatrix<f64> = random_hodlr(&mut rng, 16, 1, 1);
        let diag = vec![DenseMatrix::zeros(8, 8), m.diag_block(1).clone()];
        let singular = HodlrMatrix::from_parts(
            m.tree().clone(),
            m.layout().clone(),
            (0..=m.tree().num_nodes()).map(|_| 1).collect(),
            m.ubig().clone(),
            m.vbig().clone(),
            diag,
        )
        .unwrap();
        assert!(HodlrlibStyleSolver::factorize(&singular).is_err());
    }
}
