//! The dense LU baseline.

use hodlr_la::lu::SingularError;
use hodlr_la::{DenseMatrix, LuFactor, Scalar};

/// A plain dense LU direct solver: `O(N^2)` storage and `O(N^3)` work.
///
/// It exists so the benchmark harnesses can show where the HODLR solvers
/// overtake the classical approach (and so small problems have an exact
/// reference).
pub struct DenseLuSolver<T: Scalar> {
    lu: LuFactor<T>,
    n: usize,
}

impl<T: Scalar> DenseLuSolver<T> {
    /// Factorize a dense matrix.
    ///
    /// # Errors
    /// Returns an error if the matrix is numerically singular.
    pub fn new(a: &DenseMatrix<T>) -> Result<Self, SingularError> {
        assert_eq!(a.rows(), a.cols(), "dense LU needs a square matrix");
        Ok(DenseLuSolver {
            lu: LuFactor::new(a)?,
            n: a.rows(),
        })
    }

    /// Problem size `N`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Solve for one right-hand side.
    pub fn solve(&self, b: &[T]) -> Vec<T> {
        self.lu.solve_vec(b)
    }

    /// Solve for several right-hand sides.
    pub fn solve_matrix(&self, b: &DenseMatrix<T>) -> DenseMatrix<T> {
        self.lu.solve_matrix(b)
    }

    /// Storage of the factorization in scalar entries (`N^2`).
    pub fn storage_entries(&self) -> usize {
        self.n * self.n
    }

    /// The `O(N^3)` operation count of the factorization, for the Flop/s
    /// figures.
    pub fn factorization_flops(&self) -> u64 {
        2 * (self.n as u64).pow(3) / 3
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hodlr_la::random::{random_diag_dominant, random_vector};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn solves_a_random_system() {
        let mut rng = StdRng::seed_from_u64(1);
        let a: DenseMatrix<f64> = random_diag_dominant(&mut rng, 30);
        let solver = DenseLuSolver::new(&a).unwrap();
        let b: Vec<f64> = random_vector(&mut rng, 30);
        let x = solver.solve(&b);
        let ax = a.matvec(&x);
        for (l, r) in ax.iter().zip(b.iter()) {
            assert!((l - r).abs() < 1e-10);
        }
        assert_eq!(solver.n(), 30);
        assert_eq!(solver.storage_entries(), 900);
        assert_eq!(solver.factorization_flops(), 2 * 27000 / 3);
    }

    #[test]
    fn reports_singularity() {
        let a = DenseMatrix::<f64>::zeros(4, 4);
        assert!(DenseLuSolver::new(&a).is_err());
    }
}
