//! The Gaussian-process log-marginal likelihood on a HODLR covariance.
//!
//! For observations `y ~ N(0, K)` with `K = K_f + sigma_n^2 I`, the
//! log-marginal likelihood is
//!
//! ```text
//! log p(y) = -1/2 y^T K^{-1} y - 1/2 log|K| - n/2 log(2 pi)
//! ```
//!
//! — exactly the `solve` + `log_det` pair the HODLR factorization provides
//! in `O(N log^2 N)`: the quadratic form comes from one
//! [`Solve::solve`](hodlr::Solve::solve()) and the log-determinant from the
//! product form of the paper's Section III-E (a), on either the serial or
//! the batched backend (the two agree bitwise).

use crate::kernels::StationaryKernel;
use crate::source::covariance_source;
use hodlr::{Backend, Factorization, Factorize, Hodlr, Solve, Symmetry};
use hodlr_la::HodlrError;
use hodlr_tree::{ClusterTree, PointCloud};

/// Configuration of the HODLR approximation behind a [`GpModel`].
#[derive(Clone, Debug)]
pub struct GpConfig {
    /// Factorization backend (default [`Backend::Serial`]).
    pub backend: Backend,
    /// Relative compression tolerance of the covariance approximation
    /// (default `1e-10`; the likelihood inherits this error level).
    pub tolerance: f64,
    /// Leaf size of the cluster tree (default 64, the paper's choice).
    pub leaf_size: usize,
    /// Explicit cluster tree (e.g. from
    /// [`clustered_points_1d`](crate::clustered_points_1d)); overrides
    /// `leaf_size` when set.
    pub tree: Option<ClusterTree>,
    /// Declared symmetry of the covariance (default [`Symmetry::General`],
    /// the LU path).  A GP covariance `K + sigma_n^2 I` is symmetric
    /// positive definite by construction, so
    /// [`Symmetry::PositiveDefinite`] is always sound here and routes the
    /// factorization through the Cholesky fast path: half the low-rank
    /// storage, roughly half the factorization flops, and a typed
    /// [`HodlrError::NotPositiveDefinite`] if compression error ever
    /// pushes a leaf indefinite.
    pub symmetry: Symmetry,
}

impl Default for GpConfig {
    fn default() -> Self {
        GpConfig {
            backend: Backend::Serial,
            tolerance: 1e-10,
            leaf_size: 64,
            tree: None,
            symmetry: Symmetry::General,
        }
    }
}

impl GpConfig {
    /// A configuration on the given backend with defaults otherwise.
    pub fn with_backend(backend: Backend) -> Self {
        GpConfig {
            backend,
            ..GpConfig::default()
        }
    }

    /// This configuration with the Cholesky/LDL^T fast path enabled
    /// ([`Symmetry::PositiveDefinite`]).
    pub fn positive_definite(mut self) -> Self {
        self.symmetry = Symmetry::PositiveDefinite;
        self
    }
}

/// The three terms of the log-marginal likelihood, kept separate so
/// hyperparameter drivers and benches can report them individually.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct LogLikelihood {
    /// `log p(y)` itself.
    pub value: f64,
    /// The data-fit term `y^T K^{-1} y`.
    pub quadratic_form: f64,
    /// The complexity penalty `log|K|` (`log_abs`; the sign is checked to
    /// be positive).
    pub log_det: f64,
    /// Number of observations `n`.
    pub n: usize,
}

impl LogLikelihood {
    /// Assemble `log p(y) = -½ q - ½ log|K| - n/2·log 2π` from its terms
    /// — the one place the density formula lives (the dense Cholesky
    /// oracle and the HODLR path both call this).
    pub fn from_terms(quadratic_form: f64, log_det: f64, n: usize) -> Self {
        LogLikelihood {
            value: -0.5 * quadratic_form
                - 0.5 * log_det
                - 0.5 * n as f64 * (2.0 * std::f64::consts::PI).ln(),
            quadratic_form,
            log_det,
            n,
        }
    }
}

/// A zero-mean GP prior over a point set: the HODLR approximation of its
/// covariance matrix plus the machinery to evaluate the log-marginal
/// likelihood of observation vectors on either backend.
pub struct GpModel {
    hodlr: Hodlr<f64>,
    kernel_name: &'static str,
    noise: f64,
}

impl GpModel {
    /// Compress `k(|x_i - x_j|) + noise * delta_ij` over `points` into a
    /// HODLR approximation per `config`.
    ///
    /// # Errors
    /// [`HodlrError::InvalidConfig`] for a negative or non-finite noise
    /// nugget; builder errors propagate ([`HodlrError::InvalidConfig`]
    /// for bad tolerances, [`HodlrError::DimensionMismatch`] for a tree
    /// that does not match the cloud, ...).
    pub fn build<K: StationaryKernel + ?Sized>(
        kernel: &K,
        points: &PointCloud,
        noise: f64,
        config: &GpConfig,
    ) -> Result<Self, HodlrError> {
        // Domain errors surface here as typed InvalidConfig, not as a late
        // NotPositiveDefinite from the factorization.
        kernel.validate()?;
        // Typed-error variant of covariance_source's panic contract.
        if noise < 0.0 || !noise.is_finite() {
            return Err(HodlrError::config(format!(
                "noise variance must be non-negative and finite, got {noise}"
            )));
        }
        let source = covariance_source(kernel, points, noise);
        let builder = Hodlr::builder()
            .source(&source)
            .tolerance(config.tolerance)
            .backend(config.backend)
            .symmetry(config.symmetry);
        let builder = match &config.tree {
            Some(tree) => builder.tree(tree.clone()),
            None => builder.leaf_size(config.leaf_size),
        };
        Ok(GpModel {
            hodlr: builder.build()?,
            kernel_name: kernel.name(),
            noise,
        })
    }

    /// The HODLR approximation of the covariance matrix.
    pub fn hodlr(&self) -> &Hodlr<f64> {
        &self.hodlr
    }

    /// Number of observations `n`.
    pub fn n(&self) -> usize {
        self.hodlr.n()
    }

    /// The kernel family this model was built from.
    pub fn kernel_name(&self) -> &'static str {
        self.kernel_name
    }

    /// The noise nugget `sigma_n^2`.
    pub fn noise(&self) -> f64 {
        self.noise
    }

    /// A model over the same kernel and point set with a different noise
    /// nugget, **reusing this model's compression**: only the main
    /// diagonal changes between nuggets (`K + a I -> K + b I`), and the
    /// diagonal lives entirely inside the dense leaf blocks, so the
    /// off-diagonal low-rank factors are carried over instead of being
    /// recompressed.  This is what makes a noise grid scan cost one
    /// compression per kernel candidate rather than one per grid point
    /// (the shifted diagonal differs from a from-scratch build only by
    /// one rounding of the nugget addition).
    ///
    /// # Errors
    /// [`HodlrError::InvalidConfig`] for a negative or non-finite nugget;
    /// builder errors propagate.
    pub fn with_noise(&self, noise: f64) -> Result<GpModel, HodlrError> {
        if noise < 0.0 || !noise.is_finite() {
            return Err(HodlrError::config(format!(
                "noise variance must be non-negative and finite, got {noise}"
            )));
        }
        let mut matrix = self
            .hodlr
            .matrix()
            .expect("GP models store the covariance in working precision")
            .clone();
        matrix.shift_diagonal(noise - self.noise);
        let hodlr = Hodlr::builder()
            .matrix(matrix)
            .backend(self.hodlr.backend())
            .precision(self.hodlr.precision())
            .symmetry(self.hodlr.symmetry())
            .build()?;
        Ok(GpModel {
            hodlr,
            kernel_name: self.kernel_name,
            noise,
        })
    }

    /// A model over the same compressed covariance on a different
    /// backend.  Compression is backend-independent, so the matrix is
    /// carried over; only the factorization path changes.
    ///
    /// # Errors
    /// Builder errors propagate.
    pub fn with_backend(&self, backend: Backend) -> Result<GpModel, HodlrError> {
        let hodlr = Hodlr::builder()
            .matrix(
                self.hodlr
                    .matrix()
                    .expect("GP models store the covariance in working precision")
                    .clone(),
            )
            .backend(backend)
            .precision(self.hodlr.precision())
            .symmetry(self.hodlr.symmetry())
            .build()?;
        Ok(GpModel {
            hodlr,
            kernel_name: self.kernel_name,
            noise: self.noise,
        })
    }

    /// Factorize the covariance on the configured backend.
    ///
    /// # Errors
    /// Propagates [`HodlrError::SingularPivot`] from the factorization.
    pub fn factorize(&self) -> Result<Factorization<'_, f64>, HodlrError> {
        self.hodlr.factorize()
    }

    /// Factorize and evaluate `log p(y)` in one call.  When scoring many
    /// observation vectors against one kernel, factorize once and call
    /// [`GpModel::log_likelihood_with`] instead.
    ///
    /// # Errors
    /// As [`GpModel::factorize`] and [`GpModel::log_likelihood_with`].
    pub fn log_likelihood(&self, y: &[f64]) -> Result<LogLikelihood, HodlrError> {
        let factorization = self.factorize()?;
        self.log_likelihood_with(&factorization, y)
    }

    /// Evaluate `log p(y)` against an existing factorization: one solve
    /// for the quadratic form, one product-form `log_det`.
    ///
    /// When scoring *many* observation vectors against one factorization,
    /// compute the determinant term once with [`GpModel::log_det_term`]
    /// and call [`GpModel::log_likelihood_terms`] per vector instead —
    /// `log|K|` depends only on the factorization, not on `y`.
    ///
    /// # Errors
    /// [`HodlrError::DimensionMismatch`] when `y` has the wrong length and
    /// [`HodlrError::NotPositiveDefinite`] when the factored covariance
    /// has a non-positive determinant sign (the kernel + nugget pair does
    /// not form a valid Gaussian density; a larger nugget or a smaller
    /// compression tolerance is the usual fix).
    pub fn log_likelihood_with(
        &self,
        factorization: &Factorization<'_, f64>,
        y: &[f64],
    ) -> Result<LogLikelihood, HodlrError> {
        let log_det = self.log_det_term(factorization)?;
        self.log_likelihood_terms(factorization, log_det, y)
    }

    /// The complexity-penalty term `log|K|` of the factorized covariance.
    /// Compute it once per factorization when scoring many observation
    /// vectors.
    ///
    /// Positive definiteness is screened through the determinant sign —
    /// which catches an odd number of negative eigenvalues; an even
    /// number evades it, so [`GpModel::log_likelihood_terms`]
    /// additionally rejects a negative data-fit term (impossible for SPD
    /// `K`).  A covariance that fails either check needs a larger nugget
    /// or a tighter compression tolerance.
    ///
    /// # Errors
    /// [`HodlrError::NotPositiveDefinite`] as on
    /// [`GpModel::log_likelihood_with`].
    pub fn log_det_term(&self, factorization: &Factorization<'_, f64>) -> Result<f64, HodlrError> {
        let (log_abs, sign) = factorization.log_det()?;
        if !log_abs.is_finite() || sign.is_nan() || sign <= 0.0 {
            return Err(HodlrError::NotPositiveDefinite {
                context: format!(
                    "GP covariance matrix ({} kernel, noise {:.3e})",
                    self.kernel_name, self.noise
                ),
            });
        }
        Ok(log_abs)
    }

    /// Score one observation vector against a precomputed `log|K|` (from
    /// [`GpModel::log_det_term`]): one solve, no repeated determinant
    /// work.
    ///
    /// # Errors
    /// [`HodlrError::DimensionMismatch`] when `y` has the wrong length,
    /// and [`HodlrError::NotPositiveDefinite`] when the data-fit term
    /// `y^T K^{-1} y` comes out negative or non-finite — an indefinite
    /// covariance (with an even number of negative eigenvalues) that the
    /// determinant-sign screen of [`GpModel::log_det_term`] cannot see.
    pub fn log_likelihood_terms(
        &self,
        factorization: &Factorization<'_, f64>,
        log_det: f64,
        y: &[f64],
    ) -> Result<LogLikelihood, HodlrError> {
        let n = self.n();
        HodlrError::check_dims("observation vector", n, y.len())?;
        let alpha = factorization.solve(y)?;
        let quadratic_form: f64 = y.iter().zip(&alpha).map(|(a, b)| a * b).sum();
        if quadratic_form < 0.0 || !quadratic_form.is_finite() {
            return Err(HodlrError::NotPositiveDefinite {
                context: format!(
                    "GP covariance matrix ({} kernel, noise {:.3e}): \
                     y^T K^-1 y = {quadratic_form:e}",
                    self.kernel_name, self.noise
                ),
            });
        }
        Ok(LogLikelihood::from_terms(quadratic_form, log_det, n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{Matern, SquaredExponential};
    use crate::oracle::dense_log_likelihood;
    use crate::source::regular_grid_1d;

    fn sample_y(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (i as f64 * 0.13).sin() + 0.2 * (i as f64 * 0.41).cos())
            .collect()
    }

    #[test]
    fn with_noise_reuses_the_compression_and_matches_a_fresh_build() {
        let points = regular_grid_1d(128, 0.0, 2.0);
        let kernel = SquaredExponential {
            variance: 1.0,
            length_scale: 0.4,
        };
        let y = sample_y(128);
        let base = GpModel::build(&kernel, &points, 1e-3, &GpConfig::default()).unwrap();
        let shifted = base.with_noise(1e-1).unwrap();
        assert_eq!(shifted.noise(), 1e-1);
        let fresh = GpModel::build(&kernel, &points, 1e-1, &GpConfig::default()).unwrap();
        // Off-diagonal factors are carried over; only the nugget addition
        // rounds differently, so the likelihoods agree to rounding.
        let ll_shifted = shifted.log_likelihood(&y).unwrap();
        let ll_fresh = fresh.log_likelihood(&y).unwrap();
        assert!(
            (ll_shifted.value - ll_fresh.value).abs() < 1e-9 * ll_fresh.value.abs().max(1.0),
            "{} vs {}",
            ll_shifted.value,
            ll_fresh.value
        );
        assert!((ll_shifted.log_det - ll_fresh.log_det).abs() < 1e-9);
        assert!(base.with_noise(-1.0).is_err());
        assert!(base.with_noise(f64::NAN).is_err());
    }

    #[test]
    fn hodlr_likelihood_matches_the_dense_oracle_on_both_backends() {
        let n = 256;
        let points = regular_grid_1d(n, 0.0, 4.0);
        let kernel = SquaredExponential {
            variance: 1.3,
            length_scale: 0.5,
        };
        let y = sample_y(n);
        let dense = covariance_source(&kernel, &points, 0.1);
        let oracle =
            dense_log_likelihood(&hodlr_compress::MatrixEntrySource::to_dense(&dense), &y).unwrap();
        for backend in [Backend::Serial, Backend::Batched] {
            let mut config = GpConfig::with_backend(backend);
            config.tolerance = 1e-12;
            config.leaf_size = 32;
            let model = GpModel::build(&kernel, &points, 0.1, &config).unwrap();
            let ll = model.log_likelihood(&y).unwrap();
            assert!(
                (ll.value - oracle.value).abs() < 1e-8,
                "{backend:?}: {} vs {}",
                ll.value,
                oracle.value
            );
            assert!((ll.log_det - oracle.log_det).abs() < 1e-8);
            assert!((ll.quadratic_form - oracle.quadratic_form).abs() < 1e-8);
        }
    }

    #[test]
    fn serial_and_batched_likelihoods_agree_to_machine_precision() {
        let n = 200;
        let points = regular_grid_1d(n, 0.0, 2.0);
        let kernel = Matern::three_halves(0.8, 0.3);
        let y = sample_y(n);
        let serial = GpModel::build(&kernel, &points, 0.05, &GpConfig::default())
            .unwrap()
            .log_likelihood(&y)
            .unwrap();
        let batched = GpModel::build(
            &kernel,
            &points,
            0.05,
            &GpConfig::with_backend(Backend::Batched),
        )
        .unwrap()
        .log_likelihood(&y)
        .unwrap();
        // log_det is bitwise identical across backends; the quadratic form
        // goes through the respective solve sweeps and matches to rounding.
        assert_eq!(serial.log_det.to_bits(), batched.log_det.to_bits());
        assert!((serial.value - batched.value).abs() < 1e-9);
    }

    #[test]
    fn spd_fast_path_matches_the_lu_path_on_both_backends() {
        let n = 192;
        let points = regular_grid_1d(n, 0.0, 3.0);
        let kernel = SquaredExponential {
            variance: 1.1,
            length_scale: 0.4,
        };
        let y = sample_y(n);
        for backend in [Backend::Serial, Backend::Batched] {
            let lu_config = GpConfig::with_backend(backend);
            let spd_config = GpConfig::with_backend(backend).positive_definite();
            let lu = GpModel::build(&kernel, &points, 0.1, &lu_config).unwrap();
            let spd = GpModel::build(&kernel, &points, 0.1, &spd_config).unwrap();
            assert_eq!(spd.hodlr().symmetry(), Symmetry::PositiveDefinite);
            // Sibling pairs share one low-rank factor on the SPD path.
            assert!(spd.hodlr().matrix().unwrap().shares_bases());
            let ll_lu = lu.log_likelihood(&y).unwrap();
            let ll_spd = spd.log_likelihood(&y).unwrap();
            assert!(
                (ll_lu.value - ll_spd.value).abs() < 1e-8 * ll_lu.value.abs().max(1.0),
                "{backend:?}: {} vs {}",
                ll_lu.value,
                ll_spd.value
            );
            assert!((ll_lu.log_det - ll_spd.log_det).abs() < 1e-8);
        }
        // with_noise keeps the declared symmetry (and the shared bases).
        let spd = GpModel::build(
            &kernel,
            &points,
            0.1,
            &GpConfig::default().positive_definite(),
        )
        .unwrap();
        let shifted = spd.with_noise(0.2).unwrap();
        assert_eq!(shifted.hodlr().symmetry(), Symmetry::PositiveDefinite);
        assert!(shifted.log_likelihood(&y).is_ok());
    }

    #[test]
    fn wrong_length_observation_vector_is_named() {
        let points = regular_grid_1d(64, 0.0, 1.0);
        let kernel = SquaredExponential {
            variance: 1.0,
            length_scale: 0.2,
        };
        let model = GpModel::build(&kernel, &points, 0.1, &GpConfig::default()).unwrap();
        let err = model.log_likelihood(&vec![0.0; 63]).unwrap_err();
        assert_eq!(err, HodlrError::dims("observation vector", 64, 63));
    }
}
