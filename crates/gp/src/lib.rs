//! # hodlr-gp — Gaussian-process regression on HODLR covariance matrices
//!
//! The flagship *statistical* application of the HODLR factorization: the
//! GP log-marginal likelihood
//!
//! ```text
//! log p(y) = -1/2 y^T K^{-1} y - 1/2 log|K| - n/2 log(2 pi)
//! ```
//!
//! needs a `solve` **and** a `log|K|` against the same covariance matrix
//! `K = K_f + sigma_n^2 I` — the exact pair the workspace's factorization
//! backends provide in `O(N log^2 N)`: the quadratic form through
//! [`Solve::solve`](hodlr::Solve::solve) and the log-determinant through
//! the product form of the paper's Section III-E (a)
//! ([`Solve::log_det`](hodlr::Solve::log_det)), on either the serial or
//! the batched backend (whose results agree bitwise).
//!
//! * [`kernels`] — the stationary families: [`SquaredExponential`],
//!   [`Matern`] (`nu = 1/2, 3/2, 5/2`), [`RationalQuadratic`]; each also
//!   implements `hodlr_kernels::ScalarKernel`, so the existing point-pair
//!   source machinery accepts them unchanged.
//! * [`source`] — [`CorrelationSource`] / [`covariance_source`] exposing
//!   `K + sigma_n^2 I` through the workspace's `MatrixEntrySource` trait
//!   (the nugget rides on `hodlr_compress::ShiftedSource`), plus 1-D grid
//!   and clustered point-set helpers.
//! * [`likelihood`] — [`GpModel`]: build the HODLR covariance with a
//!   fluent [`GpConfig`], factorize on either [`Backend`](hodlr::Backend),
//!   and evaluate [`LogLikelihood`]s.
//! * [`oracle`] — dense Cholesky reference (`O(n^3)`), the validation
//!   oracle of the tests and the `gp` bench family (routed through the
//!   same blocked `hodlr_la` kernel as the HODLR fast path).
//! * [`sampling`] — [`GpPosterior`]: predictive mean / variance and
//!   Matheron pathwise posterior draws, the payoff of factorizing
//!   `K = L L^T` on the SPD fast path
//!   ([`Symmetry::PositiveDefinite`](hodlr::Symmetry)).
//! * [`scan`] — [`GridScan`]: hyperparameter selection by likelihood
//!   maximisation over a `(length_scale, variance, noise)` grid.
//!
//! ```
//! use hodlr_gp::{GpConfig, GpModel, SquaredExponential, regular_grid_1d};
//!
//! let points = regular_grid_1d(256, 0.0, 4.0);
//! let kernel = SquaredExponential { variance: 1.0, length_scale: 0.5 };
//! let y: Vec<f64> = (0..256).map(|i| (i as f64 * 0.1).sin()).collect();
//! let model = GpModel::build(&kernel, &points, 1e-2, &GpConfig::default()).unwrap();
//! let ll = model.log_likelihood(&y).unwrap();
//! assert!(ll.value.is_finite() && ll.quadratic_form > 0.0);
//! ```

pub mod kernels;
pub mod likelihood;
pub mod oracle;
pub mod sampling;
pub mod scan;
pub mod source;
pub mod spectral;

pub use kernels::{
    Matern, MaternSmoothness, RationalQuadratic, SquaredExponential, StationaryKernel,
};
pub use likelihood::{GpConfig, GpModel, LogLikelihood};
pub use oracle::{dense_cholesky, dense_log_likelihood};
pub use sampling::GpPosterior;
pub use scan::{best_row, GridScan, KernelFamily, ScanRow};
pub use source::{
    clustered_points_1d, covariance_source, regular_grid_1d, spatial_points, CorrelationSource,
    CovarianceSource,
};
pub use spectral::SpectralCheck;
