//! Posterior sampling and predictive variance — the `K = L L^T` payoff.
//!
//! Once the covariance factors as a product of Cholesky pieces (the SPD
//! fast path, [`Symmetry::PositiveDefinite`](hodlr::Symmetry)), the GP
//! stops being a scoring machine and becomes a *generative* model:
//!
//! * **predictive mean / variance** at test points `X*`:
//!   `mu_* = K_*^T K^{-1} y` and
//!   `var_i = k(0) - k_i^T K^{-1} k_i` — one blocked solve against the
//!   cross-covariance columns;
//! * **posterior draws** by Matheron's rule (pathwise conditioning):
//!   sample `(f_X, f_*)` jointly from the prior through a dense Cholesky
//!   `C = L L^T` of the joint covariance (`L z` with `z ~ N(0, I)`), then
//!   correct with one HODLR solve per draw batch,
//!
//!   ```text
//!   f_* | y  =  f_*  +  K_*^T K^{-1} (y - f_X - eps),   eps ~ N(0, sigma_n^2 I)
//!   ```
//!
//!   so the `O((n+m)^3)` dense work is confined to the (small) joint prior
//!   factor while every conditioning solve runs through the
//!   `O(N log^2 N)` HODLR factorization.
//!
//! Both the dense joint factor and the HODLR path route through the *same*
//! [`hodlr_la`] Cholesky kernels, so a draw pipeline exercises the blocked
//! `potrf` at both scales.

use crate::kernels::StationaryKernel;
use crate::likelihood::{GpConfig, GpModel};
use hodlr::{Factorization, Solve};
use hodlr_la::random::gaussian_matrix;
use hodlr_la::{gemm, DenseMatrix, HodlrError, Op, SymmetricFactor, SymmetricPolicy};
use hodlr_tree::PointCloud;
use rand::Rng;

/// Euclidean distance between a point of one cloud and a point of another.
fn cross_distance(a: &PointCloud, i: usize, b: &PointCloud, j: usize) -> f64 {
    a.point(i)
        .iter()
        .zip(b.point(j))
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

/// Factor the (noise-free) joint prior covariance `C = L L^T`, escalating
/// a diagonal jitter when compression-free rounding leaves `C` numerically
/// semidefinite (smooth kernels on dense grids are famously close to
/// singular).  The jitter ladder is the standard GP-library treatment; the
/// final jitter is orders of magnitude below any practical noise nugget.
fn joint_prior_lower(
    mut c: DenseMatrix<f64>,
    signal_variance: f64,
) -> Result<DenseMatrix<f64>, HodlrError> {
    let n = c.rows();
    let mut jitter = 1e-12 * signal_variance.max(f64::MIN_POSITIVE);
    for attempt in 0..5 {
        if attempt > 0 {
            for i in 0..n {
                c[(i, i)] += jitter;
            }
            jitter *= 100.0;
        }
        match SymmetricFactor::new(&c, SymmetricPolicy::Strict) {
            Ok(f) => return Ok(f.lower_factor()),
            Err(e) if attempt == 4 => return Err(e.into_hodlr("joint prior covariance matrix")),
            Err(_) => {}
        }
    }
    unreachable!("jitter ladder returns on its last attempt")
}

/// A GP posterior over explicit test points: the HODLR-factorizable
/// training covariance plus the dense cross- and joint-prior pieces needed
/// for prediction and pathwise sampling.
///
/// Built once per `(kernel, train, test, noise)` tuple; factorize with
/// [`GpPosterior::factorize`] and reuse the factorization across
/// [`mean`](GpPosterior::mean), [`variance`](GpPosterior::variance) and
/// [`draws`](GpPosterior::draws).
pub struct GpPosterior {
    model: GpModel,
    /// Cross-covariance `K(X, X*)`, `n x m`.
    cross: DenseMatrix<f64>,
    /// Lower Cholesky factor of the joint prior covariance over
    /// `[X; X*]`, `(n + m) x (n + m)`.
    joint_lower: DenseMatrix<f64>,
    /// Signal variance `k(0)` (the prior predictive variance).
    signal_variance: f64,
    n: usize,
    m: usize,
}

impl GpPosterior {
    /// Assemble the posterior machinery for `kernel` over training points
    /// `train` (with noise nugget `noise`) and test points `test`.
    ///
    /// The training covariance `K = K_XX + noise * I` is compressed per
    /// `config` — pass a [`GpConfig`] with
    /// [`positive_definite`](GpConfig::positive_definite) to factorize it
    /// on the Cholesky fast path.  The `O((n+m)^2)` dense joint prior and
    /// its `O((n+m)^3)` Cholesky factor are formed here, once.
    ///
    /// # Errors
    /// [`HodlrError::InvalidConfig`] for mismatched point dimensions, bad
    /// kernel parameters or a bad nugget; [`HodlrError::NotPositiveDefinite`]
    /// when the joint prior stays indefinite through the jitter ladder;
    /// builder errors propagate.
    pub fn new<K: StationaryKernel + ?Sized>(
        kernel: &K,
        train: &PointCloud,
        test: &PointCloud,
        noise: f64,
        config: &GpConfig,
    ) -> Result<Self, HodlrError> {
        if train.dim() != test.dim() {
            return Err(HodlrError::config(format!(
                "training points have dimension {} but test points have dimension {}",
                train.dim(),
                test.dim()
            )));
        }
        if test.is_empty() {
            return Err(HodlrError::config(
                "posterior needs at least one test point".to_string(),
            ));
        }
        let model = GpModel::build(kernel, train, noise, config)?;
        let (n, m) = (train.len(), test.len());
        let cross =
            DenseMatrix::from_fn(n, m, |i, j| kernel.eval(cross_distance(train, i, test, j)));
        // Joint prior covariance over the concatenated cloud [X; X*].
        let joint = DenseMatrix::from_fn(n + m, n + m, |i, j| {
            let r = match (i < n, j < n) {
                (true, true) => train.distance(i, j),
                (true, false) => cross_distance(train, i, test, j - n),
                (false, true) => cross_distance(train, j, test, i - n),
                (false, false) => test.distance(i - n, j - n),
            };
            kernel.eval(r)
        });
        let signal_variance = kernel.variance();
        let joint_lower = joint_prior_lower(joint, signal_variance)?;
        Ok(GpPosterior {
            model,
            cross,
            joint_lower,
            signal_variance,
            n,
            m,
        })
    }

    /// The underlying [`GpModel`] of the training covariance.
    pub fn model(&self) -> &GpModel {
        &self.model
    }

    /// Number of training points `n`.
    pub fn train_len(&self) -> usize {
        self.n
    }

    /// Number of test points `m`.
    pub fn test_len(&self) -> usize {
        self.m
    }

    /// Factorize the training covariance on the configured backend (the
    /// Cholesky fast path when the config declared
    /// [`Symmetry::PositiveDefinite`](hodlr::Symmetry)).
    ///
    /// # Errors
    /// As [`GpModel::factorize`].
    pub fn factorize(&self) -> Result<Factorization<'_, f64>, HodlrError> {
        self.model.factorize()
    }

    /// Posterior mean `mu_* = K_*^T K^{-1} y` at the test points.
    ///
    /// # Errors
    /// [`HodlrError::DimensionMismatch`] when `y` has the wrong length.
    pub fn mean(
        &self,
        factorization: &Factorization<'_, f64>,
        y: &[f64],
    ) -> Result<Vec<f64>, HodlrError> {
        HodlrError::check_dims("observation vector", self.n, y.len())?;
        let alpha = factorization.solve(y)?;
        let mu = (0..self.m)
            .map(|j| {
                self.cross
                    .col(j)
                    .iter()
                    .zip(&alpha)
                    .map(|(k, a)| k * a)
                    .sum()
            })
            .collect();
        Ok(mu)
    }

    /// Predictive (latent-function) variance
    /// `var_i = k(0) - k_i^T K^{-1} k_i` at each test point: one blocked
    /// HODLR solve against all cross-covariance columns.  Add the noise
    /// nugget for the observation-space variance.  Values are clamped at
    /// zero (rounding can push a tiny variance negative).
    ///
    /// # Errors
    /// Solve errors propagate.
    pub fn variance(&self, factorization: &Factorization<'_, f64>) -> Result<Vec<f64>, HodlrError> {
        let w = factorization.solve_block(&self.cross)?;
        let var = (0..self.m)
            .map(|j| {
                let explained: f64 = self
                    .cross
                    .col(j)
                    .iter()
                    .zip(w.col(j))
                    .map(|(k, s)| k * s)
                    .sum();
                (self.signal_variance - explained).max(0.0)
            })
            .collect();
        Ok(var)
    }

    /// Draw `count` samples from the posterior `f_* | y` by Matheron's
    /// rule, returned as an `m x count` matrix (one draw per column).
    ///
    /// All draws share one blocked pipeline: a `(n + m) x count` block of
    /// `L z` prior paths (dense triangular factor), one `n x count` noise
    /// block, one blocked HODLR solve for the corrections, and one `gemm`
    /// to map corrections to the test points.  With a fixed-seed `rng` the
    /// output is deterministic.
    ///
    /// # Errors
    /// [`HodlrError::DimensionMismatch`] when `y` has the wrong length,
    /// [`HodlrError::InvalidConfig`] for `count == 0`; solve errors
    /// propagate.
    pub fn draws<R: Rng + ?Sized>(
        &self,
        factorization: &Factorization<'_, f64>,
        y: &[f64],
        rng: &mut R,
        count: usize,
    ) -> Result<DenseMatrix<f64>, HodlrError> {
        HodlrError::check_dims("observation vector", self.n, y.len())?;
        if count == 0 {
            return Err(HodlrError::config(
                "posterior draw count must be positive".to_string(),
            ));
        }
        let (n, m) = (self.n, self.m);
        // Joint prior paths P = L Z over [X; X*], one column per draw.
        let z = gaussian_matrix::<f64, _>(rng, n + m, count);
        let mut paths = DenseMatrix::<f64>::zeros(n + m, count);
        gemm(
            1.0,
            self.joint_lower.as_ref(),
            Op::None,
            z.as_ref(),
            Op::None,
            0.0,
            paths.as_mut(),
        );
        // Residuals y - f_X - eps, eps ~ N(0, sigma_n^2 I).
        let noise_std = self.model.noise().sqrt();
        let eps = gaussian_matrix::<f64, _>(rng, n, count);
        let mut residuals = DenseMatrix::<f64>::zeros(n, count);
        for c in 0..count {
            for i in 0..n {
                residuals[(i, c)] = y[i] - paths[(i, c)] - noise_std * eps[(i, c)];
            }
        }
        // Corrections A = K^{-1} residuals through the HODLR factorization.
        let corrections = factorization.solve_block(&residuals)?;
        // Draws = f_* + K_*^T A.
        let mut out = DenseMatrix::<f64>::zeros(m, count);
        for c in 0..count {
            for i in 0..m {
                out[(i, c)] = paths[(n + i, c)];
            }
        }
        gemm(
            1.0,
            self.cross.as_ref(),
            Op::Trans,
            corrections.as_ref(),
            Op::None,
            1.0,
            out.as_mut(),
        );
        Ok(out)
    }
}
