//! Stationary covariance kernels: the standard Gaussian-process families.
//!
//! Every kernel here is *stationary* — the covariance between two
//! observations depends only on the distance `r = |x - y|` — which is what
//! makes the covariance matrix over a spatially ordered point set HODLR:
//! well-separated clusters interact through a smooth, numerically low-rank
//! block.  Each kernel carries a signal variance `sigma_f^2` (its value at
//! `r = 0`); the noise nugget `sigma_n^2 I` is added by
//! [`covariance_source`](crate::covariance_source), not by the kernel.

use hodlr_kernels::ScalarKernel;
use hodlr_la::HodlrError;

/// A stationary covariance kernel `k(r)` over distances `r >= 0`.
///
/// Object safe, so hyperparameter drivers can hold `Box<dyn
/// StationaryKernel>` candidates built from a
/// [`KernelFamily`](crate::KernelFamily).
pub trait StationaryKernel: Sync {
    /// Covariance at distance `r` (includes the signal variance:
    /// `eval(0) == variance`).
    fn eval(&self, r: f64) -> f64;

    /// Kernel family name, for table labels.
    fn name(&self) -> &'static str;

    /// Signal variance `sigma_f^2 = eval(0)`.
    fn variance(&self) -> f64 {
        self.eval(0.0)
    }

    /// Check the hyperparameters for domain errors *before* any covariance
    /// matrix is assembled.
    ///
    /// Families whose parameters can silently produce a non-kernel (e.g.
    /// [`RationalQuadratic`] with `alpha <= 0`, which is no longer positive
    /// definite) override this; the default accepts.  Callers that build
    /// matrices ([`GpModel::build`](crate::GpModel::build),
    /// [`GridScan::run`](crate::GridScan::run)) validate up front so the
    /// failure is a typed [`HodlrError::InvalidConfig`] naming the
    /// parameter instead of a late `NotPositiveDefinite` from the
    /// factorization.
    ///
    /// # Errors
    /// [`HodlrError::InvalidConfig`] describing the offending parameter.
    fn validate(&self) -> Result<(), HodlrError> {
        Ok(())
    }
}

impl<K: StationaryKernel + ?Sized> StationaryKernel for &K {
    fn eval(&self, r: f64) -> f64 {
        (**self).eval(r)
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn validate(&self) -> Result<(), HodlrError> {
        (**self).validate()
    }
}

impl StationaryKernel for Box<dyn StationaryKernel> {
    fn eval(&self, r: f64) -> f64 {
        (**self).eval(r)
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn validate(&self) -> Result<(), HodlrError> {
        (**self).validate()
    }
}

fn dist(x: &[f64], y: &[f64]) -> f64 {
    x.iter()
        .zip(y)
        .map(|(a, b)| (a - b) * (a - b))
        .sum::<f64>()
        .sqrt()
}

/// The squared-exponential (Gaussian / RBF) kernel
/// `k(r) = sigma_f^2 exp(-r^2 / (2 l^2))`: infinitely smooth sample paths,
/// the default prior of most GP software.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct SquaredExponential {
    /// Signal variance `sigma_f^2`.
    pub variance: f64,
    /// Length scale `l`.
    pub length_scale: f64,
}

impl StationaryKernel for SquaredExponential {
    fn eval(&self, r: f64) -> f64 {
        let s = r / self.length_scale;
        self.variance * (-0.5 * s * s).exp()
    }

    fn name(&self) -> &'static str {
        "squared-exponential"
    }
}

/// The smoothness parameter `nu` of a [`Matern`] kernel, restricted to the
/// three half-integer values with closed forms.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum MaternSmoothness {
    /// `nu = 1/2`: the exponential kernel, continuous but not
    /// differentiable sample paths (an Ornstein–Uhlenbeck process in 1-D).
    Half,
    /// `nu = 3/2`: once-differentiable sample paths, the covariance model
    /// of the data-assimilation applications the paper cites.
    ThreeHalves,
    /// `nu = 5/2`: twice-differentiable sample paths.
    FiveHalves,
}

/// The Matérn kernel at a half-integer smoothness:
///
/// * `nu = 1/2`: `sigma_f^2 exp(-r/l)`
/// * `nu = 3/2`: `sigma_f^2 (1 + sqrt(3) r/l) exp(-sqrt(3) r/l)`
/// * `nu = 5/2`: `sigma_f^2 (1 + sqrt(5) r/l + 5 r^2/(3 l^2)) exp(-sqrt(5) r/l)`
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Matern {
    /// Smoothness `nu`.
    pub nu: MaternSmoothness,
    /// Signal variance `sigma_f^2`.
    pub variance: f64,
    /// Length scale `l`.
    pub length_scale: f64,
}

impl Matern {
    /// Matérn-1/2 (exponential).
    pub fn half(variance: f64, length_scale: f64) -> Self {
        Matern {
            nu: MaternSmoothness::Half,
            variance,
            length_scale,
        }
    }

    /// Matérn-3/2.
    pub fn three_halves(variance: f64, length_scale: f64) -> Self {
        Matern {
            nu: MaternSmoothness::ThreeHalves,
            variance,
            length_scale,
        }
    }

    /// Matérn-5/2.
    pub fn five_halves(variance: f64, length_scale: f64) -> Self {
        Matern {
            nu: MaternSmoothness::FiveHalves,
            variance,
            length_scale,
        }
    }
}

impl StationaryKernel for Matern {
    fn eval(&self, r: f64) -> f64 {
        let s = r / self.length_scale;
        self.variance
            * match self.nu {
                MaternSmoothness::Half => (-s).exp(),
                MaternSmoothness::ThreeHalves => {
                    let t = 3.0_f64.sqrt() * s;
                    (1.0 + t) * (-t).exp()
                }
                MaternSmoothness::FiveHalves => {
                    let t = 5.0_f64.sqrt() * s;
                    (1.0 + t + t * t / 3.0) * (-t).exp()
                }
            }
    }

    fn name(&self) -> &'static str {
        match self.nu {
            MaternSmoothness::Half => "matern-1/2",
            MaternSmoothness::ThreeHalves => "matern-3/2",
            MaternSmoothness::FiveHalves => "matern-5/2",
        }
    }
}

/// The rational-quadratic kernel
/// `k(r) = sigma_f^2 (1 + r^2 / (2 alpha l^2))^{-alpha}`, a scale mixture
/// of squared-exponential kernels (`alpha -> inf` recovers one).
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct RationalQuadratic {
    /// Signal variance `sigma_f^2`.
    pub variance: f64,
    /// Length scale `l`.
    pub length_scale: f64,
    /// Scale-mixture parameter `alpha > 0`.
    pub alpha: f64,
}

impl RationalQuadratic {
    /// Construct with validated hyperparameters.
    ///
    /// The fields stay public for struct-literal construction (matching the
    /// other families), but literals skip this check and are caught by
    /// [`StationaryKernel::validate`] when a model is built.
    ///
    /// # Errors
    /// [`HodlrError::InvalidConfig`] when `alpha` is not positive and
    /// finite: `alpha <= 0` flips the exponent sign, so `k(r)` *grows* with
    /// distance and the covariance matrix is no longer positive definite —
    /// a domain error that previously surfaced only as a late
    /// `NotPositiveDefinite` from the factorization.
    pub fn new(variance: f64, length_scale: f64, alpha: f64) -> Result<Self, HodlrError> {
        let kernel = RationalQuadratic {
            variance,
            length_scale,
            alpha,
        };
        kernel.validate()?;
        Ok(kernel)
    }
}

impl StationaryKernel for RationalQuadratic {
    fn eval(&self, r: f64) -> f64 {
        let s = r / self.length_scale;
        self.variance * (1.0 + s * s / (2.0 * self.alpha)).powf(-self.alpha)
    }

    fn name(&self) -> &'static str {
        "rational-quadratic"
    }

    fn validate(&self) -> Result<(), HodlrError> {
        if !(self.alpha > 0.0 && self.alpha.is_finite()) {
            return Err(HodlrError::config(format!(
                "rational-quadratic alpha must be positive and finite, got {:e}",
                self.alpha
            )));
        }
        Ok(())
    }
}

// Interop with the workspace's point-pair kernel vocabulary: every GP
// kernel is also a `hodlr_kernels::ScalarKernel`, so the existing
// `ScalarKernelSource` machinery accepts it directly.
macro_rules! impl_scalar_kernel {
    ($t:ty) => {
        impl ScalarKernel for $t {
            fn eval(&self, x: &[f64], y: &[f64]) -> f64 {
                StationaryKernel::eval(self, dist(x, y))
            }
        }
    };
}
impl_scalar_kernel!(SquaredExponential);
impl_scalar_kernel!(Matern);
impl_scalar_kernel!(RationalQuadratic);

#[cfg(test)]
mod tests {
    use super::*;

    /// Disambiguates from the `ScalarKernel::eval` interop impl.
    fn ev(k: &(impl StationaryKernel + ?Sized), r: f64) -> f64 {
        StationaryKernel::eval(k, r)
    }

    #[test]
    fn kernels_equal_their_variance_at_zero_and_decay() {
        let kernels: Vec<Box<dyn StationaryKernel>> = vec![
            Box::new(SquaredExponential {
                variance: 2.0,
                length_scale: 0.7,
            }),
            Box::new(Matern::half(2.0, 0.7)),
            Box::new(Matern::three_halves(2.0, 0.7)),
            Box::new(Matern::five_halves(2.0, 0.7)),
            Box::new(RationalQuadratic {
                variance: 2.0,
                length_scale: 0.7,
                alpha: 1.5,
            }),
        ];
        for k in &kernels {
            assert!((ev(k.as_ref(), 0.0) - 2.0).abs() < 1e-15, "{}", k.name());
            assert!((k.variance() - 2.0).abs() < 1e-15);
            let near = ev(k.as_ref(), 0.3);
            let far = ev(k.as_ref(), 3.0);
            assert!(near > far && far > 0.0, "{}", k.name());
        }
    }

    #[test]
    fn matern_smoothness_orders_by_tail_mass() {
        // At the same (variance, l), higher smoothness decays *slower* at
        // moderate distances (more mass near the SE limit).
        let r = 1.0;
        let m12 = ev(&Matern::half(1.0, 1.0), r);
        let m32 = ev(&Matern::three_halves(1.0, 1.0), r);
        let m52 = ev(&Matern::five_halves(1.0, 1.0), r);
        assert!(m12 < m32 && m32 < m52, "{m12} {m32} {m52}");
    }

    #[test]
    fn rational_quadratic_approaches_squared_exponential() {
        let se = SquaredExponential {
            variance: 1.0,
            length_scale: 1.0,
        };
        let rq = RationalQuadratic {
            variance: 1.0,
            length_scale: 1.0,
            alpha: 1e6,
        };
        for r in [0.1, 0.5, 1.0, 2.0] {
            assert!((ev(&se, r) - ev(&rq, r)).abs() < 1e-5, "r = {r}");
        }
    }

    #[test]
    fn rational_quadratic_rejects_bad_alpha_at_construction() {
        for alpha in [0.0, -1.5, f64::NAN, f64::INFINITY] {
            let err = RationalQuadratic::new(1.0, 1.0, alpha).unwrap_err();
            assert!(
                matches!(err, HodlrError::InvalidConfig { .. }),
                "alpha = {alpha}: {err}"
            );
        }
        let ok = RationalQuadratic::new(1.0, 1.0, 1.5).unwrap();
        assert_eq!(ok.alpha, 1.5);
        assert!(ok.validate().is_ok());
    }

    #[test]
    fn validate_default_accepts_other_families() {
        assert!(SquaredExponential {
            variance: 1.0,
            length_scale: 1.0,
        }
        .validate()
        .is_ok());
        assert!(Matern::half(1.0, 1.0).validate().is_ok());
        // The blanket impls forward validation through references and boxes.
        let rq = RationalQuadratic {
            variance: 1.0,
            length_scale: 1.0,
            alpha: -2.0,
        };
        assert!(<&RationalQuadratic as StationaryKernel>::validate(&&rq).is_err());
        let bad: Box<dyn StationaryKernel> = Box::new(rq);
        assert!(bad.validate().is_err());
    }

    #[test]
    fn scalar_kernel_interop_uses_euclidean_distance() {
        let k = Matern::three_halves(1.0, 0.5);
        let a = [0.0, 0.0];
        let b = [3.0, 4.0];
        assert_eq!(
            ScalarKernel::eval(&k, &a, &b),
            StationaryKernel::eval(&k, 5.0)
        );
    }
}
