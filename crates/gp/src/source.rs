//! Covariance-matrix entry sources over point sets, plus point-set
//! helpers for the common 1-D GP regression layouts.

use crate::kernels::StationaryKernel;
use hodlr_compress::{MatrixEntrySource, ShiftedSource};
use hodlr_tree::{partition_points, PointCloud, PointPartition};
use rand::Rng;

/// The noise-free correlation matrix `K_ij = k(|x_i - x_j|)` over a point
/// cloud, evaluated lazily through the existing
/// [`MatrixEntrySource`] vocabulary (so the HODLR builder, the ACA
/// compressors and [`BlockSource`](hodlr_core::BlockSource) all accept it
/// unchanged).
pub struct CorrelationSource<'a, K: StationaryKernel + ?Sized> {
    kernel: &'a K,
    points: &'a PointCloud,
}

impl<'a, K: StationaryKernel + ?Sized> CorrelationSource<'a, K> {
    /// The kernel matrix of `kernel` over `points`.
    pub fn new(kernel: &'a K, points: &'a PointCloud) -> Self {
        CorrelationSource { kernel, points }
    }
}

impl<K: StationaryKernel + ?Sized> MatrixEntrySource<f64> for CorrelationSource<'_, K> {
    fn nrows(&self) -> usize {
        self.points.len()
    }

    fn ncols(&self) -> usize {
        self.points.len()
    }

    fn entry(&self, i: usize, j: usize) -> f64 {
        self.kernel.eval(self.points.distance(i, j))
    }
}

/// The full GP covariance source `K + sigma_n^2 I`: the stationary kernel
/// matrix with the noise nugget on the diagonal, composed from
/// [`CorrelationSource`] and the generic
/// [`ShiftedSource`] diagonal adapter of `hodlr-compress`.
pub type CovarianceSource<'a, K> = ShiftedSource<f64, CorrelationSource<'a, K>>;

/// Build the covariance source `K + noise * I` for `kernel` over `points`.
///
/// `noise` is the nugget `sigma_n^2` (observation-noise variance); every
/// practical GP adds one, and it is also what keeps the covariance matrix
/// far enough from singular for the HODLR factorization.
///
/// # Panics
/// Panics if `noise` is negative or non-finite.
pub fn covariance_source<'a, K: StationaryKernel + ?Sized>(
    kernel: &'a K,
    points: &'a PointCloud,
    noise: f64,
) -> CovarianceSource<'a, K> {
    assert!(
        noise >= 0.0 && noise.is_finite(),
        "noise variance must be non-negative and finite, got {noise}"
    );
    ShiftedSource::new(CorrelationSource::new(kernel, points), noise)
}

/// A regular 1-D grid of `n` points on `[lo, hi]` (inclusive endpoints):
/// the canonical time-series / spatial-transect GP layout.  Already in
/// spatial order, so [`ClusterTree::with_leaf_size`](hodlr_tree::ClusterTree)
/// over the natural index order exposes the HODLR structure directly.
///
/// # Panics
/// Panics if `n < 2` or `hi <= lo`.
pub fn regular_grid_1d(n: usize, lo: f64, hi: f64) -> PointCloud {
    assert!(n >= 2, "a 1-D grid needs at least two points");
    assert!(hi > lo, "grid interval must have positive length");
    let h = (hi - lo) / (n - 1) as f64;
    PointCloud::new(1, (0..n).map(|i| lo + h * i as f64).collect())
}

/// `n` points drawn from `clusters` uniform bumps on `[0, 1]` (cluster
/// centers evenly spaced, jitter uniform within each bump) — the
/// clustered observation layout (sensor groups, sampling campaigns) where
/// spatial reordering matters.  Returns the recursive-bisection
/// [`PointPartition`] (reordered cloud + matching cluster tree), ready for
/// the HODLR builder's explicit-tree policy.
///
/// # Panics
/// Panics if `n == 0`, `clusters == 0` or `leaf_size == 0`.
pub fn clustered_points_1d(
    rng: &mut impl Rng,
    n: usize,
    clusters: usize,
    leaf_size: usize,
) -> PointPartition {
    assert!(n > 0 && clusters > 0 && leaf_size > 0);
    let coords: Vec<f64> = (0..n)
        .map(|i| {
            let c = i % clusters;
            let center = (c as f64 + 0.5) / clusters as f64;
            let spread = 0.1 / clusters as f64;
            center + spread * (rng.gen_range(-0.5..0.5))
        })
        .collect();
    partition_points(&PointCloud::new(1, coords), leaf_size)
        .expect("clustered_points always produces a non-empty cloud")
}

/// `n` points drawn uniformly from `[0, 1]^dim` and spatially reordered by
/// recursive coordinate bisection: the d-dimensional observation layout
/// (sensor fields, spatial surveys) of the scale-out benchmark.  Returns
/// the [`PointPartition`] (reordered cloud + matching cluster tree), ready
/// for the HODLR builder's explicit-tree policy; stationary kernels only
/// see pairwise distances, so [`CorrelationSource`] works over the result
/// unchanged in any dimension.
///
/// # Panics
/// Panics if `n == 0`, `dim == 0` or `leaf_size == 0`.
pub fn spatial_points(
    rng: &mut impl Rng,
    n: usize,
    dim: usize,
    leaf_size: usize,
) -> PointPartition {
    assert!(n > 0 && dim > 0 && leaf_size > 0);
    let coords: Vec<f64> = (0..n * dim).map(|_| rng.gen_range(0.0..1.0)).collect();
    partition_points(&PointCloud::new(dim, coords), leaf_size)
        .expect("spatial_points always produces a non-empty cloud")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::SquaredExponential;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn covariance_source_is_symmetric_with_nugget_on_the_diagonal() {
        let points = regular_grid_1d(16, 0.0, 1.0);
        let kernel = SquaredExponential {
            variance: 1.5,
            length_scale: 0.3,
        };
        let src = covariance_source(&kernel, &points, 0.25);
        assert_eq!(src.nrows(), 16);
        for i in 0..6 {
            for j in 0..6 {
                assert!((src.entry(i, j) - src.entry(j, i)).abs() < 1e-15);
            }
            assert!((src.entry(i, i) - (1.5 + 0.25)).abs() < 1e-15);
        }
        assert!(src.entry(0, 15) < src.entry(0, 1));
    }

    #[test]
    fn regular_grid_endpoints_and_spacing() {
        let g = regular_grid_1d(5, -1.0, 1.0);
        assert_eq!(g.len(), 5);
        assert_eq!(g.point(0)[0], -1.0);
        assert_eq!(g.point(4)[0], 1.0);
        assert!((g.distance(1, 2) - 0.5).abs() < 1e-15);
    }

    #[test]
    fn clustered_points_come_reordered_with_a_matching_tree() {
        let mut rng = StdRng::seed_from_u64(7);
        let part = clustered_points_1d(&mut rng, 128, 4, 16);
        assert_eq!(part.points.len(), 128);
        assert_eq!(part.tree.n(), 128);
        // Recursive bisection puts each leaf in a compact interval: the
        // first leaf's spread is much smaller than the full domain.
        let first_leaf = part.tree.range(part.tree.leaves().next().unwrap());
        let xs: Vec<f64> = first_leaf
            .clone()
            .map(|i| part.points.point(i)[0])
            .collect();
        let spread = xs.iter().cloned().fold(f64::MIN, f64::max)
            - xs.iter().cloned().fold(f64::MAX, f64::min);
        assert!(spread < 0.5, "leaf spread {spread}");
    }

    #[test]
    #[should_panic(expected = "noise variance")]
    fn negative_noise_is_rejected() {
        let points = regular_grid_1d(4, 0.0, 1.0);
        let kernel = SquaredExponential {
            variance: 1.0,
            length_scale: 1.0,
        };
        let _ = covariance_source(&kernel, &points, -1.0);
    }
}
