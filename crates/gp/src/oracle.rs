//! Dense Cholesky reference: the `O(n^3)` oracle the HODLR likelihood is
//! validated against in tests and benches.

use crate::likelihood::LogLikelihood;
use hodlr_la::{DenseMatrix, HodlrError, SymmetricFactor, SymmetricPolicy};

/// Dense Cholesky factorization `K = L L^T` (lower triangular `L`), routed
/// through the blocked [`hodlr_la`] kernel ([`SymmetricFactor`] under
/// [`SymmetricPolicy::Strict`]) so the oracle and the HODLR fast path share
/// one Cholesky implementation.
///
/// # Errors
/// [`HodlrError::NotPositiveDefinite`] when a pivot is non-positive, and
/// [`HodlrError::DimensionMismatch`] for a non-square input.
pub fn dense_cholesky(k: &DenseMatrix<f64>) -> Result<DenseMatrix<f64>, HodlrError> {
    HodlrError::check_dims("Cholesky input (rows vs cols)", k.rows(), k.cols())?;
    let factor = SymmetricFactor::new(k, SymmetricPolicy::Strict)
        .map_err(|e| e.into_hodlr("dense covariance matrix"))?;
    Ok(factor.lower_factor())
}

/// The exact log-marginal likelihood of `y ~ N(0, K)` via dense Cholesky:
/// `log|K| = 2 sum_i log L_ii` and `y^T K^{-1} y = |L^{-1} y|^2`.
///
/// # Errors
/// As [`dense_cholesky`], plus [`HodlrError::DimensionMismatch`] when `y`
/// has the wrong length.
pub fn dense_log_likelihood(k: &DenseMatrix<f64>, y: &[f64]) -> Result<LogLikelihood, HodlrError> {
    let n = k.rows();
    HodlrError::check_dims("observation vector", n, y.len())?;
    let l = dense_cholesky(k)?;
    // Forward substitution z = L^{-1} y.
    let mut z = y.to_vec();
    for i in 0..n {
        for p in 0..i {
            let lip = l[(i, p)];
            z[i] -= lip * z[p];
        }
        z[i] /= l[(i, i)];
    }
    let quadratic_form: f64 = z.iter().map(|v| v * v).sum();
    let log_det: f64 = (0..n).map(|i| 2.0 * l[(i, i)].ln()).sum();
    Ok(LogLikelihood::from_terms(quadratic_form, log_det, n))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hodlr_la::LuFactor;

    fn spd_matrix(n: usize) -> DenseMatrix<f64> {
        // K = B B^T + n I for a fixed pseudo-random B: SPD by construction.
        let b = DenseMatrix::from_fn(n, n, |i, j| ((i * 31 + j * 17) % 13) as f64 / 13.0 - 0.4);
        let mut k = DenseMatrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                let mut v = 0.0;
                for p in 0..n {
                    v += b[(i, p)] * b[(j, p)];
                }
                k[(i, j)] = v + if i == j { n as f64 } else { 0.0 };
            }
        }
        k
    }

    #[test]
    fn cholesky_reconstructs_and_log_det_matches_lu() {
        let k = spd_matrix(24);
        let l = dense_cholesky(&k).unwrap();
        for i in 0..24 {
            for j in 0..24 {
                let mut v = 0.0;
                for p in 0..=i.min(j) {
                    v += l[(i, p)] * l[(j, p)];
                }
                assert!((v - k[(i, j)]).abs() < 1e-10);
            }
        }
        let (lu_log, lu_sign) = LuFactor::new(&k).unwrap().log_det();
        let chol_log: f64 = (0..24).map(|i| 2.0 * l[(i, i)].ln()).sum();
        assert!((lu_log - chol_log).abs() < 1e-9);
        assert!((lu_sign - 1.0).abs() < 1e-12);
    }

    #[test]
    fn likelihood_of_the_identity_covariance_is_the_standard_normal() {
        let k = DenseMatrix::<f64>::identity(10);
        let y = vec![0.5; 10];
        let ll = dense_log_likelihood(&k, &y).unwrap();
        let expected = -0.5 * 10.0 * 0.25 - 0.5 * 10.0 * (2.0 * std::f64::consts::PI).ln();
        assert!((ll.value - expected).abs() < 1e-12);
        assert_eq!(ll.log_det, 0.0);
    }

    #[test]
    fn indefinite_matrices_are_reported() {
        let k = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]);
        let err = dense_cholesky(&k).unwrap_err();
        assert!(
            matches!(err, HodlrError::NotPositiveDefinite { .. }),
            "{err}"
        );
    }
}
