//! Spectral cross-checks on the GP covariance: SLQ vs the product-form
//! determinant, and the smallest-eigenvalue probe.
//!
//! The likelihood path screens positive definiteness twice — determinant
//! sign (odd negative-eigenvalue counts) and the sign of the data-fit
//! term — but an indefinite covariance with an *even* number of negative
//! eigenvalues and a benign observation vector can slip past both.  The
//! spectral subsystem closes that blind spot from the matvec side:
//! stochastic Lanczos quadrature inspects actual Ritz values of
//! `K + sigma_n^2 I`, so any probe that touches the negative part of the
//! spectrum surfaces a typed
//! [`NotPositiveDefinite`](HodlrError::NotPositiveDefinite).  As a bonus
//! the SLQ estimate is an independent `O(probes * steps * n log n)`
//! cross-check on the `O(N log^2 N)` product-form `log|K|`.

use crate::likelihood::GpModel;
use hodlr::Factorization;
use hodlr_la::HodlrError;
use hodlr_spectral::{
    lanczos_report, slq_log_det, LanczosConfig, PartialEigen, SlqConfig, SlqEstimate,
    SpectrumTarget,
};

/// The verdict of [`GpModel::spectral_check`]: both determinant routes
/// plus an agreement judgement within the stochastic error.
#[derive(Clone, Debug)]
pub struct SpectralCheck {
    /// `log|K|` from the factorization's product form (Section III-E (a)).
    pub product_log_det: f64,
    /// The independent SLQ estimate of the same quantity (with its
    /// standard error and the smallest Ritz value seen).
    pub slq: SlqEstimate,
    /// Absolute difference between the two routes.
    pub discrepancy: f64,
    /// `true` when the discrepancy is within `3 * stderr` of the SLQ
    /// estimate (plus a small relative floor for the zero-variance case).
    pub agrees: bool,
}

impl GpModel {
    /// Cross-check the factorization's product-form `log|K|` against a
    /// matvec-only SLQ estimate on the same covariance.
    ///
    /// Disagreement beyond the stochastic error indicates one of the two
    /// paths is wrong about the spectrum — typically a compression
    /// artifact that pushed the approximation indefinite.
    ///
    /// # Errors
    /// [`HodlrError::NotPositiveDefinite`] from either route: the
    /// product form's sign screen, or an SLQ probe surfacing a
    /// non-positive Ritz value (the even-negative-count case the sign
    /// screen cannot see).  Config errors propagate from
    /// [`slq_log_det`].
    pub fn spectral_check(
        &self,
        factorization: &Factorization<'_, f64>,
        cfg: &SlqConfig,
    ) -> Result<SpectralCheck, HodlrError> {
        let product_log_det = self.log_det_term(factorization)?;
        let slq = slq_log_det(self.hodlr(), cfg)?;
        let discrepancy = (slq.value - product_log_det).abs();
        let agrees = discrepancy <= 3.0 * slq.stderr + 1e-6 * product_log_det.abs().max(1.0);
        Ok(SpectralCheck {
            product_log_det,
            slq,
            discrepancy,
            agrees,
        })
    }

    /// The `k` smallest eigenvalues of the covariance by Lanczos over the
    /// HODLR matvec — the margin by which `K + sigma_n^2 I` clears zero,
    /// i.e. how much compression error the density can absorb before the
    /// likelihood becomes meaningless.
    ///
    /// # Errors
    /// See [`lanczos_report`] (config validation).
    pub fn smallest_eigenvalues(
        &self,
        k: usize,
        cfg: &LanczosConfig,
    ) -> Result<PartialEigen<f64>, HodlrError> {
        lanczos_report(self.hodlr(), k, SpectrumTarget::Smallest, cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::SquaredExponential;
    use crate::likelihood::GpConfig;
    use crate::source::regular_grid_1d;
    use hodlr::{Factorize, Hodlr, Solve};
    use hodlr_compress::ClosureSource;

    fn model(n: usize) -> GpModel {
        let points = regular_grid_1d(n, 0.0, 4.0);
        let kernel = SquaredExponential {
            variance: 1.2,
            length_scale: 0.4,
        };
        GpModel::build(&kernel, &points, 0.1, &GpConfig::default()).unwrap()
    }

    #[test]
    fn slq_cross_checks_the_product_form_determinant() {
        let m = model(256);
        let f = m.factorize().unwrap();
        let cfg = SlqConfig {
            probes: 24,
            steps: 48,
            seed: 42,
        };
        let check = m.spectral_check(&f, &cfg).unwrap();
        assert!(check.slq.min_ritz > 0.0);
        assert!(
            check.agrees,
            "SLQ {} +/- {} vs product {}",
            check.slq.value, check.slq.stderr, check.product_log_det
        );
    }

    #[test]
    fn smallest_eigenvalue_is_at_least_the_nugget() {
        let m = model(128);
        let got = m
            .smallest_eigenvalues(1, &LanczosConfig::default())
            .unwrap();
        // K_f is PSD, so the smallest eigenvalue of K_f + 0.1 I clears 0.1
        // (up to compression error).
        assert!(
            got.values[0] >= 0.1 - 1e-6,
            "smallest eigenvalue {}",
            got.values[0]
        );
    }

    #[test]
    fn slq_catches_even_count_indefiniteness_the_sign_screen_misses() {
        // A diagonal "covariance" with exactly two negative entries: the
        // determinant sign is positive, so the factorization's sign screen
        // passes — the SLQ node inspection must still refuse it.
        let n = 64;
        let source = ClosureSource::new(n, n, move |i, j| {
            if i != j {
                0.0
            } else if i < 2 {
                -1.0
            } else {
                2.0
            }
        });
        let hodlr = Hodlr::<f64>::builder()
            .source(&source)
            .leaf_size(16)
            .tolerance(1e-12)
            .build()
            .unwrap();
        let f = hodlr.factorize().unwrap();
        let (log_abs, sign) = f.log_det().unwrap();
        assert!(log_abs.is_finite());
        assert!(sign > 0.0, "even negative count keeps the sign positive");
        let err = slq_log_det(&hodlr, &SlqConfig::default()).unwrap_err();
        assert!(
            matches!(err, HodlrError::NotPositiveDefinite { .. }),
            "{err}"
        );
    }
}
