//! Hyperparameter selection by grid scan: evaluate the log-marginal
//! likelihood over a Cartesian grid of `(length_scale, variance, noise)`
//! candidates and pick the maximiser.
//!
//! Each `(length_scale, variance)` candidate compresses the HODLR
//! covariance once; the noise axis reuses that compression through
//! [`GpModel::with_noise`] (the nugget only touches the leaf diagonal
//! blocks), so a grid with `k` noise candidates pays one compression —
//! not `k` — per kernel.  Every candidate still refactorizes (the matrix
//! values changed), at `O(N log^2 N)` instead of the dense `O(N^3)` —
//! which is why a HODLR-backed GP can afford to scan at sizes where a
//! dense one cannot.

use crate::kernels::{Matern, RationalQuadratic, SquaredExponential, StationaryKernel};
use crate::likelihood::{GpConfig, GpModel, LogLikelihood};
use hodlr_la::HodlrError;
use hodlr_tree::PointCloud;

/// A stationary kernel family whose hyperparameters a scan instantiates.
#[derive(Copy, Clone, Debug, PartialEq)]
pub enum KernelFamily {
    /// [`SquaredExponential`].
    SquaredExponential,
    /// [`Matern`] with `nu = 1/2`.
    MaternHalf,
    /// [`Matern`] with `nu = 3/2`.
    MaternThreeHalves,
    /// [`Matern`] with `nu = 5/2`.
    MaternFiveHalves,
    /// [`RationalQuadratic`] with the given scale-mixture `alpha`.
    RationalQuadratic {
        /// Scale-mixture parameter `alpha > 0`.
        alpha: f64,
    },
}

impl KernelFamily {
    /// Family name, for labels — delegated to the instantiated kernel's
    /// [`StationaryKernel::name`] so the label strings live in one place.
    pub fn name(&self) -> &'static str {
        self.kernel(1.0, 1.0).name()
    }

    /// Instantiate the family at concrete hyperparameters.
    pub fn kernel(&self, variance: f64, length_scale: f64) -> Box<dyn StationaryKernel> {
        match *self {
            KernelFamily::SquaredExponential => Box::new(SquaredExponential {
                variance,
                length_scale,
            }),
            KernelFamily::MaternHalf => Box::new(Matern::half(variance, length_scale)),
            KernelFamily::MaternThreeHalves => {
                Box::new(Matern::three_halves(variance, length_scale))
            }
            KernelFamily::MaternFiveHalves => Box::new(Matern::five_halves(variance, length_scale)),
            KernelFamily::RationalQuadratic { alpha } => Box::new(RationalQuadratic {
                variance,
                length_scale,
                alpha,
            }),
        }
    }
}

/// One evaluated grid point.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct ScanRow {
    /// Length scale `l` of the candidate.
    pub length_scale: f64,
    /// Signal variance `sigma_f^2` of the candidate.
    pub variance: f64,
    /// Noise nugget `sigma_n^2` of the candidate.
    pub noise: f64,
    /// The evaluated likelihood terms.
    pub log_likelihood: LogLikelihood,
}

/// The grid of candidates to scan for one [`KernelFamily`].
#[derive(Clone, Debug)]
pub struct GridScan {
    /// The kernel family.
    pub family: KernelFamily,
    /// Candidate length scales (must be non-empty).
    pub length_scales: Vec<f64>,
    /// Candidate signal variances (must be non-empty).
    pub variances: Vec<f64>,
    /// Candidate noise nuggets (must be non-empty).
    pub noises: Vec<f64>,
}

impl GridScan {
    /// Evaluate `log p(y)` at every grid point, in grid order
    /// (`length_scale` outermost, `noise` innermost).
    ///
    /// Candidates whose covariance fails to factorize or is not positive
    /// definite are skipped (a scan routinely probes bad corners of the
    /// grid); every *other* error aborts the scan.  An empty grid is an
    /// [`HodlrError::InvalidConfig`].
    ///
    /// # Errors
    /// [`HodlrError::InvalidConfig`] for an empty grid axis, and any
    /// non-conditioning error from the builder or likelihood evaluation.
    pub fn run(
        &self,
        points: &PointCloud,
        y: &[f64],
        config: &GpConfig,
    ) -> Result<Vec<ScanRow>, HodlrError> {
        if self.length_scales.is_empty() || self.variances.is_empty() || self.noises.is_empty() {
            return Err(HodlrError::config(
                "grid scan needs at least one candidate per axis",
            ));
        }
        // Family-level hyperparameters (e.g. rational-quadratic alpha) are
        // shared by every grid point — reject a bad family before the first
        // compression rather than failing mid-scan.
        self.family.kernel(1.0, 1.0).validate()?;
        let mut rows = Vec::new();
        for &length_scale in &self.length_scales {
            for &variance in &self.variances {
                let kernel = self.family.kernel(variance, length_scale);
                // One compression per kernel candidate; the noise axis
                // only shifts the leaf diagonals (`with_noise`).
                let base = GpModel::build(kernel.as_ref(), points, self.noises[0], config)?;
                for &noise in &self.noises {
                    let model = if noise == base.noise() {
                        None
                    } else {
                        Some(base.with_noise(noise)?)
                    };
                    match model.as_ref().unwrap_or(&base).log_likelihood(y) {
                        Ok(log_likelihood) => rows.push(ScanRow {
                            length_scale,
                            variance,
                            noise,
                            log_likelihood,
                        }),
                        // Ill-conditioned corner of the grid: skip it.
                        Err(HodlrError::SingularPivot { .. })
                        | Err(HodlrError::NotPositiveDefinite { .. }) => {}
                        Err(e) => return Err(e),
                    }
                }
            }
        }
        Ok(rows)
    }
}

/// The grid point with the highest likelihood (ties keep the earlier,
/// i.e. coarser, candidate); `None` when every candidate was skipped.
pub fn best_row(rows: &[ScanRow]) -> Option<&ScanRow> {
    rows.iter().reduce(|best, row| {
        if row.log_likelihood.value > best.log_likelihood.value {
            row
        } else {
            best
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::regular_grid_1d;

    #[test]
    fn scan_recovers_the_generating_length_scale() {
        // Data drawn (deterministically) from a smooth function whose
        // wiggle scale is ~0.5 on [0, 4]; the scan should prefer a
        // comparable length scale over ones off by 10x either way.
        let n = 128;
        let points = regular_grid_1d(n, 0.0, 4.0);
        let y: Vec<f64> = (0..n)
            .map(|i| {
                let x = 4.0 * i as f64 / (n - 1) as f64;
                (2.0 * x).sin()
            })
            .collect();
        let scan = GridScan {
            family: KernelFamily::SquaredExponential,
            length_scales: vec![0.05, 0.5, 5.0],
            variances: vec![1.0],
            noises: vec![1e-4],
        };
        let config = GpConfig {
            leaf_size: 32,
            ..GpConfig::default()
        };
        let rows = scan.run(&points, &y, &config).unwrap();
        assert_eq!(rows.len(), 3);
        let best = best_row(&rows).unwrap();
        assert_eq!(best.length_scale, 0.5, "rows: {rows:?}");
    }

    #[test]
    fn every_family_instantiates_and_scores() {
        let points = regular_grid_1d(48, 0.0, 1.0);
        let y: Vec<f64> = (0..48).map(|i| (i as f64 * 0.2).cos()).collect();
        let config = GpConfig {
            leaf_size: 16,
            ..GpConfig::default()
        };
        for family in [
            KernelFamily::SquaredExponential,
            KernelFamily::MaternHalf,
            KernelFamily::MaternThreeHalves,
            KernelFamily::MaternFiveHalves,
            KernelFamily::RationalQuadratic { alpha: 2.0 },
        ] {
            let scan = GridScan {
                family,
                length_scales: vec![0.3],
                variances: vec![1.0],
                noises: vec![1e-2],
            };
            let rows = scan.run(&points, &y, &config).unwrap();
            assert_eq!(rows.len(), 1, "{}", family.name());
            assert!(rows[0].log_likelihood.value.is_finite());
        }
    }

    #[test]
    fn bad_rational_quadratic_alpha_is_a_typed_config_error() {
        // Regression: alpha <= 0 used to sail through construction and
        // surface deep in the scan as NotPositiveDefinite (or worse, a
        // skipped grid point); it must abort up front as InvalidConfig.
        let points = regular_grid_1d(16, 0.0, 1.0);
        for alpha in [0.0, -1.0, f64::NAN] {
            let scan = GridScan {
                family: KernelFamily::RationalQuadratic { alpha },
                length_scales: vec![0.3],
                variances: vec![1.0],
                noises: vec![1e-2],
            };
            let err = scan
                .run(&points, &[0.0; 16], &GpConfig::default())
                .unwrap_err();
            assert!(
                matches!(err, HodlrError::InvalidConfig { .. }),
                "alpha = {alpha}: {err}"
            );
        }
    }

    #[test]
    fn empty_grid_axes_are_rejected() {
        let points = regular_grid_1d(8, 0.0, 1.0);
        let scan = GridScan {
            family: KernelFamily::SquaredExponential,
            length_scales: vec![],
            variances: vec![1.0],
            noises: vec![1e-2],
        };
        let err = scan
            .run(&points, &[0.0; 8], &GpConfig::default())
            .unwrap_err();
        assert!(matches!(err, HodlrError::InvalidConfig { .. }));
    }
}
