//! Differential tests of the posterior sampling layer: predictive mean /
//! variance against a dense oracle, and a fixed-seed statistical check that
//! the sample moments of Matheron pathwise draws converge to the exact
//! posterior moments.  Every tolerance is deterministic because every rng
//! is seeded.

use hodlr::{Backend, Symmetry};
use hodlr_compress::MatrixEntrySource;
use hodlr_gp::{
    covariance_source, regular_grid_1d, GpConfig, GpPosterior, SquaredExponential, StationaryKernel,
};
use hodlr_la::{DenseMatrix, HodlrError, SymmetricFactor, SymmetricPolicy};
use hodlr_tree::PointCloud;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn kernel() -> SquaredExponential {
    SquaredExponential {
        variance: 1.3,
        length_scale: 0.35,
    }
}

fn observations(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| (i as f64 * 0.11).sin() + 0.3 * (i as f64 * 0.37).cos())
        .collect()
}

/// Dense posterior moments: `mu = K_*^T K^{-1} y`,
/// `Sigma = K_** - K_*^T K^{-1} K_*`, all through the dense Cholesky.
struct DenseOracle {
    mean: Vec<f64>,
    cov: DenseMatrix<f64>,
}

fn dense_oracle(
    kernel: &impl StationaryKernel,
    train: &PointCloud,
    test: &PointCloud,
    noise: f64,
    y: &[f64],
) -> DenseOracle {
    let (n, m) = (train.len(), test.len());
    let k = covariance_source(kernel, train, noise).to_dense();
    let cross = DenseMatrix::from_fn(n, m, |i, j| {
        let d: f64 = train
            .point(i)
            .iter()
            .zip(test.point(j))
            .map(|(a, b)| (a - b) * (a - b))
            .sum();
        kernel.eval(d.sqrt())
    });
    let factor = SymmetricFactor::new(&k, SymmetricPolicy::Strict).unwrap();
    let alpha = factor.solve_vec(y);
    let mean: Vec<f64> = (0..m)
        .map(|j| cross.col(j).iter().zip(&alpha).map(|(a, b)| a * b).sum())
        .collect();
    let w = factor.solve_matrix(&cross);
    let mut cov = DenseMatrix::from_fn(m, m, |i, j| kernel.eval(test.distance(i, j)));
    for i in 0..m {
        for j in 0..m {
            let explained: f64 = cross.col(i).iter().zip(w.col(j)).map(|(a, b)| a * b).sum();
            cov[(i, j)] -= explained;
        }
    }
    DenseOracle { mean, cov }
}

fn spd_config(backend: Backend) -> GpConfig {
    let mut config = GpConfig::with_backend(backend).positive_definite();
    config.leaf_size = 32;
    config.tolerance = 1e-12;
    config
}

#[test]
fn predictive_mean_and_variance_match_the_dense_oracle_on_both_backends() {
    let n = 96;
    let train = regular_grid_1d(n, 0.0, 2.0);
    let test = regular_grid_1d(10, 0.17, 1.83);
    let noise = 0.05;
    let y = observations(n);
    let oracle = dense_oracle(&kernel(), &train, &test, noise, &y);
    for backend in [Backend::Serial, Backend::Batched] {
        let posterior =
            GpPosterior::new(&kernel(), &train, &test, noise, &spd_config(backend)).unwrap();
        assert_eq!(
            posterior.model().hodlr().symmetry(),
            Symmetry::PositiveDefinite
        );
        let factorization = posterior.factorize().unwrap();
        let mean = posterior.mean(&factorization, &y).unwrap();
        let var = posterior.variance(&factorization).unwrap();
        for j in 0..test.len() {
            assert!(
                (mean[j] - oracle.mean[j]).abs() < 1e-8 * oracle.mean[j].abs().max(1.0),
                "{backend:?} mean[{j}]: {} vs {}",
                mean[j],
                oracle.mean[j]
            );
            let exact = oracle.cov[(j, j)].max(0.0);
            assert!(
                (var[j] - exact).abs() < 1e-8 * exact.max(1.0),
                "{backend:?} var[{j}]: {} vs {exact}",
                var[j]
            );
        }
    }
}

#[test]
fn sample_moments_of_pathwise_draws_converge_to_the_posterior_moments() {
    let n = 64;
    let m = 6;
    let train = regular_grid_1d(n, 0.0, 2.0);
    let test = regular_grid_1d(m, 0.2, 1.8);
    let noise = 0.1;
    let y = observations(n);
    let oracle = dense_oracle(&kernel(), &train, &test, noise, &y);

    let posterior = GpPosterior::new(
        &kernel(),
        &train,
        &test,
        noise,
        &spd_config(Backend::Serial),
    )
    .unwrap();
    let factorization = posterior.factorize().unwrap();
    let count = 4000;
    let mut rng = StdRng::seed_from_u64(20220711);
    let draws = posterior
        .draws(&factorization, &y, &mut rng, count)
        .unwrap();
    assert_eq!((draws.rows(), draws.cols()), (m, count));

    // Sample mean and (unbiased) sample covariance over the draws.
    let mut mean = vec![0.0; m];
    for c in 0..count {
        for i in 0..m {
            mean[i] += draws[(i, c)];
        }
    }
    for v in &mut mean {
        *v /= count as f64;
    }
    let mut cov = DenseMatrix::<f64>::zeros(m, m);
    for c in 0..count {
        for i in 0..m {
            for j in 0..m {
                cov[(i, j)] += (draws[(i, c)] - mean[i]) * (draws[(j, c)] - mean[j]);
            }
        }
    }
    for v in cov.data_mut() {
        *v /= (count - 1) as f64;
    }

    // Monte-Carlo error is O(1/sqrt(count)) ~ 1.6e-2 on unit-scale entries;
    // the seed is fixed, so these bounds are deterministic with ~3x margin.
    for i in 0..m {
        assert!(
            (mean[i] - oracle.mean[i]).abs() < 5e-2,
            "mean[{i}]: {} vs {}",
            mean[i],
            oracle.mean[i]
        );
        for j in 0..m {
            assert!(
                (cov[(i, j)] - oracle.cov[(i, j)]).abs() < 5e-2,
                "cov[{i},{j}]: {} vs {}",
                cov[(i, j)],
                oracle.cov[(i, j)]
            );
        }
    }
}

#[test]
fn draws_are_deterministic_for_a_fixed_seed() {
    let train = regular_grid_1d(48, 0.0, 1.0);
    let test = regular_grid_1d(4, 0.1, 0.9);
    let y = observations(48);
    let posterior =
        GpPosterior::new(&kernel(), &train, &test, 0.1, &spd_config(Backend::Serial)).unwrap();
    let factorization = posterior.factorize().unwrap();
    let a = posterior
        .draws(&factorization, &y, &mut StdRng::seed_from_u64(7), 16)
        .unwrap();
    let b = posterior
        .draws(&factorization, &y, &mut StdRng::seed_from_u64(7), 16)
        .unwrap();
    for (x, z) in a.data().iter().zip(b.data()) {
        assert_eq!(x.to_bits(), z.to_bits());
    }
}

#[test]
fn bad_inputs_are_typed_errors() {
    let train = regular_grid_1d(32, 0.0, 1.0);
    let test = regular_grid_1d(3, 0.2, 0.8);
    let config = spd_config(Backend::Serial);
    // Mismatched point dimensions.
    let test_2d = PointCloud::new(2, vec![0.1, 0.2, 0.3, 0.4]);
    let err = match GpPosterior::new(&kernel(), &train, &test_2d, 0.1, &config) {
        Ok(_) => panic!("mismatched point dimensions must be rejected"),
        Err(e) => e,
    };
    assert!(matches!(err, HodlrError::InvalidConfig { .. }), "{err}");
    // Wrong observation length and zero draw count.
    let posterior = GpPosterior::new(&kernel(), &train, &test, 0.1, &config).unwrap();
    let factorization = posterior.factorize().unwrap();
    let err = posterior.mean(&factorization, &vec![0.0; 31]).unwrap_err();
    assert_eq!(err, HodlrError::dims("observation vector", 32, 31));
    let y = observations(32);
    let err = posterior
        .draws(&factorization, &y, &mut StdRng::seed_from_u64(1), 0)
        .unwrap_err();
    assert!(matches!(err, HodlrError::InvalidConfig { .. }), "{err}");
}
