//! Property suite for the serve layer's interleaving invariants.
//!
//! Random sequences of submit / drain / evict / rebuild — including
//! same-key entries across evictions and deliberately poisoned batch
//! members — must never panic, must resolve **every** ticket exactly
//! once, and must attribute errors to exactly the requests that earned
//! them.  The sequences are derived from a seeded `StdRng`, so every
//! failure replays bitwise from its seed.

use hodlr::prelude::*;
use hodlr::Precision as FacadePrecision;
use hodlr_batch::FaultPlan;
use hodlr_serve::{
    CacheConfig, CacheKey, CachedFactorization, CoalesceQueue, FactorCache, ServeConfig,
    ServeError, ServeFaultPlan, SolveService, Ticket,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::Duration;

const N: usize = 24;
const LEAF: usize = 8;

/// A ticket must resolve promptly once its drain ran; a missing result is
/// a hang, and this bound converts it into a test failure.
const RESOLVE_BOUND: Duration = Duration::from_secs(10);

fn build_entry(precision: FacadePrecision, shift: f64) -> CachedFactorization<f64> {
    let source = ClosureSource::new(N, N, move |i, j| {
        let d = (i as f64 - j as f64).abs() / N as f64;
        1.0 / (1.0 + 8.0 * d) + if i == j { 4.0 + shift } else { 0.0 }
    });
    let hodlr = Hodlr::builder()
        .source(&source)
        .leaf_size(LEAF)
        .tolerance(1e-10)
        .precision(precision)
        .build()
        .unwrap();
    CachedFactorization::build(hodlr).unwrap()
}

fn key(id: &str, precision: FacadePrecision) -> CacheKey {
    CacheKey::new(
        id,
        &TreePolicy::LeafSize(LEAF),
        1e-10,
        Backend::Serial,
        precision,
    )
}

fn rhs(rng: &mut StdRng) -> Vec<f64> {
    (0..N).map(|_| rng.gen_range(-1.0..1.0)).collect()
}

/// What each submitted ticket owes us at the end of the run.
enum Expect {
    CleanSolve,
    /// A NaN right-hand side snuck into a mixed-precision batch at the
    /// queue layer: the blocked refinement fails, the drain retries
    /// members individually, and only this request may error.
    AttributedFailure,
}

/// Random interleaving of queue submits, drains, cache evictions and
/// same-key rebuilds against the raw `FactorCache` + `CoalesceQueue`
/// pair (no service in front, so poisoned right-hand sides reach the
/// queue and exercise its attribution path).
fn queue_cache_interleaving(seed: u64, ops: usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    let cache = FactorCache::<f64>::new(CacheConfig::default());
    let queue = CoalesceQueue::<f64>::new(4096);

    // One shared key whose resident entry is rebuilt mid-run (same-key
    // groups must split by entry identity), plus a mixed-precision lane
    // for attributed failures.
    let shared_key = key("shared", FacadePrecision::Full);
    let mixed_key = key("mixed", FacadePrecision::MixedRefine);
    let mut shared = cache
        .insert(shared_key.clone(), build_entry(FacadePrecision::Full, 0.0))
        .unwrap();
    let mixed = Arc::new(build_entry(FacadePrecision::MixedRefine, 1.0));

    let mut pending: Vec<(Ticket<f64>, Expect)> = Vec::new();
    let mut drained_requests = 0usize;
    let mut submitted = 0usize;
    let mut rebuild_round = 0usize;

    for _ in 0..ops {
        match rng.gen_range(0u32..100) {
            // Submit against the shared key's current resident entry (or
            // the stale Arc we still hold after an eviction — both are
            // legal and must group by entry identity, not key).
            0..=44 => {
                let entry = if rng.gen_bool(0.5) {
                    cache
                        .get(&shared_key)
                        .unwrap_or_else(|| Arc::clone(&shared))
                } else {
                    Arc::clone(&shared)
                };
                let b = rhs(&mut rng);
                let t = queue.submit(shared_key.clone(), entry, b).unwrap();
                pending.push((t, Expect::CleanSolve));
                submitted += 1;
            }
            // Submit into the mixed-precision lane, sometimes poisoned.
            45..=59 => {
                let mut b = rhs(&mut rng);
                let poisoned = rng.gen_bool(0.3);
                if poisoned {
                    b[rng.gen_range(0..N)] = f64::NAN;
                }
                let t = queue
                    .submit(mixed_key.clone(), Arc::clone(&mixed), b)
                    .unwrap();
                pending.push((
                    t,
                    if poisoned {
                        Expect::AttributedFailure
                    } else {
                        Expect::CleanSolve
                    },
                ));
                submitted += 1;
            }
            // Drain everything queued so far.
            60..=79 => {
                let report = queue.drain();
                drained_requests += report.requests;
            }
            // Evict: flush the cache or surgically remove the shared
            // entry.  In-flight Arcs keep solving against the old entry.
            80..=89 => {
                if rng.gen_bool(0.5) {
                    cache.clear();
                } else {
                    cache.remove_entry(&shared_key, &shared);
                }
            }
            // Rebuild the shared key: a *different* entry under the same
            // key, racing requests that still hold the old Arc.
            _ => {
                rebuild_round += 1;
                let fresh = build_entry(FacadePrecision::Full, (rebuild_round % 3) as f64);
                cache.remove_entry(&shared_key, &shared);
                if let Ok(inserted) = cache.insert(shared_key.clone(), fresh) {
                    shared = inserted;
                }
            }
        }
    }

    // Final drain picks up everything still queued.
    let report = queue.drain();
    drained_requests += report.requests;
    prop_assert_eq!(
        drained_requests,
        submitted,
        "every submitted request must be drained exactly once"
    );

    // Every ticket resolves exactly once, with errors attributed to the
    // poisoned requests and nobody else.
    for (i, (ticket, expect)) in pending.into_iter().enumerate() {
        let outcome = ticket.wait_timeout(RESOLVE_BOUND);
        match expect {
            Expect::CleanSolve => {
                let x = outcome.unwrap_or_else(|e| panic!("ticket {i} must solve, got {e:?}"));
                prop_assert!(
                    x.iter().all(|v| v.is_finite()),
                    "clean request {i} produced a non-finite solution"
                );
            }
            Expect::AttributedFailure => match outcome {
                Err(ServeError::Solver(_)) => {}
                other => {
                    panic!("poisoned request {i} must fail as its own solver error, got {other:?}")
                }
            },
        }
    }
}

/// Random interleaving at the service layer with fault plans armed:
/// device poison on cached entries, serve-level cache flushes, and
/// breaker trips racing clean traffic.  Every admitted request must
/// resolve exactly once (success or typed error) and the service's own
/// accounting must balance.
fn service_interleaving_with_faults(seed: u64, ops: usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    let service = SolveService::<f64>::new(ServeConfig {
        queue_capacity: 4096,
        ..ServeConfig::default()
    });
    let tenant_key = |name: &str| {
        CacheKey::new(
            name,
            &TreePolicy::LeafSize(LEAF),
            1e-10,
            Backend::Batched,
            FacadePrecision::Full,
        )
    };
    for (name, shift) in [("a", 0.0), ("b", 1.0)] {
        service.register_tenant(name, tenant_key(name), move || {
            let source = ClosureSource::new(N, N, move |i, j| {
                let d = (i as f64 - j as f64).abs() / N as f64;
                1.0 / (1.0 + 8.0 * d) + if i == j { 4.0 + shift } else { 0.0 }
            });
            Hodlr::builder()
                .source(&source)
                .leaf_size(LEAF)
                .tolerance(1e-10)
                .backend(Backend::Batched)
                .build()
        });
    }

    let mut pending: Vec<Ticket<f64>> = Vec::new();
    let mut admitted = 0u64;
    for _ in 0..ops {
        match rng.gen_range(0u32..100) {
            0..=54 => {
                let tenant = if rng.gen_bool(0.5) { "a" } else { "b" };
                match service.submit(tenant, rhs(&mut rng)) {
                    Ok(t) => {
                        pending.push(t);
                        admitted += 1;
                    }
                    // The breaker may be open after a poisoned streak;
                    // that is a typed admission error, not a lost request.
                    Err(ServeError::CircuitOpen { .. }) => {}
                    Err(other) => panic!("unexpected admission error: {other:?}"),
                }
            }
            55..=74 => {
                service.drain();
            }
            // Poison the next couple of launches on a cached entry's
            // device: drained solves come back NaN and must be absorbed
            // by the ladder (or attributed, never mixed up).
            75..=84 => {
                let tenant = if rng.gen_bool(0.5) { "a" } else { "b" };
                if let Some(entry) = service.cache().get(&tenant_key(tenant)) {
                    let device = entry.hodlr().device();
                    device.disarm_faults();
                    device.arm_faults(FaultPlan::new().poison_launch(1).poison_launch(2));
                }
            }
            // Serve-level fault: flush the cache before the next drain.
            _ => {
                service.arm_faults(ServeFaultPlan::new().evict_before_drain(1));
            }
        }
    }
    service.drain();

    // Accounting balances: everything admitted was drained exactly once.
    let stats = service.stats();
    prop_assert_eq!(stats.submitted, admitted);
    prop_assert_eq!(
        stats.completed,
        admitted,
        "drained-request accounting must balance: {stats:?}"
    );
    // And every ticket resolves — success, or a typed error earned by an
    // injected fault; an unresolved ticket would time out here.
    for (i, ticket) in pending.into_iter().enumerate() {
        match ticket.wait_timeout(RESOLVE_BOUND) {
            Ok(x) => {
                prop_assert!(x.iter().all(|v| v.is_finite()), "request {i}: NaN escaped");
            }
            Err(ServeError::Timeout { .. }) => panic!("request {i} never resolved (hang)"),
            Err(_) => {} // typed failure attributed to this request
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn random_queue_cache_interleavings_hold_the_invariants(
        seed in 0u64..10_000,
        ops in 20usize..60,
    ) {
        queue_cache_interleaving(seed, ops);
    }

    #[test]
    fn random_service_schedules_with_faults_stay_accounted(
        seed in 0u64..10_000,
        ops in 20usize..50,
    ) {
        service_interleaving_with_faults(seed, ops);
    }
}
