//! # hodlr-serve — multi-tenant solve serving on cached factorizations
//!
//! The paper's economics (factorize once at `O(N log^2 N)`, then solve at
//! `O(N log N)` per right-hand side, many right-hand sides per blocked
//! launch) are exactly the economics of a serving system.  This crate
//! turns them into one:
//!
//! * [`FactorCache`] — factorizations keyed by
//!   `(source-id, tree policy, tolerance, backend, precision)`
//!   ([`CacheKey`]), with LRU + memory-budget eviction and explicit
//!   [`CacheStats`] (hits / misses / evictions / resident bytes).
//! * [`CoalesceQueue`] — single-RHS arrivals against the same cached
//!   factorization are packed into one blocked
//!   [`solve_block`](hodlr::Solve::solve_block) per drain cycle, so
//!   launches-per-request drops below 1 under load.
//! * [`ServeError`] — a typed per-request error path
//!   ([`HodlrError`](hodlr::HodlrError) wrapped, plus `QueueFull` /
//!   `Evicted` / `Timeout` / `InvalidRhs` / `BuilderPanic` /
//!   `CircuitOpen` / `SuspectSolution`): a failed coalesced launch is
//!   retried member by member, so one bad tenant cannot poison a batch.
//! * [`SolveService`] — the front door tying the three together behind a
//!   `&self`, `Send + Sync` API.
//!
//! ## Failure model
//!
//! Every drained solution is **verified** with a scaled-residual check
//! (one blocked HODLR matvec per coalesced group, amortized like the
//! solve itself).  Faulted, [`Suspect`](hodlr::SolveVerdict::Suspect) or
//! non-finite results escalate through a bounded **degradation ladder**
//! — re-solve, quarantine + rebuild, tighter-tolerance rebuild, iterative
//! refinement, preconditioned GMRES — configured by [`DegradeConfig`];
//! tenants whose requests repeatedly exhaust the ladder trip a per-tenant
//! **circuit breaker**.  Right-hand sides are validated at admission and
//! tenant-builder panics are caught at the service boundary, so no
//! request can poison a batch or unwind across the service.
//!
//! For testing the ladder end to end there are two deterministic fault
//! injectors: device-level fault plans
//! ([`FaultPlan`](hodlr_batch::FaultPlan): fail / poison / delay the k-th
//! kernel launch) armed on any entry's device, and serve-level plans
//! ([`ServeFaultPlan`]: flush the cache or stall before the k-th drain)
//! armed on the service.  Both are schedule-addressable and replay
//! bitwise for a fixed plan; with no plan armed, the fault hooks are a
//! single relaxed atomic load.
//!
//! ## Determinism under concurrent traffic
//!
//! Results are bitwise independent of batching and thread schedule: the
//! blocked solve computes column `j` exactly as a single-column solve of
//! the same right-hand side would, groups are formed in first-arrival
//! order, and cache recency is a logical tick counter (no wall-clock
//! input).  The only schedule-dependent quantities are *metrics* (hit
//! rates, launch counts), never solutions.
//!
//! ```
//! use hodlr::prelude::*;
//! use hodlr_serve::{CacheKey, ServeConfig, SolveService};
//!
//! let service = SolveService::<f64>::new(ServeConfig::default());
//! let key = CacheKey::new(
//!     "demo-v1",
//!     &TreePolicy::LeafSize(32),
//!     1e-10,
//!     Backend::Batched,
//!     Precision::Full,
//! );
//! service.register_tenant("demo", key, || {
//!     let source = ClosureSource::new(128, 128, |i, j| {
//!         let d = (i as f64 - j as f64).abs() / 128.0;
//!         1.0 / (1.0 + 8.0 * d) + if i == j { 4.0 } else { 0.0 }
//!     });
//!     Hodlr::builder()
//!         .source(&source)
//!         .leaf_size(32)
//!         .tolerance(1e-10)
//!         .backend(Backend::Batched)
//!         .build()
//! });
//!
//! // Many single-RHS submissions, one coalesced launch sequence.
//! let tickets: Vec<_> = (0..8)
//!     .map(|s| {
//!         let rhs: Vec<f64> = (0..128).map(|i| ((i + s) as f64).sin()).collect();
//!         service.submit("demo", rhs).unwrap()
//!     })
//!     .collect();
//! let report = service.drain();
//! assert_eq!(report.requests, 8);
//! assert_eq!(report.groups, 1);
//! for t in tickets {
//!     assert!(t.wait().unwrap().iter().all(|v| v.is_finite()));
//! }
//! assert!(service.stats().launches_per_request() < 1.0);
//! ```

pub mod cache;
pub mod coalesce;
pub mod degrade;
pub mod entry;
pub mod error;
pub mod fault;
pub mod key;
pub mod service;

pub use cache::{CacheConfig, CacheStats, FactorCache};
pub use coalesce::{CoalesceQueue, DrainReport, GroupOutcome, Ticket};
pub use degrade::DegradeConfig;
pub use entry::CachedFactorization;
pub use error::ServeError;
pub use fault::{ServeFaultAction, ServeFaultEvent, ServeFaultPlan};
pub use key::{CacheKey, TreeKey};
pub use service::{ServeConfig, ServeStats, SolveService};

// The cache entry is the type that crosses threads inside Arcs; its
// Send/Sync is a hard requirement, not an accident of today's fields.
const _: () = {
    const fn assert_send_sync<S: Send + Sync>() {}
    assert_send_sync::<CachedFactorization<f64>>();
    assert_send_sync::<CachedFactorization<hodlr_la::Complex64>>();
    assert_send_sync::<FactorCache<f64>>();
    assert_send_sync::<Ticket<f64>>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use hodlr::prelude::*;
    use hodlr::Precision as FacadePrecision;
    use hodlr_batch::FaultPlan;
    use std::sync::Arc;
    use std::time::Duration;

    const N: usize = 128;

    fn demo_key(id: &str, backend: Backend) -> CacheKey {
        CacheKey::new(
            id,
            &TreePolicy::LeafSize(32),
            1e-10,
            backend,
            FacadePrecision::Full,
        )
    }

    fn register_demo(service: &SolveService<f64>, name: &str, backend: Backend, shift: f64) {
        service.register_tenant(name, demo_key(name, backend), move || {
            let source = ClosureSource::new(N, N, move |i, j| {
                let d = (i as f64 - j as f64).abs() / N as f64;
                1.0 / (1.0 + 8.0 * d) + if i == j { 4.0 + shift } else { 0.0 }
            });
            Hodlr::builder()
                .source(&source)
                .leaf_size(32)
                .tolerance(1e-10)
                .backend(backend)
                .build()
        });
    }

    fn rhs(seed: usize) -> Vec<f64> {
        (0..N)
            .map(|i| ((i * 7 + seed * 13) as f64 * 0.01).sin())
            .collect()
    }

    #[test]
    fn coalesced_results_match_individual_solves_bitwise() {
        for backend in [Backend::Serial, Backend::Batched] {
            let service = SolveService::<f64>::new(ServeConfig::default());
            register_demo(&service, "a", backend, 0.0);

            // Individual baseline, one request per drain.
            let singles: Vec<Vec<f64>> = (0..6)
                .map(|s| service.solve_now("a", &rhs(s)).unwrap())
                .collect();

            // Coalesced: all six in one drain cycle.
            let tickets: Vec<_> = (0..6)
                .map(|s| service.submit("a", rhs(s)).unwrap())
                .collect();
            let report = service.drain();
            assert_eq!((report.requests, report.groups), (6, 1));
            for (ticket, single) in tickets.into_iter().zip(&singles) {
                let coalesced = ticket.wait().unwrap();
                assert_eq!(&coalesced, single, "{backend:?}: batching changed bits");
            }
        }
    }

    #[test]
    fn coalescing_amortizes_launches() {
        let service = SolveService::<f64>::new(ServeConfig::default());
        register_demo(&service, "a", Backend::Batched, 0.0);

        // Baseline: one request, one drain.
        service.solve_now("a", &rhs(0)).unwrap();
        let solo_launches = service.stats().launches;
        assert!(solo_launches > 0);

        // A burst bigger than the per-solve launch count in one drain.
        let burst = (solo_launches as usize) * 2;
        let tickets: Vec<_> = (0..burst)
            .map(|s| service.submit("a", rhs(s)).unwrap())
            .collect();
        let report = service.drain();
        assert_eq!(report.groups, 1);
        assert!(
            report.launches < burst as u64,
            "coalesced {} requests cost {} launches",
            burst,
            report.launches
        );
        for t in tickets {
            t.wait().unwrap();
        }
    }

    #[test]
    fn distinct_tenants_form_distinct_groups() {
        let service = SolveService::<f64>::new(ServeConfig::default());
        register_demo(&service, "a", Backend::Batched, 0.0);
        register_demo(&service, "b", Backend::Batched, 1.0);
        let ta = service.submit("a", rhs(1)).unwrap();
        let tb = service.submit("b", rhs(2)).unwrap();
        let ta2 = service.submit("a", rhs(3)).unwrap();
        let report = service.drain();
        assert_eq!((report.requests, report.groups), (3, 2));
        for t in [ta, tb, ta2] {
            t.wait().unwrap();
        }
        assert_eq!(service.cache_stats().resident_entries, 2);
    }

    #[test]
    fn failed_coalesced_launch_retries_and_attributes() {
        // A mixed-precision entry with a NaN right-hand side in the
        // batch: the blocked refinement fails as a whole, the drain must
        // retry members individually, and only the poisoned request may
        // see an error.  (The service front door rejects non-finite
        // right-hand sides at admission, so this exercises the queue's
        // own attribution path directly.)
        let source = ClosureSource::new(N, N, |i, j| {
            let d = (i as f64 - j as f64).abs() / N as f64;
            1.0 / (1.0 + 8.0 * d) + if i == j { 4.0 } else { 0.0 }
        });
        let hodlr = Hodlr::builder()
            .source(&source)
            .leaf_size(32)
            .tolerance(1e-10)
            .backend(Backend::Serial)
            .precision(FacadePrecision::MixedRefine)
            .build()
            .unwrap();
        let entry = Arc::new(CachedFactorization::build(hodlr).unwrap());
        let key = CacheKey::new(
            "mixed-v1",
            &TreePolicy::LeafSize(32),
            1e-10,
            Backend::Serial,
            FacadePrecision::MixedRefine,
        );
        let queue = CoalesceQueue::<f64>::new(16);

        let good_before = queue
            .submit(key.clone(), Arc::clone(&entry), rhs(1))
            .unwrap();
        let mut poison = rhs(2);
        poison[0] = f64::NAN;
        let bad = queue
            .submit(key.clone(), Arc::clone(&entry), poison)
            .unwrap();
        let good_after = queue.submit(key, entry, rhs(3)).unwrap();

        let report = queue.drain();
        assert_eq!(report.requests, 3);
        assert_eq!(report.retried, 3, "whole group retried individually");
        assert_eq!(report.failed, 1, "only the poisoned member fails");

        assert!(good_before.wait().is_ok());
        assert!(good_after.wait().is_ok());
        match bad.wait() {
            Err(ServeError::Solver(HodlrError::NonConvergence { .. })) => {}
            other => panic!("poisoned request must fail as its own NonConvergence, got {other:?}"),
        }
    }

    #[test]
    fn same_key_different_entries_never_share_a_block() {
        // Two submissions can share a cache key yet have resolved to
        // different entries (an eviction + rebuild between their
        // submits).  Drain must group by entry identity, not key alone:
        // each request solves against its own operator — no panic on
        // mismatched dimensions, no neighbour's matrix.
        let build = |n: usize| {
            let source = ClosureSource::new(n, n, move |i, j| {
                let d = (i as f64 - j as f64).abs() / n as f64;
                1.0 / (1.0 + 8.0 * d) + if i == j { 4.0 } else { 0.0 }
            });
            let hodlr = Hodlr::builder()
                .source(&source)
                .leaf_size(32)
                .tolerance(1e-10)
                .build()
                .unwrap();
            Arc::new(CachedFactorization::build(hodlr).unwrap())
        };
        let queue = CoalesceQueue::<f64>::new(16);
        let key = demo_key("shared", Backend::Serial);
        let small = build(64);
        let big = build(96);
        let t_small = queue
            .submit(key.clone(), Arc::clone(&small), vec![1.0; 64])
            .unwrap();
        let t_big = queue
            .submit(key.clone(), Arc::clone(&big), vec![1.0; 96])
            .unwrap();
        let t_small2 = queue.submit(key, small, vec![2.0; 64]).unwrap();
        let report = queue.drain();
        assert_eq!(report.requests, 3);
        assert_eq!(
            report.groups, 2,
            "distinct entries under one key must form distinct groups"
        );
        assert_eq!(report.failed, 0);
        assert_eq!(t_small.wait().unwrap().len(), 64);
        assert_eq!(t_big.wait().unwrap().len(), 96);
        assert_eq!(t_small2.wait().unwrap().len(), 64);
    }

    #[test]
    fn queue_full_is_backpressure_not_failure() {
        let service = SolveService::<f64>::new(ServeConfig {
            queue_capacity: 2,
            ..ServeConfig::default()
        });
        register_demo(&service, "a", Backend::Serial, 0.0);
        let t1 = service.submit("a", rhs(1)).unwrap();
        let t2 = service.submit("a", rhs(2)).unwrap();
        match service.submit("a", rhs(3)) {
            Err(ServeError::QueueFull { capacity: 2 }) => {}
            other => panic!("expected QueueFull, got {other:?}"),
        }
        service.drain();
        assert!(t1.wait().is_ok() && t2.wait().is_ok());
        // Capacity freed; admission works again.
        assert!(service.submit("a", rhs(4)).is_ok());
    }

    #[test]
    fn wrong_dimension_is_rejected_at_admission() {
        let service = SolveService::<f64>::new(ServeConfig::default());
        register_demo(&service, "a", Backend::Serial, 0.0);
        match service.submit("a", vec![1.0; N + 1]) {
            Err(ServeError::Solver(HodlrError::DimensionMismatch { .. })) => {}
            other => panic!("expected DimensionMismatch, got {other:?}"),
        }
        assert_eq!(service.queued(), 0, "malformed request never enqueued");
    }

    #[test]
    fn non_finite_rhs_is_rejected_at_admission() {
        let service = SolveService::<f64>::new(ServeConfig::default());
        register_demo(&service, "a", Backend::Serial, 0.0);
        let mut poisoned = rhs(0);
        poisoned[17] = f64::NAN;
        match service.submit("a", poisoned) {
            Err(ServeError::InvalidRhs { index: 17 }) => {}
            other => panic!("expected InvalidRhs {{ index: 17 }}, got {other:?}"),
        }
        let mut poisoned = rhs(1);
        poisoned[3] = f64::INFINITY;
        assert!(matches!(
            service.submit("a", poisoned),
            Err(ServeError::InvalidRhs { index: 3 })
        ));
        assert_eq!(service.queued(), 0, "poisoned request never enqueued");
        // The service stays healthy for clean traffic.
        assert!(service.solve_now("a", &rhs(2)).is_ok());
    }

    #[test]
    fn unknown_tenant_is_a_typed_config_error() {
        let service = SolveService::<f64>::new(ServeConfig::default());
        match service.submit("ghost", rhs(0)) {
            Err(ServeError::Solver(HodlrError::InvalidConfig { .. })) => {}
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
    }

    #[test]
    fn ticket_timeout_before_drain_cancels_the_request() {
        let service = SolveService::<f64>::new(ServeConfig::default());
        register_demo(&service, "a", Backend::Serial, 0.0);
        let ticket = service.submit("a", rhs(0)).unwrap();
        match ticket.wait_timeout(Duration::from_millis(1)) {
            Err(ServeError::Timeout { .. }) => {}
            other => panic!("expected Timeout, got {other:?}"),
        }
        // The abandoned request is dropped at the next drain — never
        // solved, never dangling.
        let report = service.drain();
        assert_eq!(report.requests, 1);
        assert_eq!(report.cancelled, 1, "timed-out request must be cancelled");
        assert_eq!(report.groups, 0, "cancelled request must not cost a solve");
        assert_eq!(service.stats().cancelled, 1);
        // Fresh traffic is unaffected.
        assert!(service.solve_now("a", &rhs(1)).is_ok());
    }

    #[test]
    fn ticket_timeout_during_drain_discards_the_result() {
        // A delay fault keeps the drain busy long enough for the waiter
        // to give up mid-solve; the solved result must be discarded (and
        // counted), not delivered into a slot nobody will read.
        let service = Arc::new(SolveService::<f64>::new(ServeConfig::default()));
        register_demo(&service, "a", Backend::Batched, 0.0);
        service.solve_now("a", &rhs(0)).unwrap(); // warm the cache
        let entry = service
            .cache()
            .get(&demo_key("a", Backend::Batched))
            .unwrap();
        entry
            .hodlr()
            .device()
            .arm_faults(FaultPlan::new().delay_launch(1, 400_000));

        let ticket = service.submit("a", rhs(1)).unwrap();
        let drainer = {
            let service = Arc::clone(&service);
            std::thread::spawn(move || service.drain())
        };
        // Give the drain a head start into the delayed solve, then give up
        // long before the 400ms delay elapses.
        std::thread::sleep(Duration::from_millis(50));
        match ticket.wait_timeout(Duration::from_millis(10)) {
            Err(ServeError::Timeout { .. }) => {}
            other => panic!("expected Timeout, got {other:?}"),
        }
        let report = drainer.join().unwrap();
        assert_eq!(report.cancelled, 1, "abandoned result must be discarded");
        let events = entry.hodlr().device().disarm_faults();
        assert!(!events.is_empty(), "the delay fault must have fired");
        // The service stays healthy.
        assert!(service.solve_now("a", &rhs(2)).is_ok());
    }

    #[test]
    fn builder_panic_is_caught_and_typed() {
        let service = SolveService::<f64>::new(ServeConfig::default());
        service.register_tenant("explosive", demo_key("explosive", Backend::Serial), || {
            panic!("boom: synthetic builder failure")
        });
        match service.submit("explosive", rhs(0)) {
            Err(ServeError::BuilderPanic { message }) => {
                assert!(message.contains("boom"), "payload preserved: {message}")
            }
            other => panic!("expected BuilderPanic, got {other:?}"),
        }
        // The panic never unwound across the service; other tenants work.
        register_demo(&service, "a", Backend::Serial, 0.0);
        assert!(service.solve_now("a", &rhs(1)).is_ok());
    }

    #[test]
    fn poisoned_launch_recovers_via_the_ladder() {
        // Poison the first kernel launch of the next drain: the blocked
        // solve comes back NaN, verification flags it, and the ladder's
        // first rung (a clean re-solve) recovers the exact answer.
        let service = SolveService::<f64>::new(ServeConfig::default());
        register_demo(&service, "a", Backend::Batched, 0.0);
        let baseline = service.solve_now("a", &rhs(5)).unwrap();
        let entry = service
            .cache()
            .get(&demo_key("a", Backend::Batched))
            .unwrap();
        entry
            .hodlr()
            .device()
            .arm_faults(FaultPlan::new().poison_launch(1));

        let ticket = service.submit("a", rhs(5)).unwrap();
        let report = service.drain();
        assert_eq!(report.failed, 0, "the fault must be absorbed, not surfaced");
        assert_eq!(report.recovered, 1);
        assert!(report.ladder_retries >= 1);
        let recovered = ticket.wait().unwrap();
        assert_eq!(recovered, baseline, "recovery must reproduce exact bits");

        let stats = service.stats();
        assert_eq!((stats.recovered, stats.failed), (1, 0));
        assert!(!entry.hodlr().device().disarm_faults().is_empty());
    }

    #[test]
    fn persistent_poison_trips_the_breaker_and_cools_down() {
        // A tenant whose device poisons *every* launch — rebuilds
        // included — exhausts the ladder on each request.  After the
        // third consecutive exhausted request the circuit breaker opens,
        // rejects submits for the cooldown, then half-opens.
        let service = SolveService::<f64>::new(ServeConfig::default());
        let key = demo_key("cursed", Backend::Batched);
        service.register_tenant("cursed", key, || {
            let source = ClosureSource::new(N, N, |i, j| {
                let d = (i as f64 - j as f64).abs() / N as f64;
                1.0 / (1.0 + 8.0 * d) + if i == j { 4.0 } else { 0.0 }
            });
            let hodlr = Hodlr::builder()
                .source(&source)
                .leaf_size(32)
                .tolerance(1e-10)
                .backend(Backend::Batched)
                .build()?;
            // Simulate a persistently broken device: every launch for the
            // life of this factorization yields NaN.
            hodlr
                .device()
                .arm_faults(FaultPlan::new().poison_range(1, 100_000));
            Ok(hodlr)
        });

        for round in 0..3 {
            let ticket = service.submit("cursed", rhs(round)).unwrap();
            let report = service.drain();
            assert_eq!(report.failed, 1, "round {round} must exhaust the ladder");
            match ticket.wait() {
                Err(ServeError::SuspectSolution { .. }) => {}
                other => panic!("round {round}: expected SuspectSolution, got {other:?}"),
            }
        }
        let stats = service.stats();
        assert_eq!(stats.breaker_trips, 1, "third failure trips the breaker");
        assert!(
            stats.quarantined >= 1,
            "poisoned entries must be quarantined"
        );
        assert!(stats.ladder_retries >= 3);
        assert_eq!(stats.recovered, 0);

        // Open: submits are rejected with a typed, time-bounded error.
        match service.submit("cursed", rhs(9)) {
            Err(ServeError::CircuitOpen { failures: 3, .. }) => {}
            other => panic!("expected CircuitOpen, got {other:?}"),
        }
        // Cool down (empty drains advance the clock), then half-open
        // admits traffic again.
        service.drain();
        assert!(
            service.submit("cursed", rhs(10)).is_ok(),
            "cooldown elapsed: the breaker must half-open"
        );
        service.drain();

        // A healthy tenant is never affected by the cursed one's breaker.
        register_demo(&service, "a", Backend::Serial, 0.0);
        assert!(service.solve_now("a", &rhs(0)).is_ok());
    }

    #[test]
    fn serve_faults_evict_and_stall_deterministically() {
        let service = SolveService::<f64>::new(ServeConfig::default());
        register_demo(&service, "a", Backend::Serial, 0.0);
        service.solve_now("a", &rhs(0)).unwrap(); // warm: one resident entry
        service.arm_faults(
            ServeFaultPlan::new()
                .evict_before_drain(1)
                .stall_drain(2, 500),
        );

        // Drain 1: the whole cache is flushed mid-flight; the queued
        // request still resolves (it holds its entry by Arc).
        let ticket = service.submit("a", rhs(1)).unwrap();
        let report = service.drain();
        assert_eq!((report.requests, report.failed), (1, 0));
        assert!(
            ticket.wait().is_ok(),
            "in-flight request survives the flush"
        );
        assert_eq!(service.cache_stats().resident_entries, 0);

        // Drain 2 (stalled): the next submit rebuilds transparently.
        let ticket = service.submit("a", rhs(2)).unwrap();
        service.drain();
        assert!(ticket.wait().is_ok());
        assert_eq!(service.cache_stats().inserts, 2);

        let events = service.disarm_faults();
        assert_eq!(events.len(), 2, "both scheduled faults fired: {events:?}");
        assert_eq!(
            (events[0].drain, events[0].action),
            (1, ServeFaultAction::EvictAll)
        );
        assert_eq!(events[1].drain, 2);
        assert!(matches!(
            events[1].action,
            ServeFaultAction::Stall { micros: 500 }
        ));
        assert!(service.fault_events().is_empty(), "disarm clears the plan");
    }

    #[test]
    fn cold_build_does_not_block_other_tenants() {
        // One tenant's expensive cold build must not hold the tenant
        // registry hostage: while it runs, other tenants' submits and new
        // registrations proceed.  The slow builder parks on a barrier; if
        // submit still held the registry lock across the build, the warm
        // solve below would deadlock instead of completing.
        use std::sync::Barrier;

        let service = Arc::new(SolveService::<f64>::new(ServeConfig::default()));
        register_demo(&service, "warm", Backend::Serial, 0.0);
        service.solve_now("warm", &rhs(0)).unwrap();

        let entered = Arc::new(Barrier::new(2));
        let release = Arc::new(Barrier::new(2));
        {
            let entered = Arc::clone(&entered);
            let release = Arc::clone(&release);
            service.register_tenant("slow", demo_key("slow", Backend::Serial), move || {
                entered.wait();
                release.wait();
                let source = ClosureSource::new(N, N, |i, j| {
                    let d = (i as f64 - j as f64).abs() / N as f64;
                    1.0 / (1.0 + 8.0 * d) + if i == j { 4.0 } else { 0.0 }
                });
                Hodlr::builder()
                    .source(&source)
                    .leaf_size(32)
                    .tolerance(1e-10)
                    .build()
            });
        }

        let cold = {
            let service = Arc::clone(&service);
            std::thread::spawn(move || service.submit("slow", rhs(1)).unwrap())
        };
        entered.wait(); // the cold build is now in flight

        // Must complete while the cold build is parked.
        service.solve_now("warm", &rhs(2)).unwrap();
        register_demo(&service, "late", Backend::Serial, 1.0);
        service.solve_now("late", &rhs(3)).unwrap();

        release.wait();
        let ticket = cold.join().unwrap();
        service.drain();
        assert!(ticket
            .try_take()
            .expect("drain serves the cold request")
            .is_ok());
    }

    #[test]
    fn warm_traffic_hits_the_cache() {
        let service = SolveService::<f64>::new(ServeConfig::default());
        register_demo(&service, "a", Backend::Batched, 0.0);
        for round in 0..10 {
            let t = service.submit("a", rhs(round)).unwrap();
            service.drain();
            t.wait().unwrap();
        }
        let stats = service.cache_stats();
        assert!(
            stats.hit_rate() > 0.5,
            "10 rounds against one tenant must be warm: {stats:?}"
        );
        assert_eq!(stats.inserts, 1);
    }

    #[test]
    fn concurrent_submitters_get_bitwise_identical_answers() {
        let service = Arc::new(SolveService::<f64>::new(ServeConfig::default()));
        register_demo(&service, "a", Backend::Batched, 0.0);
        let baseline: Vec<Vec<f64>> = (0..8)
            .map(|s| service.solve_now("a", &rhs(s)).unwrap())
            .collect();

        let mut handles = Vec::new();
        for s in 0..8 {
            let service = Arc::clone(&service);
            handles.push(std::thread::spawn(move || {
                let ticket = service.submit("a", rhs(s)).unwrap();
                // Every thread may drain; cycles are serialized internally
                // and each ticket resolves exactly once.
                service.drain();
                ticket.wait().unwrap()
            }));
        }
        for (s, handle) in handles.into_iter().enumerate() {
            let got = handle.join().unwrap();
            assert_eq!(
                got, baseline[s],
                "thread schedule changed request {s}'s bits"
            );
        }
    }
}
