//! The per-request error type of the service layer.

use hodlr_la::HodlrError;
use std::fmt;

/// Why one request failed — typed, so one bad tenant cannot poison a
/// coalesced batch anonymously.
///
/// Wraps the workspace-wide [`HodlrError`] for solver failures and adds the
/// service-layer conditions: admission backpressure ([`QueueFull`]),
/// cache-budget rejection ([`Evicted`]) and a caller-side wait bound
/// ([`Timeout`]).  Every variant is attributed to exactly one request:
/// when a coalesced `solve_block` launch fails, the drain cycle retries
/// its members individually so each ticket resolves to its *own* error
/// (or success), never to a neighbour's.
///
/// [`QueueFull`]: ServeError::QueueFull
/// [`Evicted`]: ServeError::Evicted
/// [`Timeout`]: ServeError::Timeout
#[derive(Clone, Debug, PartialEq)]
pub enum ServeError {
    /// The underlying solver failed for this request's right-hand side
    /// (dimension mismatch, singular pivot, non-convergence, ...).
    Solver(HodlrError),
    /// The coalescing queue is at capacity; the request was rejected at
    /// admission (backpressure, not an error of the solve itself).
    QueueFull {
        /// The configured queue capacity that was hit.
        capacity: usize,
    },
    /// The factorization cannot be resident: it is larger than the cache's
    /// entire memory budget, so admission was refused.
    Evicted {
        /// Resident size the factorization would occupy.
        bytes: u64,
        /// The cache's total memory budget.
        budget_bytes: u64,
    },
    /// The caller's wait bound elapsed before the request was drained.
    /// The request is **cancelled**: it is removed from the pending queue
    /// (or its result discarded if a drain was already solving it), so a
    /// timed-out caller never leaks work into later drains.
    Timeout {
        /// How long the caller waited, in milliseconds.
        waited_ms: u64,
    },
    /// The submitted right-hand side contains a non-finite entry; rejected
    /// at admission so it can never poison a coalesced batch.
    InvalidRhs {
        /// Index of the first non-finite entry in the right-hand side.
        index: usize,
    },
    /// The tenant's factorization builder panicked; the panic was caught
    /// at the service boundary and attributed to this request.
    BuilderPanic {
        /// The panic payload, when it was a string.
        message: String,
    },
    /// The tenant's circuit breaker is open after repeated unrecoverable
    /// solve failures; requests are rejected at admission until the
    /// cooldown elapses.
    CircuitOpen {
        /// Consecutive ladder-exhausted failures that tripped the breaker.
        failures: u32,
        /// The drain ordinal at which the breaker half-opens again.
        until_drain: u64,
    },
    /// The degradation ladder was exhausted without producing a verified
    /// solution; the last verdict's evidence is attached.
    SuspectSolution {
        /// The scaled residual of the best candidate solution.
        residual: f64,
        /// Condition estimate `κ₁(A)` of the operator (`INFINITY` when the
        /// estimate itself failed or the candidate was non-finite).
        cond_est: f64,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Solver(e) => write!(f, "solver error: {e}"),
            ServeError::QueueFull { capacity } => {
                write!(f, "coalescing queue is full ({capacity} requests)")
            }
            ServeError::Evicted {
                bytes,
                budget_bytes,
            } => write!(
                f,
                "factorization of {bytes} bytes exceeds the cache budget of \
                 {budget_bytes} bytes"
            ),
            ServeError::Timeout { waited_ms } => {
                write!(f, "request not served within {waited_ms} ms")
            }
            ServeError::InvalidRhs { index } => {
                write!(f, "right-hand side entry {index} is not finite")
            }
            ServeError::BuilderPanic { message } => {
                write!(f, "tenant builder panicked: {message}")
            }
            ServeError::CircuitOpen {
                failures,
                until_drain,
            } => write!(
                f,
                "circuit breaker open after {failures} consecutive failures \
                 (closed again at drain #{until_drain})"
            ),
            ServeError::SuspectSolution { residual, cond_est } => write!(
                f,
                "degradation ladder exhausted: best scaled residual {residual:e} \
                 (condition estimate {cond_est:e})"
            ),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Solver(e) => Some(e),
            _ => None,
        }
    }
}

impl From<HodlrError> for ServeError {
    fn from(e: HodlrError) -> Self {
        ServeError::Solver(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_name_the_condition() {
        let e = ServeError::from(HodlrError::config("bad tenant"));
        assert!(e.to_string().contains("bad tenant"));
        assert!(ServeError::QueueFull { capacity: 8 }
            .to_string()
            .contains("8"));
        let e = ServeError::Evicted {
            bytes: 100,
            budget_bytes: 10,
        };
        assert!(e.to_string().contains("100") && e.to_string().contains("10"));
        assert!(ServeError::Timeout { waited_ms: 5 }
            .to_string()
            .contains("5 ms"));
    }

    #[test]
    fn solver_errors_keep_their_source() {
        use std::error::Error;
        let e = ServeError::from(HodlrError::config("x"));
        assert!(e.source().is_some());
        assert!(ServeError::QueueFull { capacity: 1 }.source().is_none());
    }
}
