//! The factorization cache: LRU + memory-budget eviction over
//! [`CachedFactorization`] entries.
//!
//! This generalizes `GridScan`'s reuse-one-compression trick — the paper's
//! economics say a factorization costs `O(N log^2 N)` and a solve only
//! `O(N log N)`, so amortizing one factorization across many requests is
//! the whole ballgame — into a reusable subsystem with explicit
//! observability ([`CacheStats`]).
//!
//! Recency is tracked with a logical tick counter, not wall-clock time, so
//! cache behaviour is a pure function of the request sequence — part of
//! the serve layer's determinism contract.

use crate::entry::{build_entry, CachedFactorization};
use crate::{CacheKey, ServeError};
use hodlr::{Hodlr, SolveScalar};
use hodlr_la::HodlrError;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Sizing knobs of a [`FactorCache`].
#[derive(Copy, Clone, Debug)]
pub struct CacheConfig {
    /// Maximum number of resident factorizations.
    pub max_entries: usize,
    /// Total resident-byte budget across all entries (factor payload plus
    /// the compressed matrices kept alive); admission refuses any single
    /// entry larger than this.
    pub memory_budget_bytes: u64,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            max_entries: 32,
            memory_budget_bytes: 2 << 30,
        }
    }
}

/// Cache observability: every request accounted for as a hit or a miss.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served by a resident factorization.
    pub hits: u64,
    /// Lookups that had to build (or wait for) a factorization.
    pub misses: u64,
    /// Entries pushed out by LRU / memory-budget pressure.
    pub evictions: u64,
    /// Factorizations inserted over the cache's lifetime.
    pub inserts: u64,
    /// Bytes currently charged against the budget.
    pub resident_bytes: u64,
    /// Entries currently resident.
    pub resident_entries: usize,
}

impl CacheStats {
    /// Fraction of lookups served from cache; 0 when nothing was looked
    /// up yet.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Slot<T: SolveScalar> {
    entry: Arc<CachedFactorization<T>>,
    last_used: u64,
}

struct CacheInner<T: SolveScalar> {
    entries: HashMap<CacheKey, Slot<T>>,
    /// Logical clock, bumped on every touch; drives LRU ordering.
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    inserts: u64,
    resident_bytes: u64,
}

/// A keyed cache of owned factorizations with LRU + memory-budget
/// eviction.
///
/// All entry points take `&self`; interior state lives behind one mutex
/// held only for map bookkeeping — factorization *builds* (the expensive
/// part) run outside the lock, with a double-check on insert so two
/// threads racing on the same key keep the first completed build.
pub struct FactorCache<T: SolveScalar> {
    inner: Mutex<CacheInner<T>>,
    config: CacheConfig,
}

impl<T: SolveScalar> FactorCache<T> {
    /// An empty cache with the given budget.
    pub fn new(config: CacheConfig) -> Self {
        FactorCache {
            inner: Mutex::new(CacheInner {
                entries: HashMap::new(),
                tick: 0,
                hits: 0,
                misses: 0,
                evictions: 0,
                inserts: 0,
                resident_bytes: 0,
            }),
            config,
        }
    }

    /// The configured budget.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Look up a resident factorization, bumping its recency.  Counts a
    /// hit or a miss.
    pub fn get(&self, key: &CacheKey) -> Option<Arc<CachedFactorization<T>>> {
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        let found = inner.entries.get_mut(key).map(|slot| {
            slot.last_used = tick;
            Arc::clone(&slot.entry)
        });
        match found {
            Some(entry) => {
                inner.hits += 1;
                Some(entry)
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// The workhorse: return the resident factorization for `key`, or
    /// build one with `build`, insert it, and return it.
    ///
    /// The build runs outside the cache lock.  When two threads race on
    /// the same cold key both may build; the loser's work is discarded in
    /// favour of the already-inserted entry, so callers always observe one
    /// factorization per key.
    ///
    /// # Errors
    /// [`ServeError::Solver`] from the builder or factorization, and
    /// [`ServeError::Evicted`] when the finished entry alone exceeds the
    /// memory budget (it can never be resident).
    pub fn get_or_build(
        &self,
        key: &CacheKey,
        build: impl FnOnce() -> Result<Hodlr<T>, HodlrError>,
    ) -> Result<Arc<CachedFactorization<T>>, ServeError> {
        if let Some(entry) = self.get(key) {
            return Ok(entry);
        }
        let entry = build_entry(build)?;
        self.insert(key.clone(), entry)
    }

    /// Insert a pre-built entry, evicting LRU entries until it fits.
    ///
    /// If another thread inserted the same key in the meantime, the
    /// existing entry wins and `entry` is dropped.
    ///
    /// # Errors
    /// [`ServeError::Evicted`] when `entry` exceeds the whole budget.
    pub fn insert(
        &self,
        key: CacheKey,
        entry: CachedFactorization<T>,
    ) -> Result<Arc<CachedFactorization<T>>, ServeError> {
        let bytes = entry.bytes();
        if bytes > self.config.memory_budget_bytes {
            return Err(ServeError::Evicted {
                bytes,
                budget_bytes: self.config.memory_budget_bytes,
            });
        }
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(slot) = inner.entries.get_mut(&key) {
            // Lost a build race; the resident entry stays.
            slot.last_used = tick;
            return Ok(Arc::clone(&slot.entry));
        }
        self.evict_to_fit(&mut inner, bytes);
        let entry = Arc::new(entry);
        inner.resident_bytes += bytes;
        inner.inserts += 1;
        inner.entries.insert(
            key,
            Slot {
                entry: Arc::clone(&entry),
                last_used: tick,
            },
        );
        Ok(entry)
    }

    /// Drop the least-recently-used entries until both the entry count and
    /// the byte budget can absorb `incoming_bytes`.
    fn evict_to_fit(&self, inner: &mut CacheInner<T>, incoming_bytes: u64) {
        while inner.entries.len() >= self.config.max_entries
            || inner.resident_bytes + incoming_bytes > self.config.memory_budget_bytes
        {
            let victim = inner
                .entries
                .iter()
                .min_by_key(|(_, slot)| slot.last_used)
                .map(|(key, _)| key.clone());
            let Some(victim) = victim else { break };
            // In-flight Arcs keep an evicted factorization alive until the
            // last request against it completes; the cache just stops
            // charging it against the budget and stops handing it out.
            let slot = inner.entries.remove(&victim).expect("victim is resident");
            inner.resident_bytes -= slot.entry.bytes();
            inner.evictions += 1;
        }
    }

    /// Remove `key`'s resident entry **only if** it is still the given
    /// one (pointer identity) — the quarantine primitive: a drain that
    /// decides an entry produced garbage must not evict a replacement
    /// that a concurrent rebuild already installed.
    ///
    /// Returns whether an entry was removed.  In-flight `Arc`s keep the
    /// quarantined factorization alive; the cache merely stops handing it
    /// out and stops charging it against the budget.
    pub fn remove_entry(&self, key: &CacheKey, entry: &Arc<CachedFactorization<T>>) -> bool {
        let mut inner = self.lock();
        let matches = inner
            .entries
            .get(key)
            .is_some_and(|slot| Arc::ptr_eq(&slot.entry, entry));
        if !matches {
            return false;
        }
        let slot = inner.entries.remove(key).expect("entry is resident");
        inner.resident_bytes -= slot.entry.bytes();
        inner.evictions += 1;
        true
    }

    /// Evict every resident entry (fault injection: "cache flushed
    /// mid-flight").  In-flight `Arc`s keep their factorizations alive.
    /// Returns how many entries were dropped.
    pub fn clear(&self) -> usize {
        let mut inner = self.lock();
        let dropped = inner.entries.len();
        inner.entries.clear();
        inner.resident_bytes = 0;
        inner.evictions += dropped as u64;
        dropped
    }

    /// Point-in-time statistics.
    pub fn stats(&self) -> CacheStats {
        let inner = self.lock();
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            inserts: inner.inserts,
            resident_bytes: inner.resident_bytes,
            resident_entries: inner.entries.len(),
        }
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.lock().entries.len()
    }

    /// `true` when nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, CacheInner<T>> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hodlr::{Backend, Precision, TreePolicy};
    use hodlr_compress::ClosureSource;

    fn build_hodlr(n: usize) -> Result<Hodlr<f64>, HodlrError> {
        let source = ClosureSource::new(n, n, move |i, j| {
            let d = (i as f64 - j as f64).abs() / n as f64;
            1.0 / (1.0 + 8.0 * d) + if i == j { 4.0 } else { 0.0 }
        });
        Hodlr::builder()
            .source(&source)
            .leaf_size(32)
            .tolerance(1e-8)
            .build()
    }

    fn key(id: &str) -> CacheKey {
        CacheKey::new(
            id,
            &TreePolicy::LeafSize(32),
            1e-8,
            Backend::Serial,
            Precision::Full,
        )
    }

    fn cache(max_entries: usize, budget: u64) -> FactorCache<f64> {
        FactorCache::new(CacheConfig {
            max_entries,
            memory_budget_bytes: budget,
        })
    }

    #[test]
    fn hit_and_miss_accounting() {
        let cache = cache(4, u64::MAX);
        assert!(cache.get(&key("a")).is_none());
        let e1 = cache.get_or_build(&key("a"), || build_hodlr(128)).unwrap();
        let e2 = cache
            .get_or_build(&key("a"), || panic!("must hit"))
            .unwrap();
        assert!(Arc::ptr_eq(&e1, &e2));
        let s = cache.stats();
        // get() miss + get_or_build() miss, then one hit.
        assert_eq!(s.misses, 2);
        assert_eq!(s.hits, 1);
        assert_eq!(s.inserts, 1);
        assert_eq!(s.resident_entries, 1);
        assert_eq!(s.resident_bytes, e1.bytes());
        assert!((s.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn lru_eviction_by_entry_count() {
        let cache = cache(2, u64::MAX);
        cache.get_or_build(&key("a"), || build_hodlr(96)).unwrap();
        cache.get_or_build(&key("b"), || build_hodlr(96)).unwrap();
        // Touch "a" so "b" is the LRU victim.
        assert!(cache.get(&key("a")).is_some());
        cache.get_or_build(&key("c"), || build_hodlr(96)).unwrap();
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&key("a")).is_some(), "recently used survives");
        assert!(cache.get(&key("b")).is_none(), "LRU victim evicted");
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn memory_budget_evicts_and_rejects_oversize() {
        let probe = {
            let c = cache(8, u64::MAX);
            c.get_or_build(&key("probe"), || build_hodlr(128))
                .unwrap()
                .bytes()
        };
        // Budget fits one entry but not two.
        let cache = cache(8, probe + probe / 2);
        cache.get_or_build(&key("a"), || build_hodlr(128)).unwrap();
        cache.get_or_build(&key("b"), || build_hodlr(128)).unwrap();
        let s = cache.stats();
        assert_eq!(s.resident_entries, 1, "budget holds one entry");
        assert_eq!(s.evictions, 1);
        assert!(s.resident_bytes <= cache.config().memory_budget_bytes);
        // An entry bigger than the whole budget is refused outright.
        let tiny = self::cache(8, 16);
        let err = tiny
            .get_or_build(&key("big"), || build_hodlr(128))
            .unwrap_err();
        assert!(matches!(
            err,
            ServeError::Evicted {
                budget_bytes: 16,
                ..
            }
        ));
        assert!(tiny.is_empty());
    }

    #[test]
    fn evicted_entries_survive_while_referenced() {
        let cache = cache(1, u64::MAX);
        let a = cache.get_or_build(&key("a"), || build_hodlr(96)).unwrap();
        cache.get_or_build(&key("b"), || build_hodlr(96)).unwrap();
        assert!(cache.get(&key("a")).is_none(), "a was evicted");
        // ... but the Arc still solves: in-flight requests are unaffected.
        use hodlr::Solve;
        let x = a.solver().solve(&vec![1.0; 96]).unwrap();
        assert!(x.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn builder_failures_surface_typed() {
        let cache = cache(4, u64::MAX);
        let err = cache
            .get_or_build(&key("bad"), || {
                Err(HodlrError::config("tenant build exploded"))
            })
            .unwrap_err();
        assert!(matches!(
            err,
            ServeError::Solver(HodlrError::InvalidConfig { .. })
        ));
        assert!(cache.is_empty());
    }
}
