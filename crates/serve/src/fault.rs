//! Deterministic fault injection for the serve layer.
//!
//! A [`ServeFaultPlan`] is schedule-addressable against **drain
//! ordinals** (1-based, counted from arming), mirroring the launch-ordinal
//! plans of [`hodlr_batch::FaultPlan`] one layer down:
//!
//! * `evict_before_drain(d)` — flush the entire factorization cache
//!   immediately before drain `d` runs, simulating eviction racing
//!   mid-flight requests (their `Arc`'d entries must keep solving).
//! * `stall_drain(d, micros)` — sleep before drain `d` collects the
//!   queue, widening the window in which callers time out and cancel.
//!
//! Both actions perturb *timing and cache state only*: with a fixed plan
//! the solve results remain a pure function of the submission schedule,
//! which is what the chaos bench's bitwise-replay verdict checks.

use std::collections::{BTreeMap, BTreeSet};

/// What a serve-layer fault did when it fired.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ServeFaultAction {
    /// The whole factorization cache was flushed before the drain.
    EvictAll,
    /// The drain was delayed by this many microseconds.
    Stall {
        /// The injected delay.
        micros: u64,
    },
}

/// One fired serve-layer fault: which drain ordinal, what happened.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ServeFaultEvent {
    /// 1-based drain ordinal (counted from arming) the fault fired at.
    pub drain: u64,
    /// What the fault did.
    pub action: ServeFaultAction,
}

/// A deterministic schedule of serve-layer faults, addressed by drain
/// ordinal.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ServeFaultPlan {
    evictions: BTreeSet<u64>,
    stalls: BTreeMap<u64, u64>,
}

impl ServeFaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        ServeFaultPlan::default()
    }

    /// Flush the factorization cache immediately before drain `drain`
    /// (1-based, counted from arming).
    pub fn evict_before_drain(mut self, drain: u64) -> Self {
        self.evictions.insert(drain);
        self
    }

    /// Stall drain `drain` by `micros` microseconds before it collects
    /// the queue.
    pub fn stall_drain(mut self, drain: u64, micros: u64) -> Self {
        self.stalls.insert(drain, micros);
        self
    }

    /// `true` when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.evictions.is_empty() && self.stalls.is_empty()
    }

    /// The actions scheduled for drain ordinal `drain`, eviction first.
    pub(crate) fn actions_at(&self, drain: u64) -> Vec<ServeFaultAction> {
        let mut actions = Vec::new();
        if self.evictions.contains(&drain) {
            actions.push(ServeFaultAction::EvictAll);
        }
        if let Some(&micros) = self.stalls.get(&drain) {
            actions.push(ServeFaultAction::Stall { micros });
        }
        actions
    }
}

/// Armed-plan state: the plan plus the drain cursor and the fired log.
#[derive(Debug, Default)]
pub(crate) struct ServeFaultState {
    pub(crate) plan: ServeFaultPlan,
    pub(crate) drains_seen: u64,
    pub(crate) fired: Vec<ServeFaultEvent>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_schedule_by_drain_ordinal() {
        let plan = ServeFaultPlan::new()
            .evict_before_drain(2)
            .stall_drain(2, 500)
            .stall_drain(4, 100);
        assert!(!plan.is_empty());
        assert_eq!(plan.actions_at(1), vec![]);
        assert_eq!(
            plan.actions_at(2),
            vec![
                ServeFaultAction::EvictAll,
                ServeFaultAction::Stall { micros: 500 }
            ]
        );
        assert_eq!(
            plan.actions_at(4),
            vec![ServeFaultAction::Stall { micros: 100 }]
        );
        assert!(ServeFaultPlan::new().is_empty());
    }
}
