//! The degradation ladder's knobs and the per-tenant circuit breaker.
//!
//! When a drained solve comes back faulted, [`SolveVerdict::Suspect`] or
//! [`SolveVerdict::NonFinite`], the service does not just propagate the
//! error — it escalates through a bounded ladder of recovery rungs, each
//! strictly more expensive and more conservative than the last:
//!
//! 1. **Re-solve** on the same factorization (transient device faults —
//!    a poisoned launch — do not repeat at the same ordinal).
//! 2. **Quarantine + rebuild**: the suspect cache entry is removed (only
//!    if it is still the resident one) and the tenant's builder produces a
//!    fresh factorization, which is re-inserted and solved.
//! 3. **Tighter tolerance**: a transient factorization built at 100×
//!    tighter compression tolerance (never cached — its tolerance does not
//!    match the tenant's cache key).
//! 4. **Iterative refinement**: one residual-correction pass on the best
//!    finite candidate so far.
//! 5. **GMRES** with the factorization as right preconditioner — the
//!    slow-but-sure iterative fallback.
//!
//! Every rung's output is re-verified; the first verified solution wins.
//! Exhausting the ladder yields [`ServeError::SuspectSolution`] and feeds
//! the tenant's circuit breaker: after
//! [`DegradeConfig::breaker_threshold`] *consecutive* exhausted requests
//! the breaker opens and the tenant's submits are rejected with
//! [`ServeError::CircuitOpen`] until
//! [`DegradeConfig::breaker_cooldown_drains`] drain cycles pass.
//!
//! [`SolveVerdict::Suspect`]: hodlr::SolveVerdict::Suspect
//! [`SolveVerdict::NonFinite`]: hodlr::SolveVerdict::NonFinite
//! [`ServeError::SuspectSolution`]: crate::ServeError::SuspectSolution
//! [`ServeError::CircuitOpen`]: crate::ServeError::CircuitOpen

/// Verification + recovery knobs of a [`SolveService`](crate::SolveService).
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct DegradeConfig {
    /// Verify drained solutions.  Every drained solution gets a free
    /// finiteness scan (it catches poisoned launches and NaN factors);
    /// residual verification proper runs on a deterministic drain cadence
    /// — see [`DegradeConfig::verify_stride`].  When `false`, only
    /// outright solver errors enter the recovery ladder.
    pub verify: bool,
    /// Residual checks run on every drain whose ordinal is a multiple of
    /// this stride (`0` and `1` both mean every drain).  On a checked
    /// drain each coalesced group pays **one** HODLR matvec for a
    /// Freivalds-style combined residual over all its members; only when
    /// that aggregate check fails does the group pay a full per-member
    /// `A·X` matmat to attribute the suspect columns.  The default of 4
    /// keeps warm-path median latency within a few percent of
    /// verification-off while still bounding how long a silently wrong
    /// (finite) answer stream can go unnoticed.
    pub verify_stride: u64,
    /// Largest scaled residual `‖Ax−b‖₂/(‖A‖₁ᵉˢᵗ‖x‖₂)` accepted as
    /// verified.
    pub residual_threshold: f64,
    /// Maximum recovery rungs attempted per request (5 covers the whole
    /// ladder; 0 disables recovery entirely).
    pub max_retries: u32,
    /// Consecutive ladder-exhausted failures that trip a tenant's circuit
    /// breaker.
    pub breaker_threshold: u32,
    /// Drain cycles a tripped breaker stays open before half-opening.
    pub breaker_cooldown_drains: u64,
}

impl Default for DegradeConfig {
    fn default() -> Self {
        DegradeConfig {
            verify: true,
            verify_stride: 4,
            residual_threshold: 1e-6,
            max_retries: 5,
            breaker_threshold: 3,
            breaker_cooldown_drains: 2,
        }
    }
}

/// Per-tenant-key breaker state (interior to the service; keyed by
/// [`CacheKey`](crate::CacheKey), the tenant's factorization identity).
#[derive(Copy, Clone, Debug, Default)]
pub(crate) struct Breaker {
    /// Consecutive ladder-exhausted failures since the last success.
    pub(crate) consecutive: u32,
    /// When open: the drain ordinal at which submits are admitted again.
    pub(crate) open_until_drain: Option<u64>,
}

impl Breaker {
    /// Record an unrecoverable request; returns `true` when this failure
    /// trips the breaker open.
    pub(crate) fn record_failure(
        &mut self,
        threshold: u32,
        now_drains: u64,
        cooldown: u64,
    ) -> bool {
        self.consecutive += 1;
        if threshold > 0 && self.consecutive >= threshold {
            // Keep the streak at the brink: after the cooldown half-opens
            // the breaker, a single further exhausted request re-trips it.
            self.consecutive = threshold.saturating_sub(1);
            self.open_until_drain = Some(now_drains + cooldown);
            return true;
        }
        false
    }

    /// Record a verified (or at least successful) request: closes the
    /// breaker and clears the failure streak.
    pub(crate) fn record_success(&mut self) {
        self.consecutive = 0;
        self.open_until_drain = None;
    }

    /// Whether submits should be rejected at drain ordinal `now_drains`.
    /// A breaker past its cooldown half-opens: the next request is
    /// admitted and its outcome decides whether the breaker re-trips.
    pub(crate) fn is_open(&mut self, now_drains: u64) -> Option<u64> {
        match self.open_until_drain {
            Some(until) if now_drains < until => Some(until),
            Some(_) => {
                // Half-open: admit traffic again; `record_failure` left the
                // streak one short of the threshold, so a single further
                // exhausted request re-trips immediately.
                self.open_until_drain = None;
                None
            }
            None => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_verify_with_a_bounded_ladder() {
        let d = DegradeConfig::default();
        assert!(d.verify);
        assert_eq!(d.max_retries, 5);
        assert!(d.breaker_threshold > 0);
    }

    #[test]
    fn breaker_trips_after_consecutive_failures_and_cools_down() {
        let mut b = Breaker::default();
        assert!(!b.record_failure(3, 10, 2));
        assert!(!b.record_failure(3, 10, 2));
        assert!(b.is_open(10).is_none(), "not yet tripped");
        assert!(b.record_failure(3, 10, 2), "third failure trips");
        assert_eq!(b.is_open(10), Some(12));
        assert_eq!(b.is_open(11), Some(12));
        assert!(b.is_open(12).is_none(), "cooldown elapsed: half-open");
        // Half-open: one more failure re-trips immediately ...
        assert!(
            b.record_failure(3, 12, 2),
            "half-open re-trips on one failure"
        );
        assert_eq!(b.is_open(13), Some(14));
        // ... while a success closes it for good.
        b.record_success();
        assert!(b.is_open(13).is_none());
        assert_eq!(b.consecutive, 0);
    }
}
