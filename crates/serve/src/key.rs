//! Cache keys: which `(source, tree, tolerance, backend, precision)`
//! combinations share one factorization.
//!
//! Two requests may share a cached factorization only when every knob that
//! shapes the factors matches: the logical matrix (a caller-chosen
//! `source_id`), the cluster-tree policy, the compression tolerance, the
//! backend and the precision policy.  The same tenant served at `1e-6` and
//! `1e-10`, or on [`Backend::Serial`] and [`Backend::Batched`], is two
//! cache entries — the factors genuinely differ.

use hodlr::{Backend, Precision, TreePolicy};
use hodlr_tree::ClusterTree;

/// A [`TreePolicy`] reduced to cheap, hashable key material.
///
/// The policy enum itself holds a full [`ClusterTree`] in its `Explicit`
/// variant, too heavy (and not `Hash`) for a map key; explicit trees are
/// fingerprinted over their structure instead.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum TreeKey {
    /// [`TreePolicy::LeafSize`].
    LeafSize(usize),
    /// [`TreePolicy::Levels`].
    Levels(usize),
    /// [`TreePolicy::Explicit`], reduced to the tree's size and a
    /// structural fingerprint (FNV-1a over level count and leaf ranges).
    Explicit {
        /// Number of indices the tree partitions.
        n: usize,
        /// Structural fingerprint; equal trees hash equal, and a collision
        /// between *different* trees of the same `n` merely merges two
        /// cache slots for tenants that already share a `source_id`.
        fingerprint: u64,
    },
}

impl TreeKey {
    /// Reduce a builder [`TreePolicy`] to key material.
    pub fn from_policy(policy: &TreePolicy) -> Self {
        match policy {
            TreePolicy::LeafSize(s) => TreeKey::LeafSize(*s),
            TreePolicy::Levels(l) => TreeKey::Levels(*l),
            TreePolicy::Explicit(tree) => TreeKey::Explicit {
                n: tree.n(),
                fingerprint: fingerprint_tree(tree),
            },
        }
    }
}

/// FNV-1a over the structure that determines the factorization's shape:
/// level count plus every leaf range, in tree order.  Deterministic across
/// processes (unlike `DefaultHasher` seeds would be if randomized), so key
/// material can be logged and compared between runs.
fn fingerprint_tree(tree: &ClusterTree) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut mix = |v: u64| {
        for byte in v.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(PRIME);
        }
    };
    mix(tree.levels() as u64);
    for leaf in tree.leaves() {
        let r = tree.range(leaf);
        mix(r.start as u64);
        mix(r.end as u64);
    }
    h
}

/// The full cache key: one entry per distinct factorization.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Caller-chosen identity of the logical matrix (tenant + dataset
    /// version); the cache never inspects matrix entries, so callers must
    /// change the id when the underlying operator changes.
    pub source_id: String,
    /// Cluster-tree policy key material.
    pub tree: TreeKey,
    /// Compression tolerance, compared bitwise (`f64::to_bits`) — key
    /// equality must be exact, and `NaN`-safe hashing falls out for free.
    pub tol_bits: u64,
    /// Factorization backend.
    pub backend: Backend,
    /// Precision policy.
    pub precision: Precision,
}

impl CacheKey {
    /// Assemble a key from builder-level configuration.
    pub fn new(
        source_id: impl Into<String>,
        tree: &TreePolicy,
        tol: f64,
        backend: Backend,
        precision: Precision,
    ) -> Self {
        CacheKey {
            source_id: source_id.into(),
            tree: TreeKey::from_policy(tree),
            tol_bits: tol.to_bits(),
            backend,
            precision,
        }
    }

    /// The compression tolerance this key was built from.
    pub fn tolerance(&self) -> f64 {
        f64::from_bits(self.tol_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(tol: f64, backend: Backend) -> CacheKey {
        CacheKey::new(
            "tenant-a",
            &TreePolicy::LeafSize(64),
            tol,
            backend,
            Precision::Full,
        )
    }

    #[test]
    fn every_knob_separates_entries() {
        let base = key(1e-8, Backend::Serial);
        assert_eq!(base, key(1e-8, Backend::Serial));
        assert_ne!(base, key(1e-6, Backend::Serial));
        assert_ne!(base, key(1e-8, Backend::Batched));
        let other_tree = CacheKey::new(
            "tenant-a",
            &TreePolicy::LeafSize(32),
            1e-8,
            Backend::Serial,
            Precision::Full,
        );
        assert_ne!(base, other_tree);
        let other_precision = CacheKey {
            precision: Precision::MixedRefine,
            ..base.clone()
        };
        assert_ne!(base, other_precision);
        assert_eq!(base.tolerance(), 1e-8);
    }

    #[test]
    fn explicit_trees_fingerprint_by_structure() {
        let a = ClusterTree::with_leaf_size(256, 32);
        let b = ClusterTree::with_leaf_size(256, 32);
        let c = ClusterTree::with_leaf_size(256, 64);
        let ka = TreeKey::from_policy(&TreePolicy::Explicit(a));
        let kb = TreeKey::from_policy(&TreePolicy::Explicit(b));
        let kc = TreeKey::from_policy(&TreePolicy::Explicit(c));
        assert_eq!(ka, kb, "identical structure, identical key");
        assert_ne!(ka, kc, "different leaf granularity, different key");
    }
}
