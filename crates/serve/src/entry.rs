//! An owned, shareable factorization: the unit the cache stores.
//!
//! The façade's [`Factorization`] borrows the [`Hodlr`] it was factorized
//! from (the batched backend keeps its buffers on the handle's device, and
//! solves may run on the handle's thread pool).  A cache must *own* both
//! halves, so [`CachedFactorization`] keeps the `Hodlr` on the heap behind
//! a **raw** pointer and stores the factorization next to it.
//!
//! Why a raw pointer and not a `Box`: a `Box` field asserts unique access
//! on every move of the struct (Stacked Borrows retags it), which would
//! invalidate the long-lived borrow the factorization holds into the
//! allocation — the classic self-referential-struct UB (cf. ouroboros
//! RUSTSEC-2023-0042).  A `NonNull` is never retagged on move, so the
//! borrow derived from it stays valid for the life of the allocation, and
//! the struct can be moved, boxed and `Arc`'d freely.  The `miri_*` tests
//! below run under Miri in CI to keep this claim checked.

use crate::ServeError;
use hodlr::{Factorization, Factorize, Hodlr, Solve, SolveScalar, SolveVerdict, VerifyConfig};
use hodlr_la::HodlrError;
use std::mem::ManuallyDrop;
use std::ptr::NonNull;
use std::sync::OnceLock;

/// A factorization that owns its matrix, device and thread pool: safe to
/// park in a cache and to share across request-handler threads
/// (`Send + Sync`, with every solve entry point taking `&self`).
pub struct CachedFactorization<T: SolveScalar> {
    /// Borrows the allocation behind `hodlr`; manually dropped *before*
    /// that allocation is freed (see `Drop`).
    factorization: ManuallyDrop<Factorization<'static, T>>,
    /// The leaked heap allocation this struct owns and frees on drop.
    /// Deliberately a raw pointer: moving the struct must not retag it.
    hodlr: NonNull<Hodlr<T>>,
    bytes: u64,
    /// Cached `‖A‖₁` estimate — one Hager/Higham run per entry, shared by
    /// every verification against it.
    norm1: OnceLock<f64>,
    /// Cached `‖A⁻¹‖₁` estimate (a handful of solves); only computed when
    /// a verdict needs the condition estimate.
    inv_norm1: OnceLock<f64>,
}

// SAFETY: the struct owns the heap `Hodlr` outright (no other pointer to
// the allocation exists outside `self`), never hands out `&mut Hodlr`, and
// the factorization is required `Send`/`Sync` by the façade.  Sending the
// struct moves both halves together; sharing `&self` only ever yields
// shared references.  `Hodlr<T>: Sync` is required even for `Send`
// because the factorization holds `&Hodlr` across the move.
unsafe impl<T: SolveScalar> Send for CachedFactorization<T>
where
    Hodlr<T>: Send + Sync,
    for<'a> Factorization<'a, T>: Send,
{
}
unsafe impl<T: SolveScalar> Sync for CachedFactorization<T>
where
    Hodlr<T>: Sync,
    for<'a> Factorization<'a, T>: Sync,
{
}

impl<T: SolveScalar> CachedFactorization<T> {
    /// Factorize `hodlr` and take ownership of both halves.
    ///
    /// # Errors
    /// Factorization errors ([`HodlrError::SingularPivot`], configuration
    /// rejections from exotic backend/precision combinations) propagate.
    pub fn build(hodlr: Hodlr<T>) -> Result<Self, HodlrError> {
        // Leak the handle to a raw pointer; from here on `self` is the
        // allocation's sole owner and frees it in `Drop`.
        let hodlr: NonNull<Hodlr<T>> = NonNull::from(Box::leak(Box::new(hodlr)));
        // SAFETY: the allocation is live and uniquely owned by this
        // function; the shared borrow is derived from the raw pointer, so
        // later moves of `self` (which copy the pointer bits untagged)
        // cannot invalidate it.  It lives as long as the allocation, which
        // `Drop` frees only after dropping the factorization.
        let borrowed: &'static Hodlr<T> = unsafe { &*hodlr.as_ptr() };
        let factorization = match borrowed.factorize() {
            Ok(f) => f,
            Err(e) => {
                // SAFETY: `factorize` failed, so no borrow of the
                // allocation survives; reclaim and free it.
                unsafe { drop(Box::from_raw(hodlr.as_ptr())) };
                return Err(e);
            }
        };
        let bytes = factorization.factor_bytes() + borrowed.storage_bytes();
        Ok(CachedFactorization {
            factorization: ManuallyDrop::new(factorization),
            hodlr,
            bytes,
            norm1: OnceLock::new(),
            inv_norm1: OnceLock::new(),
        })
    }

    /// The completed factorization, reborrowed at `&self`'s lifetime.
    pub fn solver(&self) -> &Factorization<'_, T> {
        &self.factorization
    }

    /// The owning handle (device counters, matrix, residual checks).
    pub fn hodlr(&self) -> &Hodlr<T> {
        // SAFETY: the allocation is live until `self` drops and no `&mut`
        // to it ever exists; the returned borrow is capped at `&self`.
        unsafe { self.hodlr.as_ref() }
    }

    /// Resident bytes this entry charges against the cache budget: factor
    /// payload plus the compressed matrix it keeps alive.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Matrix size `N`.
    pub fn dim(&self) -> usize {
        self.factorization.dim()
    }

    /// Cached `‖A‖₁` estimate of the entry's operator (computed once, on
    /// first use).
    pub fn norm1_est(&self) -> f64 {
        *self.norm1.get_or_init(|| self.hodlr().norm1_est())
    }

    /// Cached condition estimate `κ₁(A) ≈ ‖A‖₁ᵉˢᵗ · ‖A⁻¹‖₁ᵉˢᵗ`
    /// (`INFINITY` when either estimate failed, e.g. on a poisoned
    /// factorization).
    pub fn cond_estimate(&self) -> f64 {
        let inv = *self
            .inv_norm1
            .get_or_init(|| self.solver().inv_norm1_est().unwrap_or(f64::INFINITY));
        self.norm1_est() * inv
    }

    /// Verify a candidate solution of `A x = b` against this entry's
    /// operator: one HODLR matvec for the scaled residual, then
    /// [`CachedFactorization::verdict`].
    pub fn verify(&self, x: &[T], b: &[T], cfg: &VerifyConfig) -> SolveVerdict {
        let ax = self.hodlr().matvec(x);
        let residual = hodlr::scaled_residual(&ax, x, b, self.norm1_est());
        self.verdict(x, residual, cfg)
    }

    /// Classify a precomputed scaled residual, using the entry's cached
    /// norms so repeated suspects do not pay repeated Hager/Higham solves.
    pub fn verdict(&self, x: &[T], residual: f64, cfg: &VerifyConfig) -> SolveVerdict {
        if residual.is_nan() || x.iter().any(|v| !v.is_finite()) {
            return SolveVerdict::NonFinite;
        }
        if residual <= cfg.residual_threshold {
            return SolveVerdict::Verified { residual };
        }
        SolveVerdict::Suspect {
            residual,
            cond_est: self.cond_estimate(),
        }
    }
}

impl<T: SolveScalar> Drop for CachedFactorization<T> {
    fn drop(&mut self) {
        // SAFETY: drop order is load-bearing — the factorization borrows
        // the allocation, so it goes first; afterwards no reference into
        // the allocation survives and the leaked box can be reclaimed.
        unsafe {
            ManuallyDrop::drop(&mut self.factorization);
            drop(Box::from_raw(self.hodlr.as_ptr()));
        }
    }
}

impl<T: SolveScalar> std::fmt::Debug for CachedFactorization<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CachedFactorization")
            .field("n", &self.dim())
            .field("backend", &self.factorization.backend())
            .field("precision", &self.factorization.precision())
            .field("bytes", &self.bytes)
            .finish()
    }
}

/// Convenience: build the entry straight from a builder closure, mapping
/// the failure into the per-request error type.
pub(crate) fn build_entry<T: SolveScalar>(
    build: impl FnOnce() -> Result<Hodlr<T>, HodlrError>,
) -> Result<CachedFactorization<T>, ServeError> {
    let hodlr = build().map_err(ServeError::Solver)?;
    CachedFactorization::build(hodlr).map_err(ServeError::Solver)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hodlr::{Backend, Solve};
    use hodlr_compress::ClosureSource;

    fn diagonally_dominant(n: usize) -> ClosureSource<f64, impl Fn(usize, usize) -> f64> {
        ClosureSource::new(n, n, move |i, j| {
            let d = (i as f64 - j as f64).abs() / n as f64;
            1.0 / (1.0 + 8.0 * d) + if i == j { 4.0 } else { 0.0 }
        })
    }

    fn entry_sized(backend: Backend, n: usize, leaf: usize) -> CachedFactorization<f64> {
        let source = diagonally_dominant(n);
        let hodlr = Hodlr::builder()
            .source(&source)
            .leaf_size(leaf)
            .tolerance(1e-10)
            .backend(backend)
            .build()
            .unwrap();
        CachedFactorization::build(hodlr).unwrap()
    }

    fn entry(backend: Backend) -> CachedFactorization<f64> {
        entry_sized(backend, 128, 32)
    }

    #[test]
    fn owns_and_solves_on_both_backends() {
        for backend in [Backend::Serial, Backend::Batched] {
            let e = entry(backend);
            assert_eq!(e.dim(), 128);
            assert!(e.bytes() > 0, "{backend:?} must report resident bytes");
            let b = vec![1.0; 128];
            let x = e.solver().solve(&b).unwrap();
            let r = e.hodlr().relative_residual(&x, &b);
            assert!(r < 1e-8, "{backend:?}: residual {r:e}");
        }
    }

    #[test]
    fn entry_outlives_the_scope_that_built_it() {
        // The entry must be movable (returned from functions, pushed into
        // maps) without invalidating the internal borrow.
        let moved = {
            let e = entry(Backend::Batched);
            let boxed = Box::new(e);
            *boxed
        };
        let x = moved.solver().solve(&vec![1.0; 128]).unwrap();
        assert!(x.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn batched_entries_meter_on_their_own_device() {
        let e = entry(Backend::Batched);
        let before = e.hodlr().device().counters();
        e.solver().solve(&vec![1.0; 128]).unwrap();
        let delta = e.hodlr().device().counters().since(&before);
        assert!(delta.kernel_launches > 0);
    }

    /// Interpreter-scale exercise of the whole aliasing story — build,
    /// move (by value, through a `Box`, into and out of an `Arc`), solve
    /// after every move, then drop.  CI runs exactly the `miri_*` filter
    /// under Miri; keep this test tiny and serial so the interpreter
    /// finishes in seconds.
    #[test]
    fn miri_moves_boxes_and_arcs_stay_sound() {
        let e = entry_sized(Backend::Serial, 16, 8);
        let b = vec![1.0; 16];
        let baseline = e.solver().solve(&b).unwrap();

        // Move by value out of a block.
        let moved = { e };
        assert_eq!(moved.solver().solve(&b).unwrap(), baseline);

        // Through a Box round-trip (heap → stack move).
        let unboxed = *Box::new(moved);
        assert_eq!(unboxed.solver().solve(&b).unwrap(), baseline);

        // The cache's actual usage: Arc-shared, cloned, dropped.
        let shared = std::sync::Arc::new(unboxed);
        let clone = std::sync::Arc::clone(&shared);
        drop(shared);
        assert_eq!(clone.solver().solve(&b).unwrap(), baseline);
    }

    /// The error path must free the leaked allocation (Miri flags leaks).
    #[test]
    fn miri_failed_factorization_does_not_leak() {
        // A singular 2x2 (rank one, zero pivot after elimination).
        let source = ClosureSource::new(4, 4, |_, _| 1.0);
        let hodlr = Hodlr::builder()
            .source(&source)
            .leaf_size(2)
            .tolerance(1e-12)
            .build()
            .unwrap();
        assert!(CachedFactorization::build(hodlr).is_err());
    }
}
