//! An owned, shareable factorization: the unit the cache stores.
//!
//! The façade's [`Factorization`] borrows the [`Hodlr`] it was factorized
//! from (the batched backend keeps its buffers on the handle's device, and
//! solves may run on the handle's thread pool).  A cache must *own* both
//! halves, so [`CachedFactorization`] pins the `Hodlr` behind a `Box` —
//! a stable heap address — and stores the factorization next to it.

use crate::ServeError;
use hodlr::{Factorization, Factorize, Hodlr, Solve, SolveScalar};
use hodlr_la::HodlrError;

/// A factorization that owns its matrix, device and thread pool: safe to
/// park in a cache and to share across request-handler threads
/// (`Send + Sync`, with every solve entry point taking `&self`).
pub struct CachedFactorization<T: SolveScalar> {
    // Field order is load-bearing: `factorization` borrows from the boxed
    // `hodlr` below it, and struct fields drop top-to-bottom, so the
    // borrower is always dropped before its referent.
    factorization: Factorization<'static, T>,
    hodlr: Box<Hodlr<T>>,
    bytes: u64,
}

impl<T: SolveScalar> CachedFactorization<T> {
    /// Factorize `hodlr` and take ownership of both halves.
    ///
    /// # Errors
    /// Factorization errors ([`HodlrError::SingularPivot`], configuration
    /// rejections from exotic backend/precision combinations) propagate.
    pub fn build(hodlr: Hodlr<T>) -> Result<Self, HodlrError> {
        let hodlr = Box::new(hodlr);
        let factorization = hodlr.factorize()?;
        // SAFETY: `factorization` borrows only from the heap allocation
        // behind `hodlr` (matrix, device, optional pool), whose address is
        // stable for the life of `self`: the box is never reassigned, the
        // struct exposes no `&mut Hodlr`, and field order drops the
        // factorization first.  The forged 'static never escapes — every
        // accessor reborrows it at `&self`'s lifetime.
        let factorization: Factorization<'static, T> = unsafe {
            std::mem::transmute::<Factorization<'_, T>, Factorization<'static, T>>(factorization)
        };
        let bytes = factorization.factor_bytes() + hodlr.matrix().storage_bytes();
        Ok(CachedFactorization {
            factorization,
            hodlr,
            bytes,
        })
    }

    /// The completed factorization, reborrowed at `&self`'s lifetime.
    pub fn solver(&self) -> &Factorization<'_, T> {
        &self.factorization
    }

    /// The owning handle (device counters, matrix, residual checks).
    pub fn hodlr(&self) -> &Hodlr<T> {
        &self.hodlr
    }

    /// Resident bytes this entry charges against the cache budget: factor
    /// payload plus the compressed matrix it keeps alive.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Matrix size `N`.
    pub fn dim(&self) -> usize {
        self.factorization.dim()
    }
}

impl<T: SolveScalar> std::fmt::Debug for CachedFactorization<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CachedFactorization")
            .field("n", &self.dim())
            .field("backend", &self.factorization.backend())
            .field("precision", &self.factorization.precision())
            .field("bytes", &self.bytes)
            .finish()
    }
}

/// Convenience: build the entry straight from a builder closure, mapping
/// the failure into the per-request error type.
pub(crate) fn build_entry<T: SolveScalar>(
    build: impl FnOnce() -> Result<Hodlr<T>, HodlrError>,
) -> Result<CachedFactorization<T>, ServeError> {
    let hodlr = build().map_err(ServeError::Solver)?;
    CachedFactorization::build(hodlr).map_err(ServeError::Solver)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hodlr::{Backend, Solve};
    use hodlr_compress::ClosureSource;

    fn diagonally_dominant(n: usize) -> ClosureSource<f64, impl Fn(usize, usize) -> f64> {
        ClosureSource::new(n, n, move |i, j| {
            let d = (i as f64 - j as f64).abs() / n as f64;
            1.0 / (1.0 + 8.0 * d) + if i == j { 4.0 } else { 0.0 }
        })
    }

    fn entry(backend: Backend) -> CachedFactorization<f64> {
        let source = diagonally_dominant(128);
        let hodlr = Hodlr::builder()
            .source(&source)
            .leaf_size(32)
            .tolerance(1e-10)
            .backend(backend)
            .build()
            .unwrap();
        CachedFactorization::build(hodlr).unwrap()
    }

    #[test]
    fn owns_and_solves_on_both_backends() {
        for backend in [Backend::Serial, Backend::Batched] {
            let e = entry(backend);
            assert_eq!(e.dim(), 128);
            assert!(e.bytes() > 0, "{backend:?} must report resident bytes");
            let b = vec![1.0; 128];
            let x = e.solver().solve(&b).unwrap();
            let r = e.hodlr().relative_residual(&x, &b);
            assert!(r < 1e-8, "{backend:?}: residual {r:e}");
        }
    }

    #[test]
    fn entry_outlives_the_scope_that_built_it() {
        // The entry must be movable (returned from functions, pushed into
        // maps) without invalidating the internal borrow.
        let moved = {
            let e = entry(Backend::Batched);
            let boxed = Box::new(e);
            *boxed
        };
        let x = moved.solver().solve(&vec![1.0; 128]).unwrap();
        assert!(x.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn batched_entries_meter_on_their_own_device() {
        let e = entry(Backend::Batched);
        let before = e.hodlr().device().counters();
        e.solver().solve(&vec![1.0; 128]).unwrap();
        let delta = e.hodlr().device().counters().since(&before);
        assert!(delta.kernel_launches > 0);
    }
}
