//! Request coalescing: many single-RHS arrivals, one blocked launch.
//!
//! The paper's blocked solve costs one batched launch sequence per tree
//! level *regardless of the number of right-hand sides*, so packing `k`
//! queued requests against the same factorization into one
//! [`solve_block`](hodlr::Solve::solve_block) divides the launch bill by
//! `k`: under load, launches-per-request drops well below 1.
//!
//! A drain cycle preserves two contracts:
//!
//! * **Determinism** — groups are formed in first-arrival order and the
//!   blocked solve computes each column exactly as a single-column solve
//!   would (same sweep, same reduction order), so a request's answer is
//!   bitwise independent of which neighbours happened to share its batch.
//! * **Attribution** — when a coalesced launch fails, every member is
//!   retried individually so each ticket resolves to its own
//!   [`ServeError`], never to a neighbour's failure.

use crate::entry::CachedFactorization;
use crate::{CacheKey, ServeError};
use hodlr::{Backend, Solve, SolveScalar};
use hodlr_la::DenseMatrix;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// One-shot result slot shared between a waiting caller and the drain
/// cycle.
struct TicketShared<T: SolveScalar> {
    slot: Mutex<Option<Result<Vec<T>, ServeError>>>,
    ready: Condvar,
    /// Set (under the slot lock) by a timed-out waiter; a cancelled
    /// ticket's request is dropped from the queue, or its result is
    /// discarded if a drain was already solving it.
    cancelled: AtomicBool,
}

impl<T: SolveScalar> TicketShared<T> {
    /// Deliver `result` unless the ticket was cancelled; returns whether
    /// the result was actually delivered.
    fn fulfill(&self, result: Result<Vec<T>, ServeError>) -> bool {
        let mut slot = self
            .slot
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        // Cancellation is set under the same lock, so this check cannot
        // race with a timing-out waiter.
        if self.cancelled.load(Ordering::Acquire) {
            return false;
        }
        // First writer wins; a retry never overwrites a delivered result.
        if slot.is_none() {
            *slot = Some(result);
            self.ready.notify_all();
        }
        true
    }
}

/// A claim on one submitted request's future result.
///
/// Obtained from [`CoalesceQueue::submit`]; redeemed with [`Ticket::wait`]
/// (block until a drain cycle serves the request) or
/// [`Ticket::wait_timeout`].
pub struct Ticket<T: SolveScalar> {
    shared: Arc<TicketShared<T>>,
}

impl<T: SolveScalar> std::fmt::Debug for Ticket<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let ready = self
            .shared
            .slot
            .lock()
            .map(|slot| slot.is_some())
            .unwrap_or(false);
        f.debug_struct("Ticket").field("ready", &ready).finish()
    }
}

impl<T: SolveScalar> Ticket<T> {
    /// Block until the request is served, returning its solution (or its
    /// own attributed error).
    pub fn wait(self) -> Result<Vec<T>, ServeError> {
        let mut slot = self
            .shared
            .slot
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        loop {
            if let Some(result) = slot.take() {
                return result;
            }
            slot = self
                .shared
                .ready
                .wait(slot)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Like [`Ticket::wait`], but give up after `timeout`.
    ///
    /// # Errors
    /// [`ServeError::Timeout`] when the bound elapses first.  A timed-out
    /// ticket is **cancelled**: its request is removed from the pending
    /// queue at the next drain, or — if a drain was already solving it —
    /// its result is discarded on delivery.  Either way the abandoned
    /// request is counted in [`DrainReport::cancelled`], so no work and no
    /// result ever dangles.
    pub fn wait_timeout(self, timeout: Duration) -> Result<Vec<T>, ServeError> {
        let deadline = std::time::Instant::now() + timeout;
        let mut slot = self
            .shared
            .slot
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        loop {
            if let Some(result) = slot.take() {
                return result;
            }
            let now = std::time::Instant::now();
            let Some(remaining) = deadline
                .checked_duration_since(now)
                .filter(|d| !d.is_zero())
            else {
                // Cancel under the slot lock: `fulfill` checks the flag
                // under the same lock, so the request either never
                // resolves or resolves into a discarded slot — exactly
                // once, never into a waiter that already gave up.
                self.shared.cancelled.store(true, Ordering::Release);
                return Err(ServeError::Timeout {
                    waited_ms: timeout.as_millis() as u64,
                });
            };
            let (guard, _) = self
                .shared
                .ready
                .wait_timeout(slot, remaining)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            slot = guard;
        }
    }

    /// Non-blocking poll: the result if a drain has already delivered it.
    pub fn try_take(&self) -> Option<Result<Vec<T>, ServeError>> {
        self.shared
            .slot
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .take()
    }
}

/// One queued request: its grouping key, the entry it resolved to at
/// admission (an `Arc`, so eviction between submit and drain cannot
/// invalidate it), and the caller's ticket.
struct Pending<T: SolveScalar> {
    key: CacheKey,
    entry: Arc<CachedFactorization<T>>,
    rhs: Vec<T>,
    ticket: Arc<TicketShared<T>>,
}

/// What one [`CoalesceQueue::drain`] cycle did — the observability needed
/// to compute launches-per-request.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct DrainReport {
    /// Requests taken off the queue this cycle.
    pub requests: usize,
    /// Distinct factorizations they coalesced into.
    pub groups: usize,
    /// Batched-kernel launches issued across all groups (0 for purely
    /// serial-backend traffic).
    pub launches: u64,
    /// Device flops metered across all groups.
    pub flops: u64,
    /// Requests whose coalesced launch failed and were retried
    /// individually.
    pub retried: usize,
    /// Requests that ultimately resolved to an error.
    pub failed: usize,
    /// Requests abandoned by a timed-out waiter: dropped from the queue
    /// before solving, or solved with the result discarded.
    pub cancelled: usize,
    /// Recovery-ladder rungs consumed across all members this cycle.
    pub ladder_retries: usize,
    /// Requests resolved by a degraded path (tighter-tolerance rebuild,
    /// iterative refinement, or GMRES) rather than the nominal
    /// factorization solve.
    pub degraded: usize,
    /// Requests whose initial solve was faulted or unverified but whose
    /// final result is a verified success.
    pub recovered: usize,
}

/// What a drain hook decided for one coalesced group: the final
/// per-member results (parallel to the right-hand sides it received) plus
/// the recovery accounting to fold into the [`DrainReport`].
pub struct GroupOutcome<T: SolveScalar> {
    /// Final result per member, in member order.
    pub results: Vec<Result<Vec<T>, ServeError>>,
    /// Recovery-ladder rungs consumed.
    pub ladder_retries: usize,
    /// Members resolved by a degraded path.
    pub degraded: usize,
    /// Members recovered from a faulted or unverified initial solve.
    pub recovered: usize,
    /// Extra batched-kernel launches metered during recovery.
    pub launches: u64,
    /// Extra device flops metered during recovery.
    pub flops: u64,
}

impl<T: SolveScalar> GroupOutcome<T> {
    /// Accept the initial results unchanged (no verification, no
    /// recovery) — the behaviour of [`CoalesceQueue::drain`].
    pub fn passthrough(results: Vec<Result<Vec<T>, ServeError>>) -> Self {
        GroupOutcome {
            results,
            ladder_retries: 0,
            degraded: 0,
            recovered: 0,
            launches: 0,
            flops: 0,
        }
    }
}

/// A drain hook: sees each group's key, entry, right-hand sides and
/// initial results, and returns the final results plus recovery
/// accounting.  `hodlr-serve`'s degradation ladder lives behind this seam.
pub type GroupHook<'a, T> = dyn FnMut(
        &CacheKey,
        &Arc<CachedFactorization<T>>,
        &[Vec<T>],
        Vec<Result<Vec<T>, ServeError>>,
    ) -> GroupOutcome<T>
    + 'a;

/// A bounded FIFO of single-RHS requests, drained in coalesced blocked
/// solves.
pub struct CoalesceQueue<T: SolveScalar> {
    queue: Mutex<VecDeque<Pending<T>>>,
    /// Serializes drain cycles so per-group launch metering windows never
    /// overlap (the per-entry devices make windows exact; see
    /// [`Device::meter`](hodlr_batch::Device::meter)).
    drain: Mutex<()>,
    capacity: usize,
}

impl<T: SolveScalar> CoalesceQueue<T> {
    /// An empty queue admitting at most `capacity` in-flight requests.
    pub fn new(capacity: usize) -> Self {
        CoalesceQueue {
            queue: Mutex::new(VecDeque::new()),
            drain: Mutex::new(()),
            capacity,
        }
    }

    /// The admission capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Requests currently queued.
    pub fn len(&self) -> usize {
        self.lock_queue().len()
    }

    /// `true` when no request is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueue one right-hand side against a resolved factorization.
    ///
    /// # Errors
    /// [`ServeError::QueueFull`] at capacity (backpressure), and an
    /// immediate [`ServeError::Solver`] dimension mismatch when `rhs` does
    /// not match the factorization — rejecting it here keeps malformed
    /// requests out of everyone else's batch entirely.
    pub fn submit(
        &self,
        key: CacheKey,
        entry: Arc<CachedFactorization<T>>,
        rhs: Vec<T>,
    ) -> Result<Ticket<T>, ServeError> {
        hodlr_la::HodlrError::check_dims("right-hand side", entry.dim(), rhs.len())
            .map_err(ServeError::Solver)?;
        let mut queue = self.lock_queue();
        if queue.len() >= self.capacity {
            return Err(ServeError::QueueFull {
                capacity: self.capacity,
            });
        }
        let shared = Arc::new(TicketShared {
            slot: Mutex::new(None),
            ready: Condvar::new(),
            cancelled: AtomicBool::new(false),
        });
        queue.push_back(Pending {
            key,
            entry,
            rhs,
            ticket: Arc::clone(&shared),
        });
        Ok(Ticket { shared })
    }

    /// Run one drain cycle: take every queued request, group by cache key
    /// in first-arrival order, issue one blocked solve per group, and
    /// fulfill every ticket.
    pub fn drain(&self) -> DrainReport {
        self.drain_with(&mut |_key, _entry, _rhs, initial| GroupOutcome::passthrough(initial))
    }

    /// [`CoalesceQueue::drain`] with a per-group hook between the solve
    /// and ticket fulfillment: the hook may verify, retry, or replace the
    /// members' results (see [`GroupHook`]).  Cancelled requests are
    /// dropped before grouping and never reach the hook.
    pub fn drain_with(&self, hook: &mut GroupHook<'_, T>) -> DrainReport {
        let _serialized = self
            .drain
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut batch: Vec<Pending<T>> = self.lock_queue().drain(..).collect();
        let mut report = DrainReport {
            requests: batch.len(),
            ..DrainReport::default()
        };
        // Timed-out submitters already walked away; drop their requests
        // before they cost a solve.
        let before = batch.len();
        batch.retain(|pending| !pending.ticket.cancelled.load(Ordering::Acquire));
        report.cancelled += before - batch.len();
        if batch.is_empty() {
            return report;
        }

        // Group by key AND by the resolved entry (pointer identity),
        // preserving first-arrival order of both the groups and the
        // members within each group: the batch layout — and with it every
        // result — is a pure function of the submission sequence.  The
        // entry check matters: two submissions can share a key yet have
        // resolved to different factorizations (an eviction + rebuild
        // between their submits), and each right-hand side was validated
        // against *its own* entry at admission — mixing them in one block
        // would solve one member against the other's operator.
        let mut groups: Vec<Vec<Pending<T>>> = Vec::new();
        for pending in batch {
            let group = groups.iter_mut().find(|members| {
                let head = &members[0];
                head.key == pending.key && Arc::ptr_eq(&head.entry, &pending.entry)
            });
            match group {
                Some(members) => members.push(pending),
                None => groups.push(vec![pending]),
            }
        }
        report.groups = groups.len();

        for members in groups {
            self.solve_group(members, &mut report, hook);
        }
        report
    }

    /// One coalesced blocked solve; on failure, retry members one by one
    /// so each ticket gets its own attributed result.  The hook then sees
    /// the whole group's results at once (blocked verification, recovery)
    /// before any ticket is fulfilled.
    ///
    /// Every member shares one entry (drain groups by pointer identity)
    /// and every `rhs` was length-checked against that entry at admission,
    /// so the block assembly below cannot mismatch.
    fn solve_group(
        &self,
        members: Vec<Pending<T>>,
        report: &mut DrainReport,
        hook: &mut GroupHook<'_, T>,
    ) {
        let key = members[0].key.clone();
        let entry = Arc::clone(&members[0].entry);
        let (tickets, rhss): (Vec<_>, Vec<_>) = members
            .into_iter()
            .map(|pending| (pending.ticket, pending.rhs))
            .unzip();
        let n = entry.dim();
        let k = rhss.len();
        let mut block = DenseMatrix::<T>::zeros(n, k);
        for (j, rhs) in rhss.iter().enumerate() {
            block.col_mut(j).copy_from_slice(rhs);
        }

        let device = entry.hodlr().device();
        let (outcome, metered) = device.meter(|| entry.solver().solve_block(&block));
        if entry.solver().backend() == Backend::Batched {
            report.launches += metered.kernel_launches;
            report.flops += metered.flops;
        }

        let initial: Vec<Result<Vec<T>, ServeError>> = match outcome {
            Ok(solved) => (0..k).map(|j| Ok(solved.col(j).to_vec())).collect(),
            Err(_batch_err) => {
                // One bad member must not poison the batch: attribute the
                // failure by re-solving each right-hand side on its own.
                report.retried += k;
                rhss.iter()
                    .map(|rhs| {
                        let (result, metered) = device.meter(|| entry.solver().solve(rhs));
                        if entry.solver().backend() == Backend::Batched {
                            report.launches += metered.kernel_launches;
                            report.flops += metered.flops;
                        }
                        result.map_err(ServeError::Solver)
                    })
                    .collect()
            }
        };

        let outcome = hook(&key, &entry, &rhss, initial);
        debug_assert_eq!(outcome.results.len(), tickets.len());
        report.ladder_retries += outcome.ladder_retries;
        report.degraded += outcome.degraded;
        report.recovered += outcome.recovered;
        report.launches += outcome.launches;
        report.flops += outcome.flops;
        for (ticket, result) in tickets.into_iter().zip(outcome.results) {
            if result.is_err() {
                report.failed += 1;
            }
            if !ticket.fulfill(result) {
                // The waiter timed out while this drain was solving; the
                // result is discarded, not delivered.
                report.cancelled += 1;
            }
        }
    }

    fn lock_queue(&self) -> std::sync::MutexGuard<'_, VecDeque<Pending<T>>> {
        self.queue
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}
