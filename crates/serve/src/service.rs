//! The multi-tenant front door: tenant registry + cache + coalescing
//! queue behind one `&self` API, with numerical self-verification and a
//! degradation ladder guarding every drained solve.

use crate::cache::{CacheConfig, CacheStats, FactorCache};
use crate::coalesce::{CoalesceQueue, DrainReport, GroupOutcome, Ticket};
use crate::degrade::{Breaker, DegradeConfig};
use crate::entry::CachedFactorization;
use crate::fault::{ServeFaultAction, ServeFaultEvent, ServeFaultPlan, ServeFaultState};
use crate::{CacheKey, ServeError};
use hodlr::{Backend, Factorization, Hodlr, Solve, SolveScalar, SolveVerdict, VerifyConfig};
use hodlr_la::{DenseMatrix, HodlrError};
use hodlr_solver::{Gmres, LinearOperator};
use std::collections::HashMap;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// How a tenant's operator is (re)built on a cache miss.  The argument is
/// a **tolerance scale**: `1.0` asks for the nominal build matching the
/// tenant's cache key; the degradation ladder passes `0.01` for its
/// tighter-tolerance rung.  `Arc`'d so `submit` can clone it out of the
/// registry and run the (potentially expensive) build without holding the
/// registry lock.
type TenantBuilder<T> = Arc<dyn Fn(f64) -> Result<Hodlr<T>, HodlrError> + Send + Sync>;

/// Sizing and robustness knobs of a [`SolveService`].
#[derive(Copy, Clone, Debug)]
pub struct ServeConfig {
    /// Factorization-cache budget.
    pub cache: CacheConfig,
    /// Coalescing-queue admission capacity.
    pub queue_capacity: usize,
    /// Verification + degradation-ladder + circuit-breaker knobs.
    pub degrade: DegradeConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            cache: CacheConfig::default(),
            queue_capacity: 1024,
            degrade: DegradeConfig::default(),
        }
    }
}

/// Service-level counters (cache counters live in [`CacheStats`]).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Requests admitted into the queue.
    pub submitted: u64,
    /// Requests taken off the queue by drain cycles (including cancelled
    /// ones, so `submitted == completed` once the queue is empty).
    pub completed: u64,
    /// Requests that resolved to an error during a drain.
    pub failed: u64,
    /// Drain cycles run.
    pub drains: u64,
    /// Coalesced groups solved across all drains.
    pub groups: u64,
    /// Batched-kernel launches metered across all drains.
    pub launches: u64,
    /// Requests retried individually after a failed coalesced launch.
    pub retried: u64,
    /// Requests abandoned by timed-out waiters (dropped before solving or
    /// solved with the result discarded).
    pub cancelled: u64,
    /// Degradation-ladder rungs consumed across all drains.
    pub ladder_retries: u64,
    /// Requests resolved by a degraded path (tighter-tolerance rebuild,
    /// iterative refinement, GMRES).
    pub degraded: u64,
    /// Requests whose initial solve was faulted or unverified but whose
    /// final result is a verified success.
    pub recovered: u64,
    /// Circuit-breaker trips across all tenants.
    pub breaker_trips: u64,
    /// Cache entries quarantined (removed) after producing non-finite or
    /// faulted output.
    pub quarantined: u64,
}

impl ServeStats {
    /// Batched launches divided by drained requests — the coalescing
    /// figure of merit (`< 1` means batching is amortizing launches).
    pub fn launches_per_request(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.launches as f64 / self.completed as f64
        }
    }
}

/// A multi-tenant solve service: register tenants once, then [`submit`]
/// single right-hand sides from any thread and [`drain`] them in
/// coalesced blocked launches.
///
/// Every entry point takes `&self` and the service is `Send + Sync`, so
/// one instance can be shared across request-handler threads directly (or
/// behind an `Arc`).
///
/// ## Failure model
///
/// Right-hand sides are validated at admission
/// ([`ServeError::InvalidRhs`]); tenant-builder panics are caught at the
/// service boundary ([`ServeError::BuilderPanic`]); drained solutions are
/// verified with a scaled-residual check and unverified or faulted solves
/// escalate through a bounded degradation ladder (see
/// [`DegradeConfig`]); tenants whose requests
/// repeatedly exhaust the ladder trip a circuit breaker
/// ([`ServeError::CircuitOpen`]).  Deterministic fault injection for all
/// of this lives behind [`SolveService::arm_faults`].
///
/// [`submit`]: SolveService::submit
/// [`drain`]: SolveService::drain
pub struct SolveService<T: SolveScalar> {
    cache: FactorCache<T>,
    queue: CoalesceQueue<T>,
    tenants: Mutex<HashMap<String, (CacheKey, TenantBuilder<T>)>>,
    degrade: DegradeConfig,
    breakers: Mutex<HashMap<CacheKey, Breaker>>,
    faults: Mutex<Option<ServeFaultState>>,
    submitted: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    drains: AtomicU64,
    groups: AtomicU64,
    launches: AtomicU64,
    retried: AtomicU64,
    cancelled: AtomicU64,
    ladder_retries: AtomicU64,
    degraded: AtomicU64,
    recovered: AtomicU64,
    breaker_trips: AtomicU64,
    quarantined: AtomicU64,
}

impl<T: SolveScalar> SolveService<T> {
    /// An empty service with the given budgets.
    pub fn new(config: ServeConfig) -> Self {
        SolveService {
            cache: FactorCache::new(config.cache),
            queue: CoalesceQueue::new(config.queue_capacity),
            tenants: Mutex::new(HashMap::new()),
            degrade: config.degrade,
            breakers: Mutex::new(HashMap::new()),
            faults: Mutex::new(None),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            drains: AtomicU64::new(0),
            groups: AtomicU64::new(0),
            launches: AtomicU64::new(0),
            retried: AtomicU64::new(0),
            cancelled: AtomicU64::new(0),
            ladder_retries: AtomicU64::new(0),
            degraded: AtomicU64::new(0),
            recovered: AtomicU64::new(0),
            breaker_trips: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
        }
    }

    /// Register (or replace) a tenant: a cache key describing the
    /// factorization and a builder that produces the matching [`Hodlr`]
    /// on a cache miss.
    ///
    /// The key is the cache's identity, so the builder must honour it:
    /// same source, tree policy, tolerance, backend and precision.  The
    /// degradation ladder's tighter-tolerance rung is skipped for tenants
    /// registered this way; use [`SolveService::register_tenant_scaled`]
    /// to opt in.
    pub fn register_tenant(
        &self,
        name: impl Into<String>,
        key: CacheKey,
        build: impl Fn() -> Result<Hodlr<T>, HodlrError> + Send + Sync + 'static,
    ) {
        // A plain builder has one fixed tolerance; honour only the
        // nominal scale and decline the rest so the ladder skips its
        // tighter-tolerance rung rather than silently re-running the
        // nominal build and mislabelling it "tighter".
        self.register_tenant_scaled(name, key, move |scale| {
            if scale == 1.0 {
                build()
            } else {
                Err(HodlrError::config(
                    "tenant builder does not support tolerance scaling",
                ))
            }
        });
    }

    /// Register a tenant whose builder accepts a **tolerance scale**
    /// (`1.0` = the nominal build matching `key`; the degradation
    /// ladder's tighter-tolerance rung passes `0.01`).  Scaled builds are
    /// transient — never cached, since their tolerance does not match the
    /// tenant's cache key.
    pub fn register_tenant_scaled(
        &self,
        name: impl Into<String>,
        key: CacheKey,
        build: impl Fn(f64) -> Result<Hodlr<T>, HodlrError> + Send + Sync + 'static,
    ) {
        self.lock_tenants()
            .insert(name.into(), (key, Arc::new(build) as TenantBuilder<T>));
    }

    /// Registered tenant names, sorted.
    pub fn tenants(&self) -> Vec<String> {
        let mut names: Vec<String> = self.lock_tenants().keys().cloned().collect();
        names.sort();
        names
    }

    /// Submit one right-hand side for `tenant`, resolving (and if needed
    /// building) its cached factorization, and enqueue it for the next
    /// drain cycle.
    ///
    /// # Errors
    /// [`ServeError::InvalidRhs`] for a right-hand side with non-finite
    /// entries (rejected before it can poison a coalesced batch);
    /// [`ServeError::Solver`] for an unknown tenant, a failed build, or a
    /// right-hand side of the wrong dimension; [`ServeError::BuilderPanic`]
    /// when the tenant's builder panics; [`ServeError::CircuitOpen`] while
    /// the tenant's breaker cools down; [`ServeError::Evicted`] when the
    /// tenant's factorization exceeds the cache budget;
    /// [`ServeError::QueueFull`] under backpressure.
    pub fn submit(&self, tenant: &str, rhs: Vec<T>) -> Result<Ticket<T>, ServeError> {
        if let Some(index) = rhs.iter().position(|v| !v.is_finite()) {
            return Err(ServeError::InvalidRhs { index });
        }
        // Clone the key and the Arc'd builder out of the registry, then
        // drop the lock *before* a potential factorization build: one
        // tenant's cold build must not stall every other tenant's submits
        // (or registrations).  Two threads racing on the same cold key may
        // both build; the cache's double-checked insert keeps exactly one.
        let (key, build) = {
            let tenants = self.lock_tenants();
            let (key, build) = tenants.get(tenant).ok_or_else(|| {
                ServeError::Solver(HodlrError::config(format!(
                    "unknown tenant {tenant:?}: register_tenant first"
                )))
            })?;
            (key.clone(), Arc::clone(build))
        };
        self.check_breaker(&key)?;
        let entry = match self.cache.get(&key) {
            Some(entry) => entry,
            None => {
                let hodlr = Self::run_builder(&build, 1.0)?;
                let entry = CachedFactorization::build(hodlr).map_err(ServeError::Solver)?;
                self.cache.insert(key.clone(), entry)?
            }
        };
        let ticket = self.queue.submit(key, entry, rhs)?;
        self.submitted.fetch_add(1, Ordering::Relaxed);
        Ok(ticket)
    }

    /// Solve one right-hand side immediately, bypassing the queue (the
    /// uncoalesced baseline: one launch sequence per request).
    ///
    /// # Errors
    /// As [`SolveService::submit`], plus any solver error.
    pub fn solve_now(&self, tenant: &str, rhs: &[T]) -> Result<Vec<T>, ServeError> {
        let ticket = self.submit(tenant, rhs.to_vec())?;
        let report = self.drain();
        debug_assert!(report.requests >= 1);
        ticket
            .try_take()
            .expect("drain fulfills every queued ticket")
    }

    /// Run one drain cycle over everything queued, folding its report into
    /// the service counters.  Armed serve-layer faults
    /// ([`SolveService::arm_faults`]) fire first; every drained solution
    /// is then verified and, when needed, escalated through the
    /// degradation ladder.
    pub fn drain(&self) -> DrainReport {
        self.apply_armed_faults();
        let report = self.queue.drain_with(&mut |key, entry, rhss, initial| {
            self.recover_group(key, entry, rhss, initial)
        });
        self.drains.fetch_add(1, Ordering::Relaxed);
        self.completed
            .fetch_add(report.requests as u64, Ordering::Relaxed);
        self.failed
            .fetch_add(report.failed as u64, Ordering::Relaxed);
        self.groups
            .fetch_add(report.groups as u64, Ordering::Relaxed);
        self.launches.fetch_add(report.launches, Ordering::Relaxed);
        self.retried
            .fetch_add(report.retried as u64, Ordering::Relaxed);
        self.cancelled
            .fetch_add(report.cancelled as u64, Ordering::Relaxed);
        self.ladder_retries
            .fetch_add(report.ladder_retries as u64, Ordering::Relaxed);
        self.degraded
            .fetch_add(report.degraded as u64, Ordering::Relaxed);
        self.recovered
            .fetch_add(report.recovered as u64, Ordering::Relaxed);
        report
    }

    /// Arm a deterministic serve-layer fault plan (cache flushes, drain
    /// stalls), restarting the drain-ordinal cursor at 1.  Device-level
    /// fault plans are armed separately on each entry's
    /// [`Device`](hodlr_batch::Device).
    pub fn arm_faults(&self, plan: ServeFaultPlan) {
        *self.lock_faults() = Some(ServeFaultState {
            plan,
            drains_seen: 0,
            fired: Vec::new(),
        });
    }

    /// Disarm the fault plan, returning the faults that actually fired.
    pub fn disarm_faults(&self) -> Vec<ServeFaultEvent> {
        self.lock_faults()
            .take()
            .map(|s| s.fired)
            .unwrap_or_default()
    }

    /// The serve-layer faults fired so far (empty when disarmed).
    pub fn fault_events(&self) -> Vec<ServeFaultEvent> {
        self.lock_faults()
            .as_ref()
            .map(|s| s.fired.clone())
            .unwrap_or_default()
    }

    /// Requests currently queued.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Cache observability.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Service observability.
    pub fn stats(&self) -> ServeStats {
        ServeStats {
            submitted: self.submitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            drains: self.drains.load(Ordering::Relaxed),
            groups: self.groups.load(Ordering::Relaxed),
            launches: self.launches.load(Ordering::Relaxed),
            retried: self.retried.load(Ordering::Relaxed),
            cancelled: self.cancelled.load(Ordering::Relaxed),
            ladder_retries: self.ladder_retries.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
            recovered: self.recovered.load(Ordering::Relaxed),
            breaker_trips: self.breaker_trips.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
        }
    }

    /// Direct access to the factorization cache (tests, warmup sweeps).
    pub fn cache(&self) -> &FactorCache<T> {
        &self.cache
    }

    // ------------------------------------------------------------------
    // Fault application, breaker, builder plumbing.
    // ------------------------------------------------------------------

    /// Fire any serve-layer faults scheduled for this drain ordinal.
    fn apply_armed_faults(&self) {
        let actions = {
            let mut guard = self.lock_faults();
            let Some(state) = guard.as_mut() else { return };
            state.drains_seen += 1;
            let drain = state.drains_seen;
            let actions = state.plan.actions_at(drain);
            for &action in &actions {
                state.fired.push(ServeFaultEvent { drain, action });
            }
            actions
        };
        // The lock is released: a stall must not block fault bookkeeping
        // (or concurrent arm/disarm calls).
        for action in actions {
            match action {
                ServeFaultAction::EvictAll => {
                    self.cache.clear();
                }
                ServeFaultAction::Stall { micros } => {
                    std::thread::sleep(Duration::from_micros(micros));
                }
            }
        }
    }

    /// Reject the submit when the tenant's breaker is open.
    fn check_breaker(&self, key: &CacheKey) -> Result<(), ServeError> {
        let now_drains = self.drains.load(Ordering::Relaxed);
        let mut breakers = self.lock_breakers();
        let Some(breaker) = breakers.get_mut(key) else {
            return Ok(());
        };
        if let Some(until_drain) = breaker.is_open(now_drains) {
            return Err(ServeError::CircuitOpen {
                failures: self.degrade.breaker_threshold,
                until_drain,
            });
        }
        Ok(())
    }

    /// Run a tenant builder with panics caught and attributed.
    fn run_builder(build: &TenantBuilder<T>, scale: f64) -> Result<Hodlr<T>, ServeError> {
        match std::panic::catch_unwind(AssertUnwindSafe(|| build(scale))) {
            Ok(result) => result.map_err(ServeError::Solver),
            Err(payload) => Err(ServeError::BuilderPanic {
                message: payload
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_string()),
            }),
        }
    }

    /// The builder registered for `key` (any tenant with that key; the
    /// key is the factorization's identity, so they must agree).
    fn builder_for_key(&self, key: &CacheKey) -> Option<TenantBuilder<T>> {
        self.lock_tenants()
            .values()
            .find(|(k, _)| k == key)
            .map(|(_, build)| Arc::clone(build))
    }

    fn lock_tenants(
        &self,
    ) -> std::sync::MutexGuard<'_, HashMap<String, (CacheKey, TenantBuilder<T>)>> {
        self.tenants
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn lock_breakers(&self) -> std::sync::MutexGuard<'_, HashMap<CacheKey, Breaker>> {
        self.breakers
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn lock_faults(&self) -> std::sync::MutexGuard<'_, Option<ServeFaultState>> {
        self.faults
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    // ------------------------------------------------------------------
    // Verification + degradation ladder (the drain hook).
    // ------------------------------------------------------------------

    /// The drain hook: verify the whole group's solutions with one
    /// blocked matvec, then escalate every faulted or unverified member
    /// through the degradation ladder; finally feed the tenant's circuit
    /// breaker.
    fn recover_group(
        &self,
        key: &CacheKey,
        entry: &Arc<CachedFactorization<T>>,
        rhss: &[Vec<T>],
        initial: Vec<Result<Vec<T>, ServeError>>,
    ) -> GroupOutcome<T> {
        let cfg = VerifyConfig::with_threshold(self.degrade.residual_threshold);
        let mut out = GroupOutcome::passthrough(Vec::with_capacity(initial.len()));

        // Tiered verification, cheapest first:
        //
        // 1. Finiteness scan (every drain, `O(n·k)`, no operator access):
        //    catches poisoned launches and NaN factors outright.
        // 2. Freivalds-style combined residual (every `verify_stride`-th
        //    drain, **one** matvec per group): fold every finite member
        //    into one weighted column `z = Σ cᵢ·xᵢ` with deterministic
        //    nonzero coefficients and check `A·z ≈ Σ cᵢ·bᵢ`; a single bad
        //    column perturbs `z`'s residual, so the aggregate check only
        //    passes when every member's does (up to exact cancellation,
        //    which the spread coefficients make a measure-zero event).
        // 3. Full blocked `A·X` attribution: paid only when tier 2 trips,
        //    to pin the suspect columns before the ladder runs.
        let mut verdicts: Vec<Option<SolveVerdict>> = vec![None; initial.len()];
        if self.degrade.verify {
            let mut finite_idx: Vec<usize> = Vec::with_capacity(initial.len());
            for (i, r) in initial.iter().enumerate() {
                if let Ok(x) = r {
                    if x.iter().all(|v| v.is_finite()) {
                        finite_idx.push(i);
                    } else {
                        verdicts[i] = Some(SolveVerdict::NonFinite);
                    }
                }
            }
            let stride = self.degrade.verify_stride.max(1);
            let deep = self.drains.load(Ordering::Relaxed).is_multiple_of(stride);
            if deep && !finite_idx.is_empty() {
                let n = entry.dim();
                // Index-keyed coefficients in [1, 2): bounded away from
                // zero (no member is dropped from the check) and spread by
                // the golden-ratio multiplier (no accidental cancellation
                // structure between neighbouring columns).
                let coeff = |c: usize| {
                    1.0 + (((c as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 57) as f64) / 128.0
                };
                let mut z = vec![T::zero(); n];
                let mut bz = vec![T::zero(); n];
                for (c, &i) in finite_idx.iter().enumerate() {
                    let w = T::from_f64(coeff(c));
                    let x = initial[i].as_ref().expect("filtered Ok");
                    for (zj, xj) in z.iter_mut().zip(x) {
                        *zj += w * *xj;
                    }
                    for (bj, rj) in bz.iter_mut().zip(&rhss[i]) {
                        *bj += w * *rj;
                    }
                }
                let az = entry.hodlr().matvec(&z);
                let combined = hodlr::scaled_residual(&az, &z, &bz, entry.norm1_est());
                if combined <= cfg.residual_threshold {
                    for &i in &finite_idx {
                        verdicts[i] = Some(SolveVerdict::Verified { residual: combined });
                    }
                } else {
                    let mut xs = DenseMatrix::<T>::zeros(n, finite_idx.len());
                    for (c, &i) in finite_idx.iter().enumerate() {
                        xs.col_mut(c)
                            .copy_from_slice(initial[i].as_ref().expect("filtered Ok"));
                    }
                    let ax = entry.hodlr().matmat(&xs);
                    for (c, &i) in finite_idx.iter().enumerate() {
                        let x = xs.col(c);
                        let residual =
                            hodlr::scaled_residual(ax.col(c), x, &rhss[i], entry.norm1_est());
                        verdicts[i] = Some(entry.verdict(x, residual, &cfg));
                    }
                }
            }
        }

        for (i, result) in initial.into_iter().enumerate() {
            let fine = match (&result, &verdicts[i]) {
                (Ok(_), Some(v)) => v.is_verified(),
                (Ok(_), None) => true, // verification off
                (Err(_), _) => false,
            };
            if fine {
                out.results.push(result);
            } else {
                let recovered =
                    self.recover_member(key, entry, &rhss[i], result, verdicts[i], &cfg, &mut out);
                out.results.push(recovered);
            }
        }

        // Circuit breaker: every unrecoverable member extends the
        // tenant's failure streak; every success clears it.
        let now_drains = self.drains.load(Ordering::Relaxed);
        let mut trips = 0u64;
        {
            let mut breakers = self.lock_breakers();
            let breaker = breakers.entry(key.clone()).or_default();
            for result in &out.results {
                match result {
                    Ok(_) => breaker.record_success(),
                    Err(
                        ServeError::Solver(_)
                        | ServeError::SuspectSolution { .. }
                        | ServeError::BuilderPanic { .. },
                    ) => {
                        if breaker.record_failure(
                            self.degrade.breaker_threshold,
                            now_drains,
                            self.degrade.breaker_cooldown_drains,
                        ) {
                            trips += 1;
                        }
                    }
                    Err(_) => {}
                }
            }
        }
        self.breaker_trips.fetch_add(trips, Ordering::Relaxed);
        out
    }

    /// One member's walk up the degradation ladder.  Each rung re-solves
    /// by a strictly more conservative path and re-verifies; the first
    /// verified solution wins.  Consumes at most
    /// [`DegradeConfig::max_retries`] rungs.
    #[allow(clippy::too_many_arguments)]
    fn recover_member(
        &self,
        key: &CacheKey,
        entry: &Arc<CachedFactorization<T>>,
        b: &[T],
        initial: Result<Vec<T>, ServeError>,
        initial_verdict: Option<SolveVerdict>,
        cfg: &VerifyConfig,
        out: &mut GroupOutcome<T>,
    ) -> Result<Vec<T>, ServeError> {
        let mut current = Arc::clone(entry);
        // Evidence trail: the best Suspect candidate seen (for the final
        // error and the refinement rung), whether non-finite output was
        // observed (quarantine trigger), and the last solver error.
        let mut best: Option<(Vec<T>, f64)> = None;
        let mut last_suspect: Option<(f64, f64)> = None;
        let mut nonfinite = false;
        let mut last_err: Option<ServeError> = None;
        match (&initial, initial_verdict) {
            (Ok(x), Some(SolveVerdict::Suspect { residual, cond_est })) => {
                best = Some((x.clone(), residual));
                last_suspect = Some((residual, cond_est));
            }
            (Ok(_), Some(SolveVerdict::NonFinite)) => nonfinite = true,
            (Err(e), _) => last_err = Some(e.clone()),
            _ => {}
        }

        #[derive(Copy, Clone, PartialEq)]
        enum Rung {
            Resolve,
            Rebuild,
            Tighten,
            Refine,
            Gmres,
        }
        const LADDER: [Rung; 5] = [
            Rung::Resolve,
            Rung::Rebuild,
            Rung::Tighten,
            Rung::Refine,
            Rung::Gmres,
        ];

        let mut tried = 0u32;
        for rung in LADDER {
            if tried >= self.degrade.max_retries {
                break;
            }
            // Each attempt is Some(solution-or-error); None means the rung
            // was inapplicable and consumed no retry budget.
            let attempt: Option<Result<Vec<T>, ServeError>> = match rung {
                Rung::Resolve => Some(self.metered_solve(&current, b, out)),
                Rung::Rebuild => {
                    match self.cache.get(key) {
                        // A neighbour (or a concurrent submit) already
                        // installed a replacement; use it.
                        Some(fresh) if !Arc::ptr_eq(&fresh, &current) => {
                            current = fresh;
                            Some(self.metered_solve(&current, b, out))
                        }
                        _ => match self.builder_for_key(key) {
                            None => None,
                            Some(build) => {
                                // Quarantine the suspect entry only when it
                                // produced non-finite or faulted output —
                                // a merely ill-conditioned operator would
                                // just churn rebuilds.
                                if (nonfinite || last_err.is_some())
                                    && self.cache.remove_entry(key, &current)
                                {
                                    self.quarantined.fetch_add(1, Ordering::Relaxed);
                                }
                                Some(
                                    Self::run_builder(&build, 1.0)
                                        .and_then(|hodlr| {
                                            CachedFactorization::build(hodlr)
                                                .map_err(ServeError::Solver)
                                        })
                                        .and_then(|fresh| self.cache.insert(key.clone(), fresh))
                                        .inspect(|fresh| {
                                            current = Arc::clone(fresh);
                                        })
                                        .and_then(|_| self.metered_solve(&current, b, out)),
                                )
                            }
                        },
                    }
                }
                Rung::Tighten => match self.builder_for_key(key) {
                    None => None,
                    Some(build) => {
                        // Transient 100×-tighter build; never cached (its
                        // tolerance does not match the tenant's key).
                        let attempt = Self::run_builder(&build, 0.01)
                            .and_then(|hodlr| {
                                CachedFactorization::build(hodlr).map_err(ServeError::Solver)
                            })
                            .map(Arc::new)
                            .and_then(|tight| {
                                self.metered_solve(&tight, b, out).map(|x| (tight, x))
                            });
                        match attempt {
                            // Verify against the tighter operator — it is
                            // the better approximation of A.
                            Ok((tight, x)) => {
                                current = tight;
                                Some(Ok(x))
                            }
                            Err(ServeError::Solver(HodlrError::InvalidConfig { .. })) => {
                                // Unscaled tenant: rung inapplicable.
                                None
                            }
                            Err(e) => Some(Err(e)),
                        }
                    }
                },
                Rung::Refine => match &best {
                    None => None,
                    Some((x0, _)) => {
                        // One residual-correction pass on the best finite
                        // candidate: d = A⁻¹(b − A x₀), x = x₀ + d.
                        let ax = current.hodlr().matvec(x0);
                        let r: Vec<T> = b.iter().zip(&ax).map(|(&bi, &ai)| bi - ai).collect();
                        Some(
                            self.metered_solve(&current, &r, out)
                                .map(|d| x0.iter().zip(&d).map(|(&xi, &di)| xi + di).collect()),
                        )
                    }
                },
                Rung::Gmres => Some(self.metered_gmres(&current, b, out)),
            };
            let Some(attempt) = attempt else { continue };
            tried += 1;
            out.ladder_retries += 1;
            match attempt {
                Ok(x) => {
                    let verdict = if self.degrade.verify {
                        current.verify(&x, b, cfg)
                    } else {
                        SolveVerdict::Verified { residual: 0.0 }
                    };
                    match verdict {
                        SolveVerdict::Verified { .. } => {
                            out.recovered += 1;
                            if matches!(rung, Rung::Tighten | Rung::Refine | Rung::Gmres) {
                                out.degraded += 1;
                            }
                            return Ok(x);
                        }
                        SolveVerdict::Suspect { residual, cond_est } => {
                            last_suspect = Some((residual, cond_est));
                            if best.as_ref().is_none_or(|(_, r)| residual < *r) {
                                best = Some((x, residual));
                            }
                        }
                        SolveVerdict::NonFinite => nonfinite = true,
                    }
                }
                Err(e) => last_err = Some(e),
            }
        }

        // Ladder exhausted: surface the strongest evidence we have.
        match (last_suspect, last_err) {
            (Some((residual, cond_est)), _) => {
                Err(ServeError::SuspectSolution { residual, cond_est })
            }
            (None, Some(err)) => Err(err),
            (None, None) => Err(ServeError::SuspectSolution {
                residual: f64::INFINITY,
                cond_est: f64::INFINITY,
            }),
        }
    }

    /// Solve `b` on `entry`, metering recovery launches into the group
    /// outcome.
    fn metered_solve(
        &self,
        entry: &Arc<CachedFactorization<T>>,
        b: &[T],
        out: &mut GroupOutcome<T>,
    ) -> Result<Vec<T>, ServeError> {
        let device = entry.hodlr().device();
        let (result, metered) = device.meter(|| entry.solver().solve(b));
        if entry.solver().backend() == Backend::Batched {
            out.launches += metered.kernel_launches;
            out.flops += metered.flops;
        }
        result.map_err(ServeError::Solver)
    }

    /// The ladder's last rung: GMRES on the HODLR operator with the
    /// factorization as right preconditioner.
    fn metered_gmres(
        &self,
        entry: &Arc<CachedFactorization<T>>,
        b: &[T],
        out: &mut GroupOutcome<T>,
    ) -> Result<Vec<T>, ServeError> {
        /// `M⁻¹` = one factorization solve; a failed apply poisons the
        /// vector so verification (not a panic) rejects the result.
        struct FactorPrecond<'a, 'b, T: SolveScalar>(&'a Factorization<'b, T>);
        impl<T: SolveScalar> LinearOperator<T> for FactorPrecond<'_, '_, T> {
            fn dim(&self) -> usize {
                Solve::dim(self.0)
            }
            fn apply(&self, x: &[T], y: &mut [T]) {
                y.copy_from_slice(x);
                if self.0.solve_in_place(y).is_err() {
                    y.iter_mut().for_each(|v| *v = T::from_f64(f64::NAN));
                }
            }
        }

        let gmres = Gmres::new()
            .restart(30)
            .max_iters(200)
            .tol(self.degrade.residual_threshold.clamp(1e-12, 1e-2));
        let device = entry.hodlr().device();
        let (result, metered) = device
            .meter(|| gmres.solve_preconditioned(entry.hodlr(), &FactorPrecond(entry.solver()), b));
        if entry.solver().backend() == Backend::Batched {
            out.launches += metered.kernel_launches;
            out.flops += metered.flops;
        }
        // Convergence is not trusted blindly: the caller re-verifies the
        // returned candidate like every other rung's output.
        result
            .map(|solution| solution.x)
            .map_err(ServeError::Solver)
    }
}

// A solve service is shared state by design; prove it at compile time.
const _: () = {
    const fn assert_send_sync<S: Send + Sync>() {}
    assert_send_sync::<SolveService<f64>>();
    assert_send_sync::<SolveService<hodlr_la::Complex64>>();
};
