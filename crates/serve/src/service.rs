//! The multi-tenant front door: tenant registry + cache + coalescing
//! queue behind one `&self` API.

use crate::cache::{CacheConfig, CacheStats, FactorCache};
use crate::coalesce::{CoalesceQueue, DrainReport, Ticket};
use crate::{CacheKey, ServeError};
use hodlr::{Hodlr, SolveScalar};
use hodlr_la::HodlrError;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// How a tenant's operator is (re)built on a cache miss.  `Arc`'d so
/// `submit` can clone it out of the registry and run the (potentially
/// expensive) build without holding the registry lock.
type TenantBuilder<T> = Arc<dyn Fn() -> Result<Hodlr<T>, HodlrError> + Send + Sync>;

/// Sizing knobs of a [`SolveService`].
#[derive(Copy, Clone, Debug)]
pub struct ServeConfig {
    /// Factorization-cache budget.
    pub cache: CacheConfig,
    /// Coalescing-queue admission capacity.
    pub queue_capacity: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            cache: CacheConfig::default(),
            queue_capacity: 1024,
        }
    }
}

/// Service-level counters (cache counters live in [`CacheStats`]).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Requests admitted into the queue.
    pub submitted: u64,
    /// Requests taken off the queue by drain cycles.
    pub completed: u64,
    /// Requests that resolved to an error during a drain.
    pub failed: u64,
    /// Drain cycles run.
    pub drains: u64,
    /// Coalesced groups solved across all drains.
    pub groups: u64,
    /// Batched-kernel launches metered across all drains.
    pub launches: u64,
    /// Requests retried individually after a failed coalesced launch.
    pub retried: u64,
}

impl ServeStats {
    /// Batched launches divided by drained requests — the coalescing
    /// figure of merit (`< 1` means batching is amortizing launches).
    pub fn launches_per_request(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.launches as f64 / self.completed as f64
        }
    }
}

/// A multi-tenant solve service: register tenants once, then [`submit`]
/// single right-hand sides from any thread and [`drain`] them in
/// coalesced blocked launches.
///
/// Every entry point takes `&self` and the service is `Send + Sync`, so
/// one instance can be shared across request-handler threads directly (or
/// behind an `Arc`).
///
/// [`submit`]: SolveService::submit
/// [`drain`]: SolveService::drain
pub struct SolveService<T: SolveScalar> {
    cache: FactorCache<T>,
    queue: CoalesceQueue<T>,
    tenants: Mutex<HashMap<String, (CacheKey, TenantBuilder<T>)>>,
    submitted: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    drains: AtomicU64,
    groups: AtomicU64,
    launches: AtomicU64,
    retried: AtomicU64,
}

impl<T: SolveScalar> SolveService<T> {
    /// An empty service with the given budgets.
    pub fn new(config: ServeConfig) -> Self {
        SolveService {
            cache: FactorCache::new(config.cache),
            queue: CoalesceQueue::new(config.queue_capacity),
            tenants: Mutex::new(HashMap::new()),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            drains: AtomicU64::new(0),
            groups: AtomicU64::new(0),
            launches: AtomicU64::new(0),
            retried: AtomicU64::new(0),
        }
    }

    /// Register (or replace) a tenant: a cache key describing the
    /// factorization and a builder that produces the matching [`Hodlr`]
    /// on a cache miss.
    ///
    /// The key is the cache's identity, so the builder must honour it:
    /// same source, tree policy, tolerance, backend and precision.
    pub fn register_tenant(
        &self,
        name: impl Into<String>,
        key: CacheKey,
        build: impl Fn() -> Result<Hodlr<T>, HodlrError> + Send + Sync + 'static,
    ) {
        self.lock_tenants()
            .insert(name.into(), (key, Arc::new(build) as TenantBuilder<T>));
    }

    /// Registered tenant names, sorted.
    pub fn tenants(&self) -> Vec<String> {
        let mut names: Vec<String> = self.lock_tenants().keys().cloned().collect();
        names.sort();
        names
    }

    /// Submit one right-hand side for `tenant`, resolving (and if needed
    /// building) its cached factorization, and enqueue it for the next
    /// drain cycle.
    ///
    /// # Errors
    /// [`ServeError::Solver`] for an unknown tenant, a failed build, or a
    /// right-hand side of the wrong dimension; [`ServeError::Evicted`]
    /// when the tenant's factorization exceeds the cache budget;
    /// [`ServeError::QueueFull`] under backpressure.
    pub fn submit(&self, tenant: &str, rhs: Vec<T>) -> Result<Ticket<T>, ServeError> {
        // Clone the key and the Arc'd builder out of the registry, then
        // drop the lock *before* a potential factorization build: one
        // tenant's cold build must not stall every other tenant's submits
        // (or registrations).  Two threads racing on the same cold key may
        // both build; the cache's double-checked insert keeps exactly one.
        let (key, build) = {
            let tenants = self.lock_tenants();
            let (key, build) = tenants.get(tenant).ok_or_else(|| {
                ServeError::Solver(HodlrError::config(format!(
                    "unknown tenant {tenant:?}: register_tenant first"
                )))
            })?;
            (key.clone(), Arc::clone(build))
        };
        let entry = self.cache.get_or_build(&key, &*build)?;
        let ticket = self.queue.submit(key, entry, rhs)?;
        self.submitted.fetch_add(1, Ordering::Relaxed);
        Ok(ticket)
    }

    /// Solve one right-hand side immediately, bypassing the queue (the
    /// uncoalesced baseline: one launch sequence per request).
    ///
    /// # Errors
    /// As [`SolveService::submit`], plus any solver error.
    pub fn solve_now(&self, tenant: &str, rhs: &[T]) -> Result<Vec<T>, ServeError> {
        let ticket = self.submit(tenant, rhs.to_vec())?;
        let report = self.drain();
        debug_assert!(report.requests >= 1);
        ticket
            .try_take()
            .expect("drain fulfills every queued ticket")
    }

    /// Run one drain cycle over everything queued, folding its report into
    /// the service counters.
    pub fn drain(&self) -> DrainReport {
        let report = self.queue.drain();
        self.drains.fetch_add(1, Ordering::Relaxed);
        self.completed
            .fetch_add(report.requests as u64, Ordering::Relaxed);
        self.failed
            .fetch_add(report.failed as u64, Ordering::Relaxed);
        self.groups
            .fetch_add(report.groups as u64, Ordering::Relaxed);
        self.launches.fetch_add(report.launches, Ordering::Relaxed);
        self.retried
            .fetch_add(report.retried as u64, Ordering::Relaxed);
        report
    }

    /// Requests currently queued.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Cache observability.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Service observability.
    pub fn stats(&self) -> ServeStats {
        ServeStats {
            submitted: self.submitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            drains: self.drains.load(Ordering::Relaxed),
            groups: self.groups.load(Ordering::Relaxed),
            launches: self.launches.load(Ordering::Relaxed),
            retried: self.retried.load(Ordering::Relaxed),
        }
    }

    /// Direct access to the factorization cache (tests, warmup sweeps).
    pub fn cache(&self) -> &FactorCache<T> {
        &self.cache
    }

    fn lock_tenants(
        &self,
    ) -> std::sync::MutexGuard<'_, HashMap<String, (CacheKey, TenantBuilder<T>)>> {
        self.tenants
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

// A solve service is shared state by design; prove it at compile time.
const _: () = {
    const fn assert_send_sync<S: Send + Sync>() {}
    assert_send_sync::<SolveService<f64>>();
    assert_send_sync::<SolveService<hodlr_la::Complex64>>();
};
