//! Device buffers: explicit host ↔ device copies with metered traffic.

use crate::device::{Device, TransferDirection};
use hodlr_la::Scalar;

/// A column-major allocation living in (virtual) device memory.
///
/// The buffer can only be filled through [`DeviceBuffer::upload`] /
/// [`Device`]-mediated copies so that the amount of data moved over the
/// simulated PCIe link is accounted for, like a `cudaMalloc`'d region.
/// Batched kernels access the underlying storage through
/// [`DeviceBuffer::data`] / [`DeviceBuffer::data_mut`], which models kernels
/// dereferencing device pointers.
#[derive(Debug)]
pub struct DeviceBuffer<'d, T: Scalar> {
    device: &'d Device,
    data: Vec<T>,
}

impl<'d, T: Scalar> DeviceBuffer<'d, T> {
    /// Allocate a zero-initialised buffer of `len` elements on `device`.
    pub fn zeros(device: &'d Device, len: usize) -> Self {
        device.record_alloc((len * std::mem::size_of::<T>()) as u64);
        DeviceBuffer {
            device,
            data: vec![T::zero(); len],
        }
    }

    /// Allocate a buffer and copy `host` into it (a `cudaMemcpy` host →
    /// device; the transferred bytes are metered).
    pub fn from_host(device: &'d Device, host: &[T]) -> Self {
        let mut buf = Self::zeros(device, host.len());
        buf.upload(host);
        buf
    }

    /// Number of elements in the buffer.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if the buffer holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The device owning this buffer.
    pub fn device(&self) -> &'d Device {
        self.device
    }

    /// Overwrite the buffer contents from host memory (metered H2D copy).
    ///
    /// # Panics
    /// Panics if `host.len() != self.len()`.
    pub fn upload(&mut self, host: &[T]) {
        assert_eq!(host.len(), self.data.len(), "upload: length mismatch");
        self.device.record_transfer(
            TransferDirection::HostToDevice,
            std::mem::size_of_val(host) as u64,
        );
        self.data.copy_from_slice(host);
    }

    /// Overwrite a sub-range of the buffer from host memory (metered).
    pub fn upload_at(&mut self, offset: usize, host: &[T]) {
        assert!(
            offset + host.len() <= self.data.len(),
            "upload_at: out of bounds"
        );
        self.device.record_transfer(
            TransferDirection::HostToDevice,
            std::mem::size_of_val(host) as u64,
        );
        self.data[offset..offset + host.len()].copy_from_slice(host);
    }

    /// Copy the whole buffer back to the host (metered D2H copy).
    pub fn download(&self) -> Vec<T> {
        self.device.record_transfer(
            TransferDirection::DeviceToHost,
            (self.data.len() * std::mem::size_of::<T>()) as u64,
        );
        self.data.clone()
    }

    /// Copy a sub-range back to the host (metered D2H copy).
    pub fn download_range(&self, offset: usize, len: usize) -> Vec<T> {
        assert!(
            offset + len <= self.data.len(),
            "download_range: out of bounds"
        );
        self.device.record_transfer(
            TransferDirection::DeviceToHost,
            (len * std::mem::size_of::<T>()) as u64,
        );
        self.data[offset..offset + len].to_vec()
    }

    /// Raw device storage, used by kernels (not metered: models on-device
    /// pointer dereference).
    pub fn data(&self) -> &[T] {
        &self.data
    }

    /// Mutable raw device storage, used by kernels.
    pub fn data_mut(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Size of the allocation in bytes.
    pub fn size_bytes(&self) -> u64 {
        (self.data.len() * std::mem::size_of::<T>()) as u64
    }
}

impl<T: Scalar> Drop for DeviceBuffer<'_, T> {
    fn drop(&mut self) {
        self.device
            .record_free((self.data.len() * std::mem::size_of::<T>()) as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn upload_download_roundtrip() {
        let dev = Device::new();
        let host = vec![1.0_f64, 2.0, 3.0, 4.0];
        let buf = DeviceBuffer::from_host(&dev, &host);
        assert_eq!(buf.len(), 4);
        assert_eq!(buf.download(), host);
        let c = dev.counters();
        assert_eq!(c.h2d_bytes, 32);
        assert_eq!(c.d2h_bytes, 32);
    }

    #[test]
    fn partial_upload_and_download() {
        let dev = Device::new();
        let mut buf = DeviceBuffer::<f64>::zeros(&dev, 6);
        buf.upload_at(2, &[5.0, 6.0]);
        assert_eq!(buf.download_range(2, 2), vec![5.0, 6.0]);
        assert_eq!(buf.download_range(0, 1), vec![0.0]);
    }

    #[test]
    fn allocation_is_tracked_and_released() {
        let dev = Device::new();
        {
            let _buf = DeviceBuffer::<f32>::zeros(&dev, 1024);
            assert_eq!(dev.counters().allocated_bytes, 4096);
        }
        assert_eq!(dev.counters().allocated_bytes, 0);
        assert_eq!(dev.counters().peak_allocated_bytes, 4096);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn upload_wrong_length_panics() {
        let dev = Device::new();
        let mut buf = DeviceBuffer::<f64>::zeros(&dev, 3);
        buf.upload(&[1.0, 2.0]);
    }
}
