//! Batched LU factorization and solve (`getrfBatched` / `getrsBatched`).
//!
//! The factorization is performed in place (the `L` and `U` factors
//! overwrite the input block, exactly as cuBLAS does) and the pivot indices
//! are returned to the host.  The solve overwrites the right-hand sides with
//! the solution.  Both a uniform strided flavour and a per-problem varied
//! flavour are provided, matching the two batched code paths of the paper.

use crate::buffer::DeviceBuffer;
use crate::device::Device;
use crate::fault::{poison_span, FaultAction, LaunchFault};
use crate::gemm::scalar_flop_factor;
use crate::stream::Stream;
use crate::windows::{process_windows_mut, MatWindow};
use hodlr_la::lu::{getrf_in_place, getrs_in_place, SingularError};
use hodlr_la::{MatRef, Scalar};
use parking_lot::Mutex;
use std::fmt;

/// Descriptor of one square block to factorize in place.
#[derive(Copy, Clone, Debug)]
pub struct LuDesc {
    /// Order of the block.
    pub n: usize,
    /// Element offset of the block in the buffer.
    pub offset: usize,
    /// Leading dimension of the block as stored.
    pub ld: usize,
}

impl LuDesc {
    fn span(&self) -> usize {
        if self.n == 0 {
            0
        } else {
            self.ld * (self.n - 1) + self.n
        }
    }

    fn flops<T: Scalar>(&self) -> u64 {
        let n = self.n as u64;
        scalar_flop_factor::<T>() * 2 * n * n * n / 3
    }
}

/// Descriptor of one triangular solve `A X = B` with precomputed LU factors.
#[derive(Copy, Clone, Debug)]
pub struct LuSolveDesc {
    /// Order of the factorized block.
    pub n: usize,
    /// Number of right-hand sides.
    pub nrhs: usize,
    /// Element offset of the LU factors in the factor buffer.
    pub a_offset: usize,
    /// Leading dimension of the factors.
    pub lda: usize,
    /// Element offset of the right-hand sides in the RHS buffer.
    pub b_offset: usize,
    /// Leading dimension of the right-hand sides.
    pub ldb: usize,
}

impl LuSolveDesc {
    fn a_span(&self) -> usize {
        if self.n == 0 {
            0
        } else {
            self.lda * (self.n - 1) + self.n
        }
    }

    fn b_span(&self) -> usize {
        if self.n == 0 || self.nrhs == 0 {
            0
        } else {
            self.ldb * (self.nrhs - 1) + self.n
        }
    }

    fn flops<T: Scalar>(&self) -> u64 {
        scalar_flop_factor::<T>() * 2 * (self.n as u64) * (self.n as u64) * self.nrhs as u64
    }
}

/// A singular diagonal block encountered while factorizing a batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchSingularError {
    /// Which batch entry failed.
    pub batch_index: usize,
    /// The underlying dense-LU error.
    pub inner: SingularError,
}

impl fmt::Display for BatchSingularError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "batch entry {}: {}", self.batch_index, self.inner)
    }
}

impl std::error::Error for BatchSingularError {}

impl From<BatchSingularError> for hodlr_la::HodlrError {
    fn from(e: BatchSingularError) -> Self {
        hodlr_la::HodlrError::SingularPivot {
            context: "batched block".to_string(),
            pivot: e.inner.pivot,
            batch_index: Some(e.batch_index),
        }
    }
}

impl BatchSingularError {
    /// Promote to a [`HodlrError`](hodlr_la::HodlrError) naming the failing
    /// batch (e.g. `"leaf diagonal block"`, `"coupling matrix at level 2"`).
    pub fn into_hodlr(self, context: impl Into<String>) -> hodlr_la::HodlrError {
        hodlr_la::HodlrError::SingularPivot {
            context: context.into(),
            pivot: self.inner.pivot,
            batch_index: Some(self.batch_index),
        }
    }
}

/// How a batched LU factorization can fail: a genuinely singular block, or
/// an injected launch fault from an armed [`FaultPlan`](crate::FaultPlan).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LuBatchError {
    /// A batch entry's block is singular.
    Singular(BatchSingularError),
    /// The launch itself was made to fail by fault injection.
    Fault(LaunchFault),
}

impl fmt::Display for LuBatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LuBatchError::Singular(e) => e.fmt(f),
            LuBatchError::Fault(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for LuBatchError {}

impl From<BatchSingularError> for LuBatchError {
    fn from(e: BatchSingularError) -> Self {
        LuBatchError::Singular(e)
    }
}

impl From<LuBatchError> for hodlr_la::HodlrError {
    fn from(e: LuBatchError) -> Self {
        e.into_hodlr("batched block")
    }
}

impl LuBatchError {
    /// Promote to a [`HodlrError`](hodlr_la::HodlrError) naming the failing
    /// batch, preserving whichever failure kind occurred.
    pub fn into_hodlr(self, context: impl Into<String>) -> hodlr_la::HodlrError {
        match self {
            LuBatchError::Singular(e) => e.into_hodlr(context),
            LuBatchError::Fault(e) => e.into_hodlr(context),
        }
    }

    /// The singular-block failure, if that is what this error is.
    pub fn singular(self) -> Option<BatchSingularError> {
        match self {
            LuBatchError::Singular(e) => Some(e),
            LuBatchError::Fault(_) => None,
        }
    }
}

/// Factorize every block described by `descs` in place and return one pivot
/// vector per block (`getrfBatched`).
///
/// # Errors
/// Returns the index of the first batch entry whose block is singular, or
/// a [`LaunchFault`] when an armed fault plan fails this launch.
///
/// # Panics
/// Panics if blocks overlap or reach past the end of the buffer.
pub fn getrf_batched_varied<T: Scalar>(
    device: &Device,
    stream: Stream,
    descs: &[LuDesc],
    a: &mut DeviceBuffer<'_, T>,
) -> Result<Vec<Vec<usize>>, LuBatchError> {
    if descs.is_empty() {
        return Ok(Vec::new());
    }
    for d in descs {
        assert!(
            d.offset + d.span() <= a.len(),
            "getrf_batched: block out of bounds"
        );
    }
    let flops: u64 = descs.iter().map(|d| d.flops::<T>()).sum();
    device.record_launch("getrf_batched", descs.len(), flops, stream.id());
    let mut poison = false;
    match device.take_launch_fault("getrf_batched") {
        Some((FaultAction::FailLaunch, launch)) => {
            return Err(LuBatchError::Fault(LaunchFault {
                kernel: "getrf_batched",
                launch,
            }))
        }
        Some((FaultAction::PoisonNan, _)) => poison = true,
        Some((FaultAction::Delay { micros }, _)) => {
            std::thread::sleep(std::time::Duration::from_micros(micros))
        }
        None => {}
    }

    let windows: Vec<MatWindow> = descs
        .iter()
        .map(|d| MatWindow {
            offset: d.offset,
            rows: d.n,
            cols: d.n,
            ld: d.ld,
        })
        .collect();
    type BatchResults = Mutex<Vec<Option<Result<Vec<usize>, SingularError>>>>;
    let results: BatchResults = Mutex::new(vec![None; descs.len()]);
    process_windows_mut(a.data_mut(), &windows, device.is_parallel(), |i, block| {
        let r = getrf_in_place(block);
        results.lock()[i] = Some(r);
    });

    let mut pivots = Vec::with_capacity(descs.len());
    for (i, r) in results.into_inner().into_iter().enumerate() {
        match r.expect("every batch entry factored") {
            Ok(p) => pivots.push(p),
            Err(inner) => {
                return Err(LuBatchError::Singular(BatchSingularError {
                    batch_index: i,
                    inner,
                }))
            }
        }
    }
    if poison {
        for d in descs {
            poison_span(a.data_mut(), d.offset, d.span());
        }
    }
    Ok(pivots)
}

/// Uniform-stride batched in-place LU factorization: block `i` is the
/// `n x n` block at offset `i * stride` with leading dimension `lda`.
pub fn getrf_strided_batched<T: Scalar>(
    device: &Device,
    stream: Stream,
    n: usize,
    a: &mut DeviceBuffer<'_, T>,
    lda: usize,
    stride: usize,
    batch: usize,
) -> Result<Vec<Vec<usize>>, LuBatchError> {
    let descs: Vec<LuDesc> = (0..batch)
        .map(|i| LuDesc {
            n,
            offset: i * stride,
            ld: lda,
        })
        .collect();
    getrf_batched_varied(device, stream, &descs, a)
}

/// Solve every system described by `descs` in place using the LU factors
/// produced by [`getrf_batched_varied`] (`getrsBatched`, no-transpose).
///
/// `pivots[i]` must be the pivot vector returned for the factors addressed
/// by `descs[i]`.
///
/// # Panics
/// Panics if the number of pivot vectors differs from the number of
/// descriptors, if RHS windows overlap, or if any window is out of bounds.
pub fn getrs_batched_varied<T: Scalar>(
    device: &Device,
    stream: Stream,
    descs: &[LuSolveDesc],
    a: &DeviceBuffer<'_, T>,
    pivots: &[Vec<usize>],
    b: &mut DeviceBuffer<'_, T>,
) {
    if descs.is_empty() {
        return;
    }
    assert_eq!(
        descs.len(),
        pivots.len(),
        "getrs_batched: one pivot vector per batch entry required"
    );
    for d in descs {
        assert!(
            d.a_offset + d.a_span() <= a.len(),
            "getrs_batched: factors out of bounds"
        );
        assert!(
            d.b_offset + d.b_span() <= b.len(),
            "getrs_batched: rhs out of bounds"
        );
    }
    let flops: u64 = descs.iter().map(|d| d.flops::<T>()).sum();
    device.record_launch("getrs_batched", descs.len(), flops, stream.id());
    // No error channel here (cuBLAS solves report async failures only
    // through garbage output), so FailLaunch degrades to NaN poisoning.
    let mut poison = false;
    match device.take_launch_fault("getrs_batched") {
        Some((FaultAction::FailLaunch | FaultAction::PoisonNan, _)) => poison = true,
        Some((FaultAction::Delay { micros }, _)) => {
            std::thread::sleep(std::time::Duration::from_micros(micros))
        }
        None => {}
    }

    let a_data = a.data();
    let windows: Vec<MatWindow> = descs
        .iter()
        .map(|d| MatWindow {
            offset: d.b_offset,
            rows: d.n,
            cols: d.nrhs,
            ld: d.ldb,
        })
        .collect();
    process_windows_mut(b.data_mut(), &windows, device.is_parallel(), |i, rhs| {
        let d = &descs[i];
        if d.n == 0 || d.nrhs == 0 {
            return;
        }
        let lu = MatRef::from_parts(
            &a_data[d.a_offset..d.a_offset + d.a_span()],
            d.n,
            d.n,
            d.lda.max(1),
        );
        getrs_in_place(lu, &pivots[i], rhs);
    });
    if poison {
        for d in descs {
            poison_span(b.data_mut(), d.b_offset, d.b_span());
        }
    }
}

/// Gather the main diagonal of every block described by `descs`, returning
/// one host vector per block.
///
/// On a real device this is a tiny gather kernel followed by one
/// `cudaMemcpy` of the packed diagonals; here the launch is metered with
/// zero flops (pure data movement) and the packed diagonals are metered as
/// a device-to-host transfer.  The product-form `log_det` of the batched
/// HODLR solver uses this to read the `U` diagonals of its leaf and
/// coupling-matrix LU factors without downloading whole buffers.
///
/// # Panics
/// Panics if any block reaches past the end of the buffer.
pub fn extract_diagonals_batched<T: Scalar>(
    device: &Device,
    stream: Stream,
    descs: &[LuDesc],
    a: &DeviceBuffer<'_, T>,
) -> Vec<Vec<T>> {
    if descs.is_empty() {
        return Vec::new();
    }
    for d in descs {
        assert!(
            d.offset + d.span() <= a.len(),
            "extract_diagonals: block out of bounds"
        );
    }
    device.record_launch("extract_diagonals_batched", descs.len(), 0, stream.id());
    let data = a.data();
    let out: Vec<Vec<T>> = descs
        .iter()
        .map(|d| (0..d.n).map(|i| data[d.offset + i * (d.ld + 1)]).collect())
        .collect();
    let total: usize = descs.iter().map(|d| d.n).sum();
    device.record_transfer(
        crate::device::TransferDirection::DeviceToHost,
        (total * std::mem::size_of::<T>()) as u64,
    );
    out
}

/// Uniform-stride batched LU solve.
#[allow(clippy::too_many_arguments)]
pub fn getrs_strided_batched<T: Scalar>(
    device: &Device,
    stream: Stream,
    n: usize,
    nrhs: usize,
    a: &DeviceBuffer<'_, T>,
    lda: usize,
    stride_a: usize,
    pivots: &[Vec<usize>],
    b: &mut DeviceBuffer<'_, T>,
    ldb: usize,
    stride_b: usize,
    batch: usize,
) {
    let descs: Vec<LuSolveDesc> = (0..batch)
        .map(|i| LuSolveDesc {
            n,
            nrhs,
            a_offset: i * stride_a,
            lda,
            b_offset: i * stride_b,
            ldb,
        })
        .collect();
    getrs_batched_varied(device, stream, &descs, a, pivots, b);
}

#[cfg(test)]
mod tests {
    use super::*;
    use hodlr_la::random::{random_diag_dominant, random_matrix};
    use hodlr_la::{Complex64, DenseMatrix, RealScalar};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn factor_solve_roundtrip<T: Scalar>(parallel: bool) {
        let mut rng = StdRng::seed_from_u64(21);
        let n = 12;
        let nrhs = 4;
        let batch = 5;
        let mats: Vec<DenseMatrix<T>> = (0..batch)
            .map(|_| random_diag_dominant(&mut rng, n))
            .collect();
        let rhs: Vec<DenseMatrix<T>> = (0..batch)
            .map(|_| random_matrix(&mut rng, n, nrhs))
            .collect();

        let dev = if parallel {
            Device::new()
        } else {
            Device::sequential()
        };
        let mut a_host = vec![T::zero(); n * n * batch];
        let mut b_host = vec![T::zero(); n * nrhs * batch];
        for i in 0..batch {
            a_host[i * n * n..(i + 1) * n * n].copy_from_slice(mats[i].data());
            b_host[i * n * nrhs..(i + 1) * n * nrhs].copy_from_slice(rhs[i].data());
        }
        let mut a_buf = DeviceBuffer::from_host(&dev, &a_host);
        let mut b_buf = DeviceBuffer::from_host(&dev, &b_host);

        let pivots = getrf_strided_batched(&dev, Stream::default(), n, &mut a_buf, n, n * n, batch)
            .expect("diag-dominant blocks are invertible");
        getrs_strided_batched(
            &dev,
            Stream::default(),
            n,
            nrhs,
            &a_buf,
            n,
            n * n,
            &pivots,
            &mut b_buf,
            n,
            n * nrhs,
            batch,
        );

        let x_host = b_buf.download();
        for i in 0..batch {
            let x = DenseMatrix::from_col_major(
                n,
                nrhs,
                x_host[i * n * nrhs..(i + 1) * n * nrhs].to_vec(),
            );
            let ax = mats[i].matmul(&x);
            let err = ax.sub(&rhs[i]).norm_max().to_f64();
            assert!(err < 1e-9, "batch {i}: residual {err}");
        }
        assert_eq!(dev.counters().kernel_launches, 2);
    }

    #[test]
    fn batched_lu_real() {
        factor_solve_roundtrip::<f64>(true);
        factor_solve_roundtrip::<f64>(false);
    }

    #[test]
    fn batched_lu_complex() {
        factor_solve_roundtrip::<Complex64>(true);
    }

    #[test]
    fn varied_block_sizes() {
        let mut rng = StdRng::seed_from_u64(22);
        let dev = Device::new();
        let sizes = [3usize, 7, 5];
        let mats: Vec<DenseMatrix<f64>> = sizes
            .iter()
            .map(|&n| random_diag_dominant(&mut rng, n))
            .collect();
        let mut host = Vec::new();
        let mut descs = Vec::new();
        for (i, m) in mats.iter().enumerate() {
            descs.push(LuDesc {
                n: sizes[i],
                offset: host.len(),
                ld: sizes[i],
            });
            host.extend_from_slice(m.data());
        }
        let mut a_buf = DeviceBuffer::from_host(&dev, &host);
        let pivots = getrf_batched_varied(&dev, Stream::default(), &descs, &mut a_buf).unwrap();
        assert_eq!(pivots.len(), 3);

        // Solve one RHS per block and verify against a dense solve.
        let mut b_host = Vec::new();
        let mut solve_descs = Vec::new();
        let rhs: Vec<Vec<f64>> = sizes
            .iter()
            .map(|&n| (0..n).map(|i| i as f64 + 1.0).collect())
            .collect();
        for (i, r) in rhs.iter().enumerate() {
            solve_descs.push(LuSolveDesc {
                n: sizes[i],
                nrhs: 1,
                a_offset: descs[i].offset,
                lda: sizes[i],
                b_offset: b_host.len(),
                ldb: sizes[i],
            });
            b_host.extend_from_slice(r);
        }
        let mut b_buf = DeviceBuffer::from_host(&dev, &b_host);
        getrs_batched_varied(
            &dev,
            Stream::default(),
            &solve_descs,
            &a_buf,
            &pivots,
            &mut b_buf,
        );
        let x_host = b_buf.download();
        for (i, d) in solve_descs.iter().enumerate() {
            let x = &x_host[d.b_offset..d.b_offset + sizes[i]];
            let ax = mats[i].matvec(x);
            for (j, &v) in ax.iter().enumerate() {
                assert!((v - rhs[i][j]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn singular_block_reports_batch_index() {
        let dev = Device::new();
        let good = DenseMatrix::<f64>::identity(3);
        let singular = DenseMatrix::<f64>::zeros(3, 3);
        let mut host = good.data().to_vec();
        host.extend_from_slice(singular.data());
        let mut a_buf = DeviceBuffer::from_host(&dev, &host);
        let err = getrf_strided_batched(&dev, Stream::default(), 3, &mut a_buf, 3, 9, 2)
            .expect_err("second block is singular");
        assert!(err.to_string().contains("batch entry 1"));
        let singular = err.singular().expect("a singular block, not a fault");
        assert_eq!(singular.batch_index, 1);
    }

    #[test]
    fn injected_fault_fails_the_scheduled_getrf_launch() {
        let dev = Device::new();
        dev.arm_faults(crate::FaultPlan::new().fail_launch(2));
        let a = random_diag_dominant::<f64, _>(&mut StdRng::seed_from_u64(40), 4);

        // Launch 1: no rule, factors fine.
        let mut buf = DeviceBuffer::from_host(&dev, a.data());
        getrf_strided_batched(&dev, Stream::default(), 4, &mut buf, 4, 16, 1)
            .expect("launch 1 is clean");

        // Launch 2: scheduled to fail with a typed fault.
        let mut buf = DeviceBuffer::from_host(&dev, a.data());
        let err = getrf_strided_batched(&dev, Stream::default(), 4, &mut buf, 4, 16, 1)
            .expect_err("launch 2 is scheduled to fail");
        match err {
            LuBatchError::Fault(ref f) => {
                assert_eq!(f.kernel, "getrf_batched");
                assert_eq!(f.launch, 2);
            }
            other => panic!("expected a fault, got {other}"),
        }
        let promoted = err.clone().into_hodlr("leaf diagonal block");
        assert!(promoted.to_string().contains("leaf diagonal block"));

        // Launch 3: clean again; the plan only fires on its ordinal.
        let mut buf = DeviceBuffer::from_host(&dev, a.data());
        getrf_strided_batched(&dev, Stream::default(), 4, &mut buf, 4, 16, 1)
            .expect("launch 3 is clean");
        assert_eq!(dev.disarm_faults().len(), 1);
    }

    #[test]
    fn injected_poison_makes_the_solve_output_non_finite() {
        let dev = Device::new();
        let a = random_diag_dominant::<f64, _>(&mut StdRng::seed_from_u64(41), 4);
        let mut a_buf = DeviceBuffer::from_host(&dev, a.data());
        let pivots =
            getrf_strided_batched(&dev, Stream::default(), 4, &mut a_buf, 4, 16, 1).unwrap();

        // FailLaunch on the (infallible) solve degrades to poisoning.
        dev.arm_faults(crate::FaultPlan::new().fail_launch(1));
        let mut b_buf = DeviceBuffer::from_host(&dev, &[1.0, 2.0, 3.0, 4.0]);
        getrs_strided_batched(
            &dev,
            Stream::default(),
            4,
            1,
            &a_buf,
            4,
            16,
            &pivots,
            &mut b_buf,
            4,
            4,
            1,
        );
        assert!(b_buf.download().iter().all(|v| v.is_nan()));
        dev.disarm_faults();

        // With the plan disarmed the same solve is clean again.
        let mut b_buf = DeviceBuffer::from_host(&dev, &[1.0, 2.0, 3.0, 4.0]);
        getrs_strided_batched(
            &dev,
            Stream::default(),
            4,
            1,
            &a_buf,
            4,
            16,
            &pivots,
            &mut b_buf,
            4,
            4,
            1,
        );
        assert!(b_buf.download().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn flop_accounting_for_lu() {
        let dev = Device::new();
        let a = random_diag_dominant::<f64, _>(&mut StdRng::seed_from_u64(23), 8);
        let mut a_buf = DeviceBuffer::from_host(&dev, a.data());
        let _ = getrf_strided_batched(&dev, Stream::default(), 8, &mut a_buf, 8, 64, 1).unwrap();
        assert_eq!(dev.counters().flops, 2 * 8 * 8 * 8 / 3);
    }

    #[test]
    fn diagonal_extraction_gathers_and_meters() {
        let dev = Device::new();
        // Two blocks of different orders packed back to back.
        let a = DenseMatrix::<f64>::from_rows(&[vec![1.0, 3.0], vec![2.0, 4.0]]);
        let b = DenseMatrix::<f64>::from_rows(&[
            vec![5.0, 0.0, 0.0],
            vec![0.0, 6.0, 0.0],
            vec![0.0, 0.0, 7.0],
        ]);
        let mut host = a.data().to_vec();
        host.extend_from_slice(b.data());
        let buf = DeviceBuffer::from_host(&dev, &host);
        let descs = [
            LuDesc {
                n: 2,
                offset: 0,
                ld: 2,
            },
            LuDesc {
                n: 3,
                offset: 4,
                ld: 3,
            },
        ];
        let before = dev.counters();
        let diags = extract_diagonals_batched(&dev, Stream::default(), &descs, &buf);
        assert_eq!(diags, vec![vec![1.0, 4.0], vec![5.0, 6.0, 7.0]]);
        let metered = dev.counters().since(&before);
        assert_eq!(metered.kernel_launches, 1);
        assert_eq!(metered.batch_entries, 2);
        assert_eq!(metered.flops, 0);
        assert_eq!(metered.d2h_bytes, 5 * 8);
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let dev = Device::new();
        let mut a_buf = DeviceBuffer::<f64>::zeros(&dev, 0);
        let pivots = getrf_batched_varied(&dev, Stream::default(), &[], &mut a_buf).unwrap();
        assert!(pivots.is_empty());
        assert_eq!(dev.counters().kernel_launches, 0);
    }
}
