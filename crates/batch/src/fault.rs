//! Seeded, deterministic fault injection for the virtual device.
//!
//! A [`FaultPlan`] is a schedule addressed by *launch ordinal*: "fail the
//! k-th launch", "poison the k-th launch's output with NaN", "delay the
//! k-th launch".  Ordinals count from 1 starting at the moment the plan is
//! armed on a [`Device`](crate::Device), so a plan replays bitwise for a
//! fixed schedule regardless of wall-clock timing.  Plans can be written
//! out rule by rule or derived from a seed with [`FaultPlan::seeded`].
//!
//! Kernels consult the device once per launch via
//! [`Device::take_launch_fault`](crate::Device::take_launch_fault):
//!
//! * [`FaultAction::FailLaunch`] makes fallible kernels (`getrf`/`potrf`)
//!   return a typed [`LaunchFault`] error; infallible kernels
//!   (`getrs`/`potrs`/`gemm`) have no error channel — cuBLAS reports
//!   asynchronous launch failures only through garbage output — so they
//!   degrade the failure to NaN poisoning, which the verification layer
//!   then catches as a `NonFinite` verdict.
//! * [`FaultAction::PoisonNan`] overwrites the launch's output windows
//!   with NaN after the kernel body runs.
//! * [`FaultAction::Delay`] sleeps the issuing thread; results are
//!   unaffected, only timing (used to widen race windows in tests).
//!
//! With no plan armed the only overhead per launch is one relaxed atomic
//! load, so production paths pay nothing.

use hodlr_la::{HodlrError, Scalar};
use std::collections::BTreeMap;
use std::fmt;

/// What to do to a scheduled launch.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// Make the launch fail with a typed error (degrades to NaN poisoning
    /// on kernels without an error channel).
    FailLaunch,
    /// Overwrite the launch's output with NaN.
    PoisonNan,
    /// Sleep the issuing thread for this many microseconds before the
    /// kernel body runs.
    Delay {
        /// Sleep duration in microseconds.
        micros: u64,
    },
}

/// A deterministic, launch-ordinal-addressed fault schedule.
///
/// Ordinals are 1-based and count launches *after the plan is armed*.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    rules: BTreeMap<u64, FaultAction>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule the `k`-th launch (1-based) to fail.
    #[must_use]
    pub fn fail_launch(mut self, k: u64) -> Self {
        self.rules.insert(k, FaultAction::FailLaunch);
        self
    }

    /// Schedule the `k`-th launch's output to be poisoned with NaN.
    #[must_use]
    pub fn poison_launch(mut self, k: u64) -> Self {
        self.rules.insert(k, FaultAction::PoisonNan);
        self
    }

    /// Schedule the `k`-th launch to be delayed by `micros` microseconds.
    #[must_use]
    pub fn delay_launch(mut self, k: u64, micros: u64) -> Self {
        self.rules.insert(k, FaultAction::Delay { micros });
        self
    }

    /// Poison every launch with ordinal in `[first, last]` (inclusive).
    /// Used to simulate a persistently broken device: every solve against
    /// it yields non-finite output until the factorization is rebuilt on a
    /// fresh device.
    #[must_use]
    pub fn poison_range(mut self, first: u64, last: u64) -> Self {
        for k in first..=last {
            self.rules.insert(k, FaultAction::PoisonNan);
        }
        self
    }

    /// Derive `faults` rules pseudo-randomly over launch ordinals
    /// `1..=horizon` from `seed`.  The derivation is a fixed xorshift64*
    /// stream, so the same `(seed, horizon, faults)` triple always yields
    /// the same plan — this is what makes chaos runs replayable bitwise.
    pub fn seeded(seed: u64, horizon: u64, faults: usize) -> Self {
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        let mut next = move || {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state.wrapping_mul(0x2545_f491_4f6c_dd1d)
        };
        let mut plan = FaultPlan::new();
        if horizon == 0 {
            return plan;
        }
        while plan.rules.len() < faults.min(horizon as usize) {
            let k = next() % horizon + 1;
            let action = match next() % 3 {
                0 => FaultAction::FailLaunch,
                1 => FaultAction::PoisonNan,
                _ => FaultAction::Delay {
                    micros: next() % 500,
                },
            };
            plan.rules.insert(k, action);
        }
        plan
    }

    /// Whether the plan has no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Number of scheduled rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// The action scheduled for launch ordinal `k`, if any.
    pub fn rule(&self, k: u64) -> Option<FaultAction> {
        self.rules.get(&k).copied()
    }

    /// Iterate over `(ordinal, action)` rules in ordinal order.
    pub fn rules(&self) -> impl Iterator<Item = (u64, FaultAction)> + '_ {
        self.rules.iter().map(|(&k, &a)| (k, a))
    }
}

/// A launch that was made to fail by an armed [`FaultPlan`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LaunchFault {
    /// Kernel whose launch failed.
    pub kernel: &'static str,
    /// Launch ordinal (1-based, counted from arming) that failed.
    pub launch: u64,
}

impl fmt::Display for LaunchFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "injected fault: {} launch #{} failed",
            self.kernel, self.launch
        )
    }
}

impl std::error::Error for LaunchFault {}

impl LaunchFault {
    /// Promote to a [`HodlrError`] naming what the launch was doing.
    pub fn into_hodlr(self, context: impl Into<String>) -> HodlrError {
        HodlrError::DeviceFault {
            context: context.into(),
            kernel: self.kernel.to_string(),
            launch: self.launch,
        }
    }
}

/// One fault that actually fired, for observability and test assertions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultEvent {
    /// Kernel the fault hit.
    pub kernel: &'static str,
    /// Launch ordinal it hit.
    pub launch: u64,
    /// What was injected.
    pub action: FaultAction,
}

/// Overwrite `count` elements of `data` starting at `offset` with NaN.
/// Saturates at the buffer end (windows are validated by the kernels
/// before this runs).
pub(crate) fn poison_span<T: Scalar>(data: &mut [T], offset: usize, count: usize) {
    let end = (offset + count).min(data.len());
    let nan = T::from_f64(f64::NAN);
    for v in &mut data[offset..end] {
        *v = nan;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_schedule_round_trips() {
        let plan = FaultPlan::new()
            .fail_launch(3)
            .poison_launch(5)
            .delay_launch(7, 250);
        assert_eq!(plan.len(), 3);
        assert_eq!(plan.rule(3), Some(FaultAction::FailLaunch));
        assert_eq!(plan.rule(5), Some(FaultAction::PoisonNan));
        assert_eq!(plan.rule(7), Some(FaultAction::Delay { micros: 250 }));
        assert_eq!(plan.rule(4), None);
        let ordinals: Vec<u64> = plan.rules().map(|(k, _)| k).collect();
        assert_eq!(ordinals, vec![3, 5, 7]);
    }

    #[test]
    fn seeded_plans_are_deterministic_and_seed_sensitive() {
        let a = FaultPlan::seeded(42, 100, 8);
        let b = FaultPlan::seeded(42, 100, 8);
        let c = FaultPlan::seeded(43, 100, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 8);
        assert!(a.rules().all(|(k, _)| (1..=100).contains(&k)));
    }

    #[test]
    fn seeded_plan_saturates_at_horizon() {
        let plan = FaultPlan::seeded(7, 3, 10);
        assert_eq!(plan.len(), 3);
        assert_eq!(FaultPlan::seeded(7, 0, 10).len(), 0);
    }

    #[test]
    fn poison_range_covers_inclusive_window() {
        let plan = FaultPlan::new().poison_range(2, 4);
        assert_eq!(plan.len(), 3);
        assert!(plan.rules().all(|(_, a)| a == FaultAction::PoisonNan));
    }

    #[test]
    fn launch_fault_promotes_to_typed_error() {
        let fault = LaunchFault {
            kernel: "getrf_batched",
            launch: 9,
        };
        assert!(fault.to_string().contains("launch #9"));
        let err = fault.into_hodlr("leaf diagonal block");
        match err {
            HodlrError::DeviceFault {
                context,
                kernel,
                launch,
            } => {
                assert_eq!(context, "leaf diagonal block");
                assert_eq!(kernel, "getrf_batched");
                assert_eq!(launch, 9);
            }
            other => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn poison_span_writes_nan_and_saturates() {
        let mut data = vec![1.0f64; 4];
        poison_span(&mut data, 2, 10);
        assert!(data[0].is_finite() && data[1].is_finite());
        assert!(data[2].is_nan() && data[3].is_nan());
    }
}
