//! Batched general matrix-matrix multiplication.
//!
//! Three flavours mirror the cuBLAS kernels the paper uses:
//!
//! * [`gemm_strided_batched`] — every problem in the batch has the same
//!   shape and consecutive problems are a fixed stride apart
//!   (`cublasGemmStridedBatched`), the fast path when all ranks at a tree
//!   level are equal;
//! * [`gemm_batched_varied`] — per-problem descriptors with independent
//!   shapes and offsets (`cublasGemmBatched` with pointer arrays), used when
//!   the off-diagonal ranks vary;
//! * [`gemm_batched_aliased`] — the same as the varied flavour except that
//!   the `A` operand lives in the *same* device buffer as the output `C`
//!   (the in-place update `Ybig(:,1:rl) -= Y ⊙ W` of Algorithm 3, line 10).

use crate::buffer::DeviceBuffer;
use crate::device::Device;
use crate::fault::{poison_span, FaultAction};
use crate::stream::Stream;
use crate::windows::{process_windows_mut, MatWindow};
use hodlr_la::blas::gemm_flops;
use hodlr_la::{gemm, MatMut, MatRef, Op, Scalar};

/// Descriptor of one problem inside a varied batch:
/// `C <- alpha * op_a(A) * op_b(B) + beta * C` where the operands are
/// column-major windows into device buffers.
#[derive(Copy, Clone, Debug)]
pub struct GemmDesc<T: Scalar> {
    /// Rows of `op_a(A)` and of `C`.
    pub m: usize,
    /// Columns of `op_b(B)` and of `C`.
    pub n: usize,
    /// Columns of `op_a(A)` / rows of `op_b(B)`.
    pub k: usize,
    /// Scale applied to the product.
    pub alpha: T,
    /// Scale applied to the existing contents of `C`.
    pub beta: T,
    /// Operation applied to `A`.
    pub op_a: Op,
    /// Operation applied to `B`.
    pub op_b: Op,
    /// Element offset of `A` in its buffer.
    pub a_offset: usize,
    /// Leading dimension of `A` as stored.
    pub lda: usize,
    /// Element offset of `B` in its buffer.
    pub b_offset: usize,
    /// Leading dimension of `B` as stored.
    pub ldb: usize,
    /// Element offset of `C` in its buffer.
    pub c_offset: usize,
    /// Leading dimension of `C`.
    pub ldc: usize,
}

impl<T: Scalar> GemmDesc<T> {
    /// Stored extent (rows, cols) of the `A` operand.
    fn a_dims(&self) -> (usize, usize) {
        match self.op_a {
            Op::None => (self.m, self.k),
            Op::Trans | Op::ConjTrans => (self.k, self.m),
        }
    }

    /// Stored extent (rows, cols) of the `B` operand.
    fn b_dims(&self) -> (usize, usize) {
        match self.op_b {
            Op::None => (self.k, self.n),
            Op::Trans | Op::ConjTrans => (self.n, self.k),
        }
    }

    fn a_span(&self) -> usize {
        let (r, c) = self.a_dims();
        span(r, c, self.lda)
    }

    fn b_span(&self) -> usize {
        let (r, c) = self.b_dims();
        span(r, c, self.ldb)
    }

    fn c_span(&self) -> usize {
        span(self.m, self.n, self.ldc)
    }

    fn flops(&self) -> u64 {
        scalar_flop_factor::<T>() * gemm_flops(self.m, self.n, self.k)
    }
}

/// Number of elements a column-major `rows x cols` window with leading
/// dimension `ld` spans in its buffer (zero for an empty window).
fn span(rows: usize, cols: usize, ld: usize) -> usize {
    if rows == 0 || cols == 0 {
        0
    } else {
        ld * (cols - 1) + rows
    }
}

/// Real-flop multiplier: a complex multiply-add costs 4x the real one.
pub(crate) fn scalar_flop_factor<T: Scalar>() -> u64 {
    if T::IS_COMPLEX {
        4
    } else {
        1
    }
}

fn gemm_into<T: Scalar>(desc: &GemmDesc<T>, a: &[T], b: &[T], c: MatMut<'_, T>) {
    let (ar, ac) = desc.a_dims();
    let (br, bc) = desc.b_dims();
    let a_ref = MatRef::from_parts(a, ar, ac, desc.lda.max(1));
    let b_ref = MatRef::from_parts(b, br, bc, desc.ldb.max(1));
    gemm(desc.alpha, a_ref, desc.op_a, b_ref, desc.op_b, desc.beta, c);
}

/// `cublasGemmStridedBatched`: `batch` problems of identical shape, with
/// operand `i` located at `i * stride_x` in its buffer.
///
/// # Panics
/// Panics if any operand window reaches past the end of its buffer or if the
/// output windows overlap.
#[allow(clippy::too_many_arguments)]
pub fn gemm_strided_batched<T: Scalar>(
    device: &Device,
    stream: Stream,
    op_a: Op,
    op_b: Op,
    m: usize,
    n: usize,
    k: usize,
    alpha: T,
    a: &DeviceBuffer<'_, T>,
    lda: usize,
    stride_a: usize,
    b: &DeviceBuffer<'_, T>,
    ldb: usize,
    stride_b: usize,
    beta: T,
    c: &mut DeviceBuffer<'_, T>,
    ldc: usize,
    stride_c: usize,
    batch: usize,
) {
    if batch == 0 || m == 0 || n == 0 {
        return;
    }
    let desc0 = GemmDesc {
        m,
        n,
        k,
        alpha,
        beta,
        op_a,
        op_b,
        a_offset: 0,
        lda,
        b_offset: 0,
        ldb,
        c_offset: 0,
        ldc,
    };
    let c_span = desc0.c_span();
    assert!(
        stride_c >= c_span || batch == 1,
        "gemm_strided_batched: output stride {stride_c} smaller than the output window {c_span}"
    );
    assert!(
        (batch - 1) * stride_a + desc0.a_span() <= a.len(),
        "gemm_strided_batched: A out of bounds"
    );
    assert!(
        (batch - 1) * stride_b + desc0.b_span() <= b.len(),
        "gemm_strided_batched: B out of bounds"
    );
    assert!(
        (batch - 1) * stride_c + c_span <= c.len(),
        "gemm_strided_batched: C out of bounds"
    );

    let flops: u64 = desc0.flops() * batch as u64;
    device.record_launch("gemm_strided_batched", batch, flops, stream.id());
    // No error channel on gemm (see `getrs_batched_varied`): FailLaunch
    // degrades to NaN poisoning of the output windows.
    let mut poison = false;
    match device.take_launch_fault("gemm_strided_batched") {
        Some((FaultAction::FailLaunch | FaultAction::PoisonNan, _)) => poison = true,
        Some((FaultAction::Delay { micros }, _)) => {
            std::thread::sleep(std::time::Duration::from_micros(micros))
        }
        None => {}
    }

    let a_data = a.data();
    let b_data = b.data();
    let windows: Vec<MatWindow> = (0..batch)
        .map(|i| MatWindow {
            offset: i * stride_c,
            rows: m,
            cols: n,
            ld: ldc,
        })
        .collect();
    process_windows_mut(c.data_mut(), &windows, device.is_parallel(), |i, c_view| {
        let a_off = i * stride_a;
        let b_off = i * stride_b;
        gemm_into(
            &desc0,
            &a_data[a_off..a_off + desc0.a_span()],
            &b_data[b_off..b_off + desc0.b_span()],
            c_view,
        );
    });
    if poison {
        for i in 0..batch {
            poison_span(c.data_mut(), i * stride_c, c_span);
        }
    }
}

/// `cublasGemmBatched` with per-problem shapes: every descriptor addresses
/// its own windows of the `a`, `b` and `c` buffers.
///
/// # Panics
/// Panics if output windows overlap or any window is out of bounds.
pub fn gemm_batched_varied<T: Scalar>(
    device: &Device,
    stream: Stream,
    descs: &[GemmDesc<T>],
    a: &DeviceBuffer<'_, T>,
    b: &DeviceBuffer<'_, T>,
    c: &mut DeviceBuffer<'_, T>,
) {
    if descs.is_empty() {
        return;
    }
    for d in descs {
        assert!(
            d.a_offset + d.a_span() <= a.len(),
            "gemm_batched_varied: A out of bounds"
        );
        assert!(
            d.b_offset + d.b_span() <= b.len(),
            "gemm_batched_varied: B out of bounds"
        );
        assert!(
            d.c_offset + d.c_span() <= c.len(),
            "gemm_batched_varied: C out of bounds"
        );
    }
    let flops: u64 = descs.iter().map(|d| d.flops()).sum();
    device.record_launch("gemm_batched", descs.len(), flops, stream.id());
    // No error channel on gemm (see `getrs_batched_varied`): FailLaunch
    // degrades to NaN poisoning of the output windows.
    let mut poison = false;
    match device.take_launch_fault("gemm_batched") {
        Some((FaultAction::FailLaunch | FaultAction::PoisonNan, _)) => poison = true,
        Some((FaultAction::Delay { micros }, _)) => {
            std::thread::sleep(std::time::Duration::from_micros(micros))
        }
        None => {}
    }

    let a_data = a.data();
    let b_data = b.data();
    let windows: Vec<MatWindow> = descs
        .iter()
        .map(|d| MatWindow {
            offset: d.c_offset,
            rows: d.m,
            cols: d.n,
            ld: d.ldc,
        })
        .collect();
    process_windows_mut(c.data_mut(), &windows, device.is_parallel(), |i, c_view| {
        let d = &descs[i];
        gemm_into(
            d,
            &a_data[d.a_offset..d.a_offset + d.a_span()],
            &b_data[d.b_offset..d.b_offset + d.b_span()],
            c_view,
        );
    });
    if poison {
        for d in descs {
            poison_span(c.data_mut(), d.c_offset, d.c_span());
        }
    }
}

/// Varied batched gemm whose `A` operand lives in the same buffer as the
/// output `C` (used for the in-place low-rank update of Algorithm 3/4:
/// `Ybig(:, 1:rl) <- Ybig(:, 1:rl) - Y^{l+1} ⊙ W`).
///
/// The `A` windows are copied into thread-local scratch before the product
/// is accumulated into `C`, so `A` and `C` windows may interleave freely in
/// the shared buffer as long as the `C` windows themselves do not overlap.
pub fn gemm_batched_aliased<T: Scalar>(
    device: &Device,
    stream: Stream,
    descs: &[GemmDesc<T>],
    ac: &mut DeviceBuffer<'_, T>,
    b: &DeviceBuffer<'_, T>,
) {
    if descs.is_empty() {
        return;
    }
    for d in descs {
        assert!(
            d.a_offset + d.a_span() <= ac.len(),
            "gemm_batched_aliased: A out of bounds"
        );
        assert!(
            d.b_offset + d.b_span() <= b.len(),
            "gemm_batched_aliased: B out of bounds"
        );
        assert!(
            d.c_offset + d.c_span() <= ac.len(),
            "gemm_batched_aliased: C out of bounds"
        );
    }
    let flops: u64 = descs.iter().map(|d| d.flops()).sum();
    device.record_launch("gemm_batched_aliased", descs.len(), flops, stream.id());
    // No error channel on gemm (see `getrs_batched_varied`): FailLaunch
    // degrades to NaN poisoning of the output windows.
    let mut poison = false;
    match device.take_launch_fault("gemm_batched_aliased") {
        Some((FaultAction::FailLaunch | FaultAction::PoisonNan, _)) => poison = true,
        Some((FaultAction::Delay { micros }, _)) => {
            std::thread::sleep(std::time::Duration::from_micros(micros))
        }
        None => {}
    }

    let b_data = b.data();

    // Copy the A windows out first (cheap: they are rank-sized), then write
    // into disjoint C windows in parallel.
    let a_copies: Vec<Vec<T>> = descs
        .iter()
        .map(|d| ac.data()[d.a_offset..d.a_offset + d.a_span()].to_vec())
        .collect();

    let windows: Vec<MatWindow> = descs
        .iter()
        .map(|d| MatWindow {
            offset: d.c_offset,
            rows: d.m,
            cols: d.n,
            ld: d.ldc,
        })
        .collect();
    process_windows_mut(
        ac.data_mut(),
        &windows,
        device.is_parallel(),
        |i, c_view| {
            let d = &descs[i];
            gemm_into(
                d,
                &a_copies[i],
                &b_data[d.b_offset..d.b_offset + d.b_span()],
                c_view,
            );
        },
    );
    if poison {
        for d in descs {
            poison_span(ac.data_mut(), d.c_offset, d.c_span());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hodlr_la::random::random_matrix;
    use hodlr_la::{Complex64, DenseMatrix, RealScalar};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn upload_matrices<'d, T: Scalar>(
        dev: &'d Device,
        mats: &[DenseMatrix<T>],
    ) -> (DeviceBuffer<'d, T>, usize) {
        let stride = mats.iter().map(|m| m.data().len()).max().unwrap_or(0);
        let mut host = vec![T::zero(); stride * mats.len()];
        for (i, m) in mats.iter().enumerate() {
            host[i * stride..i * stride + m.data().len()].copy_from_slice(m.data());
        }
        (DeviceBuffer::from_host(dev, &host), stride)
    }

    fn strided_batched_matches_reference<T: Scalar>(parallel: bool) {
        let mut rng = StdRng::seed_from_u64(7);
        let (m, n, k, batch) = (9, 5, 7, 6);
        let a_mats: Vec<DenseMatrix<T>> =
            (0..batch).map(|_| random_matrix(&mut rng, m, k)).collect();
        let b_mats: Vec<DenseMatrix<T>> =
            (0..batch).map(|_| random_matrix(&mut rng, k, n)).collect();

        let dev = if parallel {
            Device::new()
        } else {
            Device::sequential()
        };
        let (a_buf, stride_a) = upload_matrices(&dev, &a_mats);
        let (b_buf, stride_b) = upload_matrices(&dev, &b_mats);
        let mut c_buf = DeviceBuffer::<T>::zeros(&dev, m * n * batch);

        gemm_strided_batched(
            &dev,
            Stream::default(),
            Op::None,
            Op::None,
            m,
            n,
            k,
            T::one(),
            &a_buf,
            m,
            stride_a,
            &b_buf,
            k,
            stride_b,
            T::zero(),
            &mut c_buf,
            m,
            m * n,
            batch,
        );

        let c_host = c_buf.download();
        for i in 0..batch {
            let reference = a_mats[i].matmul(&b_mats[i]);
            let got =
                DenseMatrix::from_col_major(m, n, c_host[i * m * n..(i + 1) * m * n].to_vec());
            assert!(got.sub(&reference).norm_max().to_f64() < 1e-12);
        }
        assert_eq!(dev.counters().kernel_launches, 1);
        assert_eq!(dev.counters().batch_entries, batch as u64);
    }

    #[test]
    fn strided_batched_real_parallel_and_sequential() {
        strided_batched_matches_reference::<f64>(true);
        strided_batched_matches_reference::<f64>(false);
    }

    #[test]
    fn strided_batched_complex() {
        strided_batched_matches_reference::<Complex64>(true);
    }

    #[test]
    fn varied_batched_transpose_ops() {
        let mut rng = StdRng::seed_from_u64(8);
        let dev = Device::new();
        // Two problems of different shapes, with op_a = ConjTrans.
        let a0: DenseMatrix<f64> = random_matrix(&mut rng, 6, 4); // used as A^T: 4x6
        let b0: DenseMatrix<f64> = random_matrix(&mut rng, 6, 3);
        let a1: DenseMatrix<f64> = random_matrix(&mut rng, 5, 2);
        let b1: DenseMatrix<f64> = random_matrix(&mut rng, 5, 7);

        let mut a_host = a0.data().to_vec();
        let a1_off = a_host.len();
        a_host.extend_from_slice(a1.data());
        let mut b_host = b0.data().to_vec();
        let b1_off = b_host.len();
        b_host.extend_from_slice(b1.data());

        let a_buf = DeviceBuffer::from_host(&dev, &a_host);
        let b_buf = DeviceBuffer::from_host(&dev, &b_host);
        let mut c_buf = DeviceBuffer::<f64>::zeros(&dev, 4 * 3 + 2 * 7);

        let descs = vec![
            GemmDesc {
                m: 4,
                n: 3,
                k: 6,
                alpha: 1.0,
                beta: 0.0,
                op_a: Op::ConjTrans,
                op_b: Op::None,
                a_offset: 0,
                lda: 6,
                b_offset: 0,
                ldb: 6,
                c_offset: 0,
                ldc: 4,
            },
            GemmDesc {
                m: 2,
                n: 7,
                k: 5,
                alpha: 1.0,
                beta: 0.0,
                op_a: Op::ConjTrans,
                op_b: Op::None,
                a_offset: a1_off,
                lda: 5,
                b_offset: b1_off,
                ldb: 5,
                c_offset: 12,
                ldc: 2,
            },
        ];
        gemm_batched_varied(&dev, Stream::default(), &descs, &a_buf, &b_buf, &mut c_buf);

        let c_host = c_buf.download();
        let r0 = a0.conj_transpose().matmul(&b0);
        let r1 = a1.conj_transpose().matmul(&b1);
        let got0 = DenseMatrix::from_col_major(4, 3, c_host[0..12].to_vec());
        let got1 = DenseMatrix::from_col_major(2, 7, c_host[12..26].to_vec());
        assert!(got0.sub(&r0).norm_max() < 1e-12);
        assert!(got1.sub(&r1).norm_max() < 1e-12);
    }

    #[test]
    fn aliased_update_subtracts_in_place() {
        let mut rng = StdRng::seed_from_u64(9);
        let dev = Device::new();
        // Buffer layout: [ C (8x3) | A (8x2) ], update C <- C - A * B.
        let c0: DenseMatrix<f64> = random_matrix(&mut rng, 8, 3);
        let a: DenseMatrix<f64> = random_matrix(&mut rng, 8, 2);
        let b: DenseMatrix<f64> = random_matrix(&mut rng, 2, 3);

        let mut host = c0.data().to_vec();
        let a_off = host.len();
        host.extend_from_slice(a.data());
        let mut ac_buf = DeviceBuffer::from_host(&dev, &host);
        let b_buf = DeviceBuffer::from_host(&dev, b.data());

        let descs = vec![GemmDesc {
            m: 8,
            n: 3,
            k: 2,
            alpha: -1.0,
            beta: 1.0,
            op_a: Op::None,
            op_b: Op::None,
            a_offset: a_off,
            lda: 8,
            b_offset: 0,
            ldb: 2,
            c_offset: 0,
            ldc: 8,
        }];
        gemm_batched_aliased(&dev, Stream::default(), &descs, &mut ac_buf, &b_buf);

        let got = DenseMatrix::from_col_major(8, 3, ac_buf.download()[0..24].to_vec());
        let mut expect = c0.clone();
        let upd = a.matmul(&b);
        expect.axpy(-1.0, &upd);
        assert!(got.sub(&expect).norm_max() < 1e-12);
    }

    #[test]
    fn beta_scaling_accumulates() {
        let dev = Device::new();
        let a = DenseMatrix::<f64>::identity(3);
        let b = DenseMatrix::<f64>::identity(3);
        let a_buf = DeviceBuffer::from_host(&dev, a.data());
        let b_buf = DeviceBuffer::from_host(&dev, b.data());
        let c0 = DenseMatrix::<f64>::from_fn(3, 3, |i, j| (i + j) as f64);
        let mut c_buf = DeviceBuffer::from_host(&dev, c0.data());
        gemm_strided_batched(
            &dev,
            Stream::default(),
            Op::None,
            Op::None,
            3,
            3,
            3,
            2.0,
            &a_buf,
            3,
            9,
            &b_buf,
            3,
            9,
            3.0,
            &mut c_buf,
            3,
            9,
            1,
        );
        let got = DenseMatrix::from_col_major(3, 3, c_buf.download());
        for i in 0..3 {
            for j in 0..3 {
                let expect = 3.0 * (i + j) as f64 + if i == j { 2.0 } else { 0.0 };
                assert!((got[(i, j)] - expect).abs() < 1e-13);
            }
        }
    }

    #[test]
    fn flop_counter_matches_formula() {
        let dev = Device::new();
        let a_buf = DeviceBuffer::<f64>::from_host(&dev, &[1.0; 4 * 5]);
        let b_buf = DeviceBuffer::<f64>::from_host(&dev, &[1.0; 5 * 3]);
        let mut c_buf = DeviceBuffer::<f64>::zeros(&dev, 4 * 3 * 2);
        gemm_strided_batched(
            &dev,
            Stream::default(),
            Op::None,
            Op::None,
            4,
            3,
            5,
            1.0,
            &a_buf,
            4,
            0,
            &b_buf,
            5,
            0,
            0.0,
            &mut c_buf,
            4,
            12,
            2,
        );
        assert_eq!(dev.counters().flops, 2 * 2 * 4 * 3 * 5);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_panics() {
        let dev = Device::new();
        let a_buf = DeviceBuffer::<f64>::zeros(&dev, 4);
        let b_buf = DeviceBuffer::<f64>::zeros(&dev, 4);
        let mut c_buf = DeviceBuffer::<f64>::zeros(&dev, 1);
        gemm_strided_batched(
            &dev,
            Stream::default(),
            Op::None,
            Op::None,
            2,
            2,
            2,
            1.0,
            &a_buf,
            2,
            4,
            &b_buf,
            2,
            4,
            0.0,
            &mut c_buf,
            2,
            4,
            1,
        );
    }
}
