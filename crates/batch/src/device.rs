//! The virtual device: counters, launch metering, the PCIe model, and the
//! fault-injection arming point.

use crate::fault::{FaultAction, FaultEvent, FaultPlan};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Direction of an explicit host/device transfer.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum TransferDirection {
    /// Host to device (`cudaMemcpyHostToDevice`).
    HostToDevice,
    /// Device to host (`cudaMemcpyDeviceToHost`).
    DeviceToHost,
}

/// A snapshot of the device counters, cheap to copy and subtract.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Number of batched-kernel launches issued so far.
    pub kernel_launches: u64,
    /// Number of individual problems executed across all batches.
    pub batch_entries: u64,
    /// Floating-point operations executed by the kernels.
    pub flops: u64,
    /// Bytes copied host → device.
    pub h2d_bytes: u64,
    /// Bytes copied device → host.
    pub d2h_bytes: u64,
    /// Bytes currently allocated in device buffers.
    pub allocated_bytes: u64,
    /// High-water mark of allocated device memory.
    pub peak_allocated_bytes: u64,
}

impl CounterSnapshot {
    /// Counter-wise difference `self - earlier`, used to meter a single
    /// phase (e.g. factorization only).  Allocation gauges are carried over
    /// from `self`.
    pub fn since(&self, earlier: &CounterSnapshot) -> CounterSnapshot {
        CounterSnapshot {
            kernel_launches: self.kernel_launches - earlier.kernel_launches,
            batch_entries: self.batch_entries - earlier.batch_entries,
            flops: self.flops - earlier.flops,
            h2d_bytes: self.h2d_bytes - earlier.h2d_bytes,
            d2h_bytes: self.d2h_bytes - earlier.d2h_bytes,
            allocated_bytes: self.allocated_bytes,
            peak_allocated_bytes: self.peak_allocated_bytes,
        }
    }

    /// GFlop/s for this snapshot given an elapsed wall-clock time.
    pub fn gflops(&self, elapsed_secs: f64) -> f64 {
        if elapsed_secs <= 0.0 {
            return 0.0;
        }
        self.flops as f64 / elapsed_secs / 1.0e9
    }
}

/// The virtual batched-BLAS device.
///
/// A `Device` is shared by reference; all counters use atomics so that
/// kernels running on rayon worker threads can report their work without
/// locking.  The default configuration mirrors the paper's testbed: a PCIe
/// 3.0 ×16 link (15.75 GB/s peak, ~12 GB/s achieved) between host and device.
#[derive(Debug)]
pub struct Device {
    kernel_launches: AtomicU64,
    batch_entries: AtomicU64,
    flops: AtomicU64,
    h2d_bytes: AtomicU64,
    d2h_bytes: AtomicU64,
    allocated_bytes: AtomicU64,
    peak_allocated_bytes: AtomicU64,
    /// Achievable host↔device bandwidth in bytes per second (simulated).
    pcie_bytes_per_sec: f64,
    /// Device memory capacity in bytes (the V100 of the paper has 32 GB).
    memory_capacity: u64,
    /// Whether batched kernels may run batch entries in parallel.
    parallel: bool,
    /// Launch log guarded by a mutex (used by tests and the launch report).
    launch_log: Mutex<Vec<LaunchRecord>>,
    log_launches: bool,
    /// Fast-path flag: `true` only while a fault plan is armed, so the
    /// per-launch fault consultation costs one relaxed load when disarmed.
    faults_armed: AtomicBool,
    /// The armed fault plan plus its launch-ordinal cursor and fired log.
    faults: Mutex<Option<FaultState>>,
}

/// Armed fault-plan state: the schedule, how many launches have consulted
/// it, and which rules actually fired.
#[derive(Debug)]
struct FaultState {
    plan: FaultPlan,
    launches_seen: u64,
    fired: Vec<FaultEvent>,
}

/// One record in the (optional) launch log.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LaunchRecord {
    /// Kernel name, e.g. `"gemm_strided_batched"`.
    pub kernel: &'static str,
    /// Number of problems in the batch.
    pub batch: usize,
    /// Stream label the launch was issued on (0 = default stream).
    pub stream: usize,
}

impl Default for Device {
    fn default() -> Self {
        Self::new()
    }
}

impl Device {
    /// A device with the paper's default configuration (PCIe 3.0 ×16,
    /// 32 GB of memory, parallel batched kernels).
    pub fn new() -> Self {
        Device {
            kernel_launches: AtomicU64::new(0),
            batch_entries: AtomicU64::new(0),
            flops: AtomicU64::new(0),
            h2d_bytes: AtomicU64::new(0),
            d2h_bytes: AtomicU64::new(0),
            allocated_bytes: AtomicU64::new(0),
            peak_allocated_bytes: AtomicU64::new(0),
            pcie_bytes_per_sec: 12.0e9,
            memory_capacity: 32 * (1 << 30),
            parallel: true,
            launch_log: Mutex::new(Vec::new()),
            log_launches: false,
            faults_armed: AtomicBool::new(false),
            faults: Mutex::new(None),
        }
    }

    /// A device whose batched kernels execute batch entries sequentially.
    /// Used by tests to compare against the parallel path and by the
    /// "single-core" ablation benchmarks.
    pub fn sequential() -> Self {
        Device {
            parallel: false,
            ..Device::new()
        }
    }

    /// Enable the launch log (records every kernel launch).  Off by default
    /// because the log grows with the number of launches.
    pub fn with_launch_log(mut self) -> Self {
        self.log_launches = true;
        self
    }

    /// Override the simulated PCIe bandwidth (bytes per second).
    pub fn with_bandwidth(mut self, bytes_per_sec: f64) -> Self {
        self.pcie_bytes_per_sec = bytes_per_sec;
        self
    }

    /// Override the simulated device memory capacity in bytes.
    pub fn with_memory_capacity(mut self, bytes: u64) -> Self {
        self.memory_capacity = bytes;
        self
    }

    /// Whether batched kernels run their batch entries in parallel.
    pub fn is_parallel(&self) -> bool {
        self.parallel
    }

    /// Simulated device memory capacity in bytes.
    pub fn memory_capacity(&self) -> u64 {
        self.memory_capacity
    }

    /// Record a batched kernel launch executing `batch` problems and
    /// `flops` floating-point operations.
    pub fn record_launch(&self, kernel: &'static str, batch: usize, flops: u64, stream: usize) {
        self.kernel_launches.fetch_add(1, Ordering::Relaxed);
        self.batch_entries
            .fetch_add(batch as u64, Ordering::Relaxed);
        self.flops.fetch_add(flops, Ordering::Relaxed);
        if self.log_launches {
            self.launch_log.lock().push(LaunchRecord {
                kernel,
                batch,
                stream,
            });
        }
    }

    /// Record an explicit host/device transfer of `bytes` bytes.
    pub fn record_transfer(&self, direction: TransferDirection, bytes: u64) {
        match direction {
            TransferDirection::HostToDevice => {
                self.h2d_bytes.fetch_add(bytes, Ordering::Relaxed);
            }
            TransferDirection::DeviceToHost => {
                self.d2h_bytes.fetch_add(bytes, Ordering::Relaxed);
            }
        }
    }

    /// Record a device allocation of `bytes` bytes.
    pub(crate) fn record_alloc(&self, bytes: u64) {
        let now = self.allocated_bytes.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.peak_allocated_bytes.fetch_max(now, Ordering::Relaxed);
    }

    /// Record the release of a device allocation of `bytes` bytes.
    pub(crate) fn record_free(&self, bytes: u64) {
        self.allocated_bytes.fetch_sub(bytes, Ordering::Relaxed);
    }

    /// Simulated wall-clock time to transfer `bytes` over the PCIe link.
    pub fn transfer_time_secs(&self, bytes: u64) -> f64 {
        bytes as f64 / self.pcie_bytes_per_sec
    }

    /// Current counter values.
    pub fn counters(&self) -> CounterSnapshot {
        CounterSnapshot {
            kernel_launches: self.kernel_launches.load(Ordering::Relaxed),
            batch_entries: self.batch_entries.load(Ordering::Relaxed),
            flops: self.flops.load(Ordering::Relaxed),
            h2d_bytes: self.h2d_bytes.load(Ordering::Relaxed),
            d2h_bytes: self.d2h_bytes.load(Ordering::Relaxed),
            allocated_bytes: self.allocated_bytes.load(Ordering::Relaxed),
            peak_allocated_bytes: self.peak_allocated_bytes.load(Ordering::Relaxed),
        }
    }

    /// Meter a window of device work: snapshot the counters, run `f`, and
    /// return its result next to the counter deltas accumulated while it
    /// ran.
    ///
    /// The deltas are exact only when `f` is the sole issuer of launches on
    /// this device for the duration of the call — the counters are global
    /// atomics, so concurrent traffic on the same device bleeds into the
    /// window.  `hodlr-serve` meets this by draining coalesced batches
    /// under a per-cache-entry lock; each `Hodlr` owns its device, so
    /// traffic against *other* factorizations never pollutes the window.
    pub fn meter<R>(&self, f: impl FnOnce() -> R) -> (R, CounterSnapshot) {
        let before = self.counters();
        let result = f();
        (result, self.counters().since(&before))
    }

    /// Reset all counters (allocation gauges included) to zero.
    pub fn reset_counters(&self) {
        self.kernel_launches.store(0, Ordering::Relaxed);
        self.batch_entries.store(0, Ordering::Relaxed);
        self.flops.store(0, Ordering::Relaxed);
        self.h2d_bytes.store(0, Ordering::Relaxed);
        self.d2h_bytes.store(0, Ordering::Relaxed);
        self.peak_allocated_bytes.store(
            self.allocated_bytes.load(Ordering::Relaxed),
            Ordering::Relaxed,
        );
        self.launch_log.lock().clear();
    }

    /// A copy of the launch log (empty unless [`Device::with_launch_log`]
    /// was used).
    pub fn launch_log(&self) -> Vec<LaunchRecord> {
        self.launch_log.lock().clone()
    }

    /// Arm `plan` on this device.  Launch ordinals restart at 1: the next
    /// launch issued is ordinal 1 of the plan.  Arming replaces any plan
    /// already armed.
    pub fn arm_faults(&self, plan: FaultPlan) {
        let mut guard = self.faults.lock();
        *guard = Some(FaultState {
            plan,
            launches_seen: 0,
            fired: Vec::new(),
        });
        self.faults_armed.store(true, Ordering::Release);
    }

    /// Disarm fault injection, returning the log of faults that fired
    /// while the plan was armed (empty if none was armed).
    pub fn disarm_faults(&self) -> Vec<FaultEvent> {
        let mut guard = self.faults.lock();
        self.faults_armed.store(false, Ordering::Release);
        guard.take().map(|s| s.fired).unwrap_or_default()
    }

    /// Whether a fault plan is currently armed.
    pub fn faults_armed(&self) -> bool {
        self.faults_armed.load(Ordering::Acquire)
    }

    /// The faults that have fired so far under the armed plan.
    pub fn fault_events(&self) -> Vec<FaultEvent> {
        self.faults
            .lock()
            .as_ref()
            .map(|s| s.fired.clone())
            .unwrap_or_default()
    }

    /// Consult the armed fault plan for the launch being issued.  Called
    /// once per launch by every batched kernel; advances the launch-ordinal
    /// cursor and returns the scheduled action (with the ordinal, for error
    /// reporting) when one fires.  Costs one relaxed atomic load when no
    /// plan is armed.
    pub fn take_launch_fault(&self, kernel: &'static str) -> Option<(FaultAction, u64)> {
        if !self.faults_armed.load(Ordering::Acquire) {
            return None;
        }
        let mut guard = self.faults.lock();
        let state = guard.as_mut()?;
        state.launches_seen += 1;
        let ordinal = state.launches_seen;
        let action = state.plan.rule(ordinal)?;
        state.fired.push(FaultEvent {
            kernel,
            launch: ordinal,
            action,
        });
        Some((action, ordinal))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        let dev = Device::new();
        dev.record_launch("gemm_strided_batched", 8, 1000, 0);
        dev.record_launch("getrf_batched", 4, 500, 1);
        dev.record_transfer(TransferDirection::HostToDevice, 64);
        dev.record_transfer(TransferDirection::DeviceToHost, 16);
        let c = dev.counters();
        assert_eq!(c.kernel_launches, 2);
        assert_eq!(c.batch_entries, 12);
        assert_eq!(c.flops, 1500);
        assert_eq!(c.h2d_bytes, 64);
        assert_eq!(c.d2h_bytes, 16);
        dev.reset_counters();
        assert_eq!(dev.counters().kernel_launches, 0);
        assert_eq!(dev.counters().flops, 0);
    }

    #[test]
    fn snapshot_difference() {
        let dev = Device::new();
        dev.record_launch("a", 1, 100, 0);
        let before = dev.counters();
        dev.record_launch("b", 2, 250, 0);
        let delta = dev.counters().since(&before);
        assert_eq!(delta.kernel_launches, 1);
        assert_eq!(delta.batch_entries, 2);
        assert_eq!(delta.flops, 250);
    }

    #[test]
    fn meter_isolates_a_window() {
        let dev = Device::new();
        dev.record_launch("warmup", 1, 100, 0);
        let (sum, delta) = dev.meter(|| {
            dev.record_launch("a", 2, 300, 0);
            dev.record_launch("b", 3, 400, 0);
            2 + 3
        });
        assert_eq!(sum, 5);
        assert_eq!(delta.kernel_launches, 2);
        assert_eq!(delta.batch_entries, 5);
        assert_eq!(delta.flops, 700);
        // The warmup launch stays outside the window.
        assert_eq!(dev.counters().kernel_launches, 3);
    }

    #[test]
    fn launch_log_records_kernels() {
        let dev = Device::new().with_launch_log();
        dev.record_launch("gemm_strided_batched", 3, 0, 7);
        let log = dev.launch_log();
        assert_eq!(log.len(), 1);
        assert_eq!(log[0].kernel, "gemm_strided_batched");
        assert_eq!(log[0].batch, 3);
        assert_eq!(log[0].stream, 7);
    }

    #[test]
    fn bandwidth_model() {
        let dev = Device::new().with_bandwidth(10.0e9);
        let t = dev.transfer_time_secs(20_000_000_000);
        assert!((t - 2.0).abs() < 1e-12);
    }

    #[test]
    fn gflops_computation() {
        let snap = CounterSnapshot {
            flops: 2_000_000_000,
            ..Default::default()
        };
        assert!((snap.gflops(1.0) - 2.0).abs() < 1e-12);
        assert_eq!(snap.gflops(0.0), 0.0);
    }

    #[test]
    fn fault_consultation_counts_ordinals_from_arming() {
        let dev = Device::new();
        assert!(!dev.faults_armed());
        assert_eq!(dev.take_launch_fault("gemm_strided_batched"), None);

        dev.arm_faults(FaultPlan::new().fail_launch(2).delay_launch(3, 10));
        assert!(dev.faults_armed());
        assert_eq!(dev.take_launch_fault("a"), None); // ordinal 1
        assert_eq!(
            dev.take_launch_fault("b"),
            Some((FaultAction::FailLaunch, 2))
        );
        assert_eq!(
            dev.take_launch_fault("c"),
            Some((FaultAction::Delay { micros: 10 }, 3))
        );
        assert_eq!(dev.take_launch_fault("d"), None); // ordinal 4, no rule

        let events = dev.fault_events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kernel, "b");
        assert_eq!(events[0].launch, 2);

        let fired = dev.disarm_faults();
        assert_eq!(fired.len(), 2);
        assert!(!dev.faults_armed());
        assert_eq!(dev.take_launch_fault("e"), None);
    }

    #[test]
    fn rearming_restarts_the_ordinal_cursor() {
        let dev = Device::new();
        dev.arm_faults(FaultPlan::new().poison_launch(1));
        assert_eq!(
            dev.take_launch_fault("x"),
            Some((FaultAction::PoisonNan, 1))
        );
        dev.arm_faults(FaultPlan::new().poison_launch(1));
        assert_eq!(
            dev.take_launch_fault("y"),
            Some((FaultAction::PoisonNan, 1))
        );
    }

    #[test]
    fn allocation_gauges_track_peak() {
        let dev = Device::new();
        dev.record_alloc(100);
        dev.record_alloc(50);
        dev.record_free(100);
        dev.record_alloc(10);
        let c = dev.counters();
        assert_eq!(c.allocated_bytes, 60);
        assert_eq!(c.peak_allocated_bytes, 150);
    }
}
