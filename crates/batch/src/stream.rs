//! Streams: labelled launch queues.
//!
//! On a real GPU, launching independent gemms on separate CUDA streams lets
//! the hardware overlap small kernels; the paper uses this for the top few
//! tree levels where the batch size is tiny (Section III-C).  On the virtual
//! device a stream is a bookkeeping label carried into the launch log, plus a
//! "synchronise" no-op so that calling code reads like the GPU original.

/// A launch queue label.  Stream 0 is the default stream.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct Stream {
    id: usize,
}

impl Stream {
    /// The default stream (id 0).
    pub fn default_stream() -> Self {
        Stream::default()
    }

    /// Create a stream with an explicit id.
    pub fn with_id(id: usize) -> Self {
        Stream { id }
    }

    /// The stream id.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Block until all work on the stream has completed.  The virtual device
    /// executes kernels synchronously, so this is a no-op kept for API parity
    /// with `cudaStreamSynchronize`.
    pub fn synchronize(&self) {}
}

/// A small pool of streams, handed out round-robin; mirrors the way the
/// paper cycles independent gemms over a fixed set of CUDA streams at the
/// top levels of the tree.
///
/// The round-robin cursor uses interior mutability so that a solver holding
/// a pool can hand out streams from `&self` solve paths (post-factorization
/// solves are logically read-only).
#[derive(Debug)]
pub struct StreamPool {
    streams: Vec<Stream>,
    next: std::sync::atomic::AtomicUsize,
}

impl Clone for StreamPool {
    fn clone(&self) -> Self {
        StreamPool {
            streams: self.streams.clone(),
            next: std::sync::atomic::AtomicUsize::new(
                self.next.load(std::sync::atomic::Ordering::Relaxed),
            ),
        }
    }
}

impl StreamPool {
    /// A pool of `n` streams with ids `1..=n` (0 is reserved for the default
    /// stream).
    pub fn new(n: usize) -> Self {
        StreamPool {
            streams: (1..=n).map(Stream::with_id).collect(),
            next: std::sync::atomic::AtomicUsize::new(0),
        }
    }

    /// Number of streams in the pool.
    pub fn len(&self) -> usize {
        self.streams.len()
    }

    /// `true` when the pool holds no streams.
    pub fn is_empty(&self) -> bool {
        self.streams.is_empty()
    }

    /// Hand out the next stream, cycling through the pool.
    pub fn next_stream(&self) -> Stream {
        if self.streams.is_empty() {
            return Stream::default();
        }
        let slot = self.next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        self.streams[slot % self.streams.len()]
    }

    /// Synchronise every stream in the pool.
    pub fn synchronize_all(&self) {
        for s in &self.streams {
            s.synchronize();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_stream_has_id_zero() {
        assert_eq!(Stream::default_stream().id(), 0);
    }

    #[test]
    fn pool_hands_out_streams_round_robin() {
        let pool = StreamPool::new(3);
        let ids: Vec<usize> = (0..7).map(|_| pool.next_stream().id()).collect();
        assert_eq!(ids, vec![1, 2, 3, 1, 2, 3, 1]);
        pool.synchronize_all();
    }

    #[test]
    fn empty_pool_falls_back_to_default_stream() {
        let pool = StreamPool::new(0);
        assert!(pool.is_empty());
        assert_eq!(pool.next_stream().id(), 0);
    }
}
