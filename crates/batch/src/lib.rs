//! # hodlr-batch — a virtual batched-BLAS device
//!
//! The paper's GPU solver is built on four cuBLAS primitives: `gemmBatched`,
//! `gemmStridedBatched`, `getrfBatched` and `getrsBatched`.  This crate
//! provides a **virtual device** with the same API surface, executed on the
//! CPU with rayon data parallelism:
//!
//! * [`Device`] — owns the counters (kernel launches, flops, transferred
//!   bytes) and the PCIe bandwidth model used to regenerate the Flop/s and
//!   transfer figures of the paper;
//! * [`DeviceBuffer`] — "device memory": an allocation that can only be
//!   filled and read back through explicit host-to-device / device-to-host
//!   copies, which are metered;
//! * [`Stream`] — a labelled launch queue.  On the virtual device streams
//!   only affect bookkeeping (the paper launches independent gemms on
//!   separate CUDA streams at the top tree levels);
//! * batched kernels in [`gemm`] and [`lu`], in both the *uniform* flavour
//!   (all problems in the batch share one shape, the `gemmStridedBatched`
//!   fast path) and the *varied* flavour (per-problem descriptors, the
//!   pointer-array `gemmBatched` path), mirroring the two code paths of the
//!   paper's Section III-C.
//!
//! The substitution (real GPU → virtual device) is documented in DESIGN.md:
//! the paper's contribution is the *mapping* of the HODLR factorization onto
//! large batched kernels, and that mapping — launch counts, batch sizes, flop
//! counts, memory traffic — is preserved exactly here; only the absolute
//! wall-clock constants differ.
//!
//! # Threading and metering under concurrency
//!
//! A batched kernel is *one* launch whose batch entries are sharded across
//! the rayon work-stealing pool ([`windows::process_windows_mut`] proves the
//! output windows disjoint first); `HODLR_NUM_THREADS` controls the pool
//! size and [`Device::sequential`] forces a kernel's entries onto the
//! calling thread regardless.  Every [`Device`] counter is an atomic, so
//! entries executing on different workers meter their work without locking,
//! and — because each entry's flop count is a pure function of its shape —
//! the counter totals are **identical at every thread count**:
//!
//! ```
//! use hodlr_batch::Device;
//! use rayon::prelude::*;
//!
//! let device = Device::new();
//! // Eight tasks on the worker pool record into the same counters
//! // concurrently, as batched kernels do during a factorization.
//! (0..8usize).into_par_iter().for_each(|stream| {
//!     device.record_launch("gemm_batched", 4, 1_000, stream);
//! });
//! let counters = device.counters();
//! assert_eq!(counters.kernel_launches, 8);
//! assert_eq!(counters.batch_entries, 32);
//! assert_eq!(counters.flops, 8_000);
//! ```

pub mod buffer;
pub mod cholesky;
pub mod device;
pub mod fault;
pub mod gemm;
pub mod lu;
pub mod slices;
pub mod stream;
pub mod windows;

pub use buffer::DeviceBuffer;
pub use cholesky::{
    extract_tridiagonals_batched, potrf_batched_varied, potrs_batched_varied, BatchSymmetricError,
    SymBatchError, SymDesc, SymSolveDesc,
};
pub use device::{CounterSnapshot, Device, TransferDirection};
pub use fault::{FaultAction, FaultEvent, FaultPlan, LaunchFault};
pub use gemm::{gemm_batched_aliased, gemm_batched_varied, gemm_strided_batched, GemmDesc};
pub use lu::{
    extract_diagonals_batched, getrf_batched_varied, getrf_strided_batched, getrs_batched_varied,
    getrs_strided_batched, BatchSingularError, LuBatchError, LuDesc, LuSolveDesc,
};
pub use stream::{Stream, StreamPool};
pub use windows::{process_windows_mut, MatWindow};
