//! # hodlr-batch — a virtual batched-BLAS device
//!
//! The paper's GPU solver is built on four cuBLAS primitives: `gemmBatched`,
//! `gemmStridedBatched`, `getrfBatched` and `getrsBatched`.  This crate
//! provides a **virtual device** with the same API surface, executed on the
//! CPU with rayon data parallelism:
//!
//! * [`Device`] — owns the counters (kernel launches, flops, transferred
//!   bytes) and the PCIe bandwidth model used to regenerate the Flop/s and
//!   transfer figures of the paper;
//! * [`DeviceBuffer`] — "device memory": an allocation that can only be
//!   filled and read back through explicit host-to-device / device-to-host
//!   copies, which are metered;
//! * [`Stream`] — a labelled launch queue.  On the virtual device streams
//!   only affect bookkeeping (the paper launches independent gemms on
//!   separate CUDA streams at the top tree levels);
//! * batched kernels in [`gemm`] and [`lu`], in both the *uniform* flavour
//!   (all problems in the batch share one shape, the `gemmStridedBatched`
//!   fast path) and the *varied* flavour (per-problem descriptors, the
//!   pointer-array `gemmBatched` path), mirroring the two code paths of the
//!   paper's Section III-C.
//!
//! The substitution (real GPU → virtual device) is documented in DESIGN.md:
//! the paper's contribution is the *mapping* of the HODLR factorization onto
//! large batched kernels, and that mapping — launch counts, batch sizes, flop
//! counts, memory traffic — is preserved exactly here; only the absolute
//! wall-clock constants differ.

pub mod buffer;
pub mod device;
pub mod gemm;
pub mod lu;
pub mod slices;
pub mod stream;
pub mod windows;

pub use buffer::DeviceBuffer;
pub use device::{CounterSnapshot, Device, TransferDirection};
pub use gemm::{gemm_batched_aliased, gemm_batched_varied, gemm_strided_batched, GemmDesc};
pub use lu::{
    getrf_batched_varied, getrf_strided_batched, getrs_batched_varied, getrs_strided_batched,
    BatchSingularError, LuDesc, LuSolveDesc,
};
pub use stream::{Stream, StreamPool};
pub use windows::{process_windows_mut, MatWindow};
