//! Batched symmetric factorization and solve (`potrfBatched` and friends).
//!
//! The symmetric counterpart of [`crate::lu`]: every block described by a
//! descriptor is factorized in place by the *same* ladder the serial path
//! uses — [`hodlr_la::cholesky::factorize_symmetric_in_place`], `L L^H` →
//! guarded `L D L^H` → Bunch-Kaufman — so batched and serial factors are
//! bitwise identical and a shared `log_det` fold gives bitwise-equal
//! determinants.  Which rung each entry landed on is returned to the host
//! as a [`SymmetricKind`] (like LU pivots, kinds are host-side metadata).
//!
//! A Cholesky factorization costs `n^3/3` flops — half of LU's `2n^3/3` —
//! and the metering records exactly that, which is where the SPD path's
//! flop advantage in `BENCH_gp.json` comes from.

use crate::buffer::DeviceBuffer;
use crate::device::Device;
use crate::fault::{poison_span, FaultAction, LaunchFault};
use crate::gemm::scalar_flop_factor;
use crate::stream::Stream;
use crate::windows::{process_windows_mut, MatWindow};
use hodlr_la::cholesky::{
    factorize_symmetric_in_place, solve_symmetric_in_place, SymmetricError, SymmetricKind,
    SymmetricPolicy,
};
use hodlr_la::{MatRef, Scalar};
use parking_lot::Mutex;
use std::fmt;

/// Descriptor of one square Hermitian block to factorize in place.
#[derive(Copy, Clone, Debug)]
pub struct SymDesc {
    /// Order of the block.
    pub n: usize,
    /// Element offset of the block in the buffer.
    pub offset: usize,
    /// Leading dimension of the block as stored.
    pub ld: usize,
}

impl SymDesc {
    fn span(&self) -> usize {
        if self.n == 0 {
            0
        } else {
            self.ld * (self.n - 1) + self.n
        }
    }

    fn flops<T: Scalar>(&self) -> u64 {
        let n = self.n as u64;
        scalar_flop_factor::<T>() * n * n * n / 3
    }
}

/// Descriptor of one solve `A X = B` with precomputed symmetric factors.
#[derive(Copy, Clone, Debug)]
pub struct SymSolveDesc {
    /// Order of the factorized block.
    pub n: usize,
    /// Number of right-hand sides.
    pub nrhs: usize,
    /// Element offset of the factors in the factor buffer.
    pub a_offset: usize,
    /// Leading dimension of the factors.
    pub lda: usize,
    /// Element offset of the right-hand sides in the RHS buffer.
    pub b_offset: usize,
    /// Leading dimension of the right-hand sides.
    pub ldb: usize,
}

impl SymSolveDesc {
    fn a_span(&self) -> usize {
        if self.n == 0 {
            0
        } else {
            self.lda * (self.n - 1) + self.n
        }
    }

    fn b_span(&self) -> usize {
        if self.n == 0 || self.nrhs == 0 {
            0
        } else {
            self.ldb * (self.nrhs - 1) + self.n
        }
    }

    fn flops<T: Scalar>(&self) -> u64 {
        scalar_flop_factor::<T>() * 2 * (self.n as u64) * (self.n as u64) * self.nrhs as u64
    }
}

/// A batch entry whose block could not be factorized symmetrically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchSymmetricError {
    /// Which batch entry failed.
    pub batch_index: usize,
    /// The underlying symmetric-factorization error.
    pub inner: SymmetricError,
}

impl fmt::Display for BatchSymmetricError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "batch entry {}: {}", self.batch_index, self.inner)
    }
}

impl std::error::Error for BatchSymmetricError {}

impl BatchSymmetricError {
    /// Promote to a [`HodlrError`](hodlr_la::HodlrError) naming the failing
    /// batch (e.g. `"leaf diagonal block"`).
    pub fn into_hodlr(self, context: impl Into<String>) -> hodlr_la::HodlrError {
        match self.inner {
            SymmetricError::NotPositiveDefinite { pivot } => {
                hodlr_la::HodlrError::NotPositiveDefinite {
                    context: format!(
                        "{} (batch entry {}, Cholesky pivot {pivot})",
                        context.into(),
                        self.batch_index
                    ),
                }
            }
            SymmetricError::Singular { pivot } => hodlr_la::HodlrError::SingularPivot {
                context: context.into(),
                pivot,
                batch_index: Some(self.batch_index),
            },
        }
    }
}

/// How a batched symmetric factorization can fail: a block that resists the
/// symmetric ladder, or an injected launch fault from an armed
/// [`FaultPlan`](crate::FaultPlan).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SymBatchError {
    /// A batch entry's block could not be factorized symmetrically.
    Symmetric(BatchSymmetricError),
    /// The launch itself was made to fail by fault injection.
    Fault(LaunchFault),
}

impl fmt::Display for SymBatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SymBatchError::Symmetric(e) => e.fmt(f),
            SymBatchError::Fault(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for SymBatchError {}

impl From<BatchSymmetricError> for SymBatchError {
    fn from(e: BatchSymmetricError) -> Self {
        SymBatchError::Symmetric(e)
    }
}

impl SymBatchError {
    /// Promote to a [`HodlrError`](hodlr_la::HodlrError) naming the failing
    /// batch, preserving whichever failure kind occurred.
    pub fn into_hodlr(self, context: impl Into<String>) -> hodlr_la::HodlrError {
        match self {
            SymBatchError::Symmetric(e) => e.into_hodlr(context),
            SymBatchError::Fault(e) => e.into_hodlr(context),
        }
    }

    /// The symmetric-factorization failure, if that is what this error is.
    pub fn symmetric(self) -> Option<BatchSymmetricError> {
        match self {
            SymBatchError::Symmetric(e) => Some(e),
            SymBatchError::Fault(_) => None,
        }
    }
}

/// Factorize every Hermitian block described by `descs` in place under
/// `policy`, returning the ladder rung each entry landed on
/// (`potrfBatched`; with [`SymmetricPolicy::Fallback`] it generalizes to
/// `sytrfBatched`).
///
/// # Errors
/// Returns the index of the first batch entry that could not be factorized
/// (not positive definite under the strict policy, singular otherwise), or
/// a [`LaunchFault`] when an armed fault plan fails this launch.
///
/// # Panics
/// Panics if blocks overlap or reach past the end of the buffer.
pub fn potrf_batched_varied<T: Scalar>(
    device: &Device,
    stream: Stream,
    descs: &[SymDesc],
    policy: SymmetricPolicy,
    a: &mut DeviceBuffer<'_, T>,
) -> Result<Vec<SymmetricKind>, SymBatchError> {
    if descs.is_empty() {
        return Ok(Vec::new());
    }
    for d in descs {
        assert!(
            d.offset + d.span() <= a.len(),
            "potrf_batched: block out of bounds"
        );
    }
    let flops: u64 = descs.iter().map(|d| d.flops::<T>()).sum();
    device.record_launch("potrf_batched", descs.len(), flops, stream.id());
    let mut poison = false;
    match device.take_launch_fault("potrf_batched") {
        Some((FaultAction::FailLaunch, launch)) => {
            return Err(SymBatchError::Fault(LaunchFault {
                kernel: "potrf_batched",
                launch,
            }))
        }
        Some((FaultAction::PoisonNan, _)) => poison = true,
        Some((FaultAction::Delay { micros }, _)) => {
            std::thread::sleep(std::time::Duration::from_micros(micros))
        }
        None => {}
    }

    let windows: Vec<MatWindow> = descs
        .iter()
        .map(|d| MatWindow {
            offset: d.offset,
            rows: d.n,
            cols: d.n,
            ld: d.ld,
        })
        .collect();
    type BatchResults = Mutex<Vec<Option<Result<SymmetricKind, SymmetricError>>>>;
    let results: BatchResults = Mutex::new(vec![None; descs.len()]);
    process_windows_mut(a.data_mut(), &windows, device.is_parallel(), |i, block| {
        let r = factorize_symmetric_in_place(block, policy);
        results.lock()[i] = Some(r);
    });

    let mut kinds = Vec::with_capacity(descs.len());
    for (i, r) in results.into_inner().into_iter().enumerate() {
        match r.expect("every batch entry factored") {
            Ok(k) => kinds.push(k),
            Err(inner) => {
                return Err(SymBatchError::Symmetric(BatchSymmetricError {
                    batch_index: i,
                    inner,
                }))
            }
        }
    }
    if poison {
        for d in descs {
            poison_span(a.data_mut(), d.offset, d.span());
        }
    }
    Ok(kinds)
}

/// Solve every system described by `descs` in place using the factors and
/// kinds produced by [`potrf_batched_varied`] (`potrsBatched`).
///
/// `kinds[i]` must be the [`SymmetricKind`] returned for the factors
/// addressed by `descs[i]`.
///
/// # Panics
/// Panics if the number of kinds differs from the number of descriptors,
/// if RHS windows overlap, or if any window is out of bounds.
pub fn potrs_batched_varied<T: Scalar>(
    device: &Device,
    stream: Stream,
    descs: &[SymSolveDesc],
    a: &DeviceBuffer<'_, T>,
    kinds: &[SymmetricKind],
    b: &mut DeviceBuffer<'_, T>,
) {
    if descs.is_empty() {
        return;
    }
    assert_eq!(
        descs.len(),
        kinds.len(),
        "potrs_batched: one factor kind per batch entry required"
    );
    for d in descs {
        assert!(
            d.a_offset + d.a_span() <= a.len(),
            "potrs_batched: factors out of bounds"
        );
        assert!(
            d.b_offset + d.b_span() <= b.len(),
            "potrs_batched: rhs out of bounds"
        );
    }
    let flops: u64 = descs.iter().map(|d| d.flops::<T>()).sum();
    device.record_launch("potrs_batched", descs.len(), flops, stream.id());
    // No error channel (see `getrs_batched_varied`): FailLaunch degrades
    // to NaN poisoning.
    let mut poison = false;
    match device.take_launch_fault("potrs_batched") {
        Some((FaultAction::FailLaunch | FaultAction::PoisonNan, _)) => poison = true,
        Some((FaultAction::Delay { micros }, _)) => {
            std::thread::sleep(std::time::Duration::from_micros(micros))
        }
        None => {}
    }

    let a_data = a.data();
    let windows: Vec<MatWindow> = descs
        .iter()
        .map(|d| MatWindow {
            offset: d.b_offset,
            rows: d.n,
            cols: d.nrhs,
            ld: d.ldb,
        })
        .collect();
    process_windows_mut(b.data_mut(), &windows, device.is_parallel(), |i, rhs| {
        let d = &descs[i];
        if d.n == 0 || d.nrhs == 0 {
            return;
        }
        let f = MatRef::from_parts(
            &a_data[d.a_offset..d.a_offset + d.a_span()],
            d.n,
            d.n,
            d.lda.max(1),
        );
        solve_symmetric_in_place(f, &kinds[i], rhs);
    });
    if poison {
        for d in descs {
            poison_span(b.data_mut(), d.b_offset, d.b_span());
        }
    }
}

/// Gather the main diagonal and the first subdiagonal of every block
/// described by `descs`, returning `(diag, sub)` host vectors per block —
/// exactly the inputs [`hodlr_la::sym_log_det_from_parts`] needs, so the
/// batched `log_det` runs the same fold as the serial one.
///
/// Like [`crate::lu::extract_diagonals_batched`], the launch is metered
/// with zero flops (pure gather) and the packed values as a device-to-host
/// transfer.
///
/// # Panics
/// Panics if any block reaches past the end of the buffer.
pub fn extract_tridiagonals_batched<T: Scalar>(
    device: &Device,
    stream: Stream,
    descs: &[SymDesc],
    a: &DeviceBuffer<'_, T>,
) -> Vec<(Vec<T>, Vec<T>)> {
    if descs.is_empty() {
        return Vec::new();
    }
    for d in descs {
        assert!(
            d.offset + d.span() <= a.len(),
            "extract_tridiagonals: block out of bounds"
        );
    }
    device.record_launch("extract_tridiagonals_batched", descs.len(), 0, stream.id());
    let data = a.data();
    let out: Vec<(Vec<T>, Vec<T>)> = descs
        .iter()
        .map(|d| {
            let diag = (0..d.n).map(|i| data[d.offset + i * (d.ld + 1)]).collect();
            let sub = (0..d.n.saturating_sub(1))
                .map(|i| data[d.offset + i * (d.ld + 1) + 1])
                .collect();
            (diag, sub)
        })
        .collect();
    let total: usize = descs.iter().map(|d| d.n + d.n.saturating_sub(1)).sum();
    device.record_transfer(
        crate::device::TransferDirection::DeviceToHost,
        (total * std::mem::size_of::<T>()) as u64,
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hodlr_la::random::random_matrix;
    use hodlr_la::{gemm, Complex64, DenseMatrix, Op, RealScalar, SymmetricFactor};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn spd<T: Scalar>(rng: &mut StdRng, n: usize) -> DenseMatrix<T> {
        let g: DenseMatrix<T> = random_matrix(rng, n, n);
        let mut a = DenseMatrix::<T>::zeros(n, n);
        gemm(
            T::one(),
            g.as_ref(),
            Op::None,
            g.as_ref(),
            Op::ConjTrans,
            T::zero(),
            a.as_mut(),
        );
        for i in 0..n {
            a[(i, i)] += T::from_f64(n as f64);
        }
        a
    }

    fn factor_solve_roundtrip<T: Scalar>(parallel: bool) {
        let mut rng = StdRng::seed_from_u64(31);
        let n = 12;
        let nrhs = 3;
        let batch = 4;
        let mats: Vec<DenseMatrix<T>> = (0..batch).map(|_| spd(&mut rng, n)).collect();
        let rhs: Vec<DenseMatrix<T>> = (0..batch)
            .map(|_| random_matrix(&mut rng, n, nrhs))
            .collect();

        let dev = if parallel {
            Device::new()
        } else {
            Device::sequential()
        };
        let mut a_host = vec![T::zero(); n * n * batch];
        let mut b_host = vec![T::zero(); n * nrhs * batch];
        for i in 0..batch {
            a_host[i * n * n..(i + 1) * n * n].copy_from_slice(mats[i].data());
            b_host[i * n * nrhs..(i + 1) * n * nrhs].copy_from_slice(rhs[i].data());
        }
        let mut a_buf = DeviceBuffer::from_host(&dev, &a_host);
        let mut b_buf = DeviceBuffer::from_host(&dev, &b_host);

        let descs: Vec<SymDesc> = (0..batch)
            .map(|i| SymDesc {
                n,
                offset: i * n * n,
                ld: n,
            })
            .collect();
        let kinds = potrf_batched_varied(
            &dev,
            Stream::default(),
            &descs,
            SymmetricPolicy::Strict,
            &mut a_buf,
        )
        .expect("SPD blocks factor under the strict policy");
        assert!(kinds.iter().all(|k| matches!(k, SymmetricKind::Llt)));

        let solve_descs: Vec<SymSolveDesc> = (0..batch)
            .map(|i| SymSolveDesc {
                n,
                nrhs,
                a_offset: i * n * n,
                lda: n,
                b_offset: i * n * nrhs,
                ldb: n,
            })
            .collect();
        potrs_batched_varied(
            &dev,
            Stream::default(),
            &solve_descs,
            &a_buf,
            &kinds,
            &mut b_buf,
        );

        let x_host = b_buf.download();
        for i in 0..batch {
            let x = DenseMatrix::from_col_major(
                n,
                nrhs,
                x_host[i * n * nrhs..(i + 1) * n * nrhs].to_vec(),
            );
            let ax = mats[i].matmul(&x);
            let err = ax.sub(&rhs[i]).norm_max().to_f64();
            assert!(err < 1e-9, "batch {i}: residual {err}");
        }
    }

    #[test]
    fn batched_cholesky_real() {
        factor_solve_roundtrip::<f64>(true);
        factor_solve_roundtrip::<f64>(false);
    }

    #[test]
    fn batched_cholesky_complex() {
        factor_solve_roundtrip::<Complex64>(true);
    }

    #[test]
    fn batched_factors_match_serial_bitwise() {
        let mut rng = StdRng::seed_from_u64(32);
        let n = 10;
        let a: DenseMatrix<f64> = spd(&mut rng, n);
        let dev = Device::new();
        let mut buf = DeviceBuffer::from_host(&dev, a.data());
        let descs = [SymDesc {
            n,
            offset: 0,
            ld: n,
        }];
        let kinds = potrf_batched_varied(
            &dev,
            Stream::default(),
            &descs,
            SymmetricPolicy::Fallback,
            &mut buf,
        )
        .unwrap();
        let serial = SymmetricFactor::new(&a, SymmetricPolicy::Fallback).unwrap();
        assert_eq!(&kinds[0], serial.kind());
        let dev_data = buf.download();
        let (host_f, _) = serial.factors();
        // Compare the lower triangles (the upper is unspecified on both
        // sides but comes from the same untouched input here).
        for j in 0..n {
            for i in j..n {
                assert_eq!(dev_data[j * n + i].to_bits(), host_f[(i, j)].to_bits());
            }
        }
    }

    #[test]
    fn strict_failure_reports_batch_index() {
        let dev = Device::new();
        let good = DenseMatrix::<f64>::identity(3);
        let mut bad = DenseMatrix::<f64>::identity(3);
        bad[(1, 1)] = -1.0;
        let mut host = good.data().to_vec();
        host.extend_from_slice(bad.data());
        let mut buf = DeviceBuffer::from_host(&dev, &host);
        let descs = [
            SymDesc {
                n: 3,
                offset: 0,
                ld: 3,
            },
            SymDesc {
                n: 3,
                offset: 9,
                ld: 3,
            },
        ];
        let err = potrf_batched_varied(
            &dev,
            Stream::default(),
            &descs,
            SymmetricPolicy::Strict,
            &mut buf,
        )
        .expect_err("second block is indefinite");
        let promoted = err.clone().into_hodlr("leaf diagonal block");
        assert!(promoted.to_string().contains("not positive definite"));
        let err = err.symmetric().expect("an indefinite block, not a fault");
        assert_eq!(err.batch_index, 1);
        assert!(matches!(
            err.inner,
            SymmetricError::NotPositiveDefinite { pivot: 1 }
        ));
    }

    #[test]
    fn injected_fault_fails_the_scheduled_potrf_launch() {
        let dev = Device::new();
        dev.arm_faults(crate::FaultPlan::new().fail_launch(1));
        let a = spd::<f64>(&mut StdRng::seed_from_u64(44), 4);
        let mut buf = DeviceBuffer::from_host(&dev, a.data());
        let descs = [SymDesc {
            n: 4,
            offset: 0,
            ld: 4,
        }];
        let err = potrf_batched_varied(
            &dev,
            Stream::default(),
            &descs,
            SymmetricPolicy::Strict,
            &mut buf,
        )
        .expect_err("launch 1 is scheduled to fail");
        assert!(matches!(err, SymBatchError::Fault(_)));
        assert!(err
            .into_hodlr("leaf diagonal block")
            .to_string()
            .contains("potrf_batched"));
    }

    #[test]
    fn flop_accounting_for_cholesky_is_half_of_lu() {
        let dev = Device::new();
        let a = spd::<f64>(&mut StdRng::seed_from_u64(33), 8);
        let mut buf = DeviceBuffer::from_host(&dev, a.data());
        let descs = [SymDesc {
            n: 8,
            offset: 0,
            ld: 8,
        }];
        let before = dev.counters();
        potrf_batched_varied(
            &dev,
            Stream::default(),
            &descs,
            SymmetricPolicy::Strict,
            &mut buf,
        )
        .unwrap();
        let metered = dev.counters().since(&before);
        assert_eq!(metered.flops, 8 * 8 * 8 / 3);
        // Half of what the LU kernel meters for the same order.
        assert_eq!(metered.flops, (2 * 8 * 8 * 8 / 3) / 2);
    }

    #[test]
    fn tridiagonal_extraction_gathers_and_meters() {
        let dev = Device::new();
        let a = DenseMatrix::<f64>::from_rows(&[
            vec![1.0, 0.0, 0.0],
            vec![4.0, 2.0, 0.0],
            vec![0.0, 5.0, 3.0],
        ]);
        let buf = DeviceBuffer::from_host(&dev, a.data());
        let descs = [SymDesc {
            n: 3,
            offset: 0,
            ld: 3,
        }];
        let before = dev.counters();
        let parts = extract_tridiagonals_batched(&dev, Stream::default(), &descs, &buf);
        assert_eq!(parts, vec![(vec![1.0, 2.0, 3.0], vec![4.0, 5.0])]);
        let metered = dev.counters().since(&before);
        assert_eq!(metered.kernel_launches, 1);
        assert_eq!(metered.flops, 0);
        assert_eq!(metered.d2h_bytes, 5 * 8);
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let dev = Device::new();
        let mut buf = DeviceBuffer::<f64>::zeros(&dev, 0);
        let kinds = potrf_batched_varied(
            &dev,
            Stream::default(),
            &[],
            SymmetricPolicy::Strict,
            &mut buf,
        )
        .unwrap();
        assert!(kinds.is_empty());
        assert_eq!(dev.counters().kernel_launches, 0);
    }
}
