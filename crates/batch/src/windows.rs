//! Column-major output windows of batched kernels and how to write to them
//! in parallel without data races.
//!
//! A batched kernel writes every batch entry's output into its own
//! column-major *window* of a shared device buffer.  Two layouts occur in the
//! HODLR algorithms:
//!
//! * **contiguous windows** — e.g. the per-node `K` matrices or the stacked
//!   `W` work matrices: the element spans of different windows do not
//!   overlap, so the buffer can be split into disjoint `&mut` slices;
//! * **row-block windows** — e.g. "rows `I_alpha` of `Ybig`, all columns":
//!   every window has the same leading dimension (the full matrix height)
//!   and a distinct row interval.  The element *spans* of different windows
//!   interleave, so they cannot be expressed as disjoint slices, but the
//!   elements actually touched are disjoint.
//!
//! [`process_windows_mut`] classifies the batch into one of those two cases
//! (panicking if neither disjointness proof holds) and then runs a
//! user-provided kernel on every window, in parallel when requested.  The
//! row-block case never materialises overlapping `&mut` references: each
//! window is copied column-by-column into thread-local scratch through raw
//! pointers, processed there, and copied back — raw-pointer reads and writes
//! to provably disjoint locations are race-free.

use crate::slices::disjoint_slices_mut;
use hodlr_la::{MatMut, Scalar};
use rayon::prelude::*;

/// A column-major window into a device buffer: `rows x cols` elements
/// starting at `offset`, with leading dimension `ld`.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct MatWindow {
    /// Element offset of entry (0, 0) of the window.
    pub offset: usize,
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    /// Leading dimension (distance between columns) in the buffer.
    pub ld: usize,
}

impl MatWindow {
    /// Number of buffer elements the window spans (0 for an empty window).
    pub fn span(&self) -> usize {
        if self.rows == 0 || self.cols == 0 {
            0
        } else {
            self.ld * (self.cols - 1) + self.rows
        }
    }

    /// `true` if the window touches no elements.
    pub fn is_empty(&self) -> bool {
        self.rows == 0 || self.cols == 0
    }
}

/// How a set of output windows can be proven pairwise disjoint.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum Partition {
    /// Element spans do not overlap: split into disjoint slices.
    Contiguous,
    /// Spans of some windows interleave, but every cluster of
    /// span-overlapping windows shares one leading dimension and owns
    /// pairwise-disjoint row intervals of it, so the touched elements are
    /// still disjoint (e.g. row blocks of `Ybig`, or the two stacked
    /// children of one parent's work matrix).
    RowBlocks,
}

fn classify(windows: &[MatWindow]) -> Partition {
    let occupied: Vec<&MatWindow> = windows.iter().filter(|w| !w.is_empty()).collect();
    if occupied.len() <= 1 {
        return Partition::Contiguous;
    }

    // Proof 1: sorted element spans do not overlap.
    let mut by_offset: Vec<&MatWindow> = occupied.clone();
    by_offset.sort_unstable_by_key(|w| w.offset);
    if by_offset
        .windows(2)
        .all(|p| p[0].offset + p[0].span() <= p[1].offset)
    {
        return Partition::Contiguous;
    }

    // Proof 2: sweep over windows sorted by offset, grouping those whose
    // spans overlap into clusters.  Windows in different clusters are
    // span-disjoint; windows inside one cluster must share a leading
    // dimension and own pairwise-disjoint row intervals, which proves that
    // the elements they touch are disjoint even though their spans overlap.
    let mut cluster: Vec<&MatWindow> = Vec::new();
    let mut cluster_end = 0usize;
    let check_cluster = |cluster: &[&MatWindow]| -> bool {
        if cluster.len() <= 1 {
            return true;
        }
        let ld = cluster[0].ld;
        if !cluster.iter().all(|w| w.ld == ld) {
            return false;
        }
        if !cluster.iter().all(|w| (w.offset % ld) + w.rows <= ld) {
            return false;
        }
        let mut rows: Vec<(usize, usize)> =
            cluster.iter().map(|w| (w.offset % ld, w.rows)).collect();
        rows.sort_unstable();
        rows.windows(2).all(|p| p[0].0 + p[0].1 <= p[1].0)
    };
    let mut ok = true;
    for w in &by_offset {
        if cluster.is_empty() || w.offset < cluster_end {
            cluster.push(w);
        } else {
            ok &= check_cluster(&cluster);
            cluster.clear();
            cluster.push(w);
        }
        cluster_end = cluster_end.max(w.offset + w.span());
    }
    ok &= check_cluster(&cluster);
    if ok {
        return Partition::RowBlocks;
    }

    panic!(
        "batched kernel output windows overlap: they are neither span-disjoint \
         nor cluster-wise row-disjoint"
    );
}

/// Raw base pointer that may be shared across rayon workers.  Every worker
/// only touches the elements of its own (verified disjoint) window.
struct RawBase<T>(*mut T);
unsafe impl<T> Sync for RawBase<T> {}
unsafe impl<T> Send for RawBase<T> {}

impl<T> RawBase<T> {
    fn get(&self) -> *mut T {
        self.0
    }
}

/// Run `kernel(index, window_view)` for every window, in parallel when
/// `parallel` is set, after proving the windows disjoint.
///
/// The view handed to the kernel is a dense `rows x cols` [`MatMut`]; in the
/// row-block case it is backed by thread-local scratch that is copied back
/// into the buffer when the kernel returns.
///
/// # Panics
/// Panics if the windows cannot be proven disjoint or reach past the end of
/// `data`.
pub fn process_windows_mut<T, F>(data: &mut [T], windows: &[MatWindow], parallel: bool, kernel: F)
where
    T: Scalar,
    F: Fn(usize, MatMut<'_, T>) + Sync,
{
    for w in windows {
        assert!(
            w.offset + w.span() <= data.len(),
            "window ({}, {}x{}, ld {}) reaches past the end of the buffer",
            w.offset,
            w.rows,
            w.cols,
            w.ld
        );
    }
    match classify(windows) {
        Partition::Contiguous => {
            let ranges: Vec<(usize, usize)> =
                windows.iter().map(|w| (w.offset, w.span())).collect();
            let slices = disjoint_slices_mut(data, &ranges);
            let run = |(i, slice): (usize, &mut [T])| {
                let w = &windows[i];
                if w.is_empty() {
                    return;
                }
                kernel(i, MatMut::from_parts(slice, w.rows, w.cols, w.ld.max(1)));
            };
            if parallel && windows.len() > 1 {
                slices
                    .into_par_iter()
                    .enumerate()
                    .for_each(|(i, s)| run((i, s)));
            } else {
                slices
                    .into_iter()
                    .enumerate()
                    .for_each(|(i, s)| run((i, s)));
            }
        }
        Partition::RowBlocks => {
            let base = RawBase(data.as_mut_ptr());
            let run = |i: usize| {
                let ptr = base.get();
                let w = &windows[i];
                if w.is_empty() {
                    return;
                }
                // Copy the window into thread-local scratch.
                let mut scratch = vec![T::zero(); w.rows * w.cols];
                for c in 0..w.cols {
                    // SAFETY: the source column lies inside `data` (bounds
                    // asserted above) and no other worker writes it — the
                    // row intervals were proven pairwise disjoint.
                    unsafe {
                        std::ptr::copy_nonoverlapping(
                            ptr.add(w.offset + c * w.ld),
                            scratch.as_mut_ptr().add(c * w.rows),
                            w.rows,
                        );
                    }
                }
                kernel(i, MatMut::from_parts(&mut scratch, w.rows, w.cols, w.rows));
                // Copy the result back.
                for c in 0..w.cols {
                    // SAFETY: as above; this worker is the only writer of
                    // these elements.
                    unsafe {
                        std::ptr::copy_nonoverlapping(
                            scratch.as_ptr().add(c * w.rows),
                            ptr.add(w.offset + c * w.ld),
                            w.rows,
                        );
                    }
                }
            };
            if parallel && windows.len() > 1 {
                (0..windows.len()).into_par_iter().for_each(run);
            } else {
                (0..windows.len()).for_each(run);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hodlr_la::DenseMatrix;

    #[test]
    fn contiguous_windows_are_processed_in_place() {
        // Two 2x2 blocks side by side in a buffer of 8 elements.
        let mut data = vec![1.0f64; 8];
        let windows = vec![
            MatWindow {
                offset: 0,
                rows: 2,
                cols: 2,
                ld: 2,
            },
            MatWindow {
                offset: 4,
                rows: 2,
                cols: 2,
                ld: 2,
            },
        ];
        process_windows_mut(&mut data, &windows, true, |i, mut m| {
            m.set(0, 0, 10.0 * (i + 1) as f64);
        });
        assert_eq!(data[0], 10.0);
        assert_eq!(data[4], 20.0);
    }

    #[test]
    fn row_block_windows_interleave_safely() {
        // A 6x3 column-major matrix; window 0 owns rows 0..2, window 1 owns
        // rows 2..6, both across all 3 columns.
        let n = 6;
        let cols = 3;
        let mut data: Vec<f64> = (0..n * cols).map(|x| x as f64).collect();
        let windows = vec![
            MatWindow {
                offset: 0,
                rows: 2,
                cols,
                ld: n,
            },
            MatWindow {
                offset: 2,
                rows: 4,
                cols,
                ld: n,
            },
        ];
        let original = data.clone();
        process_windows_mut(&mut data, &windows, true, |i, mut m| {
            for c in 0..m.cols() {
                for r in 0..m.rows() {
                    let v = m.get(r, c);
                    m.set(r, c, v + 100.0 * (i + 1) as f64);
                }
            }
        });
        let expect: Vec<f64> = original
            .iter()
            .enumerate()
            .map(|(idx, &v)| {
                let row = idx % n;
                if row < 2 {
                    v + 100.0
                } else {
                    v + 200.0
                }
            })
            .collect();
        assert_eq!(data, expect);
    }

    #[test]
    fn scratch_view_has_compact_leading_dimension() {
        let mut data = vec![0.0f64; 12];
        let windows = vec![
            MatWindow {
                offset: 0,
                rows: 2,
                cols: 2,
                ld: 4,
            },
            MatWindow {
                offset: 2,
                rows: 2,
                cols: 2,
                ld: 4,
            },
        ];
        process_windows_mut(&mut data, &windows, false, |_, m| {
            assert_eq!(m.rows(), 2);
            assert_eq!(m.cols(), 2);
        });
    }

    #[test]
    fn empty_windows_are_skipped() {
        let mut data = vec![0.0f64; 4];
        let windows = vec![
            MatWindow {
                offset: 0,
                rows: 0,
                cols: 3,
                ld: 2,
            },
            MatWindow {
                offset: 0,
                rows: 2,
                cols: 2,
                ld: 2,
            },
        ];
        process_windows_mut(&mut data, &windows, true, |_, mut m| m.fill(1.0));
        assert_eq!(data, vec![1.0; 4]);
    }

    #[test]
    #[should_panic(expected = "overlap")]
    fn truly_overlapping_windows_panic() {
        let mut data = vec![0.0f64; 16];
        let windows = vec![
            MatWindow {
                offset: 0,
                rows: 3,
                cols: 2,
                ld: 4,
            },
            MatWindow {
                offset: 2,
                rows: 3,
                cols: 2,
                ld: 4,
            },
        ];
        process_windows_mut(&mut data, &windows, true, |_, _| {});
    }

    #[test]
    fn row_block_results_match_dense_reference() {
        // Fill a 8x4 matrix through 4 row-block windows and compare with a
        // direct dense computation.
        let n = 8;
        let cols = 4;
        let mut data = vec![0.0f64; n * cols];
        let windows: Vec<MatWindow> = (0..4)
            .map(|i| MatWindow {
                offset: 2 * i,
                rows: 2,
                cols,
                ld: n,
            })
            .collect();
        process_windows_mut(&mut data, &windows, true, |i, mut m| {
            for c in 0..cols {
                for r in 0..2 {
                    m.set(r, c, (i * 100 + c * 10 + r) as f64);
                }
            }
        });
        let as_mat = DenseMatrix::from_col_major(n, cols, data);
        for c in 0..cols {
            for row in 0..n {
                let i = row / 2;
                let r = row % 2;
                assert_eq!(as_mat[(row, c)], (i * 100 + c * 10 + r) as f64);
            }
        }
    }
}
