//! Splitting one device allocation into disjoint mutable windows.
//!
//! A batched kernel writes every batch entry's output into a different region
//! of the same device buffer.  [`disjoint_slices_mut`] turns a single
//! `&mut [T]` plus a list of `(offset, len)` windows into one mutable slice
//! per window — checking that the windows do not overlap — so the batch can
//! then be processed in parallel with rayon without any `unsafe`.

/// Split `data` into one mutable sub-slice per `(offset, len)` range.
///
/// The ranges may be given in any order; the returned vector is in the same
/// order as `ranges`.  Zero-length ranges are allowed and yield empty slices.
///
/// # Panics
/// Panics if any two ranges overlap or if a range reaches past the end of
/// `data`.
pub fn disjoint_slices_mut<'a, T>(
    data: &'a mut [T],
    ranges: &[(usize, usize)],
) -> Vec<&'a mut [T]> {
    let mut order: Vec<usize> = (0..ranges.len()).collect();
    order.sort_by_key(|&i| ranges[i].0);

    let mut out: Vec<Option<&'a mut [T]>> = Vec::with_capacity(ranges.len());
    out.resize_with(ranges.len(), || None);

    let mut rest: &'a mut [T] = data;
    let mut consumed = 0usize;
    for &i in &order {
        let (off, len) = ranges[i];
        if len == 0 {
            out[i] = Some(&mut []);
            continue;
        }
        assert!(
            off >= consumed,
            "disjoint_slices_mut: ranges overlap (offset {off} inside a previous range ending at {consumed})"
        );
        let (_gap, tail) = rest.split_at_mut(off - consumed);
        assert!(
            len <= tail.len(),
            "disjoint_slices_mut: range ({off}, {len}) reaches past the end of the buffer"
        );
        let (slice, tail2) = tail.split_at_mut(len);
        out[i] = Some(slice);
        rest = tail2;
        consumed = off + len;
    }
    out.into_iter()
        .map(|o| o.expect("every range visited"))
        .collect()
}

/// Check that a set of `(offset, len)` ranges is pairwise disjoint without
/// splitting anything.  Used to validate *read* windows that are allowed to
/// coexist with independently checked write windows.
pub fn ranges_are_disjoint(ranges: &[(usize, usize)]) -> bool {
    let mut sorted: Vec<(usize, usize)> = ranges.iter().copied().filter(|&(_, l)| l > 0).collect();
    sorted.sort_by_key(|&(off, _)| off);
    sorted.windows(2).all(|w| w[0].0 + w[0].1 <= w[1].0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_in_arbitrary_order() {
        let mut data: Vec<u32> = (0..10).collect();
        let slices = disjoint_slices_mut(&mut data, &[(6, 3), (0, 2), (3, 2)]);
        assert_eq!(slices[0], &[6, 7, 8]);
        assert_eq!(slices[1], &[0, 1]);
        assert_eq!(slices[2], &[3, 4]);
    }

    #[test]
    fn allows_zero_length_ranges() {
        let mut data = [1, 2, 3];
        let slices = disjoint_slices_mut(&mut data, &[(1, 0), (0, 3)]);
        assert!(slices[0].is_empty());
        assert_eq!(slices[1], &[1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "overlap")]
    fn overlapping_ranges_panic() {
        let mut data = [0; 8];
        let _ = disjoint_slices_mut(&mut data, &[(0, 4), (3, 2)]);
    }

    #[test]
    #[should_panic(expected = "past the end")]
    fn out_of_bounds_panics() {
        let mut data = [0; 4];
        let _ = disjoint_slices_mut(&mut data, &[(2, 5)]);
    }

    #[test]
    fn disjointness_check() {
        assert!(ranges_are_disjoint(&[(0, 2), (2, 2), (10, 1)]));
        assert!(!ranges_are_disjoint(&[(0, 3), (2, 2)]));
        assert!(ranges_are_disjoint(&[(5, 0), (5, 2)]));
    }

    #[test]
    fn writes_through_slices_land_in_buffer() {
        let mut data = vec![0.0f64; 6];
        {
            let mut slices = disjoint_slices_mut(&mut data, &[(0, 3), (3, 3)]);
            slices[0][1] = 1.5;
            slices[1][2] = 2.5;
        }
        assert_eq!(data, vec![0.0, 1.5, 0.0, 0.0, 0.0, 2.5]);
    }
}
