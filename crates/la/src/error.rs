//! [`HodlrError`] — the one typed error enum shared by every crate in the
//! workspace.
//!
//! Every fallible public entry point (HODLR construction, compression,
//! factorization, direct and iterative solves) returns `Result<_,
//! HodlrError>` instead of panicking on bad input.  The enum lives in the
//! bottom crate of the dependency graph so that `hodlr-compress`,
//! `hodlr-core`, `hodlr-solver` and the `hodlr` façade can all speak the
//! same error language without conversion boilerplate at crate boundaries.

use crate::lu::SingularError;
use std::fmt;

/// The workspace-wide error type.
#[derive(Clone, Debug, PartialEq)]
pub enum HodlrError {
    /// Two shapes that must agree do not.  `context` names the offending
    /// object (a node, a block, a right-hand side, ...).
    DimensionMismatch {
        /// What was being checked (e.g. `"right-hand side 2"`,
        /// `"diagonal block of leaf 3"`).
        context: String,
        /// The size the shape had to have.
        expected: usize,
        /// The size that was actually supplied.
        found: usize,
    },
    /// A pivot of an LU factorization was exactly zero (LAPACK `info`
    /// convention: the position is 0-based within the failing block).
    SingularPivot {
        /// Which factorization failed (e.g. `"leaf diagonal block"`,
        /// `"coupling matrix"`).
        context: String,
        /// Zero-pivot position within the block.
        pivot: usize,
        /// For batched factorizations, the batch entry that failed.
        batch_index: Option<usize>,
    },
    /// A compression hit its hard rank cap before reaching the requested
    /// tolerance (only reported when the cap is marked strict).
    CompressionRankOverflow {
        /// The hard cap that was hit.
        max_rank: usize,
        /// The tolerance that could not be certified within the cap.
        tol: f64,
        /// Which block was being compressed.
        context: String,
    },
    /// An iterative method ran out of iterations before reaching its
    /// tolerance.  Carries the iteration report so callers can decide
    /// whether the partial answer is still useful.
    NonConvergence {
        /// Iterations actually performed.
        iterations: usize,
        /// Final relative residual `||b - A x|| / ||b||`.
        relative_residual: f64,
        /// Which method / system did not converge.
        context: String,
    },
    /// A solve was requested before the factorization was computed.
    NotFactorized,
    /// A matrix that must be positive definite is not: its determinant sign
    /// came out non-positive or non-finite.  Raised by the Gaussian-process
    /// log-likelihood, whose covariance matrix `K + sigma_n^2 I` must be
    /// symmetric positive definite for `log|K|` to be a real log-density
    /// term.
    NotPositiveDefinite {
        /// Which matrix failed the check (e.g. `"GP covariance matrix"`).
        context: String,
    },
    /// A configuration value is out of its legal range (non-positive
    /// tolerance, zero-size tree, zero threads, missing input, ...).
    InvalidConfig {
        /// Human-readable description of the offending setting.
        message: String,
    },
    /// A memory-budgeted build needed more bytes than the caller allowed.
    /// `context` names the level or block whose allocation crossed the
    /// budget, so the caller knows where assembly stopped.
    BudgetExceeded {
        /// The caller's budget in bytes.
        budget_bytes: u64,
        /// Live bytes the build had reached when it gave up.
        needed_bytes: u64,
        /// The level or block that blew the budget (e.g. `"off-diagonal
        /// factors at level 3"`, `"leaf diagonal blocks"`).
        context: String,
    },
    /// A device kernel launch failed (in this virtual device, only an armed
    /// fault-injection plan produces these; on real hardware this is the
    /// typed face of an asynchronous launch failure).
    DeviceFault {
        /// What the launch was computing (e.g. `"leaf diagonal block"`).
        context: String,
        /// Kernel whose launch failed (e.g. `"getrf_batched"`).
        kernel: String,
        /// Launch ordinal within the armed fault plan (1-based).
        launch: u64,
    },
}

impl HodlrError {
    /// Shorthand for a [`HodlrError::DimensionMismatch`].
    pub fn dims(context: impl Into<String>, expected: usize, found: usize) -> Self {
        HodlrError::DimensionMismatch {
            context: context.into(),
            expected,
            found,
        }
    }

    /// Shorthand for an [`HodlrError::InvalidConfig`].
    pub fn config(message: impl Into<String>) -> Self {
        HodlrError::InvalidConfig {
            message: message.into(),
        }
    }

    /// Check that `found == expected`, attributing a failure to `context`.
    pub fn check_dims(
        context: impl Into<String>,
        expected: usize,
        found: usize,
    ) -> Result<(), HodlrError> {
        if expected == found {
            Ok(())
        } else {
            Err(HodlrError::dims(context, expected, found))
        }
    }
}

impl fmt::Display for HodlrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HodlrError::DimensionMismatch {
                context,
                expected,
                found,
            } => write!(
                f,
                "dimension mismatch in {context}: expected {expected}, found {found}"
            ),
            HodlrError::SingularPivot {
                context,
                pivot,
                batch_index,
            } => match batch_index {
                Some(b) => write!(
                    f,
                    "singular {context} (batch entry {b}): zero pivot at position {pivot}"
                ),
                None => write!(f, "singular {context}: zero pivot at position {pivot}"),
            },
            HodlrError::CompressionRankOverflow {
                max_rank,
                tol,
                context,
            } => write!(
                f,
                "compression of {context} hit the hard rank cap {max_rank} before \
                 certifying tolerance {tol:.3e}"
            ),
            HodlrError::NonConvergence {
                iterations,
                relative_residual,
                context,
            } => write!(
                f,
                "{context} did not converge: relative residual {relative_residual:.3e} \
                 after {iterations} iterations"
            ),
            HodlrError::NotFactorized => {
                write!(f, "solve requested before factorize() was called")
            }
            HodlrError::NotPositiveDefinite { context } => {
                write!(f, "{context} is not positive definite")
            }
            HodlrError::InvalidConfig { message } => write!(f, "invalid configuration: {message}"),
            HodlrError::BudgetExceeded {
                budget_bytes,
                needed_bytes,
                context,
            } => write!(
                f,
                "memory budget exceeded while building {context}: needed {needed_bytes} \
                 bytes against a budget of {budget_bytes}"
            ),
            HodlrError::DeviceFault {
                context,
                kernel,
                launch,
            } => write!(
                f,
                "device fault while computing {context}: {kernel} launch #{launch} failed"
            ),
        }
    }
}

impl std::error::Error for HodlrError {}

impl From<SingularError> for HodlrError {
    fn from(e: SingularError) -> Self {
        HodlrError::SingularPivot {
            context: "matrix".to_string(),
            pivot: e.pivot,
            batch_index: None,
        }
    }
}

impl SingularError {
    /// Promote to a [`HodlrError::SingularPivot`] naming the failing block.
    pub fn into_hodlr(self, context: impl Into<String>) -> HodlrError {
        HodlrError::SingularPivot {
            context: context.into(),
            pivot: self.pivot,
            batch_index: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_offender() {
        let e = HodlrError::dims("right-hand side 2", 64, 63);
        assert!(e.to_string().contains("right-hand side 2"));
        assert!(e.to_string().contains("64"));

        let e = HodlrError::SingularPivot {
            context: "leaf diagonal block".into(),
            pivot: 7,
            batch_index: Some(3),
        };
        assert!(e.to_string().contains("batch entry 3"));
        assert!(e.to_string().contains("position 7"));
    }

    #[test]
    fn check_dims_passes_and_fails() {
        assert!(HodlrError::check_dims("x", 4, 4).is_ok());
        let err = HodlrError::check_dims("x", 4, 5).unwrap_err();
        assert_eq!(
            err,
            HodlrError::DimensionMismatch {
                context: "x".into(),
                expected: 4,
                found: 5
            }
        );
    }

    #[test]
    fn singular_error_promotes_with_context() {
        let e = SingularError { pivot: 2 }.into_hodlr("coupling matrix of node 5");
        assert!(e.to_string().contains("coupling matrix of node 5"));
    }
}
