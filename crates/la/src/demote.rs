//! [`DemoteScalar`] — scalars with a companion lower-precision format.
//!
//! `f64 -> f32` and `Complex64 -> Complex32`: half the memory and flop
//! width.  This lives at the bottom of the dependency graph so that both
//! the mixed-precision refinement machinery (`hodlr-solver`) and the
//! compact-storage build path (`hodlr-core`) can share one definition.

use crate::dense::DenseMatrix;
use crate::scalar::Scalar;
use crate::{Complex32, Complex64};

/// A scalar with a companion lower-precision format (`f64 -> f32`,
/// `Complex64 -> Complex32`).
pub trait DemoteScalar: Scalar {
    /// The lower-precision companion type.
    type Lower: Scalar;

    /// Round to the lower precision.
    fn demote(self) -> Self::Lower;
    /// Embed the lower-precision value back (exact).
    fn promote(lower: Self::Lower) -> Self;
}

impl DemoteScalar for f64 {
    type Lower = f32;

    fn demote(self) -> f32 {
        self as f32
    }
    fn promote(lower: f32) -> f64 {
        lower as f64
    }
}

impl DemoteScalar for Complex64 {
    type Lower = Complex32;

    fn demote(self) -> Complex32 {
        Complex32::new(self.re as f32, self.im as f32)
    }
    fn promote(lower: Complex32) -> Complex64 {
        Complex64::new(lower.re as f64, lower.im as f64)
    }
}

/// Round every entry of a dense matrix to the lower precision.
pub fn demote_dense<T: DemoteScalar>(a: &DenseMatrix<T>) -> DenseMatrix<T::Lower> {
    DenseMatrix::from_col_major(
        a.rows(),
        a.cols(),
        a.data().iter().map(|&x| x.demote()).collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demote_promote_round_trips_representable_values() {
        let x = 1.5f64;
        assert_eq!(f64::promote(x.demote()), 1.5);
        let z = Complex64::new(0.25, -2.0);
        let back = Complex64::promote(z.demote());
        assert_eq!(back.re, 0.25);
        assert_eq!(back.im, -2.0);
    }

    #[test]
    fn demote_dense_rounds_every_entry() {
        let a = DenseMatrix::<f64>::from_fn(3, 2, |i, j| 1.0 + (i + 10 * j) as f64 * 1e-9);
        let lo = demote_dense(&a);
        assert_eq!(lo.rows(), 3);
        assert_eq!(lo.cols(), 2);
        for j in 0..2 {
            for i in 0..3 {
                assert_eq!(lo[(i, j)], a[(i, j)] as f32);
            }
        }
    }
}
