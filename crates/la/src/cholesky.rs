//! Symmetric/Hermitian factorizations: blocked Cholesky (`potrf`), unpivoted
//! LDL^H, and a Bunch-Kaufman symmetric-indefinite fallback.
//!
//! Every GP covariance and every SPD HODLR leaf block is Hermitian positive
//! definite, so factorizing it as `L L^H` costs `n^3/3` flops — half of
//! pivoted LU — and its `log_det` reads off the Cholesky diagonal with no
//! pivot signs to fold.  The HODLR coupling matrices `K = [[T_a, I], [I,
//! T_b]]` are Hermitian but *indefinite* even when the matrix is SPD, so the
//! solver ladders down: `L L^H` first, unpivoted `L D L^H` with a growth
//! guard second, Bunch-Kaufman partial pivoting last.  All three kernels
//! read and write **only the lower triangle** of their input (the strictly
//! upper triangle is never referenced and is left unspecified), operate in
//! place on views, and are deterministic at every thread count because their
//! blocked updates route through [`crate::blas::gemm`].

use crate::blas::Op;
use crate::dense::{DenseMatrix, MatMut, MatRef};
use crate::error::HodlrError;
use crate::scalar::{RealScalar, Scalar};
use crate::triangular::{solve_triangular_in_place, Diag, Triangle};

/// Error from a symmetric factorization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SymmetricError {
    /// A leading minor was found to be not positive definite (an `L L^H`
    /// pivot was zero, negative, or non-finite), mirroring LAPACK `potrf`'s
    /// positive `info`.
    NotPositiveDefinite {
        /// Position of the failing pivot (0-based).
        pivot: usize,
    },
    /// The matrix is singular (a zero pivot that no fallback can repair).
    Singular {
        /// Position of the zero pivot (0-based).
        pivot: usize,
    },
}

impl std::fmt::Display for SymmetricError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SymmetricError::NotPositiveDefinite { pivot } => write!(
                f,
                "matrix is not positive definite: non-positive pivot at position {pivot}"
            ),
            SymmetricError::Singular { pivot } => write!(
                f,
                "matrix is singular: zero pivot at position {pivot} in symmetric factorization"
            ),
        }
    }
}

impl std::error::Error for SymmetricError {}

impl SymmetricError {
    /// Promote to a [`HodlrError`] naming the matrix that failed (e.g.
    /// `"diagonal block of leaf 3"`).
    pub fn into_hodlr(self, context: impl Into<String>) -> HodlrError {
        match self {
            SymmetricError::NotPositiveDefinite { pivot } => HodlrError::NotPositiveDefinite {
                context: format!("{} (Cholesky pivot {pivot})", context.into()),
            },
            SymmetricError::Singular { pivot } => HodlrError::SingularPivot {
                context: context.into(),
                pivot,
                batch_index: None,
            },
        }
    }
}

/// Panel width of the blocked Cholesky (LAPACK's `NB`), matching the LU
/// panel width so the two factorizations hit the packed gemm identically.
const POTRF_NB: usize = 64;

/// Below this order the unblocked kernel runs directly.
const POTRF_BLOCK_MIN: usize = 128;

/// In-place lower Cholesky factorization `A = L L^H` (LAPACK `potrf`,
/// `uplo = 'L'`).
///
/// Blocked right-looking algorithm: a panel of `POTRF_NB` columns (full
/// remaining height) is factorized unblocked — which folds the panel's
/// triangular solve into the same column sweep — and the trailing submatrix
/// receives a syrk-shaped update `A22 -= L21 L21^H` evaluated on the lower
/// trapezoid only, as one [`crate::blas::gemm`] per column panel (half the
/// flops of the full rectangular product).
///
/// Only the lower triangle of `a` is read; on success it holds `L` and the
/// strictly upper triangle is unspecified.
///
/// # Errors
/// [`SymmetricError::NotPositiveDefinite`] when a pivot is zero, negative,
/// or non-finite; `a` is left partially updated in that case.
pub fn potrf_in_place<T: Scalar>(mut a: MatMut<'_, T>) -> Result<(), SymmetricError> {
    let n = a.rows();
    assert_eq!(n, a.cols(), "potrf: matrix must be square");
    if n <= POTRF_BLOCK_MIN {
        return potf2_unblocked(a);
    }

    let mut k = 0;
    while k < n {
        let ib = POTRF_NB.min(n - k);
        potf2_unblocked(a.block_mut(k, k, n - k, ib)).map_err(|e| match e {
            SymmetricError::NotPositiveDefinite { pivot } => {
                SymmetricError::NotPositiveDefinite { pivot: k + pivot }
            }
            other => other,
        })?;

        let kt = k + ib;
        if kt < n {
            let mt = n - kt;
            // Split so the factored panel (left) can be read while the
            // trailing columns (right) are updated in place.
            let (left, mut right) = a.reborrow().split_at_col_mut(kt);
            let left = left.as_ref();
            let l21 = left.block(kt, k, mt, ib);

            // A22 -= L21 L21^H on the lower trapezoid: one gemm per column
            // panel of the trailing matrix, rows j0.. only.
            let mut j0 = 0;
            while j0 < mt {
                let jb = POTRF_NB.min(mt - j0);
                crate::blas::gemm(
                    -T::one(),
                    l21.block(j0, 0, mt - j0, ib),
                    Op::None,
                    l21.block(j0, 0, jb, ib),
                    Op::ConjTrans,
                    T::one(),
                    right.block_mut(kt + j0, j0, mt - j0, jb),
                );
                j0 += jb;
            }
        }
        k += ib;
    }
    Ok(())
}

/// The unblocked kernel (also the panel factorization of the blocked path):
/// for an `m x n` panel with `n <= m`, computes the lower-trapezoidal `L`
/// with `panel = L_panel L11^H`, sweeping columns left to right with one
/// contiguous axpy per trailing column.
fn potf2_unblocked<T: Scalar>(mut a: MatMut<'_, T>) -> Result<(), SymmetricError> {
    let m = a.rows();
    let n = a.cols();
    debug_assert!(n <= m, "potf2: panel must be at least as tall as wide");
    // Scratch for the pivot column, so trailing updates run on contiguous
    // column slices.
    let mut lcol: Vec<T> = Vec::with_capacity(m);

    for k in 0..n {
        let col_k = a.col_mut(k);
        let d = col_k[k].real();
        if !d.is_finite() || d <= T::Real::zero() {
            return Err(SymmetricError::NotPositiveDefinite { pivot: k });
        }
        let lkk = d.sqrt_real();
        col_k[k] = T::from_real(lkk);
        let inv = T::Real::one() / lkk;
        for v in col_k[k + 1..].iter_mut() {
            *v = v.scale(inv);
        }
        lcol.clear();
        lcol.extend_from_slice(&col_k[k + 1..]);
        // Trailing update on the lower trapezoid:
        // A[j.., j] -= conj(L[j, k]) * L[j.., k].
        for j in (k + 1)..n {
            let ljk = lcol[j - k - 1];
            if ljk == T::zero() {
                continue;
            }
            let col_j = a.col_mut(j);
            crate::blas::axpy_slice(-ljk.conj(), &lcol[j - k - 1..], &mut col_j[j..]);
        }
    }
    Ok(())
}

/// Solve `L^H X = B` in place by backward substitution, where `L` is the
/// lower-triangular factor (the transpose solve [`crate::triangular`] does
/// not provide).
pub fn solve_conj_transpose_lower_in_place<T: Scalar>(
    l: MatRef<'_, T>,
    diag: Diag,
    mut b: MatMut<'_, T>,
) {
    let n = l.rows();
    assert_eq!(n, l.cols(), "conj-transpose solve: factor must be square");
    assert_eq!(n, b.rows(), "conj-transpose solve: rhs has wrong row count");
    for c in 0..b.cols() {
        let x = b.col_mut(c);
        for k in (0..n).rev() {
            let lk = l.col(k);
            let s = crate::blas::dot_conj(&lk[k + 1..], &x[k + 1..]);
            let mut v = x[k] - s;
            if matches!(diag, Diag::NonUnit) {
                v *= lk[k].conj().recip();
            }
            x[k] = v;
        }
    }
}

/// Solve `A X = B` in place given the Cholesky factor from
/// [`potrf_in_place`] (LAPACK `potrs`): forward solve with `L`, backward
/// solve with `L^H`.
pub fn potrs_in_place<T: Scalar>(l: MatRef<'_, T>, mut b: MatMut<'_, T>) {
    assert_eq!(l.rows(), l.cols(), "potrs: factor must be square");
    assert_eq!(l.rows(), b.rows(), "potrs: rhs has wrong row count");
    solve_triangular_in_place(l, Triangle::Lower, Diag::NonUnit, b.reborrow());
    solve_conj_transpose_lower_in_place(l, Diag::NonUnit, b);
}

/// In-place unpivoted `A = L D L^H` with unit lower-triangular `L` and real
/// diagonal `D` (stored on the diagonal).
///
/// Unpivoted LDL^H is backward stable only when no pivot is small relative
/// to the entries below it; the ladder in [`SymmetricFactor`] therefore
/// runs it with a growth guard and falls through to Bunch-Kaufman.  Only the
/// lower triangle is referenced.
///
/// # Errors
/// [`SymmetricError::Singular`] on an exactly zero (or non-finite) pivot.
pub fn ldlt_in_place<T: Scalar>(a: MatMut<'_, T>) -> Result<(), SymmetricError> {
    ldlt_guarded_in_place(a, T::Real::INFINITY)
}

/// The guarded worker behind [`ldlt_in_place`]: fails (for the ladder to
/// catch) when any computed multiplier exceeds `growth_limit`.
fn ldlt_guarded_in_place<T: Scalar>(
    mut a: MatMut<'_, T>,
    growth_limit: T::Real,
) -> Result<(), SymmetricError> {
    let n = a.rows();
    assert_eq!(n, a.cols(), "ldlt: matrix must be square");
    let mut lcol: Vec<T> = Vec::with_capacity(n);

    for k in 0..n {
        let col_k = a.col_mut(k);
        let d = col_k[k].real();
        if !d.is_finite() || d == T::Real::zero() {
            return Err(SymmetricError::Singular { pivot: k });
        }
        col_k[k] = T::from_real(d);
        let inv = T::Real::one() / d;
        for v in col_k[k + 1..].iter_mut() {
            *v = v.scale(inv);
            if v.abs() > growth_limit {
                return Err(SymmetricError::Singular { pivot: k });
            }
        }
        lcol.clear();
        lcol.extend_from_slice(&col_k[k + 1..]);
        // A[j.., j] -= L[j.., k] * d * conj(L[j, k]).
        for j in (k + 1)..n {
            let ljk = lcol[j - k - 1];
            if ljk == T::zero() {
                continue;
            }
            let alpha = -ljk.conj().scale(d);
            let col_j = a.col_mut(j);
            crate::blas::axpy_slice(alpha, &lcol[j - k - 1..], &mut col_j[j..]);
        }
    }
    Ok(())
}

/// Solve `A X = B` in place given the packed `L D L^H` factors.
pub fn ldlt_solve_in_place<T: Scalar>(f: MatRef<'_, T>, mut b: MatMut<'_, T>) {
    let n = f.rows();
    assert_eq!(n, b.rows(), "ldlt solve: rhs has wrong row count");
    solve_triangular_in_place(f, Triangle::Lower, Diag::Unit, b.reborrow());
    for c in 0..b.cols() {
        let x = b.col_mut(c);
        for (k, xk) in x.iter_mut().enumerate() {
            *xk = xk.scale(T::Real::one() / f.get(k, k).real());
        }
    }
    solve_conj_transpose_lower_in_place(f, Diag::Unit, b);
}

/// One pivoting step of a Bunch-Kaufman factorization.
///
/// Steps are recorded in column order; a `Single` covers one column, a
/// `Double` covers two.  The recorded index is the row/column interchanged
/// with the step's column (`k` for `Single`, `k + 1` for `Double`),
/// mirroring LAPACK's `ipiv` convention for `uplo = 'L'`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BkPivot {
    /// A 1x1 pivot; rows/columns `k` and the index were interchanged.
    Single(usize),
    /// A 2x2 pivot over columns `k, k + 1`; rows/columns `k + 1` and the
    /// index were interchanged.
    Double(usize),
}

/// In-place Bunch-Kaufman factorization `A = P L D L^H P^T` with partial
/// (rook-free) pivoting, `uplo = 'L'` (LAPACK `hetf2` / `sytf2`): `D` is
/// block diagonal with 1x1 and 2x2 blocks, `L` is unit lower triangular.
/// Only the lower triangle is referenced.
///
/// # Errors
/// [`SymmetricError::Singular`] when a diagonal block of `D` is exactly
/// singular (the trailing submatrix was identically zero, or a 2x2 block
/// has zero determinant).
pub fn bunch_kaufman_in_place<T: Scalar>(
    mut a: MatMut<'_, T>,
) -> Result<Vec<BkPivot>, SymmetricError> {
    let n = a.rows();
    assert_eq!(n, a.cols(), "bunch-kaufman: matrix must be square");
    // alpha = (1 + sqrt(17)) / 8, the growth-minimizing threshold.
    let alpha = (T::Real::one() + T::Real::from_f64_real(17.0).sqrt_real())
        * (T::Real::one() / T::Real::from_f64_real(8.0));
    let mut piv = Vec::with_capacity(n);
    let mut col: Vec<T> = Vec::with_capacity(n);

    let mut k = 0;
    while k < n {
        let mut kstep = 1;
        let absakk = a.get(k, k).real().abs_real();
        // Largest off-diagonal modulus in column k below the diagonal.
        let mut imax = k;
        let mut colmax = T::Real::zero();
        for i in (k + 1)..n {
            let v = a.get(i, k).abs();
            if v > colmax {
                colmax = v;
                imax = i;
            }
        }
        if absakk.max_real(colmax) == T::Real::zero() {
            return Err(SymmetricError::Singular { pivot: k });
        }

        let kp;
        if absakk >= alpha * colmax {
            kp = k;
        } else {
            // Largest modulus in row imax outside column k (stored lower:
            // the row segment A(imax, k..imax) and the column segment
            // A(imax+1.., imax)).
            let mut rowmax = T::Real::zero();
            for j in k..imax {
                rowmax = rowmax.max_real(a.get(imax, j).abs());
            }
            for i in (imax + 1)..n {
                rowmax = rowmax.max_real(a.get(i, imax).abs());
            }
            if absakk * rowmax >= alpha * colmax * colmax {
                kp = k;
            } else if a.get(imax, imax).real().abs_real() >= alpha * rowmax {
                kp = imax;
            } else {
                kp = imax;
                kstep = 2;
            }
        }

        // Interchange rows/columns kk and kp of the trailing submatrix,
        // where kk is the step's last column (Hermitian swap on the lower
        // triangle, LAPACK hetf2 style).
        let kk = k + kstep - 1;
        if kp != kk {
            for i in (kp + 1)..n {
                let t = a.get(i, kk);
                a.set(i, kk, a.get(i, kp));
                a.set(i, kp, t);
            }
            for j in (kk + 1)..kp {
                let t = a.get(j, kk).conj();
                a.set(j, kk, a.get(kp, j).conj());
                a.set(kp, j, t);
            }
            a.set(kp, kk, a.get(kp, kk).conj());
            let r1 = a.get(kk, kk).real();
            a.set(kk, kk, T::from_real(a.get(kp, kp).real()));
            a.set(kp, kp, T::from_real(r1));
            if kstep == 2 {
                a.set(k, k, T::from_real(a.get(k, k).real()));
                let t = a.get(k + 1, k);
                a.set(k + 1, k, a.get(kp, k));
                a.set(kp, k, t);
            }
        }

        if kstep == 1 {
            // 1x1 pivot: rank-1 update of the trailing submatrix, then
            // store the multipliers in column k.
            let d = a.get(k, k).real();
            if !d.is_finite() || d == T::Real::zero() {
                return Err(SymmetricError::Singular { pivot: k });
            }
            let r1 = T::Real::one() / d;
            col.clear();
            col.extend_from_slice(&a.col_mut(k)[k + 1..]);
            for j in (k + 1)..n {
                let ajk = col[j - k - 1];
                if ajk != T::zero() {
                    let beta = -ajk.conj().scale(r1);
                    let col_j = a.col_mut(j);
                    crate::blas::axpy_slice(beta, &col[j - k - 1..], &mut col_j[j..]);
                }
            }
            for v in a.col_mut(k)[k + 1..].iter_mut() {
                *v = v.scale(r1);
            }
            piv.push(BkPivot::Single(kp));
        } else {
            // 2x2 pivot over columns (k, k+1): eliminate the trailing
            // columns against the 2x2 block (LAPACK hetf2's D11/D22/D21
            // formulation), then replace the eliminated entries by the
            // multipliers W.
            if k + 2 < n {
                let e = a.get(k + 1, k);
                let d_abs = e.abs();
                let d11 = a.get(k + 1, k + 1).real() * (T::Real::one() / d_abs);
                let d22 = a.get(k, k).real() * (T::Real::one() / d_abs);
                let tt = T::Real::one() / (d11 * d22 - T::Real::one());
                let d21 = e.scale(T::Real::one() / d_abs);
                let dd = tt * (T::Real::one() / d_abs);
                for j in (k + 2)..n {
                    let ajk = a.get(j, k);
                    let ajk1 = a.get(j, k + 1);
                    let wk = (ajk.scale(d11) - d21 * ajk1).scale(dd);
                    let wkp1 = (ajk1.scale(d22) - d21.conj() * ajk).scale(dd);
                    for i in j..n {
                        let v =
                            a.get(i, j) - a.get(i, k) * wk.conj() - a.get(i, k + 1) * wkp1.conj();
                        a.set(i, j, v);
                    }
                    a.set(j, k, wk);
                    a.set(j, k + 1, wkp1);
                    a.set(j, j, T::from_real(a.get(j, j).real()));
                }
            }
            let det = a.get(k, k).real() * a.get(k + 1, k + 1).real() - a.get(k + 1, k).abs_sqr();
            if !det.is_finite() || det == T::Real::zero() {
                return Err(SymmetricError::Singular { pivot: k });
            }
            piv.push(BkPivot::Double(kp));
        }
        k += kstep;
    }
    Ok(piv)
}

/// Solve `A X = B` in place given packed Bunch-Kaufman factors and their
/// pivot steps (LAPACK `hetrs`, `uplo = 'L'`).
pub fn bunch_kaufman_solve_in_place<T: Scalar>(
    f: MatRef<'_, T>,
    piv: &[BkPivot],
    mut b: MatMut<'_, T>,
) {
    let n = f.rows();
    assert_eq!(n, b.rows(), "bunch-kaufman solve: rhs has wrong row count");

    // Forward sweep: x <- D^{-1} L^{-1} P^T b, step by step.
    let mut k = 0;
    for p in piv {
        match *p {
            BkPivot::Single(kp) => {
                if kp != k {
                    swap_b_rows(&mut b, k, kp);
                }
                let d = T::Real::one() / f.get(k, k).real();
                for c in 0..b.cols() {
                    let x = b.col_mut(c);
                    let xk = x[k];
                    if xk != T::zero() {
                        crate::blas::axpy_slice(-xk, &f.col(k)[k + 1..], &mut x[k + 1..]);
                    }
                    x[k] = x[k].scale(d);
                }
                k += 1;
            }
            BkPivot::Double(kp) => {
                if kp != k + 1 {
                    swap_b_rows(&mut b, k + 1, kp);
                }
                let akm1k = f.get(k + 1, k);
                let akm1 = f.get(k, k) * akm1k.conj().recip();
                let ak = f.get(k + 1, k + 1) * akm1k.recip();
                let denom = (akm1 * ak - T::one()).recip();
                for c in 0..b.cols() {
                    let x = b.col_mut(c);
                    let xk = x[k];
                    let xk1 = x[k + 1];
                    if xk != T::zero() {
                        crate::blas::axpy_slice(-xk, &f.col(k)[k + 2..], &mut x[k + 2..]);
                    }
                    if xk1 != T::zero() {
                        crate::blas::axpy_slice(-xk1, &f.col(k + 1)[k + 2..], &mut x[k + 2..]);
                    }
                    let bkm1 = xk * akm1k.conj().recip();
                    let bk = xk1 * akm1k.recip();
                    x[k] = (ak * bkm1 - bk) * denom;
                    x[k + 1] = (akm1 * bk - bkm1) * denom;
                }
                k += 2;
            }
        }
    }

    // Backward sweep: x <- P L^{-H} x, steps in reverse.
    let mut k = n;
    for p in piv.iter().rev() {
        match *p {
            BkPivot::Single(kp) => {
                k -= 1;
                for c in 0..b.cols() {
                    let x = b.col_mut(c);
                    let s = crate::blas::dot_conj(&f.col(k)[k + 1..], &x[k + 1..]);
                    x[k] -= s;
                }
                if kp != k {
                    swap_b_rows(&mut b, k, kp);
                }
            }
            BkPivot::Double(kp) => {
                k -= 2;
                for c in 0..b.cols() {
                    let x = b.col_mut(c);
                    let s0 = crate::blas::dot_conj(&f.col(k)[k + 2..], &x[k + 2..]);
                    let s1 = crate::blas::dot_conj(&f.col(k + 1)[k + 2..], &x[k + 2..]);
                    x[k] -= s0;
                    x[k + 1] -= s1;
                }
                if kp != k + 1 {
                    swap_b_rows(&mut b, k + 1, kp);
                }
            }
        }
    }
}

fn swap_b_rows<T: Scalar>(b: &mut MatMut<'_, T>, r1: usize, r2: usize) {
    for j in 0..b.cols() {
        let t = b.get(r1, j);
        b.set(r1, j, b.get(r2, j));
        b.set(r2, j, t);
    }
}

/// Which kernel of the symmetric ladder produced a packed factor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SymmetricKind {
    /// `A = L L^H` (Cholesky).
    Llt,
    /// `A = L D L^H`, unit `L`, real diagonal `D`.
    Ldlt,
    /// `A = P L D L^H P^T` with the recorded pivot steps.
    BunchKaufman(Vec<BkPivot>),
}

/// How a symmetric factorization reacts to a non-positive-definite input.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SymmetricPolicy {
    /// `L L^H` only; a non-positive pivot is a typed
    /// [`SymmetricError::NotPositiveDefinite`] error.
    Strict,
    /// The full ladder: `L L^H`, then growth-guarded unpivoted `L D L^H`,
    /// then Bunch-Kaufman.
    Fallback,
}

/// Growth bound for the unpivoted LDL^H rung of the ladder: multipliers
/// beyond `1/sqrt(eps)` mean element growth has destroyed the factorization
/// and Bunch-Kaufman must take over.
fn ldlt_growth_limit<T: Scalar>() -> T::Real {
    (T::Real::one() / T::epsilon()).sqrt_real()
}

/// Factorize a Hermitian matrix in place under `policy`, returning which
/// rung of the ladder succeeded.  This is the one entry point both solver
/// backends use — the serial factorization through [`SymmetricFactor`] and
/// the batched device per batch entry — so the two backends produce
/// bitwise-identical factors.
///
/// # Errors
/// Under [`SymmetricPolicy::Strict`],
/// [`SymmetricError::NotPositiveDefinite`]; under
/// [`SymmetricPolicy::Fallback`], [`SymmetricError::Singular`] when even
/// Bunch-Kaufman finds a singular block.
pub fn factorize_symmetric_in_place<T: Scalar>(
    mut a: MatMut<'_, T>,
    policy: SymmetricPolicy,
) -> Result<SymmetricKind, SymmetricError> {
    match policy {
        SymmetricPolicy::Strict => {
            potrf_in_place(a)?;
            Ok(SymmetricKind::Llt)
        }
        SymmetricPolicy::Fallback => {
            let backup = a.to_owned();
            if potrf_in_place(a.reborrow()).is_ok() {
                return Ok(SymmetricKind::Llt);
            }
            a.copy_from(backup.as_ref());
            if ldlt_guarded_in_place(a.reborrow(), ldlt_growth_limit::<T>()).is_ok() {
                return Ok(SymmetricKind::Ldlt);
            }
            a.copy_from(backup.as_ref());
            let piv = bunch_kaufman_in_place(a)?;
            Ok(SymmetricKind::BunchKaufman(piv))
        }
    }
}

/// Solve `A X = B` in place against a packed factor of the given kind (the
/// symmetric analogue of `getrs`, shared by both backends).
pub fn solve_symmetric_in_place<T: Scalar>(
    f: MatRef<'_, T>,
    kind: &SymmetricKind,
    b: MatMut<'_, T>,
) {
    match kind {
        SymmetricKind::Llt => potrs_in_place(f, b),
        SymmetricKind::Ldlt => ldlt_solve_in_place(f, b),
        SymmetricKind::BunchKaufman(piv) => bunch_kaufman_solve_in_place(f, piv, b),
    }
}

/// Log-determinant contribution of one packed symmetric factor, from its
/// diagonal `diag` and (for Bunch-Kaufman 2x2 blocks) subdiagonal `sub`.
///
/// Returns `(log|det|, s)` with `det = s * exp(log|det|)` and `s = ±1`
/// (Hermitian determinants are real).  Like
/// [`log_det_from_parts`](crate::lu::log_det_from_parts) for LU, this is
/// the *one* accumulation both solver backends use — serial through
/// [`SymmetricFactor::log_det`], batched through the diagonals gathered by
/// its extraction kernel — so the two backends agree bitwise whenever the
/// underlying factors do.  Symmetric permutations (`P X P^T`) contribute no
/// sign.
pub fn sym_log_det_from_parts<T: Scalar>(
    kind: &SymmetricKind,
    diag: &[T],
    sub: &[T],
) -> (T::Real, T) {
    let mut log_abs = T::Real::zero();
    let mut negative = false;
    match kind {
        SymmetricKind::Llt => {
            let two = T::Real::from_f64_real(2.0);
            for d in diag {
                log_abs += two * d.real().ln();
            }
        }
        SymmetricKind::Ldlt => {
            for d in diag {
                let v = d.real();
                log_abs += v.abs_real().ln();
                if v < T::Real::zero() {
                    negative = !negative;
                }
            }
        }
        SymmetricKind::BunchKaufman(piv) => {
            let mut k = 0;
            for p in piv {
                match p {
                    BkPivot::Single(_) => {
                        let v = diag[k].real();
                        log_abs += v.abs_real().ln();
                        if v < T::Real::zero() {
                            negative = !negative;
                        }
                        k += 1;
                    }
                    BkPivot::Double(_) => {
                        let det = diag[k].real() * diag[k + 1].real() - sub[k].abs_sqr();
                        log_abs += det.abs_real().ln();
                        if det < T::Real::zero() {
                            negative = !negative;
                        }
                        k += 2;
                    }
                }
            }
        }
    }
    let sign = if negative { -T::one() } else { T::one() };
    (log_abs, sign)
}

/// An owned symmetric factorization of a square Hermitian matrix — the
/// symmetric counterpart of [`LuFactor`](crate::lu::LuFactor), produced by
/// the ladder `L L^H` → guarded `L D L^H` → Bunch-Kaufman under a
/// [`SymmetricPolicy`].
#[derive(Clone)]
pub struct SymmetricFactor<T> {
    f: DenseMatrix<T>,
    kind: SymmetricKind,
}

impl<T: Scalar> std::fmt::Debug for SymmetricFactor<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SymmetricFactor")
            .field("order", &self.f.rows())
            .field("kind", &self.kind)
            .finish()
    }
}

impl<T: Scalar> SymmetricFactor<T> {
    /// Factorize a square Hermitian matrix (copying it).  Only the lower
    /// triangle of `a` is read.
    ///
    /// # Errors
    /// As [`factorize_symmetric_in_place`].
    pub fn new(a: &DenseMatrix<T>, policy: SymmetricPolicy) -> Result<Self, SymmetricError> {
        Self::from_matrix(a.clone(), policy)
    }

    /// Factorize, taking ownership of the matrix storage.
    ///
    /// # Errors
    /// As [`factorize_symmetric_in_place`].
    pub fn from_matrix(
        mut a: DenseMatrix<T>,
        policy: SymmetricPolicy,
    ) -> Result<Self, SymmetricError> {
        assert_eq!(
            a.rows(),
            a.cols(),
            "SymmetricFactor requires a square matrix"
        );
        let kind = factorize_symmetric_in_place(a.as_mut(), policy)?;
        Ok(SymmetricFactor { f: a, kind })
    }

    /// Order of the factored matrix.
    pub fn order(&self) -> usize {
        self.f.rows()
    }

    /// Which rung of the ladder produced this factor.
    pub fn kind(&self) -> &SymmetricKind {
        &self.kind
    }

    /// The packed factor data (for tests and diagnostics).
    pub fn factors(&self) -> (&DenseMatrix<T>, &SymmetricKind) {
        (&self.f, &self.kind)
    }

    /// Solve `A x = b`, returning the solution.
    pub fn solve_vec(&self, b: &[T]) -> Vec<T> {
        assert_eq!(b.len(), self.order());
        let mut x = b.to_vec();
        let n = x.len();
        solve_symmetric_in_place(
            self.f.as_ref(),
            &self.kind,
            MatMut::from_parts(&mut x, n, 1, n.max(1)),
        );
        x
    }

    /// Solve `A X = B` for a multi-column right-hand side in place.
    pub fn solve_in_place(&self, b: MatMut<'_, T>) {
        solve_symmetric_in_place(self.f.as_ref(), &self.kind, b);
    }

    /// Solve `A X = B`, returning the solution matrix.
    pub fn solve_matrix(&self, b: &DenseMatrix<T>) -> DenseMatrix<T> {
        let mut x = b.clone();
        self.solve_in_place(x.as_mut());
        x
    }

    /// Logarithm of the absolute determinant plus its sign (`±1`; Hermitian
    /// determinants are real), via [`sym_log_det_from_parts`].
    pub fn log_det(&self) -> (T::Real, T) {
        let n = self.order();
        let diag: Vec<T> = (0..n).map(|i| self.f[(i, i)]).collect();
        let sub: Vec<T> = (0..n.saturating_sub(1))
            .map(|i| self.f[(i + 1, i)])
            .collect();
        sym_log_det_from_parts(&self.kind, &diag, &sub)
    }

    /// Scalar entries of factor payload: the lower triangle (including the
    /// diagonal), which is all the solve ever reads — the symmetric
    /// factor's resident footprint is half a square LU factor's.
    pub fn storage_entries(&self) -> usize {
        let n = self.order();
        n * (n + 1) / 2
    }

    /// The explicit lower-triangular Cholesky factor `L` with the strictly
    /// upper triangle zeroed (only for [`SymmetricKind::Llt`] factors; used
    /// by samplers that need `L z` products and by tests).
    ///
    /// # Panics
    /// Panics if this factor is not an `L L^H` factorization.
    pub fn lower_factor(&self) -> DenseMatrix<T> {
        assert!(
            matches!(self.kind, SymmetricKind::Llt),
            "lower_factor is only defined for L L^H factors"
        );
        let n = self.order();
        DenseMatrix::from_fn(n, n, |i, j| if i >= j { self.f[(i, j)] } else { T::zero() })
    }
}

/// Flop count of a symmetric factorization of order `n` (`n^3/3` — half of
/// LU's `2n^3/3`), used by the batched device metering and the analytic
/// complexity model.
pub fn sym_factorization_flops(n: u64) -> u64 {
    n * n * n / 3
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lu::LuFactor;
    use crate::random::random_matrix;
    use crate::Complex64;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A random Hermitian positive-definite matrix `G G^H + n I`.
    fn random_spd<T: Scalar>(rng: &mut StdRng, n: usize) -> DenseMatrix<T> {
        let g: DenseMatrix<T> = random_matrix(rng, n, n);
        let mut a = DenseMatrix::<T>::zeros(n, n);
        crate::blas::gemm(
            T::one(),
            g.as_ref(),
            Op::None,
            g.as_ref(),
            Op::ConjTrans,
            T::zero(),
            a.as_mut(),
        );
        for i in 0..n {
            a[(i, i)] += T::from_f64(n as f64);
        }
        a
    }

    /// A random Hermitian indefinite matrix `(G + G^H) / 2` with a spread
    /// spectrum.
    fn random_indefinite<T: Scalar>(rng: &mut StdRng, n: usize) -> DenseMatrix<T> {
        let g: DenseMatrix<T> = random_matrix(rng, n, n);
        let gh = g.conj_transpose();
        let mut a = g;
        a.axpy(T::one(), &gh);
        a.scale_in_place(T::from_f64(0.5));
        a
    }

    fn check_llt<T: Scalar>(n: usize, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a: DenseMatrix<T> = random_spd(&mut rng, n);
        let f = SymmetricFactor::new(&a, SymmetricPolicy::Strict).unwrap();
        assert!(matches!(f.kind(), SymmetricKind::Llt));
        // Reconstruction: L L^H == A.
        let l = f.lower_factor();
        let mut rec = DenseMatrix::<T>::zeros(n, n);
        crate::blas::gemm(
            T::one(),
            l.as_ref(),
            Op::None,
            l.as_ref(),
            Op::ConjTrans,
            T::zero(),
            rec.as_mut(),
        );
        let err = rec.sub(&a).norm_max().to_f64();
        assert!(err < 1e-8 * n as f64, "reconstruction error {err}");
        // Solve.
        let x_true: Vec<T> = (0..n).map(|i| T::from_f64(i as f64 - 2.5)).collect();
        let b = a.matvec(&x_true);
        let x = f.solve_vec(&b);
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((*xi - *ti).abs().to_f64() < 1e-8);
        }
        // log_det matches LU.
        let (ld, sign) = f.log_det();
        let (ld_lu, sign_lu) = LuFactor::new(&a).unwrap().log_det();
        assert!(
            (ld - ld_lu).abs_real().to_f64() < 1e-9,
            "{ld:?} vs {ld_lu:?}"
        );
        assert!((sign - sign_lu).abs().to_f64() < 1e-9);
    }

    #[test]
    fn llt_real_and_complex() {
        check_llt::<f64>(13, 1);
        check_llt::<f64>(64, 2);
        check_llt::<Complex64>(17, 3);
    }

    #[test]
    fn blocked_llt_matches_unblocked_bitwise_structure() {
        // Above POTRF_BLOCK_MIN the blocked path runs; its factor must agree
        // with the small-order contract (reconstruction) at large n too.
        check_llt::<f64>(200, 4);
        check_llt::<Complex64>(150, 5);
    }

    #[test]
    fn llt_rejects_indefinite_without_nan() {
        let mut rng = StdRng::seed_from_u64(6);
        let a: DenseMatrix<f64> = random_indefinite(&mut rng, 12);
        let err = SymmetricFactor::new(&a, SymmetricPolicy::Strict).unwrap_err();
        assert!(matches!(err, SymmetricError::NotPositiveDefinite { .. }));
        assert!(err.to_string().contains("not positive definite"));
    }

    #[test]
    fn fallback_ladder_handles_indefinite() {
        let mut rng = StdRng::seed_from_u64(7);
        let a: DenseMatrix<f64> = random_indefinite(&mut rng, 15);
        let f = SymmetricFactor::new(&a, SymmetricPolicy::Fallback).unwrap();
        let x_true: Vec<f64> = (0..15).map(|i| (i as f64).cos()).collect();
        let b = a.matvec(&x_true);
        let x = f.solve_vec(&b);
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-7, "{xi} vs {ti}");
        }
        let (ld, sign) = f.log_det();
        let (ld_lu, sign_lu) = LuFactor::new(&a).unwrap().log_det();
        assert!((ld - ld_lu).abs() < 1e-8);
        assert!((sign - sign_lu).abs() < 1e-8);
    }

    #[test]
    fn bunch_kaufman_on_hard_indefinite_block() {
        // The HODLR coupling shape [[eps I, I], [I, eps I]]: unpivoted LDL^H
        // sees 1/eps growth, Bunch-Kaufman must take over in the ladder.
        let w = 4;
        let eps = 1e-12;
        let n = 2 * w;
        let mut a = DenseMatrix::<f64>::zeros(n, n);
        for i in 0..n {
            a[(i, i)] = eps;
        }
        for i in 0..w {
            a[(i, w + i)] = 1.0;
            a[(w + i, i)] = 1.0;
        }
        let f = SymmetricFactor::new(&a, SymmetricPolicy::Fallback).unwrap();
        assert!(
            matches!(f.kind(), SymmetricKind::BunchKaufman(_)),
            "expected the Bunch-Kaufman rung, got {:?}",
            f.kind()
        );
        let b: Vec<f64> = (0..n).map(|i| i as f64 + 1.0).collect();
        let x = f.solve_vec(&b);
        let ax = a.matvec(&x);
        for (v, bi) in ax.iter().zip(&b) {
            assert!((v - bi).abs() < 1e-9, "{v} vs {bi}");
        }
        // det = (eps^2 - 1)^w > 0 for even sign pattern; check vs LU.
        let (ld, sign) = f.log_det();
        let (ld_lu, sign_lu) = LuFactor::new(&a).unwrap().log_det();
        assert!((ld - ld_lu).abs() < 1e-8, "{ld} vs {ld_lu}");
        assert!((sign - sign_lu).abs() < 1e-8);
    }

    #[test]
    fn bunch_kaufman_complex_hermitian() {
        let mut rng = StdRng::seed_from_u64(8);
        let a: DenseMatrix<Complex64> = random_indefinite(&mut rng, 11);
        let mut packed = a.clone();
        let piv = bunch_kaufman_in_place(packed.as_mut()).unwrap();
        let x_true: Vec<Complex64> = (0..11)
            .map(|i| Complex64::new(i as f64, -(i as f64) / 3.0))
            .collect();
        let b = a.matvec(&x_true);
        let mut x = b.clone();
        let nb = x.len();
        bunch_kaufman_solve_in_place(packed.as_ref(), &piv, MatMut::from_parts(&mut x, nb, 1, nb));
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((*xi - *ti).abs() < 1e-7);
        }
    }

    #[test]
    fn ldlt_solves_spd_and_matches_log_det() {
        let mut rng = StdRng::seed_from_u64(9);
        let a: DenseMatrix<f64> = random_spd(&mut rng, 10);
        let mut packed = a.clone();
        ldlt_in_place(packed.as_mut()).unwrap();
        let diag: Vec<f64> = (0..10).map(|i| packed[(i, i)]).collect();
        let (ld, sign) = sym_log_det_from_parts(&SymmetricKind::Ldlt, &diag, &[]);
        let (ld_lu, _) = LuFactor::new(&a).unwrap().log_det();
        assert!((ld - ld_lu).abs() < 1e-9);
        assert_eq!(sign, 1.0);
        let b: Vec<f64> = (0..10).map(|i| (i as f64).sin()).collect();
        let mut x = b.clone();
        ldlt_solve_in_place(packed.as_ref(), MatMut::from_parts(&mut x, 10, 1, 10));
        let ax = a.matvec(&x);
        for (v, bi) in ax.iter().zip(&b) {
            assert!((v - bi).abs() < 1e-8);
        }
    }

    #[test]
    fn zero_order_factorization_is_trivial() {
        let a = DenseMatrix::<f64>::zeros(0, 0);
        let f = SymmetricFactor::new(&a, SymmetricPolicy::Fallback).unwrap();
        assert_eq!(f.order(), 0);
        let (ld, sign) = f.log_det();
        assert_eq!(ld, 0.0);
        assert_eq!(sign, 1.0);
        assert!(f.solve_vec(&[]).is_empty());
    }

    #[test]
    fn strided_views_factor_correctly() {
        // Factor a block embedded in a larger buffer (ld > n).
        let mut rng = StdRng::seed_from_u64(10);
        let n = 9;
        let ld = 14;
        let a: DenseMatrix<f64> = random_spd(&mut rng, n);
        let mut buf = vec![f64::NAN; ld * n];
        for j in 0..n {
            for i in 0..n {
                buf[j * ld + i] = a[(i, j)];
            }
        }
        let view = MatMut::from_parts(&mut buf, n, n, ld);
        let mut view = view;
        potrf_in_place(view.reborrow()).unwrap();
        let mut x: Vec<f64> = (0..n).map(|i| i as f64 + 0.5).collect();
        let b = a.matvec(&x.clone());
        x.copy_from_slice(&b);
        potrs_in_place(
            MatRef::from_parts(&buf, n, n, ld),
            MatMut::from_parts(&mut x, n, 1, n),
        );
        let ax = a.matvec(&x);
        for (v, bi) in ax.iter().zip(&b) {
            assert!((v - bi).abs() < 1e-9);
        }
    }
}
