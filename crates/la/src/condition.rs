//! Hager/Higham 1-norm estimation (the LAPACK `xLACON` algorithm).
//!
//! [`one_norm_est`] estimates `‖B‖₁` for a linear operator `B` given only
//! the ability to apply `B` and its adjoint `Bᴴ` to vectors.  With
//! `B = A⁻¹` applied via a factorization's solve, the estimate combines
//! with `‖A‖₁` into the condition estimate `κ₁(A) ≈ ‖A‖₁ ‖A⁻¹‖₁` that the
//! verification layer attaches to `Suspect` solve verdicts — a handful of
//! solves instead of an `O(n³)` inverse.
//!
//! The algorithm is Higham's refinement of Hager's convex-optimization
//! ascent: walk the unit 1-norm ball vertex to vertex (each step is one
//! apply + one adjoint apply), then take the maximum with a fallback
//! estimate from a fixed alternating test vector that guards against the
//! ascent stalling on symmetric structures.  The estimate is a **lower
//! bound** on `‖B‖₁`, almost always within a factor of 2–3 and exact for
//! many structured matrices; LAPACK ships the same trade-off.

use crate::scalar::{RealScalar, Scalar};

/// Maximum number of ascent iterations (LAPACK uses 5).
const MAX_ITERS: usize = 5;

/// Estimate the 1-norm of the operator behind `apply`/`apply_adjoint`.
///
/// `apply` must overwrite its argument with `B x`; `apply_adjoint` with
/// `Bᴴ x`.  Both are called on vectors of length `n`, at most
/// `2 * MAX_ITERS + 3` times in total.  Returns the estimate as `f64`.
///
/// Non-finite intermediates (e.g. a poisoned operator) yield
/// `f64::INFINITY` rather than an error: for condition estimation an
/// operator that produces NaN is as bad as a singular one.
///
/// # Errors
/// Propagates the first error either closure returns.
pub fn one_norm_est<T: Scalar, E>(
    n: usize,
    apply: &mut dyn FnMut(&mut [T]) -> Result<(), E>,
    apply_adjoint: &mut dyn FnMut(&mut [T]) -> Result<(), E>,
) -> Result<f64, E> {
    if n == 0 {
        return Ok(0.0);
    }

    // Start from the uniform vertex x = e/n.
    let mut x = vec![T::from_f64(1.0 / n as f64); n];
    apply(&mut x)?;
    let mut est = norm1(&x);
    if !est.is_finite() {
        return Ok(f64::INFINITY);
    }
    if n == 1 {
        return Ok(est);
    }

    let mut prev_j = usize::MAX;
    for _ in 0..MAX_ITERS {
        // xi = sign(B x); z = Bᴴ xi.  The largest |z_j| names the vertex
        // e_j with the steepest ascent direction.
        let mut z: Vec<T> = x.iter().map(|&v| sign(v)).collect();
        apply_adjoint(&mut z)?;
        let j = argmax_abs(&z);
        if !z[j].abs().to_f64().is_finite() {
            return Ok(f64::INFINITY);
        }
        if j == prev_j {
            break;
        }
        prev_j = j;

        // Evaluate the vertex: est = ‖B e_j‖₁.
        x.iter_mut().for_each(|v| *v = T::zero());
        x[j] = T::one();
        apply(&mut x)?;
        let vertex_est = norm1(&x);
        if !vertex_est.is_finite() {
            return Ok(f64::INFINITY);
        }
        if vertex_est <= est {
            break;
        }
        est = vertex_est;
    }

    // Higham's safeguard: an alternating vector with growing magnitudes
    // catches operators on which the ascent stalls at the first vertex.
    let mut alt: Vec<T> = (0..n)
        .map(|i| {
            let mag = 1.0 + i as f64 / (n - 1) as f64;
            T::from_f64(if i % 2 == 0 { mag } else { -mag })
        })
        .collect();
    apply(&mut alt)?;
    let alt_est = 2.0 * norm1(&alt) / (3.0 * n as f64);
    if !alt_est.is_finite() {
        return Ok(f64::INFINITY);
    }
    Ok(est.max(alt_est))
}

/// `‖x‖₁` as `f64` (NaN entries propagate into a NaN total).
fn norm1<T: Scalar>(x: &[T]) -> f64 {
    x.iter().map(|&v| v.abs().to_f64()).sum()
}

/// The complex sign `v/|v|` (1 for v = 0); reduces to ±1 for real scalars.
fn sign<T: Scalar>(v: T) -> T {
    let a = v.abs();
    if a.to_f64() == 0.0 {
        T::one()
    } else {
        v.scale(a.recip())
    }
}

/// Index of the entry with the largest magnitude (ties: first).  NaN
/// magnitudes never win a `>` comparison, so a poisoned z falls back to
/// index 0 — the caller separately checks finiteness.
fn argmax_abs<T: Scalar>(z: &[T]) -> usize {
    let mut best = 0usize;
    let mut best_abs = z[0].abs();
    for (i, &v) in z.iter().enumerate().skip(1) {
        let a = v.abs();
        if a > best_abs {
            best = i;
            best_abs = a;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::DenseMatrix;
    use crate::norms::norm_one;
    use crate::random::random_matrix;
    use crate::{gemv, Complex64, Op};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Drive the estimator with dense gemv applies of `a`.
    fn estimate_dense<T: Scalar>(a: &DenseMatrix<T>) -> f64 {
        let n = a.cols();
        let mut apply = |x: &mut [T]| -> Result<(), std::convert::Infallible> {
            let y = gemv_vec(a, x, Op::None);
            x.copy_from_slice(&y);
            Ok(())
        };
        let mut apply_adj = |x: &mut [T]| -> Result<(), std::convert::Infallible> {
            let y = gemv_vec(a, x, Op::ConjTrans);
            x.copy_from_slice(&y);
            Ok(())
        };
        let Ok(est) = one_norm_est(n, &mut apply, &mut apply_adj);
        est
    }

    fn gemv_vec<T: Scalar>(a: &DenseMatrix<T>, x: &[T], op: Op) -> Vec<T> {
        let mut y = vec![T::zero(); a.rows().max(a.cols())];
        let out_len = match op {
            Op::None => a.rows(),
            _ => a.cols(),
        };
        y.truncate(out_len);
        gemv(T::one(), a.as_ref(), op, x, T::zero(), &mut y);
        y
    }

    #[test]
    fn exact_on_diagonal_matrices() {
        let mut a = DenseMatrix::<f64>::zeros(6, 6);
        for (i, d) in [3.0, -7.0, 0.5, 2.0, -1.0, 4.0].iter().enumerate() {
            a[(i, i)] = *d;
        }
        let est = estimate_dense(&a);
        assert!((est - 7.0).abs() < 1e-12, "est {est}");
    }

    #[test]
    fn exact_on_the_identity_and_empty() {
        let est = estimate_dense(&DenseMatrix::<f64>::identity(5));
        assert!((est - 1.0).abs() < 1e-12);
        let mut apply = |_: &mut [f64]| -> Result<(), std::convert::Infallible> { Ok(()) };
        let mut adj = |_: &mut [f64]| -> Result<(), std::convert::Infallible> { Ok(()) };
        assert_eq!(one_norm_est::<f64, _>(0, &mut apply, &mut adj), Ok(0.0));
    }

    #[test]
    fn one_by_one_needs_a_single_apply() {
        let mut a = DenseMatrix::<f64>::zeros(1, 1);
        a[(0, 0)] = -9.25;
        assert!((estimate_dense(&a) - 9.25).abs() < 1e-12);
    }

    #[test]
    fn lower_bound_within_factor_three_on_random_matrices() {
        let mut rng = StdRng::seed_from_u64(97);
        for n in [4usize, 9, 16, 32] {
            let a: DenseMatrix<f64> = random_matrix(&mut rng, n, n);
            let exact = norm_one(a.as_ref()).to_f64();
            let est = estimate_dense(&a);
            assert!(
                est <= exact * (1.0 + 1e-12),
                "n={n}: estimate {est} above exact {exact}"
            );
            assert!(
                est >= exact / 3.0,
                "n={n}: estimate {est} too far below exact {exact}"
            );
        }
    }

    #[test]
    fn complex_operators_are_estimated() {
        let mut rng = StdRng::seed_from_u64(98);
        let a: DenseMatrix<Complex64> = random_matrix(&mut rng, 8, 8);
        let exact = norm_one(a.as_ref()).to_f64();
        let est = estimate_dense(&a);
        assert!(est <= exact * (1.0 + 1e-12) && est >= exact / 3.0);
    }

    #[test]
    fn non_finite_operator_estimates_infinite() {
        let mut apply = |x: &mut [f64]| -> Result<(), std::convert::Infallible> {
            x.iter_mut().for_each(|v| *v = f64::NAN);
            Ok(())
        };
        let mut apply2 = |x: &mut [f64]| -> Result<(), std::convert::Infallible> {
            x.iter_mut().for_each(|v| *v = f64::NAN);
            Ok(())
        };
        let Ok(est) = one_norm_est(4, &mut apply, &mut apply2);
        assert_eq!(est, f64::INFINITY);
    }

    #[test]
    fn errors_from_the_applies_propagate() {
        let mut apply = |_: &mut [f64]| -> Result<(), &'static str> { Err("boom") };
        let mut adj = |_: &mut [f64]| -> Result<(), &'static str> { Ok(()) };
        assert_eq!(one_norm_est(4, &mut apply, &mut adj), Err("boom"));
    }
}
