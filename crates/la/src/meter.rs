//! [`AllocMeter`] — live/peak byte accounting for streaming assembly.
//!
//! The HODLR builder's claim to fame is that it never materialises an
//! `O(N^2)` block, so the workspace needs *measured* evidence of what it
//! does allocate.  `AllocMeter` is that evidence: a pair of atomic
//! counters (live bytes, peak bytes) threaded through the compression
//! kernels and the level-by-level builder, in the same spirit as the
//! launch/flop counters of the virtual batched device (`hodlr-batch`).
//! Recording is wait-free and safe to share across the rayon pool, so the
//! parallel per-level compression sweeps meter their scratch without
//! serialising on a lock.
//!
//! The meter *observes*; it never fails.  Budget enforcement lives in the
//! builder, which compares [`AllocMeter::live_bytes`] against the caller's
//! budget between levels and surfaces a typed
//! [`BudgetExceeded`](crate::HodlrError::BudgetExceeded) naming the level
//! or block that blew it.

use std::sync::atomic::{AtomicU64, Ordering};

/// Atomic live/peak byte counters for streaming assembly.
///
/// `record_alloc`/`record_free` bracket the lifetime of every sizable
/// buffer a metered code path owns (compression scratch, per-block
/// factors, leaf blocks, the flattened `Ubig`/`Vbig`).  `peak_bytes` is
/// the high-water mark of the live count — a *measured* peak, not an
/// estimate.
#[derive(Debug, Default)]
pub struct AllocMeter {
    live: AtomicU64,
    peak: AtomicU64,
}

impl AllocMeter {
    /// A meter with both counters at zero.
    pub fn new() -> Self {
        AllocMeter::default()
    }

    /// Record an allocation of `bytes`, advancing the peak if the live
    /// count crosses it.
    pub fn record_alloc(&self, bytes: u64) {
        let live = self.live.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.peak.fetch_max(live, Ordering::Relaxed);
    }

    /// Record a free of `bytes` (saturating: a mismatched free clamps the
    /// live count at zero instead of wrapping).
    pub fn record_free(&self, bytes: u64) {
        let mut cur = self.live.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_sub(bytes);
            match self
                .live
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Bytes currently recorded as live.
    pub fn live_bytes(&self) -> u64 {
        self.live.load(Ordering::Relaxed)
    }

    /// High-water mark of the live count since construction (or the last
    /// [`reset`](AllocMeter::reset)).
    pub fn peak_bytes(&self) -> u64 {
        self.peak.load(Ordering::Relaxed)
    }

    /// Zero both counters.
    pub fn reset(&self) {
        self.live.store(0, Ordering::Relaxed);
        self.peak.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_tracks_the_high_water_mark() {
        let m = AllocMeter::new();
        m.record_alloc(100);
        m.record_alloc(50);
        m.record_free(120);
        m.record_alloc(10);
        assert_eq!(m.live_bytes(), 40);
        assert_eq!(m.peak_bytes(), 150);
    }

    #[test]
    fn free_saturates_instead_of_wrapping() {
        let m = AllocMeter::new();
        m.record_alloc(10);
        m.record_free(100);
        assert_eq!(m.live_bytes(), 0);
        m.record_alloc(5);
        assert_eq!(m.live_bytes(), 5);
        assert_eq!(m.peak_bytes(), 10);
    }

    #[test]
    fn reset_zeroes_both_counters() {
        let m = AllocMeter::new();
        m.record_alloc(7);
        m.reset();
        assert_eq!(m.live_bytes(), 0);
        assert_eq!(m.peak_bytes(), 0);
    }

    #[test]
    fn concurrent_recording_is_consistent() {
        let m = AllocMeter::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        m.record_alloc(3);
                        m.record_free(3);
                    }
                });
            }
        });
        assert_eq!(m.live_bytes(), 0);
        assert!(m.peak_bytes() >= 3);
        assert!(m.peak_bytes() <= 12);
    }
}
