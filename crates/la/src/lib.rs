//! # hodlr-la — dense linear-algebra substrate
//!
//! A small, self-contained dense linear-algebra library used by every other
//! crate in the `hodlr-rs` workspace.  It provides:
//!
//! * a [`Scalar`] abstraction over `f32`, `f64`, [`Complex32`] and
//!   [`Complex64`] so that every solver in the workspace is generic
//!   over real and complex fields (the paper solves both Laplace — real — and
//!   Helmholtz — complex — boundary integral equations);
//! * a column-major [`DenseMatrix`] with borrowed strided views
//!   ([`MatRef`]/[`MatMut`]) so that sub-blocks of the big concatenated
//!   `Ubig`/`Vbig`/`Dbig` matrices can be addressed without copies;
//! * level-3 BLAS style kernels ([`gemm`], triangular solves) with
//!   cache blocking and optional rayon parallelism;
//! * LAPACK-style factorizations: LU with partial pivoting ([`lu`]),
//!   symmetric Cholesky / LDL^H / Bunch-Kaufman ([`cholesky`]),
//!   Householder QR and column-pivoted QR ([`qr`]), and a one-sided Jacobi
//!   SVD ([`svd`]) used for low-rank recompression.
//!
//! Everything is written from scratch: no external BLAS, LAPACK or GPU
//! libraries are used anywhere in the workspace.

pub mod bidiag;
pub mod blas;
pub mod cholesky;
pub mod complex;
pub mod condition;
pub mod demote;
pub mod dense;
pub mod error;
pub mod evd;
pub mod lu;
pub mod meter;
pub mod norms;
pub mod qr;
pub mod random;
pub mod scalar;
pub mod svd;
pub mod triangular;

pub use bidiag::{bidiagonalize, golub_kahan_svd, Bidiagonal};
pub use blas::{gemm, gemv, Op};
pub use cholesky::{
    sym_log_det_from_parts, BkPivot, SymmetricError, SymmetricFactor, SymmetricKind,
    SymmetricPolicy,
};
pub use complex::Complex;
pub use condition::one_norm_est;
pub use demote::{demote_dense, DemoteScalar};
pub use dense::{DenseMatrix, MatMut, MatRef};
pub use error::HodlrError;
pub use evd::{steqr, symmetric_evd, tridiagonalize, SymmetricEvd, Tridiagonal};
pub use lu::{log_det_from_parts, LuFactor};
pub use meter::AllocMeter;
pub use scalar::{RealScalar, Scalar};

/// Single-precision complex number.
pub type Complex32 = Complex<f32>;
/// Double-precision complex number.
pub type Complex64 = Complex<f64>;
