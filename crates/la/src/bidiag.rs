//! Golub-Kahan bidiagonalization and the Golub-Reinsch bidiagonal-QR SVD.
//!
//! [`bidiagonalize`] reduces a tall matrix (`m >= n`) to real upper
//! bidiagonal form `A = U B V^H` with alternating left/right Householder
//! reflectors (LAPACK `gebrd`'s unblocked scheme, which already produces a
//! *real* bidiagonal even for complex input because every reflector is
//! generated with a real `beta`).  [`golub_kahan_svd`] then diagonalizes
//! `B` with implicit-shift bidiagonal QR (Golub-Reinsch), chasing the bulge
//! with real Givens rotations that are accumulated into the complex `U`/`V`
//! factors, and returns the workspace's standard [`Svd`] (singular values
//! non-increasing, thin `U`).
//!
//! Compared with the one-sided [`jacobi_svd`](crate::svd::jacobi_svd) this
//! path costs `O(m n^2)` with a much smaller constant on tall matrices and
//! keeps `U`/`V` orthonormal to roundoff for clustered spectra; Jacobi stays
//! the recompression workhorse for the small blocks the HODLR compressor
//! produces.  All loops are sequential with fixed orders, so the output is
//! bitwise identical at any thread count.

use crate::blas::{axpy_slice, dot_conj, gemv, Op};
use crate::dense::DenseMatrix;
use crate::error::HodlrError;
use crate::evd::{larfg, sign_to};
use crate::scalar::{RealScalar, Scalar};
use crate::svd::Svd;

/// Maximum implicit-shift QR iterations per singular value.
const BDSQR_MAX_ITERS: usize = 30;

/// Result of [`bidiagonalize`]: `A = U B V^H` with `B` real upper
/// bidiagonal (`diag` on the diagonal, `sup` on the superdiagonal).
#[derive(Debug, Clone)]
pub struct Bidiagonal<T: Scalar> {
    /// Left reflectors accumulated into a thin `m x n` orthonormal factor.
    pub u: DenseMatrix<T>,
    /// Diagonal of `B` (length `n`, real even for complex input).
    pub diag: Vec<T::Real>,
    /// Superdiagonal of `B` (length `n - 1`).
    pub sup: Vec<T::Real>,
    /// Right reflectors accumulated into an `n x n` unitary factor.
    pub v: DenseMatrix<T>,
}

/// Reduce a tall matrix to real upper bidiagonal form `A = U B V^H`.
///
/// # Errors
/// [`HodlrError::DimensionMismatch`] when `m < n`; wide matrices are
/// handled by [`golub_kahan_svd`] through the conjugate-transpose trick.
pub fn bidiagonalize<T: Scalar>(a: &DenseMatrix<T>) -> Result<Bidiagonal<T>, HodlrError> {
    let (m, n) = (a.rows(), a.cols());
    if m < n {
        return Err(HodlrError::dims(
            "bidiagonalization input (rows must be >= cols; transpose wide matrices first)",
            n,
            m,
        ));
    }
    if n == 0 {
        return Ok(Bidiagonal {
            u: DenseMatrix::zeros(m, 0),
            diag: Vec::new(),
            sup: Vec::new(),
            v: DenseMatrix::identity(0),
        });
    }

    let mut w = a.clone();
    let mut d = vec![T::Real::zero(); n];
    let mut e = vec![T::Real::zero(); n.saturating_sub(1)];
    let mut tauq = vec![T::zero(); n];
    let mut taup = vec![T::zero(); n.saturating_sub(1)];

    for j in 0..n {
        // Left reflector annihilating A[j+1.., j]; beta is real so the
        // bidiagonal stays real even for complex input.
        let (beta, tq) = {
            let col = w.col_mut(j);
            let (head, tail) = col[j..].split_at_mut(1);
            larfg(head[0], tail)
        };
        d[j] = beta;
        tauq[j] = tq;
        w[(j, j)] = T::one();
        if tq != T::zero() && j + 1 < n {
            // Trailing columns: X := X - conj(tau) v (v^H X).
            let v: Vec<T> = w.col(j)[j..].to_vec();
            for c in j + 1..n {
                let col = &mut w.col_mut(c)[j..];
                let t = dot_conj(&v, col);
                axpy_slice(-(tq.conj() * t), &v, col);
            }
        }
        if j + 1 < n {
            // Right reflector annihilating A[j, j+2..]: generate from the
            // conjugated row so that `row * H = beta e1^T` with real beta.
            let mut y: Vec<T> = (j + 1..n).map(|c| w[(j, c)].conj()).collect();
            let (beta_e, tp) = {
                let (head, tail) = y.split_at_mut(1);
                larfg(head[0], tail)
            };
            e[j] = beta_e;
            taup[j] = tp;
            y[0] = T::one();
            // Stash the reflector vector in the dead part of row j.
            for (k, c) in (j + 1..n).enumerate() {
                w[(j, c)] = y[k];
            }
            if tp != T::zero() && j + 1 < m {
                // Trailing rows: X := X - tau (X v) v^H.
                let rows = m - (j + 1);
                let mut t = vec![T::zero(); rows];
                gemv(
                    T::one(),
                    w.block(j + 1, j + 1, rows, n - j - 1),
                    Op::None,
                    &y,
                    T::zero(),
                    &mut t,
                );
                for (k, c) in (j + 1..n).enumerate() {
                    let alpha = -(tp * y[k].conj());
                    if alpha != T::zero() {
                        axpy_slice(alpha, &t, &mut w.col_mut(c)[j + 1..]);
                    }
                }
            }
        }
    }

    // Backward accumulation of U = H_0 ... H_{n-1} (thin, m x n) and
    // V = G_0 ... G_{n-2} (n x n).
    let mut u = DenseMatrix::from_fn(m, n, |i, j| if i == j { T::one() } else { T::zero() });
    for j in (0..n).rev() {
        let tq = tauq[j];
        if tq == T::zero() {
            continue;
        }
        let v: Vec<T> = w.col(j)[j..].to_vec();
        let cols = n - j;
        let mut t = vec![T::zero(); cols];
        gemv(
            T::one(),
            u.block(j, j, m - j, cols),
            Op::ConjTrans,
            &v,
            T::zero(),
            &mut t,
        );
        // gemv gave t = U^H v; the update needs (v^H U)[c] = conj(t[c]).
        for (k, c) in (j..n).enumerate() {
            let alpha = -(tq * t[k].conj());
            if alpha != T::zero() {
                axpy_slice(alpha, &v, &mut u.col_mut(c)[j..]);
            }
        }
    }
    let mut v = DenseMatrix::<T>::identity(n);
    for j in (0..n.saturating_sub(1)).rev() {
        let tp = taup[j];
        if tp == T::zero() {
            continue;
        }
        let uvec: Vec<T> = (j + 1..n).map(|c| w[(j, c)]).collect();
        let bl = n - (j + 1);
        let mut t = vec![T::zero(); bl];
        gemv(
            T::one(),
            v.block(j + 1, j + 1, bl, bl),
            Op::ConjTrans,
            &uvec,
            T::zero(),
            &mut t,
        );
        // gemv gave t = V^H u; the update needs (u^H V)[c] = conj(t[c]).
        for (k, c) in (j + 1..n).enumerate() {
            let alpha = -(tp * t[k].conj());
            if alpha != T::zero() {
                axpy_slice(alpha, &uvec, &mut v.col_mut(c)[j + 1..]);
            }
        }
    }

    Ok(Bidiagonal {
        u,
        diag: d,
        sup: e,
        v,
    })
}

/// Rotate columns `p` and `q` (`p < q`) by the real Givens pair `(c, s)`:
/// `col_p <- c col_p + s col_q`, `col_q <- c col_q - s col_p`.
fn rotate_cols_pair<T: Scalar>(
    mat: &mut DenseMatrix<T>,
    p: usize,
    q: usize,
    c: T::Real,
    s: T::Real,
) {
    debug_assert!(p < q);
    let (mut left, mut right) = mat.split_cols_mut(q);
    let cp = left.col_mut(p);
    let cq = right.col_mut(0);
    for (a, b) in cp.iter_mut().zip(cq.iter_mut()) {
        let y = *a;
        let z = *b;
        *a = y.scale(c) + z.scale(s);
        *b = z.scale(c) - y.scale(s);
    }
}

/// Implicit-shift QR iteration on a real upper bidiagonal matrix
/// (Golub-Reinsch), accumulating rotations into `u` and `v` columns.
/// On success `d` holds non-negative singular values (unsorted).
fn bidiagonal_qr<T: Scalar>(
    d: &mut [T::Real],
    e: &[T::Real],
    u: &mut DenseMatrix<T>,
    v: &mut DenseMatrix<T>,
) -> Result<(), HodlrError> {
    let n = d.len();
    if n == 0 {
        return Ok(());
    }
    let zero = T::Real::zero();
    let one = T::Real::one();
    let two = T::Real::from_f64_real(2.0);
    // Shifted superdiagonal: rv1[i] = B[i-1, i], rv1[0] = 0 (NR layout).
    let mut rv1 = vec![zero; n];
    rv1[1..n].copy_from_slice(e);
    let mut anorm = zero;
    for i in 0..n {
        anorm = anorm.max_real(d[i].abs_real() + rv1[i].abs_real());
    }
    let negligible = |x: T::Real| x.abs_real() <= T::Real::EPSILON * anorm;

    let mut total_iters = 0usize;
    for k in (0..n).rev() {
        let mut its = 0usize;
        loop {
            its += 1;
            // Split: find l <= k with rv1[l] negligible (rv1[0] = 0 ends
            // the scan), or a negligible d[l-1] calling for cancellation.
            let mut l = k;
            let mut cancel = true;
            loop {
                if negligible(rv1[l]) {
                    cancel = false;
                    break;
                }
                if negligible(d[l - 1]) {
                    break;
                }
                l -= 1;
            }
            if cancel {
                // d[l-1] ~ 0: rotate rv1[l..=k] away through the U columns.
                let mut c = zero;
                let mut s = one;
                let nm = l - 1;
                for i in l..=k {
                    let f = s * rv1[i];
                    rv1[i] = c * rv1[i];
                    if negligible(f) {
                        break;
                    }
                    let g = d[i];
                    let h = f.hypot(g);
                    d[i] = h;
                    c = g / h;
                    s = -(f / h);
                    rotate_cols_pair(u, nm, i, c, s);
                }
            }
            let z = d[k];
            if l == k {
                // Converged; make the singular value non-negative.
                if z < zero {
                    d[k] = -z;
                    for x in v.col_mut(k) {
                        *x = -*x;
                    }
                }
                break;
            }
            total_iters += 1;
            if its > BDSQR_MAX_ITERS {
                return Err(HodlrError::NonConvergence {
                    iterations: total_iters,
                    relative_residual: (rv1[k].abs_real() / anorm.max_real(T::Real::EPSILON))
                        .to_f64(),
                    context: "bidiagonal QR SVD".to_string(),
                });
            }
            // Wilkinson-style shift from the trailing 2x2.
            let mut x = d[l];
            let nm = k - 1;
            let mut y = d[nm];
            let mut g = rv1[nm];
            let mut h = rv1[k];
            let mut f = ((y - z) * (y + z) + (g - h) * (g + h)) / (two * h * y);
            g = f.hypot(one);
            f = ((x - z) * (x + z) + h * ((y / (f + sign_to(g, f))) - h)) / x;
            // Chase the bulge with paired rotations on V and U.
            let mut c = one;
            let mut s = one;
            for j in l..=nm {
                let i = j + 1;
                g = rv1[i];
                y = d[i];
                h = s * g;
                g = c * g;
                let mut zz = h.hypot(f);
                rv1[j] = zz;
                c = f / zz;
                s = h / zz;
                f = x * c + g * s;
                g = g * c - x * s;
                h = y * s;
                y *= c;
                rotate_cols_pair(v, j, i, c, s);
                zz = f.hypot(h);
                d[j] = zz;
                if zz != zero {
                    c = f / zz;
                    s = h / zz;
                }
                f = c * g + s * y;
                x = c * y - s * g;
                rotate_cols_pair(u, j, i, c, s);
            }
            rv1[l] = zero;
            rv1[k] = f;
            d[k] = x;
        }
    }
    Ok(())
}

/// Thin SVD via Golub-Kahan bidiagonalization + Golub-Reinsch QR.
///
/// Wide matrices (`m < n`) are factored through their conjugate transpose,
/// so the returned factors always satisfy the [`Svd`] convention
/// `A = U diag(sigma) V^H` with `sigma` non-increasing.
///
/// # Errors
/// [`HodlrError::NonConvergence`] when the bidiagonal QR iteration fails to
/// deflate a singular value within 30 sweeps (carries the sweep count).
pub fn golub_kahan_svd<T: Scalar>(a: &DenseMatrix<T>) -> Result<Svd<T>, HodlrError> {
    let (m, n) = (a.rows(), a.cols());
    if m < n {
        let t = golub_kahan_svd(&a.conj_transpose())?;
        return Ok(Svd {
            u: t.v,
            sigma: t.sigma,
            v: t.u,
        });
    }
    if n == 0 {
        return Ok(Svd {
            u: DenseMatrix::zeros(m, 0),
            sigma: Vec::new(),
            v: DenseMatrix::zeros(0, 0),
        });
    }
    let Bidiagonal {
        mut u,
        mut diag,
        sup,
        mut v,
    } = bidiagonalize(a)?;
    bidiagonal_qr(&mut diag, &sup, &mut u, &mut v)?;

    // Sort non-increasing with a deterministic index tie-break.
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&p, &q| {
        diag[q]
            .partial_cmp(&diag[p])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(p.cmp(&q))
    });
    let sigma: Vec<T::Real> = idx.iter().map(|&i| diag[i]).collect();
    let u = DenseMatrix::from_fn(u.rows(), n, |i, j| u[(i, idx[j])]);
    let v = DenseMatrix::from_fn(v.rows(), n, |i, j| v[(i, idx[j])]);
    Ok(Svd { u, sigma, v })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blas::gemm;
    use crate::random::gaussian_matrix;
    use crate::svd::jacobi_svd;
    use crate::Complex64;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn orthogonality<T: Scalar>(m: &DenseMatrix<T>) -> f64 {
        let k = m.cols();
        let mut gram = DenseMatrix::zeros(k, k);
        gemm(
            T::one(),
            m.as_ref(),
            Op::ConjTrans,
            m.as_ref(),
            Op::None,
            T::zero(),
            gram.as_mut(),
        );
        gram.sub(&DenseMatrix::<T>::identity(k)).norm_fro().to_f64()
    }

    fn check_gk_svd<T: Scalar>(a: &DenseMatrix<T>, tol: f64) {
        let svd = golub_kahan_svd(a).unwrap();
        let recon = svd.reconstruct();
        let denom = a.norm_fro().to_f64().max(1e-300);
        let rel = a.sub(&recon).norm_fro().to_f64() / denom;
        assert!(rel < tol, "reconstruction residual {rel}");
        assert!(orthogonality(&svd.u) < tol, "U not orthonormal");
        assert!(orthogonality(&svd.v) < tol, "V not orthonormal");
        for w in svd.sigma.windows(2) {
            assert!(w[0] >= w[1], "singular values not sorted");
        }
        for &s in &svd.sigma {
            assert!(s.to_f64() >= 0.0, "negative singular value");
        }
        // Cross-check values against the Jacobi SVD.
        let reference = jacobi_svd(a);
        for (s, r) in svd.sigma.iter().zip(&reference.sigma) {
            let s = s.to_f64();
            let r = r.to_f64();
            assert!((s - r).abs() <= 1e-10 * (1.0 + r), "{s} vs {r}");
        }
    }

    #[test]
    fn tall_real() {
        let mut rng = StdRng::seed_from_u64(17);
        let a: DenseMatrix<f64> = gaussian_matrix(&mut rng, 40, 24);
        check_gk_svd(&a, 1e-12);
    }

    #[test]
    fn square_and_wide_complex() {
        let mut rng = StdRng::seed_from_u64(19);
        let sq: DenseMatrix<Complex64> = gaussian_matrix(&mut rng, 20, 20);
        check_gk_svd(&sq, 1e-12);
        let wide: DenseMatrix<Complex64> = gaussian_matrix(&mut rng, 12, 30);
        check_gk_svd(&wide, 1e-12);
    }

    #[test]
    fn rank_deficient() {
        let mut rng = StdRng::seed_from_u64(23);
        let b: DenseMatrix<f64> = gaussian_matrix(&mut rng, 30, 4);
        let c: DenseMatrix<f64> = gaussian_matrix(&mut rng, 4, 18);
        let a = b.matmul(&c);
        let svd = golub_kahan_svd(&a).unwrap();
        let recon = svd.reconstruct();
        let rel = a.sub(&recon).norm_fro() / a.norm_fro();
        assert!(rel < 1e-12);
        for &s in &svd.sigma[4..] {
            assert!(s < 1e-10 * svd.sigma[0], "trailing sigma {s} not tiny");
        }
    }

    #[test]
    fn bidiagonalize_reconstructs() {
        let mut rng = StdRng::seed_from_u64(29);
        let a: DenseMatrix<Complex64> = gaussian_matrix(&mut rng, 18, 10);
        let bd = bidiagonalize(&a).unwrap();
        let n = 10;
        let b = DenseMatrix::from_fn(n, n, |i, j| {
            if i == j {
                Complex64::from_real(bd.diag[i])
            } else if j == i + 1 {
                Complex64::from_real(bd.sup[i])
            } else {
                Complex64::zero()
            }
        });
        let ub = bd.u.matmul(&b);
        let mut recon = DenseMatrix::zeros(18, n);
        gemm(
            Complex64::one(),
            ub.as_ref(),
            Op::None,
            bd.v.as_ref(),
            Op::ConjTrans,
            Complex64::zero(),
            recon.as_mut(),
        );
        let rel = (a.sub(&recon).norm_fro() / a.norm_fro()).to_f64();
        assert!(rel < 1e-13, "bidiagonal reconstruction residual {rel}");
        assert!(orthogonality(&bd.u) < 1e-13);
        assert!(orthogonality(&bd.v) < 1e-13);
    }

    #[test]
    fn wide_input_is_typed_error() {
        let a = DenseMatrix::<f64>::zeros(3, 5);
        match bidiagonalize(&a) {
            Err(HodlrError::DimensionMismatch { .. }) => {}
            other => panic!("expected DimensionMismatch, got {other:?}"),
        }
        // golub_kahan_svd transposes instead of failing.
        assert!(golub_kahan_svd(&a).is_ok());
    }

    #[test]
    fn svd_is_bitwise_reproducible() {
        let mut rng = StdRng::seed_from_u64(31);
        let a: DenseMatrix<f64> = gaussian_matrix(&mut rng, 25, 25);
        let s1 = golub_kahan_svd(&a).unwrap();
        let s2 = golub_kahan_svd(&a).unwrap();
        assert_eq!(
            s1.sigma.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            s2.sigma.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
        let bits = |m: &DenseMatrix<f64>| m.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&s1.u), bits(&s2.u));
        assert_eq!(bits(&s1.v), bits(&s2.v));
    }
}
