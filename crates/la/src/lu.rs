//! LU factorization with partial (row) pivoting and associated solves.
//!
//! This is the workhorse of the HODLR solver: every leaf diagonal block and
//! every 2r x 2r coefficient matrix `K` (Eq. 11) is factorized with `getrf`
//! and solved with `getrs`.  The routines operate in place on views so that
//! the batched engine in `hodlr-batch` can run them on sub-blocks of one big
//! buffer, mirroring cuBLAS `getrfBatched`/`getrsBatched`.

use crate::blas::Op;
use crate::dense::{DenseMatrix, MatMut, MatRef};
use crate::scalar::{RealScalar, Scalar};

/// Error returned when a factorization encounters an exactly singular pivot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SingularError {
    /// Zero pivot position (0-based), mirroring LAPACK's `info` convention.
    pub pivot: usize,
}

impl std::fmt::Display for SingularError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "matrix is singular: zero pivot at position {}",
            self.pivot
        )
    }
}

impl std::error::Error for SingularError {}

/// In-place LU factorization with partial pivoting (LAPACK `getrf`).
///
/// On success the strictly lower triangle of `a` holds `L` (unit diagonal
/// implicit), the upper triangle holds `U`, and the returned vector holds the
/// pivot rows: at step `k` row `k` was swapped with row `piv[k]`.
///
/// Returns [`SingularError`] when a pivot is exactly zero; the factorization
/// is left in a partially updated state in that case.
pub fn getrf_in_place<T: Scalar>(mut a: MatMut<'_, T>) -> Result<Vec<usize>, SingularError> {
    let n = a.rows().min(a.cols());
    let mut piv = Vec::with_capacity(n);

    for k in 0..n {
        // Pivot search: largest modulus in column k at or below the diagonal.
        let mut p = k;
        let mut best = a.get(k, k).abs();
        for i in (k + 1)..a.rows() {
            let v = a.get(i, k).abs();
            if v > best {
                best = v;
                p = i;
            }
        }
        piv.push(p);
        if best == <T::Real as Scalar>::zero() {
            return Err(SingularError { pivot: k });
        }
        if p != k {
            swap_rows(&mut a, k, p);
        }
        let pivot = a.get(k, k);
        let pivot_inv = pivot.recip();
        for i in (k + 1)..a.rows() {
            let lik = a.get(i, k) * pivot_inv;
            a.set(i, k, lik);
        }
        // Trailing update: A[k+1.., k+1..] -= L[k+1.., k] * U[k, k+1..].
        for j in (k + 1)..a.cols() {
            let ukj = a.get(k, j);
            if ukj == T::zero() {
                continue;
            }
            for i in (k + 1)..a.rows() {
                let lik = a.get(i, k);
                let v = a.get(i, j) - lik * ukj;
                a.set(i, j, v);
            }
        }
    }
    Ok(piv)
}

fn swap_rows<T: Scalar>(a: &mut MatMut<'_, T>, r1: usize, r2: usize) {
    for j in 0..a.cols() {
        let t = a.get(r1, j);
        let v = a.get(r2, j);
        a.set(r1, j, v);
        a.set(r2, j, t);
    }
}

/// Apply the row interchanges recorded by [`getrf_in_place`] to a right-hand
/// side (LAPACK `laswp` forward direction).
pub fn apply_pivots_forward<T: Scalar>(piv: &[usize], mut b: MatMut<'_, T>) {
    for (k, &p) in piv.iter().enumerate() {
        if p != k {
            swap_rows(&mut b, k, p);
        }
    }
}

/// Solve `A X = B` in place given the in-place LU factors and pivots
/// (LAPACK `getrs`, no-transpose).  `B` is overwritten with the solution.
pub fn getrs_in_place<T: Scalar>(lu: MatRef<'_, T>, piv: &[usize], mut b: MatMut<'_, T>) {
    assert_eq!(lu.rows(), lu.cols(), "getrs: factor must be square");
    assert_eq!(lu.rows(), b.rows(), "getrs: rhs has wrong row count");
    apply_pivots_forward(piv, b.reborrow());
    crate::triangular::solve_triangular_in_place(
        lu,
        crate::triangular::Triangle::Lower,
        crate::triangular::Diag::Unit,
        b.reborrow(),
    );
    crate::triangular::solve_triangular_in_place(
        lu,
        crate::triangular::Triangle::Upper,
        crate::triangular::Diag::NonUnit,
        b,
    );
}

/// An owned LU factorization of a square matrix.
#[derive(Clone)]
pub struct LuFactor<T> {
    lu: DenseMatrix<T>,
    piv: Vec<usize>,
}

impl<T: Scalar> std::fmt::Debug for LuFactor<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LuFactor")
            .field("order", &self.lu.rows())
            .field("piv", &self.piv)
            .finish()
    }
}

impl<T: Scalar> LuFactor<T> {
    /// Factorize a square matrix (copying it).
    pub fn new(a: &DenseMatrix<T>) -> Result<Self, SingularError> {
        assert_eq!(a.rows(), a.cols(), "LuFactor requires a square matrix");
        let mut lu = a.clone();
        let piv = getrf_in_place(lu.as_mut())?;
        Ok(Self { lu, piv })
    }

    /// Factorize, taking ownership of the matrix storage.
    pub fn from_matrix(mut a: DenseMatrix<T>) -> Result<Self, SingularError> {
        assert_eq!(a.rows(), a.cols(), "LuFactor requires a square matrix");
        let piv = getrf_in_place(a.as_mut())?;
        Ok(Self { lu: a, piv })
    }

    /// Order of the factored matrix.
    pub fn order(&self) -> usize {
        self.lu.rows()
    }

    /// Solve `A x = b`, returning the solution.
    pub fn solve_vec(&self, b: &[T]) -> Vec<T> {
        assert_eq!(b.len(), self.order());
        let mut x = b.to_vec();
        let n = x.len();
        getrs_in_place(
            self.lu.as_ref(),
            &self.piv,
            MatMut::from_parts(&mut x, n, 1, n.max(1)),
        );
        x
    }

    /// Solve `A X = B` for a multi-column right-hand side in place.
    pub fn solve_in_place(&self, b: MatMut<'_, T>) {
        getrs_in_place(self.lu.as_ref(), &self.piv, b);
    }

    /// Solve `A X = B`, returning the solution matrix.
    pub fn solve_matrix(&self, b: &DenseMatrix<T>) -> DenseMatrix<T> {
        let mut x = b.clone();
        self.solve_in_place(x.as_mut());
        x
    }

    /// Logarithm of the absolute determinant plus the sign/phase factor.
    ///
    /// Returns `(log|det|, s)` where `det = s * exp(log|det|)` and `|s| = 1`.
    pub fn log_det(&self) -> (T::Real, T) {
        let n = self.order();
        let mut log_abs = T::Real::zero();
        let mut phase = T::one();
        let mut swaps = 0usize;
        for (k, &p) in self.piv.iter().enumerate() {
            if p != k {
                swaps += 1;
            }
        }
        for i in 0..n {
            let d = self.lu[(i, i)];
            log_abs += d.abs().ln();
            phase *= d.scale(d.abs().recip_or_one());
        }
        if swaps % 2 == 1 {
            phase = -phase;
        }
        (log_abs, phase)
    }

    /// The factored matrix data (L and U packed), useful for testing.
    pub fn factors(&self) -> (&DenseMatrix<T>, &[usize]) {
        (&self.lu, &self.piv)
    }

    /// Explicitly form the inverse (for small matrices / testing only).
    pub fn inverse(&self) -> DenseMatrix<T> {
        let n = self.order();
        let id = DenseMatrix::identity(n);
        self.solve_matrix(&id)
    }
}

/// Internal helper: `1 / x` but 1 when `x == 0`, used to normalise phases.
trait RecipOrOne {
    fn recip_or_one(self) -> Self;
}
impl<R: RealScalar> RecipOrOne for R {
    fn recip_or_one(self) -> Self {
        if self == R::zero() {
            R::one()
        } else {
            R::one() / self
        }
    }
}

/// Solve a dense system `A x = b` with a fresh LU factorization.
pub fn solve_dense<T: Scalar>(a: &DenseMatrix<T>, b: &[T]) -> Result<Vec<T>, SingularError> {
    Ok(LuFactor::new(a)?.solve_vec(b))
}

/// Reconstruct `P * A` from packed LU factors: used by tests to check
/// `P A = L U`.
pub fn reconstruct_pa<T: Scalar>(a: &DenseMatrix<T>, piv: &[usize]) -> DenseMatrix<T> {
    let mut pa = a.clone();
    let mut view = pa.as_mut();
    for (k, &p) in piv.iter().enumerate() {
        if p != k {
            swap_rows(&mut view, k, p);
        }
    }
    pa
}

/// Multiply the packed `L` and `U` factors back together (testing helper).
pub fn multiply_lu<T: Scalar>(lu: &DenseMatrix<T>) -> DenseMatrix<T> {
    let n = lu.rows();
    let m = lu.cols();
    let k = n.min(m);
    let l = DenseMatrix::from_fn(n, k, |i, j| {
        if i > j {
            lu[(i, j)]
        } else if i == j {
            T::one()
        } else {
            T::zero()
        }
    });
    let u = DenseMatrix::from_fn(k, m, |i, j| if i <= j { lu[(i, j)] } else { T::zero() });
    let mut c = DenseMatrix::zeros(n, m);
    crate::blas::gemm(
        T::one(),
        l.as_ref(),
        Op::None,
        u.as_ref(),
        Op::None,
        T::zero(),
        c.as_mut(),
    );
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::random_matrix;
    use crate::Complex64;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn lu_reconstructs_pa() {
        let mut rng = StdRng::seed_from_u64(7);
        let a: DenseMatrix<f64> = random_matrix(&mut rng, 8, 8);
        let mut lu = a.clone();
        let piv = getrf_in_place(lu.as_mut()).unwrap();
        let pa = reconstruct_pa(&a, &piv);
        let prod = multiply_lu(&lu);
        assert!(pa.sub(&prod).norm_max() < 1e-12);
    }

    #[test]
    fn solve_recovers_known_solution() {
        let mut rng = StdRng::seed_from_u64(11);
        let a: DenseMatrix<f64> = random_matrix(&mut rng, 12, 12);
        let x_true: Vec<f64> = (0..12).map(|i| (i as f64) - 5.5).collect();
        let b = a.matvec(&x_true);
        let f = LuFactor::new(&a).unwrap();
        let x = f.solve_vec(&b);
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-10);
        }
    }

    #[test]
    fn complex_solve() {
        let mut rng = StdRng::seed_from_u64(13);
        let a: DenseMatrix<Complex64> = random_matrix(&mut rng, 9, 9);
        let x_true: Vec<Complex64> = (0..9)
            .map(|i| Complex64::new(i as f64, -(i as f64) / 2.0))
            .collect();
        let b = a.matvec(&x_true);
        let x = solve_dense(&a, &b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((*xi - *ti).abs() < 1e-9);
        }
    }

    #[test]
    fn multi_rhs_solve() {
        let mut rng = StdRng::seed_from_u64(17);
        let a: DenseMatrix<f64> = random_matrix(&mut rng, 10, 10);
        let x_true: DenseMatrix<f64> = random_matrix(&mut rng, 10, 4);
        let b = a.matmul(&x_true);
        let f = LuFactor::new(&a).unwrap();
        let x = f.solve_matrix(&b);
        assert!(x.sub(&x_true).norm_max() < 1e-10);
    }

    #[test]
    fn singular_matrix_reports_error() {
        let a = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        let err = LuFactor::new(&a).unwrap_err();
        assert_eq!(err.pivot, 1);
        assert!(err.to_string().contains("singular"));
    }

    #[test]
    fn log_det_matches_known_determinant() {
        // det = 2 * 3 * 4 = 24 for a triangular matrix.
        let a: DenseMatrix<f64> = DenseMatrix::from_rows(&[
            vec![2.0, 1.0, 0.0],
            vec![0.0, 3.0, 5.0],
            vec![0.0, 0.0, 4.0],
        ]);
        let f = LuFactor::new(&a).unwrap();
        let (log_abs, sign) = f.log_det();
        assert!((log_abs - 24.0_f64.ln()).abs() < 1e-12);
        assert!((sign - 1.0).abs() < 1e-12);

        // Swap two rows: determinant flips sign.
        let b: DenseMatrix<f64> = DenseMatrix::from_rows(&[
            vec![0.0, 3.0, 5.0],
            vec![2.0, 1.0, 0.0],
            vec![0.0, 0.0, 4.0],
        ]);
        let f = LuFactor::new(&b).unwrap();
        let (log_abs, sign) = f.log_det();
        assert!((log_abs - 24.0_f64.ln()).abs() < 1e-12);
        assert!((sign + 1.0).abs() < 1e-12);
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let mut rng = StdRng::seed_from_u64(23);
        let a: DenseMatrix<f64> = random_matrix(&mut rng, 6, 6);
        let inv = LuFactor::new(&a).unwrap().inverse();
        let id = a.matmul(&inv);
        assert!(id.sub(&DenseMatrix::identity(6)).norm_max() < 1e-10);
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = DenseMatrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let f = LuFactor::new(&a).unwrap();
        let x = f.solve_vec(&[2.0, 3.0]);
        assert_eq!(x, vec![3.0, 2.0]);
    }
}
