//! LU factorization with partial (row) pivoting and associated solves.
//!
//! This is the workhorse of the HODLR solver: every leaf diagonal block and
//! every 2r x 2r coefficient matrix `K` (Eq. 11) is factorized with `getrf`
//! and solved with `getrs`.  The routines operate in place on views so that
//! the batched engine in `hodlr-batch` can run them on sub-blocks of one big
//! buffer, mirroring cuBLAS `getrfBatched`/`getrsBatched`.

use crate::blas::Op;
use crate::dense::{DenseMatrix, MatMut, MatRef};
use crate::scalar::{RealScalar, Scalar};

/// Error returned when a factorization encounters an exactly singular pivot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SingularError {
    /// Zero pivot position (0-based), mirroring LAPACK's `info` convention.
    pub pivot: usize,
}

impl std::fmt::Display for SingularError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "matrix is singular: zero pivot at position {}",
            self.pivot
        )
    }
}

impl std::error::Error for SingularError {}

/// Panel width of the blocked factorization (LAPACK's `NB`).
const GETRF_NB: usize = 64;

/// Below this order the unblocked kernel runs directly (the blocked
/// bookkeeping does not pay off on the small `2r x 2r` HODLR blocks).
const GETRF_BLOCK_MIN: usize = 128;

/// In-place LU factorization with partial pivoting (LAPACK `getrf`).
///
/// Blocked right-looking algorithm: panels of `GETRF_NB` columns are
/// factorized with the unblocked kernel, then the trailing submatrix is
/// updated with one triangular solve and one [`crate::blas::gemm`] — so the
/// bulk of the flops run through the BLAS-3 microkernel and inherit its
/// thread-count-independent determinism.  Matrices below
/// `GETRF_BLOCK_MIN` use the unblocked kernel directly.
///
/// On success the strictly lower triangle of `a` holds `L` (unit diagonal
/// implicit), the upper triangle holds `U`, and the returned vector holds the
/// pivot rows: at step `k` row `k` was swapped with row `piv[k]`.
///
/// Returns [`SingularError`] when a pivot is exactly zero; the factorization
/// is left in a partially updated state in that case.
pub fn getrf_in_place<T: Scalar>(mut a: MatMut<'_, T>) -> Result<Vec<usize>, SingularError> {
    let m = a.rows();
    let n_cols = a.cols();
    let n = m.min(n_cols);
    if n <= GETRF_BLOCK_MIN {
        return getrf_unblocked(a);
    }

    let mut piv = Vec::with_capacity(n);
    let mut k = 0;
    while k < n {
        let ib = GETRF_NB.min(n - k);

        // Factor the current panel (full remaining height) unblocked.
        let panel_piv = match getrf_unblocked(a.block_mut(k, k, m - k, ib)) {
            Ok(p) => p,
            Err(e) => {
                return Err(SingularError { pivot: k + e.pivot });
            }
        };
        // Replay the panel's row interchanges on the columns outside it and
        // record them globally.
        for (j, &p) in panel_piv.iter().enumerate() {
            piv.push(k + p);
            if p != j {
                let mut left = a.block_mut(k, 0, m - k, k);
                swap_rows(&mut left, j, p);
                if k + ib < n_cols {
                    let mut right = a.block_mut(k, k + ib, m - k, n_cols - k - ib);
                    swap_rows(&mut right, j, p);
                }
            }
        }

        if k + ib < n_cols {
            let nt = n_cols - k - ib;
            // Split so the factored panel (left) can be read while the
            // trailing columns (right) are updated in place.
            let (left, mut right) = a.reborrow().split_at_col_mut(k + ib);
            let left = left.as_ref();

            // U12 <- L11^{-1} A12 (unit lower triangular solve).
            crate::triangular::solve_triangular_in_place(
                left.block(k, k, ib, ib),
                crate::triangular::Triangle::Lower,
                crate::triangular::Diag::Unit,
                right.block_mut(k, 0, ib, nt),
            );

            if k + ib < m {
                // A22 -= L21 * U12.  U12 is copied out so the trailing block
                // can be borrowed mutably; the copy is one panel row-slab
                // (ib x nt) and gemm would repack it anyway.
                let u12 = right.as_ref().block(k, 0, ib, nt).to_owned();
                crate::blas::gemm(
                    -T::one(),
                    left.block(k + ib, k, m - k - ib, ib),
                    Op::None,
                    u12.as_ref(),
                    Op::None,
                    T::one(),
                    right.block_mut(k + ib, 0, m - k - ib, nt),
                );
            }
        }
        k += ib;
    }
    Ok(piv)
}

/// The unblocked right-looking kernel (also the panel factorization of the
/// blocked path).  Pivot rows are local to the view.
fn getrf_unblocked<T: Scalar>(mut a: MatMut<'_, T>) -> Result<Vec<usize>, SingularError> {
    let m = a.rows();
    let n = m.min(a.cols());
    let mut piv = Vec::with_capacity(n);
    // Scratch for the pivot column, so the rank-1 trailing update can run on
    // contiguous column slices.
    let mut lcol: Vec<T> = Vec::with_capacity(m);

    for k in 0..n {
        // Pivot search: largest modulus in column k at or below the diagonal.
        let col_k = a.col_mut(k);
        let mut p = k;
        let mut best = col_k[k].abs();
        for (i, v) in col_k.iter().enumerate().skip(k + 1) {
            let v = v.abs();
            if v > best {
                best = v;
                p = i;
            }
        }
        piv.push(p);
        if best == <T::Real as Scalar>::zero() {
            return Err(SingularError { pivot: k });
        }
        if p != k {
            swap_rows(&mut a, k, p);
        }
        // Scale the subdiagonal of column k and stash it for the update.
        let col_k = a.col_mut(k);
        let pivot_inv = col_k[k].recip();
        for v in col_k[k + 1..].iter_mut() {
            *v *= pivot_inv;
        }
        lcol.clear();
        lcol.extend_from_slice(&col_k[k + 1..]);
        // Rank-1 trailing update: A[k+1.., j] -= U[k, j] * L[k+1.., k].
        for j in (k + 1)..a.cols() {
            let col_j = a.col_mut(j);
            let ukj = col_j[k];
            if ukj == T::zero() {
                continue;
            }
            crate::blas::axpy_slice(-ukj, &lcol, &mut col_j[k + 1..]);
        }
    }
    Ok(piv)
}

fn swap_rows<T: Scalar>(a: &mut MatMut<'_, T>, r1: usize, r2: usize) {
    for j in 0..a.cols() {
        let t = a.get(r1, j);
        let v = a.get(r2, j);
        a.set(r1, j, v);
        a.set(r2, j, t);
    }
}

/// Apply the row interchanges recorded by [`getrf_in_place`] to a right-hand
/// side (LAPACK `laswp` forward direction).
pub fn apply_pivots_forward<T: Scalar>(piv: &[usize], mut b: MatMut<'_, T>) {
    for (k, &p) in piv.iter().enumerate() {
        if p != k {
            swap_rows(&mut b, k, p);
        }
    }
}

/// Solve `A X = B` in place given the in-place LU factors and pivots
/// (LAPACK `getrs`, no-transpose).  `B` is overwritten with the solution.
pub fn getrs_in_place<T: Scalar>(lu: MatRef<'_, T>, piv: &[usize], mut b: MatMut<'_, T>) {
    assert_eq!(lu.rows(), lu.cols(), "getrs: factor must be square");
    assert_eq!(lu.rows(), b.rows(), "getrs: rhs has wrong row count");
    apply_pivots_forward(piv, b.reborrow());
    crate::triangular::solve_triangular_in_place(
        lu,
        crate::triangular::Triangle::Lower,
        crate::triangular::Diag::Unit,
        b.reborrow(),
    );
    crate::triangular::solve_triangular_in_place(
        lu,
        crate::triangular::Triangle::Upper,
        crate::triangular::Diag::NonUnit,
        b,
    );
}

/// An owned LU factorization of a square matrix.
#[derive(Clone)]
pub struct LuFactor<T> {
    lu: DenseMatrix<T>,
    piv: Vec<usize>,
}

impl<T: Scalar> std::fmt::Debug for LuFactor<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LuFactor")
            .field("order", &self.lu.rows())
            .field("piv", &self.piv)
            .finish()
    }
}

impl<T: Scalar> LuFactor<T> {
    /// Factorize a square matrix (copying it).
    pub fn new(a: &DenseMatrix<T>) -> Result<Self, SingularError> {
        assert_eq!(a.rows(), a.cols(), "LuFactor requires a square matrix");
        let mut lu = a.clone();
        let piv = getrf_in_place(lu.as_mut())?;
        Ok(Self { lu, piv })
    }

    /// Factorize, taking ownership of the matrix storage.
    pub fn from_matrix(mut a: DenseMatrix<T>) -> Result<Self, SingularError> {
        assert_eq!(a.rows(), a.cols(), "LuFactor requires a square matrix");
        let piv = getrf_in_place(a.as_mut())?;
        Ok(Self { lu: a, piv })
    }

    /// Order of the factored matrix.
    pub fn order(&self) -> usize {
        self.lu.rows()
    }

    /// Solve `A x = b`, returning the solution.
    pub fn solve_vec(&self, b: &[T]) -> Vec<T> {
        assert_eq!(b.len(), self.order());
        let mut x = b.to_vec();
        let n = x.len();
        getrs_in_place(
            self.lu.as_ref(),
            &self.piv,
            MatMut::from_parts(&mut x, n, 1, n.max(1)),
        );
        x
    }

    /// Solve `A X = B` for a multi-column right-hand side in place.
    pub fn solve_in_place(&self, b: MatMut<'_, T>) {
        getrs_in_place(self.lu.as_ref(), &self.piv, b);
    }

    /// Solve `A X = B`, returning the solution matrix.
    pub fn solve_matrix(&self, b: &DenseMatrix<T>) -> DenseMatrix<T> {
        let mut x = b.clone();
        self.solve_in_place(x.as_mut());
        x
    }

    /// Logarithm of the absolute determinant plus the sign/phase factor.
    ///
    /// Returns `(log|det|, s)` where `det = s * exp(log|det|)` and `|s| = 1`.
    pub fn log_det(&self) -> (T::Real, T) {
        let n = self.order();
        log_det_from_parts((0..n).map(|i| self.lu[(i, i)]), &self.piv)
    }

    /// The factored matrix data (L and U packed), useful for testing.
    pub fn factors(&self) -> (&DenseMatrix<T>, &[usize]) {
        (&self.lu, &self.piv)
    }

    /// Explicitly form the inverse (for small matrices / testing only).
    pub fn inverse(&self) -> DenseMatrix<T> {
        let n = self.order();
        let id = DenseMatrix::identity(n);
        self.solve_matrix(&id)
    }
}

/// Log-determinant contribution of one packed LU factor, given its diagonal
/// entries (in order) and its pivot rows.
///
/// Returns `(log|det|, s)` with `det = s * exp(log|det|)` and `|s| = 1`.
/// This is the *one* accumulation both solver backends use — the serial
/// factorization through [`LuFactor::log_det`] and the batched device
/// through the diagonals gathered by its extraction kernel — so the
/// product-form `log_det` of the two backends agrees bitwise whenever the
/// underlying LU factors do.
pub fn log_det_from_parts<T: Scalar>(diag: impl Iterator<Item = T>, piv: &[usize]) -> (T::Real, T) {
    let mut log_abs = T::Real::zero();
    let mut phase = T::one();
    let mut swaps = 0usize;
    for (k, &p) in piv.iter().enumerate() {
        if p != k {
            swaps += 1;
        }
    }
    for d in diag {
        log_abs += d.abs().ln();
        phase *= d.scale(d.abs().recip_or_one());
    }
    if swaps % 2 == 1 {
        phase = -phase;
    }
    (log_abs, phase)
}

/// Internal helper: `1 / x` but 1 when `x == 0`, used to normalise phases.
trait RecipOrOne {
    fn recip_or_one(self) -> Self;
}
impl<R: RealScalar> RecipOrOne for R {
    fn recip_or_one(self) -> Self {
        if self == R::zero() {
            R::one()
        } else {
            R::one() / self
        }
    }
}

/// Solve a dense system `A x = b` with a fresh LU factorization.
pub fn solve_dense<T: Scalar>(a: &DenseMatrix<T>, b: &[T]) -> Result<Vec<T>, SingularError> {
    Ok(LuFactor::new(a)?.solve_vec(b))
}

/// Reconstruct `P * A` from packed LU factors: used by tests to check
/// `P A = L U`.
pub fn reconstruct_pa<T: Scalar>(a: &DenseMatrix<T>, piv: &[usize]) -> DenseMatrix<T> {
    let mut pa = a.clone();
    let mut view = pa.as_mut();
    for (k, &p) in piv.iter().enumerate() {
        if p != k {
            swap_rows(&mut view, k, p);
        }
    }
    pa
}

/// Multiply the packed `L` and `U` factors back together (testing helper).
pub fn multiply_lu<T: Scalar>(lu: &DenseMatrix<T>) -> DenseMatrix<T> {
    let n = lu.rows();
    let m = lu.cols();
    let k = n.min(m);
    let l = DenseMatrix::from_fn(n, k, |i, j| {
        if i > j {
            lu[(i, j)]
        } else if i == j {
            T::one()
        } else {
            T::zero()
        }
    });
    let u = DenseMatrix::from_fn(k, m, |i, j| if i <= j { lu[(i, j)] } else { T::zero() });
    let mut c = DenseMatrix::zeros(n, m);
    crate::blas::gemm(
        T::one(),
        l.as_ref(),
        Op::None,
        u.as_ref(),
        Op::None,
        T::zero(),
        c.as_mut(),
    );
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::random_matrix;
    use crate::Complex64;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn lu_reconstructs_pa() {
        let mut rng = StdRng::seed_from_u64(7);
        let a: DenseMatrix<f64> = random_matrix(&mut rng, 8, 8);
        let mut lu = a.clone();
        let piv = getrf_in_place(lu.as_mut()).unwrap();
        let pa = reconstruct_pa(&a, &piv);
        let prod = multiply_lu(&lu);
        assert!(pa.sub(&prod).norm_max() < 1e-12);
    }

    #[test]
    fn solve_recovers_known_solution() {
        let mut rng = StdRng::seed_from_u64(11);
        let a: DenseMatrix<f64> = random_matrix(&mut rng, 12, 12);
        let x_true: Vec<f64> = (0..12).map(|i| (i as f64) - 5.5).collect();
        let b = a.matvec(&x_true);
        let f = LuFactor::new(&a).unwrap();
        let x = f.solve_vec(&b);
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-10);
        }
    }

    #[test]
    fn complex_solve() {
        let mut rng = StdRng::seed_from_u64(13);
        let a: DenseMatrix<Complex64> = random_matrix(&mut rng, 9, 9);
        let x_true: Vec<Complex64> = (0..9)
            .map(|i| Complex64::new(i as f64, -(i as f64) / 2.0))
            .collect();
        let b = a.matvec(&x_true);
        let x = solve_dense(&a, &b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((*xi - *ti).abs() < 1e-9);
        }
    }

    #[test]
    fn multi_rhs_solve() {
        let mut rng = StdRng::seed_from_u64(17);
        let a: DenseMatrix<f64> = random_matrix(&mut rng, 10, 10);
        let x_true: DenseMatrix<f64> = random_matrix(&mut rng, 10, 4);
        let b = a.matmul(&x_true);
        let f = LuFactor::new(&a).unwrap();
        let x = f.solve_matrix(&b);
        assert!(x.sub(&x_true).norm_max() < 1e-10);
    }

    #[test]
    fn singular_matrix_reports_error() {
        let a = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        let err = LuFactor::new(&a).unwrap_err();
        assert_eq!(err.pivot, 1);
        assert!(err.to_string().contains("singular"));
    }

    #[test]
    fn log_det_matches_known_determinant() {
        // det = 2 * 3 * 4 = 24 for a triangular matrix.
        let a: DenseMatrix<f64> = DenseMatrix::from_rows(&[
            vec![2.0, 1.0, 0.0],
            vec![0.0, 3.0, 5.0],
            vec![0.0, 0.0, 4.0],
        ]);
        let f = LuFactor::new(&a).unwrap();
        let (log_abs, sign) = f.log_det();
        assert!((log_abs - 24.0_f64.ln()).abs() < 1e-12);
        assert!((sign - 1.0).abs() < 1e-12);

        // Swap two rows: determinant flips sign.
        let b: DenseMatrix<f64> = DenseMatrix::from_rows(&[
            vec![0.0, 3.0, 5.0],
            vec![2.0, 1.0, 0.0],
            vec![0.0, 0.0, 4.0],
        ]);
        let f = LuFactor::new(&b).unwrap();
        let (log_abs, sign) = f.log_det();
        assert!((log_abs - 24.0_f64.ln()).abs() < 1e-12);
        assert!((sign + 1.0).abs() < 1e-12);
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let mut rng = StdRng::seed_from_u64(23);
        let a: DenseMatrix<f64> = random_matrix(&mut rng, 6, 6);
        let inv = LuFactor::new(&a).unwrap().inverse();
        let id = a.matmul(&inv);
        assert!(id.sub(&DenseMatrix::identity(6)).norm_max() < 1e-10);
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = DenseMatrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let f = LuFactor::new(&a).unwrap();
        let x = f.solve_vec(&[2.0, 3.0]);
        assert_eq!(x, vec![3.0, 2.0]);
    }
}
