//! Householder QR and column-pivoted (rank-revealing) QR.
//!
//! The HODLR construction needs two things from QR:
//!
//! * a plain thin QR used to re-orthonormalise low-rank bases produced by the
//!   randomized range finder ([`thin_qr`]);
//! * a column-pivoted QR ([`PivotedQr`]) whose diagonal of `R` decays, so a
//!   numerical rank can be read off against a tolerance — the workhorse of
//!   dense low-rank compression when no analytic structure is available.
//!
//! Both work for real and complex scalars.

use crate::blas::{gemm, Op};
use crate::dense::{DenseMatrix, MatMut};
use crate::scalar::{RealScalar, Scalar};

/// A Householder reflector `H = I - tau * v v^*` stored as the vector `v`
/// (with `v[0] = 1` implicitly) and the scalar `tau`.
#[derive(Clone, Debug)]
struct Reflector<T: Scalar> {
    v: Vec<T>,
    tau: T,
}

/// Compute the Householder reflector that maps `x` onto `beta * e_1` and
/// return `(reflector, beta)`.  For a zero column the identity reflector
/// (`tau = 0`) is returned.
fn householder<T: Scalar>(x: &[T]) -> (Reflector<T>, T) {
    let n = x.len();
    debug_assert!(n > 0);
    let norm = crate::norms::norm2(x);
    if norm == T::Real::zero() {
        return (
            Reflector {
                v: vec![T::zero(); n],
                tau: T::zero(),
            },
            T::zero(),
        );
    }
    // beta = -sign(x0) * ||x||, where sign is the complex phase of x0.
    let x0 = x[0];
    let phase = if x0.abs() == T::Real::zero() {
        T::one()
    } else {
        x0.scale(x0.abs().recip_real())
    };
    let beta = -(phase.scale(norm));
    // v = x - beta e1, normalised so that v[0] = 1.
    let v0 = x0 - beta;
    let mut v = vec![T::zero(); n];
    v[0] = T::one();
    if v0.abs() == T::Real::zero() {
        // x is already a multiple of e1 with the "wrong" sign handled above.
        return (Reflector { v, tau: T::zero() }, x0);
    }
    let inv_v0 = v0.recip();
    for i in 1..n {
        v[i] = x[i] * inv_v0;
    }
    // tau = (beta - x0) / beta gives H x = beta e1 for the scaled v.
    let tau = (beta - x0) / beta;
    (Reflector { v, tau }, beta)
}

/// Apply `H = I - tau v v^*` to the sub-block `a` from the left: `A <- H A`.
///
/// Runs on contiguous column slices (`v^* a_j` as a dot product, the update
/// as an axpy) so the rank-1 apply autovectorizes.
fn apply_reflector_left<T: Scalar>(r: &Reflector<T>, mut a: MatMut<'_, T>) {
    if r.tau == T::zero() {
        return;
    }
    let n = a.cols();
    debug_assert_eq!(r.v.len(), a.rows());
    for j in 0..n {
        let col = a.col_mut(j);
        let w = r.tau * crate::blas::dot_conj(&r.v, col);
        if w == T::zero() {
            continue;
        }
        crate::blas::axpy_slice(-w, &r.v, col);
    }
}

/// Panel width of the blocked (compact-WY) QR.
const QR_NB: usize = 32;

/// Minimum size at which `thin_qr` switches to the blocked algorithm.
const QR_BLOCK_MIN: usize = 96;

/// A compact-WY panel: `H_1 H_2 ... H_ib = I - V T V^*` where `V` is
/// `m_p x ib` unit-lower-trapezoidal (stored explicitly with the unit
/// diagonal and zeros above) and `T` is `ib x ib` upper triangular.
struct WyPanel<T: Scalar> {
    /// Row offset of the panel inside the factored matrix.
    row: usize,
    v: DenseMatrix<T>,
    t: DenseMatrix<T>,
}

impl<T: Scalar> WyPanel<T> {
    /// Build `V`/`T` from the panel's reflectors (LAPACK `larft`, forward
    /// columnwise):  `T[0..j, j] = -tau_j * T[0..j, 0..j] * (V^* v_j)`.
    ///
    /// Each reflector vector must already be padded to the panel height
    /// `m_p` (zeros above its diagonal, unit at it).
    fn new(row: usize, m_p: usize, reflectors: &[Reflector<T>]) -> Self {
        let ib = reflectors.len();
        let mut v = DenseMatrix::<T>::zeros(m_p, ib);
        for (j, r) in reflectors.iter().enumerate() {
            debug_assert_eq!(r.v.len(), m_p);
            v.col_mut(j).copy_from_slice(&r.v);
        }
        let mut t = DenseMatrix::<T>::zeros(ib, ib);
        for (j, r) in reflectors.iter().enumerate() {
            t[(j, j)] = r.tau;
            if j == 0 || r.tau == T::zero() {
                continue;
            }
            // w = V[:, 0..j]^* v_j  (v_j is column j of V, zero above row j).
            let mut w = vec![T::zero(); j];
            for (i, wi) in w.iter_mut().enumerate() {
                *wi = crate::blas::dot_conj(&v.col(i)[j..], &v.col(j)[j..]);
            }
            // t[0..j, j] = -tau_j * T[0..j, 0..j] * w  (T upper triangular).
            for i in 0..j {
                let mut acc = T::zero();
                for (p, &wp) in w.iter().enumerate().skip(i) {
                    acc += t[(i, p)] * wp;
                }
                t[(i, j)] = -r.tau * acc;
            }
        }
        WyPanel { row, v, t }
    }

    /// Apply the block reflector to `a` from the left.
    ///
    /// `forward == false` applies `(I - V T V^*)^* = I - V T^* V^*`, i.e.
    /// `Q_panel^*` — the trailing update during factorization.
    /// `forward == true` applies `I - V T V^*`, i.e. `Q_panel` — used when
    /// accumulating `Q` back-to-front.
    ///
    /// Either way the work is two big `gemm`s (`W = V^* A`, `A -= V W`) plus
    /// one `ib x ib` triangular product, so the update is BLAS-3.
    fn apply_left(&self, mut a: MatMut<'_, T>, forward: bool) {
        let ib = self.t.rows();
        if ib == 0 || a.cols() == 0 {
            return;
        }
        let n = a.cols();
        // W = V^* A  (ib x n).
        let mut w = DenseMatrix::<T>::zeros(ib, n);
        gemm(
            T::one(),
            self.v.as_ref(),
            Op::ConjTrans,
            a.as_ref(),
            Op::None,
            T::zero(),
            w.as_mut(),
        );
        // W <- T W (forward) or T^* W (backward).  T is upper triangular
        // with exact zeros below the diagonal, so a dense product is exact.
        let mut tw = DenseMatrix::<T>::zeros(ib, n);
        gemm(
            T::one(),
            self.t.as_ref(),
            if forward { Op::None } else { Op::ConjTrans },
            w.as_ref(),
            Op::None,
            T::zero(),
            tw.as_mut(),
        );
        // A -= V (T W).
        gemm(
            -T::one(),
            self.v.as_ref(),
            Op::None,
            tw.as_ref(),
            Op::None,
            T::one(),
            a.reborrow(),
        );
    }
}

trait RecipReal {
    fn recip_real(self) -> Self;
}

impl<R: RealScalar> RecipReal for R {
    fn recip_real(self) -> Self {
        R::one() / self
    }
}

/// Thin (economy) QR factorization `A = Q R` of an `m x n` matrix with
/// `m >= n`: `Q` is `m x n` with orthonormal columns and `R` is `n x n`
/// upper triangular.
///
/// For `m < n` the factorization is still returned with `Q: m x m` and
/// `R: m x n`.
///
/// # Panics
/// Panics if `a` is empty.
pub fn thin_qr<T: Scalar>(a: &DenseMatrix<T>) -> (DenseMatrix<T>, DenseMatrix<T>) {
    let m = a.rows();
    let n = a.cols();
    assert!(m > 0 && n > 0, "thin_qr: empty matrix");
    let k = m.min(n);

    if m >= QR_BLOCK_MIN && n >= QR_BLOCK_MIN {
        return thin_qr_blocked(a);
    }

    let mut work = a.clone();
    let mut reflectors = Vec::with_capacity(k);
    for col in 0..k {
        let x: Vec<T> = work.col(col)[col..].to_vec();
        let (refl, beta) = householder(&x);
        // Update trailing block [col.., col..].
        apply_reflector_left(&refl, work.block_mut(col, col, m - col, n - col));
        // The reflector zeroes the column below the diagonal; enforce exactly.
        work[(col, col)] = beta;
        for i in (col + 1)..m {
            work[(i, col)] = T::zero();
        }
        reflectors.push(refl);
    }

    // R is the top k x n block of the reduced matrix.
    let r = work.sub_matrix(0, 0, k, n);

    // Form the thin Q by applying the reflectors to the first k columns of I.
    let mut q = DenseMatrix::<T>::zeros(m, k);
    for j in 0..k {
        q[(j, j)] = T::one();
    }
    for col in (0..k).rev() {
        apply_reflector_left(&reflectors[col], q.block_mut(col, col, m - col, k - col));
    }
    (q, r)
}

/// Blocked compact-WY thin QR (LAPACK `geqrt`-style): panels of [`QR_NB`]
/// columns are reduced with rank-1 reflector applies, then each trailing
/// update and the accumulation of `Q` run as block reflector applies —
/// two `gemm`s per panel — so the dominant cost is BLAS-3.
fn thin_qr_blocked<T: Scalar>(a: &DenseMatrix<T>) -> (DenseMatrix<T>, DenseMatrix<T>) {
    let m = a.rows();
    let n = a.cols();
    let k = m.min(n);
    let mut work = a.clone();
    let mut panels: Vec<WyPanel<T>> = Vec::with_capacity(k.div_ceil(QR_NB));

    let mut k0 = 0;
    while k0 < k {
        let ib = QR_NB.min(k - k0);
        // Reduce the panel columns with rank-1 applies (panel is narrow).
        let mut reflectors: Vec<Reflector<T>> = Vec::with_capacity(ib);
        for j in 0..ib {
            let col = k0 + j;
            let x: Vec<T> = work.col(col)[col..].to_vec();
            let (refl, beta) = householder(&x);
            apply_reflector_left(&refl, work.block_mut(col, col, m - col, k0 + ib - col));
            work[(col, col)] = beta;
            for i in (col + 1)..m {
                work[(i, col)] = T::zero();
            }
            // Re-anchor the reflector to the panel's top row so the panel's
            // V matrix is (m - k0) x ib.
            let mut v_full = vec![T::zero(); m - k0];
            v_full[j..].copy_from_slice(&refl.v);
            reflectors.push(Reflector {
                v: v_full,
                tau: refl.tau,
            });
        }
        let panel = WyPanel::new(k0, m - k0, &reflectors);
        // Block trailing update: A2 <- (I - V T^* V^*) A2.
        if k0 + ib < n {
            panel.apply_left(work.block_mut(k0, k0 + ib, m - k0, n - k0 - ib), false);
        }
        panels.push(panel);
        k0 += ib;
    }

    let r = work.sub_matrix(0, 0, k, n);

    // Accumulate the thin Q back-to-front: Q = (I - V1 T1 V1^*) ... I.
    let mut q = DenseMatrix::<T>::zeros(m, k);
    for j in 0..k {
        q[(j, j)] = T::one();
    }
    for panel in panels.iter().rev() {
        let row = panel.row;
        q_apply_panel(panel, &mut q, row, k);
    }
    (q, r)
}

/// Apply one WY panel to rows `row..` of the accumulating `Q` factor.
///
/// Columns `j < row` are skipped: panels are applied back-to-front, so at
/// this point those columns are still `e_j` with a zero tail below `row`
/// and the block reflector would compute an exact no-op on them.
fn q_apply_panel<T: Scalar>(panel: &WyPanel<T>, q: &mut DenseMatrix<T>, row: usize, k: usize) {
    let m = q.rows();
    panel.apply_left(q.block_mut(row, row, m - row, k - row), true);
}

/// Orthonormalise the columns of `a` in place (thin Q), returning the number
/// of numerically independent columns kept.  Columns whose residual norm
/// falls below `tol * ||a||_F` are dropped.
pub fn orthonormalize<T: Scalar>(a: &DenseMatrix<T>, tol: T::Real) -> DenseMatrix<T> {
    let (q, r) = thin_qr(a);
    let k = q.cols();
    // Determine how many diagonal entries of R are significant.
    let mut scale = T::Real::zero();
    for i in 0..k.min(r.rows()) {
        scale = scale.max_real(r[(i, i)].abs());
    }
    if scale == T::Real::zero() {
        return DenseMatrix::zeros(a.rows(), 0);
    }
    let mut keep = 0;
    for i in 0..k.min(r.rows()) {
        if r[(i, i)].abs() > tol * scale {
            keep = i + 1;
        }
    }
    q.sub_matrix(0, 0, q.rows(), keep)
}

/// Result of a column-pivoted QR factorization `A P = Q R`.
///
/// `perm[j]` is the index of the original column of `A` that was moved to
/// position `j`, so `A[:, perm] = Q R`.
#[derive(Clone, Debug)]
pub struct PivotedQr<T: Scalar> {
    /// Thin orthonormal factor, `m x rank`.
    pub q: DenseMatrix<T>,
    /// Upper-trapezoidal factor in pivoted order, `rank x n`.
    pub r: DenseMatrix<T>,
    /// Column permutation: `a[:, perm[j]]` is the `j`-th pivoted column.
    pub perm: Vec<usize>,
    /// Numerical rank detected against the requested tolerance.
    pub rank: usize,
}

impl<T: Scalar> PivotedQr<T> {
    /// Reassemble the low-rank factors `(U, V)` such that `A ~= U V^*`
    /// (the HODLR off-diagonal convention, Eq. (5) of the paper).
    ///
    /// `U = Q` and `V^*` is `R` with the column permutation undone.
    pub fn low_rank_factors(&self) -> (DenseMatrix<T>, DenseMatrix<T>) {
        let rank = self.rank;
        let n = self.r.cols();
        let u = self.q.clone();
        // v is n x rank with v[j, :] = conj(r[:, pos of column j]).
        let mut v = DenseMatrix::<T>::zeros(n, rank);
        for (pos, &orig) in self.perm.iter().enumerate() {
            for i in 0..rank {
                v[(orig, i)] = self.r[(i, pos)].conj();
            }
        }
        (u, v)
    }
}

/// Column-pivoted QR with early termination at a relative tolerance or a
/// maximum rank (Golub–Businger with running column-norm downdates).
///
/// The factorization stops as soon as the largest remaining column norm drops
/// below `tol` times the largest initial column norm, or when `max_rank`
/// columns have been processed.
///
/// # Panics
/// Panics if `a` is empty.
pub fn pivoted_qr<T: Scalar>(
    a: &DenseMatrix<T>,
    tol: T::Real,
    max_rank: Option<usize>,
) -> PivotedQr<T> {
    let m = a.rows();
    let n = a.cols();
    assert!(m > 0 && n > 0, "pivoted_qr: empty matrix");
    let kmax = max_rank.unwrap_or(usize::MAX).min(m).min(n);

    let mut work = a.clone();
    let mut perm: Vec<usize> = (0..n).collect();
    let mut col_norms: Vec<T::Real> = (0..n).map(|j| crate::norms::norm2(work.col(j))).collect();
    let norm_scale = col_norms
        .iter()
        .fold(T::Real::zero(), |acc, &x| acc.max_real(x));

    let mut reflectors: Vec<Reflector<T>> = Vec::new();
    let mut rank = 0;

    while rank < kmax {
        // Pivot: bring the column with the largest remaining norm to `rank`.
        let (pivot, &pivot_norm) = col_norms
            .iter()
            .enumerate()
            .skip(rank)
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .expect("non-empty remaining columns");
        if norm_scale == T::Real::zero() || pivot_norm <= tol * norm_scale {
            break;
        }
        if pivot != rank {
            swap_cols(&mut work, rank, pivot);
            perm.swap(rank, pivot);
            col_norms.swap(rank, pivot);
        }

        let x: Vec<T> = work.col(rank)[rank..].to_vec();
        let (refl, beta) = householder(&x);
        apply_reflector_left(&refl, work.block_mut(rank, rank, m - rank, n - rank));
        work[(rank, rank)] = beta;
        for i in (rank + 1)..m {
            work[(i, rank)] = T::zero();
        }
        reflectors.push(refl);
        rank += 1;

        // Recompute the trailing column norms (exact recomputation is O(mn)
        // per step; fine for the small blocks compressed in HODLR builds and
        // avoids the classical downdating cancellation issue).
        for (j, norm) in col_norms.iter_mut().enumerate().skip(rank) {
            *norm = crate::norms::norm2(&work.col(j)[rank..]);
        }
    }

    let r = if rank == 0 {
        DenseMatrix::zeros(0, n)
    } else {
        work.sub_matrix(0, 0, rank, n)
    };

    // Thin Q: apply reflectors to the first `rank` columns of the identity.
    let mut q = DenseMatrix::<T>::zeros(m, rank);
    for j in 0..rank {
        q[(j, j)] = T::one();
    }
    for col in (0..rank).rev() {
        apply_reflector_left(&reflectors[col], q.block_mut(col, col, m - col, rank - col));
    }

    PivotedQr { q, r, perm, rank }
}

fn swap_cols<T: Scalar>(a: &mut DenseMatrix<T>, j1: usize, j2: usize) {
    if j1 == j2 {
        return;
    }
    let rows = a.rows();
    for i in 0..rows {
        let t = a[(i, j1)];
        a[(i, j1)] = a[(i, j2)];
        a[(i, j2)] = t;
    }
}

/// Reconstruction error `||A - Q R P^*||_F` of a pivoted QR, used by tests.
pub fn pivoted_qr_residual<T: Scalar>(a: &DenseMatrix<T>, f: &PivotedQr<T>) -> T::Real {
    let (u, v) = f.low_rank_factors();
    let mut approx = DenseMatrix::<T>::zeros(a.rows(), a.cols());
    if f.rank > 0 {
        gemm(
            T::one(),
            u.as_ref(),
            Op::None,
            v.as_ref(),
            Op::ConjTrans,
            T::zero(),
            approx.as_mut(),
        );
    }
    a.sub(&approx).norm_fro()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::{gaussian_matrix, random_low_rank, random_matrix};
    use crate::Complex64;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn check_orthonormal<T: Scalar>(q: &DenseMatrix<T>, tol: f64) {
        let k = q.cols();
        let mut gram = DenseMatrix::<T>::zeros(k, k);
        gemm(
            T::one(),
            q.as_ref(),
            Op::ConjTrans,
            q.as_ref(),
            Op::None,
            T::zero(),
            gram.as_mut(),
        );
        for i in 0..k {
            for j in 0..k {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!(
                    (gram[(i, j)].abs().to_f64() - expect).abs() < tol,
                    "gram[{i},{j}] = {:?}",
                    gram[(i, j)]
                );
            }
        }
    }

    fn check_qr_reconstruction<T: Scalar>(a: &DenseMatrix<T>, tol: f64) {
        let (q, r) = thin_qr(a);
        check_orthonormal(&q, tol);
        let mut qr = DenseMatrix::<T>::zeros(a.rows(), a.cols());
        gemm(
            T::one(),
            q.as_ref(),
            Op::None,
            r.as_ref(),
            Op::None,
            T::zero(),
            qr.as_mut(),
        );
        let err = a.sub(&qr).norm_fro().to_f64();
        let scale = a.norm_fro().to_f64().max(1.0);
        assert!(err / scale < tol, "qr reconstruction error {err}");
    }

    #[test]
    fn thin_qr_real_tall() {
        let mut rng = StdRng::seed_from_u64(11);
        let a: DenseMatrix<f64> = random_matrix(&mut rng, 30, 12);
        check_qr_reconstruction(&a, 1e-12);
    }

    #[test]
    fn thin_qr_real_wide() {
        let mut rng = StdRng::seed_from_u64(12);
        let a: DenseMatrix<f64> = random_matrix(&mut rng, 8, 20);
        check_qr_reconstruction(&a, 1e-12);
    }

    #[test]
    fn thin_qr_complex() {
        let mut rng = StdRng::seed_from_u64(13);
        let a: DenseMatrix<Complex64> = random_matrix(&mut rng, 25, 10);
        check_qr_reconstruction(&a, 1e-12);
    }

    #[test]
    fn thin_qr_r_is_upper_triangular() {
        let mut rng = StdRng::seed_from_u64(14);
        let a: DenseMatrix<f64> = random_matrix(&mut rng, 16, 16);
        let (_, r) = thin_qr(&a);
        for i in 0..r.rows() {
            for j in 0..i.min(r.cols()) {
                assert!(r[(i, j)].abs() < 1e-13);
            }
        }
    }

    #[test]
    fn thin_qr_rank_deficient_column() {
        // First column zero: reflector must handle a zero pivot column.
        let mut rng = StdRng::seed_from_u64(15);
        let mut a: DenseMatrix<f64> = random_matrix(&mut rng, 10, 4);
        for i in 0..10 {
            a[(i, 0)] = 0.0;
        }
        check_qr_reconstruction(&a, 1e-12);
    }

    #[test]
    fn pivoted_qr_detects_exact_rank() {
        let mut rng = StdRng::seed_from_u64(16);
        let a: DenseMatrix<f64> = random_low_rank(&mut rng, 40, 30, 5);
        let f = pivoted_qr(&a, 1e-10, None);
        assert_eq!(f.rank, 5);
        let err = pivoted_qr_residual(&a, &f);
        assert!(err < 1e-9 * a.norm_fro());
    }

    #[test]
    fn pivoted_qr_complex_rank() {
        let mut rng = StdRng::seed_from_u64(17);
        let a: DenseMatrix<Complex64> = random_low_rank(&mut rng, 24, 24, 7);
        let f = pivoted_qr(&a, 1e-10, None);
        assert_eq!(f.rank, 7);
        let err = pivoted_qr_residual(&a, &f);
        assert!(err.to_f64() < 1e-9 * a.norm_fro().to_f64());
    }

    #[test]
    fn pivoted_qr_max_rank_cap() {
        let mut rng = StdRng::seed_from_u64(18);
        let a: DenseMatrix<f64> = gaussian_matrix(&mut rng, 30, 30);
        let f = pivoted_qr(&a, 0.0, Some(4));
        assert_eq!(f.rank, 4);
        assert_eq!(f.q.cols(), 4);
        assert_eq!(f.r.rows(), 4);
    }

    #[test]
    fn pivoted_qr_zero_matrix_has_rank_zero() {
        let a: DenseMatrix<f64> = DenseMatrix::zeros(12, 9);
        let f = pivoted_qr(&a, 1e-12, None);
        assert_eq!(f.rank, 0);
    }

    #[test]
    fn pivoted_qr_full_rank_reconstruction() {
        let mut rng = StdRng::seed_from_u64(19);
        let a: DenseMatrix<f64> = gaussian_matrix(&mut rng, 20, 14);
        let f = pivoted_qr(&a, 1e-14, None);
        assert_eq!(f.rank, 14);
        let err = pivoted_qr_residual(&a, &f);
        assert!(err < 1e-11 * a.norm_fro());
        check_orthonormal(&f.q, 1e-11);
    }

    #[test]
    fn orthonormalize_drops_dependent_columns() {
        let mut rng = StdRng::seed_from_u64(20);
        let b: DenseMatrix<f64> = gaussian_matrix(&mut rng, 30, 3);
        // Duplicate the columns: 6 columns, rank 3.
        let a = b.hcat(&b);
        let q = orthonormalize(&a, 1e-10);
        assert_eq!(q.cols(), 3);
        check_orthonormal(&q, 1e-11);
    }
}
