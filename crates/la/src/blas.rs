//! Level-2/3 BLAS style kernels: `gemm`, `gemv` and friends.
//!
//! # Kernel design
//!
//! [`gemm`] is a packed, register-tiled, cache-blocked BLAS-3 kernel in the
//! GotoBLAS/BLIS/faer style.  Large products run through three layers:
//!
//! 1. **Register microkernel** — an [`GEMM_MR`]`x`[`GEMM_NR`] tile of `C` is
//!    held in unrolled accumulators (`[[T; MR]; NR]` locals) while streaming
//!    one column of packed `A` and one row of packed `B` per `k` step.  The
//!    fixed-size inner loops autovectorize for `f32`/`f64` and stay correct
//!    (scalar) for complex fields.
//! 2. **Packing** — `op_a(A)` is repacked into column-major micro-panels of
//!    [`GEMM_MR`] rows and `op_b(B)` into row-major micro-panels of
//!    [`GEMM_NR`] columns, so the microkernel reads both operands
//!    contiguously regardless of the requested [`Op`] or the view strides.
//!    Conjugation is folded into the pack.  The pack buffers are allocated
//!    once per parallel tile task and reused across every `k` block of that
//!    tile (the previous kernel copied all of `op_a(A)` on every call).
//! 3. **Cache blocking** — the `k` dimension is processed in slabs of
//!    [`GEMM_KC`], each tile packs at most [`GEMM_MC`]`x`[`GEMM_KC`] of `A`
//!    (sized for L2) and [`GEMM_KC`]`x`[`GEMM_NC`] of `B` (sized for L3).
//!
//! **Tuning:** `GEMM_MR`/`GEMM_NR` set the register footprint of the
//! microkernel (`MR*NR` accumulators; 8x4 fills a 16-register SIMD file at
//! f64x2 and still fits when the compiler promotes to wider vectors);
//! `GEMM_KC` bounds the packed panel depth so an `MR x KC` A-strip plus an
//! `NR x KC` B-strip stay L1-resident; `GEMM_MC` (a multiple of `MR`) sizes
//! the packed A panel for L2; `GEMM_NC` (a multiple of `NR`) sets the width
//! of a parallel column tile.  Raise `GEMM_MC`/`GEMM_KC` on machines with
//! larger private caches; shrink `GEMM_NC` to expose more parallel tiles for
//! wide products.
//!
//! # Parallelism and determinism
//!
//! Products above [`GEMM_DIRECT_THRESHOLD`] multiply-adds are split over a
//! fixed grid of `GEMM_MC x GEMM_NC` tiles of `C`.  Tile boundaries depend
//! only on `(m, n)` — never on the thread count — and each tile accumulates
//! its `k` slabs sequentially in ascending order, so every entry of `C` sees
//! the same floating-point operation order at any pool size: results are
//! **bitwise identical at any thread count**, preserving the repo-wide
//! determinism contract (see ARCHITECTURE.md).  Because the grid covers rows
//! as well as columns, tall-skinny products (the rank-width `V^H * Y`
//! updates that dominate HODLR factorization) parallelize too.
//!
//! # Small products
//!
//! Below [`GEMM_DIRECT_THRESHOLD`] the kernel uses an unpacked direct path:
//! when `op_a == Op::None` the columns of `A` are read in place (columns of
//! a strided view are always contiguous), so small products do **no**
//! repacking at all; transposed operands use dot-product form on contiguous
//! columns.  The previous implementation copied all of `op_a(A)` even when
//! it was already stored exactly as needed.
//!
//! The old axpy-per-column kernel is retained as [`gemm_reference`]: it is
//! the oracle for property tests and the baseline the `kernels` bench bin
//! (BENCH_kernels.json) measures speedups against.

use crate::dense::{MatMut, MatRef};
use crate::scalar::Scalar;
use rayon::prelude::*;

/// Operation applied to an input operand of [`gemm`]/[`gemv`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Op {
    /// Use the matrix as stored.
    None,
    /// Use the transpose.
    Trans,
    /// Use the conjugate transpose (equals `Trans` for real scalars).
    ConjTrans,
}

impl Op {
    /// Rows of `op(A)` given the stored shape of `A`.
    #[inline]
    pub fn rows_of<T: Scalar>(self, a: &MatRef<'_, T>) -> usize {
        match self {
            Op::None => a.rows(),
            _ => a.cols(),
        }
    }

    /// Columns of `op(A)` given the stored shape of `A`.
    #[inline]
    pub fn cols_of<T: Scalar>(self, a: &MatRef<'_, T>) -> usize {
        match self {
            Op::None => a.cols(),
            _ => a.rows(),
        }
    }

    /// Element `(i, j)` of `op(A)`.
    #[inline]
    pub fn at<T: Scalar>(self, a: &MatRef<'_, T>, i: usize, j: usize) -> T {
        match self {
            Op::None => a.get(i, j),
            Op::Trans => a.get(j, i),
            Op::ConjTrans => a.get(j, i).conj(),
        }
    }
}

/// Number of flops of a real/complex multiply-add counted as 2 operations, as
/// in the paper's complexity analysis (Sec. III-D, footnote 3).
#[inline]
pub fn gemm_flops(m: usize, n: usize, k: usize) -> u64 {
    2 * m as u64 * n as u64 * k as u64
}

/// Rows of one register microtile for real scalars (the unit of A packing).
pub const GEMM_MR: usize = 8;
/// Columns of one register microtile for real scalars (the unit of B
/// packing).
pub const GEMM_NR: usize = 4;
/// Microtile rows for complex scalars (half-size: a complex accumulator is
/// two reals wide, and an 8x4 complex tile would spill to the stack).
pub const GEMM_MR_COMPLEX: usize = 4;
/// Microtile columns for complex scalars.
pub const GEMM_NR_COMPLEX: usize = 2;
/// Depth of one cache slab: an `MR x KC` A-strip + `NR x KC` B-strip fit L1.
pub const GEMM_KC: usize = 256;
/// Rows of one packed A panel (multiple of [`GEMM_MR`]; sized for L2).
pub const GEMM_MC: usize = 96;
/// Columns of one parallel tile (multiple of [`GEMM_NR`]; sized for L3).
pub const GEMM_NC: usize = 512;

/// Multiply-add count below which [`gemm`] runs the unpacked direct path.
pub const GEMM_DIRECT_THRESHOLD: usize = 64 * 64 * 64;

/// General matrix-matrix multiply:
/// `C <- alpha * op_a(A) * op_b(B) + beta * C`.
///
/// Shapes must satisfy `op_a(A): m x k`, `op_b(B): k x n`, `C: m x n`.
///
/// Results are bitwise identical at any thread count (see the module docs).
///
/// # Panics
/// Panics on dimension mismatch.
pub fn gemm<T: Scalar>(
    alpha: T,
    a: MatRef<'_, T>,
    op_a: Op,
    b: MatRef<'_, T>,
    op_b: Op,
    beta: T,
    mut c: MatMut<'_, T>,
) {
    let m = op_a.rows_of(&a);
    let k = op_a.cols_of(&a);
    let k2 = op_b.rows_of(&b);
    let n = op_b.cols_of(&b);
    assert_eq!(k, k2, "gemm: inner dimensions differ ({k} vs {k2})");
    assert_eq!(c.rows(), m, "gemm: C has wrong row count");
    assert_eq!(c.cols(), n, "gemm: C has wrong column count");

    if m == 0 || n == 0 {
        return;
    }

    // Scale C by beta first.
    if beta == T::zero() {
        c.fill(T::zero());
    } else if beta != T::one() {
        for j in 0..n {
            for x in c.col_mut(j) {
                *x *= beta;
            }
        }
    }
    if k == 0 || alpha == T::zero() {
        return;
    }

    if m * n * k < GEMM_DIRECT_THRESHOLD {
        gemm_direct(alpha, &a, op_a, &b, op_b, &mut c, m, n, k);
    } else if T::IS_COMPLEX {
        // Complex accumulators are twice as wide; a smaller register tile
        // avoids spilling the accumulator block to the stack.
        gemm_blocked::<T, GEMM_MR_COMPLEX, GEMM_NR_COMPLEX>(
            alpha, &a, op_a, &b, op_b, &mut c, m, n, k,
        );
    } else {
        gemm_blocked::<T, GEMM_MR, GEMM_NR>(alpha, &a, op_a, &b, op_b, &mut c, m, n, k);
    }
}

// ---------------------------------------------------------------------------
// Direct path: small products, no packing.
// ---------------------------------------------------------------------------

/// Unpacked kernel for small products (C already beta-scaled).
///
/// For `op_a == Op::None` the columns of `A` are used in place — no repack.
/// For transposed `A` the product is computed in dot form over the
/// contiguous columns of `A` as stored.
#[allow(clippy::too_many_arguments)]
fn gemm_direct<T: Scalar>(
    alpha: T,
    a: &MatRef<'_, T>,
    op_a: Op,
    b: &MatRef<'_, T>,
    op_b: Op,
    c: &mut MatMut<'_, T>,
    _m: usize,
    n: usize,
    k: usize,
) {
    match op_a {
        Op::None => {
            for j in 0..n {
                let c_col = c.col_mut(j);
                for p in 0..k {
                    let scale = alpha * op_b.at(b, p, j);
                    if scale == T::zero() {
                        continue;
                    }
                    axpy_slice(scale, a.col(p), c_col);
                }
            }
        }
        Op::Trans | Op::ConjTrans => {
            // op_a(A)[i, p] = (conj?) a[p, i]: row i of op_a(A) is the
            // contiguous stored column i of A.
            let conj_a = op_a == Op::ConjTrans;
            let mut b_col: Vec<T> = Vec::new();
            for j in 0..n {
                let b_slice: &[T] = if op_b == Op::None {
                    b.col(j)
                } else {
                    b_col.clear();
                    b_col.extend((0..k).map(|p| op_b.at(b, p, j)));
                    &b_col
                };
                let c_col = c.col_mut(j);
                for (i, ci) in c_col.iter_mut().enumerate() {
                    let acc = if conj_a {
                        dot_conj(a.col(i), b_slice)
                    } else {
                        dot(a.col(i), b_slice)
                    };
                    *ci += alpha * acc;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Blocked path: packed panels + register microkernel.
// ---------------------------------------------------------------------------

/// A raw pointer that may be sent across rayon worker threads.  Safety is
/// established at the use site: each task writes a disjoint region.
#[derive(Copy, Clone)]
struct SendPtr<T>(*mut T);
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

#[inline]
fn round_up(x: usize, to: usize) -> usize {
    x.div_ceil(to) * to
}

/// Blocked kernel (C already beta-scaled, `alpha != 0`, `k > 0`).
#[allow(clippy::too_many_arguments)]
fn gemm_blocked<T: Scalar, const MR: usize, const NR: usize>(
    alpha: T,
    a: &MatRef<'_, T>,
    op_a: Op,
    b: &MatRef<'_, T>,
    op_b: Op,
    c: &mut MatMut<'_, T>,
    m: usize,
    n: usize,
    k: usize,
) {
    // Fixed tile grid over C: boundaries depend only on (m, n), never on the
    // thread count, so the floating-point accumulation order per entry of C
    // is invariant under the pool size.
    let mut tiles: Vec<(usize, usize, usize, usize)> = Vec::new();
    let mut i0 = 0;
    while i0 < m {
        let ib = GEMM_MC.min(m - i0);
        let mut j0 = 0;
        while j0 < n {
            let jb = GEMM_NC.min(n - j0);
            tiles.push((i0, ib, j0, jb));
            j0 += jb;
        }
        i0 += ib;
    }

    let ld_c = c.ld();
    // SAFETY: the tiles index disjoint (row, column) windows of C, so the
    // raw pointer writes in `run_tile` never alias.  The pointer wrapper is
    // confined to this scope.
    let c_ptr = SendPtr(c.col_mut(0).as_mut_ptr());

    let run_tile = move |&(i0, ib, j0, jb): &(usize, usize, usize, usize)| {
        // Rebound by value so each worker captures its own copy of the
        // pointer wrapper rather than a shared borrow.
        #[allow(clippy::redundant_locals)]
        let c_ptr = c_ptr;
        let kc = GEMM_KC.min(k);
        // Per-task pack workspaces, reused across every k slab of the tile.
        let mut a_buf = vec![T::zero(); round_up(ib, MR) * kc];
        let mut b_buf = vec![T::zero(); round_up(jb, NR) * kc];

        let mut p0 = 0;
        while p0 < k {
            let pb = GEMM_KC.min(k - p0);
            pack_a::<T, MR>(a, op_a, i0, ib, p0, pb, &mut a_buf);
            pack_b::<T, NR>(b, op_b, p0, pb, j0, jb, &mut b_buf);

            let mut jr = 0;
            while jr < jb {
                let nrv = NR.min(jb - jr);
                let bp = &b_buf[(jr / NR) * pb * NR..][..pb * NR];
                let mut ir = 0;
                while ir < ib {
                    let mrv = MR.min(ib - ir);
                    let ap = &a_buf[(ir / MR) * pb * MR..][..pb * MR];
                    let acc = microkernel::<T, MR, NR>(pb, ap, bp);
                    // C[i0+ir.., j0+jr..] += alpha * acc (valid region only).
                    for (jj, acc_col) in acc.iter().enumerate().take(nrv) {
                        // SAFETY: this column segment lies inside the tile's
                        // disjoint window of C.
                        let col = unsafe {
                            std::slice::from_raw_parts_mut(
                                c_ptr.0.add((j0 + jr + jj) * ld_c + i0 + ir),
                                mrv,
                            )
                        };
                        for (ci, &v) in col.iter_mut().zip(acc_col) {
                            *ci += alpha * v;
                        }
                    }
                    ir += MR;
                }
                jr += NR;
            }
            p0 += pb;
        }
    };

    if tiles.len() > 1 {
        tiles.par_iter().for_each(run_tile);
    } else {
        tiles.iter().for_each(run_tile);
    }
}

/// The register microkernel: accumulate
/// `acc[j][i] = sum_p ap[p*MR + i] * bp[p*NR + j]` over one packed k slab.
///
/// The fixed-size accumulator array lives in registers; the `MR`-wide inner
/// loop reads packed A contiguously and autovectorizes for real scalars.
#[inline(always)]
fn microkernel<T: Scalar, const MR: usize, const NR: usize>(
    pb: usize,
    ap: &[T],
    bp: &[T],
) -> [[T; MR]; NR] {
    let mut acc = [[T::zero(); MR]; NR];
    for p in 0..pb {
        let av: &[T; MR] = ap[p * MR..p * MR + MR].try_into().unwrap();
        let bv: &[T; NR] = bp[p * NR..p * NR + NR].try_into().unwrap();
        for (acc_col, &bj) in acc.iter_mut().zip(bv.iter()) {
            for (acc_ij, &ai) in acc_col.iter_mut().zip(av.iter()) {
                *acc_ij += ai * bj;
            }
        }
    }
    acc
}

/// Pack `op(A)[i0..i0+ib, p0..p0+pb]` into micro-panels of [`GEMM_MR`] rows:
/// panel `ir/MR` stores, for each `p`, `MR` consecutive rows (zero-padded at
/// the ragged edge).  Conjugation is applied here so the microkernel never
/// branches on the op.
fn pack_a<T: Scalar, const MR: usize>(
    a: &MatRef<'_, T>,
    op: Op,
    i0: usize,
    ib: usize,
    p0: usize,
    pb: usize,
    buf: &mut [T],
) {
    let mut off = 0;
    let mut ir = 0;
    while ir < ib {
        let mrv = MR.min(ib - ir);
        match op {
            Op::None => {
                for p in 0..pb {
                    let src = &a.col(p0 + p)[i0 + ir..i0 + ir + mrv];
                    let dst = &mut buf[off + p * MR..off + p * MR + MR];
                    dst[..mrv].copy_from_slice(src);
                    dst[mrv..].fill(T::zero());
                }
            }
            Op::Trans | Op::ConjTrans => {
                let conj = op == Op::ConjTrans;
                // op(A)[i0+ir+i, p0+p] = a[p0+p, i0+ir+i]: row `i` of the
                // panel is the contiguous stored column `i0+ir+i` of A.
                for i in 0..mrv {
                    let src = &a.col(i0 + ir + i)[p0..p0 + pb];
                    for (p, &v) in src.iter().enumerate() {
                        buf[off + p * MR + i] = if conj { v.conj() } else { v };
                    }
                }
                for i in mrv..MR {
                    for p in 0..pb {
                        buf[off + p * MR + i] = T::zero();
                    }
                }
            }
        }
        off += pb * MR;
        ir += MR;
    }
}

/// Pack `op(B)[p0..p0+pb, j0..j0+jb]` into micro-panels of [`GEMM_NR`]
/// columns: panel `jr/NR` stores, for each `p`, `NR` consecutive columns
/// (zero-padded at the ragged edge), conjugated as requested.
fn pack_b<T: Scalar, const NR: usize>(
    b: &MatRef<'_, T>,
    op: Op,
    p0: usize,
    pb: usize,
    j0: usize,
    jb: usize,
    buf: &mut [T],
) {
    let mut off = 0;
    let mut jr = 0;
    while jr < jb {
        let nrv = NR.min(jb - jr);
        match op {
            Op::None => {
                for j in 0..nrv {
                    let src = &b.col(j0 + jr + j)[p0..p0 + pb];
                    for (p, &v) in src.iter().enumerate() {
                        buf[off + p * NR + j] = v;
                    }
                }
                for j in nrv..NR {
                    for p in 0..pb {
                        buf[off + p * NR + j] = T::zero();
                    }
                }
            }
            Op::Trans | Op::ConjTrans => {
                let conj = op == Op::ConjTrans;
                // op(B)[p0+p, j0+jr+j] = b[j0+jr+j, p0+p]: column `p` of the
                // packed slab is the contiguous stored column `p0+p` of B.
                for p in 0..pb {
                    let src = &b.col(p0 + p)[j0 + jr..j0 + jr + nrv];
                    let dst = &mut buf[off + p * NR..off + p * NR + NR];
                    for (d, &v) in dst[..nrv].iter_mut().zip(src) {
                        *d = if conj { v.conj() } else { v };
                    }
                    dst[nrv..].fill(T::zero());
                }
            }
        }
        off += pb * NR;
        jr += NR;
    }
}

// ---------------------------------------------------------------------------
// Reference kernel (retained) and level-1/2 helpers.
// ---------------------------------------------------------------------------

/// The retained naive reference kernel: the axpy-per-column loop that used
/// to be `gemm`.  Sequential, packs all of `op_a(A)` per call, no register
/// or cache blocking.  It is the oracle for the blocked-vs-reference
/// property tests and the baseline of the `kernels` bench bin.
pub fn gemm_reference<T: Scalar>(
    alpha: T,
    a: MatRef<'_, T>,
    op_a: Op,
    b: MatRef<'_, T>,
    op_b: Op,
    beta: T,
    mut c: MatMut<'_, T>,
) {
    let m = op_a.rows_of(&a);
    let k = op_a.cols_of(&a);
    let k2 = op_b.rows_of(&b);
    let n = op_b.cols_of(&b);
    assert_eq!(k, k2, "gemm_reference: inner dimensions differ");
    assert_eq!(c.rows(), m, "gemm_reference: C has wrong row count");
    assert_eq!(c.cols(), n, "gemm_reference: C has wrong column count");

    if m == 0 || n == 0 {
        return;
    }
    if beta == T::zero() {
        c.fill(T::zero());
    } else if beta != T::one() {
        for j in 0..n {
            for x in c.col_mut(j) {
                *x *= beta;
            }
        }
    }
    if k == 0 || alpha == T::zero() {
        return;
    }

    // Pack op_a(A) once into a column-major m x k buffer.
    let mut a_packed = Vec::with_capacity(m * k);
    for p in 0..k {
        for i in 0..m {
            a_packed.push(op_a.at(&a, i, p));
        }
    }
    for j in 0..n {
        let c_col = c.col_mut(j);
        for p in 0..k {
            let scale = alpha * op_b.at(&b, p, j);
            if scale == T::zero() {
                continue;
            }
            axpy_slice(scale, &a_packed[p * m..(p + 1) * m], c_col);
        }
    }
}

/// `y += alpha * x` over slices of equal length (the hot inner loop).
#[inline]
pub fn axpy_slice<T: Scalar>(alpha: T, x: &[T], y: &mut [T]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi = xi.mul_add(alpha, *yi);
    }
}

/// Dot product `sum_i conj(x_i) * y_i` (the complex inner product).
#[inline]
pub fn dot_conj<T: Scalar>(x: &[T], y: &[T]) -> T {
    debug_assert_eq!(x.len(), y.len());
    let mut acc = T::zero();
    for (&xi, &yi) in x.iter().zip(y) {
        acc += xi.conj() * yi;
    }
    acc
}

/// Dot product without conjugation `sum_i x_i * y_i`.
#[inline]
pub fn dot<T: Scalar>(x: &[T], y: &[T]) -> T {
    debug_assert_eq!(x.len(), y.len());
    let mut acc = T::zero();
    for (&xi, &yi) in x.iter().zip(y) {
        acc += xi * yi;
    }
    acc
}

/// General matrix-vector multiply `y <- alpha * op(A) * x + beta * y`.
pub fn gemv<T: Scalar>(alpha: T, a: MatRef<'_, T>, op: Op, x: &[T], beta: T, y: &mut [T]) {
    let m = op.rows_of(&a);
    let k = op.cols_of(&a);
    assert_eq!(x.len(), k, "gemv: x has wrong length");
    assert_eq!(y.len(), m, "gemv: y has wrong length");

    if beta == T::zero() {
        y.fill(T::zero());
    } else if beta != T::one() {
        for v in y.iter_mut() {
            *v *= beta;
        }
    }
    if alpha == T::zero() || k == 0 {
        return;
    }

    match op {
        Op::None => {
            for (p, &xp) in x.iter().enumerate() {
                let scale = alpha * xp;
                if scale == T::zero() {
                    continue;
                }
                axpy_slice(scale, a.col(p), y);
            }
        }
        Op::Trans => {
            for (i, yi) in y.iter_mut().enumerate() {
                *yi += alpha * dot(a.col(i), x);
            }
        }
        Op::ConjTrans => {
            for (i, yi) in y.iter_mut().enumerate() {
                *yi += alpha * dot_conj(a.col(i), x);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::DenseMatrix;
    use crate::Complex64;

    fn naive_gemm<T: Scalar>(
        alpha: T,
        a: &DenseMatrix<T>,
        op_a: Op,
        b: &DenseMatrix<T>,
        op_b: Op,
        beta: T,
        c: &DenseMatrix<T>,
    ) -> DenseMatrix<T> {
        let ar = a.as_ref();
        let br = b.as_ref();
        let m = op_a.rows_of(&ar);
        let k = op_a.cols_of(&ar);
        let n = op_b.cols_of(&br);
        DenseMatrix::from_fn(m, n, |i, j| {
            let mut acc = T::zero();
            for p in 0..k {
                acc += op_a.at(&ar, i, p) * op_b.at(&br, p, j);
            }
            alpha * acc + beta * c[(i, j)]
        })
    }

    fn rand_mat(rows: usize, cols: usize, seed: u64) -> DenseMatrix<f64> {
        // Simple deterministic LCG so this test has no rand dependency.
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        DenseMatrix::from_fn(rows, cols, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        })
    }

    #[test]
    fn gemm_matches_naive_all_ops() {
        let a = rand_mat(7, 5, 1);
        let b = rand_mat(5, 6, 2);
        let mut c = rand_mat(7, 6, 3);
        let expect = naive_gemm(2.0, &a, Op::None, &b, Op::None, 0.5, &c);
        gemm(
            2.0,
            a.as_ref(),
            Op::None,
            b.as_ref(),
            Op::None,
            0.5,
            c.as_mut(),
        );
        assert!(c.sub(&expect).norm_max() < 1e-13);

        // Transposed operands.
        let a = rand_mat(5, 7, 4); // op_a = T -> 7x5
        let b = rand_mat(6, 5, 5); // op_b = T -> 5x6
        let mut c = rand_mat(7, 6, 6);
        let expect = naive_gemm(1.0, &a, Op::Trans, &b, Op::Trans, -1.0, &c);
        gemm(
            1.0,
            a.as_ref(),
            Op::Trans,
            b.as_ref(),
            Op::Trans,
            -1.0,
            c.as_mut(),
        );
        assert!(c.sub(&expect).norm_max() < 1e-13);
    }

    #[test]
    fn gemm_conj_trans_complex() {
        let a = DenseMatrix::from_fn(3, 4, |i, j| Complex64::new(i as f64, j as f64 + 1.0));
        let b = DenseMatrix::from_fn(3, 2, |i, j| Complex64::new(j as f64 - 1.0, i as f64));
        let mut c = DenseMatrix::<Complex64>::zeros(4, 2);
        let expect = naive_gemm(
            Complex64::new(1.0, 0.0),
            &a,
            Op::ConjTrans,
            &b,
            Op::None,
            Complex64::new(0.0, 0.0),
            &c,
        );
        gemm(
            Complex64::new(1.0, 0.0),
            a.as_ref(),
            Op::ConjTrans,
            b.as_ref(),
            Op::None,
            Complex64::new(0.0, 0.0),
            c.as_mut(),
        );
        assert!(c.sub(&expect).norm_max() < 1e-13);
    }

    #[test]
    fn gemm_large_blocked_path() {
        // 96 * 80 * 112 exceeds GEMM_DIRECT_THRESHOLD: exercises packing,
        // the microkernel, ragged edge tiles and the parallel tile grid.
        let a = rand_mat(96, 80, 11);
        let b = rand_mat(80, 112, 12);
        let mut c = DenseMatrix::<f64>::zeros(96, 112);
        let expect = naive_gemm(1.0, &a, Op::None, &b, Op::None, 0.0, &c);
        gemm(
            1.0,
            a.as_ref(),
            Op::None,
            b.as_ref(),
            Op::None,
            0.0,
            c.as_mut(),
        );
        assert!(c.sub(&expect).norm_max() < 1e-11);
    }

    #[test]
    fn gemm_blocked_all_ops_match_reference() {
        // Odd dims straddling the blocking boundaries, every op combo, both
        // alpha/beta non-trivial.
        let (m, n, k) = (101, 67, 129);
        for op_a in [Op::None, Op::Trans, Op::ConjTrans] {
            for op_b in [Op::None, Op::Trans, Op::ConjTrans] {
                let (ar, ac) = if op_a == Op::None { (m, k) } else { (k, m) };
                let (br, bc) = if op_b == Op::None { (k, n) } else { (n, k) };
                let a = rand_mat(ar, ac, 101);
                let b = rand_mat(br, bc, 202);
                let mut c = rand_mat(m, n, 303);
                let mut c_ref = c.clone();
                gemm(1.5, a.as_ref(), op_a, b.as_ref(), op_b, -0.5, c.as_mut());
                gemm_reference(
                    1.5,
                    a.as_ref(),
                    op_a,
                    b.as_ref(),
                    op_b,
                    -0.5,
                    c_ref.as_mut(),
                );
                assert!(
                    c.sub(&c_ref).norm_max() < 1e-11,
                    "blocked vs reference mismatch for {op_a:?}/{op_b:?}"
                );
            }
        }
    }

    #[test]
    fn gemm_on_block_views() {
        // Multiply sub-blocks addressed through strided views.
        let big_a = rand_mat(10, 10, 21);
        let big_b = rand_mat(10, 10, 22);
        let mut big_c = DenseMatrix::<f64>::zeros(10, 10);
        let a = big_a.block(2, 3, 4, 5);
        let b = big_b.block(1, 0, 5, 3);
        gemm(
            1.0,
            a,
            Op::None,
            b,
            Op::None,
            0.0,
            big_c.block_mut(0, 0, 4, 3),
        );
        let expect = a.to_owned().matmul(&b.to_owned());
        assert!(big_c.sub_matrix(0, 0, 4, 3).sub(&expect).norm_max() < 1e-13);
    }

    #[test]
    fn gemv_all_ops() {
        let a = rand_mat(6, 4, 31);
        let x4: Vec<f64> = (0..4).map(|i| i as f64 + 1.0).collect();
        let x6: Vec<f64> = (0..6).map(|i| 0.5 * i as f64 - 1.0).collect();

        let mut y = vec![0.0; 6];
        gemv(1.0, a.as_ref(), Op::None, &x4, 0.0, &mut y);
        let expect = a.matvec(&x4);
        for i in 0..6 {
            assert!((y[i] - expect[i]).abs() < 1e-13);
        }

        let mut yt = vec![1.0; 4];
        gemv(2.0, a.as_ref(), Op::Trans, &x6, 3.0, &mut yt);
        let expect_t = a.transpose().matvec(&x6);
        for i in 0..4 {
            assert!((yt[i] - (2.0 * expect_t[i] + 3.0)).abs() < 1e-13);
        }
    }

    #[test]
    fn dot_products() {
        let x = vec![Complex64::new(1.0, 2.0), Complex64::new(0.0, -1.0)];
        let y = vec![Complex64::new(3.0, 0.0), Complex64::new(1.0, 1.0)];
        let d = dot_conj(&x, &y);
        // conj(1+2i)*3 + conj(-i)*(1+i) = (3-6i) + i(1+i) = (3-6i) + (i-1) = 2 - 5i
        assert!((d - Complex64::new(2.0, -5.0)).abs() < 1e-14);
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    #[test]
    fn gemm_flop_count() {
        assert_eq!(gemm_flops(2, 3, 4), 48);
    }

    #[test]
    fn empty_dimensions_are_noops() {
        let a = DenseMatrix::<f64>::zeros(0, 3);
        let b = DenseMatrix::<f64>::zeros(3, 0);
        let mut c = DenseMatrix::<f64>::zeros(0, 0);
        gemm(
            1.0,
            a.as_ref(),
            Op::None,
            b.as_ref(),
            Op::None,
            0.0,
            c.as_mut(),
        );
        let a = DenseMatrix::<f64>::zeros(2, 0);
        let b = DenseMatrix::<f64>::zeros(0, 2);
        let mut c = DenseMatrix::from_fn(2, 2, |_, _| 5.0);
        gemm(
            1.0,
            a.as_ref(),
            Op::None,
            b.as_ref(),
            Op::None,
            1.0,
            c.as_mut(),
        );
        assert_eq!(c[(0, 0)], 5.0);
    }
}
