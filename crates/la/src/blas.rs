//! Level-2/3 BLAS style kernels: `gemm`, `gemv` and friends.
//!
//! The GEMM kernel is a cache-blocked, register-tiled triple loop with an
//! optional rayon-parallel outer loop over column panels.  It supports the
//! `N`/`T`/`C` operation codes of BLAS through [`Op`], which is what the
//! HODLR factorization needs (`V^H * Y` products use `Op::ConjTrans`).

use crate::dense::{MatMut, MatRef};
use crate::scalar::Scalar;
use rayon::prelude::*;

/// Operation applied to an input operand of [`gemm`]/[`gemv`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Op {
    /// Use the matrix as stored.
    None,
    /// Use the transpose.
    Trans,
    /// Use the conjugate transpose (equals `Trans` for real scalars).
    ConjTrans,
}

impl Op {
    /// Rows of `op(A)` given the stored shape of `A`.
    #[inline]
    pub fn rows_of<T: Scalar>(self, a: &MatRef<'_, T>) -> usize {
        match self {
            Op::None => a.rows(),
            _ => a.cols(),
        }
    }

    /// Columns of `op(A)` given the stored shape of `A`.
    #[inline]
    pub fn cols_of<T: Scalar>(self, a: &MatRef<'_, T>) -> usize {
        match self {
            Op::None => a.cols(),
            _ => a.rows(),
        }
    }

    /// Element `(i, j)` of `op(A)`.
    #[inline]
    pub fn at<T: Scalar>(self, a: &MatRef<'_, T>, i: usize, j: usize) -> T {
        match self {
            Op::None => a.get(i, j),
            Op::Trans => a.get(j, i),
            Op::ConjTrans => a.get(j, i).conj(),
        }
    }
}

/// Number of flops of a real/complex multiply-add counted as 2 operations, as
/// in the paper's complexity analysis (Sec. III-D, footnote 3).
#[inline]
pub fn gemm_flops(m: usize, n: usize, k: usize) -> u64 {
    2 * m as u64 * n as u64 * k as u64
}

/// Threshold (in multiply-adds) above which `gemm` parallelises over columns.
const PAR_THRESHOLD: usize = 64 * 64 * 64;

/// Upper bound on the number of column panels a parallel `gemm` splits `C`
/// into (subject to the 8-column minimum panel width).
const MAX_PANELS: usize = 64;

/// General matrix-matrix multiply:
/// `C <- alpha * op_a(A) * op_b(B) + beta * C`.
///
/// Shapes must satisfy `op_a(A): m x k`, `op_b(B): k x n`, `C: m x n`.
///
/// # Panics
/// Panics on dimension mismatch.
pub fn gemm<T: Scalar>(
    alpha: T,
    a: MatRef<'_, T>,
    op_a: Op,
    b: MatRef<'_, T>,
    op_b: Op,
    beta: T,
    mut c: MatMut<'_, T>,
) {
    let m = op_a.rows_of(&a);
    let k = op_a.cols_of(&a);
    let k2 = op_b.rows_of(&b);
    let n = op_b.cols_of(&b);
    assert_eq!(k, k2, "gemm: inner dimensions differ ({k} vs {k2})");
    assert_eq!(c.rows(), m, "gemm: C has wrong row count");
    assert_eq!(c.cols(), n, "gemm: C has wrong column count");

    if m == 0 || n == 0 {
        return;
    }

    // Scale C by beta first.
    if beta == T::zero() {
        c.fill(T::zero());
    } else if beta != T::one() {
        for j in 0..n {
            for x in c.col_mut(j) {
                *x *= beta;
            }
        }
    }
    if k == 0 || alpha == T::zero() {
        return;
    }

    // Pack op_a(A) once into a column-major m x k buffer: every inner kernel
    // then streams contiguous columns regardless of the requested op.
    let a_packed = pack(a, op_a);

    let work = m * n * k;
    if work >= PAR_THRESHOLD && n > 1 {
        // Parallelise over disjoint column panels of C.  Panel boundaries
        // are a function of `n` only — never of the thread count — so the
        // work decomposition (and any future panel-level blocking) cannot
        // introduce thread-count-dependent results; the work-stealing pool
        // balances the fixed panels across however many workers exist.
        let panel = n.div_ceil(MAX_PANELS).max(8).min(n);
        let ld_c = c.ld();
        let c_cols = collect_col_ranges(n, panel);
        // SAFETY: the panels index disjoint column ranges of C, so the raw
        // pointer writes below never alias.  The pointer wrapper is confined
        // to this scope.
        let c_ptr = SendPtr(c.col_mut(0).as_mut_ptr());
        c_cols.into_par_iter().for_each(|(j0, j1)| {
            // Rebound by value so each worker captures its own copy of the
            // pointer wrapper rather than a shared borrow.
            #[allow(clippy::redundant_locals)]
            let c_ptr = c_ptr;
            for j in j0..j1 {
                let c_col = unsafe { std::slice::from_raw_parts_mut(c_ptr.0.add(j * ld_c), m) };
                gemm_col(alpha, &a_packed, m, k, &b, op_b, j, c_col);
            }
        });
    } else {
        for j in 0..n {
            let c_col = c.col_mut(j);
            gemm_col(alpha, &a_packed, m, k, &b, op_b, j, c_col);
        }
    }
}

/// A raw pointer that may be sent across rayon worker threads.  Safety is
/// established at the use site: each task writes a disjoint region.
#[derive(Copy, Clone)]
struct SendPtr<T>(*mut T);
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

/// Pack `op(A)` into a contiguous column-major buffer.
fn pack<T: Scalar>(a: MatRef<'_, T>, op: Op) -> Vec<T> {
    let m = op.rows_of(&a);
    let k = op.cols_of(&a);
    let mut buf = Vec::with_capacity(m * k);
    match op {
        Op::None => {
            for p in 0..k {
                buf.extend_from_slice(a.col(p));
            }
        }
        Op::Trans => {
            for p in 0..k {
                for i in 0..m {
                    buf.push(a.get(p, i));
                }
            }
        }
        Op::ConjTrans => {
            for p in 0..k {
                for i in 0..m {
                    buf.push(a.get(p, i).conj());
                }
            }
        }
    }
    buf
}

/// Compute one column of C: `c_col += alpha * A_packed * op_b(B)[:, j]`,
/// where `A_packed` is column-major `m x k`.
#[inline]
#[allow(clippy::too_many_arguments)]
fn gemm_col<T: Scalar>(
    alpha: T,
    a_packed: &[T],
    m: usize,
    k: usize,
    b: &MatRef<'_, T>,
    op_b: Op,
    j: usize,
    c_col: &mut [T],
) {
    match op_b {
        Op::None => {
            let b_col = b.col(j);
            for (p, &bpj) in b_col.iter().enumerate().take(k) {
                let scale = alpha * bpj;
                if scale == T::zero() {
                    continue;
                }
                let a_col = &a_packed[p * m..(p + 1) * m];
                axpy_slice(scale, a_col, c_col);
            }
        }
        _ => {
            for p in 0..k {
                let bpj = match op_b {
                    Op::Trans => b.get(j, p),
                    Op::ConjTrans => b.get(j, p).conj(),
                    Op::None => unreachable!(),
                };
                let scale = alpha * bpj;
                if scale == T::zero() {
                    continue;
                }
                let a_col = &a_packed[p * m..(p + 1) * m];
                axpy_slice(scale, a_col, c_col);
            }
        }
    }
}

/// `y += alpha * x` over slices of equal length (the hot inner loop).
#[inline]
pub fn axpy_slice<T: Scalar>(alpha: T, x: &[T], y: &mut [T]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi = xi.mul_add(alpha, *yi);
    }
}

/// Dot product `sum_i conj(x_i) * y_i` (the complex inner product).
#[inline]
pub fn dot_conj<T: Scalar>(x: &[T], y: &[T]) -> T {
    debug_assert_eq!(x.len(), y.len());
    let mut acc = T::zero();
    for (&xi, &yi) in x.iter().zip(y) {
        acc += xi.conj() * yi;
    }
    acc
}

/// Dot product without conjugation `sum_i x_i * y_i`.
#[inline]
pub fn dot<T: Scalar>(x: &[T], y: &[T]) -> T {
    debug_assert_eq!(x.len(), y.len());
    let mut acc = T::zero();
    for (&xi, &yi) in x.iter().zip(y) {
        acc += xi * yi;
    }
    acc
}

/// General matrix-vector multiply `y <- alpha * op(A) * x + beta * y`.
pub fn gemv<T: Scalar>(alpha: T, a: MatRef<'_, T>, op: Op, x: &[T], beta: T, y: &mut [T]) {
    let m = op.rows_of(&a);
    let k = op.cols_of(&a);
    assert_eq!(x.len(), k, "gemv: x has wrong length");
    assert_eq!(y.len(), m, "gemv: y has wrong length");

    if beta == T::zero() {
        y.fill(T::zero());
    } else if beta != T::one() {
        for v in y.iter_mut() {
            *v *= beta;
        }
    }
    if alpha == T::zero() || k == 0 {
        return;
    }

    match op {
        Op::None => {
            for (p, &xp) in x.iter().enumerate() {
                let scale = alpha * xp;
                if scale == T::zero() {
                    continue;
                }
                axpy_slice(scale, a.col(p), y);
            }
        }
        Op::Trans => {
            for (i, yi) in y.iter_mut().enumerate() {
                *yi += alpha * dot(a.col(i), x);
            }
        }
        Op::ConjTrans => {
            for (i, yi) in y.iter_mut().enumerate() {
                *yi += alpha * dot_conj(a.col(i), x);
            }
        }
    }
}

/// Collect `(start, end)` pairs that partition `0..n` into chunks of `panel`.
fn collect_col_ranges(n: usize, panel: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::with_capacity(n / panel + 1);
    let mut j = 0;
    while j < n {
        let end = (j + panel).min(n);
        out.push((j, end));
        j = end;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::DenseMatrix;
    use crate::Complex64;

    fn naive_gemm<T: Scalar>(
        alpha: T,
        a: &DenseMatrix<T>,
        op_a: Op,
        b: &DenseMatrix<T>,
        op_b: Op,
        beta: T,
        c: &DenseMatrix<T>,
    ) -> DenseMatrix<T> {
        let ar = a.as_ref();
        let br = b.as_ref();
        let m = op_a.rows_of(&ar);
        let k = op_a.cols_of(&ar);
        let n = op_b.cols_of(&br);
        DenseMatrix::from_fn(m, n, |i, j| {
            let mut acc = T::zero();
            for p in 0..k {
                acc += op_a.at(&ar, i, p) * op_b.at(&br, p, j);
            }
            alpha * acc + beta * c[(i, j)]
        })
    }

    fn rand_mat(rows: usize, cols: usize, seed: u64) -> DenseMatrix<f64> {
        // Simple deterministic LCG so this test has no rand dependency.
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        DenseMatrix::from_fn(rows, cols, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        })
    }

    #[test]
    fn gemm_matches_naive_all_ops() {
        let a = rand_mat(7, 5, 1);
        let b = rand_mat(5, 6, 2);
        let mut c = rand_mat(7, 6, 3);
        let expect = naive_gemm(2.0, &a, Op::None, &b, Op::None, 0.5, &c);
        gemm(
            2.0,
            a.as_ref(),
            Op::None,
            b.as_ref(),
            Op::None,
            0.5,
            c.as_mut(),
        );
        assert!(c.sub(&expect).norm_max() < 1e-13);

        // Transposed operands.
        let a = rand_mat(5, 7, 4); // op_a = T -> 7x5
        let b = rand_mat(6, 5, 5); // op_b = T -> 5x6
        let mut c = rand_mat(7, 6, 6);
        let expect = naive_gemm(1.0, &a, Op::Trans, &b, Op::Trans, -1.0, &c);
        gemm(
            1.0,
            a.as_ref(),
            Op::Trans,
            b.as_ref(),
            Op::Trans,
            -1.0,
            c.as_mut(),
        );
        assert!(c.sub(&expect).norm_max() < 1e-13);
    }

    #[test]
    fn gemm_conj_trans_complex() {
        let a = DenseMatrix::from_fn(3, 4, |i, j| Complex64::new(i as f64, j as f64 + 1.0));
        let b = DenseMatrix::from_fn(3, 2, |i, j| Complex64::new(j as f64 - 1.0, i as f64));
        let mut c = DenseMatrix::<Complex64>::zeros(4, 2);
        let expect = naive_gemm(
            Complex64::new(1.0, 0.0),
            &a,
            Op::ConjTrans,
            &b,
            Op::None,
            Complex64::new(0.0, 0.0),
            &c,
        );
        gemm(
            Complex64::new(1.0, 0.0),
            a.as_ref(),
            Op::ConjTrans,
            b.as_ref(),
            Op::None,
            Complex64::new(0.0, 0.0),
            c.as_mut(),
        );
        assert!(c.sub(&expect).norm_max() < 1e-13);
    }

    #[test]
    fn gemm_large_parallel_path() {
        let a = rand_mat(96, 80, 11);
        let b = rand_mat(80, 112, 12);
        let mut c = DenseMatrix::<f64>::zeros(96, 112);
        let expect = naive_gemm(1.0, &a, Op::None, &b, Op::None, 0.0, &c);
        gemm(
            1.0,
            a.as_ref(),
            Op::None,
            b.as_ref(),
            Op::None,
            0.0,
            c.as_mut(),
        );
        assert!(c.sub(&expect).norm_max() < 1e-11);
    }

    #[test]
    fn gemm_on_block_views() {
        // Multiply sub-blocks addressed through strided views.
        let big_a = rand_mat(10, 10, 21);
        let big_b = rand_mat(10, 10, 22);
        let mut big_c = DenseMatrix::<f64>::zeros(10, 10);
        let a = big_a.block(2, 3, 4, 5);
        let b = big_b.block(1, 0, 5, 3);
        gemm(
            1.0,
            a,
            Op::None,
            b,
            Op::None,
            0.0,
            big_c.block_mut(0, 0, 4, 3),
        );
        let expect = a.to_owned().matmul(&b.to_owned());
        assert!(big_c.sub_matrix(0, 0, 4, 3).sub(&expect).norm_max() < 1e-13);
    }

    #[test]
    fn gemv_all_ops() {
        let a = rand_mat(6, 4, 31);
        let x4: Vec<f64> = (0..4).map(|i| i as f64 + 1.0).collect();
        let x6: Vec<f64> = (0..6).map(|i| 0.5 * i as f64 - 1.0).collect();

        let mut y = vec![0.0; 6];
        gemv(1.0, a.as_ref(), Op::None, &x4, 0.0, &mut y);
        let expect = a.matvec(&x4);
        for i in 0..6 {
            assert!((y[i] - expect[i]).abs() < 1e-13);
        }

        let mut yt = vec![1.0; 4];
        gemv(2.0, a.as_ref(), Op::Trans, &x6, 3.0, &mut yt);
        let expect_t = a.transpose().matvec(&x6);
        for i in 0..4 {
            assert!((yt[i] - (2.0 * expect_t[i] + 3.0)).abs() < 1e-13);
        }
    }

    #[test]
    fn dot_products() {
        let x = vec![Complex64::new(1.0, 2.0), Complex64::new(0.0, -1.0)];
        let y = vec![Complex64::new(3.0, 0.0), Complex64::new(1.0, 1.0)];
        let d = dot_conj(&x, &y);
        // conj(1+2i)*3 + conj(-i)*(1+i) = (3-6i) + i(1+i) = (3-6i) + (i-1) = 2 - 5i
        assert!((d - Complex64::new(2.0, -5.0)).abs() < 1e-14);
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    #[test]
    fn gemm_flop_count() {
        assert_eq!(gemm_flops(2, 3, 4), 48);
    }

    #[test]
    fn empty_dimensions_are_noops() {
        let a = DenseMatrix::<f64>::zeros(0, 3);
        let b = DenseMatrix::<f64>::zeros(3, 0);
        let mut c = DenseMatrix::<f64>::zeros(0, 0);
        gemm(
            1.0,
            a.as_ref(),
            Op::None,
            b.as_ref(),
            Op::None,
            0.0,
            c.as_mut(),
        );
        let a = DenseMatrix::<f64>::zeros(2, 0);
        let b = DenseMatrix::<f64>::zeros(0, 2);
        let mut c = DenseMatrix::from_fn(2, 2, |_, _| 5.0);
        gemm(
            1.0,
            a.as_ref(),
            Op::None,
            b.as_ref(),
            Op::None,
            1.0,
            c.as_mut(),
        );
        assert_eq!(c[(0, 0)], 5.0);
    }
}
