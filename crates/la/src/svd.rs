//! One-sided Jacobi singular value decomposition.
//!
//! The SVD is used in two places in the workspace: recompression of low-rank
//! factors produced by the randomized range finder (small `r x n` matrices)
//! and as the reference "best rank-k approximation" oracle in tests.  The
//! one-sided Jacobi method is simple, backwards stable, works unchanged for
//! complex matrices, and is accurate for the small blocks it is applied to.

use crate::blas::{gemm, Op};
use crate::dense::DenseMatrix;
use crate::scalar::{RealScalar, Scalar};

/// A (thin) singular value decomposition `A = U diag(sigma) V^*`.
///
/// `U` is `m x k`, `V` is `n x k` and `sigma` holds the `k = min(m, n)`
/// singular values in non-increasing order.
#[derive(Clone, Debug)]
pub struct Svd<T: Scalar> {
    /// Left singular vectors (orthonormal columns).
    pub u: DenseMatrix<T>,
    /// Singular values, non-increasing.
    pub sigma: Vec<T::Real>,
    /// Right singular vectors (orthonormal columns).
    pub v: DenseMatrix<T>,
}

impl<T: Scalar> Svd<T> {
    /// Numerical rank: the number of singular values above
    /// `tol * sigma_max` (or above zero when `sigma_max == 0`).
    pub fn rank(&self, tol: T::Real) -> usize {
        let smax = self.sigma.first().copied().unwrap_or(T::Real::zero());
        if smax == T::Real::zero() {
            return 0;
        }
        self.sigma.iter().take_while(|&&s| s > tol * smax).count()
    }

    /// Truncate to the leading `k` singular triplets and return `(U, V)` in
    /// the HODLR off-diagonal convention `A ~= U V^*`, where the singular
    /// values are folded into `U`.
    pub fn truncate(&self, k: usize) -> (DenseMatrix<T>, DenseMatrix<T>) {
        let k = k.min(self.sigma.len());
        let m = self.u.rows();
        let n = self.v.rows();
        let mut u = DenseMatrix::<T>::zeros(m, k);
        let mut v = DenseMatrix::<T>::zeros(n, k);
        for j in 0..k {
            let s = self.sigma[j];
            for i in 0..m {
                u[(i, j)] = self.u[(i, j)].scale(s);
            }
            for i in 0..n {
                v[(i, j)] = self.v[(i, j)];
            }
        }
        (u, v)
    }

    /// Truncate at a relative tolerance: keep all triplets with
    /// `sigma_j > tol * sigma_0`.
    pub fn truncate_tol(&self, tol: T::Real) -> (DenseMatrix<T>, DenseMatrix<T>) {
        self.truncate(self.rank(tol))
    }

    /// Reconstruct the (possibly truncated) matrix `U diag(sigma) V^*`.
    pub fn reconstruct(&self) -> DenseMatrix<T> {
        let (u, v) = self.truncate(self.sigma.len());
        let mut a = DenseMatrix::<T>::zeros(u.rows(), v.rows());
        if !u.is_empty() && !v.is_empty() {
            gemm(
                T::one(),
                u.as_ref(),
                Op::None,
                v.as_ref(),
                Op::ConjTrans,
                T::zero(),
                a.as_mut(),
            );
        }
        a
    }
}

/// Maximum number of one-sided Jacobi sweeps before giving up.  In practice
/// convergence takes a handful of sweeps for the small matrices we factor.
const MAX_SWEEPS: usize = 60;

/// Compute the thin SVD of `a` by the one-sided Jacobi method.
///
/// Works for real and complex scalars.  For wide matrices (`m < n`) the
/// factorization of the conjugate transpose is computed and the factors are
/// swapped, so the returned triple always satisfies `A ~= U diag(sigma) V^*`.
pub fn jacobi_svd<T: Scalar>(a: &DenseMatrix<T>) -> Svd<T> {
    let m = a.rows();
    let n = a.cols();
    if m == 0 || n == 0 {
        return Svd {
            u: DenseMatrix::zeros(m, 0),
            sigma: Vec::new(),
            v: DenseMatrix::zeros(n, 0),
        };
    }
    if m < n {
        // Factor A^* = U S V^*, then A = V S U^*.
        let at = a.conj_transpose();
        let svd = jacobi_svd(&at);
        return Svd {
            u: svd.v,
            sigma: svd.sigma,
            v: svd.u,
        };
    }

    // Work on a copy whose columns are rotated until mutually orthogonal.
    let mut w = a.clone();
    let mut v = DenseMatrix::<T>::identity(n);

    let eps = T::Real::EPSILON;
    let tol = eps.sqrt_real() * eps.sqrt_real() * T::Real::from_f64_real(4.0); // ~4*eps
    let frob = a.norm_fro();
    if frob == T::Real::zero() {
        return Svd {
            u: DenseMatrix::zeros(m, n),
            sigma: vec![T::Real::zero(); n],
            v: DenseMatrix::identity(n),
        };
    }

    for _sweep in 0..MAX_SWEEPS {
        let mut converged = true;
        for p in 0..n {
            for q in (p + 1)..n {
                // 2x2 Gram matrix of columns p and q.
                let (app, aqq, apq) = gram_entries(&w, p, q);
                let denom = (app * aqq).sqrt_real();
                if denom == T::Real::zero() {
                    continue;
                }
                if apq.abs() <= tol * denom {
                    continue;
                }
                converged = false;

                // Phase of the off-diagonal entry: apq = |apq| e^{i phi}.
                let r = apq.abs();
                let phase = if r == T::Real::zero() {
                    T::one()
                } else {
                    apq.scale(T::Real::one() / r)
                };

                // Real Jacobi rotation diagonalising [[app, r], [r, aqq]].
                let tau = (aqq - app) / (T::Real::from_f64_real(2.0) * r);
                let t = {
                    let sign = if tau >= T::Real::zero() {
                        T::Real::one()
                    } else {
                        -T::Real::one()
                    };
                    sign / (tau.abs_real() + (T::Real::one() + tau * tau).sqrt_real())
                };
                let c = T::Real::one() / (T::Real::one() + t * t).sqrt_real();
                let s = c * t;

                // Unitary 2x2 update G = diag(phase, 1) * [[c, s], [-s, c]]:
                // col_p <- phase*c*col_p - s*col_q
                // col_q <- phase*s*col_p + c*col_q
                rotate_columns(&mut w, p, q, phase, c, s);
                rotate_columns(&mut v, p, q, phase, c, s);
            }
        }
        if converged {
            break;
        }
    }

    // Column norms are the singular values; normalised columns form U.
    let mut order: Vec<usize> = (0..n).collect();
    let norms: Vec<T::Real> = (0..n).map(|j| crate::norms::norm2(w.col(j))).collect();
    order.sort_by(|&a, &b| {
        norms[b]
            .partial_cmp(&norms[a])
            .unwrap_or(std::cmp::Ordering::Equal)
    });

    let mut u = DenseMatrix::<T>::zeros(m, n);
    let mut vv = DenseMatrix::<T>::zeros(n, n);
    let mut sigma = Vec::with_capacity(n);
    for (new_j, &old_j) in order.iter().enumerate() {
        let s = norms[old_j];
        sigma.push(s);
        if s > T::Real::zero() {
            let inv = T::Real::one() / s;
            for i in 0..m {
                u[(i, new_j)] = w[(i, old_j)].scale(inv);
            }
        }
        for i in 0..n {
            vv[(i, new_j)] = v[(i, old_j)];
        }
    }

    Svd { u, sigma, v: vv }
}

/// Gram entries `(a_pp, a_qq, a_pq)` of columns `p`, `q` of `w`:
/// `a_pq = w_p^* w_q` (note the conjugation on the first argument).
fn gram_entries<T: Scalar>(w: &DenseMatrix<T>, p: usize, q: usize) -> (T::Real, T::Real, T) {
    let cp = w.col(p);
    let cq = w.col(q);
    let mut app = T::Real::zero();
    let mut aqq = T::Real::zero();
    let mut apq = T::zero();
    for i in 0..cp.len() {
        app += cp[i].abs_sqr();
        aqq += cq[i].abs_sqr();
        apq += cp[i].conj() * cq[i];
    }
    (app, aqq, apq)
}

/// Apply the elementary unitary `G = diag(phase, 1) * [[c, s], [-s, c]]` to
/// columns `p` and `q` of `w` from the right.
fn rotate_columns<T: Scalar>(
    w: &mut DenseMatrix<T>,
    p: usize,
    q: usize,
    phase: T,
    c: T::Real,
    s: T::Real,
) {
    let rows = w.rows();
    for i in 0..rows {
        let wp = w[(i, p)];
        let wq = w[(i, q)];
        let new_p = (wp * phase).scale(c) - wq.scale(s);
        let new_q = (wp * phase).scale(s) + wq.scale(c);
        w[(i, p)] = new_p;
        w[(i, q)] = new_q;
    }
}

/// Convenience wrapper returning only the singular values of `a`,
/// non-increasing.
pub fn singular_values<T: Scalar>(a: &DenseMatrix<T>) -> Vec<T::Real> {
    jacobi_svd(a).sigma
}

/// Best rank-`k` approximation error in the Frobenius norm:
/// `sqrt(sum_{j>k} sigma_j^2)`.  Used by compression tests as the optimal
/// reference error.
pub fn tail_energy<R: RealScalar>(sigma: &[R], k: usize) -> R {
    let mut acc = R::zero();
    for &s in sigma.iter().skip(k) {
        acc += s * s;
    }
    acc.sqrt_real()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::{gaussian_matrix, random_low_rank};
    use crate::Complex64;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn check_svd<T: Scalar>(a: &DenseMatrix<T>, tol: f64) {
        let svd = jacobi_svd(a);
        // Reconstruction.
        let rec = svd.reconstruct();
        let err = a.sub(&rec).norm_fro().to_f64();
        let scale = a.norm_fro().to_f64().max(1.0);
        assert!(err / scale < tol, "svd reconstruction error {err}");
        // Ordering.
        for w in svd.sigma.windows(2) {
            assert!(w[0] >= w[1], "singular values not sorted: {:?}", svd.sigma);
        }
        // Orthonormality of U and V.
        for (q, label) in [(&svd.u, "U"), (&svd.v, "V")] {
            let k = q.cols();
            let mut gram = DenseMatrix::<T>::zeros(k, k);
            gemm(
                T::one(),
                q.as_ref(),
                Op::ConjTrans,
                q.as_ref(),
                Op::None,
                T::zero(),
                gram.as_mut(),
            );
            for i in 0..k {
                for j in 0..k {
                    let expect = if i == j { 1.0 } else { 0.0 };
                    assert!(
                        (gram[(i, j)].abs().to_f64() - expect).abs() < 100.0 * tol,
                        "{label} gram[{i},{j}] = {:?}",
                        gram[(i, j)]
                    );
                }
            }
        }
    }

    #[test]
    fn svd_real_square() {
        let mut rng = StdRng::seed_from_u64(31);
        let a: DenseMatrix<f64> = gaussian_matrix(&mut rng, 20, 20);
        check_svd(&a, 1e-11);
    }

    #[test]
    fn svd_real_tall_and_wide() {
        let mut rng = StdRng::seed_from_u64(32);
        let tall: DenseMatrix<f64> = gaussian_matrix(&mut rng, 30, 10);
        check_svd(&tall, 1e-11);
        let wide: DenseMatrix<f64> = gaussian_matrix(&mut rng, 10, 30);
        check_svd(&wide, 1e-11);
    }

    #[test]
    fn svd_complex() {
        let mut rng = StdRng::seed_from_u64(33);
        let a: DenseMatrix<Complex64> = gaussian_matrix(&mut rng, 18, 12);
        check_svd(&a, 1e-11);
    }

    #[test]
    fn svd_rank_detection() {
        let mut rng = StdRng::seed_from_u64(34);
        let a: DenseMatrix<f64> = random_low_rank(&mut rng, 40, 25, 6);
        let svd = jacobi_svd(&a);
        assert_eq!(svd.rank(1e-10), 6);
    }

    #[test]
    fn svd_truncation_matches_tail_energy() {
        let mut rng = StdRng::seed_from_u64(35);
        let a: DenseMatrix<f64> = gaussian_matrix(&mut rng, 25, 25);
        let svd = jacobi_svd(&a);
        let k = 8;
        let (u, v) = svd.truncate(k);
        let mut approx = DenseMatrix::<f64>::zeros(25, 25);
        gemm(
            1.0,
            u.as_ref(),
            Op::None,
            v.as_ref(),
            Op::ConjTrans,
            0.0,
            approx.as_mut(),
        );
        let err = a.sub(&approx).norm_fro();
        let best = tail_energy(&svd.sigma, k);
        assert!((err - best).abs() < 1e-9 * a.norm_fro());
    }

    #[test]
    fn svd_zero_matrix() {
        let a: DenseMatrix<f64> = DenseMatrix::zeros(10, 6);
        let svd = jacobi_svd(&a);
        assert_eq!(svd.rank(1e-12), 0);
        assert!(svd.sigma.iter().all(|&s| s == 0.0));
    }

    #[test]
    fn svd_singular_values_match_known_matrix() {
        // diag(3, 2, 1) embedded in a rotation-free matrix.
        let mut a = DenseMatrix::<f64>::zeros(3, 3);
        a[(0, 0)] = 3.0;
        a[(1, 1)] = 2.0;
        a[(2, 2)] = 1.0;
        let svd = jacobi_svd(&a);
        assert!((svd.sigma[0] - 3.0).abs() < 1e-14);
        assert!((svd.sigma[1] - 2.0).abs() < 1e-14);
        assert!((svd.sigma[2] - 1.0).abs() < 1e-14);
    }

    #[test]
    fn tail_energy_basics() {
        let s = vec![4.0_f64, 3.0, 0.0];
        assert_eq!(tail_energy(&s, 0), 5.0);
        assert_eq!(tail_energy(&s, 1), 3.0);
        assert_eq!(tail_energy(&s, 3), 0.0);
    }
}
