//! Matrix and vector norms.

use crate::dense::MatRef;
use crate::scalar::{RealScalar, Scalar};

/// Frobenius norm of a matrix view.
pub fn norm_fro<T: Scalar>(a: MatRef<'_, T>) -> T::Real {
    let mut acc = T::Real::zero();
    for j in 0..a.cols() {
        for &x in a.col(j) {
            acc += x.abs_sqr();
        }
    }
    acc.sqrt_real()
}

/// Largest entry modulus of a matrix view.
pub fn norm_max<T: Scalar>(a: MatRef<'_, T>) -> T::Real {
    let mut acc = T::Real::zero();
    for j in 0..a.cols() {
        for &x in a.col(j) {
            acc = acc.max_real(x.abs());
        }
    }
    acc
}

/// Euclidean norm of a vector.
pub fn norm2<T: Scalar>(x: &[T]) -> T::Real {
    let mut acc = T::Real::zero();
    for &v in x {
        acc += v.abs_sqr();
    }
    acc.sqrt_real()
}

/// Euclidean distance between two vectors.
pub fn dist2<T: Scalar>(x: &[T], y: &[T]) -> T::Real {
    assert_eq!(x.len(), y.len());
    let mut acc = T::Real::zero();
    for (&a, &b) in x.iter().zip(y) {
        acc += (a - b).abs_sqr();
    }
    acc.sqrt_real()
}

/// Relative residual `||b - A x|| / ||b||` given the residual and b norms.
pub fn relative_residual<R: RealScalar>(residual_norm: R, b_norm: R) -> R {
    if b_norm == R::zero() {
        residual_norm
    } else {
        residual_norm / b_norm
    }
}

/// One-norm (maximum absolute column sum).
pub fn norm_one<T: Scalar>(a: MatRef<'_, T>) -> T::Real {
    let mut best = T::Real::zero();
    for j in 0..a.cols() {
        let mut s = T::Real::zero();
        for &x in a.col(j) {
            s += x.abs();
        }
        best = best.max_real(s);
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::DenseMatrix;
    use crate::Complex64;

    #[test]
    fn frobenius_and_max() {
        let a: DenseMatrix<f64> = DenseMatrix::from_rows(&[vec![3.0, 0.0], vec![0.0, 4.0]]);
        assert!((norm_fro(a.as_ref()) - 5.0).abs() < 1e-15);
        assert_eq!(norm_max(a.as_ref()), 4.0);
        assert_eq!(norm_one(a.as_ref()), 4.0);
    }

    #[test]
    fn complex_norms() {
        let a = DenseMatrix::from_fn(1, 1, |_, _| Complex64::new(3.0, 4.0));
        assert!((norm_fro(a.as_ref()) - 5.0).abs() < 1e-15);
        assert_eq!(norm_max(a.as_ref()), 5.0);
    }

    #[test]
    fn vector_norms() {
        assert_eq!(norm2(&[3.0_f64, 4.0]), 5.0);
        assert_eq!(dist2(&[1.0_f64, 1.0], &[1.0, 2.0]), 1.0);
        assert_eq!(relative_residual(1.0_f64, 2.0), 0.5);
        assert_eq!(relative_residual(0.25_f64, 0.0), 0.25);
    }
}
