//! A minimal complex-number type.
//!
//! The workspace deliberately avoids external numeric crates, so complex
//! arithmetic (needed for the Helmholtz boundary integral equation, Sec. IV-C
//! of the paper) is implemented here.  The layout matches the conventional
//! LAPACK interleaved `[re, im]` representation so that a slice of
//! `Complex<R>` can be reinterpreted as pairs if ever needed.

use crate::scalar::RealScalar;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number `re + i·im` over a real base type `R`.
#[derive(Copy, Clone, PartialEq, Default)]
#[repr(C)]
pub struct Complex<R> {
    /// Real part.
    pub re: R,
    /// Imaginary part.
    pub im: R,
}

impl<R: RealScalar> Complex<R> {
    /// Create a complex number from its real and imaginary parts.
    #[inline]
    pub fn new(re: R, im: R) -> Self {
        Self { re, im }
    }

    /// The imaginary unit `i`.
    #[inline]
    pub fn i() -> Self {
        Self::new(R::zero(), R::one())
    }

    /// Complex conjugate.
    #[inline]
    pub fn conjugate(self) -> Self {
        Self::new(self.re, -self.im)
    }

    /// Modulus (2-norm) of the complex number.
    #[inline]
    pub fn modulus(self) -> R {
        self.re.hypot(self.im)
    }

    /// Squared modulus.
    #[inline]
    pub fn modulus_sqr(self) -> R {
        self.re * self.re + self.im * self.im
    }

    /// Argument (phase angle) in `(-pi, pi]`.
    #[inline]
    pub fn arg(self) -> R {
        self.im.atan2(self.re)
    }

    /// Multiplicative inverse, computed with Smith's algorithm to avoid
    /// overflow for large components.
    #[inline]
    pub fn recip(self) -> Self {
        if self.re.abs_real() >= self.im.abs_real() {
            let r = self.im / self.re;
            let d = self.re + self.im * r;
            Self::new(R::one() / d, -r / d)
        } else {
            let r = self.re / self.im;
            let d = self.re * r + self.im;
            Self::new(r / d, -R::one() / d)
        }
    }

    /// Principal square root.
    pub fn sqrt(self) -> Self {
        let m = self.modulus();
        let two = R::from_f64_real(2.0);
        let re = ((m + self.re) / two).sqrt_real();
        let im_mag = ((m - self.re) / two).sqrt_real();
        let im = if self.im < R::zero() { -im_mag } else { im_mag };
        Self::new(re, im)
    }

    /// Complex exponential `e^{self}`.
    pub fn exp(self) -> Self {
        let r = self.re.exp();
        Self::new(r * self.im.cos(), r * self.im.sin())
    }

    /// `e^{i·theta}` for a real angle `theta`.
    #[inline]
    pub fn cis(theta: R) -> Self {
        Self::new(theta.cos(), theta.sin())
    }

    /// Multiply by the imaginary unit (rotation by 90 degrees).
    #[inline]
    pub fn mul_i(self) -> Self {
        Self::new(-self.im, self.re)
    }

    /// Scale by a real factor.
    #[inline]
    pub fn scale_by(self, s: R) -> Self {
        Self::new(self.re * s, self.im * s)
    }
}

impl<R: RealScalar> Add for Complex<R> {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl<R: RealScalar> Sub for Complex<R> {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Self::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl<R: RealScalar> Mul for Complex<R> {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        Self::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl<R: RealScalar> Div for Complex<R> {
    type Output = Self;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // division via the reciprocal
    fn div(self, rhs: Self) -> Self {
        self * rhs.recip()
    }
}

impl<R: RealScalar> Neg for Complex<R> {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        Self::new(-self.re, -self.im)
    }
}

impl<R: RealScalar> AddAssign for Complex<R> {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl<R: RealScalar> SubAssign for Complex<R> {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}

impl<R: RealScalar> MulAssign for Complex<R> {
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl<R: RealScalar> DivAssign for Complex<R> {
    #[inline]
    fn div_assign(&mut self, rhs: Self) {
        *self = *self / rhs;
    }
}

impl<R: RealScalar> Sum for Complex<R> {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::new(R::zero(), R::zero()), |a, b| a + b)
    }
}

impl<R: RealScalar> Mul<R> for Complex<R> {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: R) -> Self {
        self.scale_by(rhs)
    }
}

impl<R: fmt::Debug> fmt::Debug for Complex<R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:?}+{:?}i)", self.re, self.im)
    }
}

impl<R: fmt::Display> fmt::Display for Complex<R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}+{}i)", self.re, self.im)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    type C = Complex<f64>;

    #[test]
    fn arithmetic_identities() {
        let a = C::new(1.5, -2.25);
        let b = C::new(-0.5, 3.0);
        assert_eq!(a + b, C::new(1.0, 0.75));
        assert_eq!(a - b, C::new(2.0, -5.25));
        let prod = a * b;
        // (1.5 - 2.25i)(-0.5 + 3i) = -0.75 + 4.5i + 1.125i + 6.75 = 6.0 + 5.625i
        assert!((prod.re - 6.0).abs() < 1e-14);
        assert!((prod.im - 5.625).abs() < 1e-14);
    }

    #[test]
    fn division_inverts_multiplication() {
        let a = C::new(2.0, -7.0);
        let b = C::new(-3.0, 0.25);
        let q = (a * b) / b;
        assert!((q - a).modulus() < 1e-13);
    }

    #[test]
    fn recip_is_stable_for_skewed_magnitudes() {
        let a = C::new(1e-200, 1e200);
        let r = a.recip();
        let check = a * r;
        assert!((check.re - 1.0).abs() < 1e-12);
        assert!(check.im.abs() < 1e-12);
    }

    #[test]
    fn sqrt_squares_back() {
        for &(re, im) in &[
            (4.0, 0.0),
            (0.0, 2.0),
            (-1.0, 0.0),
            (3.0, -4.0),
            (-5.0, 12.0),
        ] {
            let z = C::new(re, im);
            let s = z.sqrt();
            assert!((s * s - z).modulus() < 1e-12, "sqrt failed for {z:?}");
            // principal branch: non-negative real part
            assert!(s.re >= -1e-15);
        }
    }

    #[test]
    fn exp_and_cis() {
        let z = C::new(0.0, std::f64::consts::PI);
        let e = z.exp();
        assert!((e.re + 1.0).abs() < 1e-14);
        assert!(e.im.abs() < 1e-14);
        let c = C::cis(std::f64::consts::FRAC_PI_2);
        assert!((c - C::i()).modulus() < 1e-15);
    }

    #[test]
    fn mul_i_rotates() {
        let z = C::new(2.0, 3.0);
        assert_eq!(z.mul_i(), C::new(-3.0, 2.0));
        assert_eq!(z.mul_i(), z * C::i());
    }

    #[test]
    fn arg_and_modulus() {
        let z = C::new(0.0, 2.0);
        assert!((z.arg() - std::f64::consts::FRAC_PI_2).abs() < 1e-15);
        assert_eq!(z.modulus(), 2.0);
        assert_eq!(z.modulus_sqr(), 4.0);
    }

    #[test]
    fn sum_iterator() {
        let v = vec![C::new(1.0, 1.0); 10];
        let s: C = v.into_iter().sum();
        assert_eq!(s, C::new(10.0, 10.0));
    }
}
