//! Random matrices and vectors for tests, benchmarks and randomized
//! compression (range finders).

use crate::dense::DenseMatrix;
use crate::scalar::{RealScalar, Scalar};
use rand::Rng;

/// Draw a scalar with independent entries uniform in `[-1, 1]` (real and,
/// when applicable, imaginary part).
pub fn random_scalar<T: Scalar, R: Rng + ?Sized>(rng: &mut R) -> T {
    let re = T::Real::from_f64_real(rng.gen_range(-1.0..1.0));
    if T::IS_COMPLEX {
        let im = T::Real::from_f64_real(rng.gen_range(-1.0..1.0));
        T::from_parts(re, im)
    } else {
        T::from_real(re)
    }
}

/// A `rows x cols` matrix with independent uniform `[-1, 1]` entries.
pub fn random_matrix<T: Scalar, R: Rng + ?Sized>(
    rng: &mut R,
    rows: usize,
    cols: usize,
) -> DenseMatrix<T> {
    DenseMatrix::from_fn(rows, cols, |_, _| random_scalar::<T, _>(rng))
}

/// A random vector with independent uniform `[-1, 1]` entries.
pub fn random_vector<T: Scalar, R: Rng + ?Sized>(rng: &mut R, len: usize) -> Vec<T> {
    (0..len).map(|_| random_scalar::<T, _>(rng)).collect()
}

/// A standard-normal scalar (Box–Muller), used by the randomized range
/// finder where Gaussian test matrices have the strongest guarantees.
pub fn gaussian_scalar<T: Scalar, R: Rng + ?Sized>(rng: &mut R) -> T {
    let normal = |rng: &mut R| -> f64 {
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    };
    let re = T::Real::from_f64_real(normal(rng));
    if T::IS_COMPLEX {
        let im = T::Real::from_f64_real(normal(rng));
        T::from_parts(re, im)
    } else {
        T::from_real(re)
    }
}

/// A `rows x cols` Gaussian random matrix.
pub fn gaussian_matrix<T: Scalar, R: Rng + ?Sized>(
    rng: &mut R,
    rows: usize,
    cols: usize,
) -> DenseMatrix<T> {
    DenseMatrix::from_fn(rows, cols, |_, _| gaussian_scalar::<T, _>(rng))
}

/// A random diagonally dominant matrix (always invertible), handy for solver
/// tests that need a well-conditioned coefficient matrix.
pub fn random_diag_dominant<T: Scalar, R: Rng + ?Sized>(rng: &mut R, n: usize) -> DenseMatrix<T> {
    let mut a: DenseMatrix<T> = random_matrix(rng, n, n);
    let shift = T::from_f64(n as f64 + 1.0);
    for i in 0..n {
        a[(i, i)] += shift;
    }
    a
}

/// A random matrix of exact rank `r`: the product of `rows x r` and `r x cols`
/// random factors.  Used to test low-rank compression routines.
pub fn random_low_rank<T: Scalar, R: Rng + ?Sized>(
    rng: &mut R,
    rows: usize,
    cols: usize,
    rank: usize,
) -> DenseMatrix<T> {
    let u: DenseMatrix<T> = gaussian_matrix(rng, rows, rank);
    let v: DenseMatrix<T> = gaussian_matrix(rng, rank, cols);
    u.matmul(&v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Complex64;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_matrix_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let a: DenseMatrix<f64> = random_matrix(&mut rng, 20, 20);
        assert!(a.data().iter().all(|&x| (-1.0..=1.0).contains(&x)));
    }

    #[test]
    fn complex_random_has_imaginary_part() {
        let mut rng = StdRng::seed_from_u64(2);
        let a: DenseMatrix<Complex64> = random_matrix(&mut rng, 10, 10);
        assert!(a.data().iter().any(|z| z.im != 0.0));
    }

    #[test]
    fn gaussian_moments_roughly_standard() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 20_000;
        let v: Vec<f64> = (0..n)
            .map(|_| gaussian_scalar::<f64, _>(&mut rng))
            .collect();
        let mean = v.iter().sum::<f64>() / n as f64;
        let var = v.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn diag_dominant_is_invertible() {
        let mut rng = StdRng::seed_from_u64(4);
        let a: DenseMatrix<f64> = random_diag_dominant(&mut rng, 15);
        assert!(crate::lu::LuFactor::new(&a).is_ok());
    }

    #[test]
    fn low_rank_has_requested_rank() {
        let mut rng = StdRng::seed_from_u64(5);
        let a: DenseMatrix<f64> = random_low_rank(&mut rng, 12, 9, 3);
        let sv = crate::svd::singular_values(&a);
        assert!(sv[2] > 1e-8);
        assert!(sv[3] < 1e-10 * sv[0].max(1.0));
    }
}
