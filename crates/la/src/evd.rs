//! Dense Hermitian eigendecomposition (LAPACK `heevd`-style, QR flavour).
//!
//! The pipeline mirrors the classic two-stage LAPACK design:
//!
//! 1. [`tridiagonalize`] reduces a Hermitian matrix to real symmetric
//!    tridiagonal form `A = Q T Q^H` with blocked Householder reflectors
//!    (the `latrd` panel scheme: per-panel `V`/`W` accumulation followed by
//!    a rank-`2k` GEMM trailing update, so most flops land in level-3 BLAS);
//! 2. [`steqr`] diagonalizes the tridiagonal matrix with implicit-shift QL
//!    iteration (Wilkinson shift), optionally accumulating the rotations
//!    into an eigenvector matrix;
//! 3. [`symmetric_evd`] chains the two and returns eigenvalues sorted
//!    ascending with a deterministic tie-break, plus orthonormal
//!    eigenvectors.
//!
//! Everything is sequential with fixed reduction orders (the only threaded
//! kernel reached is [`gemm`], whose tiling depends only on shapes), so
//! results are bitwise identical at any thread count — the same determinism
//! contract the factorization stack honours.
//!
//! Failure modes are typed: non-square input is a
//! [`HodlrError::DimensionMismatch`], QL stagnation is a
//! [`HodlrError::NonConvergence`] carrying the iteration count.

use crate::blas::{axpy_slice, dot_conj, gemm, gemv, Op};
use crate::dense::DenseMatrix;
use crate::error::HodlrError;
use crate::scalar::{RealScalar, Scalar};

/// Panel width for the blocked tridiagonalization (LAPACK `NB`).
const TRIDIAG_BLOCK: usize = 32;
/// Maximum implicit-shift QL iterations per eigenvalue before giving up.
const STEQR_MAX_ITERS: usize = 30;

/// `|a| * sign(b)` with `sign(0) = +1` (Fortran `SIGN`).
#[inline]
pub(crate) fn sign_to<R: RealScalar>(a: R, b: R) -> R {
    if b >= R::zero() {
        a.abs_real()
    } else {
        -a.abs_real()
    }
}

/// Generate an elementary Householder reflector `H = I - tau * v * v^H`
/// (with `v[0] = 1` implicit) such that `H^H * [alpha; x] = [beta; 0]` and
/// `beta` is real.  On exit `x` holds `v[1..]`; returns `(beta, tau)`.
///
/// This is LAPACK `larfg` without the extreme-scale rescaling loop (the
/// workspace never feeds it subnormal-magnitude columns).
pub(crate) fn larfg<T: Scalar>(alpha: T, x: &mut [T]) -> (T::Real, T) {
    let xnorm = crate::norms::norm2(x);
    if xnorm == T::Real::zero() && alpha.imag() == T::Real::zero() {
        return (alpha.real(), T::zero());
    }
    let full = alpha.abs().hypot(xnorm);
    let beta = -sign_to(full, alpha.real());
    let tau = T::from_parts((beta - alpha.real()) / beta, -alpha.imag() / beta);
    let scale = (alpha - T::from_real(beta)).recip();
    for xi in x.iter_mut() {
        *xi *= scale;
    }
    (beta, tau)
}

/// Result of [`tridiagonalize`]: `A = Q * T * Q^H` with `T` real symmetric
/// tridiagonal.
#[derive(Debug, Clone)]
pub struct Tridiagonal<T: Scalar> {
    /// Unitary factor (`n x n`), the accumulated Householder reflectors.
    pub q: DenseMatrix<T>,
    /// Diagonal of `T` (length `n`, real even for complex input).
    pub diag: Vec<T::Real>,
    /// Subdiagonal of `T` (length `n - 1`).
    pub sub: Vec<T::Real>,
}

/// State shared by the blocked and unblocked reduction sweeps.
struct TridiagScratch<T: Scalar> {
    e: Vec<T::Real>,
    tau: Vec<T>,
}

/// Reduce a Hermitian matrix to real symmetric tridiagonal form
/// `A = Q T Q^H` via blocked Householder reflectors.
///
/// Only the lower triangle of `a` is referenced; the strict upper triangle
/// is rebuilt from it, so slightly non-Hermitian input is projected onto
/// its Hermitian part the same way LAPACK's `UPLO='L'` drivers behave.
///
/// # Errors
/// [`HodlrError::DimensionMismatch`] when `a` is not square.
pub fn tridiagonalize<T: Scalar>(a: &DenseMatrix<T>) -> Result<Tridiagonal<T>, HodlrError> {
    if a.rows() != a.cols() {
        return Err(HodlrError::dims(
            "hermitian tridiagonalization input (square matrix required)",
            a.rows(),
            a.cols(),
        ));
    }
    let n = a.rows();
    if n == 0 {
        return Ok(Tridiagonal {
            q: DenseMatrix::identity(0),
            diag: Vec::new(),
            sub: Vec::new(),
        });
    }
    // Working copy, rebuilt as exactly Hermitian from the lower triangle.
    let mut work = DenseMatrix::from_fn(n, n, |i, j| {
        if i > j {
            a[(i, j)]
        } else if i == j {
            T::from_real(a[(i, i)].real())
        } else {
            a[(j, i)].conj()
        }
    });
    let mut scratch = TridiagScratch {
        e: vec![T::Real::zero(); n.saturating_sub(1)],
        tau: vec![T::zero(); n.saturating_sub(1)],
    };

    let mut k0 = 0usize;
    if n >= 2 * TRIDIAG_BLOCK {
        let mut w = DenseMatrix::<T>::zeros(n, TRIDIAG_BLOCK);
        while n - k0 > 2 * TRIDIAG_BLOCK {
            latrd_panel(&mut work, k0, TRIDIAG_BLOCK, &mut w, &mut scratch);
            k0 += TRIDIAG_BLOCK;
        }
    }
    tridiag_unblocked(&mut work, k0, &mut scratch);

    let q = accumulate_q(&work, &scratch.tau);
    let diag = (0..n).map(|i| work[(i, i)].real()).collect();
    Ok(Tridiagonal {
        q,
        diag,
        sub: scratch.e,
    })
}

/// One `latrd`-style panel: compute `nb` reflectors starting at column `k0`
/// together with their `W` vectors, then apply the aggregated rank-`2k`
/// update to the trailing block with two GEMMs.
fn latrd_panel<T: Scalar>(
    a: &mut DenseMatrix<T>,
    k0: usize,
    nb: usize,
    w: &mut DenseMatrix<T>,
    scratch: &mut TridiagScratch<T>,
) {
    let n = a.rows();
    w.fill(T::zero());
    for i in 0..nb {
        let j = k0 + i;
        // Apply the panel's previous reflectors to column j:
        // A[j.., j] -= V * conj(W[j, ..i]) + W * conj(V[j, ..i]).
        if i > 0 {
            let rows = n - j;
            let mut acol = a.col(j)[j..].to_vec();
            let wrow: Vec<T> = (0..i).map(|l| w[(j, l)].conj()).collect();
            gemv(
                -T::one(),
                a.block(j, k0, rows, i),
                Op::None,
                &wrow,
                T::one(),
                &mut acol,
            );
            let vrow: Vec<T> = (0..i).map(|l| a[(j, k0 + l)].conj()).collect();
            gemv(
                -T::one(),
                w.block(j, 0, rows, i),
                Op::None,
                &vrow,
                T::one(),
                &mut acol,
            );
            a.col_mut(j)[j..].copy_from_slice(&acol);
            let djj = a[(j, j)].real();
            a[(j, j)] = T::from_real(djj);
        }
        // Generate the reflector annihilating A[j+2.., j].
        let (beta, tau_i) = {
            let col = a.col_mut(j);
            let (head, tail) = col[j + 1..].split_at_mut(1);
            larfg(head[0], tail)
        };
        scratch.e[j] = beta;
        scratch.tau[j] = tau_i;
        a[(j + 1, j)] = T::one();
        // W[j+1.., i] = tau * (A22 v - V (W^H v) - W (V^H v)) + correction.
        let tn = n - (j + 1);
        let v: Vec<T> = a.col(j)[j + 1..].to_vec();
        let mut wcol = vec![T::zero(); tn];
        gemv(
            T::one(),
            a.block(j + 1, j + 1, tn, tn),
            Op::None,
            &v,
            T::zero(),
            &mut wcol,
        );
        if i > 0 {
            let mut t = vec![T::zero(); i];
            gemv(
                T::one(),
                w.block(j + 1, 0, tn, i),
                Op::ConjTrans,
                &v,
                T::zero(),
                &mut t,
            );
            gemv(
                -T::one(),
                a.block(j + 1, k0, tn, i),
                Op::None,
                &t,
                T::one(),
                &mut wcol,
            );
            gemv(
                T::one(),
                a.block(j + 1, k0, tn, i),
                Op::ConjTrans,
                &v,
                T::zero(),
                &mut t,
            );
            gemv(
                -T::one(),
                w.block(j + 1, 0, tn, i),
                Op::None,
                &t,
                T::one(),
                &mut wcol,
            );
        }
        for x in wcol.iter_mut() {
            *x *= tau_i;
        }
        let half = T::Real::from_f64_real(0.5);
        let corr = -(tau_i.scale(half)) * dot_conj(&wcol, &v);
        axpy_slice(corr, &v, &mut wcol);
        w.col_mut(i)[j + 1..].copy_from_slice(&wcol);
    }
    // Rank-2k trailing update: A22 -= V2 W2^H + W2 V2^H.
    let k2 = k0 + nb;
    let q = n - k2;
    if q > 0 {
        let v2 = a.sub_matrix(k2, k0, q, nb);
        gemm(
            -T::one(),
            v2.as_ref(),
            Op::None,
            w.block(k2, 0, q, nb),
            Op::ConjTrans,
            T::one(),
            a.block_mut(k2, k2, q, q),
        );
        gemm(
            -T::one(),
            w.block(k2, 0, q, nb),
            Op::None,
            v2.as_ref(),
            Op::ConjTrans,
            T::one(),
            a.block_mut(k2, k2, q, q),
        );
    }
}

/// Unblocked `hetd2`-style sweep from column `k0` to the end, applying each
/// rank-2 update immediately.
fn tridiag_unblocked<T: Scalar>(
    a: &mut DenseMatrix<T>,
    k0: usize,
    scratch: &mut TridiagScratch<T>,
) {
    let n = a.rows();
    for j in k0..n.saturating_sub(1) {
        let (beta, tau_j) = {
            let col = a.col_mut(j);
            let (head, tail) = col[j + 1..].split_at_mut(1);
            larfg(head[0], tail)
        };
        scratch.e[j] = beta;
        scratch.tau[j] = tau_j;
        a[(j + 1, j)] = T::one();
        if tau_j == T::zero() {
            continue;
        }
        let tn = n - (j + 1);
        let v: Vec<T> = a.col(j)[j + 1..].to_vec();
        // w = tau A v;  w -= (tau/2)(w^H v) v;  A -= v w^H + w v^H.
        let mut wv = vec![T::zero(); tn];
        gemv(
            T::one(),
            a.block(j + 1, j + 1, tn, tn),
            Op::None,
            &v,
            T::zero(),
            &mut wv,
        );
        for x in wv.iter_mut() {
            *x *= tau_j;
        }
        let half = T::Real::from_f64_real(0.5);
        let corr = -(tau_j.scale(half)) * dot_conj(&wv, &v);
        axpy_slice(corr, &v, &mut wv);
        for c in 0..tn {
            let wc = wv[c].conj();
            let vc = v[c].conj();
            let col = &mut a.col_mut(j + 1 + c)[j + 1..];
            for r in 0..tn {
                col[r] = col[r] - v[r] * wc - wv[r] * vc;
            }
        }
    }
}

/// Accumulate `Q = H_0 H_1 ... H_{n-2}` from the reflector vectors stored
/// below the subdiagonal of `work` (backward accumulation, `ungtr`-style).
fn accumulate_q<T: Scalar>(work: &DenseMatrix<T>, tau: &[T]) -> DenseMatrix<T> {
    let n = work.rows();
    let mut q = DenseMatrix::identity(n);
    for j in (0..n.saturating_sub(1)).rev() {
        let tau_j = tau[j];
        if tau_j == T::zero() {
            continue;
        }
        let v: Vec<T> = work.col(j)[j + 1..].to_vec();
        let bl = n - (j + 1);
        let mut t = vec![T::zero(); bl];
        gemv(
            T::one(),
            q.block(j + 1, j + 1, bl, bl),
            Op::ConjTrans,
            &v,
            T::zero(),
            &mut t,
        );
        // gemv gave t = Q^H v; the update needs (v^H Q)[c] = conj(t[c]).
        for (c, &tc) in t.iter().enumerate() {
            let alpha = -(tau_j * tc.conj());
            if alpha == T::zero() {
                continue;
            }
            axpy_slice(alpha, &v, &mut q.col_mut(j + 1 + c)[j + 1..]);
        }
    }
    q
}

/// Implicit-shift QL iteration on a real symmetric tridiagonal matrix
/// (EISPACK `tql2` / LAPACK `steqr`).
///
/// On entry `d` holds the diagonal and `e` the subdiagonal (`d.len() - 1`
/// entries).  On successful exit `d` holds the eigenvalues sorted ascending
/// (deterministic index tie-break), `e` is zeroed, and — when `z` is
/// provided — the rotations have been accumulated into `z`'s columns, so
/// passing the `Q` of [`tridiagonalize`] yields eigenvectors of the
/// original matrix and passing the identity yields eigenvectors of the
/// tridiagonal matrix itself.
///
/// # Errors
/// * [`HodlrError::DimensionMismatch`] when `e`/`z` shapes disagree with
///   `d`;
/// * [`HodlrError::NonConvergence`] when any eigenvalue fails to deflate
///   within 30 sweeps; the error reports the total rotation-sweep count.
pub fn steqr<T: Scalar>(
    d: &mut [T::Real],
    e: &mut [T::Real],
    mut z: Option<&mut DenseMatrix<T>>,
) -> Result<(), HodlrError> {
    let n = d.len();
    if e.len() + 1 != n && !(n == 0 && e.is_empty()) {
        return Err(HodlrError::dims(
            "steqr subdiagonal length (must be diag length - 1)",
            n.saturating_sub(1),
            e.len(),
        ));
    }
    if let Some(zm) = z.as_ref() {
        if zm.cols() != n {
            return Err(HodlrError::dims(
                "steqr rotation accumulator columns",
                n,
                zm.cols(),
            ));
        }
    }
    if n <= 1 {
        return Ok(());
    }

    let zero = T::Real::zero();
    let one = T::Real::one();
    let two = T::Real::from_f64_real(2.0);

    // QL deflates at the *top* of the active block, so it converges
    // fastest when the small diagonal entries sit there; on matrices
    // graded the other way (large entries at the top — e.g. the
    // tridiagonalization of a kernel covariance whose trailing pivots
    // collapse onto the nugget) the EISPACK-style loop below can hit its
    // iteration cap.  LAPACK's `steqr` switches to QR for that grading;
    // flipping with the exchange permutation `J` achieves the same in
    // O(n) plus one column reversal: `J T J = (J Q) Λ (J Q)ᴴ`, so seeding
    // the accumulator with reversed columns makes the accumulated product
    // come out as the caller expects, and the ascending sort at the end
    // restores a deterministic order.  `e` is zeroed on exit either way.
    if d[0].abs_real() > d[n - 1].abs_real() {
        d.reverse();
        e.reverse();
        if let Some(zm) = z.as_mut() {
            for j in 0..n / 2 {
                let jj = n - 1 - j;
                for i in 0..zm.rows() {
                    let tmp = zm[(i, j)];
                    zm[(i, j)] = zm[(i, jj)];
                    zm[(i, jj)] = tmp;
                }
            }
        }
    }

    // Internal subdiagonal with a trailing zero sentinel.
    let mut ee: Vec<T::Real> = Vec::with_capacity(n);
    ee.extend_from_slice(e);
    ee.push(zero);

    let mut total_sweeps = 0usize;
    for l in 0..n {
        let mut iter = 0usize;
        loop {
            // Find the first negligible subdiagonal at or after l.
            let mut m = l;
            while m < n - 1 {
                let dd = d[m].abs_real() + d[m + 1].abs_real();
                if ee[m].abs_real() <= T::Real::EPSILON * dd {
                    break;
                }
                m += 1;
            }
            if m == l {
                break;
            }
            if iter == STEQR_MAX_ITERS {
                let scale = d
                    .iter()
                    .chain(ee.iter())
                    .fold(zero, |acc, &x| acc.max_real(x.abs_real()))
                    .max_real(T::Real::EPSILON);
                return Err(HodlrError::NonConvergence {
                    iterations: total_sweeps,
                    relative_residual: (ee[l].abs_real() / scale).to_f64(),
                    context: "symmetric tridiagonal QL iteration".to_string(),
                });
            }
            iter += 1;
            total_sweeps += 1;
            // Wilkinson shift from the leading 2x2 of the active block.
            let mut g = (d[l + 1] - d[l]) / (two * ee[l]);
            let mut r = g.hypot(one);
            g = d[m] - d[l] + ee[l] / (g + sign_to(r, g));
            let mut s = one;
            let mut c = one;
            let mut p = zero;
            let mut underflow_break = false;
            for i in (l..m).rev() {
                let f = s * ee[i];
                let b = c * ee[i];
                r = f.hypot(g);
                ee[i + 1] = r;
                if r == zero {
                    // Recover from underflow by deflating early.
                    d[i + 1] -= p;
                    ee[m] = zero;
                    underflow_break = true;
                    break;
                }
                s = f / r;
                c = g / r;
                g = d[i + 1] - p;
                r = (d[i] - g) * s + two * c * b;
                p = s * r;
                d[i + 1] = g + p;
                g = c * r - b;
                if let Some(ref mut zm) = z {
                    rotate_cols(zm, i, c, s);
                }
            }
            if underflow_break {
                continue;
            }
            d[l] -= p;
            ee[l] = g;
            ee[m] = zero;
        }
    }

    // Sort ascending with a deterministic index tie-break.
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| {
        d[a].partial_cmp(&d[b])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    let sorted: Vec<T::Real> = idx.iter().map(|&i| d[i]).collect();
    d.copy_from_slice(&sorted);
    e.fill(zero);
    if let Some(zm) = z {
        let permuted = DenseMatrix::from_fn(zm.rows(), n, |i, j| zm[(i, idx[j])]);
        *zm = permuted;
    }
    Ok(())
}

/// Apply the real Givens rotation `(c, s)` to columns `i` and `i + 1`.
fn rotate_cols<T: Scalar>(z: &mut DenseMatrix<T>, i: usize, c: T::Real, s: T::Real) {
    let (mut left, mut right) = z.split_cols_mut(i + 1);
    let ci = left.col_mut(i);
    let cj = right.col_mut(0);
    for (a, b) in ci.iter_mut().zip(cj.iter_mut()) {
        let f = *b;
        *b = a.scale(s) + f.scale(c);
        *a = a.scale(c) - f.scale(s);
    }
}

/// Full eigendecomposition `A = V diag(values) V^H` of a Hermitian matrix.
#[derive(Debug, Clone)]
pub struct SymmetricEvd<T: Scalar> {
    /// Eigenvalues sorted ascending (real even for complex input).
    pub values: Vec<T::Real>,
    /// Orthonormal eigenvectors, one per column, matching `values`.
    pub vectors: DenseMatrix<T>,
}

impl<T: Scalar> SymmetricEvd<T> {
    /// Rebuild `V diag(values) V^H` (test/diagnostic helper).
    pub fn reconstruct(&self) -> DenseMatrix<T> {
        let n = self.vectors.rows();
        let k = self.values.len();
        let scaled = DenseMatrix::from_fn(n, k, |i, j| self.vectors[(i, j)].scale(self.values[j]));
        let mut out = DenseMatrix::zeros(n, n);
        gemm(
            T::one(),
            scaled.as_ref(),
            Op::None,
            self.vectors.as_ref(),
            Op::ConjTrans,
            T::zero(),
            out.as_mut(),
        );
        out
    }
}

/// Eigendecomposition of a Hermitian matrix via Householder
/// tridiagonalization + implicit-shift QL iteration.
///
/// Only the lower triangle of `a` is referenced (see [`tridiagonalize`]).
/// Eigenvalues come back sorted ascending; eigenvectors are orthonormal to
/// roundoff regardless of eigenvalue clustering (a property the one-sided
/// Jacobi SVD in this crate cannot give for tight clusters).
///
/// # Errors
/// * [`HodlrError::DimensionMismatch`] when `a` is not square;
/// * [`HodlrError::NonConvergence`] from [`steqr`].
pub fn symmetric_evd<T: Scalar>(a: &DenseMatrix<T>) -> Result<SymmetricEvd<T>, HodlrError> {
    let tri = tridiagonalize(a)?;
    let Tridiagonal {
        mut q,
        mut diag,
        mut sub,
    } = tri;
    steqr(&mut diag, &mut sub, Some(&mut q))?;
    Ok(SymmetricEvd {
        values: diag,
        vectors: q,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::gaussian_matrix;
    use crate::Complex64;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn hermitian_from<T: Scalar>(g: &DenseMatrix<T>) -> DenseMatrix<T> {
        let n = g.rows();
        DenseMatrix::from_fn(n, n, |i, j| {
            let x = g[(i, j)] + g[(j, i)].conj();
            if i == j {
                T::from_real(x.real())
            } else {
                x
            }
        })
    }

    fn evd_residual<T: Scalar>(a: &DenseMatrix<T>, evd: &SymmetricEvd<T>) -> f64 {
        let recon = evd.reconstruct();
        let diff = a.sub(&recon);
        (diff.norm_fro() / a.norm_fro().max_real(T::Real::EPSILON)).to_f64()
    }

    fn orthogonality<T: Scalar>(v: &DenseMatrix<T>) -> f64 {
        let n = v.cols();
        let mut gram = DenseMatrix::zeros(n, n);
        gemm(
            T::one(),
            v.as_ref(),
            Op::ConjTrans,
            v.as_ref(),
            Op::None,
            T::zero(),
            gram.as_mut(),
        );
        let eye = DenseMatrix::<T>::identity(n);
        gram.sub(&eye).norm_fro().to_f64()
    }

    #[test]
    fn evd_2x2_known() {
        // [[2, 1], [1, 2]] has eigenvalues 1 and 3.
        let a = DenseMatrix::<f64>::from_fn(2, 2, |i, j| if i == j { 2.0 } else { 1.0 });
        let evd = symmetric_evd(&a).unwrap();
        assert!((evd.values[0] - 1.0).abs() < 1e-14);
        assert!((evd.values[1] - 3.0).abs() < 1e-14);
        assert!(evd_residual(&a, &evd) < 1e-14);
    }

    #[test]
    fn evd_random_real_blocked_path() {
        // n > 2 * TRIDIAG_BLOCK so the latrd panel path is exercised.
        let mut rng = StdRng::seed_from_u64(7);
        let n = 3 * TRIDIAG_BLOCK + 5;
        let g: DenseMatrix<f64> = gaussian_matrix(&mut rng, n, n);
        let a = hermitian_from(&g);
        let evd = symmetric_evd(&a).unwrap();
        assert!(evd_residual(&a, &evd) < 1e-12, "residual too large");
        assert!(orthogonality(&evd.vectors) < 1e-12);
        for w in evd.values.windows(2) {
            assert!(w[0] <= w[1], "eigenvalues not sorted");
        }
    }

    #[test]
    fn evd_random_complex_hermitian() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 40;
        let g: DenseMatrix<Complex64> = gaussian_matrix(&mut rng, n, n);
        let a = hermitian_from(&g);
        let evd = symmetric_evd(&a).unwrap();
        assert!(evd_residual(&a, &evd) < 1e-12);
        assert!(orthogonality(&evd.vectors) < 1e-12);
        // Hermitian eigenvalues are real by construction of the return type;
        // cross-check against the Jacobi SVD's singular values (|lambda|).
        let svd = crate::svd::jacobi_svd(&a);
        let mut abs_eigs: Vec<f64> = evd.values.iter().map(|v| v.abs()).collect();
        abs_eigs.sort_by(|a, b| b.partial_cmp(a).unwrap());
        for (s, l) in svd.sigma.iter().zip(&abs_eigs) {
            assert!((s - l).abs() < 1e-10 * (1.0 + s.abs()), "{s} vs {l}");
        }
    }

    #[test]
    fn tridiagonalize_reconstructs() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 24;
        let g: DenseMatrix<Complex64> = gaussian_matrix(&mut rng, n, n);
        let a = hermitian_from(&g);
        let tri = tridiagonalize(&a).unwrap();
        // Rebuild Q T Q^H.
        let t = DenseMatrix::from_fn(n, n, |i, j| {
            if i == j {
                Complex64::from_real(tri.diag[i])
            } else if i == j + 1 {
                Complex64::from_real(tri.sub[j])
            } else if j == i + 1 {
                Complex64::from_real(tri.sub[i])
            } else {
                Complex64::zero()
            }
        });
        let qt = tri.q.matmul(&t);
        let mut recon = DenseMatrix::zeros(n, n);
        gemm(
            Complex64::one(),
            qt.as_ref(),
            Op::None,
            tri.q.as_ref(),
            Op::ConjTrans,
            Complex64::zero(),
            recon.as_mut(),
        );
        let rel = (a.sub(&recon).norm_fro() / a.norm_fro()).to_f64();
        assert!(rel < 1e-13, "tridiagonal reconstruction residual {rel}");
        assert!(orthogonality(&tri.q) < 1e-13);
    }

    #[test]
    fn steqr_known_tridiagonal() {
        // Second-difference matrix: eigenvalues 2 - 2 cos(k pi / (n + 1)).
        let n = 16usize;
        let mut d = vec![2.0f64; n];
        let mut e = vec![-1.0f64; n - 1];
        let mut z = DenseMatrix::<f64>::identity(n);
        steqr(&mut d, &mut e, Some(&mut z)).unwrap();
        for (k, &lam) in d.iter().enumerate() {
            let exact =
                2.0 - 2.0 * ((k + 1) as f64 * std::f64::consts::PI / (n as f64 + 1.0)).cos();
            assert!((lam - exact).abs() < 1e-12, "{lam} vs {exact}");
        }
        assert!(orthogonality(&z) < 1e-13);
    }

    #[test]
    fn non_square_input_is_typed_error() {
        let a = DenseMatrix::<f64>::zeros(3, 4);
        match symmetric_evd(&a) {
            Err(HodlrError::DimensionMismatch { .. }) => {}
            other => panic!("expected DimensionMismatch, got {other:?}"),
        }
        match tridiagonalize(&a) {
            Err(HodlrError::DimensionMismatch { .. }) => {}
            other => panic!("expected DimensionMismatch, got {other:?}"),
        }
    }

    #[test]
    fn steqr_shape_checks() {
        let mut d = vec![1.0f64; 4];
        let mut e = vec![0.0f64; 4];
        match steqr::<f64>(&mut d, &mut e, None) {
            Err(HodlrError::DimensionMismatch { .. }) => {}
            other => panic!("expected DimensionMismatch, got {other:?}"),
        }
    }

    #[test]
    fn evd_is_bitwise_reproducible() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 48;
        let g: DenseMatrix<f64> = gaussian_matrix(&mut rng, n, n);
        let a = hermitian_from(&g);
        let e1 = symmetric_evd(&a).unwrap();
        let e2 = symmetric_evd(&a).unwrap();
        assert_eq!(
            e1.values.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            e2.values.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
        let bits = |m: &DenseMatrix<f64>| m.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&e1.vectors), bits(&e2.vectors));
    }
}
