//! The [`Scalar`] and [`RealScalar`] traits.
//!
//! Every algorithm in the workspace is generic over a field element `T:
//! Scalar`.  Real fields (`f32`, `f64`) and complex fields
//! ([`Complex<f32>`](crate::Complex), [`Complex<f64>`](crate::Complex)) are
//! supported.  The design mirrors what LAPACK calls `S`/`D`/`C`/`Z` types.

use crate::complex::Complex;
use std::fmt::{Debug, Display};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A real scalar: `f32` or `f64`.
///
/// This is the type of norms, singular values, tolerances and absolute
/// values.  It is itself a [`Scalar`] whose `Real` associated type is itself.
pub trait RealScalar: Scalar<Real = Self> + PartialOrd + Into<f64> + From<f32> {
    /// Machine epsilon of the floating-point format.
    const EPSILON: Self;
    /// The largest finite value.
    const MAX: Self;
    /// Positive infinity.
    const INFINITY: Self;
    /// Archimedes' constant.
    const PI: Self;

    /// Convert from `f64`, rounding to the nearest representable value.
    fn from_f64_real(x: f64) -> Self;
    /// Convert to `f64` exactly (both supported formats embed in f64).
    fn to_f64(self) -> f64;
    /// `self^exp` for integer exponents.
    fn powi(self, exp: i32) -> Self;
    /// Natural logarithm.
    fn ln(self) -> Self;
    /// Exponential.
    fn exp(self) -> Self;
    /// Square root (must be non-negative).
    fn sqrt_real(self) -> Self;
    /// Maximum of two values.
    fn max_real(self, other: Self) -> Self;
    /// Minimum of two values.
    fn min_real(self, other: Self) -> Self;
    /// Absolute value.
    fn abs_real(self) -> Self;
    /// `hypot(self, other)`: `sqrt(self^2 + other^2)` without overflow.
    fn hypot(self, other: Self) -> Self;
    /// Sine.
    fn sin(self) -> Self;
    /// Cosine.
    fn cos(self) -> Self;
    /// Arc tangent of `self / other` using signs to find the quadrant.
    fn atan2(self, other: Self) -> Self;
}

macro_rules! impl_real_scalar {
    ($t:ty) => {
        impl RealScalar for $t {
            const EPSILON: Self = <$t>::EPSILON;
            const MAX: Self = <$t>::MAX;
            const INFINITY: Self = <$t>::INFINITY;
            const PI: Self = std::f64::consts::PI as $t;

            #[inline]
            fn from_f64_real(x: f64) -> Self {
                x as $t
            }
            #[inline]
            fn to_f64(self) -> f64 {
                self as f64
            }
            #[inline]
            fn powi(self, exp: i32) -> Self {
                <$t>::powi(self, exp)
            }
            #[inline]
            fn ln(self) -> Self {
                <$t>::ln(self)
            }
            #[inline]
            fn exp(self) -> Self {
                <$t>::exp(self)
            }
            #[inline]
            fn sqrt_real(self) -> Self {
                <$t>::sqrt(self)
            }
            #[inline]
            fn max_real(self, other: Self) -> Self {
                <$t>::max(self, other)
            }
            #[inline]
            fn min_real(self, other: Self) -> Self {
                <$t>::min(self, other)
            }
            #[inline]
            fn abs_real(self) -> Self {
                <$t>::abs(self)
            }
            #[inline]
            fn hypot(self, other: Self) -> Self {
                <$t>::hypot(self, other)
            }
            #[inline]
            fn sin(self) -> Self {
                <$t>::sin(self)
            }
            #[inline]
            fn cos(self) -> Self {
                <$t>::cos(self)
            }
            #[inline]
            fn atan2(self, other: Self) -> Self {
                <$t>::atan2(self, other)
            }
        }
    };
}

impl_real_scalar!(f32);
impl_real_scalar!(f64);

/// A field element: real or complex floating point.
///
/// The trait collects the arithmetic, conversion and conjugation operations
/// the dense and hierarchical solvers need.  All methods are total; numeric
/// failure modes (overflow, NaN) follow IEEE-754 semantics of the underlying
/// primitive type.
pub trait Scalar:
    Copy
    + Clone
    + Debug
    + Display
    + Default
    + PartialEq
    + Send
    + Sync
    + 'static
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
    + Sum<Self>
{
    /// The associated real type (`f32` or `f64`).
    type Real: RealScalar;

    /// `true` for complex fields, `false` for real fields.
    const IS_COMPLEX: bool;
    /// Additive identity.
    fn zero() -> Self;
    /// Multiplicative identity.
    fn one() -> Self;
    /// Embed a real value into the field.
    fn from_real(re: Self::Real) -> Self;
    /// Build from real and imaginary parts (imaginary part is ignored for
    /// real fields).
    fn from_parts(re: Self::Real, im: Self::Real) -> Self;
    /// Embed an `f64` into the field (lossy for `f32`-based fields).
    fn from_f64(x: f64) -> Self;
    /// Real part.
    fn real(self) -> Self::Real;
    /// Imaginary part (zero for real fields).
    fn imag(self) -> Self::Real;
    /// Complex conjugate (identity for real fields).
    fn conj(self) -> Self;
    /// Modulus |x|.
    fn abs(self) -> Self::Real;
    /// Squared modulus |x|^2, cheaper than `abs` for complex numbers.
    fn abs_sqr(self) -> Self::Real;
    /// Principal square root.
    fn sqrt(self) -> Self;
    /// Multiplicative inverse.
    fn recip(self) -> Self;
    /// Fused multiply-add `self * a + b` (used by the GEMM micro-kernel).
    fn mul_add(self, a: Self, b: Self) -> Self;
    /// `true` when both parts are finite.
    fn is_finite(self) -> bool;
    /// Scale by a real factor.
    fn scale(self, factor: Self::Real) -> Self;
    /// Machine epsilon of the underlying real format.
    fn epsilon() -> Self::Real {
        Self::Real::EPSILON
    }
}

impl Scalar for f64 {
    type Real = f64;
    const IS_COMPLEX: bool = false;

    #[inline]
    fn zero() -> Self {
        0.0
    }
    #[inline]
    fn one() -> Self {
        1.0
    }
    #[inline]
    fn from_real(re: f64) -> Self {
        re
    }
    #[inline]
    fn from_parts(re: f64, _im: f64) -> Self {
        re
    }
    #[inline]
    fn from_f64(x: f64) -> Self {
        x
    }
    #[inline]
    fn real(self) -> f64 {
        self
    }
    #[inline]
    fn imag(self) -> f64 {
        0.0
    }
    #[inline]
    fn conj(self) -> Self {
        self
    }
    #[inline]
    fn abs(self) -> f64 {
        f64::abs(self)
    }
    #[inline]
    fn abs_sqr(self) -> f64 {
        self * self
    }
    #[inline]
    fn sqrt(self) -> Self {
        f64::sqrt(self)
    }
    #[inline]
    fn recip(self) -> Self {
        1.0 / self
    }
    #[inline]
    fn mul_add(self, a: Self, b: Self) -> Self {
        f64::mul_add(self, a, b)
    }
    #[inline]
    fn is_finite(self) -> bool {
        f64::is_finite(self)
    }
    #[inline]
    fn scale(self, factor: f64) -> Self {
        self * factor
    }
}

impl Scalar for f32 {
    type Real = f32;
    const IS_COMPLEX: bool = false;

    #[inline]
    fn zero() -> Self {
        0.0
    }
    #[inline]
    fn one() -> Self {
        1.0
    }
    #[inline]
    fn from_real(re: f32) -> Self {
        re
    }
    #[inline]
    fn from_parts(re: f32, _im: f32) -> Self {
        re
    }
    #[inline]
    fn from_f64(x: f64) -> Self {
        x as f32
    }
    #[inline]
    fn real(self) -> f32 {
        self
    }
    #[inline]
    fn imag(self) -> f32 {
        0.0
    }
    #[inline]
    fn conj(self) -> Self {
        self
    }
    #[inline]
    fn abs(self) -> f32 {
        f32::abs(self)
    }
    #[inline]
    fn abs_sqr(self) -> f32 {
        self * self
    }
    #[inline]
    fn sqrt(self) -> Self {
        f32::sqrt(self)
    }
    #[inline]
    fn recip(self) -> Self {
        1.0 / self
    }
    #[inline]
    fn mul_add(self, a: Self, b: Self) -> Self {
        f32::mul_add(self, a, b)
    }
    #[inline]
    fn is_finite(self) -> bool {
        f32::is_finite(self)
    }
    #[inline]
    fn scale(self, factor: f32) -> Self {
        self * factor
    }
}

impl<R: RealScalar> Scalar for Complex<R> {
    type Real = R;
    const IS_COMPLEX: bool = true;

    #[inline]
    fn zero() -> Self {
        Complex::new(R::zero(), R::zero())
    }
    #[inline]
    fn one() -> Self {
        Complex::new(R::one(), R::zero())
    }
    #[inline]
    fn from_real(re: R) -> Self {
        Complex::new(re, R::zero())
    }
    #[inline]
    fn from_parts(re: R, im: R) -> Self {
        Complex::new(re, im)
    }
    #[inline]
    fn from_f64(x: f64) -> Self {
        Complex::new(R::from_f64_real(x), R::zero())
    }
    #[inline]
    fn real(self) -> R {
        self.re
    }
    #[inline]
    fn imag(self) -> R {
        self.im
    }
    #[inline]
    fn conj(self) -> Self {
        Complex::new(self.re, -self.im)
    }
    #[inline]
    fn abs(self) -> R {
        self.re.hypot(self.im)
    }
    #[inline]
    fn abs_sqr(self) -> R {
        self.re * self.re + self.im * self.im
    }
    #[inline]
    fn sqrt(self) -> Self {
        Complex::sqrt(self)
    }
    #[inline]
    fn recip(self) -> Self {
        Complex::recip(self)
    }
    #[inline]
    fn mul_add(self, a: Self, b: Self) -> Self {
        self * a + b
    }
    #[inline]
    fn is_finite(self) -> bool {
        RealScalar::abs_real(self.re) < R::INFINITY && RealScalar::abs_real(self.im) < R::INFINITY
    }
    #[inline]
    fn scale(self, factor: R) -> Self {
        Complex::new(self.re * factor, self.im * factor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Complex64;

    #[test]
    fn real_scalar_basics() {
        assert_eq!(<f64 as Scalar>::zero(), 0.0);
        assert_eq!(<f64 as Scalar>::one(), 1.0);
        assert_eq!(2.0_f64.conj(), 2.0);
        assert_eq!((-3.0_f64).abs(), 3.0);
        assert_eq!(4.0_f64.abs_sqr(), 16.0);
        let is_complex = f64::IS_COMPLEX;
        assert!(!is_complex);
        assert!(<f32 as RealScalar>::EPSILON.to_f64() > <f64 as RealScalar>::EPSILON);
    }

    #[test]
    fn f32_scalar_basics() {
        assert_eq!(<f32 as Scalar>::from_f64(1.5), 1.5_f32);
        assert_eq!(3.0_f32.recip(), 1.0 / 3.0);
        assert_eq!(2.0_f32.scale(0.5), 1.0);
        assert!(2.0_f32.is_finite());
        assert!(!Scalar::is_finite(<f32 as RealScalar>::INFINITY));
    }

    #[test]
    fn complex_scalar_basics() {
        let z = Complex64::new(3.0, 4.0);
        assert_eq!(z.abs(), 5.0);
        assert_eq!(z.abs_sqr(), 25.0);
        assert_eq!(z.conj(), Complex64::new(3.0, -4.0));
        assert_eq!(z.real(), 3.0);
        assert_eq!(z.imag(), 4.0);
        const { assert!(Complex64::IS_COMPLEX) };
        let w = z * z.recip();
        assert!((w - Complex64::new(1.0, 0.0)).abs() < 1e-14);
    }

    #[test]
    fn real_scalar_trig_and_transcendental() {
        assert!((f64::PI.sin()).abs() < 1e-15);
        assert!((f64::PI.cos() + 1.0).abs() < 1e-15);
        assert!((1.0_f64.exp().ln() - 1.0).abs() < 1e-15);
        assert_eq!(2.0_f64.powi(10), 1024.0);
        assert_eq!(3.0_f64.hypot(4.0), 5.0);
        assert!((1.0_f64.atan2(1.0) - f64::PI / 4.0).abs() < 1e-15);
    }

    #[test]
    fn from_parts_real_ignores_imag() {
        assert_eq!(<f64 as Scalar>::from_parts(2.0, 5.0), 2.0);
        let z = <Complex64 as Scalar>::from_parts(2.0, 5.0);
        assert_eq!(z, Complex64::new(2.0, 5.0));
    }
}
