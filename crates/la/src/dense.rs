//! Column-major dense matrices and borrowed strided views.
//!
//! [`DenseMatrix`] owns its storage; [`MatRef`] / [`MatMut`] borrow a
//! rectangular window of some column-major buffer with an explicit leading
//! dimension, exactly like the `(pointer, ld)` convention of BLAS/LAPACK.
//! The HODLR solver relies on views to address sub-blocks of the big
//! concatenated `Ubig`/`Vbig`/`Dbig` matrices without copying.

use crate::scalar::Scalar;

/// An owning, column-major, dense `rows x cols` matrix.
#[derive(Clone, PartialEq)]
pub struct DenseMatrix<T> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: Scalar> DenseMatrix<T> {
    /// A `rows x cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![T::zero(); rows * cols],
        }
    }

    /// The identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = T::one();
        }
        m
    }

    /// Build a matrix by evaluating `f(i, j)` at every entry.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for j in 0..cols {
            for i in 0..rows {
                data.push(f(i, j));
            }
        }
        Self { rows, cols, data }
    }

    /// Wrap an existing column-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_col_major(rows: usize, cols: usize, data: Vec<T>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "column-major buffer has wrong length"
        );
        Self { rows, cols, data }
    }

    /// Build from a row-major nested slice (convenient in tests).
    pub fn from_rows(rows: &[Vec<T>]) -> Self {
        let r = rows.len();
        let c = if r == 0 { 0 } else { rows[0].len() };
        assert!(rows.iter().all(|row| row.len() == c), "ragged rows");
        Self::from_fn(r, c, |i, j| rows[i][j])
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `true` when the matrix has no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows == 0 || self.cols == 0
    }

    /// The underlying column-major buffer.
    #[inline]
    pub fn data(&self) -> &[T] {
        &self.data
    }

    /// Mutable access to the underlying column-major buffer.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consume the matrix, returning its column-major buffer.
    #[inline]
    pub fn into_data(self) -> Vec<T> {
        self.data
    }

    /// Borrow column `j` as a contiguous slice.
    #[inline]
    pub fn col(&self, j: usize) -> &[T] {
        debug_assert!(j < self.cols);
        &self.data[j * self.rows..(j + 1) * self.rows]
    }

    /// Mutably borrow column `j` as a contiguous slice.
    #[inline]
    pub fn col_mut(&mut self, j: usize) -> &mut [T] {
        debug_assert!(j < self.cols);
        &mut self.data[j * self.rows..(j + 1) * self.rows]
    }

    /// Immutable view of the whole matrix.
    #[inline]
    pub fn as_ref(&self) -> MatRef<'_, T> {
        MatRef {
            data: &self.data,
            rows: self.rows,
            cols: self.cols,
            ld: self.rows.max(1),
        }
    }

    /// Mutable view of the whole matrix.
    #[inline]
    pub fn as_mut(&mut self) -> MatMut<'_, T> {
        MatMut {
            ld: self.rows.max(1),
            rows: self.rows,
            cols: self.cols,
            data: &mut self.data,
        }
    }

    /// Immutable view of the sub-block starting at `(row, col)` with shape
    /// `nrows x ncols`.
    pub fn block(&self, row: usize, col: usize, nrows: usize, ncols: usize) -> MatRef<'_, T> {
        self.as_ref().block(row, col, nrows, ncols)
    }

    /// Mutable view of the sub-block starting at `(row, col)` with shape
    /// `nrows x ncols`.
    pub fn block_mut(
        &mut self,
        row: usize,
        col: usize,
        nrows: usize,
        ncols: usize,
    ) -> MatMut<'_, T> {
        self.as_mut().into_block(row, col, nrows, ncols)
    }

    /// Split into two mutable views at column `at`: columns `[0, at)` and
    /// `[at, cols)`.  Both halves are full-height and contiguous.
    pub fn split_cols_mut(&mut self, at: usize) -> (MatMut<'_, T>, MatMut<'_, T>) {
        assert!(at <= self.cols);
        let rows = self.rows;
        let cols = self.cols;
        let (left, right) = self.data.split_at_mut(at * rows);
        (
            MatMut {
                data: left,
                rows,
                cols: at,
                ld: rows.max(1),
            },
            MatMut {
                data: right,
                rows,
                cols: cols - at,
                ld: rows.max(1),
            },
        )
    }

    /// Copy of the sub-block as an owned matrix.
    pub fn sub_matrix(&self, row: usize, col: usize, nrows: usize, ncols: usize) -> Self {
        self.block(row, col, nrows, ncols).to_owned()
    }

    /// Owned transpose.
    pub fn transpose(&self) -> Self {
        Self::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Owned conjugate transpose (`A^H`).
    pub fn conj_transpose(&self) -> Self {
        Self::from_fn(self.cols, self.rows, |i, j| self[(j, i)].conj())
    }

    /// Set every entry to `value`.
    pub fn fill(&mut self, value: T) {
        self.data.fill(value);
    }

    /// Multiply every entry by `alpha`.
    pub fn scale_in_place(&mut self, alpha: T) {
        for x in &mut self.data {
            *x *= alpha;
        }
    }

    /// `self += alpha * other` (entrywise).
    ///
    /// # Panics
    /// Panics when the shapes differ.
    pub fn axpy(&mut self, alpha: T, other: &Self) {
        assert_eq!(self.rows, other.rows);
        assert_eq!(self.cols, other.cols);
        for (x, y) in self.data.iter_mut().zip(other.data.iter()) {
            *x += alpha * *y;
        }
    }

    /// Entry-wise difference `self - other` as a new matrix.
    pub fn sub(&self, other: &Self) -> Self {
        assert_eq!(self.rows, other.rows);
        assert_eq!(self.cols, other.cols);
        let data = self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(&a, &b)| a - b)
            .collect();
        Self {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Horizontal concatenation `[self | other]`.
    pub fn hcat(&self, other: &Self) -> Self {
        assert_eq!(self.rows, other.rows, "hcat: row mismatch");
        let mut data = Vec::with_capacity(self.data.len() + other.data.len());
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&other.data);
        Self {
            rows: self.rows,
            cols: self.cols + other.cols,
            data,
        }
    }

    /// Vertical concatenation `[self; other]`.
    pub fn vcat(&self, other: &Self) -> Self {
        assert_eq!(self.cols, other.cols, "vcat: column mismatch");
        Self::from_fn(self.rows + other.rows, self.cols, |i, j| {
            if i < self.rows {
                self[(i, j)]
            } else {
                other[(i - self.rows, j)]
            }
        })
    }

    /// Copy the contents of `src` into the sub-block starting at `(row, col)`.
    pub fn set_block(&mut self, row: usize, col: usize, src: &Self) {
        assert!(row + src.rows <= self.rows && col + src.cols <= self.cols);
        for j in 0..src.cols {
            for i in 0..src.rows {
                self[(row + i, col + j)] = src[(i, j)];
            }
        }
    }

    /// Matrix-matrix product `self * other` (unblocked convenience wrapper;
    /// the performance path is [`crate::blas::gemm`]).
    pub fn matmul(&self, other: &Self) -> Self {
        assert_eq!(self.cols, other.rows, "matmul: inner dimension mismatch");
        let mut c = Self::zeros(self.rows, other.cols);
        crate::blas::gemm(
            T::one(),
            self.as_ref(),
            crate::blas::Op::None,
            other.as_ref(),
            crate::blas::Op::None,
            T::zero(),
            c.as_mut(),
        );
        c
    }

    /// Matrix-vector product `self * x`.
    pub fn matvec(&self, x: &[T]) -> Vec<T> {
        assert_eq!(self.cols, x.len());
        let mut y = vec![T::zero(); self.rows];
        crate::blas::gemv(
            T::one(),
            self.as_ref(),
            crate::blas::Op::None,
            x,
            T::zero(),
            &mut y,
        );
        y
    }

    /// Frobenius norm.
    pub fn norm_fro(&self) -> T::Real {
        crate::norms::norm_fro(self.as_ref())
    }

    /// Largest entry modulus.
    pub fn norm_max(&self) -> T::Real {
        crate::norms::norm_max(self.as_ref())
    }
}

impl<T: Scalar> std::ops::Index<(usize, usize)> for DenseMatrix<T> {
    type Output = T;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &T {
        debug_assert!(i < self.rows && j < self.cols, "index out of bounds");
        &self.data[j * self.rows + i]
    }
}

impl<T: Scalar> std::ops::IndexMut<(usize, usize)> for DenseMatrix<T> {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut T {
        debug_assert!(i < self.rows && j < self.cols, "index out of bounds");
        &mut self.data[j * self.rows + i]
    }
}

impl<T: Scalar> std::fmt::Debug for DenseMatrix<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "DenseMatrix {}x{} [", self.rows, self.cols)?;
        let show_rows = self.rows.min(8);
        let show_cols = self.cols.min(8);
        for i in 0..show_rows {
            write!(f, "  ")?;
            for j in 0..show_cols {
                write!(f, "{:?} ", self[(i, j)])?;
            }
            writeln!(f, "{}", if show_cols < self.cols { "..." } else { "" })?;
        }
        if show_rows < self.rows {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

/// An immutable column-major view with leading dimension `ld`.
#[derive(Copy, Clone)]
pub struct MatRef<'a, T> {
    data: &'a [T],
    rows: usize,
    cols: usize,
    ld: usize,
}

impl<'a, T: Scalar> MatRef<'a, T> {
    /// Construct a view from raw parts.
    ///
    /// # Panics
    /// Panics when the described window does not fit inside `data`.
    pub fn from_parts(data: &'a [T], rows: usize, cols: usize, ld: usize) -> Self {
        assert!(ld >= rows.max(1));
        if rows > 0 && cols > 0 {
            assert!(
                (cols - 1) * ld + rows <= data.len(),
                "view window exceeds buffer"
            );
        }
        Self {
            data,
            rows,
            cols,
            ld,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }
    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }
    /// Leading dimension (stride between consecutive columns).
    #[inline]
    pub fn ld(&self) -> usize {
        self.ld
    }
    /// Underlying slice (starting at the view origin).
    #[inline]
    pub fn data(&self) -> &'a [T] {
        self.data
    }

    /// Entry `(i, j)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> T {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[j * self.ld + i]
    }

    /// Column `j` as a contiguous slice of length `rows`.
    #[inline]
    pub fn col(&self, j: usize) -> &'a [T] {
        debug_assert!(j < self.cols);
        &self.data[j * self.ld..j * self.ld + self.rows]
    }

    /// Sub-view starting at `(row, col)` with shape `nrows x ncols`.
    pub fn block(&self, row: usize, col: usize, nrows: usize, ncols: usize) -> MatRef<'a, T> {
        assert!(row + nrows <= self.rows && col + ncols <= self.cols);
        let offset = col * self.ld + row;
        MatRef {
            data: &self.data[offset..],
            rows: nrows,
            cols: ncols,
            ld: self.ld,
        }
    }

    /// Copy the view into an owned matrix.
    pub fn to_owned(&self) -> DenseMatrix<T> {
        DenseMatrix::from_fn(self.rows, self.cols, |i, j| self.get(i, j))
    }

    /// `true` when the view window is contiguous in memory (ld == rows).
    #[inline]
    pub fn is_contiguous(&self) -> bool {
        self.ld == self.rows || self.cols <= 1
    }
}

/// A mutable column-major view with leading dimension `ld`.
pub struct MatMut<'a, T> {
    data: &'a mut [T],
    rows: usize,
    cols: usize,
    ld: usize,
}

impl<'a, T: Scalar> MatMut<'a, T> {
    /// Construct a mutable view from raw parts.
    ///
    /// # Panics
    /// Panics when the described window does not fit inside `data`.
    pub fn from_parts(data: &'a mut [T], rows: usize, cols: usize, ld: usize) -> Self {
        assert!(ld >= rows.max(1));
        if rows > 0 && cols > 0 {
            assert!(
                (cols - 1) * ld + rows <= data.len(),
                "view window exceeds buffer"
            );
        }
        Self {
            data,
            rows,
            cols,
            ld,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }
    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }
    /// Leading dimension.
    #[inline]
    pub fn ld(&self) -> usize {
        self.ld
    }

    /// Entry `(i, j)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> T {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[j * self.ld + i]
    }

    /// Set entry `(i, j)`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, value: T) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[j * self.ld + i] = value;
    }

    /// Mutable column `j` as a contiguous slice of length `rows`.
    #[inline]
    pub fn col_mut(&mut self, j: usize) -> &mut [T] {
        debug_assert!(j < self.cols);
        &mut self.data[j * self.ld..j * self.ld + self.rows]
    }

    /// Reborrow immutably.
    #[inline]
    pub fn as_ref(&self) -> MatRef<'_, T> {
        MatRef {
            data: self.data,
            rows: self.rows,
            cols: self.cols,
            ld: self.ld,
        }
    }

    /// Reborrow mutably with a shorter lifetime.
    #[inline]
    pub fn reborrow(&mut self) -> MatMut<'_, T> {
        MatMut {
            data: self.data,
            rows: self.rows,
            cols: self.cols,
            ld: self.ld,
        }
    }

    /// Consume the view and return the sub-view starting at `(row, col)` with
    /// shape `nrows x ncols`.
    pub fn into_block(self, row: usize, col: usize, nrows: usize, ncols: usize) -> MatMut<'a, T> {
        assert!(row + nrows <= self.rows && col + ncols <= self.cols);
        let offset = col * self.ld + row;
        MatMut {
            data: &mut self.data[offset..],
            rows: nrows,
            cols: ncols,
            ld: self.ld,
        }
    }

    /// Short-lived sub-view (borrows `self`).
    pub fn block_mut(
        &mut self,
        row: usize,
        col: usize,
        nrows: usize,
        ncols: usize,
    ) -> MatMut<'_, T> {
        self.reborrow().into_block(row, col, nrows, ncols)
    }

    /// Split the view into two mutable views at column `at`: columns
    /// `[0, at)` and `[at, cols)`.  Both halves keep the leading dimension,
    /// so this is a safe split (each column lives entirely on one side).
    ///
    /// The blocked LU factorization uses this to read the already-factored
    /// panel while updating the trailing submatrix in place.
    pub fn split_at_col_mut(self, at: usize) -> (MatMut<'a, T>, MatMut<'a, T>) {
        assert!(at <= self.cols, "split_at_col_mut: column out of range");
        // The final column may be shorter than `ld` in the backing buffer, so
        // splitting at `cols * ld` could reach past the end.
        let split = if at == self.cols {
            self.data.len()
        } else {
            at * self.ld
        };
        let (left, right) = self.data.split_at_mut(split);
        (
            MatMut {
                data: left,
                rows: self.rows,
                cols: at,
                ld: self.ld,
            },
            MatMut {
                data: right,
                rows: self.rows,
                cols: self.cols - at,
                ld: self.ld,
            },
        )
    }

    /// Copy entries from a view of the same shape.
    pub fn copy_from(&mut self, src: MatRef<'_, T>) {
        assert_eq!(self.rows, src.rows());
        assert_eq!(self.cols, src.cols());
        for j in 0..self.cols {
            let dst = &mut self.data[j * self.ld..j * self.ld + self.rows];
            dst.copy_from_slice(src.col(j));
        }
    }

    /// Set every entry of the view to `value`.
    pub fn fill(&mut self, value: T) {
        for j in 0..self.cols {
            for x in self.col_mut(j) {
                *x = value;
            }
        }
    }

    /// `self += alpha * other` (entrywise) over the view window.
    pub fn axpy(&mut self, alpha: T, other: MatRef<'_, T>) {
        assert_eq!(self.rows, other.rows());
        assert_eq!(self.cols, other.cols());
        for j in 0..self.cols {
            let src = other.col(j);
            let dst = &mut self.data[j * self.ld..j * self.ld + self.rows];
            for (d, s) in dst.iter_mut().zip(src) {
                *d += alpha * *s;
            }
        }
    }

    /// Copy the view into an owned matrix.
    pub fn to_owned(&self) -> DenseMatrix<T> {
        self.as_ref().to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DenseMatrix<f64> {
        // [ 1 4 7 ]
        // [ 2 5 8 ]
        // [ 3 6 9 ]
        DenseMatrix::from_fn(3, 3, |i, j| (j * 3 + i + 1) as f64)
    }

    #[test]
    fn construction_and_indexing() {
        let m = sample();
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 3);
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(2, 1)], 6.0);
        assert_eq!(m.col(2), &[7.0, 8.0, 9.0]);
        assert_eq!(m.data().len(), 9);
    }

    #[test]
    fn identity_and_zeros() {
        let i3 = DenseMatrix::<f64>::identity(3);
        assert_eq!(i3[(1, 1)], 1.0);
        assert_eq!(i3[(0, 1)], 0.0);
        let z = DenseMatrix::<f64>::zeros(2, 4);
        assert!(z.data().iter().all(|&x| x == 0.0));
        assert!(DenseMatrix::<f64>::zeros(0, 0).is_empty());
    }

    #[test]
    fn from_rows_matches_from_fn() {
        let a = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(a[(0, 1)], 2.0);
        assert_eq!(a[(1, 0)], 3.0);
    }

    #[test]
    fn transpose_and_conj_transpose() {
        let m = sample();
        let t = m.transpose();
        assert_eq!(t[(0, 2)], m[(2, 0)]);
        use crate::Complex64;
        let c = DenseMatrix::from_fn(2, 2, |i, j| Complex64::new(i as f64, j as f64));
        let h = c.conj_transpose();
        assert_eq!(h[(1, 0)], Complex64::new(0.0, -1.0));
    }

    #[test]
    fn block_views() {
        let m = sample();
        let b = m.block(1, 1, 2, 2);
        assert_eq!(b.get(0, 0), 5.0);
        assert_eq!(b.get(1, 1), 9.0);
        assert_eq!(b.ld(), 3);
        assert!(!b.is_contiguous());
        let owned = b.to_owned();
        assert_eq!(owned[(1, 0)], 6.0);
    }

    #[test]
    fn block_mut_and_copy_from() {
        let mut m = DenseMatrix::<f64>::zeros(4, 4);
        let src = DenseMatrix::from_fn(2, 2, |i, j| (i + j) as f64 + 1.0);
        m.block_mut(1, 2, 2, 2).copy_from(src.as_ref());
        assert_eq!(m[(1, 2)], 1.0);
        assert_eq!(m[(2, 3)], 3.0);
        assert_eq!(m[(0, 0)], 0.0);
    }

    #[test]
    fn split_cols_mut_disjoint() {
        let mut m = sample();
        let (mut l, mut r) = m.split_cols_mut(1);
        assert_eq!(l.cols(), 1);
        assert_eq!(r.cols(), 2);
        l.set(0, 0, -1.0);
        r.set(2, 1, -9.0);
        assert_eq!(m[(0, 0)], -1.0);
        assert_eq!(m[(2, 2)], -9.0);
    }

    #[test]
    fn concatenation() {
        let a = sample();
        let h = a.hcat(&a);
        assert_eq!(h.cols(), 6);
        assert_eq!(h[(0, 3)], 1.0);
        let v = a.vcat(&a);
        assert_eq!(v.rows(), 6);
        assert_eq!(v[(3, 0)], 1.0);
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = sample();
        let b = sample();
        a.axpy(-1.0, &b);
        assert!(a.norm_max() == 0.0);
        let mut c = sample();
        c.scale_in_place(2.0);
        assert_eq!(c[(2, 2)], 18.0);
    }

    #[test]
    fn matmul_matches_manual() {
        let a = sample();
        let b = DenseMatrix::<f64>::identity(3);
        let c = a.matmul(&b);
        assert_eq!(c, a);
        let x = vec![1.0, 0.0, 0.0];
        assert_eq!(a.matvec(&x), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn set_block_and_sub_matrix() {
        let mut m = DenseMatrix::<f64>::zeros(3, 3);
        let s = DenseMatrix::from_fn(2, 2, |i, j| (i * 2 + j) as f64);
        m.set_block(1, 1, &s);
        assert_eq!(m[(2, 2)], 3.0);
        let back = m.sub_matrix(1, 1, 2, 2);
        assert_eq!(back, s);
    }

    #[test]
    #[should_panic]
    fn from_col_major_wrong_len_panics() {
        let _ = DenseMatrix::from_col_major(2, 2, vec![1.0_f64; 3]);
    }

    #[test]
    #[should_panic]
    fn block_out_of_bounds_panics() {
        let m = sample();
        let _ = m.block(2, 2, 2, 2);
    }
}
