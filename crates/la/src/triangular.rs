//! Triangular solves (forward / backward substitution) on matrix views.

use crate::dense::{MatMut, MatRef};
use crate::scalar::Scalar;

/// Which triangle of the coefficient matrix is referenced.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Triangle {
    /// Lower triangular.
    Lower,
    /// Upper triangular.
    Upper,
}

/// Whether the diagonal is stored or implicitly unit.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Diag {
    /// The diagonal entries are taken from the matrix.
    NonUnit,
    /// The diagonal entries are implicitly one (as in the `L` factor of LU).
    Unit,
}

/// Solve `op(T) * X = B` in place, where `T` is triangular and `B` (the
/// right-hand sides, one per column) is overwritten with the solution.
///
/// This corresponds to BLAS `trsm` with `side = Left`, `alpha = 1`.
///
/// # Panics
/// Panics if `t` is not square or shapes do not match.
pub fn solve_triangular_in_place<T: Scalar>(
    t: MatRef<'_, T>,
    triangle: Triangle,
    diag: Diag,
    mut b: MatMut<'_, T>,
) {
    let n = t.rows();
    assert_eq!(t.cols(), n, "triangular matrix must be square");
    assert_eq!(b.rows(), n, "right-hand side has wrong row count");

    for j in 0..b.cols() {
        let col = b.col_mut(j);
        match triangle {
            Triangle::Lower => solve_lower_col(t, diag, col),
            Triangle::Upper => solve_upper_col(t, diag, col),
        }
    }
}

#[allow(clippy::needless_range_loop)] // k indexes both t and x
fn solve_lower_col<T: Scalar>(t: MatRef<'_, T>, diag: Diag, x: &mut [T]) {
    let n = x.len();
    for i in 0..n {
        let mut acc = x[i];
        for k in 0..i {
            acc -= t.get(i, k) * x[k];
        }
        x[i] = match diag {
            Diag::Unit => acc,
            Diag::NonUnit => acc * t.get(i, i).recip(),
        };
    }
}

#[allow(clippy::needless_range_loop)] // k indexes both t and x
fn solve_upper_col<T: Scalar>(t: MatRef<'_, T>, diag: Diag, x: &mut [T]) {
    let n = x.len();
    for ii in 0..n {
        let i = n - 1 - ii;
        let mut acc = x[i];
        for k in (i + 1)..n {
            acc -= t.get(i, k) * x[k];
        }
        x[i] = match diag {
            Diag::Unit => acc,
            Diag::NonUnit => acc * t.get(i, i).recip(),
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::DenseMatrix;
    use crate::{gemm, Op};

    #[test]
    fn lower_nonunit_roundtrip() {
        let l = DenseMatrix::from_rows(&[
            vec![2.0, 0.0, 0.0],
            vec![1.0, 3.0, 0.0],
            vec![-1.0, 0.5, 4.0],
        ]);
        let x_true = DenseMatrix::from_rows(&[vec![1.0, -2.0], vec![0.5, 3.0], vec![-1.5, 0.0]]);
        let mut b = DenseMatrix::zeros(3, 2);
        gemm(
            1.0,
            l.as_ref(),
            Op::None,
            x_true.as_ref(),
            Op::None,
            0.0,
            b.as_mut(),
        );
        solve_triangular_in_place(l.as_ref(), Triangle::Lower, Diag::NonUnit, b.as_mut());
        assert!(b.sub(&x_true).norm_max() < 1e-13);
    }

    #[test]
    fn upper_nonunit_roundtrip() {
        let u = DenseMatrix::from_rows(&[
            vec![2.0, -1.0, 3.0],
            vec![0.0, 1.5, 0.25],
            vec![0.0, 0.0, -4.0],
        ]);
        let x_true = DenseMatrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]);
        let mut b = DenseMatrix::zeros(3, 1);
        gemm(
            1.0,
            u.as_ref(),
            Op::None,
            x_true.as_ref(),
            Op::None,
            0.0,
            b.as_mut(),
        );
        solve_triangular_in_place(u.as_ref(), Triangle::Upper, Diag::NonUnit, b.as_mut());
        assert!(b.sub(&x_true).norm_max() < 1e-13);
    }

    #[test]
    fn lower_unit_ignores_diagonal() {
        // Diagonal entries are garbage; Unit solve must ignore them.
        let l = DenseMatrix::from_rows(&[vec![99.0, 0.0], vec![2.0, -7.0]]);
        let mut b = DenseMatrix::from_rows(&[vec![1.0], vec![5.0]]);
        solve_triangular_in_place(l.as_ref(), Triangle::Lower, Diag::Unit, b.as_mut());
        // x1 = 1, x2 = 5 - 2*1 = 3
        assert_eq!(b[(0, 0)], 1.0);
        assert_eq!(b[(1, 0)], 3.0);
    }
}
