//! Differential property suite for the symmetric factorization kernels.
//!
//! Every kernel in `hodlr_la::cholesky` is checked against the pivoted-LU
//! path that has been trusted since the seed: same solves, same
//! `log_det`, on random SPD and random Hermitian-indefinite matrices of
//! odd/prime orders, through both owning factors and strided views, for
//! `f64` and Hermitian `Complex64`.

use hodlr_la::cholesky::{
    bunch_kaufman_in_place, bunch_kaufman_solve_in_place, ldlt_in_place, ldlt_solve_in_place,
    potrf_in_place, potrs_in_place,
};
use hodlr_la::random::random_matrix;
use hodlr_la::{
    gemm, Complex64, DenseMatrix, LuFactor, MatMut, MatRef, Op, RealScalar, Scalar, SymmetricError,
    SymmetricFactor, SymmetricKind, SymmetricPolicy,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Odd and prime orders, deliberately never a multiple of the blocking
/// widths, plus two above `POTRF_BLOCK_MIN` to cross into the blocked path.
const ODD_SIZES: &[usize] = &[1, 3, 5, 7, 11, 13, 17, 23, 29, 37, 41, 53, 131, 149];

fn spd<T: Scalar>(rng: &mut StdRng, n: usize) -> DenseMatrix<T> {
    let g: DenseMatrix<T> = random_matrix(rng, n, n);
    let mut a = DenseMatrix::<T>::zeros(n, n);
    gemm(
        T::one(),
        g.as_ref(),
        Op::None,
        g.as_ref(),
        Op::ConjTrans,
        T::zero(),
        a.as_mut(),
    );
    for i in 0..n {
        a[(i, i)] += T::from_f64(n as f64);
    }
    a
}

fn hermitian_indefinite<T: Scalar>(rng: &mut StdRng, n: usize) -> DenseMatrix<T> {
    let g: DenseMatrix<T> = random_matrix(rng, n, n);
    let gh = g.conj_transpose();
    let mut a = g;
    a.axpy(T::one(), &gh);
    a.scale_in_place(T::from_f64(0.5));
    // Push half of the spectrum hard negative so the matrix is certainly
    // indefinite (for n >= 2) and never accidentally PD.
    for i in (0..n).step_by(2) {
        a[(i, i)] -= T::from_f64(2.0 * n as f64);
    }
    for i in (1..n).step_by(2) {
        a[(i, i)] += T::from_f64(2.0 * n as f64);
    }
    a
}

fn solve_residual<T: Scalar>(a: &DenseMatrix<T>, x: &[T], b: &[T]) -> f64 {
    let ax = a.matvec(x);
    let mut num = T::Real::zero();
    let mut den = T::Real::zero();
    for (v, bi) in ax.iter().zip(b) {
        num = num.max_real((*v - *bi).abs());
        den = den.max_real(bi.abs());
    }
    (num / den.max_real(T::Real::from_f64_real(1e-300))).to_f64()
}

fn rhs<T: Scalar>(n: usize) -> Vec<T> {
    (0..n)
        .map(|i| T::from_f64((i as f64 * 0.7 - 1.3).sin() + 1.5))
        .collect()
}

/// LLt + LDLt + LU on one SPD matrix: reconstruction, solve, log_det.
fn spd_differential<T: Scalar>(n: usize, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let a: DenseMatrix<T> = spd(&mut rng, n);
    let lu = LuFactor::new(&a).unwrap();
    let (ld_lu, sign_lu) = lu.log_det();

    // Strict policy must land on the Cholesky rung.
    let f = SymmetricFactor::new(&a, SymmetricPolicy::Strict)
        .unwrap_or_else(|e| panic!("potrf rejected an SPD matrix: {e}"));
    prop_assert!(matches!(f.kind(), SymmetricKind::Llt));

    // Reconstruction: ||L L^H - A|| small relative to ||A||.
    let l = f.lower_factor();
    let mut rec = DenseMatrix::<T>::zeros(n, n);
    gemm(
        T::one(),
        l.as_ref(),
        Op::None,
        l.as_ref(),
        Op::ConjTrans,
        T::zero(),
        rec.as_mut(),
    );
    let rel = (rec.sub(&a).norm_max() / a.norm_max()).to_f64();
    prop_assert!(rel < 1e-12 * (n as f64).max(8.0), "reconstruction {rel}");

    // Solves agree with LU.
    let b = rhs::<T>(n);
    let x_chol = f.solve_vec(&b);
    let x_lu = lu.solve_vec(&b);
    prop_assert!(solve_residual(&a, &x_chol, &b) < 1e-10);
    for (xc, xl) in x_chol.iter().zip(&x_lu) {
        prop_assert!((*xc - *xl).abs().to_f64() < 1e-9);
    }

    // log_det agrees with LU (SPD: positive sign on both paths).
    let (ld, sign) = f.log_det();
    prop_assert!(
        (ld - ld_lu).abs_real().to_f64() < 1e-9 * (1.0 + ld_lu.abs_real().to_f64()),
        "log_det {:?} vs {:?}",
        ld,
        ld_lu
    );
    prop_assert!((sign - sign_lu).abs().to_f64() < 1e-12);

    // Unpivoted LDL^H on the same SPD matrix.
    let mut packed = a.clone();
    ldlt_in_place(packed.as_mut()).unwrap();
    let diag: Vec<T> = (0..n).map(|i| packed[(i, i)]).collect();
    let (ld_ldlt, sign_ldlt) = hodlr_la::sym_log_det_from_parts(&SymmetricKind::Ldlt, &diag, &[]);
    prop_assert!((ld_ldlt - ld_lu).abs_real().to_f64() < 1e-9 * (1.0 + ld_lu.abs_real().to_f64()));
    prop_assert!((sign_ldlt - T::one()).abs().to_f64() < 1e-12);
    let mut x = b.clone();
    ldlt_solve_in_place(packed.as_ref(), MatMut::from_parts(&mut x, n, 1, n.max(1)));
    prop_assert!(solve_residual(&a, &x, &b) < 1e-10);
}

/// Bunch-Kaufman + LU on one Hermitian-indefinite matrix, plus the typed
/// LLt rejection.
fn indefinite_differential<T: Scalar>(n: usize, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let a: DenseMatrix<T> = hermitian_indefinite(&mut rng, n);
    let lu = LuFactor::new(&a).unwrap();
    let (ld_lu, sign_lu) = lu.log_det();

    // Strict LLt must fail with the typed error and leave no NaN behind.
    if n >= 2 {
        let mut attempt = a.clone();
        let err =
            potrf_in_place(attempt.as_mut()).expect_err("potrf accepted an indefinite matrix");
        prop_assert!(matches!(err, SymmetricError::NotPositiveDefinite { .. }));
        for j in 0..n {
            for i in 0..n {
                prop_assert!(
                    attempt[(i, j)].is_finite(),
                    "potrf leaked a non-finite entry at ({i}, {j})"
                );
            }
        }
    }

    // The fallback ladder must succeed, and on this shape it must not be
    // the strict Cholesky rung.
    let f = SymmetricFactor::new(&a, SymmetricPolicy::Fallback)
        .unwrap_or_else(|e| panic!("fallback ladder failed: {e}"));
    if n >= 2 {
        prop_assert!(!matches!(f.kind(), SymmetricKind::Llt));
    }
    let b = rhs::<T>(n);
    let x = f.solve_vec(&b);
    prop_assert!(solve_residual(&a, &x, &b) < 1e-8);
    let (ld, sign) = f.log_det();
    prop_assert!(
        (ld - ld_lu).abs_real().to_f64() < 1e-8 * (1.0 + ld_lu.abs_real().to_f64()),
        "log_det {:?} vs {:?}",
        ld,
        ld_lu
    );
    prop_assert!((sign - sign_lu).abs().to_f64() < 1e-9);

    // Raw Bunch-Kaufman agrees too (the ladder may have chosen it already;
    // run it directly regardless).
    let mut packed = a.clone();
    let piv = bunch_kaufman_in_place(packed.as_mut()).unwrap();
    let mut x = b.clone();
    bunch_kaufman_solve_in_place(
        packed.as_ref(),
        &piv,
        MatMut::from_parts(&mut x, n, 1, n.max(1)),
    );
    prop_assert!(solve_residual(&a, &x, &b) < 1e-8);
}

/// The same factorization through a strided view (ld > n) must match the
/// contiguous factorization bitwise.
fn strided_matches_contiguous<T: Scalar>(n: usize, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let a: DenseMatrix<T> = spd(&mut rng, n);
    let mut contiguous = a.clone();
    potrf_in_place(contiguous.as_mut()).unwrap();

    let ld = n + 5;
    let mut buf = vec![T::zero(); ld * n];
    for j in 0..n {
        for i in 0..n {
            buf[j * ld + i] = a[(i, j)];
        }
    }
    potrf_in_place(MatMut::from_parts(&mut buf, n, n, ld)).unwrap();
    for j in 0..n {
        for i in j..n {
            prop_assert!(
                buf[j * ld + i] == contiguous[(i, j)],
                "strided factor differs at ({i}, {j})"
            );
        }
    }

    let b = rhs::<T>(n);
    let mut x_strided = b.clone();
    potrs_in_place(
        MatRef::from_parts(&buf, n, n, ld),
        MatMut::from_parts(&mut x_strided, n, 1, n.max(1)),
    );
    let mut x_contig = b.clone();
    potrs_in_place(
        contiguous.as_ref(),
        MatMut::from_parts(&mut x_contig, n, 1, n.max(1)),
    );
    prop_assert!(x_strided == x_contig, "strided solve differs");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn spd_differential_f64(idx in 0usize..ODD_SIZES.len(), seed in 0u64..1000) {
        spd_differential::<f64>(ODD_SIZES[idx], seed);
    }

    #[test]
    fn spd_differential_complex(idx in 0usize..ODD_SIZES.len(), seed in 0u64..1000) {
        spd_differential::<Complex64>(ODD_SIZES[idx], seed);
    }

    #[test]
    fn indefinite_differential_f64(idx in 0usize..ODD_SIZES.len(), seed in 0u64..1000) {
        indefinite_differential::<f64>(ODD_SIZES[idx], seed);
    }

    #[test]
    fn indefinite_differential_complex(idx in 0usize..ODD_SIZES.len(), seed in 0u64..1000) {
        indefinite_differential::<Complex64>(ODD_SIZES[idx], seed);
    }

    #[test]
    fn strided_views_match_contiguous_f64(idx in 0usize..ODD_SIZES.len(), seed in 0u64..1000) {
        strided_matches_contiguous::<f64>(ODD_SIZES[idx], seed);
    }

    #[test]
    fn strided_views_match_contiguous_complex(idx in 0usize..ODD_SIZES.len(), seed in 0u64..1000) {
        strided_matches_contiguous::<Complex64>(ODD_SIZES[idx], seed);
    }

    #[test]
    fn factorization_is_deterministic(idx in 0usize..ODD_SIZES.len(), seed in 0u64..1000) {
        let n = ODD_SIZES[idx];
        let mut rng = StdRng::seed_from_u64(seed);
        let a: DenseMatrix<f64> = hermitian_indefinite(&mut rng, n);
        let f1 = SymmetricFactor::new(&a, SymmetricPolicy::Fallback).unwrap();
        let f2 = SymmetricFactor::new(&a, SymmetricPolicy::Fallback).unwrap();
        prop_assert!(f1.kind() == f2.kind());
        let (m1, _) = f1.factors();
        let (m2, _) = f2.factors();
        for j in 0..n {
            for i in 0..n {
                prop_assert!(m1[(i, j)].to_bits() == m2[(i, j)].to_bits());
            }
        }
        let b = rhs::<f64>(n);
        let x1 = f1.solve_vec(&b);
        let x2 = f2.solve_vec(&b);
        for (v1, v2) in x1.iter().zip(&x2) {
            prop_assert!(v1.to_bits() == v2.to_bits());
        }
    }
}
