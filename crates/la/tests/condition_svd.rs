//! Differential tests locking the Hager/Higham 1-norm estimator
//! (`one_norm_est`) against *exact* extreme singular values from the
//! Golub-Kahan SVD on matrices of controlled conditioning.
//!
//! The construction `A = Q1 diag(sigma) Q2^H` (orthonormal factors from
//! QR of Gaussian matrices, log-spaced singular values) gives exact
//! knowledge of `sigma_max`, `sigma_min` and hence `kappa_2`.  The
//! estimator is documented as a lower bound on the true 1-norm within a
//! factor of 3 (LAPACK `xLACON` trade-off); combined with the norm
//! equivalence `||A||_2 / sqrt(n) <= ||A||_1 <= sqrt(n) ||A||_2` this
//! locks the estimated condition number into `[kappa_2 / (9 n),
//! n * kappa_2]` — the documented factor this test enforces.

use hodlr_la::blas::{gemm, Op};
use hodlr_la::lu::LuFactor;
use hodlr_la::qr::thin_qr;
use hodlr_la::random::gaussian_matrix;
use hodlr_la::{
    golub_kahan_svd, one_norm_est, Complex64, DenseMatrix, HodlrError, RealScalar, Scalar,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// `A = Q1 diag(sigma) Q2^H` with log-spaced singular values from 1 down
/// to `1/kappa`.
fn controlled_condition<T: Scalar>(n: usize, kappa: f64, seed: u64) -> (DenseMatrix<T>, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let (q1, _) = thin_qr(&gaussian_matrix::<T, _>(&mut rng, n, n));
    let (q2, _) = thin_qr(&gaussian_matrix::<T, _>(&mut rng, n, n));
    let sigmas: Vec<f64> = (0..n)
        .map(|i| kappa.powf(-(i as f64) / (n as f64 - 1.0)))
        .collect();
    let mut scaled = q1.clone();
    for (j, &s) in sigmas.iter().enumerate() {
        let sr = T::Real::from_f64_real(s);
        for x in scaled.col_mut(j).iter_mut() {
            *x = x.scale(sr);
        }
    }
    let mut a = DenseMatrix::<T>::zeros(n, n);
    gemm(
        T::one(),
        scaled.as_ref(),
        Op::None,
        q2.as_ref(),
        Op::ConjTrans,
        T::zero(),
        a.as_mut(),
    );
    (a, sigmas)
}

/// Exact matrix 1-norm (max column sum).
fn exact_norm1<T: Scalar>(a: &DenseMatrix<T>) -> f64 {
    (0..a.cols())
        .map(|j| a.col(j).iter().map(|x| x.abs().to_f64()).sum::<f64>())
        .fold(0.0, f64::max)
}

/// Exact `||A^{-1}||_1` by materializing the inverse column by column
/// through LU solves (affordable at test sizes).
fn exact_inv_norm1<T: Scalar>(a: &DenseMatrix<T>) -> f64 {
    let n = a.rows();
    let lu = LuFactor::new(a).expect("test matrices are invertible");
    (0..n)
        .map(|j| {
            let mut e = vec![T::zero(); n];
            e[j] = T::one();
            lu.solve_vec(&e)
                .iter()
                .map(|x| x.abs().to_f64())
                .sum::<f64>()
        })
        .fold(0.0, f64::max)
}

fn est_norm1<T: Scalar>(a: &DenseMatrix<T>) -> f64 {
    let mut apply = |x: &mut [T]| -> Result<(), HodlrError> {
        let y = a.matvec(x);
        x.copy_from_slice(&y);
        Ok(())
    };
    let at = a.conj_transpose();
    let mut apply_adjoint = |x: &mut [T]| -> Result<(), HodlrError> {
        let y = at.matvec(x);
        x.copy_from_slice(&y);
        Ok(())
    };
    one_norm_est(a.rows(), &mut apply, &mut apply_adjoint).unwrap()
}

fn est_inv_norm1<T: Scalar>(a: &DenseMatrix<T>) -> f64 {
    let lu = LuFactor::new(a).expect("test matrices are invertible");
    let at = a.conj_transpose();
    let lut = LuFactor::new(&at).expect("transpose is invertible too");
    let mut apply = |x: &mut [T]| -> Result<(), HodlrError> {
        let y = lu.solve_vec(x);
        x.copy_from_slice(&y);
        Ok(())
    };
    // A^{-H} x = (A^H)^{-1} x.
    let mut apply_adjoint = |x: &mut [T]| -> Result<(), HodlrError> {
        let y = lut.solve_vec(x);
        x.copy_from_slice(&y);
        Ok(())
    };
    one_norm_est(a.rows(), &mut apply, &mut apply_adjoint).unwrap()
}

fn check_scenario<T: Scalar>(n: usize, kappa: f64, seed: u64) {
    let (a, sigmas) = controlled_condition::<T>(n, kappa, seed);

    // The Golub-Kahan SVD recovers the constructed extreme singular
    // values — the differential anchor for everything below.
    let svd = golub_kahan_svd(&a).unwrap();
    let smax = svd.sigma[0].to_f64();
    let smin = svd.sigma[n - 1].to_f64();
    assert!(
        (smax - sigmas[0]).abs() <= 1e-10 * sigmas[0],
        "sigma_max: {smax} vs constructed {}",
        sigmas[0]
    );
    assert!(
        (smin - sigmas[n - 1]).abs() <= 1e-10 * sigmas[0],
        "sigma_min: {smin} vs constructed {} (kappa {kappa:.1e})",
        sigmas[n - 1]
    );

    // Estimator vs exact 1-norms: documented lower bound within factor 3.
    let n1_exact = exact_norm1(&a);
    let n1_est = est_norm1(&a);
    assert!(n1_est <= n1_exact * (1.0 + 1e-12), "est overshoots exact");
    assert!(n1_est >= n1_exact / 3.0, "{n1_est} < {n1_exact}/3");

    let i1_exact = exact_inv_norm1(&a);
    let i1_est = est_inv_norm1(&a);
    assert!(
        i1_est <= i1_exact * (1.0 + 1e-10),
        "inv est overshoots exact"
    );
    assert!(i1_est >= i1_exact / 3.0, "{i1_est} < {i1_exact}/3");

    // Estimated condition number vs the SVD's kappa_2: norm equivalence
    // (factor sqrt(n) each way, squared for the product) times the
    // factor-3 estimator slack on each norm.
    let kappa2 = smax / smin;
    let kappa1_est = n1_est * i1_est;
    let nf = n as f64;
    assert!(
        kappa1_est >= kappa2 / (9.0 * nf),
        "kappa est {kappa1_est:.3e} below documented floor for kappa_2 {kappa2:.3e}"
    );
    assert!(
        kappa1_est <= kappa2 * nf * (1.0 + 1e-9),
        "kappa est {kappa1_est:.3e} above documented ceiling for kappa_2 {kappa2:.3e}"
    );
}

#[test]
fn estimator_locked_to_svd_well_conditioned_real() {
    check_scenario::<f64>(40, 1e3, 1);
}

#[test]
fn estimator_locked_to_svd_ill_conditioned_real() {
    check_scenario::<f64>(40, 1e10, 2);
}

#[test]
fn estimator_locked_to_svd_well_conditioned_complex() {
    check_scenario::<Complex64>(32, 1e3, 3);
}

#[test]
fn estimator_locked_to_svd_ill_conditioned_complex() {
    check_scenario::<Complex64>(32, 1e8, 4);
}
