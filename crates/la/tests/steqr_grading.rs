//! Regression: `steqr` / `symmetric_evd` on matrices graded with large
//! diagonal entries at the top.
//!
//! QL iteration deflates at the top of the active block and converges
//! fastest when the *small* entries sit there; the tridiagonalization of
//! a kernel covariance (a handful of dominant pivots first, the rest
//! collapsing onto the nugget) is graded exactly the wrong way and used
//! to drive the EISPACK-style loop into its 30-sweep iteration cap.
//! `steqr` now flips such matrices with the exchange permutation before
//! iterating (the O(n) equivalent of LAPACK's QL-vs-QR choice); these
//! tests pin both the convergence and the correctness of the flipped
//! accumulator.

use hodlr_la::blas::{gemm, Op};
use hodlr_la::{steqr, symmetric_evd, DenseMatrix, RealScalar};

/// A kernel-covariance-shaped tridiagonal: a few huge leading pivots
/// decaying geometrically onto a long flat tail at the nugget, with
/// strong leading couplings.
fn graded_tridiagonal(n: usize) -> (Vec<f64>, Vec<f64>) {
    let d: Vec<f64> = (0..n)
        .map(|i| 174.0 * (-(i as f64) / 6.0).exp() + 1e-2)
        .collect();
    let e: Vec<f64> = (0..n - 1)
        .map(|i| -0.4 * (d[i] * d[i + 1]).sqrt())
        .collect();
    (d, e)
}

fn dense_from_tridiagonal(d: &[f64], e: &[f64]) -> DenseMatrix<f64> {
    let n = d.len();
    DenseMatrix::from_fn(n, n, |i, j| {
        if i == j {
            d[i]
        } else if i.abs_diff(j) == 1 {
            e[i.min(j)]
        } else {
            0.0
        }
    })
}

#[test]
fn steqr_converges_on_wrong_way_graded_tridiagonals() {
    let n = 512;
    let (mut d, mut e) = graded_tridiagonal(n);
    let a = dense_from_tridiagonal(&d, &e);
    let mut z = DenseMatrix::<f64>::identity(n);
    steqr(&mut d, &mut e, Some(&mut z)).expect("graded tridiagonal must converge");

    // Eigenvalues ascending, eigenvectors diagonalize the matrix:
    // max |A Z - Z diag(d)| small relative to the largest eigenvalue.
    assert!(d.windows(2).all(|w| w[0] <= w[1]));
    let scale = d[n - 1].abs_real().max(f64::MIN_POSITIVE);
    let mut az = DenseMatrix::<f64>::zeros(n, n);
    gemm(
        1.0,
        a.as_ref(),
        Op::None,
        z.as_ref(),
        Op::None,
        0.0,
        az.as_mut(),
    );
    let mut worst = 0.0f64;
    for j in 0..n {
        for i in 0..n {
            worst = worst.max((az[(i, j)] - z[(i, j)] * d[j]).abs());
        }
    }
    assert!(worst / scale <= 1e-13 * n as f64, "residual {worst:.3e}");
}

/// The matrix family that originally hit the iteration cap: a squared
/// exponential kernel covariance with a `1e-2` nugget on a regular grid —
/// a few dominant pivots, then a long tail collapsing onto the nugget,
/// i.e. a tridiagonalization graded exactly wrong for plain QL.
#[test]
fn symmetric_evd_converges_on_kernel_covariances() {
    let n = 1024;
    let a = DenseMatrix::from_fn(n, n, |i, j| {
        let x = 4.0 * i as f64 / (n - 1) as f64;
        let y = 4.0 * j as f64 / (n - 1) as f64;
        let k = (-(x - y) * (x - y) / (2.0 * 0.5 * 0.5)).exp();
        if i == j {
            k + 1e-2
        } else {
            k
        }
    });
    let evd = symmetric_evd(&a).expect("kernel covariance must converge");
    let back = evd.reconstruct();
    let scale = evd.values.iter().fold(0.0f64, |m, &v| m.max(v.abs_real()));
    let worst = a
        .data()
        .iter()
        .zip(back.data())
        .map(|(x, y)| (x - y).abs())
        .fold(0.0f64, f64::max);
    assert!(worst / scale <= 1e-13 * n as f64, "residual {worst:.3e}");
}

#[test]
fn symmetric_evd_reconstructs_wrong_way_graded_matrices() {
    let n = 256;
    let (d, e) = graded_tridiagonal(n);
    let a = dense_from_tridiagonal(&d, &e);
    let evd = symmetric_evd(&a).expect("graded matrix must converge");
    let back = evd.reconstruct();
    let scale = evd.values.iter().fold(0.0f64, |m, &v| m.max(v.abs_real()));
    let worst = a
        .data()
        .iter()
        .zip(back.data())
        .map(|(x, y)| (x - y).abs())
        .fold(0.0f64, f64::max);
    assert!(worst / scale <= 1e-13 * n as f64, "residual {worst:.3e}");
}
