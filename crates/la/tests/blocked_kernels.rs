//! Property tests for the blocked BLAS-3 stack: the packed-microkernel
//! `gemm`, the blocked LU and the compact-WY blocked QR are checked against
//! the retained reference kernels across odd shapes (degenerate `1 x n` /
//! `m x 1`, prime dimensions straddling every blocking boundary), strided
//! block views, all `Op` combinations, and both real and complex scalars.

use hodlr_la::blas::{gemm_reference, GEMM_DIRECT_THRESHOLD};
use hodlr_la::lu::{getrf_in_place, multiply_lu, reconstruct_pa};
use hodlr_la::qr::thin_qr;
use hodlr_la::random::random_matrix;
use hodlr_la::{gemm, Complex64, DenseMatrix, Op, RealScalar, Scalar};
use rand::rngs::StdRng;
use rand::SeedableRng;

const OPS: [Op; 3] = [Op::None, Op::Trans, Op::ConjTrans];

fn stored_dims(op: Op, rows: usize, cols: usize) -> (usize, usize) {
    match op {
        Op::None => (rows, cols),
        _ => (cols, rows),
    }
}

/// Assert blocked == reference (to roundoff) for one problem instance.
fn check_gemm<T: Scalar>(rng: &mut StdRng, m: usize, n: usize, k: usize, op_a: Op, op_b: Op) {
    let (ar, ac) = stored_dims(op_a, m, k);
    let (br, bc) = stored_dims(op_b, k, n);
    let a: DenseMatrix<T> = random_matrix(rng, ar, ac);
    let b: DenseMatrix<T> = random_matrix(rng, br, bc);
    let c0: DenseMatrix<T> = random_matrix(rng, m, n);
    let alpha = T::from_f64(1.25);
    let beta = T::from_f64(-0.5);

    let mut c = c0.clone();
    gemm(alpha, a.as_ref(), op_a, b.as_ref(), op_b, beta, c.as_mut());
    let mut c_ref = c0.clone();
    gemm_reference(
        alpha,
        a.as_ref(),
        op_a,
        b.as_ref(),
        op_b,
        beta,
        c_ref.as_mut(),
    );

    // Roundoff grows like k; scale the tolerance accordingly.
    let tol = T::Real::from_f64_real(1e-12 * (k.max(1) as f64));
    let err = c.sub(&c_ref).norm_max();
    assert!(
        err < tol,
        "gemm mismatch: m={m} n={n} k={k} op_a={op_a:?} op_b={op_b:?} err={err:?}"
    );
}

#[test]
fn gemm_odd_shapes_all_ops_real() {
    let mut rng = StdRng::seed_from_u64(1001);
    // 1 x n, m x 1, primes around the MR/NR/KC/MC/NC boundaries.
    let shapes = [
        (1, 1, 1),
        (1, 17, 5),
        (13, 1, 7),
        (3, 5, 1),
        (7, 11, 13),
        (31, 29, 37),
        (97, 101, 103), // above GEMM_MC in every dimension
        (101, 5, 257),  // k crosses GEMM_KC
        (5, 131, 97),
    ];
    for &(m, n, k) in &shapes {
        for op_a in OPS {
            for op_b in OPS {
                check_gemm::<f64>(&mut rng, m, n, k, op_a, op_b);
            }
        }
    }
}

#[test]
fn gemm_odd_shapes_all_ops_complex() {
    let mut rng = StdRng::seed_from_u64(2002);
    let shapes = [(1, 9, 4), (11, 1, 8), (7, 13, 5), (101, 37, 97)];
    for &(m, n, k) in &shapes {
        for op_a in OPS {
            for op_b in OPS {
                check_gemm::<Complex64>(&mut rng, m, n, k, op_a, op_b);
            }
        }
    }
}

#[test]
fn gemm_blocked_path_on_strided_views() {
    // Operand and output windows carved out of larger buffers, big enough to
    // force the packed/blocked path (m*n*k >= GEMM_DIRECT_THRESHOLD).
    let (m, n, k) = (130, 70, 140);
    assert!(m * n * k >= GEMM_DIRECT_THRESHOLD);
    let mut rng = StdRng::seed_from_u64(3003);
    let big_a: DenseMatrix<f64> = random_matrix(&mut rng, m + 7, k + 3);
    let big_b: DenseMatrix<f64> = random_matrix(&mut rng, k + 5, n + 9);
    let mut big_c: DenseMatrix<f64> = random_matrix(&mut rng, m + 4, n + 2);
    let mut big_c_ref = big_c.clone();

    let a = big_a.block(3, 1, m, k);
    let b = big_b.block(2, 4, k, n);
    gemm(
        2.0,
        a,
        Op::None,
        b,
        Op::None,
        1.0,
        big_c.block_mut(1, 1, m, n),
    );
    gemm_reference(
        2.0,
        a,
        Op::None,
        b,
        Op::None,
        1.0,
        big_c_ref.block_mut(1, 1, m, n),
    );
    assert!(big_c.sub(&big_c_ref).norm_max() < 1e-10);
    // Entries outside the window are untouched.
    assert_eq!(big_c[(0, 0)], big_c_ref[(0, 0)]);
}

#[test]
fn gemm_trans_on_strided_views() {
    let (m, n, k) = (64, 80, 96);
    let mut rng = StdRng::seed_from_u64(3004);
    let big_a: DenseMatrix<Complex64> = random_matrix(&mut rng, k + 2, m + 6);
    let big_b: DenseMatrix<Complex64> = random_matrix(&mut rng, n + 1, k + 4);
    let mut c = DenseMatrix::<Complex64>::zeros(m, n);
    let mut c_ref = DenseMatrix::<Complex64>::zeros(m, n);

    let a = big_a.block(1, 2, k, m); // used as A^H: m x k
    let b = big_b.block(0, 3, n, k); // used as B^T: k x n
    let one = Complex64::new(1.0, 0.0);
    let zero = Complex64::new(0.0, 0.0);
    gemm(one, a, Op::ConjTrans, b, Op::Trans, zero, c.as_mut());
    gemm_reference(one, a, Op::ConjTrans, b, Op::Trans, zero, c_ref.as_mut());
    assert!(c.sub(&c_ref).norm_max() < 1e-10);
}

/// Unblocked LU oracle (the pre-blocking algorithm, kept verbatim here).
fn getrf_oracle<T: Scalar>(a: &mut DenseMatrix<T>) -> Vec<usize> {
    let m = a.rows();
    let n = m.min(a.cols());
    let mut piv = Vec::with_capacity(n);
    for k in 0..n {
        let mut p = k;
        let mut best = a[(k, k)].abs();
        for i in (k + 1)..m {
            if a[(i, k)].abs() > best {
                best = a[(i, k)].abs();
                p = i;
            }
        }
        piv.push(p);
        assert!(best > T::Real::zero(), "oracle: singular test matrix");
        if p != k {
            for j in 0..a.cols() {
                let t = a[(k, j)];
                a[(k, j)] = a[(p, j)];
                a[(p, j)] = t;
            }
        }
        let inv = a[(k, k)].recip();
        for i in (k + 1)..m {
            a[(i, k)] *= inv;
        }
        for j in (k + 1)..a.cols() {
            let ukj = a[(k, j)];
            for i in (k + 1)..m {
                let upd = a[(i, k)] * ukj;
                a[(i, j)] -= upd;
            }
        }
    }
    piv
}

fn check_lu<T: Scalar>(n: usize, seed: u64, tol: f64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let a: DenseMatrix<T> = random_matrix(&mut rng, n, n);
    let mut lu = a.clone();
    let piv = getrf_in_place(lu.as_mut()).expect("nonsingular");
    assert_eq!(piv.len(), n);
    // P A = L U up to roundoff.
    let pa = reconstruct_pa(&a, &piv);
    let prod = multiply_lu(&lu);
    let err = pa.sub(&prod).norm_max().to_f64();
    assert!(err < tol, "LU residual {err} at n={n}");
    // The blocked factorization picks the same pivot sequence as the
    // unblocked oracle (same search order, roundoff-level perturbations).
    let mut oracle = a.clone();
    let piv_oracle = getrf_oracle(&mut oracle);
    assert_eq!(piv, piv_oracle, "pivot sequence diverged at n={n}");
}

#[test]
fn blocked_lu_matches_oracle_real() {
    // 127/128/129 straddle GETRF_BLOCK_MIN; 257 crosses several panels,
    // exercising the trsm + gemm trailing update with ragged last panel.
    for &n in &[1usize, 2, 5, 31, 127, 128, 129, 193, 257] {
        check_lu::<f64>(n, 40 + n as u64, 1e-10 * (n.max(1) as f64));
    }
}

#[test]
fn blocked_lu_matches_oracle_complex() {
    for &n in &[3usize, 67, 150, 200] {
        check_lu::<Complex64>(n, 90 + n as u64, 1e-10 * (n as f64));
    }
}

#[test]
fn blocked_lu_rectangular() {
    // Tall rectangular factorization (m > n): panel heights exceed width.
    let mut rng = StdRng::seed_from_u64(777);
    let a: DenseMatrix<f64> = random_matrix(&mut rng, 300, 160);
    let mut lu = a.clone();
    let piv = getrf_in_place(lu.as_mut()).expect("full column rank");
    assert_eq!(piv.len(), 160);
    let pa = reconstruct_pa(&a, &piv);
    let prod = multiply_lu(&lu);
    assert!(pa.sub(&prod).norm_max() < 1e-10);
}

fn check_qr<T: Scalar>(m: usize, n: usize, seed: u64, tol: f64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let a: DenseMatrix<T> = random_matrix(&mut rng, m, n);
    let (q, r) = thin_qr(&a);
    let k = m.min(n);
    assert_eq!(q.rows(), m);
    assert_eq!(q.cols(), k);
    assert_eq!(r.rows(), k);
    assert_eq!(r.cols(), n);
    // R upper triangular.
    for i in 0..k {
        for j in 0..i.min(n) {
            assert!(r[(i, j)].abs().to_f64() < 1e-12, "R not triangular");
        }
    }
    // Q^H Q = I.
    let mut gram = DenseMatrix::<T>::zeros(k, k);
    gemm(
        T::one(),
        q.as_ref(),
        Op::ConjTrans,
        q.as_ref(),
        Op::None,
        T::zero(),
        gram.as_mut(),
    );
    for i in 0..k {
        for j in 0..k {
            let expect = if i == j { 1.0 } else { 0.0 };
            assert!(
                (gram[(i, j)].abs().to_f64() - expect).abs() < tol,
                "Q not orthonormal at ({i},{j}) for {m}x{n}"
            );
        }
    }
    // Q R = A.
    let mut qr = DenseMatrix::<T>::zeros(m, n);
    gemm(
        T::one(),
        q.as_ref(),
        Op::None,
        r.as_ref(),
        Op::None,
        T::zero(),
        qr.as_mut(),
    );
    let err = a.sub(&qr).norm_max().to_f64();
    assert!(err < tol, "QR reconstruction error {err} for {m}x{n}");
}

#[test]
fn blocked_qr_real_shapes() {
    // 96 is the blocked threshold; 97/131/200 exercise ragged WY panels.
    for &(m, n) in &[
        (96usize, 96usize),
        (97, 97),
        (131, 100),
        (200, 97),
        (260, 150),
        (150, 260), // wide: k = m < n
    ] {
        check_qr::<f64>(m, n, (m * 7 + n) as u64, 1e-9);
    }
}

#[test]
fn blocked_qr_complex() {
    check_qr::<Complex64>(140, 110, 9090, 1e-9);
    check_qr::<Complex64>(97, 97, 9091, 1e-9);
}

#[test]
fn blocked_qr_matches_unblocked_subspace() {
    // Blocked and unblocked QR may differ by a unitary diagonal, but
    // Q Q^H (the projector) and |R| must match.  Compare a size just above
    // the threshold against the same matrix factored through sub-threshold
    // column chunks of the reference path implicitly via reconstruction.
    let mut rng = StdRng::seed_from_u64(5150);
    let a: DenseMatrix<f64> = random_matrix(&mut rng, 120, 98);
    let (q, r) = thin_qr(&a);
    // Reconstruction is the contract; diagonal phases are free.
    let mut qr = DenseMatrix::<f64>::zeros(120, 98);
    gemm(
        1.0,
        q.as_ref(),
        Op::None,
        r.as_ref(),
        Op::None,
        0.0,
        qr.as_mut(),
    );
    assert!(a.sub(&qr).norm_max() < 1e-10);
}
