//! The `U V^*` factor pair produced by compression.

use hodlr_la::qr::thin_qr;
use hodlr_la::svd::jacobi_svd;
use hodlr_la::{gemm, DenseMatrix, Op, RealScalar, Scalar};

/// A low-rank representation `A ~= U V^*` of an `m x n` block
/// (Eq. 5 of the paper): `U` is `m x r` and `V` is `n x r`.
#[derive(Clone, Debug)]
pub struct LowRank<T: Scalar> {
    /// Left factor (`m x r`).
    pub u: DenseMatrix<T>,
    /// Right factor (`n x r`); the block is `U V^*`, not `U V`.
    pub v: DenseMatrix<T>,
}

impl<T: Scalar> LowRank<T> {
    /// Wrap a factor pair.
    ///
    /// # Panics
    /// Panics if `U` and `V` have different numbers of columns.
    pub fn new(u: DenseMatrix<T>, v: DenseMatrix<T>) -> Self {
        assert_eq!(u.cols(), v.cols(), "U and V must share the rank dimension");
        LowRank { u, v }
    }

    /// The zero block of the given shape (rank 0).
    pub fn zero(m: usize, n: usize) -> Self {
        LowRank {
            u: DenseMatrix::zeros(m, 0),
            v: DenseMatrix::zeros(n, 0),
        }
    }

    /// The rank of the representation (number of columns of `U`).
    pub fn rank(&self) -> usize {
        self.u.cols()
    }

    /// Rows of the represented block.
    pub fn nrows(&self) -> usize {
        self.u.rows()
    }

    /// Columns of the represented block.
    pub fn ncols(&self) -> usize {
        self.v.rows()
    }

    /// Number of scalar entries stored by the factors.
    pub fn storage(&self) -> usize {
        self.u.rows() * self.u.cols() + self.v.rows() * self.v.cols()
    }

    /// Materialise `U V^*` densely.
    pub fn to_dense(&self) -> DenseMatrix<T> {
        let mut a = DenseMatrix::zeros(self.nrows(), self.ncols());
        if self.rank() > 0 {
            gemm(
                T::one(),
                self.u.as_ref(),
                Op::None,
                self.v.as_ref(),
                Op::ConjTrans,
                T::zero(),
                a.as_mut(),
            );
        }
        a
    }

    /// `y <- U (V^* x)` for a single vector.
    pub fn apply(&self, x: &[T]) -> Vec<T> {
        let mut tmp = vec![T::zero(); self.rank()];
        hodlr_la::gemv(
            T::one(),
            self.v.as_ref(),
            Op::ConjTrans,
            x,
            T::zero(),
            &mut tmp,
        );
        let mut y = vec![T::zero(); self.nrows()];
        hodlr_la::gemv(T::one(), self.u.as_ref(), Op::None, &tmp, T::zero(), &mut y);
        y
    }

    /// Frobenius-norm error `||A - U V^*||_F` against a dense reference.
    pub fn reconstruction_error(&self, reference: &DenseMatrix<T>) -> T::Real {
        reference.sub(&self.to_dense()).norm_fro()
    }

    /// Recompress the pair to a (possibly) smaller rank at relative
    /// tolerance `tol`: QR-factorize both factors, SVD the small core, and
    /// truncate.  This is how an ACA or randomized factorization is squeezed
    /// to its numerical rank before entering `Ubig`/`Vbig`.
    pub fn recompress(&self, tol: T::Real) -> LowRank<T> {
        let r = self.rank();
        if r == 0 {
            return self.clone();
        }
        let (qu, ru) = thin_qr(&self.u);
        let (qv, rv) = thin_qr(&self.v);
        // Core = R_u R_v^*, size r x r (cheap).
        let mut core = DenseMatrix::zeros(ru.rows(), rv.rows());
        gemm(
            T::one(),
            ru.as_ref(),
            Op::None,
            rv.as_ref(),
            Op::ConjTrans,
            T::zero(),
            core.as_mut(),
        );
        let svd = jacobi_svd(&core);
        let k = svd.rank(tol);
        let (cu, cv) = svd.truncate(k);
        // U_new = Q_u * (core U factor), V_new = Q_v * (core V factor).
        let mut u = DenseMatrix::zeros(self.nrows(), k);
        let mut v = DenseMatrix::zeros(self.ncols(), k);
        if k > 0 {
            gemm(
                T::one(),
                qu.as_ref(),
                Op::None,
                cu.as_ref(),
                Op::None,
                T::zero(),
                u.as_mut(),
            );
            gemm(
                T::one(),
                qv.as_ref(),
                Op::None,
                cv.as_ref(),
                Op::None,
                T::zero(),
                v.as_mut(),
            );
        }
        LowRank { u, v }
    }

    /// Pad the factors with zero columns up to `rank` columns (used when a
    /// level of the HODLR structure is stored with a uniform rank for the
    /// strided batched fast path).
    pub fn padded_to_rank(&self, rank: usize) -> LowRank<T> {
        assert!(rank >= self.rank());
        if rank == self.rank() {
            return self.clone();
        }
        let pad_u = DenseMatrix::zeros(self.nrows(), rank - self.rank());
        let pad_v = DenseMatrix::zeros(self.ncols(), rank - self.rank());
        LowRank {
            u: self.u.hcat(&pad_u),
            v: self.v.hcat(&pad_v),
        }
    }

    /// Relative Frobenius error estimated by sampling random probe vectors:
    /// `||(A - UV^*) x|| / ||A x||` averaged over `samples` Gaussian probes.
    /// Used when the reference block is only available as an entry source.
    pub fn sampled_error<S, R>(&self, source: &S, rng: &mut R, samples: usize) -> T::Real
    where
        S: crate::source::MatrixEntrySource<T> + ?Sized,
        R: rand::Rng + ?Sized,
    {
        let n = self.ncols();
        let m = self.nrows();
        let mut num = T::Real::zero();
        let mut den = T::Real::zero();
        let mut col = vec![T::zero(); m];
        for _ in 0..samples.max(1) {
            let x: Vec<T> = (0..n)
                .map(|_| hodlr_la::random::random_scalar(rng))
                .collect();
            // Exact product column by column.
            let mut ax = vec![T::zero(); m];
            for (j, &xj) in x.iter().enumerate() {
                source.col(j, &mut col);
                for i in 0..m {
                    ax[i] += col[i] * xj;
                }
            }
            let approx = self.apply(&x);
            let mut diff = T::Real::zero();
            let mut norm = T::Real::zero();
            for i in 0..m {
                diff += (ax[i] - approx[i]).abs_sqr();
                norm += ax[i].abs_sqr();
            }
            num += diff.sqrt_real();
            den += norm.sqrt_real();
        }
        if den == T::Real::zero() {
            T::Real::zero()
        } else {
            num / den
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::DenseSource;
    use hodlr_la::random::{gaussian_matrix, random_low_rank};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zero_block_has_rank_zero() {
        let lr = LowRank::<f64>::zero(5, 7);
        assert_eq!(lr.rank(), 0);
        assert_eq!(lr.to_dense(), DenseMatrix::zeros(5, 7));
        assert_eq!(lr.apply(&[1.0; 7]), vec![0.0; 5]);
        assert_eq!(lr.storage(), 0);
    }

    #[test]
    fn apply_matches_dense_product() {
        let mut rng = StdRng::seed_from_u64(5);
        let u: DenseMatrix<f64> = gaussian_matrix(&mut rng, 12, 3);
        let v: DenseMatrix<f64> = gaussian_matrix(&mut rng, 9, 3);
        let lr = LowRank::new(u, v);
        let x: Vec<f64> = (0..9).map(|i| i as f64 * 0.3 - 1.0).collect();
        let y = lr.apply(&x);
        let y_ref = lr.to_dense().matvec(&x);
        for (a, b) in y.iter().zip(y_ref.iter()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn recompress_reduces_inflated_rank() {
        let mut rng = StdRng::seed_from_u64(6);
        // Build a rank-4 block stored with rank 10 (duplicate columns).
        let base: DenseMatrix<f64> = random_low_rank(&mut rng, 30, 20, 4);
        let svd = hodlr_la::svd::jacobi_svd(&base);
        let (u4, v4) = svd.truncate(4);
        let inflated = LowRank::new(
            u4.hcat(&u4).hcat(&u4.sub_matrix(0, 0, 30, 2)),
            v4.hcat(&v4).hcat(&v4.sub_matrix(0, 0, 20, 2)),
        );
        assert_eq!(inflated.rank(), 10);
        let lr = inflated.recompress(1e-12);
        assert!(lr.rank() <= 5, "rank after recompression: {}", lr.rank());
        let err = lr.reconstruction_error(&inflated.to_dense());
        assert!(err < 1e-10 * inflated.to_dense().norm_fro().max(1.0));
    }

    #[test]
    fn padding_preserves_the_block() {
        let mut rng = StdRng::seed_from_u64(7);
        let u: DenseMatrix<f64> = gaussian_matrix(&mut rng, 8, 2);
        let v: DenseMatrix<f64> = gaussian_matrix(&mut rng, 6, 2);
        let lr = LowRank::new(u, v);
        let padded = lr.padded_to_rank(5);
        assert_eq!(padded.rank(), 5);
        assert!(padded.to_dense().sub(&lr.to_dense()).norm_max() < 1e-15);
    }

    #[test]
    fn sampled_error_is_small_for_exact_representation() {
        let mut rng = StdRng::seed_from_u64(8);
        let a: DenseMatrix<f64> = random_low_rank(&mut rng, 25, 25, 5);
        let svd = hodlr_la::svd::jacobi_svd(&a);
        let (u, v) = svd.truncate(5);
        let lr = LowRank::new(u, v);
        let err = lr.sampled_error(&DenseSource::new(&a), &mut rng, 4);
        assert!(err < 1e-10, "sampled error {err}");
    }

    #[test]
    #[should_panic(expected = "rank dimension")]
    fn mismatched_factor_ranks_panic() {
        let u = DenseMatrix::<f64>::zeros(4, 2);
        let v = DenseMatrix::<f64>::zeros(4, 3);
        let _ = LowRank::new(u, v);
    }
}
