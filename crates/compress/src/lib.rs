//! # hodlr-compress — low-rank compression of matrix blocks
//!
//! The construction of a HODLR approximation amounts to compressing every
//! sibling off-diagonal block `A(I_alpha, I_beta)` into a product `U V^*`
//! (Eq. 5 of the paper).  This crate provides the compression machinery:
//!
//! * [`MatrixEntrySource`] — lazy access to the entries of the block being
//!   compressed, so kernel matrices and discretized integral operators never
//!   have to be formed densely;
//! * [`aca`] — adaptive cross approximation with partial pivoting and with
//!   rook pivoting (the `LowRank::rookPiv()` scheme HODLRlib uses in the
//!   paper's Table III benchmark);
//! * [`randomized`] — a Gaussian range finder with SVD recompression,
//!   following the randomized methods the paper cites for HODLR
//!   construction;
//! * [`truncated`] — dense truncated-SVD compression, the (expensive)
//!   optimal reference used in tests and for small blocks;
//! * [`LowRank`] — the `U V^*` pair itself, with recompression and error
//!   estimation helpers.

pub mod aca;
pub mod lowrank;
pub mod randomized;
pub mod source;
pub mod truncated;

pub use aca::{aca_compress, aca_compress_metered, AcaPivoting};
pub use lowrank::LowRank;
pub use randomized::{randomized_compress, randomized_compress_metered};
pub use source::{ClosureSource, DenseSource, MatrixEntrySource, ShiftedSource};
pub use truncated::{truncated_svd_compress, truncated_svd_compress_metered};

use hodlr_la::{AllocMeter, HodlrError, RealScalar, Scalar};

/// How an off-diagonal block should be compressed into `U V^*`.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct CompressionConfig<R> {
    /// Relative tolerance of the approximation (Frobenius-norm sense).
    pub tol: R,
    /// Hard cap on the rank (`None` = limited only by the block size).
    pub max_rank: Option<usize>,
    /// The algorithm used to build the factors.
    pub method: CompressionMethod,
    /// When `true`, hitting `max_rank` before the tolerance is certified is
    /// reported as [`HodlrError::CompressionRankOverflow`] instead of
    /// silently returning the capped factors.
    pub strict_rank: bool,
}

/// The compression algorithm.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum CompressionMethod {
    /// Adaptive cross approximation with partial (row) pivoting.
    AcaPartial,
    /// Adaptive cross approximation with rook pivoting.
    AcaRook,
    /// Gaussian range finder + SVD recompression.
    RandomizedSvd,
    /// Dense truncated SVD (optimal, O(mn min(m,n)) cost).
    TruncatedSvd,
}

impl<R: hodlr_la::RealScalar> CompressionConfig<R> {
    /// A configuration with the given tolerance, no rank cap, and rook-pivoted
    /// ACA (the scheme used for the paper's kernel benchmarks).
    pub fn with_tol(tol: R) -> Self {
        CompressionConfig {
            tol,
            max_rank: None,
            method: CompressionMethod::AcaRook,
            strict_rank: false,
        }
    }

    /// Override the compression method.
    pub fn method(mut self, method: CompressionMethod) -> Self {
        self.method = method;
        self
    }

    /// Override the rank cap.
    pub fn max_rank(mut self, max_rank: usize) -> Self {
        self.max_rank = Some(max_rank);
        self
    }

    /// Make the rank cap strict: hitting it before the tolerance is
    /// certified becomes a [`HodlrError::CompressionRankOverflow`].
    pub fn strict_rank(mut self) -> Self {
        self.strict_rank = true;
        self
    }

    /// Validate the configuration (positive finite tolerance, non-zero rank
    /// cap).
    pub fn validate(&self) -> Result<(), HodlrError> {
        let tol = self.tol.to_f64();
        if tol <= 0.0 || !tol.is_finite() {
            return Err(HodlrError::config(format!(
                "compression tolerance must be positive and finite, got {tol:e}"
            )));
        }
        if self.max_rank == Some(0) {
            return Err(HodlrError::config(
                "compression rank cap must be at least 1 (use tolerance-only \
                 compression by leaving the cap unset)",
            ));
        }
        Ok(())
    }
}

/// Compress a block with the requested configuration.
///
/// # Errors
/// Returns [`HodlrError::InvalidConfig`] for a non-positive or non-finite
/// tolerance or a zero rank cap, and — when the configuration marks the cap
/// as strict — [`HodlrError::CompressionRankOverflow`] when the compressor
/// stops at `max_rank` without having certified the tolerance first.
pub fn compress<T: Scalar, S: MatrixEntrySource<T> + ?Sized>(
    source: &S,
    config: &CompressionConfig<T::Real>,
) -> Result<LowRank<T>, HodlrError> {
    compress_metered(source, config, None)
}

/// [`compress`] with live/peak scratch accounting on `meter`.
///
/// Every method streams the block through bounded scratch — the peak the
/// meter sees is `O((m + n) k)` plus a fixed tile, never the `O(mn)` dense
/// block.  Compression is metered net-zero: scratch retires before the call
/// returns, and the caller records the bytes of the factors it retains.
///
/// # Errors
/// As [`compress`].
pub fn compress_metered<T: Scalar, S: MatrixEntrySource<T> + ?Sized>(
    source: &S,
    config: &CompressionConfig<T::Real>,
    meter: Option<&AllocMeter>,
) -> Result<LowRank<T>, HodlrError> {
    config.validate()?;
    let lr = match config.method {
        CompressionMethod::AcaPartial => aca_compress_metered(
            source,
            config.tol,
            config.max_rank,
            AcaPivoting::Partial,
            meter,
        ),
        CompressionMethod::AcaRook => aca_compress_metered(
            source,
            config.tol,
            config.max_rank,
            AcaPivoting::Rook,
            meter,
        ),
        CompressionMethod::RandomizedSvd => {
            randomized_compress_metered(source, config.tol, config.max_rank, meter)
        }
        CompressionMethod::TruncatedSvd => {
            truncated_svd_compress_metered(source, config.tol, config.max_rank, meter)
        }
    };
    if config.strict_rank {
        if let Some(cap) = config.max_rank {
            // Every compressor certifies the tolerance *before* testing the
            // cap, so a result at exactly the cap means the cap bound the
            // rank (or coincided with the tolerance rank — conservatively
            // reported as overflow; raise the cap by one to disambiguate).
            // A cap at or above full rank can never overflow.
            if lr.rank() == cap && cap < source.nrows().min(source.ncols()) {
                return Err(HodlrError::CompressionRankOverflow {
                    max_rank: cap,
                    tol: config.tol.to_f64(),
                    context: format!("{} x {} block", source.nrows(), source.ncols()),
                });
            }
        }
    }
    Ok(lr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aca::ROOK_ITERATIONS;
    use hodlr_la::random::random_low_rank;
    use hodlr_la::{DenseMatrix, RealScalar};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn every_method_compresses_an_exactly_low_rank_block() {
        let mut rng = StdRng::seed_from_u64(1);
        let a: DenseMatrix<f64> = random_low_rank(&mut rng, 60, 45, 6);
        let src = DenseSource::new(&a);
        for method in [
            CompressionMethod::AcaPartial,
            CompressionMethod::AcaRook,
            CompressionMethod::RandomizedSvd,
            CompressionMethod::TruncatedSvd,
        ] {
            let cfg = CompressionConfig::with_tol(1e-10).method(method);
            let lr = compress(&src, &cfg).unwrap();
            assert!(
                lr.rank() >= 6 && lr.rank() <= 12,
                "{method:?}: rank {}",
                lr.rank()
            );
            let err = lr.reconstruction_error(&a);
            assert!(
                err.to_f64() < 1e-8 * a.norm_fro(),
                "{method:?}: error {err}"
            );
        }
    }

    #[test]
    fn max_rank_cap_is_respected() {
        let mut rng = StdRng::seed_from_u64(2);
        let a: DenseMatrix<f64> = random_low_rank(&mut rng, 40, 40, 10);
        let src = DenseSource::new(&a);
        for method in [
            CompressionMethod::AcaPartial,
            CompressionMethod::AcaRook,
            CompressionMethod::RandomizedSvd,
            CompressionMethod::TruncatedSvd,
        ] {
            let cfg = CompressionConfig::with_tol(1e-14)
                .method(method)
                .max_rank(3);
            let lr = compress(&src, &cfg).unwrap();
            assert!(lr.rank() <= 3, "{method:?}: rank {}", lr.rank());
        }
    }

    #[test]
    fn strict_rank_cap_reports_overflow() {
        let mut rng = StdRng::seed_from_u64(3);
        let a: DenseMatrix<f64> = random_low_rank(&mut rng, 40, 40, 10);
        let src = DenseSource::new(&a);
        for method in [
            CompressionMethod::AcaPartial,
            CompressionMethod::AcaRook,
            CompressionMethod::RandomizedSvd,
            CompressionMethod::TruncatedSvd,
        ] {
            let cfg = CompressionConfig::with_tol(1e-14)
                .method(method)
                .max_rank(3)
                .strict_rank();
            let err = compress(&src, &cfg).unwrap_err();
            assert!(
                matches!(err, HodlrError::CompressionRankOverflow { max_rank: 3, .. }),
                "{method:?}: {err}"
            );
            // A cap the tolerance rank fits under passes strict mode.
            let cfg = CompressionConfig::with_tol(1e-10)
                .method(method)
                .max_rank(25)
                .strict_rank();
            assert!(compress(&src, &cfg).is_ok(), "{method:?}");
        }
    }

    #[test]
    fn no_method_materialises_the_dense_block() {
        // A smooth far-field kernel block, well above one streaming tile in
        // both directions.  Every method must compress it through bounded
        // scratch: the metered peak stays a small multiple of (m + n) * k
        // plus a fixed tile — far below the m * n dense block it replaced.
        let m = 400;
        let n = 300;
        let src = ClosureSource::new(m, n, |i, j| {
            let x = i as f64 / m as f64;
            let y = 3.0 + j as f64 / n as f64;
            1.0 / (1.0 + (x - y).abs())
        });
        let dense_bytes = (m * n * std::mem::size_of::<f64>()) as u64;
        for method in [
            CompressionMethod::AcaPartial,
            CompressionMethod::AcaRook,
            CompressionMethod::RandomizedSvd,
            CompressionMethod::TruncatedSvd,
        ] {
            let meter = hodlr_la::AllocMeter::new();
            let cfg = CompressionConfig::with_tol(1e-8).method(method);
            let lr = compress_metered(&src, &cfg, Some(&meter)).unwrap();
            assert!(
                lr.rank() > 0 && lr.rank() < 30,
                "{method:?}: rank {}",
                lr.rank()
            );
            assert!(meter.peak_bytes() > 0, "{method:?}: nothing metered");
            assert!(
                meter.peak_bytes() < dense_bytes / 2,
                "{method:?}: peak {} vs dense {}",
                meter.peak_bytes(),
                dense_bytes
            );
            // Net-zero convention: all compression scratch retired.
            assert_eq!(meter.live_bytes(), 0, "{method:?}");
        }
    }

    #[test]
    fn aca_touches_only_the_crosses() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let m = 300;
        let n = 260;
        let evals = AtomicUsize::new(0);
        let src = ClosureSource::new(m, n, |i, j| {
            evals.fetch_add(1, Ordering::Relaxed);
            let x = i as f64 / m as f64;
            let y = 2.0 + j as f64 / n as f64;
            1.0 / (1.0 + (x - y).abs())
        });
        let cfg = CompressionConfig::with_tol(1e-8);
        let lr = compress(&src, &cfg).unwrap();
        let r = lr.rank();
        assert!(r > 0);
        // Rook pivoting evaluates a handful of rows and columns per cross;
        // the budget is a small constant times (m + n) per rank, a far cry
        // from the m * n entries of the block.
        let budget = 2 * (1 + ROOK_ITERATIONS) * (m + n) * (r + 1);
        let used = evals.load(Ordering::Relaxed);
        assert!(used <= budget, "{used} evaluations for rank {r}");
        assert!(used < m * n / 4, "{used} evaluations approaches dense");
    }

    #[test]
    fn invalid_tolerances_are_rejected() {
        let a: DenseMatrix<f64> = DenseMatrix::zeros(4, 4);
        let src = DenseSource::new(&a);
        for bad in [0.0, -1e-8, f64::NAN, f64::INFINITY] {
            let cfg = CompressionConfig::with_tol(bad);
            let err = compress(&src, &cfg).unwrap_err();
            assert!(matches!(err, HodlrError::InvalidConfig { .. }), "tol {bad}");
        }
        let cfg = CompressionConfig::with_tol(1e-8).max_rank(0);
        assert!(compress(&src, &cfg).is_err());
    }
}
