//! Dense truncated-SVD compression.
//!
//! Forms the block densely and truncates its SVD at the requested tolerance.
//! This is the optimal (Eckart–Young) compression, used as the reference in
//! tests and as the method of choice for blocks that are small enough that
//! the `O(mn min(m, n))` cost does not matter.

use crate::lowrank::LowRank;
use crate::source::MatrixEntrySource;
use hodlr_la::svd::jacobi_svd;
use hodlr_la::Scalar;

/// Compress `source` by a dense truncated SVD at relative tolerance `tol`
/// (singular values below `tol * sigma_max` are discarded), with an optional
/// hard rank cap.
pub fn truncated_svd_compress<T: Scalar, S: MatrixEntrySource<T> + ?Sized>(
    source: &S,
    tol: T::Real,
    max_rank: Option<usize>,
) -> LowRank<T> {
    let m = source.nrows();
    let n = source.ncols();
    if m == 0 || n == 0 {
        return LowRank::zero(m, n);
    }
    let a = source.to_dense();
    let svd = jacobi_svd(&a);
    let mut k = svd.rank(tol);
    if let Some(cap) = max_rank {
        k = k.min(cap);
    }
    let (u, v) = svd.truncate(k);
    LowRank::new(u, v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{ClosureSource, DenseSource};
    use hodlr_la::random::random_low_rank;
    use hodlr_la::svd::tail_energy;
    use hodlr_la::DenseMatrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn recovers_exact_rank() {
        let mut rng = StdRng::seed_from_u64(31);
        let a: DenseMatrix<f64> = random_low_rank(&mut rng, 30, 22, 7);
        let lr = truncated_svd_compress(&DenseSource::new(&a), 1e-10, None);
        assert_eq!(lr.rank(), 7);
        assert!(lr.reconstruction_error(&a) < 1e-9 * a.norm_fro());
    }

    #[test]
    fn truncation_error_is_optimal() {
        let src = ClosureSource::new(40, 40, |i, j| {
            1.0 / (1.0 + (i as f64 - j as f64).abs() + (i + j) as f64 * 0.1)
        });
        let dense = src.to_dense();
        let lr = truncated_svd_compress(&src, 1e-14, Some(6));
        let err = lr.reconstruction_error(&dense);
        let sigma = hodlr_la::svd::singular_values(&dense);
        let best = tail_energy(&sigma, 6);
        assert!((err - best).abs() < 1e-10 * dense.norm_fro().max(1.0));
    }

    #[test]
    fn loose_tolerance_gives_smaller_rank() {
        // Separated 1-D clusters: the interaction block has a geometrically
        // decaying spectrum, so the rank depends strongly on the tolerance.
        let src = ClosureSource::new(30, 30, |i, j| {
            let x = i as f64 / 30.0;
            let y = 3.0 + j as f64 / 30.0;
            1.0 / (x - y).abs()
        });
        let loose = truncated_svd_compress(&src, 1e-2, None);
        let tight = truncated_svd_compress(&src, 1e-12, None);
        assert!(loose.rank() < tight.rank());
    }

    #[test]
    fn empty_and_zero_blocks() {
        let zero = DenseMatrix::<f64>::zeros(5, 5);
        assert_eq!(
            truncated_svd_compress(&DenseSource::new(&zero), 1e-10, None).rank(),
            0
        );
        let empty = DenseMatrix::<f64>::zeros(4, 0);
        let lr = truncated_svd_compress(&DenseSource::new(&empty), 1e-10, None);
        assert_eq!(lr.nrows(), 4);
        assert_eq!(lr.ncols(), 0);
    }
}
