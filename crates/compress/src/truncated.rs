//! Truncated-SVD compression by streaming panel QR.
//!
//! This is the optimal (Eckart–Young) compression, used as the reference in
//! tests and as the method of choice when the `O(mn min(m, n))` flop cost
//! does not matter.  It no longer forms the block densely: the block is
//! consumed one column panel at a time and folded into a growing
//! orthonormal basis `Q` (re-orthogonalised CGS2 + Householder QR of the
//! panel residual) together with the coefficient matrix `C = Q^* A`, so the
//! working set is `O((m + n) K + m P)` for numerical rank `K` and panel
//! width `P` — never the `O(mn)` dense block.  The final factors come from
//! a dense SVD of the small `K x n` coefficient matrix, which reproduces
//! the singular value decomposition of `A` to roundoff: panels are
//! processed in a fixed sequential order, so the result is also bitwise
//! deterministic and independent of any surrounding thread pool.

use crate::lowrank::LowRank;
use crate::randomized::dense_bytes;
use crate::source::MatrixEntrySource;
use hodlr_la::qr::thin_qr;
use hodlr_la::svd::jacobi_svd;
use hodlr_la::{gemm, AllocMeter, DenseMatrix, Op, RealScalar, Scalar};

/// Column-panel width of the streaming pass.
const PANEL: usize = 64;

/// Compress `source` by a truncated SVD at relative tolerance `tol`
/// (singular values below `tol * sigma_max` are discarded), with an optional
/// hard rank cap.
pub fn truncated_svd_compress<T: Scalar, S: MatrixEntrySource<T> + ?Sized>(
    source: &S,
    tol: T::Real,
    max_rank: Option<usize>,
) -> LowRank<T> {
    truncated_svd_compress_metered(source, tol, max_rank, None)
}

/// [`truncated_svd_compress`] with live/peak scratch accounting on `meter`.
pub fn truncated_svd_compress_metered<T: Scalar, S: MatrixEntrySource<T> + ?Sized>(
    source: &S,
    tol: T::Real,
    max_rank: Option<usize>,
    meter: Option<&AllocMeter>,
) -> LowRank<T> {
    let m = source.nrows();
    let n = source.ncols();
    if m == 0 || n == 0 {
        return LowRank::zero(m, n);
    }

    // Orthonormal basis of the column space seen so far (m x K, K grows),
    // and per-panel coefficient blocks C_p = Q_final^* A[:, panel p] (only
    // the rows known when the panel was processed are stored; rows added by
    // *later* panels are orthogonal to this panel's columns to roundoff, so
    // the missing coefficients are zero and are padded as such below).
    let mut q = DenseMatrix::<T>::zeros(m, 0);
    let mut coeff_blocks: Vec<(usize, DenseMatrix<T>)> = Vec::new();
    // Running ||A||_F^2 over the panels consumed so far, used to scale the
    // drop tolerance of the panel QR.
    let mut norm_sq = T::Real::zero();

    let mut w = DenseMatrix::<T>::zeros(m, PANEL.min(n));
    if let Some(meter) = meter {
        meter.record_alloc(dense_bytes::<T>(m, PANEL.min(n)));
    }

    for p0 in (0..n).step_by(PANEL) {
        let pb = PANEL.min(n - p0);
        // Evaluate the panel W = A[:, p0 .. p0 + pb].
        for j in 0..pb {
            source.col(p0 + j, w.col_mut(j));
        }
        let mut w = w.block_mut(0, 0, m, pb);
        for j in 0..pb {
            for i in 0..m {
                norm_sq += w.get(i, j).abs_sqr();
            }
        }

        // Project out the existing basis twice (classical Gram–Schmidt with
        // re-orthogonalisation): R = Q^* W accumulated over both sweeps is
        // the coefficient block of this panel in the current basis.
        let k0 = q.cols();
        let mut r_above = DenseMatrix::<T>::zeros(k0, pb);
        if k0 > 0 {
            let mut r_sweep = DenseMatrix::<T>::zeros(k0, pb);
            for _ in 0..2 {
                gemm(
                    T::one(),
                    q.as_ref(),
                    Op::ConjTrans,
                    w.as_ref(),
                    Op::None,
                    T::zero(),
                    r_sweep.as_mut(),
                );
                gemm(
                    -T::one(),
                    q.as_ref(),
                    Op::None,
                    r_sweep.as_ref(),
                    Op::None,
                    T::one(),
                    w.reborrow(),
                );
                r_above.axpy(T::one(), &r_sweep);
            }
        }

        // QR of the residual panel; keep only directions carrying mass
        // relative to the block seen so far (the trailing near-zero diagonal
        // of R is the part of the panel already inside span(Q)).
        let (qp, rp) = thin_qr(&w.to_owned());
        let drop_tol = T::Real::EPSILON * norm_sq.sqrt_real();
        let mut keep = 0;
        for i in 0..qp.cols() {
            if rp[(i, i)].abs() > drop_tol {
                keep = i + 1;
            }
        }

        // Coefficients of this panel in the enlarged basis.
        let mut c_panel = DenseMatrix::<T>::zeros(k0 + keep, pb);
        c_panel.set_block(0, 0, &r_above);
        if keep > 0 {
            c_panel.set_block(k0, 0, &rp.sub_matrix(0, 0, keep, pb));
            let grown = q.hcat(&qp.sub_matrix(0, 0, m, keep));
            if let Some(meter) = meter {
                // The basis grew; the old copy is dropped on assignment.
                meter.record_alloc(dense_bytes::<T>(m, k0 + keep));
                meter.record_free(dense_bytes::<T>(m, k0));
            }
            q = grown;
        }
        if let Some(meter) = meter {
            meter.record_alloc(dense_bytes::<T>(k0 + keep, pb));
        }
        coeff_blocks.push((p0, c_panel));
    }
    if let Some(meter) = meter {
        meter.record_free(dense_bytes::<T>(m, PANEL.min(n)));
    }

    let kk = q.cols();
    if kk == 0 {
        return LowRank::zero(m, n);
    }

    // Assemble C = Q^* A (K x n): each panel's stored coefficients, padded
    // with the zero rows of the basis directions found after it.
    let mut c = DenseMatrix::<T>::zeros(kk, n);
    if let Some(meter) = meter {
        meter.record_alloc(dense_bytes::<T>(kk, n));
    }
    for (p0, c_panel) in &coeff_blocks {
        c.set_block(0, *p0, c_panel);
    }
    if let Some(meter) = meter {
        for (_, c_panel) in &coeff_blocks {
            meter.record_free(dense_bytes::<T>(c_panel.rows(), c_panel.cols()));
        }
    }
    drop(coeff_blocks);

    // A = Q C, so svd(C) = (Uc, S, V) gives svd(A) = (Q Uc, S, V).
    let svd = jacobi_svd(&c);
    let mut k = svd.rank(tol);
    if let Some(cap) = max_rank {
        k = k.min(cap);
    }
    let (uc, v) = svd.truncate(k);
    let mut u = DenseMatrix::zeros(m, k);
    if k > 0 {
        gemm(
            T::one(),
            q.as_ref(),
            Op::None,
            uc.as_ref(),
            Op::None,
            T::zero(),
            u.as_mut(),
        );
    }
    if let Some(meter) = meter {
        meter.record_free(dense_bytes::<T>(m, kk) + dense_bytes::<T>(kk, n));
    }
    LowRank::new(u, v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{ClosureSource, DenseSource};
    use hodlr_la::random::random_low_rank;
    use hodlr_la::svd::tail_energy;
    use hodlr_la::DenseMatrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn recovers_exact_rank() {
        let mut rng = StdRng::seed_from_u64(31);
        let a: DenseMatrix<f64> = random_low_rank(&mut rng, 30, 22, 7);
        let lr = truncated_svd_compress(&DenseSource::new(&a), 1e-10, None);
        assert_eq!(lr.rank(), 7);
        assert!(lr.reconstruction_error(&a) < 1e-9 * a.norm_fro());
    }

    #[test]
    fn truncation_error_is_optimal() {
        let src = ClosureSource::new(40, 40, |i, j| {
            1.0 / (1.0 + (i as f64 - j as f64).abs() + (i + j) as f64 * 0.1)
        });
        let dense = src.to_dense();
        let lr = truncated_svd_compress(&src, 1e-14, Some(6));
        let err = lr.reconstruction_error(&dense);
        let sigma = hodlr_la::svd::singular_values(&dense);
        let best = tail_energy(&sigma, 6);
        assert!((err - best).abs() < 1e-10 * dense.norm_fro().max(1.0));
    }

    #[test]
    fn loose_tolerance_gives_smaller_rank() {
        // Separated 1-D clusters: the interaction block has a geometrically
        // decaying spectrum, so the rank depends strongly on the tolerance.
        let src = ClosureSource::new(30, 30, |i, j| {
            let x = i as f64 / 30.0;
            let y = 3.0 + j as f64 / 30.0;
            1.0 / (x - y).abs()
        });
        let loose = truncated_svd_compress(&src, 1e-2, None);
        let tight = truncated_svd_compress(&src, 1e-12, None);
        assert!(loose.rank() < tight.rank());
    }

    #[test]
    fn empty_and_zero_blocks() {
        let zero = DenseMatrix::<f64>::zeros(5, 5);
        assert_eq!(
            truncated_svd_compress(&DenseSource::new(&zero), 1e-10, None).rank(),
            0
        );
        let empty = DenseMatrix::<f64>::zeros(4, 0);
        let lr = truncated_svd_compress(&DenseSource::new(&empty), 1e-10, None);
        assert_eq!(lr.nrows(), 4);
        assert_eq!(lr.ncols(), 0);
    }

    #[test]
    fn multi_panel_blocks_match_the_dense_svd() {
        // More columns than one panel, full-rank-deficient: the streamed
        // panel QR must agree with the dense factorization to roundoff.
        let mut rng = StdRng::seed_from_u64(32);
        let a: DenseMatrix<f64> = random_low_rank(&mut rng, 90, PANEL * 2 + 11, 9);
        let lr = truncated_svd_compress(&DenseSource::new(&a), 1e-10, None);
        assert_eq!(lr.rank(), 9);
        assert!(lr.reconstruction_error(&a) < 1e-9 * a.norm_fro());

        let sigma = hodlr_la::svd::singular_values(&a);
        let capped = truncated_svd_compress(&DenseSource::new(&a), 1e-14, Some(4));
        let err = capped.reconstruction_error(&a);
        let best = tail_energy(&sigma, 4);
        assert!((err - best).abs() < 1e-9 * a.norm_fro().max(1.0));
    }
}
